examples/quickstart.mli:
