examples/fault_tolerance_demo.ml: Array Benchmarks Cluster Config Core Executor Float Fun Harness List Printf Store String Util
