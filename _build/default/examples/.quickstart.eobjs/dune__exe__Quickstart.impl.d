examples/quickstart.ml: Cluster Config Core Executor List Metrics Printf Store Txn
