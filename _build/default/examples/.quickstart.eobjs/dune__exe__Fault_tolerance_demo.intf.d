examples/fault_tolerance_demo.mli:
