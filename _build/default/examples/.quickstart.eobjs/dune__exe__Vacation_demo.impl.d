examples/vacation_demo.ml: Benchmarks Cluster Config Core Executor List Metrics Printf Store Util
