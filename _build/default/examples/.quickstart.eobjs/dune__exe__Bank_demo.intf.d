examples/bank_demo.mli:
