examples/vacation_demo.mli:
