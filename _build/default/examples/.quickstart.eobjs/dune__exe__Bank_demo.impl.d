examples/bank_demo.ml: Array Benchmarks Cluster Config Core Executor List Metrics Printf Store Txn
