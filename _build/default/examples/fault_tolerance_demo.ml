(* Fault-tolerance demo: transactions keep committing while replicas fail.

   A 28-node cluster starts with the smallest possible read quorum (the
   tree root alone).  We fail nodes one by one — including the root — and
   watch the read quorum grow while the workload continues, reproducing the
   mechanics behind the paper's Fig. 10.

   Run with:  dune exec examples/fault_tolerance_demo.exe *)

open Core

let () =
  let nodes = 28 in
  let cluster =
    Cluster.create ~nodes ~seed:5 ~read_level:0 (Config.default Config.Closed)
  in
  let counters =
    Array.init 16 (fun _ -> Cluster.alloc_object cluster ~init:(Store.Value.Int 0))
  in
  (* Fail four nodes, one every two seconds, chosen from the current read
     quorum so each failure forces the quorum to grow. *)
  let victims = Harness.Figures.failure_schedule ~nodes ~read_level:0 ~count:4 in
  List.iteri
    (fun i node ->
      Cluster.fail_node_at cluster ~at:(2_000. *. Float.of_int (i + 1)) ~node)
    victims;

  let committed = ref 0 in
  let rng = Util.Rng.create 17 in
  let stop = ref false in
  let rec client node rng =
    if not !stop then begin
      let oid = counters.(Util.Rng.int rng (Array.length counters)) in
      Cluster.submit cluster ~node (fun () -> Benchmarks.Counter.increment oid)
        ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ ->
            incr committed;
            client node rng
          | Executor.Failed msg -> Printf.printf "client failed: %s\n" msg)
    end
  in
  (* Clients only on nodes that never fail. *)
  let client_nodes =
    List.filter (fun n -> not (List.mem n victims)) (List.init nodes Fun.id)
  in
  List.iteri (fun i n -> if i < 8 then client (n : int) (Util.Rng.split rng)) client_nodes;

  for second = 1 to 10 do
    Cluster.run_for cluster 1_000.;
    let quorum = Cluster.read_quorum_of cluster ~node:(List.hd (List.rev client_nodes)) in
    Printf.printf "t=%2ds  committed=%4d  read quorum size=%d  %s\n" second !committed
      (List.length quorum)
      (String.concat "," (List.map string_of_int quorum))
  done;
  stop := true;
  Cluster.drain cluster;

  let total = Benchmarks.Counter.total cluster ~oids:(Array.to_list counters) in
  Printf.printf "total increments committed: %d, visible in store: %d — %s\n" !committed
    total
    (if total = !committed then "no lost updates despite failures" else "LOST UPDATES");
  match Cluster.check_consistency cluster with
  | Ok () -> print_endline "1-copy serializability maintained across failures"
  | Error msg -> Printf.printf "CONSISTENCY VIOLATION: %s\n" msg
