(* Bank demo: closed-nested transfers between replicated accounts, showing
   why partial aborts help — the paper's motivating example (Figs. 1 and 2)
   expressed over real accounts.

   A root transaction makes two transfers, each a closed-nested
   transaction.  When the second transfer conflicts, only it retries; the
   first transfer's reads are kept.

   Run with:  dune exec examples/bank_demo.exe *)

open Core
open Txn.Syntax

let () =
  let cluster = Cluster.create ~nodes:13 ~seed:7 (Config.default Config.Closed) in
  let accounts =
    Array.init 8 (fun _ -> Cluster.alloc_object cluster ~init:(Store.Value.Int 1_000))
  in
  let pay from_ to_ amount =
    Txn.nested (fun () ->
        Benchmarks.Bank.transfer ~from_:accounts.(from_) ~to_:accounts.(to_) ~amount)
  in
  (* Two payments per transaction, as two closed-nested calls. *)
  let payroll a b c =
    let* _ = pay a b 125 in
    let* _ = pay b c 75 in
    Txn.return Store.Value.Unit
  in
  let pending = ref 0 in
  let submit node (a, b, c) =
    incr pending;
    Cluster.submit cluster ~node (fun () -> payroll a b c) ~on_done:(fun outcome ->
        decr pending;
        match outcome with
        | Executor.Committed _ -> ()
        | Executor.Failed msg -> Printf.printf "payment failed: %s\n" msg)
  in
  (* Overlapping payments from several nodes to force conflicts. *)
  List.iteri
    (fun i spec -> submit (i mod Cluster.nodes cluster) spec)
    [ (0, 1, 2); (1, 2, 3); (2, 3, 4); (3, 4, 5); (4, 5, 6); (5, 6, 7); (6, 7, 0) ];
  Cluster.drain cluster;

  let metrics = Cluster.metrics cluster in
  Printf.printf "payments committed: %d   closed-nested commits: %d\n"
    (Metrics.commits metrics) (Metrics.ct_commits metrics);
  Printf.printf "partial aborts (only the conflicting transfer retried): %d\n"
    (Metrics.partial_aborts metrics);
  Printf.printf "root aborts (whole payroll retried): %d\n" (Metrics.root_aborts metrics);

  let total = Benchmarks.Bank.total_balance cluster ~accounts in
  Printf.printf "total balance: %d (expected %d) — money %s\n" total 8_000
    (if total = 8_000 then "conserved" else "NOT CONSERVED");
  match Cluster.check_consistency cluster with
  | Ok () -> print_endline "1-copy serializability: ok"
  | Error msg -> Printf.printf "CONSISTENCY VIOLATION: %s\n" msg
