(* Vacation demo: the STAMP-style reservation workload over replicated
   offer tables, comparing flat nesting, closed nesting and checkpointing
   on the same booking storm.

   Each booking reserves a car, a flight and a hotel; under closed nesting
   each reservation is a closed-nested transaction, so a conflict on the
   hotel does not force the car and flight queries to be re-executed.

   Run with:  dune exec examples/vacation_demo.exe *)

open Core

let booking_storm mode =
  let cluster = Cluster.create ~nodes:13 ~seed:2024 (Config.default mode) in
  let handle = Benchmarks.Vacation.create cluster ~offers_per_category:6 in
  let rng = Util.Rng.create 99 in
  let bookings = 40 in
  let completed = ref 0 in
  let revenue = ref 0 in
  let rec customer node remaining rng =
    if remaining > 0 then begin
      let book () =
        Benchmarks.Workload.ops_as_cts
          (List.init Benchmarks.Vacation.categories (fun category ->
               Benchmarks.Vacation.reserve handle rng ~category))
      in
      Cluster.submit cluster ~node book ~on_done:(fun outcome ->
          begin
            match outcome with
            | Executor.Committed (Store.Value.Int price) ->
              incr completed;
              revenue := !revenue + price
            | Executor.Committed _ -> incr completed (* sold out on last leg *)
            | Executor.Failed msg -> Printf.printf "booking failed: %s\n" msg
          end;
          customer node (remaining - 1) rng)
    end
  in
  for c = 0 to 7 do
    customer (c mod Cluster.nodes cluster) (bookings / 8) (Util.Rng.split rng)
  done;
  Cluster.drain cluster;
  let metrics = Cluster.metrics cluster in
  Printf.printf
    "%-10s  bookings=%d  reserved=%d seats  root aborts=%d  partial aborts=%d  msgs=%d\n"
    (Config.mode_name mode) !completed
    (Benchmarks.Vacation.total_reserved cluster handle)
    (Metrics.root_aborts metrics) (Metrics.partial_aborts metrics)
    (Cluster.messages_sent cluster);
  match Benchmarks.Vacation.check_offers cluster handle with
  | Ok () -> ()
  | Error msg -> Printf.printf "  OFFER INVARIANT VIOLATED: %s\n" msg

let () =
  print_endline "40 concurrent three-leg bookings over shared offer tables:";
  List.iter booking_storm [ Config.Flat; Config.Closed; Config.Checkpoint ]
