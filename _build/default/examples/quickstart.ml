(* Quickstart: a 13-node replicated DTM, one shared counter, three
   execution models.

   Run with:  dune exec examples/quickstart.exe *)

open Core
open Txn.Syntax

(* A transaction program: read the counter, write it back incremented.
   Programs are plain values built from the Txn DSL; the executor replays
   them transparently when the transaction aborts. *)
let increment counter =
  let* v = Txn.read counter in
  Txn.write counter (Store.Value.Int (Store.Value.to_int v + 1))

let demo mode =
  (* A cluster is a simulated deployment: nodes, latencies, replicas,
     ternary-tree quorums, failure detection, and an executor. *)
  let cluster = Cluster.create ~nodes:13 ~seed:42 (Config.default mode) in
  let counter = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in

  (* Ten concurrent clients, five increments each. *)
  let rec client node remaining =
    if remaining > 0 then
      Cluster.submit cluster ~node (fun () -> increment counter) ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ -> client node (remaining - 1)
          | Executor.Failed msg -> Printf.printf "  transaction failed: %s\n" msg)
  in
  for c = 0 to 9 do
    client (c mod Cluster.nodes cluster) 5
  done;
  Cluster.drain cluster;

  let metrics = Cluster.metrics cluster in
  let commits = Metrics.commits metrics in
  let final =
    match Cluster.run_program cluster ~node:0 (fun () -> Txn.read counter) with
    | Executor.Committed v -> Store.Value.to_string v
    | Executor.Failed msg -> "failed: " ^ msg
  in
  Printf.printf "%-10s  final=%s  commits=%d  root aborts=%d  partial aborts=%d\n"
    (Config.mode_name mode) final commits (Metrics.root_aborts metrics)
    (Metrics.partial_aborts metrics);
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Printf.printf "  CONSISTENCY VIOLATION: %s\n" msg

let () =
  print_endline "50 concurrent increments on a replicated counter (expect final=50):";
  List.iter demo [ Config.Flat; Config.Closed; Config.Checkpoint ]
