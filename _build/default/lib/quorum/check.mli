(** Quorum-property verifiers used by tests and property-based checks.

    The QR protocol's 1-copy equivalence rests on two structural facts:
    every read quorum intersects every write quorum, and write quorums
    pairwise intersect.  These checkers verify them empirically over sets
    of constructed quorums. *)

val intersects : int list -> int list -> bool
(** Whether two sorted node lists share an element. *)

val read_write_intersection : reads:int list list -> writes:int list list -> bool
(** Every read quorum meets every write quorum. *)

val write_write_intersection : writes:int list list -> bool
(** Write quorums pairwise intersect. *)

val all_alive : failed:int list -> int list -> bool
(** No quorum member is in the failed set. *)
