type t = { count : int; k : int }

let create ?(arity = 3) ~nodes () =
  assert (nodes >= 1 && arity >= 1);
  { count = nodes; k = arity }

let nodes t = t.count
let arity t = t.k
let root _ = 0

let children t i =
  let first = (t.k * i) + 1 in
  let rec collect j acc =
    if j < first then acc else collect (j - 1) (j :: acc)
  in
  collect (Stdlib.min (first + t.k - 1) (t.count - 1)) []

let parent t i = if i = 0 then None else Some ((i - 1) / t.k)
let is_leaf t i = children t i = []

let depth t i =
  let rec up i acc = match parent t i with None -> acc | Some p -> up p (acc + 1) in
  up i 0

let height t =
  let rec deepest best i =
    if i >= t.count then best else deepest (Stdlib.max best (depth t i)) (i + 1)
  in
  deepest 0 0

let level t d =
  let rec collect i acc =
    if i >= t.count then List.rev acc
    else collect (i + 1) (if depth t i = d then i :: acc else acc)
  in
  collect 0 []
