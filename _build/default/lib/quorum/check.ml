let rec intersects a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | x :: xs, y :: ys ->
    if x = y then true else if x < y then intersects xs b else intersects a ys

let read_write_intersection ~reads ~writes =
  List.for_all (fun r -> List.for_all (fun w -> intersects r w) writes) reads

let write_write_intersection ~writes =
  let rec pairs = function
    | [] -> true
    | w :: rest -> List.for_all (fun w' -> intersects w w') rest && pairs rest
  in
  pairs writes

let all_alive ~failed quorum = List.for_all (fun n -> not (List.mem n failed)) quorum
