lib/quorum/tree_quorum.ml: Array Int List Option Tree
