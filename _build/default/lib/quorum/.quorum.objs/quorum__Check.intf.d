lib/quorum/check.mli:
