lib/quorum/check.ml: List
