lib/quorum/tree_quorum.mli: Tree
