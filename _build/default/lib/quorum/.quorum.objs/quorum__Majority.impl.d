lib/quorum/majority.ml: Array Int List
