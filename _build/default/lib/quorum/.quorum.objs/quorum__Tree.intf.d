lib/quorum/tree.mli:
