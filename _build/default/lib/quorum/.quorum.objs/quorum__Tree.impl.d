lib/quorum/tree.ml: List Stdlib
