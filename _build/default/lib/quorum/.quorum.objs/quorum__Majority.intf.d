lib/quorum/majority.mli:
