type t = { count : int; alive : bool array }

let create ~nodes = { count = nodes; alive = Array.make nodes true }
let mark_failed t node = t.alive.(node) <- false
let revive t node = t.alive.(node) <- true

let quorum ?(salt = 0) t =
  let needed = (t.count / 2) + 1 in
  let picked = ref [] and found = ref 0 in
  let start = ((salt mod t.count) + t.count) mod t.count in
  let i = ref 0 in
  while !found < needed && !i < t.count do
    let node = (start + !i) mod t.count in
    if t.alive.(node) then begin
      picked := node :: !picked;
      incr found
    end;
    incr i
  done;
  if !found < needed then None else Some (List.sort Int.compare !picked)
