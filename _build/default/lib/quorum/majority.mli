(** Flat majority quorums (ablation baseline for tree quorums).

    Both read and write quorums are any ⌈(n+1)/2⌉ alive nodes; [salt]
    rotates the starting point so clients spread load.  Used by the ablation
    bench comparing quorum construction strategies. *)

type t

val create : nodes:int -> t
val mark_failed : t -> int -> unit
val revive : t -> int -> unit

val quorum : ?salt:int -> t -> int list option
(** A majority of *all* nodes drawn from the alive ones; [None] when fewer
    than a majority are alive.  Sorted ascending. *)
