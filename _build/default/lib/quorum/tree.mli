(** Logical complete k-ary tree over node identifiers [0 .. nodes-1].

    Nodes are laid out in level order (the children of [i] are
    [k*i + 1 .. k*i + k]), matching the paper's Fig. 3 ternary tree of 13
    nodes: root [n0], children [n1 n2 n3], grandchildren [n4 .. n12]. *)

type t

val create : ?arity:int -> nodes:int -> unit -> t
(** Default arity 3 (ternary, as in the paper). Requires [nodes >= 1]. *)

val nodes : t -> int
val arity : t -> int
val root : t -> int

val children : t -> int -> int list
(** Structural children present in the tree, ascending. *)

val parent : t -> int -> int option
val is_leaf : t -> int -> bool

val depth : t -> int -> int
(** Distance from the root (root has depth 0). *)

val height : t -> int
(** Maximum depth over all nodes. *)

val level : t -> int -> int list
(** All nodes at the given depth, ascending; [] beyond the height. *)
