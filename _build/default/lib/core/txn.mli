(** The transaction DSL.

    Transactions are written once, against this DSL, and interpreted by
    every protocol in the repository (QR flat, QR-CN, QR-CHK, TFA,
    Decent-STM) — the protocols differ only in *how* they execute reads,
    writes, nesting boundaries and commits.

    Programs are continuation-passing values, which is what makes partial
    abort implementable: a closed-nested scope retries by re-running its
    thunk; a checkpoint resumes by re-entering a saved continuation — the
    OCaml equivalent of the paper's Java exceptions + Java continuations.

    Programs must be *re-runnable*: a thunk may be executed many times
    (after aborts), so it must not capture external mutable state other
    than through transactional reads/writes. *)

type value = Store.Value.t

type t =
  | Return of value  (** commit the innermost enclosing scope with a result *)
  | Read of Ids.obj_id * (value -> t)
  | Write of Ids.obj_id * value * (unit -> t)
  | Nested of (unit -> t) * (value -> t)
      (** [Nested (body, k)]: run [body] as a closed-nested transaction
          (under QR-CN), then continue with [k].  Flat and checkpointing
          executors flatten the boundary. *)
  | Open of { body : unit -> t; compensate : value -> t; k : value -> t }
      (** Open nesting (extension; cf. TFA-ON in the paper's related work):
          [body] runs as an *independent* transaction — its commit is
          globally visible before the parent commits — and [compensate],
          applied to [body]'s result, is registered to semantically undo it
          if the root later aborts.  The QR executor runs compensations (as
          fresh transactions, newest first) before every root retry; the
          baselines flatten the boundary into the parent (which is strictly
          more atomic, so compensations are never needed there).  Note:
          abstract locks are not implemented, so open nesting here trades
          serializability at the memory level for the usual
          compensation-based semantic atomicity. *)
  | Checkpoint of (unit -> t)
      (** Programmer-placed checkpoint (the Herlihy–Koskinen style the
          paper contrasts its automatic criterion with).  Under QR-CHK a
          snapshot is taken here in addition to the automatic threshold
          ones; other executors treat it as a no-op. *)
  | Fail of string  (** unrecoverable programming error: abort permanently *)

val return : value -> t
val read : Ids.obj_id -> t
(** [read oid] as a program returning the value; combine with [let*]. *)

val write : Ids.obj_id -> value -> t
val nested : (unit -> t) -> t

val open_nested : body:(unit -> t) -> compensate:(value -> t) -> t
(** See the [Open] constructor. *)

val checkpoint : unit -> t
val fail : string -> t

val bind : t -> (value -> t) -> t
(** Sequencing; associativity is the monad law, checked in tests. *)

val map : t -> (value -> value) -> t

module Syntax : sig
  val ( let* ) : t -> (value -> t) -> t
end

val ops : t -> int
(** Static count of the leading non-branching operations (for tests). *)
