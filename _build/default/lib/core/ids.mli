(** Identifier generation.

    Transaction identifiers are globally unique per experiment and strictly
    increasing, so they double as start-order timestamps for contention
    decisions.  Object identifiers are plain integers allocated by the
    benchmark setup code. *)

type txn_id = int
type obj_id = int

type gen

val gen : unit -> gen
val fresh_txn : gen -> txn_id
val fresh_obj : gen -> obj_id
