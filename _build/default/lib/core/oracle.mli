(** Global 1-copy-serializability checker (the testable face of Theorem V.1).

    Executors report every commit to the oracle together with the base
    versions they read and the versions they installed.  [check] then
    verifies, post-hoc and with global knowledge the protocols themselves
    never have:

    - {b version integrity}: per object, installed versions are exactly
      0, 1, 2, … in commit order, with a unique writer per version;
    - {b read freshness} (update transactions): every committed read of
      version [v] was of the *current* copy at some instant inside the
      transaction's validation window (between its commit request and its
      decision) — 2PC re-validates every entry, so anything staler is a
      protocol bug;
    - {b snapshot consistency} (read-only transactions): all read versions
      were current *simultaneously* at some instant no later than the
      decision.  Read-only transactions serialize at that instant — they
      may legitimately trail concurrent commits in real time (a first read
      can be served before a decided commit's apply reaches the replica),
      which is 1-copy serializable but not strictly serializable. *)

type t

val create : unit -> t

val note_commit :
  t ->
  txn:Ids.txn_id ->
  decision:float ->
  window_start:float ->
  reads:(Ids.obj_id * int) list ->
  writes:(Ids.obj_id * int) list ->
  unit
(** [decision] is the client-side commit decision time; [window_start] the
    send time of the last validating request (last read for read-only
    transactions, the commit request otherwise).  [writes] carry the *new*
    versions installed. *)

val commits_recorded : t -> int

val check : t -> (unit, string) result
(** [Error] carries a human-readable description of the first violation. *)
