lib/core/server.ml: List Messages Rqv Store
