lib/core/rwset.ml: Ids Int List Map Txn
