lib/core/oracle.ml: Float Hashtbl Ids List Option Printf Result
