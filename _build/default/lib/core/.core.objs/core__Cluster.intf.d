lib/core/cluster.mli: Config Executor Ids Messages Metrics Oracle Sim Store Txn Util
