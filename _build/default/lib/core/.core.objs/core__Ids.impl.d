lib/core/ids.ml:
