lib/core/txn.ml: Ids Store
