lib/core/messages.ml: Ids List Rwset Txn
