lib/core/server.mli: Messages Store
