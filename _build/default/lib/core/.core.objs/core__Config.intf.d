lib/core/config.mli:
