lib/core/rwset.mli: Ids Txn
