lib/core/rqv.mli: Ids Messages Store
