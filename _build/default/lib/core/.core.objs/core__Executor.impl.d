lib/core/executor.ml: Config Float Hashtbl Ids List Messages Metrics Option Oracle Rwset Sim Stdlib Txn Util
