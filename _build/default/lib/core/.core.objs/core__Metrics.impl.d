lib/core/metrics.ml: Float Printf Util
