lib/core/messages.mli: Ids Rwset Txn
