lib/core/txn.mli: Ids Store
