lib/core/oracle.mli: Ids
