lib/core/cluster.ml: Array Config Executor Ids Messages Metrics Option Oracle Quorum Server Sim Store Util
