lib/core/config.ml:
