lib/core/executor.mli: Config Ids Messages Metrics Oracle Sim Txn
