lib/core/ids.mli:
