lib/core/rqv.ml: List Messages Store
