type value = Store.Value.t

type t =
  | Return of value
  | Read of Ids.obj_id * (value -> t)
  | Write of Ids.obj_id * value * (unit -> t)
  | Nested of (unit -> t) * (value -> t)
  | Open of { body : unit -> t; compensate : value -> t; k : value -> t }
  | Checkpoint of (unit -> t)
  | Fail of string

let return v = Return v
let read oid = Read (oid, fun v -> Return v)
let write oid v = Write (oid, v, fun () -> Return Store.Value.Unit)
let nested body = Nested (body, fun v -> Return v)

let open_nested ~body ~compensate =
  Open { body; compensate; k = (fun v -> Return v) }

let checkpoint () = Checkpoint (fun () -> Return Store.Value.Unit)
let fail msg = Fail msg

let rec bind p k =
  match p with
  | Return v -> k v
  | Read (oid, f) -> Read (oid, fun v -> bind (f v) k)
  | Write (oid, v, f) -> Write (oid, v, fun () -> bind (f ()) k)
  | Nested (body, f) -> Nested (body, fun v -> bind (f v) k)
  | Open { body; compensate; k = f } ->
    Open { body; compensate; k = (fun v -> bind (f v) k) }
  | Checkpoint f -> Checkpoint (fun () -> bind (f ()) k)
  | Fail msg -> Fail msg

let map p f = bind p (fun v -> Return (f v))

module Syntax = struct
  let ( let* ) = bind
end

let rec ops = function
  | Return _ | Fail _ -> 0
  | Read (_, f) -> 1 + ops (f Store.Value.Unit)
  | Write (_, _, f) -> 1 + ops (f ())
  | Nested (body, f) -> ops (body ()) + ops (f Store.Value.Unit)
  | Open { body; k; _ } -> ops (body ()) + ops (k Store.Value.Unit)
  | Checkpoint f -> ops (f ())
