type txn_id = int
type obj_id = int
type gen = { mutable next_txn : int; mutable next_obj : int }

let gen () = { next_txn = 1; next_obj = 0 }

let fresh_txn g =
  let id = g.next_txn in
  g.next_txn <- id + 1;
  id

let fresh_obj g =
  let id = g.next_obj in
  g.next_obj <- id + 1;
  id
