lib/harness/report.mli:
