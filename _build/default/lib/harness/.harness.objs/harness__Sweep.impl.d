lib/harness/sweep.ml: Experiment Float List Stdlib
