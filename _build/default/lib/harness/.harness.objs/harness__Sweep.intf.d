lib/harness/sweep.mli: Experiment
