lib/harness/experiment.ml: Array Baselines Benchmarks Cluster Config Core Executor Float Format Fun Ids List Metrics Option Printf Sim Stdlib Txn Util
