lib/harness/figures.ml: Array Benchmarks Cluster Config Core Experiment Float Fun List Printf Quorum Report Stdlib Store Sweep Txn Util
