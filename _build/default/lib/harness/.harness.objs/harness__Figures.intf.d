lib/harness/figures.mli: Benchmarks Core Report
