lib/harness/experiment.mli: Benchmarks Core Format Stdlib Util
