(** Figure/table data containers and rendering. *)

type series = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (string * float list) list;
  notes : string list;  (** expected-shape commentary, printed below *)
}

val render : series -> string
val render_many : series list -> string
val to_csv : series -> string

val pct_change : baseline:float -> float -> float
(** [(v - baseline) / baseline * 100]; 0 when the baseline is 0. *)
