type series = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (string * float list) list;
  notes : string list;
}

let render s =
  let table = Util.Table.create ~header:(s.x_label :: s.columns) in
  List.iter
    (fun (x, values) ->
      Util.Table.add_row table (x :: List.map (fun v -> Printf.sprintf "%.2f" v) values))
    s.rows;
  let body = Util.Table.render table in
  let notes =
    match s.notes with
    | [] -> ""
    | notes -> String.concat "\n" (List.map (fun n -> "  note: " ^ n) notes) ^ "\n"
  in
  Printf.sprintf "== %s ==\n%s%s" s.title body notes

let render_many series = String.concat "\n" (List.map render series)

let to_csv s =
  let table = Util.Table.create ~header:(s.x_label :: s.columns) in
  List.iter
    (fun (x, values) ->
      Util.Table.add_row table (x :: List.map (fun v -> Printf.sprintf "%.4f" v) values))
    s.rows;
  Util.Table.render_csv table

let pct_change ~baseline v =
  if baseline = 0. then 0. else (v -. baseline) /. baseline *. 100.
