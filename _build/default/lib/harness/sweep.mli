(** Parameter sweeps with trial averaging. *)

val averaged : trials:int -> (seed:int -> Experiment.result) -> Experiment.result
(** Run the experiment [trials] times with distinct seeds and return the
    first result with its counters and rates replaced by trial means
    (checks are the conjunction over trials). *)

val throughputs :
  trials:int -> xs:'a list -> (x:'a -> seed:int -> Experiment.result) -> ('a * Experiment.result) list
(** One averaged result per x value. *)
