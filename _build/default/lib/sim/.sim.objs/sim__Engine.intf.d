lib/sim/engine.mli:
