lib/sim/failure.ml: Engine Hashtbl Int List
