lib/sim/network.mli: Engine Topology
