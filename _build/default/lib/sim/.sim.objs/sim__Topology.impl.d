lib/sim/topology.ml: Array Float Util
