lib/sim/topology.mli:
