lib/sim/rpc.ml: Array Engine Hashtbl List Network
