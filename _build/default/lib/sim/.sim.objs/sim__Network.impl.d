lib/sim/network.ml: Array Engine Hashtbl List Stdlib String Topology Util
