lib/sim/failure.mli: Engine
