lib/sim/engine.ml: Float Int Stdlib Util
