lib/sim/rpc.mli: Network
