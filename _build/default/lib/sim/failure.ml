type t = {
  engine : Engine.t;
  detection_delay : float;
  kill : int -> unit;
  mutable subscribers : (int -> unit) list;
  detected : (int, unit) Hashtbl.t;
}

let create ~engine ?(detection_delay = 50.) ~kill () =
  { engine; detection_delay; kill; subscribers = []; detected = Hashtbl.create 7 }

let on_detect t f = t.subscribers <- f :: t.subscribers

let schedule t ~at ~node =
  Engine.schedule_at t.engine ~time:at (fun () -> t.kill node);
  Engine.schedule_at t.engine ~time:(at +. t.detection_delay) (fun () ->
      if not (Hashtbl.mem t.detected node) then begin
        Hashtbl.replace t.detected node ();
        List.iter (fun f -> f node) (List.rev t.subscribers)
      end)

let is_failed t node = Hashtbl.mem t.detected node

let failed_nodes t =
  Hashtbl.fold (fun node () acc -> node :: acc) t.detected []
  |> List.sort Int.compare
