type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  service_time : float;
  jitter : float;
  rng : Util.Rng.t;
  handlers : (src:int -> 'msg -> unit) option array;
  busy_until : float array;
  failed : bool array;
  mutable sent : int;
  by_kind : (string, int ref) Hashtbl.t;
}

let create ~engine ~topology ?(service_time = 0.25) ?(jitter = 0.1) ?(seed = 7) () =
  let n = Topology.nodes topology in
  {
    engine;
    topology;
    service_time;
    jitter;
    rng = Util.Rng.create seed;
    handlers = Array.make n None;
    busy_until = Array.make n 0.;
    failed = Array.make n false;
    sent = 0;
    by_kind = Hashtbl.create 16;
  }

let engine t = t.engine
let topology t = t.topology
let nodes t = Topology.nodes t.topology
let set_handler t ~node handler = t.handlers.(node) <- Some handler
let fail t node = t.failed.(node) <- true
let revive t node = t.failed.(node) <- false
let is_failed t node = t.failed.(node)

let alive_nodes t =
  let acc = ref [] in
  for i = nodes t - 1 downto 0 do
    if not t.failed.(i) then acc := i :: !acc
  done;
  !acc

let count_kind t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some r -> incr r
  | None -> Hashtbl.replace t.by_kind kind (ref 1)

let deliver t ~src ~dst msg =
  if not t.failed.(dst) then begin
    (* FIFO service queue: processing begins when the node is free. *)
    let now = Engine.now t.engine in
    let start = Stdlib.max now t.busy_until.(dst) in
    let finish = start +. t.service_time in
    t.busy_until.(dst) <- finish;
    Engine.schedule_at t.engine ~time:finish (fun () ->
        if not t.failed.(dst) then
          match t.handlers.(dst) with
          | Some handler -> handler ~src msg
          | None -> ())
  end

let send t ?(kind = "other") ~src ~dst msg =
  if not t.failed.(src) then begin
    if src <> dst then begin
      t.sent <- t.sent + 1;
      count_kind t kind
    end;
    let base = Topology.latency t.topology ~src ~dst in
    let jitter = base *. t.jitter *. Util.Rng.float t.rng 1.0 in
    Engine.schedule t.engine ~delay:(base +. jitter) (fun () -> deliver t ~src ~dst msg)
  end

let multicast t ?kind ~src ~dsts msg =
  List.iter (fun dst -> send t ?kind ~src ~dst msg) dsts

let messages_sent t = t.sent

let messages_by_kind t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.by_kind []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_counters t =
  t.sent <- 0;
  Hashtbl.reset t.by_kind
