(** Fail-stop failure injection with a (near-)perfect failure detector.

    A failure scheduled at time [t] kills the node at [t] (the network then
    drops its traffic) and notifies every detection subscriber at
    [t + detection_delay], modelling a group-membership service such as the
    JGroups view changes the paper's testbed relied on.  Subscribers
    (e.g. the quorum manager) typically recompute quorums. *)

type t

val create : engine:Engine.t -> ?detection_delay:float -> kill:(int -> unit) -> unit -> t
(** [kill] is invoked at the instant of failure (harness wires it to
    {!Network.fail}).  [detection_delay] defaults to 50 ms. *)

val on_detect : t -> (int -> unit) -> unit
(** Register a subscriber called (with the failed node) once the failure is
    detected.  Subscribers registered after detection are not back-filled. *)

val schedule : t -> at:float -> node:int -> unit
(** Schedule a fail-stop of [node] at absolute time [at]. *)

val is_failed : t -> int -> bool
(** Whether the node has failed *and* the failure has been detected. *)

val failed_nodes : t -> int list
(** Detected-failed nodes, ascending. *)
