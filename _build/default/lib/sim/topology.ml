type t = {
  count : int;
  local_latency : float;
  matrix : float array array; (* one-way latency, ms *)
}

let nodes t = t.count

let latency t ~src ~dst =
  if src = dst then t.local_latency else t.matrix.(src).(dst)

let mean_remote_latency t =
  if t.count < 2 then 0.
  else begin
    let total = ref 0. and pairs = ref 0 in
    for i = 0 to t.count - 1 do
      for j = 0 to t.count - 1 do
        if i <> j then begin
          total := !total +. t.matrix.(i).(j);
          incr pairs
        end
      done
    done;
    !total /. Float.of_int !pairs
  end

let create ?(seed = 42) ?(mean_latency = 15.0) ?(local_latency = 0.05) ~nodes:count () =
  assert (count > 0);
  let rng = Util.Rng.create seed in
  let xs = Array.init count (fun _ -> Util.Rng.float rng 1.0) in
  let ys = Array.init count (fun _ -> Util.Rng.float rng 1.0) in
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  let matrix = Array.make_matrix count count 0. in
  (* Affine map: latency = floor + slope * distance, symmetric.  The floor
     keeps nearby nodes from being unrealistically fast. *)
  let floor_lat = 0.3 *. mean_latency in
  let raw_mean = ref 0. and pairs = ref 0 in
  for i = 0 to count - 1 do
    for j = i + 1 to count - 1 do
      raw_mean := !raw_mean +. dist i j;
      incr pairs
    done
  done;
  let raw_mean = if !pairs = 0 then 1. else !raw_mean /. Float.of_int !pairs in
  let slope = (mean_latency -. floor_lat) /. raw_mean in
  for i = 0 to count - 1 do
    for j = 0 to count - 1 do
      if i <> j then matrix.(i).(j) <- floor_lat +. (slope *. dist i j)
    done
  done;
  { count; local_latency; matrix }

let uniform ?(latency = 15.0) ~nodes:count () =
  let matrix = Array.make_matrix count count latency in
  for i = 0 to count - 1 do
    matrix.(i).(i) <- 0.
  done;
  { count; local_latency = 0.05; matrix }
