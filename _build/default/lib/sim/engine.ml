type event = { time : float; seq : int; action : unit -> unit }

module Event_order = struct
  type t = event

  let compare a b =
    let c = Float.compare a.time b.time in
    if c <> 0 then c else Int.compare a.seq b.seq
end

module Queue = Util.Heap.Make (Event_order)

type t = {
  queue : Queue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let create () = { queue = Queue.create (); clock = 0.; next_seq = 0; processed = 0 }
let now t = t.clock

let schedule_at t ~time action =
  let time = Stdlib.max time t.clock in
  Queue.add t.queue { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay action = schedule_at t ~time:(t.clock +. Stdlib.max 0. delay) action

let step t =
  match Queue.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.processed <- t.processed + 1;
    ev.action ();
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    let continue = ref true in
    while !continue do
      match Queue.min_elt t.queue with
      | Some ev when ev.time <= limit -> ignore (step t)
      | Some _ | None -> continue := false
    done;
    if t.clock < limit then t.clock <- limit

let pending t = Queue.length t.queue
let events_processed t = t.processed
