(** Network topology and latency model.

    Nodes live in a synthetic metric space: each node gets a random point in
    the unit square and the one-way latency between two nodes is an affine
    function of their Euclidean distance, scaled so that the *mean* one-way
    latency matches [mean_latency].  This reproduces the paper's cc-DTM
    metric-space assumption; the default mean of 15 ms matches the paper's
    observed ~30 ms round trips.  Per-message jitter is applied by
    {!Network}. *)

type t

val create : ?seed:int -> ?mean_latency:float -> ?local_latency:float -> nodes:int -> unit -> t
(** [create ~nodes ()] places [nodes] nodes.  [mean_latency] (default 15.0
    ms) is the target mean one-way remote latency; [local_latency] (default
    0.05 ms) is the cost of a node messaging itself. *)

val nodes : t -> int

val latency : t -> src:int -> dst:int -> float
(** Deterministic base one-way latency in milliseconds. *)

val mean_remote_latency : t -> float
(** Realised mean over all ordered remote pairs (for tests/reporting). *)

val uniform : ?latency:float -> nodes:int -> unit -> t
(** A topology in which every remote pair has the same latency (default
    15.0 ms); useful for unit tests and for the TFA baseline's 5 ms setting. *)
