(** Discrete-event simulation engine.

    The engine owns virtual time (in milliseconds) and a priority queue of
    events.  Everything in the reproduction — network delivery, node
    processing, client think time, failure injection — is an event.  Events
    scheduled for the same instant fire in scheduling order, which together
    with the seeded {!Util.Rng} makes every experiment fully deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time in milliseconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. max 0. delay]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past fire immediately (at [now]). *)

val run : ?until:float -> t -> unit
(** Drain the event queue, advancing virtual time.  With [until], stops once
    the next event lies strictly beyond that time (the clock is then set to
    [until]). *)

val step : t -> bool
(** Execute exactly one event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events executed since creation. *)
