(** Simulated message-passing network with per-node service queues.

    Delivery of a message costs the topology's one-way latency plus jitter;
    the receiving node then *processes* messages one at a time, each taking
    [service_time] — so a node flooded with requests becomes a genuine
    bottleneck.  That queueing effect is what produces the paper's Fig. 10
    shape (throughput first rises as failures spread the read load, then
    degrades as quorums grow).

    Messages to failed nodes are silently dropped, as are messages sent by
    failed nodes; higher layers recover through RPC timeouts. *)

type 'msg t

val create :
  engine:Engine.t ->
  topology:Topology.t ->
  ?service_time:float ->
  ?jitter:float ->
  ?seed:int ->
  unit ->
  'msg t
(** [service_time] (default 0.25 ms) is the per-message processing cost at
    the receiver; [jitter] (default 0.1) is the relative uniform jitter
    applied to each delivery latency (0.1 = up to ±10%). *)

val engine : 'msg t -> Engine.t
val topology : 'msg t -> Topology.t
val nodes : 'msg t -> int

val set_handler : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Install the message handler of [node].  At most one handler per node;
    re-installation replaces. *)

val send : 'msg t -> ?kind:string -> src:int -> dst:int -> 'msg -> unit
(** Enqueue one message.  [kind] labels the message for accounting
    (e.g. ["read_req"]); unlabeled messages count as ["other"]. *)

val multicast : 'msg t -> ?kind:string -> src:int -> dsts:int list -> 'msg -> unit
(** [send] to every destination (self included if listed). *)

val fail : 'msg t -> int -> unit
(** Mark a node fail-stop: it stops sending, receiving, and processing. *)

val revive : 'msg t -> int -> unit
val is_failed : 'msg t -> int -> bool
val alive_nodes : 'msg t -> int list

val messages_sent : 'msg t -> int
(** Total *remote* messages sent (self-sends are not counted, matching the
    paper's accounting of network messages). *)

val messages_by_kind : 'msg t -> (string * int) list
(** Remote message counts grouped by [kind], sorted by kind. *)

val reset_counters : 'msg t -> unit
(** Zero the message counters (used to exclude warm-up from measurements). *)
