lib/baselines/tfa.ml: Array Core Executor Float Hashtbl Ids List Metrics Option Oracle Rwset Sim Stdlib Store Txn Util
