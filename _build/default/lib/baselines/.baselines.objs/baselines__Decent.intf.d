lib/baselines/decent.mli: Core
