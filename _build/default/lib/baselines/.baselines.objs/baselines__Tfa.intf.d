lib/baselines/tfa.mli: Core
