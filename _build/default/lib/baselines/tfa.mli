(** TFA baseline (HyFlow's Transaction Forwarding Algorithm).

    A single-copy DTM: each object lives at exactly one home node; clients
    read and write by unicast RPC to the home.  Consistency uses TFA's
    asynchronous clocks: every node keeps a local clock bumped on commits;
    a transaction records the clock of its start node ([rv]) and, when a
    read reply carries a newer remote clock, it *forwards* — revalidates its
    read-set at the owning homes and advances [rv], aborting if anything
    changed.  Commit locks the write-set at the homes, validates, applies,
    and bumps clocks.

    The paper uses HyFlow as the no-failure upper baseline: unicast at ~5 ms
    (vs. the testbed's 30 ms multicast) but no fault tolerance — there are
    no replicas, so a home failure loses objects.  Defaults reproduce that
    latency regime.

    Programs come from the same {!Core.Txn} DSL; [Nested] boundaries are
    flattened (TFA here is the flat baseline; N-TFA is out of scope). *)

type t

val create :
  ?nodes:int -> ?seed:int -> ?latency:float -> ?service_time:float -> ?with_oracle:bool ->
  unit -> t
(** Defaults: 13 nodes, 5 ms uniform one-way latency, 0.25 ms service. *)

val nodes : t -> int
val now : t -> float
val metrics : t -> Core.Metrics.t
val messages_sent : t -> int
val alloc_object : t -> init:Core.Txn.value -> Core.Ids.obj_id
val latest_value : t -> oid:Core.Ids.obj_id -> Core.Txn.value

val submit :
  t -> node:int -> (unit -> Core.Txn.t) -> on_done:(Core.Executor.outcome -> unit) -> unit

val run_for : t -> float -> unit
val drain : t -> unit
val reset_counters : t -> unit
val check_consistency : t -> (unit, string) result
