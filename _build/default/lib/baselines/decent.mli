(** Decent-STM baseline (Bieniusa & Fuhrmann's decentralized snapshot STM).

    Fully replicated multi-version stores: every node keeps a bounded
    history of committed versions per object.  A transaction reads the
    newest version no younger than its snapshot time from the object's
    responsible node, so readers never abort (unless the history was
    trimmed past their snapshot).  Commits are validated first-committer-
    wins at the responsible nodes and then *broadcast to every replica* —
    the atomic-broadcast cost structure that makes cluster-style replication
    non-scalable on a metric-space network, which is why the paper finds
    Decent-STM consistently below QR-DTM.

    Deviation noted in DESIGN.md: update transactions validate their full
    read-set at commit (serializable mode) so the 1-copy oracle applies;
    read-only transactions serialize at their snapshot. *)

type t

val create :
  ?nodes:int -> ?seed:int -> ?service_time:float -> ?history_limit:int ->
  ?with_oracle:bool -> unit -> t
(** Defaults: 13 nodes on the same metric-space topology class as QR-DTM
    (~15 ms mean one-way latency), 0.5 ms service time (snapshot
    bookkeeping costs more per message than QR's version check). *)

val nodes : t -> int
val now : t -> float
val metrics : t -> Core.Metrics.t
val messages_sent : t -> int
val alloc_object : t -> init:Core.Txn.value -> Core.Ids.obj_id
val latest_value : t -> oid:Core.Ids.obj_id -> Core.Txn.value

val submit :
  t -> node:int -> (unit -> Core.Txn.t) -> on_done:(Core.Executor.outcome -> unit) -> unit

val run_for : t -> float -> unit
val drain : t -> unit
val reset_counters : t -> unit
val check_consistency : t -> (unit, string) result
