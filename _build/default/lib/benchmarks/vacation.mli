(** Vacation macro-benchmark (after STAMP's vacation application).

    Three reservation tables — cars, flights, hotels — each holding offer
    objects with [(available, price, total)] fields.  A reservation
    transaction runs one closed-nested call per table slot: query a handful
    of offers, pick the cheapest available, decrement its availability.
    Query-only transactions browse offers without reserving.  Invariant:
    [0 <= available <= total] for every offer.

    This is the paper's Vacation workload: "each of the reservations for
    car, hotel and flight forms a CT". *)

val categories : int
(** 3: cars, flights, hotels. *)

val offers_scanned : int
(** Offers examined per reservation call. *)

val benchmark : Workload.benchmark

(** {2 Exposed for tests} *)

type handle

val create : Core.Cluster.t -> offers_per_category:int -> handle

val reserve : handle -> Util.Rng.t -> category:int -> Core.Txn.t
(** One reservation call; returns [Int price] or [Unit] if everything
    scanned was sold out.  Randomness is fixed at call time. *)

val query : handle -> Util.Rng.t -> category:int -> Core.Txn.t
(** Read-only browse; returns the cheapest available price seen. *)

val check_offers : Core.Cluster.t -> handle -> (unit, string) result
val total_reserved : Core.Cluster.t -> handle -> int
