open Core
open Txn.Syntax

let max_level = 3
let nil = -1

(* Node encoding: List [Int key; List [Int next_0; ...; Int next_{h-1}]].
   The head node has key = min_int and full height. *)
let node_value ~key ~nexts =
  Store.Value.(List [ Int key; List (List.map (fun n -> Int n) nexts) ])

let node_key v = Store.Value.(to_int (field v 0))
let node_nexts v = Store.Value.(List.map to_int (to_list (field v 1)))

let node_next v level =
  let nexts = node_nexts v in
  match List.nth_opt nexts level with Some n -> n | None -> nil

let with_next v level target =
  let nexts = List.mapi (fun l n -> if l = level then target else n) (node_nexts v) in
  node_value ~key:(node_key v) ~nexts

(* Deterministic p=1/2 tower height from a key hash. *)
let height_of key =
  let h = ref 1 in
  let bits = ref (Int64.to_int (Int64.shift_right_logical
    (Int64.mul (Int64.of_int (key + 0x9E37)) 0x2545F4914F6CDD1DL) 17) land 0xFFFF) in
  while !h < max_level && !bits land 1 = 1 do
    incr h;
    bits := !bits lsr 1
  done;
  !h

type handle = {
  head : Core.Ids.obj_id;
  pool : Core.Ids.obj_id array;
  keys : int;
}

(* Pre-populate every other key via initial values. *)
let preloaded key = key mod 2 = 0

let create cluster ~keys =
  let pool = Array.init keys (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit) in
  let rec next_loaded_at k level =
    if k >= keys then nil
    else if preloaded k && height_of k > level then pool.(k)
    else next_loaded_at (k + 1) level
  in
  Array.iteri
    (fun key oid ->
      let h = height_of key in
      let nexts =
        List.init h (fun level ->
            if preloaded key then next_loaded_at (key + 1) level else nil)
      in
      Cluster.install_object cluster ~oid ~init:(node_value ~key ~nexts))
    pool;
  let head_nexts = List.init max_level (fun level -> next_loaded_at 0 level) in
  let head = Cluster.alloc_object cluster ~init:(node_value ~key:min_int ~nexts:head_nexts) in
  { head; pool; keys }

(* Search for [key]: returns the predecessor (oid, value) at every level,
   top-down order reversed into ascending level order, and whether level 0's
   successor is the key itself. *)
let search h ~key ~k =
  let rec descend ~oid ~v ~level ~preds =
    let next = node_next v level in
    if next <> nil then
      let* nv = Txn.read next in
      if node_key nv < key then descend ~oid:next ~v:nv ~level ~preds
      else finish ~oid ~v ~level ~preds ~succ:(Some (next, nv))
    else finish ~oid ~v ~level ~preds ~succ:None
  and finish ~oid ~v ~level ~preds ~succ =
    let preds = (oid, v) :: preds in
    if level = 0 then begin
      let found =
        match succ with
        | Some (soid, sv) when node_key sv = key -> Some (soid, sv)
        | Some _ | None -> None
      in
      k ~preds ~found
    end
    else descend ~oid ~v ~level:(level - 1) ~preds
  in
  let* hv = Txn.read h.head in
  descend ~oid:h.head ~v:hv ~level:(max_level - 1) ~preds:[]

(* [preds] is ascending by level (level 0 first) after search. *)
let add h ~key =
  search h ~key ~k:(fun ~preds ~found ->
      match found with
      | Some _ -> Txn.return (Store.Value.Bool false)
      | None ->
        let height = height_of key in
        let node = h.pool.(key) in
        let relevant = List.filteri (fun level _ -> level < height) preds in
        let succs =
          List.mapi (fun level (_, pv) -> node_next pv level) relevant
        in
        let* _ = Txn.write node (node_value ~key ~nexts:succs) in
        let rec link level = function
          | [] -> Txn.return (Store.Value.Bool true)
          | (poid, _) :: rest ->
            (* Re-read through the transaction: an earlier level's write to
               the same predecessor must be visible. *)
            let* pv = Txn.read poid in
            let* _ = Txn.write poid (with_next pv level node) in
            link (level + 1) rest
        in
        link 0 relevant)

let remove h ~key =
  search h ~key ~k:(fun ~preds ~found ->
      match found with
      | None -> Txn.return (Store.Value.Bool false)
      | Some (noid, nv) ->
        let rec unlink level = function
          | [] -> Txn.return (Store.Value.Bool true)
          | (poid, _) :: rest ->
            let* pv = Txn.read poid in
            if node_next pv level = noid then
              let* _ = Txn.write poid (with_next pv level (node_next nv level)) in
              unlink (level + 1) rest
            else Txn.return (Store.Value.Bool true)
        in
        unlink 0 preds)

let contains h ~key =
  search h ~key ~k:(fun ~preds:_ ~found ->
      Txn.return (Store.Value.Bool (Option.is_some found)))

let level_keys cluster h level =
  let rec walk oid acc steps =
    if oid = nil || steps > h.keys + 2 then List.rev acc
    else begin
      let v = Workload.latest_value cluster ~oid in
      let key = node_key v in
      let acc = if key = min_int then acc else key :: acc in
      walk (node_next v level) acc (steps + 1)
    end
  in
  walk h.head [] 0

let committed_keys cluster h = level_keys cluster h 0

let check_structure cluster h =
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && sorted rest
  in
  let level0 = level_keys cluster h 0 in
  if List.length level0 > h.keys then Error "skiplist: level-0 cycle"
  else if not (sorted level0) then Error "skiplist: level-0 keys not sorted"
  else begin
    let rec check_level level =
      if level >= max_level then Ok ()
      else begin
        let ks = level_keys cluster h level in
        if not (sorted ks) then
          Error (Printf.sprintf "skiplist: level-%d keys not sorted" level)
        else if not (List.for_all (fun k -> List.mem k level0) ks) then
          Error (Printf.sprintf "skiplist: level-%d not a subsequence of level 0" level)
        else check_level (level + 1)
      end
    in
    check_level 1
  end

let setup cluster (params : Workload.params) =
  let h = create cluster ~keys:params.objects in
  let generate rng =
    let ops =
      List.init params.calls (fun _ ->
          let key = Workload.pick_key rng params in
          if Util.Rng.chance rng params.read_ratio then contains h ~key
          else if Util.Rng.bool rng then add h ~key
          else remove h ~key)
    in
    fun () -> Workload.ops_as_cts ops
  in
  let check () = check_structure cluster h in
  { Workload.generate; check }

let benchmark = { Workload.name = "slist"; setup }
