open Core
open Txn.Syntax

let nil = -1

(* Node encoding: List [Int key; Int left; Int right; Bool present]. *)
let node_value ~key ~left ~right ~present =
  Store.Value.(List [ Int key; Int left; Int right; Bool present ])

let node_key v = Store.Value.(to_int (field v 0))
let node_left v = Store.Value.(to_int (field v 1))
let node_right v = Store.Value.(to_int (field v 2))
let node_present v = Store.Value.(to_bool (field v 3))
let with_present v present = Store.Value.(with_field v 3 (Bool present))

type handle = { root : Core.Ids.obj_id; pool : Core.Ids.obj_id array; keys : int }

let preloaded key = key mod 2 = 0

let create cluster ~keys =
  assert (keys >= 1);
  let pool = Array.init keys (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit) in
  (* Perfectly balanced shape over the sorted key space. *)
  let rec build lo hi =
    if lo > hi then nil
    else begin
      let mid = (lo + hi) / 2 in
      let left = build lo (mid - 1) in
      let right = build (mid + 1) hi in
      Cluster.install_object cluster ~oid:pool.(mid)
        ~init:(node_value ~key:mid ~left ~right ~present:(preloaded mid));
      pool.(mid)
    end
  in
  let root = build 0 (keys - 1) in
  { root; pool; keys }

let search h ~key ~k =
  let rec walk oid =
    if oid = nil then k None
    else
      let* v = Txn.read oid in
      let nk = node_key v in
      if nk = key then k (Some (oid, v))
      else walk (if key < nk then node_left v else node_right v)
  in
  walk h.root

let add h ~key =
  search h ~key ~k:(fun found ->
      match found with
      | Some (oid, v) when not (node_present v) ->
        let* _ = Txn.write oid (with_present v true) in
        Txn.return (Store.Value.Bool true)
      | Some _ | None -> Txn.return (Store.Value.Bool false))

let remove h ~key =
  search h ~key ~k:(fun found ->
      match found with
      | Some (oid, v) when node_present v ->
        let* _ = Txn.write oid (with_present v false) in
        Txn.return (Store.Value.Bool true)
      | Some _ | None -> Txn.return (Store.Value.Bool false))

let contains h ~key =
  search h ~key ~k:(fun found ->
      match found with
      | Some (_, v) -> Txn.return (Store.Value.Bool (node_present v))
      | None -> Txn.return (Store.Value.Bool false))

let committed_keys cluster h =
  let rec inorder oid acc =
    if oid = nil then acc
    else begin
      let v = Workload.latest_value cluster ~oid in
      let acc = inorder (node_right v) acc in
      let acc = if node_present v then node_key v :: acc else acc in
      inorder (node_left v) acc
    end
  in
  inorder h.root []

let check_structure cluster h =
  let count = ref 0 in
  let rec check oid lo hi =
    if oid = nil then Ok ()
    else begin
      incr count;
      if !count > h.keys then Error "bst: cycle detected"
      else begin
        let v = Workload.latest_value cluster ~oid in
        let key = node_key v in
        if key < lo || key > hi then
          Error (Printf.sprintf "bst: key %d violates search order" key)
        else
          match check (node_left v) lo (key - 1) with
          | Ok () -> check (node_right v) (key + 1) hi
          | Error _ as e -> e
      end
    end
  in
  check h.root min_int max_int

let setup cluster (params : Workload.params) =
  let h = create cluster ~keys:params.objects in
  let generate rng =
    let ops =
      List.init params.calls (fun _ ->
          let key = Workload.pick_key rng params in
          if Util.Rng.chance rng params.read_ratio then contains h ~key
          else if Util.Rng.bool rng then add h ~key
          else remove h ~key)
    in
    fun () -> Workload.ops_as_cts ops
  in
  let check () = check_structure cluster h in
  { Workload.generate; check }

let benchmark = { Workload.name = "bst"; setup }
