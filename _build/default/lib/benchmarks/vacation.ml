open Core
open Txn.Syntax

let categories = 3
let offers_scanned = 2
let initial_stock = 20

(* Offer encoding: List [Int available; Int price; Int total]. *)
let offer_value ~available ~price ~total =
  Store.Value.(List [ Int available; Int price; Int total ])

let offer_available v = Store.Value.(to_int (field v 0))
let offer_price v = Store.Value.(to_int (field v 1))
let offer_total v = Store.Value.(to_int (field v 2))

type handle = { tables : Core.Ids.obj_id array array (* category -> offers *) }

let create cluster ~offers_per_category =
  assert (offers_per_category >= 1);
  let seed_rng = Util.Rng.create 1009 in
  let tables =
    Array.init categories (fun _ ->
        Array.init offers_per_category (fun _ ->
            let price = 50 + Util.Rng.int seed_rng 450 in
            Cluster.alloc_object cluster
              ~init:(offer_value ~available:initial_stock ~price ~total:initial_stock)))
  in
  { tables }

let pick_offers h rng ~category =
  let table = h.tables.(category) in
  List.init offers_scanned (fun _ -> table.(Util.Rng.int rng (Array.length table)))

(* Scan the chosen offers, remember the cheapest available one. *)
let scan offers ~k =
  let rec go best = function
    | [] -> k best
    | oid :: rest ->
      let* v = Txn.read oid in
      let best =
        if offer_available v > 0 then
          match best with
          | Some (_, bv) when offer_price bv <= offer_price v -> best
          | Some _ | None -> Some (oid, v)
        else best
      in
      go best rest
  in
  go None offers

let reserve h rng ~category =
  let offers = pick_offers h rng ~category in
  scan offers ~k:(fun best ->
      match best with
      | None -> Txn.return Store.Value.Unit
      | Some (oid, v) ->
        let updated =
          offer_value
            ~available:(offer_available v - 1)
            ~price:(offer_price v) ~total:(offer_total v)
        in
        let* _ = Txn.write oid updated in
        Txn.return (Store.Value.Int (offer_price v)))

let query h rng ~category =
  let offers = pick_offers h rng ~category in
  scan offers ~k:(fun best ->
      match best with
      | None -> Txn.return Store.Value.Unit
      | Some (_, v) -> Txn.return (Store.Value.Int (offer_price v)))

let fold_offers cluster h f init =
  Array.fold_left
    (fun acc table ->
      Array.fold_left
        (fun acc oid -> f acc (Workload.latest_value cluster ~oid))
        acc table)
    init h.tables

let check_offers cluster h =
  fold_offers cluster h
    (fun acc v ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        let available = offer_available v and total = offer_total v in
        if available < 0 then Error (Printf.sprintf "offer oversold: available %d" available)
        else if available > total then
          Error (Printf.sprintf "offer refunded beyond stock: %d > %d" available total)
        else Ok ())
    (Ok ())

let total_reserved cluster h =
  fold_offers cluster h (fun acc v -> acc + (offer_total v - offer_available v)) 0

let setup cluster (params : Workload.params) =
  let offers_per_category = Stdlib.max 1 (params.objects / categories) in
  let h = create cluster ~offers_per_category in
  let generate rng =
    let ops =
      List.init params.calls (fun i ->
          let category = i mod categories in
          if Util.Rng.chance rng params.read_ratio then query h rng ~category
          else reserve h rng ~category)
    in
    fun () -> Workload.ops_as_cts ops
  in
  let check () = check_offers cluster h in
  { Workload.generate; check }

let benchmark = { Workload.name = "vacation"; setup }
