open Core
open Txn.Syntax

let nil = -1
let red = 0
let black = 1

type node = { key : int; color : int; left : int; right : int; present : bool }

let encode n =
  Store.Value.(List [ Int n.key; Int n.color; Int n.left; Int n.right; Bool n.present ])

let decode v =
  Store.Value.
    {
      key = to_int (field v 0);
      color = to_int (field v 1);
      left = to_int (field v 2);
      right = to_int (field v 3);
      present = to_bool (field v 4);
    }

type handle = { rootp : Core.Ids.obj_id; pool : Core.Ids.obj_id array; keys : int }

let with_node oid k =
  let* v = Txn.read oid in
  k (decode v)

let write_node oid n = Txn.write oid (encode n)

(* Parent links during fix-up: either the root pointer or a node whose child
   field currently points at the rotated subtree's old root. *)
type link = Root | Parent of int

let set_link h link ~was ~now =
  match link with
  | Root -> Txn.write h.rootp (Store.Value.Int now)
  | Parent p ->
    with_node p (fun pn ->
        if pn.left = was then write_node p { pn with left = now }
        else write_node p { pn with right = now })

(* Left-rotate around [x]; afterwards x's old right child sits where x was. *)
let rotate_left h x ~link =
  with_node x (fun xn ->
      let y = xn.right in
      with_node y (fun yn ->
          let* _ = write_node x { xn with right = yn.left } in
          let* _ = write_node y { yn with left = x } in
          set_link h link ~was:x ~now:y))

let rotate_right h x ~link =
  with_node x (fun xn ->
      let y = xn.left in
      with_node y (fun yn ->
          let* _ = write_node x { xn with left = yn.right } in
          let* _ = write_node y { yn with right = x } in
          set_link h link ~was:x ~now:y))

let link_above = function [] -> Root | gg :: _ -> Parent gg

(* CLRS insert fix-up.  [path] lists ancestor oids of [z], nearest first.
   Every read below is a local read-set hit for nodes already on the path;
   only uncle reads can go remote. *)
let rec fixup h z path =
  match path with
  | [] ->
    (* z is the root: must be black. *)
    with_node z (fun zn ->
        if zn.color = red then
          let* _ = write_node z { zn with color = black } in
          Txn.return (Store.Value.Bool true)
        else Txn.return (Store.Value.Bool true))
  | p :: rest ->
    with_node p (fun pn ->
        if pn.color = black then Txn.return (Store.Value.Bool true)
        else begin
          match rest with
          | [] ->
            (* Red parent is the root: just re-blacken it. *)
            let* _ = write_node p { pn with color = black } in
            Txn.return (Store.Value.Bool true)
          | g :: above ->
            with_node g (fun gn ->
                let p_is_left = gn.left = p in
                let uncle = if p_is_left then gn.right else gn.left in
                let with_uncle_red k =
                  if uncle = nil then k false
                  else with_node uncle (fun un -> k (un.color = red))
                in
                with_uncle_red (fun uncle_is_red ->
                    if uncle_is_red then
                      (* Case 1: recolour and ascend. *)
                      let* _ = write_node p { pn with color = black } in
                      with_node uncle (fun un ->
                          let* _ = write_node uncle { un with color = black } in
                          let* _ = write_node g { gn with color = red } in
                          fixup h g above)
                    else begin
                      let z_is_inner = if p_is_left then pn.right = z else pn.left = z in
                      let glink = link_above above in
                      let finish top =
                        (* Case 3: recolour the new subtree top black, the
                           old grandparent red, rotate at the grandparent. *)
                        with_node top (fun tn ->
                            let* _ = write_node top { tn with color = black } in
                            with_node g (fun gn2 ->
                                let* _ = write_node g { gn2 with color = red } in
                                if p_is_left then rotate_right h g ~link:glink
                                else rotate_left h g ~link:glink))
                      in
                      if z_is_inner then
                        (* Case 2: rotate the parent first; z takes its place. *)
                        let* _ =
                          if p_is_left then rotate_left h p ~link:(Parent g)
                          else rotate_right h p ~link:(Parent g)
                        in
                        let* _ = finish z in
                        Txn.return (Store.Value.Bool true)
                      else
                        let* _ = finish p in
                        Txn.return (Store.Value.Bool true)
                    end))
        end)

let insert h ~key =
  let rec descend oid path =
    if oid = nil then attach path
    else
      with_node oid (fun n ->
          if n.key = key then
            if n.present then Txn.return (Store.Value.Bool false)
            else
              let* _ = write_node oid { n with present = true } in
              Txn.return (Store.Value.Bool true)
          else descend (if key < n.key then n.left else n.right) (oid :: path))
  and attach path =
    let z = h.pool.(key) in
    let* _ =
      write_node z { key; color = red; left = nil; right = nil; present = true }
    in
    let* _ =
      match path with
      | [] -> Txn.write h.rootp (Store.Value.Int z)
      | p :: _ ->
        with_node p (fun pn ->
            if key < pn.key then write_node p { pn with left = z }
            else write_node p { pn with right = z })
    in
    fixup h z path
  in
  let* rv = Txn.read h.rootp in
  descend (Store.Value.to_int rv) []

let search h ~key ~k =
  let rec descend oid =
    if oid = nil then k None
    else
      with_node oid (fun n ->
          if n.key = key then k (Some (oid, n))
          else descend (if key < n.key then n.left else n.right))
  in
  let* rv = Txn.read h.rootp in
  descend (Store.Value.to_int rv)

let remove h ~key =
  search h ~key ~k:(fun found ->
      match found with
      | Some (oid, n) when n.present ->
        let* _ = write_node oid { n with present = false } in
        Txn.return (Store.Value.Bool true)
      | Some _ | None -> Txn.return (Store.Value.Bool false))

let contains h ~key =
  search h ~key ~k:(fun found ->
      match found with
      | Some (_, n) -> Txn.return (Store.Value.Bool n.present)
      | None -> Txn.return (Store.Value.Bool false))

(* Half the key space (the even keys) is pre-installed as a balanced tree:
   nodes on incomplete deepest level are red, everything above black, which
   satisfies all red-black invariants for any population size. *)
let create cluster ~keys =
  let pool = Array.init keys (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit) in
  let preloaded = Array.init keys (fun key -> key) |> Array.to_list
                  |> List.filter (fun key -> key mod 2 = 0) in
  let preloaded = Array.of_list preloaded in
  let n = Array.length preloaded in
  let max_depth =
    (* Deepest level of the midpoint-balanced tree: floor(log2 n).  All
       nodes there are leaves, so colouring exactly that level red creates
       no red-red edge and equalises black heights. *)
    let rec lg k = if k <= 1 then 0 else 1 + lg (k / 2) in
    lg n
  in
  let rec build lo hi depth =
    if lo > hi then nil
    else begin
      let mid = (lo + hi) / 2 in
      let key = preloaded.(mid) in
      let left = build lo (mid - 1) (depth + 1) in
      let right = build (mid + 1) hi (depth + 1) in
      let color = if depth = max_depth then red else black in
      Cluster.install_object cluster ~oid:pool.(key)
        ~init:(encode { key; color; left; right; present = true });
      pool.(key)
    end
  in
  let root = if n = 0 then nil else build 0 (n - 1) 0 in
  (* The root must be black. *)
  if root <> nil then begin
    let rv = Workload.latest_value cluster ~oid:root in
    Cluster.install_object cluster ~oid:root
      ~init:(encode { (decode rv) with color = black })
  end;
  Array.iteri
    (fun key oid ->
      if key mod 2 = 1 then
        Cluster.install_object cluster ~oid
          ~init:(encode { key; color = red; left = nil; right = nil; present = false }))
    pool;
  let rootp = Cluster.alloc_object cluster ~init:(Store.Value.Int root) in
  { rootp; pool; keys }

let committed_node cluster oid = decode (Workload.latest_value cluster ~oid)

let committed_keys cluster h =
  let root = Store.Value.to_int (Workload.latest_value cluster ~oid:h.rootp) in
  let rec inorder oid acc =
    if oid = nil then acc
    else begin
      let n = committed_node cluster oid in
      let acc = inorder n.right acc in
      let acc = if n.present then n.key :: acc else acc in
      inorder n.left acc
    end
  in
  inorder root []

let check_structure cluster h =
  let root = Store.Value.to_int (Workload.latest_value cluster ~oid:h.rootp) in
  let visited = ref 0 in
  (* Returns the black height of the subtree, or an error. *)
  let rec check oid lo hi parent_red =
    if oid = nil then Ok 1
    else begin
      incr visited;
      if !visited > h.keys then Error "rbtree: cycle detected"
      else begin
        let n = committed_node cluster oid in
        if n.key < lo || n.key > hi then
          Error (Printf.sprintf "rbtree: key %d violates search order" n.key)
        else if parent_red && n.color = red then
          Error (Printf.sprintf "rbtree: red-red edge at key %d" n.key)
        else
          match check n.left lo (n.key - 1) (n.color = red) with
          | Error _ as e -> e
          | Ok lh ->
            begin
              match check n.right (n.key + 1) hi (n.color = red) with
              | Error _ as e -> e
              | Ok rh ->
                if lh <> rh then
                  Error
                    (Printf.sprintf "rbtree: black-height mismatch at key %d (%d vs %d)"
                       n.key lh rh)
                else Ok (lh + if n.color = black then 1 else 0)
            end
      end
    end
  in
  if root = nil then Ok ()
  else begin
    let rn = committed_node cluster root in
    if rn.color <> black then Error "rbtree: root is not black"
    else match check root min_int max_int false with Ok _ -> Ok () | Error _ as e -> e
  end

let setup cluster (params : Workload.params) =
  let h = create cluster ~keys:params.objects in
  let generate rng =
    let ops =
      List.init params.calls (fun _ ->
          let key = Workload.pick_key rng params in
          if Util.Rng.chance rng params.read_ratio then contains h ~key
          else if Util.Rng.bool rng then insert h ~key
          else remove h ~key)
    in
    fun () -> Workload.ops_as_cts ops
  in
  let check () = check_structure cluster h in
  { Workload.generate; check }

let benchmark = { Workload.name = "rbtree"; setup }
