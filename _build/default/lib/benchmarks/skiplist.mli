(** Distributed skip list (SList) micro-benchmark.

    A pointer-based skip list with per-key pre-allocated node objects; tower
    heights are a deterministic function of the key (so retried inserts are
    identical transactions).  Searches traverse from the head reading every
    node on the path — the longest transactions of the suite, matching the
    paper's observation that SList shows the largest closed-nesting gains. *)

val max_level : int

val benchmark : Workload.benchmark

(** {2 Exposed for tests} *)

type handle

val create : Core.Cluster.t -> keys:int -> handle
val height_of : int -> int
(** Deterministic tower height of a key, in [\[1, max_level\]]. *)

val add : handle -> key:int -> Core.Txn.t
(** Link the key (no-op when present); returns [Bool inserted]. *)

val remove : handle -> key:int -> Core.Txn.t
(** Unlink the key (no-op when absent); returns [Bool removed]. *)

val contains : handle -> key:int -> Core.Txn.t
(** Read-only membership test; returns [Bool present]. *)

val committed_keys : Core.Cluster.t -> handle -> int list
(** Replica-side walk of level 0, ascending. *)

val check_structure : Core.Cluster.t -> handle -> (unit, string) result
(** Level-0 keys strictly increasing; every higher level is a subsequence
    of level 0; no cycles. *)
