(** Binary search tree micro-benchmark (used by the paper's Fig. 10).

    A static balanced BST over the key space with per-node presence flags:
    add/remove toggle the flag of the key's node after traversing (and
    reading) the whole root-to-node path; contains is the read-only
    traversal.  Keeping the shape static avoids transactional rebalancing
    (the RBTree benchmark exercises that) while preserving the conflict
    pattern of a tree: writes near the root invalidate every concurrent
    traversal through it. *)

val benchmark : Workload.benchmark

(** {2 Exposed for tests} *)

type handle

val create : Core.Cluster.t -> keys:int -> handle
val add : handle -> key:int -> Core.Txn.t (** [Bool added] *)

val remove : handle -> key:int -> Core.Txn.t (** [Bool removed] *)

val contains : handle -> key:int -> Core.Txn.t (** [Bool present] *)

val committed_keys : Core.Cluster.t -> handle -> int list
val check_structure : Core.Cluster.t -> handle -> (unit, string) result
