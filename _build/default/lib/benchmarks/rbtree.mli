(** Distributed red-black tree micro-benchmark.

    A genuine red-black tree over transactional node objects: insert runs
    the full CLRS fix-up — recolourings and single/double rotations — as
    transactional reads and writes (rotation writes near the root conflict
    with every concurrent traversal, which is what makes RBTree contention-
    sensitive in the paper).  Removal is by presence flag ("lazy deletion",
    the standard TM-benchmark formulation): the node stays in the structure
    and is revived by a later insert, so the red-black shape invariants are
    preserved without the double-black delete fix-up.

    Node objects are pre-allocated per key; an aborted insert leaks
    nothing. *)

val benchmark : Workload.benchmark

(** {2 Exposed for tests} *)

type handle

val create : Core.Cluster.t -> keys:int -> handle

val insert : handle -> key:int -> Core.Txn.t
(** Returns [Bool true] if the key became present. *)

val remove : handle -> key:int -> Core.Txn.t
(** Lazy delete; [Bool true] if the key was present. *)

val contains : handle -> key:int -> Core.Txn.t

val committed_keys : Core.Cluster.t -> handle -> int list
(** Present keys, ascending, from the replicas' committed state. *)

val check_structure : Core.Cluster.t -> handle -> (unit, string) result
(** BST order, root black, no red-red edge, equal black height, no cycle. *)
