let paper_suite =
  [ Bank.benchmark; Hashmap.benchmark; Skiplist.benchmark; Rbtree.benchmark;
    Vacation.benchmark ]

let all = paper_suite @ [ Bst.benchmark; Counter.benchmark ]

let find name =
  List.find_opt (fun (b : Workload.benchmark) -> String.equal b.name name) all

let names () = List.map (fun (b : Workload.benchmark) -> b.name) all
