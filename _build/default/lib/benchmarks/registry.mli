(** Benchmark registry: name → benchmark lookup for the harness and CLI. *)

val all : Workload.benchmark list
(** Every benchmark, in the paper's reporting order:
    bank, hashmap, slist, rbtree, vacation, bst, counter. *)

val paper_suite : Workload.benchmark list
(** The five benchmarks of the paper's Figs. 5-7 and Table 8. *)

val find : string -> Workload.benchmark option
val names : unit -> string list
