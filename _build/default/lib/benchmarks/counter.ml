open Core
open Txn.Syntax

let increment oid =
  let* v = Txn.read oid in
  Txn.write oid (Store.Value.Int (Store.Value.to_int v + 1))

let total cluster ~oids =
  List.fold_left
    (fun acc oid -> acc + Store.Value.to_int (Workload.latest_value cluster ~oid))
    0 oids

let setup cluster (params : Workload.params) =
  let oids =
    List.init params.objects (fun _ -> Cluster.alloc_object cluster ~init:(Store.Value.Int 0))
  in
  let table = Array.of_list oids in
  let generate rng =
    let ops =
      List.init params.calls (fun _ ->
          let oid = table.(Workload.pick_key rng params) in
          if Util.Rng.chance rng params.read_ratio then Txn.read oid else increment oid)
    in
    fun () -> Workload.ops_as_cts ops
  in
  let check () =
    if total cluster ~oids >= 0 then Ok () else Error "counter went negative"
  in
  { Workload.generate; check }

let benchmark = { Workload.name = "counter"; setup }
