lib/benchmarks/counter.mli: Core Workload
