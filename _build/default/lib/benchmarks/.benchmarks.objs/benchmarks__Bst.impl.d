lib/benchmarks/bst.ml: Array Cluster Core List Printf Store Txn Util Workload
