lib/benchmarks/bank.ml: Array Cluster Core List Printf Store Txn Util Workload
