lib/benchmarks/registry.mli: Workload
