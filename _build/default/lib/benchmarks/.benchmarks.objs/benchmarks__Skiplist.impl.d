lib/benchmarks/skiplist.ml: Array Cluster Core Int64 List Option Printf Store Txn Util Workload
