lib/benchmarks/bst.mli: Core Workload
