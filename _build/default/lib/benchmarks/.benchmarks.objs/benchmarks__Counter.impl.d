lib/benchmarks/counter.ml: Array Cluster Core List Store Txn Util Workload
