lib/benchmarks/rbtree.mli: Core Workload
