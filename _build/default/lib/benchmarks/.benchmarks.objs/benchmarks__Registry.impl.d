lib/benchmarks/registry.ml: Bank Bst Counter Hashmap List Rbtree Skiplist String Vacation Workload
