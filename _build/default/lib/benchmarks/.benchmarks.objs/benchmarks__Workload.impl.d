lib/benchmarks/workload.ml: Core List Store Util
