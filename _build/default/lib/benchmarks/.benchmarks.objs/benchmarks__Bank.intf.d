lib/benchmarks/bank.mli: Core Workload
