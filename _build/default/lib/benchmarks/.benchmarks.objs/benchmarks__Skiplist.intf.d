lib/benchmarks/skiplist.mli: Core Workload
