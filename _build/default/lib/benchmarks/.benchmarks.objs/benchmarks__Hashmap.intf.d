lib/benchmarks/hashmap.mli: Core Workload
