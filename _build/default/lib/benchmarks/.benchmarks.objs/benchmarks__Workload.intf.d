lib/benchmarks/workload.mli: Core Util
