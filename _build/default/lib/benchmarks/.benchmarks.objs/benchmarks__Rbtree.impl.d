lib/benchmarks/rbtree.ml: Array Cluster Core List Printf Store Txn Util Workload
