lib/benchmarks/hashmap.ml: Array Cluster Core List Printf Stdlib Store Txn Util Workload
