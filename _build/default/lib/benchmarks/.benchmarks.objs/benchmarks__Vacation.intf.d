lib/benchmarks/vacation.mli: Core Util Workload
