open Core
open Txn.Syntax

let initial_balance = 1_000

let transfer ~from_ ~to_ ~amount =
  let* src = Txn.read from_ in
  let* dst = Txn.read to_ in
  let* _ = Txn.write from_ (Store.Value.Int (Store.Value.to_int src - amount)) in
  Txn.write to_ (Store.Value.Int (Store.Value.to_int dst + amount))

let audit a b =
  let* va = Txn.read a in
  let* vb = Txn.read b in
  Txn.return (Store.Value.Int (Store.Value.to_int va + Store.Value.to_int vb))

let total_balance cluster ~accounts =
  Array.fold_left
    (fun acc oid -> acc + Store.Value.to_int (Workload.latest_value cluster ~oid))
    0 accounts

let setup cluster (params : Workload.params) =
  let accounts =
    Array.init params.objects (fun _ ->
        Cluster.alloc_object cluster ~init:(Store.Value.Int initial_balance))
  in
  let pick_two rng =
    let a = Workload.pick_key rng params in
    let rec other () =
      let b = Workload.pick_key rng params in
      if b = a then other () else b
    in
    (accounts.(a), accounts.(other ()))
  in
  let generate rng =
    let ops =
      List.init params.calls (fun _ ->
          let a, b = pick_two rng in
          if Util.Rng.chance rng params.read_ratio then audit a b
          else transfer ~from_:a ~to_:b ~amount:(1 + Util.Rng.int rng 10))
    in
    fun () -> Workload.ops_as_cts ops
  in
  let check () =
    let expected = params.objects * initial_balance in
    let actual = total_balance cluster ~accounts in
    if actual = expected then Ok ()
    else Error (Printf.sprintf "bank: total balance %d, expected %d" actual expected)
  in
  { Workload.generate; check }

let benchmark = { Workload.name = "bank"; setup }
