(** Shared-counter micro-benchmark (quickstart and tests).

    [objects] counters; a write operation increments one, a read operation
    reads one.  The invariant is that every counter equals the number of
    increments committed against it — checked against the executor metrics
    indirectly by summing counters. *)

val benchmark : Workload.benchmark

val increment : Core.Ids.obj_id -> Core.Txn.t
(** One-shot increment program for a single counter object. *)

val total : Core.Cluster.t -> oids:Core.Ids.obj_id list -> int
(** Sum of the committed counter values (replica-side, for checks). *)
