(** Distributed hashmap micro-benchmark.

    A fixed number of buckets, each a transactional linked chain of
    per-key node objects (sorted by key).  Put/remove splice nodes in and
    out of the chain; every operation traverses — and therefore reads — the
    chain prefix, so chains growing with [objects] raises both transaction
    length and conflict probability, reproducing the paper's observation
    that Hashmap contention *increases* with the number of objects.

    Node objects are pre-allocated one per key (a pool), so aborted inserts
    cannot leak allocations; an unlinked node's content is simply stale
    until its key is inserted again. *)

val bucket_count : int

val benchmark : Workload.benchmark

(** {2 Exposed for tests} *)

type handle

val create : Core.Cluster.t -> keys:int -> handle
val put : handle -> key:int -> data:int -> Core.Txn.t
val remove : handle -> key:int -> Core.Txn.t
val get : handle -> key:int -> Core.Txn.t
(** Returns [Int data] or [Unit] when absent. *)

val committed_bindings : Core.Cluster.t -> handle -> (int * int) list
(** Replica-side walk of all chains (sorted by key), for invariant checks. *)

val check_chains : Core.Cluster.t -> handle -> (unit, string) result
