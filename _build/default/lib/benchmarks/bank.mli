(** Bank (monetary) macro-benchmark, after the paper's Bank application.

    [objects] accounts each start with {!initial_balance}.  A write
    operation transfers a random amount between two distinct accounts
    (one closed-nested call); a read operation audits two accounts.  The
    invariant is conservation of money: the committed balances always sum
    to [objects * initial_balance]. *)

val initial_balance : int

val benchmark : Workload.benchmark

val transfer : from_:Core.Ids.obj_id -> to_:Core.Ids.obj_id -> amount:int -> Core.Txn.t
(** One transfer program (exposed for examples and tests). *)

val total_balance : Core.Cluster.t -> accounts:Core.Ids.obj_id array -> int
