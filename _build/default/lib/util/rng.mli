(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic choice in the simulator and the workload generators is
    drawn from an explicit [Rng.t] so that whole experiments are reproducible
    from a single seed.  [split] derives an independent stream, which lets
    each node / client / workload own its own generator without cross-talk
    when event interleavings change. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split rng] derives a statistically independent generator and advances
    [rng]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance rng p] is true with probability [p] (clamped to [0;1]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val zipf : t -> n:int -> skew:float -> int
(** Zipf-distributed index in [\[0, n)]; [skew = 0.] is uniform.  Used by
    workload generators to create contention hot spots. *)
