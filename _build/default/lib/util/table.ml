type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let pad row n = row @ List.init (Stdlib.max 0 (n - List.length row)) (fun _ -> "")

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) (List.length t.header) rows
  in
  let all = List.map (fun r -> pad r ncols) (t.header :: rows) in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  match all with
  | [] -> ""
  | header :: body ->
    String.concat "\n" ((render_row header :: sep :: List.map render_row body) @ [ "" ])

let quote cell =
  if String.contains cell ',' then "\"" ^ cell ^ "\"" else cell

let render_csv t =
  let rows = t.header :: List.rev t.rows in
  String.concat "\n" (List.map (fun r -> String.concat "," (List.map quote r)) rows)

let series ~title ~x_label ~columns ~rows =
  let tbl = create ~header:(x_label :: columns) in
  List.iter
    (fun (x, values) ->
      add_row tbl (x :: List.map (fun v -> Printf.sprintf "%.2f" v) values))
    rows;
  Printf.sprintf "== %s ==\n%s" title (render tbl)
