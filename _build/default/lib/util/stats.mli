(** Streaming statistics.

    Welford-style running mean/variance plus reservoir-free exact percentile
    support for the modest sample counts the harness produces. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
val mean : t -> float

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0;100\]], nearest-rank on the recorded
    samples; [nan] when empty.  Samples are retained, so use only for
    bounded-size series (harness latency samples are capped upstream). *)

val merge : t -> t -> t
(** Combine two accumulators (parallel merge of Welford states). *)

val summary : t -> string
(** Human-readable one-line summary. *)
