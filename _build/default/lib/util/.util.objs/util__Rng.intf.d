lib/util/rng.mli:
