lib/util/table.mli:
