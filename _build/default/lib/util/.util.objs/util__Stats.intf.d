lib/util/stats.mli:
