lib/util/heap.mli:
