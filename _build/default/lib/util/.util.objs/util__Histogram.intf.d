lib/util/histogram.mli:
