type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable samples : float list;
  (* kept for percentile queries; callers cap their sample volume *)
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity; samples = [] }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.samples <- x :: t.samples

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. Float.of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min_v
let max t = t.max_v

let percentile t p =
  if t.n = 0 then Float.nan
  else begin
    let sorted = List.sort Float.compare t.samples in
    let arr = Array.of_list sorted in
    let rank = int_of_float (ceil (p /. 100. *. Float.of_int t.n)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
    arr.(idx)
  end

let merge a b =
  if a.n = 0 then { b with samples = b.samples }
  else if b.n = 0 then { a with samples = a.samples }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. Float.of_int b.n /. Float.of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. Float.of_int a.n *. Float.of_int b.n /. Float.of_int n)
    in
    {
      n;
      mean;
      m2;
      min_v = Stdlib.min a.min_v b.min_v;
      max_v = Stdlib.max a.max_v b.max_v;
      samples = List.rev_append a.samples b.samples;
    }
  end

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
      (stddev t) t.min_v t.max_v
