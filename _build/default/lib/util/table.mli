(** ASCII table and data-series rendering for the experiment harness.

    The harness regenerates every figure of the paper as a table of series
    (one row per x value, one column per protocol / system); this module is
    the single place that formats them. *)

type t

val create : header:string list -> t
(** A table whose first row is [header]. *)

val add_row : t -> string list -> unit
(** Append one row; short rows are padded with empty cells. *)

val render : t -> string
(** Box-drawing-free, column-aligned rendering suitable for terminals and
    for diffing in EXPERIMENTS.md. *)

val render_csv : t -> string
(** Comma-separated rendering (cells containing commas are quoted). *)

val series :
  title:string ->
  x_label:string ->
  columns:string list ->
  rows:(string * float list) list ->
  string
(** Render a named figure series: a title line, then a table with the x
    value in the first column and one column per series, floats printed
    with 2 decimal places. *)
