type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ?(buckets = 32) ~lo ~hi () =
  assert (hi > lo && buckets > 0);
  {
    lo;
    hi;
    width = (hi -. lo) /. Float.of_int buckets;
    counts = Array.make buckets 0;
    under = 0;
    over = 0;
    total = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let idx = int_of_float ((x -. t.lo) /. t.width) in
    let idx = Stdlib.min idx (Array.length t.counts - 1) in
    t.counts.(idx) <- t.counts.(idx) + 1
  end

let count t = t.total
let underflow t = t.under
let overflow t = t.over

let bucket_counts t =
  Array.mapi
    (fun i n ->
      let lo = t.lo +. (Float.of_int i *. t.width) in
      (lo, lo +. t.width, n))
    t.counts

let render ?(width = 40) t =
  let max_count = Array.fold_left Stdlib.max 1 t.counts in
  let buf = Buffer.create 256 in
  Array.iter
    (fun (lo, hi, n) ->
      let bar = n * width / max_count in
      Buffer.add_string buf
        (Printf.sprintf "[%8.2f, %8.2f) %6d %s\n" lo hi n (String.make bar '#')))
    (bucket_counts t);
  if t.under > 0 then Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.under);
  if t.over > 0 then Buffer.add_string buf (Printf.sprintf "overflow  %d\n" t.over);
  Buffer.contents buf
