(** Fixed-width bucket histograms for latency / size distributions. *)

type t

val create : ?buckets:int -> lo:float -> hi:float -> unit -> t
(** [create ~lo ~hi ()] covers [\[lo, hi)] with [buckets] equal-width bins
    (default 32) plus underflow and overflow bins. *)

val add : t -> float -> unit
val count : t -> int

val bucket_counts : t -> (float * float * int) array
(** [(lo, hi, n)] per in-range bucket, ascending. *)

val underflow : t -> int
val overflow : t -> int

val render : ?width:int -> t -> string
(** ASCII bar rendering, one bucket per line. *)
