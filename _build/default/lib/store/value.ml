type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y -> ( try List.for_all2 equal x y with Invalid_argument _ -> false)
  | (Unit | Bool _ | Int _ | Float _ | Str _ | List _), _ -> false

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.pp_print_float fmt f
  | Str s -> Format.fprintf fmt "%S" s
  | List l ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ") pp)
      l

let to_string v = Format.asprintf "%a" pp v

let shape_error expected v =
  invalid_arg (Printf.sprintf "Value: expected %s, got %s" expected (to_string v))

let to_int = function Int i -> i | v -> shape_error "Int" v
let to_bool = function Bool b -> b | v -> shape_error "Bool" v
let to_float = function Float f -> f | v -> shape_error "Float" v
let to_str = function Str s -> s | v -> shape_error "Str" v
let to_list = function List l -> l | v -> shape_error "List" v
let int_opt = function Int i -> Some i | Unit | Bool _ | Float _ | Str _ | List _ -> None

let field v i =
  match v with
  | List l ->
    begin
      match List.nth_opt l i with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "Value.field: index %d out of range" i)
    end
  | Unit | Bool _ | Int _ | Float _ | Str _ -> shape_error "List" v

let with_field v i x =
  match v with
  | List l ->
    if i < 0 || i >= List.length l then
      invalid_arg (Printf.sprintf "Value.with_field: index %d out of range" i)
    else List (List.mapi (fun j old -> if j = i then x else old) l)
  | Unit | Bool _ | Int _ | Float _ | Str _ -> shape_error "List" v
