type entry = { version : int; value : Value.t; time : float }

type t = {
  history_limit : int;
  objects : (int, entry list) Hashtbl.t; (* newest first *)
}

let create ?(history_limit = 16) () =
  assert (history_limit >= 1);
  { history_limit; objects = Hashtbl.create 256 }

let ensure t ~oid ~init =
  if not (Hashtbl.mem t.objects oid) then
    Hashtbl.replace t.objects oid [ { version = 0; value = init; time = 0. } ]

let history t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Multiversion: unknown object %d" oid)

let latest t ~oid =
  match history t oid with
  | { version; value; _ } :: _ -> (version, value)
  | [] -> assert false

let at_or_before t ~oid ~time =
  let rec search = function
    | [] -> None
    | { version; value; time = committed } :: older ->
      if committed <= time then Some (version, value) else search older
  in
  search (history t oid)

let commit t ~oid ~version ~value ~time =
  let h = history t oid in
  match h with
  | { version = newest; _ } :: _ when version <= newest -> ()
  | _ ->
    let h = { version; value; time } :: h in
    let trimmed = List.filteri (fun i _ -> i < t.history_limit) h in
    Hashtbl.replace t.objects oid trimmed

let version t ~oid = fst (latest t ~oid)
