(** Universal transactional values.

    Every replicated object holds a [Value.t].  Benchmarks encode their node
    structures (tree nodes, buckets, reservation records) into this ADT with
    the helpers below; keeping the store monomorphic keeps the wire protocol
    and the executor simple. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Accessors} — raise [Invalid_argument] on shape mismatch, which in the
    benchmarks indicates a programming error, never a data race (the
    protocols guarantee consistent snapshots). *)

val to_int : t -> int
val to_bool : t -> bool
val to_float : t -> float
val to_str : t -> string
val to_list : t -> t list

(** {2 Option-returning accessors} *)

val int_opt : t -> int option

(** {2 Field encoding}

    A record is encoded as a [List] of fields; these helpers index fields
    positionally. *)

val field : t -> int -> t
val with_field : t -> int -> t -> t
(** Functional field update; raises [Invalid_argument] if out of range. *)
