(** Multi-version object store for the Decent-STM baseline.

    Decent-STM keeps a history of object states so that readers can always
    be served a consistent snapshot; conflicting transactions proceed as
    long as they see one.  We keep a bounded history of committed versions
    per object, each stamped with its commit time. *)

type t

val create : ?history_limit:int -> unit -> t
(** [history_limit] (default 16) versions retained per object. *)

val ensure : t -> oid:int -> init:Value.t -> unit

val latest : t -> oid:int -> int * Value.t
(** Newest committed (version, value).
    @raise Invalid_argument on unknown object. *)

val at_or_before : t -> oid:int -> time:float -> (int * Value.t) option
(** Newest version committed at or before [time]; [None] if the history has
    been trimmed past that point (the reader must then abort). *)

val commit : t -> oid:int -> version:int -> value:Value.t -> time:float -> unit
(** Append a committed version (ignored if not newer than the latest). *)

val version : t -> oid:int -> int
