lib/store/multiversion.ml: Hashtbl List Printf Value
