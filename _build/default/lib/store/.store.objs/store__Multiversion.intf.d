lib/store/multiversion.mli: Value
