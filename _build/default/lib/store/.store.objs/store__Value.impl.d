lib/store/value.ml: Bool Float Format Int List Printf String
