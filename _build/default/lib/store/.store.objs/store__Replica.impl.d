lib/store/replica.ml: Hashtbl List Printf Value
