lib/store/replica.mli: Value
