(* Randomized serializability stress: generate random transaction programs
   (reads, writes, nesting, read-modify-writes over a small object space),
   run many of them concurrently under every execution mode and both
   baselines, and require (a) every client terminates, (b) the 1-copy
   oracle accepts the full history, and (c) a derived counter invariant
   holds.  This is the property-based face of the paper's Theorem V.1. *)

open Core

(* A random operation mix over a small object space: read-modify-writes,
   transfer-style ops and pure reads, some wrapped in closed-nested calls. *)
let random_program rng oids =
  let pick () = oids.(Util.Rng.int rng (Array.length oids)) in
  let random_op () =
    match Util.Rng.int rng 3 with
    | 0 ->
      (* transfer-style: read two, increment one *)
      let a = pick () and b = pick () in
      Txn.bind (Txn.read a) (fun _ ->
          Txn.bind (Txn.read b) (fun vb ->
              Txn.write b (Store.Value.Int (Store.Value.to_int vb + 1))))
    | 1 ->
      let a = pick () in
      Txn.bind (Txn.read a) (fun va ->
          Txn.write a (Store.Value.Int (Store.Value.to_int va + 1)))
    | _ ->
      let a = pick () and b = pick () in
      Txn.bind (Txn.read a) (fun _ -> Txn.read b)
  in
  let ops = List.init (1 + Util.Rng.int rng 3) (fun _ -> random_op ()) in
  let with_nesting =
    List.map
      (fun op -> if Util.Rng.bool rng then Txn.nested (fun () -> op) else op)
      ops
  in
  fun () -> Benchmarks.Workload.seq with_nesting

let run_mode_stress mode seed () =
  let cluster = Cluster.create ~nodes:13 ~seed (Config.default mode) in
  let oids = Array.init 6 (fun _ -> Cluster.alloc_object cluster ~init:(Store.Value.Int 0)) in
  let rng = Util.Rng.create (seed * 13) in
  let live = ref 0 in
  let rec client node remaining rng =
    if remaining > 0 then begin
      let program = random_program rng oids in
      Cluster.submit cluster ~node program ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ -> client node (remaining - 1) rng
          | Executor.Failed msg -> Alcotest.failf "stress txn failed: %s" msg)
    end
    else decr live
  in
  for c = 0 to 9 do
    incr live;
    client (c mod 13) 6 (Util.Rng.split rng)
  done;
  Cluster.drain cluster;
  Alcotest.(check int) "all clients terminated" 0 !live;
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s oracle: %s" (Config.mode_name mode) msg

(* Increment-only stress where the exact final sum is known. *)
let run_counting_stress mode seed () =
  let cluster = Cluster.create ~nodes:13 ~seed (Config.default mode) in
  let oids = Array.init 4 (fun _ -> Cluster.alloc_object cluster ~init:(Store.Value.Int 0)) in
  let rng = Util.Rng.create (seed * 29) in
  let committed_increments = ref 0 in
  let live = ref 0 in
  let rec client node remaining rng =
    if remaining > 0 then begin
      let count = 1 + Util.Rng.int rng 3 in
      let ops =
        List.init count (fun _ ->
            let oid = oids.(Util.Rng.int rng 4) in
            if Util.Rng.bool rng then Txn.nested (fun () -> Benchmarks.Counter.increment oid)
            else Benchmarks.Counter.increment oid)
      in
      Cluster.submit cluster ~node (fun () -> Benchmarks.Workload.seq ops)
        ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ ->
            committed_increments := !committed_increments + count;
            client node (remaining - 1) rng
          | Executor.Failed msg -> Alcotest.failf "stress txn failed: %s" msg)
    end
    else decr live
  in
  for c = 0 to 7 do
    incr live;
    client ((c * 3) mod 13) 6 (Util.Rng.split rng)
  done;
  Cluster.drain cluster;
  Alcotest.(check int) "all clients terminated" 0 !live;
  let total =
    Array.fold_left
      (fun acc oid -> acc + Store.Value.to_int (Benchmarks.Workload.latest_value cluster ~oid))
      0 oids
  in
  Alcotest.(check int) "no lost or phantom increments" !committed_increments total;
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

let modes = [ Config.Flat; Config.Closed; Config.Checkpoint ]

let suite =
  List.concat_map
    (fun mode ->
      let name = Config.mode_name mode in
      [
        Alcotest.test_case (name ^ " random-mix stress, seed 61") `Quick
          (run_mode_stress mode 61);
        Alcotest.test_case (name ^ " random-mix stress, seed 62") `Quick
          (run_mode_stress mode 62);
        Alcotest.test_case (name ^ " counting stress, seed 71") `Quick
          (run_counting_stress mode 71);
        Alcotest.test_case (name ^ " counting stress, seed 72") `Quick
          (run_counting_stress mode 72);
      ])
    modes
