(* Cluster-level integration: failover during a live workload, quorum
   reassignment, and end-to-end consistency across failures. *)

open Core

let test_quorum_assignment () =
  let cluster = Cluster.create ~nodes:13 ~seed:12 (Config.default Config.Closed) in
  let rq = Cluster.read_quorum_of cluster ~node:4 in
  let wq = Cluster.write_quorum_of cluster ~node:9 in
  Alcotest.(check bool) "read quorum nonempty" true (rq <> []);
  Alcotest.(check bool) "write quorum nonempty" true (wq <> []);
  Alcotest.(check bool) "read/write intersect" true
    (Quorum.Check.intersects rq wq);
  (* Different salts may differ but must still intersect every write quorum. *)
  for node = 0 to 12 do
    let rq = Cluster.read_quorum_of cluster ~node in
    for other = 0 to 12 do
      let wq = Cluster.write_quorum_of cluster ~node:other in
      if not (Quorum.Check.intersects rq wq) then
        Alcotest.failf "quorums of nodes %d and %d do not intersect" node other
    done
  done

let test_failover_during_workload () =
  let cluster = Cluster.create ~nodes:13 ~seed:13 (Config.default Config.Closed) in
  let counter = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  (* Fail two replicas mid-run; clients sit on surviving nodes. *)
  Cluster.fail_node_at cluster ~at:400. ~node:1;
  Cluster.fail_node_at cluster ~at:900. ~node:2;
  let committed = ref 0 in
  let rec client node remaining =
    if remaining > 0 then
      Cluster.submit cluster ~node (fun () -> Benchmarks.Counter.increment counter)
        ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ ->
            incr committed;
            client node (remaining - 1)
          | Executor.Failed msg -> Alcotest.failf "client failed: %s" msg)
  in
  List.iter (fun node -> client node 10) [ 4; 5; 6; 7 ];
  Cluster.drain cluster;
  Alcotest.(check int) "all committed" 40 !committed;
  (* The committed value must reflect every increment. *)
  begin
    match Cluster.run_program cluster ~node:6 (fun () -> Txn.read counter) with
    | Executor.Committed (Store.Value.Int 40) -> ()
    | Executor.Committed v -> Alcotest.failf "lost updates: %s" (Store.Value.to_string v)
    | Executor.Failed msg -> Alcotest.failf "final read failed: %s" msg
  end;
  (* Quorums were reassigned away from the dead nodes. *)
  for node = 3 to 12 do
    let rq = Cluster.read_quorum_of cluster ~node in
    Alcotest.(check bool) "no dead node in read quorum" true
      (Quorum.Check.all_alive ~failed:[ 1; 2 ] rq)
  done;
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

let test_run_program_on_empty_engine () =
  let cluster = Cluster.create ~nodes:5 ~seed:14 (Config.default Config.Flat) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Str "hello") in
  match Cluster.run_program cluster ~node:2 (fun () -> Txn.read oid) with
  | Executor.Committed (Store.Value.Str "hello") -> ()
  | Executor.Committed v -> Alcotest.failf "wrong value %s" (Store.Value.to_string v)
  | Executor.Failed msg -> Alcotest.failf "failed: %s" msg

let test_message_accounting () =
  let cluster = Cluster.create ~nodes:13 ~seed:15 (Config.default Config.Flat) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  ignore (Cluster.run_program cluster ~node:3 (fun () -> Benchmarks.Counter.increment oid));
  Cluster.drain cluster;
  let kinds = List.map fst (Cluster.messages_by_kind cluster) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " messages present") true (List.mem expected kinds))
    [ "read_req"; "commit_req"; "commit_apply"; "reply" ];
  Alcotest.(check bool) "total counted" true (Cluster.messages_sent cluster > 0);
  Cluster.reset_counters cluster;
  Alcotest.(check int) "counters reset" 0 (Cluster.messages_sent cluster)

let suite =
  [
    Alcotest.test_case "quorum assignment intersects" `Quick test_quorum_assignment;
    Alcotest.test_case "failover during workload" `Quick test_failover_during_workload;
    Alcotest.test_case "run_program basic" `Quick test_run_program_on_empty_engine;
    Alcotest.test_case "message accounting" `Quick test_message_accounting;
  ]
