(* Extension features: open nesting (early global commit + compensation on
   root abort) and programmer-placed checkpoints. *)

open Core

let bump_everywhere cluster ~at ~oid ~version =
  Sim.Engine.schedule_at (Cluster.engine cluster) ~time:at (fun () ->
      for node = 0 to Cluster.nodes cluster - 1 do
        Store.Replica.apply
          (Cluster.store_of cluster ~node)
          ~oid ~version ~value:(Store.Value.Int 777) ~txn:888_888
      done)

let read_back cluster oid =
  match Cluster.run_program cluster ~node:0 (fun () -> Txn.read oid) with
  | Executor.Committed v -> Store.Value.to_int v
  | Executor.Failed msg -> Alcotest.failf "read back failed: %s" msg

let increment oid = Benchmarks.Counter.increment oid

let decrement oid _result =
  Txn.bind (Txn.read oid) (fun v ->
      Txn.write oid (Store.Value.Int (Store.Value.to_int v - 1)))

(* The open-nested commit must be globally visible while the parent is
   still running. *)
let test_open_commit_visible_early () =
  let cluster =
    Cluster.create ~nodes:13 ~seed:31 ~with_oracle:false (Config.default Config.Closed)
  in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let slow = List.init 6 (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit) in
  let program () =
    Txn.bind
      (Txn.open_nested ~body:(fun () -> increment a) ~compensate:(decrement a))
      (fun _ -> Benchmarks.Workload.seq (List.map Txn.read slow))
  in
  let parent_done = ref false in
  Cluster.submit cluster ~node:5 program ~on_done:(fun _ -> parent_done := true);
  (* Give the open sub-transaction time to commit; the parent is still
     ploughing through its slow reads. *)
  Cluster.run_for cluster 250.;
  Alcotest.(check bool) "parent still running" false !parent_done;
  Alcotest.(check int) "open commit already visible" 1 (read_back cluster a);
  Cluster.drain cluster;
  Alcotest.(check bool) "parent finished" true !parent_done;
  Alcotest.(check int) "one open commit" 1 (Metrics.open_commits (Cluster.metrics cluster))

(* When the root aborts, the registered compensation must undo the open
   commit before the retry re-executes it. *)
let test_compensation_on_root_abort () =
  let cluster =
    Cluster.create ~nodes:13 ~seed:32 ~with_oracle:false (Config.default Config.Closed)
  in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let slow = List.init 6 (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit) in
  let program () =
    Txn.bind
      (Txn.open_nested ~body:(fun () -> increment a) ~compensate:(decrement a))
      (fun _ -> Benchmarks.Workload.seq (List.map Txn.read slow))
  in
  (* Invalidate one of the parent's reads mid-flight: the root aborts, the
     compensation runs, and the retry increments [a] again. *)
  bump_everywhere cluster ~at:250. ~oid:(List.nth slow 1) ~version:1;
  let outcome = ref None in
  Cluster.submit cluster ~node:5 program ~on_done:(fun o -> outcome := Some o);
  Cluster.drain cluster;
  begin
    match !outcome with
    | Some (Executor.Committed _) -> ()
    | Some (Executor.Failed msg) -> Alcotest.failf "failed: %s" msg
    | None -> Alcotest.fail "never finished"
  end;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "root aborted at least once" true (Metrics.root_aborts metrics >= 1);
  Alcotest.(check bool) "compensation ran" true (Metrics.compensations metrics >= 1);
  Alcotest.(check bool) "open committed more than once" true
    (Metrics.open_commits metrics >= 2);
  (* Net effect of commit-compensate-recommit is exactly one increment. *)
  Alcotest.(check int) "net one increment" 1 (read_back cluster a)

(* Open bodies that conflict retry independently without disturbing the
   parent; concurrent open increments must not lose updates. *)
let test_open_nested_concurrent () =
  let cluster = Cluster.create ~nodes:13 ~seed:33 (Config.default Config.Closed) in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let finished = ref 0 in
  let program () =
    Txn.bind
      (Txn.open_nested ~body:(fun () -> increment a) ~compensate:(decrement a))
      (fun _ -> Txn.return Store.Value.Unit)
  in
  for c = 0 to 9 do
    Cluster.submit cluster ~node:(c mod 13) program ~on_done:(fun _ -> incr finished)
  done;
  Cluster.drain cluster;
  Alcotest.(check int) "all parents finished" 10 !finished;
  Alcotest.(check int) "no lost updates" 10 (read_back cluster a);
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

(* Manual checkpoints create snapshots under QR-CHK and are no-ops
   elsewhere. *)
let test_manual_checkpoint () =
  let count_checkpoints mode =
    let cluster =
      Cluster.create ~nodes:13 ~seed:34 ~with_oracle:false
        (Config.make ~checkpoint_threshold:1000 mode)
    in
    let oids = List.init 4 (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit) in
    let program () =
      Benchmarks.Workload.seq
        (List.concat_map (fun oid -> [ Txn.read oid; Txn.checkpoint () ]) oids)
    in
    begin
      match Cluster.run_program cluster ~node:2 program with
      | Executor.Committed _ -> ()
      | Executor.Failed msg -> Alcotest.failf "txn failed: %s" msg
    end;
    Metrics.checkpoints (Cluster.metrics cluster)
  in
  (* Threshold 1000 disables automatic checkpoints, isolating the manual ones. *)
  Alcotest.(check int) "chk mode takes manual checkpoints" 4
    (count_checkpoints Config.Checkpoint);
  Alcotest.(check int) "flat ignores checkpoints" 0 (count_checkpoints Config.Flat);
  Alcotest.(check int) "closed ignores checkpoints" 0 (count_checkpoints Config.Closed)

(* A conflict after a manual checkpoint rolls back to it rather than
   restarting. *)
let test_manual_checkpoint_rollback () =
  let cluster =
    Cluster.create ~nodes:13 ~seed:35 ~with_oracle:false
      (Config.make ~checkpoint_threshold:1000 Config.Checkpoint)
  in
  let before = List.init 3 (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit) in
  let after = List.init 3 (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit) in
  let program () =
    Txn.bind
      (Benchmarks.Workload.seq (List.map Txn.read before))
      (fun _ ->
        Txn.bind (Txn.checkpoint ()) (fun _ ->
            Benchmarks.Workload.seq (List.map Txn.read after)))
  in
  (* Invalidate an object read *after* the checkpoint, mid-flight. *)
  bump_everywhere cluster ~at:190. ~oid:(List.hd after) ~version:1;
  let outcome = ref None in
  Cluster.submit cluster ~node:4 program ~on_done:(fun o -> outcome := Some o);
  Cluster.drain cluster;
  begin
    match !outcome with
    | Some (Executor.Committed _) -> ()
    | Some (Executor.Failed msg) -> Alcotest.failf "failed: %s" msg
    | None -> Alcotest.fail "never finished"
  end;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "partial rollback, not restart" true
    (Metrics.partial_aborts metrics >= 1);
  Alcotest.(check int) "no root abort" 0 (Metrics.root_aborts metrics)

let suite =
  [
    Alcotest.test_case "open commit visible before parent commits" `Quick
      test_open_commit_visible_early;
    Alcotest.test_case "compensation runs on root abort" `Quick
      test_compensation_on_root_abort;
    Alcotest.test_case "concurrent open increments" `Quick test_open_nested_concurrent;
    Alcotest.test_case "manual checkpoints per mode" `Quick test_manual_checkpoint;
    Alcotest.test_case "manual checkpoint rollback" `Quick test_manual_checkpoint_rollback;
  ]
