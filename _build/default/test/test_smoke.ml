(* End-to-end smoke tests: a counter object incremented by concurrent
   transactions under each execution mode, checked for lost updates and
   1-copy serializability. *)

open Core
open Txn.Syntax

let value_testable = Alcotest.testable Store.Value.pp Store.Value.equal

let increment_program oid () =
  let* v = Txn.read oid in
  Txn.write oid (Store.Value.Int (Store.Value.to_int v + 1))

let run_counter_workload mode ~clients ~increments =
  let cluster = Cluster.create ~nodes:13 ~seed:42 (Config.default mode) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let finished = ref 0 in
  let rec client node remaining =
    if remaining > 0 then
      Cluster.submit cluster ~node (increment_program oid) ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ -> client node (remaining - 1)
          | Executor.Failed msg -> Alcotest.failf "client failed: %s" msg)
    else incr finished
  in
  for c = 0 to clients - 1 do
    client (c mod Cluster.nodes cluster) increments
  done;
  Cluster.run_for cluster 600_000.;
  Alcotest.(check int) "all clients finished" clients !finished;
  begin
    match Cluster.check_consistency cluster with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "oracle: %s" msg
  end;
  cluster, oid

let check_final_counter cluster oid expected =
  (* The committed value must be visible through a fresh transaction. *)
  match Cluster.run_program cluster ~node:0 (fun () -> Txn.read oid) with
  | Executor.Committed v ->
    Alcotest.check value_testable "final counter" (Store.Value.Int expected) v
  | Executor.Failed msg -> Alcotest.failf "final read failed: %s" msg

let test_counter mode () =
  let clients = 6 and increments = 5 in
  let cluster, oid = run_counter_workload mode ~clients ~increments in
  Alcotest.(check int)
    "commit count" (clients * increments)
    (Metrics.commits (Cluster.metrics cluster));
  check_final_counter cluster oid (clients * increments)

let test_nested_commit () =
  let cluster = Cluster.create ~seed:7 (Config.default Config.Closed) in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 10) in
  let b = Cluster.alloc_object cluster ~init:(Store.Value.Int 20) in
  let program () =
    let* va = Txn.read a in
    let* sum =
      Txn.nested (fun () ->
          let* vb = Txn.read b in
          Txn.return (Store.Value.Int (Store.Value.to_int va + Store.Value.to_int vb)))
    in
    let* _ = Txn.write a sum in
    Txn.return sum
  in
  begin
    match Cluster.run_program cluster ~node:3 program with
    | Executor.Committed v ->
      Alcotest.check value_testable "nested sum" (Store.Value.Int 30) v
    | Executor.Failed msg -> Alcotest.failf "nested txn failed: %s" msg
  end;
  (* The CT committed locally. *)
  Alcotest.(check int) "one CT commit" 1 (Metrics.ct_commits (Cluster.metrics cluster));
  match Cluster.run_program cluster ~node:5 (fun () -> Txn.read a) with
  | Executor.Committed v ->
    Alcotest.check value_testable "written back" (Store.Value.Int 30) v
  | Executor.Failed msg -> Alcotest.failf "read back failed: %s" msg

let suite =
  [
    Alcotest.test_case "flat counter, no lost updates" `Quick (test_counter Config.Flat);
    Alcotest.test_case "closed counter, no lost updates" `Quick (test_counter Config.Closed);
    Alcotest.test_case "checkpoint counter, no lost updates" `Quick
      (test_counter Config.Checkpoint);
    Alcotest.test_case "closed-nested commit merges into parent" `Quick test_nested_commit;
  ]
