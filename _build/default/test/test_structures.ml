(* Model-based tests of the transactional data structures: run random
   operation sequences sequentially against a reference model and compare
   results and final committed state; then run concurrent mixes and check
   the structural invariants. *)

open Core

module Int_set = Set.Make (Int)

(* Run to completion *and* drain in-flight commit-apply messages, so the
   replica-level model comparison below sees the committed state. *)
let run cluster node program =
  match Cluster.run_program cluster ~node program with
  | Executor.Committed v ->
    Cluster.drain cluster;
    v
  | Executor.Failed msg -> Alcotest.failf "txn failed: %s" msg

let bool_result v = Store.Value.to_bool v

let fresh_cluster ?(mode = Config.Closed) ?(seed = 11) () =
  Cluster.create ~nodes:13 ~seed (Config.default mode)

(* --- Skiplist ------------------------------------------------------- *)

let test_skiplist_sequential () =
  let cluster = fresh_cluster () in
  let keys = 48 in
  let h = Benchmarks.Skiplist.create cluster ~keys in
  let model = ref Int_set.empty in
  for key = 0 to keys - 1 do
    if key mod 2 = 0 then model := Int_set.add key !model
  done;
  let rng = Util.Rng.create 99 in
  for step = 0 to 299 do
    let key = Util.Rng.int rng keys in
    let node = Util.Rng.int rng (Cluster.nodes cluster) in
    match Util.Rng.int rng 3 with
    | 0 ->
      let added = bool_result (run cluster node (fun () -> Benchmarks.Skiplist.add h ~key)) in
      let expected = not (Int_set.mem key !model) in
      if added <> expected then Alcotest.failf "step %d: add %d returned %b" step key added;
      model := Int_set.add key !model
    | 1 ->
      let removed =
        bool_result (run cluster node (fun () -> Benchmarks.Skiplist.remove h ~key))
      in
      let expected = Int_set.mem key !model in
      if removed <> expected then
        Alcotest.failf "step %d: remove %d returned %b" step key removed;
      model := Int_set.remove key !model
    | _ ->
      let present =
        bool_result (run cluster node (fun () -> Benchmarks.Skiplist.contains h ~key))
      in
      if present <> Int_set.mem key !model then
        Alcotest.failf "step %d: contains %d returned %b" step key present
  done;
  Alcotest.(check (list int))
    "final keys" (Int_set.elements !model)
    (Benchmarks.Skiplist.committed_keys cluster h);
  match Benchmarks.Skiplist.check_structure cluster h with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* --- Red-black tree -------------------------------------------------- *)

let test_rbtree_sequential () =
  let cluster = fresh_cluster () in
  let keys = 64 in
  let h = Benchmarks.Rbtree.create cluster ~keys in
  let model = ref Int_set.empty in
  for key = 0 to keys - 1 do
    if key mod 2 = 0 then model := Int_set.add key !model
  done;
  (* The pre-built tree must itself satisfy the invariants. *)
  begin
    match Benchmarks.Rbtree.check_structure cluster h with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "initial tree: %s" msg
  end;
  let rng = Util.Rng.create 7 in
  for step = 0 to 399 do
    let key = Util.Rng.int rng keys in
    let node = Util.Rng.int rng (Cluster.nodes cluster) in
    begin
      match Util.Rng.int rng 3 with
      | 0 ->
        let added =
          bool_result (run cluster node (fun () -> Benchmarks.Rbtree.insert h ~key))
        in
        if added <> not (Int_set.mem key !model) then
          Alcotest.failf "step %d: insert %d returned %b" step key added;
        model := Int_set.add key !model
      | 1 ->
        let removed =
          bool_result (run cluster node (fun () -> Benchmarks.Rbtree.remove h ~key))
        in
        if removed <> Int_set.mem key !model then
          Alcotest.failf "step %d: remove %d returned %b" step key removed;
        model := Int_set.remove key !model
      | _ ->
        let present =
          bool_result (run cluster node (fun () -> Benchmarks.Rbtree.contains h ~key))
        in
        if present <> Int_set.mem key !model then
          Alcotest.failf "step %d: contains %d returned %b" step key present
    end;
    (* The tree must satisfy the red-black invariants after every commit. *)
    match Benchmarks.Rbtree.check_structure cluster h with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "step %d: %s" step msg
  done;
  Alcotest.(check (list int))
    "final keys" (Int_set.elements !model)
    (Benchmarks.Rbtree.committed_keys cluster h)

(* --- Hashmap ---------------------------------------------------------- *)

let test_hashmap_sequential () =
  let cluster = fresh_cluster () in
  let keys = 48 in
  let h = Benchmarks.Hashmap.create cluster ~keys in
  let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
  for key = 0 to keys - 1 do
    if key / Benchmarks.Hashmap.bucket_count mod 2 = 0 then Hashtbl.replace model key key
  done;
  let rng = Util.Rng.create 23 in
  for step = 0 to 299 do
    let key = Util.Rng.int rng keys in
    let node = Util.Rng.int rng (Cluster.nodes cluster) in
    match Util.Rng.int rng 3 with
    | 0 ->
      let data = Util.Rng.int rng 1000 in
      ignore (run cluster node (fun () -> Benchmarks.Hashmap.put h ~key ~data));
      Hashtbl.replace model key data
    | 1 ->
      ignore (run cluster node (fun () -> Benchmarks.Hashmap.remove h ~key));
      Hashtbl.remove model key
    | _ ->
      let result = run cluster node (fun () -> Benchmarks.Hashmap.get h ~key) in
      begin
        match (Hashtbl.find_opt model key, result) with
        | Some data, Store.Value.Int got when got = data -> ()
        | None, Store.Value.Unit -> ()
        | expected, got ->
          Alcotest.failf "step %d: get %d = %s, model %s" step key
            (Store.Value.to_string got)
            (match expected with None -> "absent" | Some d -> string_of_int d)
      end
  done;
  let expected =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare
  in
  Alcotest.(check (list (pair int int)))
    "final bindings" expected
    (Benchmarks.Hashmap.committed_bindings cluster h);
  match Benchmarks.Hashmap.check_chains cluster h with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* --- BST --------------------------------------------------------------- *)

let test_bst_sequential () =
  let cluster = fresh_cluster () in
  let keys = 32 in
  let h = Benchmarks.Bst.create cluster ~keys in
  let model = ref Int_set.empty in
  for key = 0 to keys - 1 do
    if key mod 2 = 0 then model := Int_set.add key !model
  done;
  let rng = Util.Rng.create 5 in
  for _ = 0 to 199 do
    let key = Util.Rng.int rng keys in
    let node = Util.Rng.int rng (Cluster.nodes cluster) in
    match Util.Rng.int rng 3 with
    | 0 ->
      ignore (run cluster node (fun () -> Benchmarks.Bst.add h ~key));
      model := Int_set.add key !model
    | 1 ->
      ignore (run cluster node (fun () -> Benchmarks.Bst.remove h ~key));
      model := Int_set.remove key !model
    | _ ->
      let present = bool_result (run cluster node (fun () -> Benchmarks.Bst.contains h ~key)) in
      Alcotest.(check bool) "bst contains" (Int_set.mem key !model) present
  done;
  Alcotest.(check (list int))
    "final keys" (Int_set.elements !model)
    (Benchmarks.Bst.committed_keys cluster h)

(* --- Concurrent mixes: invariants under contention, every mode -------- *)

let run_concurrent (benchmark : Benchmarks.Workload.benchmark) mode ~seed () =
  let cluster = Cluster.create ~nodes:13 ~seed (Config.default mode) in
  let params =
    { Benchmarks.Workload.default_params with objects = 32; calls = 3; read_ratio = 0.3 }
  in
  let instance = benchmark.setup cluster params in
  let rng = Util.Rng.create (seed * 31) in
  let live = ref 0 in
  let rec client node remaining rng =
    if remaining > 0 then begin
      let program = instance.generate rng in
      Cluster.submit cluster ~node program ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ -> client node (remaining - 1) rng
          | Executor.Failed msg -> Alcotest.failf "txn failed: %s" msg)
    end
    else decr live
  in
  for c = 0 to 7 do
    incr live;
    client (c mod Cluster.nodes cluster) 8 (Util.Rng.split rng)
  done;
  Cluster.drain cluster;
  Alcotest.(check int) "all clients done" 0 !live;
  begin
    match instance.check () with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s invariant: %s" benchmark.name msg
  end;
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s oracle: %s" benchmark.name msg

let concurrent_cases =
  List.concat_map
    (fun (benchmark : Benchmarks.Workload.benchmark) ->
      List.map
        (fun (mode, label) ->
          Alcotest.test_case
            (Printf.sprintf "concurrent %s / %s" benchmark.name label)
            `Slow
            (run_concurrent benchmark mode ~seed:(17 + String.length label)))
        [ (Config.Flat, "flat"); (Config.Closed, "closed"); (Config.Checkpoint, "checkpoint") ])
    Benchmarks.Registry.all

let suite =
  [
    Alcotest.test_case "skiplist sequential vs model" `Quick test_skiplist_sequential;
    Alcotest.test_case "rbtree sequential vs model" `Quick test_rbtree_sequential;
    Alcotest.test_case "hashmap sequential vs model" `Quick test_hashmap_sequential;
    Alcotest.test_case "bst sequential vs model" `Quick test_bst_sequential;
  ]
  @ concurrent_cases
