test/test_baselines.ml: Alcotest Baselines Core Executor List Metrics Store Txn
