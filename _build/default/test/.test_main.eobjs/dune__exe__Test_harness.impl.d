test/test_harness.ml: Alcotest Benchmarks Core Harness List Quorum Store String
