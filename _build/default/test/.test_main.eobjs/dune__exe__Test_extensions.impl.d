test/test_extensions.ml: Alcotest Benchmarks Cluster Config Core Executor List Metrics Sim Store Txn
