test/test_smoke.ml: Alcotest Cluster Config Core Executor Metrics Store Txn
