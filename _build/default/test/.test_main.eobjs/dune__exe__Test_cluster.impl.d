test/test_cluster.ml: Alcotest Benchmarks Cluster Config Core Executor List Quorum Store Txn
