test/test_core_protocol.ml: Alcotest Core Hashtbl Int List Messages Oracle QCheck QCheck_alcotest Result Rqv Rwset Server Store Txn
