test/test_serializability.ml: Alcotest Array Benchmarks Cluster Config Core Executor List Store Txn Util
