test/test_store.ml: Alcotest List Multiversion QCheck QCheck_alcotest Replica Store Value
