test/test_executor.ml: Alcotest Benchmarks Cluster Config Core Executor List Metrics Sim Store Txn
