test/test_util.ml: Alcotest Array Float Int Int64 List QCheck QCheck_alcotest String Util
