test/test_quorum.ml: Alcotest List QCheck QCheck_alcotest Quorum
