test/test_structures.ml: Alcotest Benchmarks Cluster Config Core Executor Hashtbl Int List Printf Set Store String Util
