test/test_sim.ml: Alcotest Float List Option Sim
