test/test_benchmarks.ml: Alcotest Array Benchmarks Cluster Config Core Executor Hashtbl List Store Txn Util
