(* Value codecs, replica store semantics (versioning, locks, PR/PW),
   multiversion history. *)

open Store

let value_testable = Alcotest.testable Value.pp Value.equal

let test_value_accessors () =
  Alcotest.(check int) "int" 5 (Value.to_int (Value.Int 5));
  Alcotest.(check bool) "bool" true (Value.to_bool (Value.Bool true));
  Alcotest.(check string) "str" "x" (Value.to_str (Value.Str "x"));
  Alcotest.check value_testable "field" (Value.Int 2)
    (Value.field (Value.List [ Value.Int 1; Value.Int 2 ]) 1);
  Alcotest.check value_testable "with_field"
    (Value.List [ Value.Int 1; Value.Int 9 ])
    (Value.with_field (Value.List [ Value.Int 1; Value.Int 2 ]) 1 (Value.Int 9));
  Alcotest.(check (option int)) "int_opt none" None (Value.int_opt Value.Unit);
  Alcotest.check_raises "shape error"
    (Invalid_argument "Value: expected Int, got true")
    (fun () -> ignore (Value.to_int (Value.Bool true)))

let value_equal_reflexive =
  let rec gen_value depth =
    QCheck.Gen.(
      if depth = 0 then
        oneof [ return Value.Unit; map (fun i -> Value.Int i) int; map (fun b -> Value.Bool b) bool ]
      else
        oneof
          [
            map (fun i -> Value.Int i) int;
            map (fun s -> Value.Str s) string_small;
            map (fun l -> Value.List l) (list_size (int_range 0 4) (gen_value (depth - 1)));
          ])
  in
  QCheck.Test.make ~name:"value equality is reflexive" ~count:200
    (QCheck.make (gen_value 3))
    (fun v -> Value.equal v v)

let test_replica_versioning () =
  let store = Replica.create () in
  Replica.ensure store ~oid:1 ~init:(Value.Int 0);
  Replica.ensure store ~oid:1 ~init:(Value.Int 99);
  Alcotest.check value_testable "ensure is idempotent" (Value.Int 0) (Replica.get store 1).value;
  Alcotest.(check int) "initial version" 0 (Replica.version store 1);
  Replica.apply store ~oid:1 ~version:3 ~value:(Value.Int 30) ~txn:7;
  Alcotest.(check int) "applied version" 3 (Replica.version store 1);
  (* Stale apply from a lagging replica is ignored. *)
  Replica.apply store ~oid:1 ~version:2 ~value:(Value.Int 20) ~txn:8;
  Alcotest.(check int) "stale apply ignored" 3 (Replica.version store 1);
  Alcotest.check value_testable "value kept" (Value.Int 30) (Replica.get store 1).value;
  Replica.install store ~oid:1 ~init:(Value.Int 5);
  Alcotest.(check int) "install resets" 0 (Replica.version store 1)

let test_replica_locks () =
  let store = Replica.create () in
  Replica.ensure store ~oid:1 ~init:Value.Unit;
  Alcotest.(check bool) "lock free" true (Replica.try_lock store ~oid:1 ~txn:10);
  Alcotest.(check bool) "re-lock by owner" true (Replica.try_lock store ~oid:1 ~txn:10);
  Alcotest.(check bool) "other txn denied" false (Replica.try_lock store ~oid:1 ~txn:11);
  Alcotest.(check bool) "protected against other" true
    (Replica.is_protected store ~oid:1 ~against:11);
  Alcotest.(check bool) "not protected against owner" false
    (Replica.is_protected store ~oid:1 ~against:10);
  Replica.unlock store ~oid:1 ~txn:11;
  Alcotest.(check bool) "foreign unlock ignored" true
    (Replica.is_protected store ~oid:1 ~against:11);
  Replica.unlock store ~oid:1 ~txn:10;
  Alcotest.(check bool) "owner unlock works" true (Replica.try_lock store ~oid:1 ~txn:11);
  (* Apply releases the committing transaction's lock. *)
  Replica.apply store ~oid:1 ~version:1 ~value:(Value.Int 1) ~txn:11;
  Alcotest.(check bool) "apply releases lock" true (Replica.try_lock store ~oid:1 ~txn:12)

let test_replica_pr_pw () =
  let store = Replica.create () in
  Replica.ensure store ~oid:1 ~init:Value.Unit;
  Replica.add_reader store ~oid:1 ~txn:5;
  Replica.add_reader store ~oid:1 ~txn:5;
  Replica.add_writer store ~oid:1 ~txn:6;
  Alcotest.(check (list int)) "readers deduped" [ 5 ] (Replica.readers store 1);
  Alcotest.(check (list int)) "writers" [ 6 ] (Replica.writers store 1);
  Replica.remove_txn store ~oid:1 ~txn:5;
  Alcotest.(check (list int)) "reader removed" [] (Replica.readers store 1);
  (* The lists are bounded: flooding evicts the oldest entries. *)
  for txn = 0 to 99 do
    Replica.add_reader store ~oid:1 ~txn
  done;
  Alcotest.(check bool) "bounded" true (List.length (Replica.readers store 1) <= 64)

let test_multiversion () =
  let mv = Multiversion.create ~history_limit:3 () in
  Multiversion.ensure mv ~oid:1 ~init:(Value.Int 0);
  Alcotest.(check int) "initial version" 0 (Multiversion.version mv ~oid:1);
  Multiversion.commit mv ~oid:1 ~version:1 ~value:(Value.Int 10) ~time:10.;
  Multiversion.commit mv ~oid:1 ~version:2 ~value:(Value.Int 20) ~time:20.;
  Multiversion.commit mv ~oid:1 ~version:2 ~value:(Value.Int 99) ~time:25.;
  Alcotest.(check int) "duplicate version ignored" 2 (Multiversion.version mv ~oid:1);
  Alcotest.check value_testable "latest" (Value.Int 20) (snd (Multiversion.latest mv ~oid:1));
  (* Snapshot reads. *)
  begin
    match Multiversion.at_or_before mv ~oid:1 ~time:15. with
    | Some (1, v) -> Alcotest.check value_testable "snapshot at 15" (Value.Int 10) v
    | Some (n, _) -> Alcotest.failf "wrong version %d" n
    | None -> Alcotest.fail "history missing"
  end;
  (* Trimming: the limit is 3 versions, so after two more commits the
     oldest snapshots become unreadable. *)
  Multiversion.commit mv ~oid:1 ~version:3 ~value:(Value.Int 30) ~time:30.;
  Multiversion.commit mv ~oid:1 ~version:4 ~value:(Value.Int 40) ~time:40.;
  Alcotest.(check (option (pair int value_testable))) "trimmed snapshot" None
    (Multiversion.at_or_before mv ~oid:1 ~time:5.)

let suite =
  [
    Alcotest.test_case "value accessors" `Quick test_value_accessors;
    Alcotest.test_case "replica versioning" `Quick test_replica_versioning;
    Alcotest.test_case "replica locks" `Quick test_replica_locks;
    Alcotest.test_case "replica PR/PW lists" `Quick test_replica_pr_pw;
    Alcotest.test_case "multiversion history" `Quick test_multiversion;
  ]
  @ [ QCheck_alcotest.to_alcotest value_equal_reflexive ]
