(* The TFA and Decent-STM baselines run the same DSL programs; check they
   preserve counters under contention and satisfy the 1-copy oracle. *)

open Core
open Txn.Syntax

let increment oid () =
  let* v = Txn.read oid in
  Txn.write oid (Store.Value.Int (Store.Value.to_int v + 1))

let test_tfa_counter () =
  let sys = Baselines.Tfa.create ~nodes:13 ~seed:31 () in
  let oid = Baselines.Tfa.alloc_object sys ~init:(Store.Value.Int 0) in
  let finished = ref 0 in
  let rec client node remaining =
    if remaining > 0 then
      Baselines.Tfa.submit sys ~node (increment oid) ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ -> client node (remaining - 1)
          | Executor.Failed msg -> Alcotest.failf "tfa txn failed: %s" msg)
    else incr finished
  in
  for c = 0 to 5 do
    client (c mod Baselines.Tfa.nodes sys) 5
  done;
  Baselines.Tfa.drain sys;
  Alcotest.(check int) "clients finished" 6 !finished;
  Alcotest.(check int) "commits" 30 (Metrics.commits (Baselines.Tfa.metrics sys));
  begin
    match Baselines.Tfa.latest_value sys ~oid with
    | Store.Value.Int 30 -> ()
    | v -> Alcotest.failf "tfa lost updates: %s" (Store.Value.to_string v)
  end;
  match Baselines.Tfa.check_consistency sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "tfa oracle: %s" msg

let test_decent_counter () =
  let sys = Baselines.Decent.create ~nodes:13 ~seed:37 () in
  let oid = Baselines.Decent.alloc_object sys ~init:(Store.Value.Int 0) in
  let finished = ref 0 in
  let rec client node remaining =
    if remaining > 0 then
      Baselines.Decent.submit sys ~node (increment oid) ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ -> client node (remaining - 1)
          | Executor.Failed msg -> Alcotest.failf "decent txn failed: %s" msg)
    else incr finished
  in
  for c = 0 to 5 do
    client (c mod Baselines.Decent.nodes sys) 5
  done;
  Baselines.Decent.drain sys;
  Alcotest.(check int) "clients finished" 6 !finished;
  Alcotest.(check int) "commits" 30 (Metrics.commits (Baselines.Decent.metrics sys));
  begin
    match Baselines.Decent.latest_value sys ~oid with
    | Store.Value.Int 30 -> ()
    | v -> Alcotest.failf "decent lost updates: %s" (Store.Value.to_string v)
  end;
  match Baselines.Decent.check_consistency sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "decent oracle: %s" msg

(* Decent read-only transactions observe a consistent snapshot even while
   writers are running (readers never abort). *)
let test_decent_snapshot_reads () =
  let sys = Baselines.Decent.create ~nodes:7 ~seed:41 () in
  let a = Baselines.Decent.alloc_object sys ~init:(Store.Value.Int 100) in
  let b = Baselines.Decent.alloc_object sys ~init:(Store.Value.Int 100) in
  (* Writers transfer between a and b, preserving the sum. *)
  let transfer () =
    let* va = Txn.read a in
    let* vb = Txn.read b in
    let* _ = Txn.write a (Store.Value.Int (Store.Value.to_int va - 1)) in
    Txn.write b (Store.Value.Int (Store.Value.to_int vb + 1))
  in
  let sum_reads = ref [] in
  let audit () =
    let* va = Txn.read a in
    let* vb = Txn.read b in
    Txn.return (Store.Value.Int (Store.Value.to_int va + Store.Value.to_int vb))
  in
  let rec writer node remaining =
    if remaining > 0 then
      Baselines.Decent.submit sys ~node transfer ~on_done:(fun _ ->
          writer node (remaining - 1))
  in
  let rec reader node remaining =
    if remaining > 0 then
      Baselines.Decent.submit sys ~node audit ~on_done:(fun outcome ->
          begin
            match outcome with
            | Executor.Committed (Store.Value.Int sum) -> sum_reads := sum :: !sum_reads
            | Executor.Committed v ->
              Alcotest.failf "bad audit result %s" (Store.Value.to_string v)
            | Executor.Failed msg -> Alcotest.failf "audit failed: %s" msg
          end;
          reader node (remaining - 1))
  in
  writer 1 10;
  writer 2 10;
  reader 3 12;
  Baselines.Decent.drain sys;
  Alcotest.(check int) "all audits ran" 12 (List.length !sum_reads);
  List.iter (fun sum -> Alcotest.(check int) "snapshot sum invariant" 200 sum) !sum_reads

let suite =
  [
    Alcotest.test_case "tfa counter, no lost updates" `Quick test_tfa_counter;
    Alcotest.test_case "decent counter, no lost updates" `Quick test_decent_counter;
    Alcotest.test_case "decent snapshot reads are consistent" `Quick
      test_decent_snapshot_reads;
  ]
