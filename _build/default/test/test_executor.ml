(* Executor behaviour tests: where partial aborts land, checkpoint
   rollback, which modes commit read-only transactions locally, and the
   safety valves.

   Conflicts are injected surgically: a scheduled event bumps an object's
   version on every replica, exactly as a remote commit would, at a chosen
   simulated time. *)

open Core

let bump_everywhere cluster ~at ~oid ~version =
  Sim.Engine.schedule_at (Cluster.engine cluster) ~time:at (fun () ->
      for node = 0 to Cluster.nodes cluster - 1 do
        Store.Replica.apply
          (Cluster.store_of cluster ~node)
          ~oid ~version ~value:(Store.Value.Int 777) ~txn:999_999
      done)

let read_seq oids =
  Benchmarks.Workload.seq (List.map Txn.read oids)

(* A closed-nested transaction whose *own* read is invalidated mid-flight
   must retry just that CT — no root abort. *)
let test_partial_abort_targets_ct () =
  let cluster =
    Cluster.create ~nodes:13 ~seed:3 ~with_oracle:false (Config.default Config.Closed)
  in
  let oids = List.init 8 (fun _ -> Cluster.alloc_object cluster ~init:(Store.Value.Int 0)) in
  let a, rest =
    match oids with a :: rest -> (a, rest) | [] -> assert false
  in
  let program () =
    Txn.bind
      (Txn.nested (fun () -> Txn.read a))
      (fun _ -> Txn.nested (fun () -> read_seq rest))
  in
  (* [rest] spans several quorum round trips; invalidate its first element
     (owned by the *active* CT) midway. *)
  let first_of_rest = List.hd rest in
  bump_everywhere cluster ~at:150. ~oid:first_of_rest ~version:1;
  let outcome = ref None in
  Cluster.submit cluster ~node:5 program ~on_done:(fun o -> outcome := Some o);
  Cluster.drain cluster;
  begin
    match !outcome with
    | Some (Executor.Committed _) -> ()
    | Some (Executor.Failed msg) -> Alcotest.failf "failed: %s" msg
    | None -> Alcotest.fail "never finished"
  end;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "at least one partial abort" true
    (Metrics.partial_aborts metrics >= 1);
  Alcotest.(check int) "no root aborts" 0 (Metrics.root_aborts metrics)

(* The mirror case: invalidating an object owned by an *enclosing* scope
   (merged from an earlier CT) must abort the root, not the running CT. *)
let test_outer_conflict_aborts_root () =
  let cluster =
    Cluster.create ~nodes:13 ~seed:4 ~with_oracle:false (Config.default Config.Closed)
  in
  let oids = List.init 8 (fun _ -> Cluster.alloc_object cluster ~init:(Store.Value.Int 0)) in
  let a, rest = match oids with a :: rest -> (a, rest) | [] -> assert false in
  let program () =
    Txn.bind
      (Txn.nested (fun () -> Txn.read a))
      (fun _ -> Txn.nested (fun () -> read_seq rest))
  in
  (* [a] belongs to the first (already merged) CT: bump it while the second
     CT is still reading. *)
  bump_everywhere cluster ~at:150. ~oid:a ~version:1;
  let outcome = ref None in
  Cluster.submit cluster ~node:5 program ~on_done:(fun o -> outcome := Some o);
  Cluster.drain cluster;
  begin
    match !outcome with
    | Some (Executor.Committed _) -> ()
    | Some (Executor.Failed msg) -> Alcotest.failf "failed: %s" msg
    | None -> Alcotest.fail "never finished"
  end;
  Alcotest.(check bool) "root aborted" true
    (Metrics.root_aborts (Cluster.metrics cluster) >= 1)

(* Under QR-CHK the same mid-flight invalidation rolls back to a checkpoint
   instead of restarting. *)
let test_checkpoint_rollback () =
  let cluster =
    Cluster.create ~nodes:13 ~seed:5 ~with_oracle:false (Config.default Config.Checkpoint)
  in
  let oids = List.init 8 (fun _ -> Cluster.alloc_object cluster ~init:(Store.Value.Int 0)) in
  let program () = read_seq oids in
  (* Invalidate the 4th object after it was read but before the txn ends. *)
  bump_everywhere cluster ~at:200. ~oid:(List.nth oids 3) ~version:1;
  let outcome = ref None in
  Cluster.submit cluster ~node:5 program ~on_done:(fun o -> outcome := Some o);
  Cluster.drain cluster;
  begin
    match !outcome with
    | Some (Executor.Committed _) -> ()
    | Some (Executor.Failed msg) -> Alcotest.failf "failed: %s" msg
    | None -> Alcotest.fail "never finished"
  end;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "checkpoints were created" true (Metrics.checkpoints metrics >= 4);
  Alcotest.(check bool) "rolled back partially" true (Metrics.partial_aborts metrics >= 1);
  Alcotest.(check int) "no full restart" 0 (Metrics.root_aborts metrics)

(* Read-only commits: QR-CN commits locally (no commit_req messages);
   flat QR and QR-CHK pay the 2PC round (paper §III-A vs §IV-A). *)
let test_read_only_commit_messages () =
  let commit_reqs mode =
    let cluster =
      Cluster.create ~nodes:13 ~seed:6 ~with_oracle:false (Config.default mode)
    in
    let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 1) in
    let b = Cluster.alloc_object cluster ~init:(Store.Value.Int 2) in
    begin
      match Cluster.run_program cluster ~node:4 (fun () -> read_seq [ a; b ]) with
      | Executor.Committed _ -> ()
      | Executor.Failed msg -> Alcotest.failf "read-only txn failed: %s" msg
    end;
    Cluster.drain cluster;
    match List.assoc_opt "commit_req" (Cluster.messages_by_kind cluster) with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool) "flat pays a commit round" true (commit_reqs Config.Flat > 0);
  Alcotest.(check int) "closed commits locally" 0 (commit_reqs Config.Closed);
  Alcotest.(check bool) "checkpoint pays a commit round" true
    (commit_reqs Config.Checkpoint > 0)

(* Zombie guard: a program that loops forever over locally cached reads is
   killed after max_steps_per_attempt and, with bounded attempts, fails. *)
let test_zombie_guard () =
  let config =
    Config.make ~max_steps_per_attempt:64 ~max_attempts:2 Config.Flat
  in
  let cluster = Cluster.create ~nodes:13 ~seed:7 ~with_oracle:false config in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let rec spin () = Txn.bind (Txn.read a) (fun _ -> spin ()) in
  match Cluster.run_program cluster ~node:2 spin with
  | Executor.Failed msg ->
    Alcotest.(check string) "max attempts" "max attempts exceeded" msg;
    Alcotest.(check bool) "aborts counted" true
      (Metrics.root_aborts (Cluster.metrics cluster) >= 1)
  | Executor.Committed _ -> Alcotest.fail "zombie committed"

let test_fail_program () =
  let cluster = Cluster.create ~nodes:13 ~seed:8 (Config.default Config.Closed) in
  match Cluster.run_program cluster ~node:1 (fun () -> Txn.fail "boom") with
  | Executor.Failed msg -> Alcotest.(check string) "fail surfaces" "boom" msg
  | Executor.Committed _ -> Alcotest.fail "Fail committed"

(* Write skew must be prevented: two transactions each read both objects
   and write one; serializability forbids both committing from the same
   snapshot. *)
let test_no_write_skew () =
  let cluster = Cluster.create ~nodes:13 ~seed:9 (Config.default Config.Closed) in
  let x = Cluster.alloc_object cluster ~init:(Store.Value.Int 1) in
  let y = Cluster.alloc_object cluster ~init:(Store.Value.Int 1) in
  (* Invariant: x + y >= 1.  Each txn decrements its target only if the
     *other* is still positive. *)
  let open Txn.Syntax in
  let withdraw target other =
    let* t = Txn.read target in
    let* o = Txn.read other in
    if Store.Value.to_int t + Store.Value.to_int o > 1 then
      Txn.write target (Store.Value.Int (Store.Value.to_int t - 1))
    else Txn.return Store.Value.Unit
  in
  let done_count = ref 0 in
  Cluster.submit cluster ~node:1 (fun () -> withdraw x y) ~on_done:(fun _ -> incr done_count);
  Cluster.submit cluster ~node:7 (fun () -> withdraw y x) ~on_done:(fun _ -> incr done_count);
  Cluster.drain cluster;
  Alcotest.(check int) "both finished" 2 !done_count;
  let read_back oid =
    match Cluster.run_program cluster ~node:0 (fun () -> Txn.read oid) with
    | Executor.Committed v -> Store.Value.to_int v
    | Executor.Failed msg -> Alcotest.failf "read back failed: %s" msg
  in
  let total = read_back x + read_back y in
  Alcotest.(check bool) "invariant survives (no write skew)" true (total >= 1);
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

let suite =
  [
    Alcotest.test_case "partial abort targets the running CT" `Quick
      test_partial_abort_targets_ct;
    Alcotest.test_case "outer-scope conflict aborts the root" `Quick
      test_outer_conflict_aborts_root;
    Alcotest.test_case "checkpoint rollback instead of restart" `Quick
      test_checkpoint_rollback;
    Alcotest.test_case "read-only commit locality per mode" `Quick
      test_read_only_commit_messages;
    Alcotest.test_case "zombie guard caps runaway attempts" `Quick test_zombie_guard;
    Alcotest.test_case "Txn.fail surfaces as Failed" `Quick test_fail_program;
    Alcotest.test_case "no write skew" `Quick test_no_write_skew;
  ]
