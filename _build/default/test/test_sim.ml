(* Tests for the discrete-event simulation substrate: engine ordering,
   topology metrics, network delivery/queueing/failures, RPC collection and
   timeouts, failure detection. *)

let test_engine_ordering () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  Sim.Engine.schedule engine ~delay:5. (note "c");
  Sim.Engine.schedule engine ~delay:1. (note "a");
  Sim.Engine.schedule engine ~delay:1. (note "b"); (* FIFO at equal time *)
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "time then FIFO order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 5. (Sim.Engine.now engine);
  Alcotest.(check int) "events processed" 3 (Sim.Engine.events_processed engine)

let test_engine_until () =
  let engine = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule engine ~delay:10. (fun () -> incr fired);
  Sim.Engine.schedule engine ~delay:30. (fun () -> incr fired);
  Sim.Engine.run ~until:20. engine;
  Alcotest.(check int) "only the early event" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock set to limit" 20. (Sim.Engine.now engine);
  Alcotest.(check int) "one pending" 1 (Sim.Engine.pending engine);
  Sim.Engine.run engine;
  Alcotest.(check int) "rest drained" 2 !fired

let test_engine_nested_schedule () =
  let engine = Sim.Engine.create () in
  let hits = ref [] in
  Sim.Engine.schedule engine ~delay:1. (fun () ->
      hits := Sim.Engine.now engine :: !hits;
      Sim.Engine.schedule engine ~delay:2. (fun () ->
          hits := Sim.Engine.now engine :: !hits));
  Sim.Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "nested times" [ 1.; 3. ] (List.rev !hits)

let test_topology_mean_latency () =
  let topology = Sim.Topology.create ~seed:1 ~mean_latency:15. ~nodes:20 () in
  let mean = Sim.Topology.mean_remote_latency topology in
  Alcotest.(check bool) "mean close to target" true (Float.abs (mean -. 15.) < 0.5);
  Alcotest.(check (float 1e-9)) "self latency small" 0.05
    (Sim.Topology.latency topology ~src:3 ~dst:3);
  (* Symmetry. *)
  Alcotest.(check (float 1e-9)) "symmetric"
    (Sim.Topology.latency topology ~src:2 ~dst:7)
    (Sim.Topology.latency topology ~src:7 ~dst:2)

let test_uniform_topology () =
  let topology = Sim.Topology.uniform ~latency:5. ~nodes:4 () in
  Alcotest.(check (float 1e-9)) "uniform" 5. (Sim.Topology.latency topology ~src:0 ~dst:3)

let make_network ?(nodes = 4) ?(service_time = 1.) () =
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~latency:10. ~nodes () in
  let network = Sim.Network.create ~engine ~topology ~service_time ~jitter:0. () in
  (engine, network)

let test_network_delivery_and_counting () =
  let engine, network = make_network () in
  let received = ref [] in
  Sim.Network.set_handler network ~node:1 (fun ~src msg -> received := (src, msg) :: !received);
  Sim.Network.send network ~kind:"ping" ~src:0 ~dst:1 "hello";
  Sim.Network.send network ~kind:"ping" ~src:2 ~dst:1 "world";
  Sim.Network.send network ~src:1 ~dst:1 "self";
  Sim.Engine.run engine;
  Alcotest.(check int) "two handled remotely, one locally" 3 (List.length !received);
  Alcotest.(check int) "self-sends not counted" 2 (Sim.Network.messages_sent network);
  Alcotest.(check (list (pair string int))) "kind accounting" [ ("ping", 2) ]
    (Sim.Network.messages_by_kind network)

let test_network_service_queueing () =
  (* Two messages arriving together at one node must be processed serially:
     second handler fires one service_time later. *)
  let engine, network = make_network ~service_time:2. () in
  let times = ref [] in
  Sim.Network.set_handler network ~node:1 (fun ~src:_ _ ->
      times := Sim.Engine.now engine :: !times);
  Sim.Network.send network ~src:0 ~dst:1 "a";
  Sim.Network.send network ~src:2 ~dst:1 "b";
  Sim.Engine.run engine;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-6)) "first at latency+service" 12. t1;
    Alcotest.(check (float 1e-6)) "second queued behind" 14. t2
  | other -> Alcotest.failf "expected 2 deliveries, got %d" (List.length other)

let test_network_failure_drops () =
  let engine, network = make_network () in
  let received = ref 0 in
  Sim.Network.set_handler network ~node:1 (fun ~src:_ _ -> incr received);
  Sim.Network.fail network 1;
  Sim.Network.send network ~src:0 ~dst:1 "lost";
  Sim.Engine.run engine;
  Alcotest.(check int) "failed node receives nothing" 0 !received;
  Alcotest.(check bool) "marked failed" true (Sim.Network.is_failed network 1);
  Alcotest.(check (list int)) "alive nodes" [ 0; 2; 3 ] (Sim.Network.alive_nodes network);
  Sim.Network.revive network 1;
  Sim.Network.send network ~src:0 ~dst:1 "back";
  Sim.Engine.run engine;
  Alcotest.(check int) "revived node receives" 1 !received

let make_rpc ?(nodes = 4) () =
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~latency:10. ~nodes () in
  let network = Sim.Network.create ~engine ~topology ~service_time:0.5 ~jitter:0. () in
  let rpc = Sim.Rpc.create ~network () in
  (engine, network, rpc)

let test_rpc_call_roundtrip () =
  let engine, _network, rpc = make_rpc () in
  Sim.Rpc.serve rpc ~node:1 (fun ~src:_ req -> Some (req * 2));
  let answer = ref None in
  Sim.Rpc.call rpc ~src:0 ~dst:1 ~timeout:1000. 21
    ~on_reply:(fun rep -> answer := Some rep)
    ~on_timeout:(fun () -> Alcotest.fail "unexpected timeout");
  Sim.Engine.run engine;
  Alcotest.(check (option int)) "doubled" (Some 42) !answer

let test_rpc_multicall_collects_all () =
  let engine, _network, rpc = make_rpc () in
  for node = 0 to 3 do
    Sim.Rpc.serve rpc ~node (fun ~src:_ req -> Some (req + node))
  done;
  let result = ref None in
  Sim.Rpc.multicall rpc ~src:0 ~dsts:[ 1; 2; 3 ] ~timeout:1000. 100
    ~on_done:(fun ~replies ~missing -> result := Some (replies, missing));
  Sim.Engine.run engine;
  match !result with
  | Some (replies, []) ->
    Alcotest.(check (list (pair int int)))
      "all replied" [ (1, 101); (2, 102); (3, 103) ]
      (List.sort compare replies)
  | Some (_, missing) -> Alcotest.failf "unexpected missing: %d" (List.length missing)
  | None -> Alcotest.fail "multicall never completed"

let test_rpc_multicall_timeout_reports_missing () =
  let engine, network, rpc = make_rpc () in
  for node = 0 to 3 do
    Sim.Rpc.serve rpc ~node (fun ~src:_ req -> Some req)
  done;
  Sim.Network.fail network 2;
  let result = ref None in
  Sim.Rpc.multicall rpc ~src:0 ~dsts:[ 1; 2; 3 ] ~timeout:200. 7
    ~on_done:(fun ~replies ~missing -> result := Some (List.map fst replies, missing));
  Sim.Engine.run engine;
  Alcotest.(check (option (pair (list int) (list int))))
    "dead member reported missing"
    (Some ([ 1; 3 ], [ 2 ]))
    (Option.map (fun (r, m) -> (List.sort compare r, m)) !result)

let test_rpc_no_reply_handler () =
  let engine, _network, rpc = make_rpc () in
  let casts = ref 0 in
  Sim.Rpc.serve rpc ~node:1 (fun ~src:_ _ ->
      incr casts;
      None);
  Sim.Rpc.cast rpc ~src:0 ~dst:1 99;
  Sim.Engine.run engine;
  Alcotest.(check int) "cast handled" 1 !casts

let test_failure_detection () =
  let engine = Sim.Engine.create () in
  let killed = ref [] and detected = ref [] in
  let failure =
    Sim.Failure.create ~engine ~detection_delay:25. ~kill:(fun n -> killed := n :: !killed) ()
  in
  Sim.Failure.on_detect failure (fun n -> detected := (n, Sim.Engine.now engine) :: !detected);
  Sim.Failure.schedule failure ~at:100. ~node:3;
  Sim.Engine.run ~until:110. engine;
  Alcotest.(check (list int)) "killed at failure time" [ 3 ] !killed;
  Alcotest.(check (list (pair int (float 1e-9)))) "not yet detected" [] !detected;
  Sim.Engine.run engine;
  Alcotest.(check (list (pair int (float 1e-9)))) "detected after delay" [ (3, 125.) ]
    !detected;
  Alcotest.(check bool) "is_failed after detection" true (Sim.Failure.is_failed failure 3);
  Alcotest.(check (list int)) "failed list" [ 3 ] (Sim.Failure.failed_nodes failure)

let suite =
  [
    Alcotest.test_case "engine event ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine run ~until" `Quick test_engine_until;
    Alcotest.test_case "engine nested scheduling" `Quick test_engine_nested_schedule;
    Alcotest.test_case "topology mean latency" `Quick test_topology_mean_latency;
    Alcotest.test_case "topology uniform" `Quick test_uniform_topology;
    Alcotest.test_case "network delivery and counting" `Quick test_network_delivery_and_counting;
    Alcotest.test_case "network service queueing" `Quick test_network_service_queueing;
    Alcotest.test_case "network failure drops" `Quick test_network_failure_drops;
    Alcotest.test_case "rpc call roundtrip" `Quick test_rpc_call_roundtrip;
    Alcotest.test_case "rpc multicall collects all" `Quick test_rpc_multicall_collects_all;
    Alcotest.test_case "rpc multicall timeout" `Quick test_rpc_multicall_timeout_reports_missing;
    Alcotest.test_case "rpc one-way cast" `Quick test_rpc_no_reply_handler;
    Alcotest.test_case "failure detection" `Quick test_failure_detection;
  ]
