(* Tree structure, tree-quorum construction, the paper's Fig. 3 example,
   and property-based verification of the intersection properties that
   1-copy equivalence rests on. *)

let test_tree_shape () =
  let tree = Quorum.Tree.create ~nodes:13 () in
  Alcotest.(check int) "root" 0 (Quorum.Tree.root tree);
  Alcotest.(check (list int)) "children of root" [ 1; 2; 3 ] (Quorum.Tree.children tree 0);
  Alcotest.(check (list int)) "children of n2" [ 7; 8; 9 ] (Quorum.Tree.children tree 2);
  Alcotest.(check (option int)) "parent of n7" (Some 2) (Quorum.Tree.parent tree 7);
  Alcotest.(check (option int)) "root has no parent" None (Quorum.Tree.parent tree 0);
  Alcotest.(check bool) "n12 is leaf" true (Quorum.Tree.is_leaf tree 12);
  Alcotest.(check bool) "n2 is not leaf" false (Quorum.Tree.is_leaf tree 2);
  Alcotest.(check int) "depth of n9" 2 (Quorum.Tree.depth tree 9);
  Alcotest.(check int) "height" 2 (Quorum.Tree.height tree);
  Alcotest.(check (list int)) "level 1" [ 1; 2; 3 ] (Quorum.Tree.level tree 1);
  Alcotest.(check (list int)) "level 2" [ 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
    (Quorum.Tree.level tree 2)

(* The paper's Fig. 3: 13 nodes, read quorum {n1, n2} at level 1, write
   quorum {n0, n2, n3, n8, n9, n11, n12} (root + majority of children +
   majority of grandchildren under each). *)
let test_paper_example_shapes () =
  let tq = Quorum.Tree_quorum.create ~nodes:13 ~read_level:1 () in
  begin
    match Quorum.Tree_quorum.read_quorum ~salt:0 tq with
    | Some quorum ->
      Alcotest.(check int) "read quorum size" 2 (List.length quorum);
      Alcotest.(check bool) "read quorum from level 1" true
        (List.for_all (fun n -> List.mem n [ 1; 2; 3 ]) quorum)
    | None -> Alcotest.fail "no read quorum"
  end;
  match Quorum.Tree_quorum.write_quorum ~salt:0 tq with
  | Some quorum ->
    Alcotest.(check int) "write quorum size" 7 (List.length quorum);
    Alcotest.(check bool) "contains root" true (List.mem 0 quorum)
  | None -> Alcotest.fail "no write quorum"

let test_read_level_zero_is_root () =
  let tq = Quorum.Tree_quorum.create ~nodes:28 ~read_level:0 () in
  Alcotest.(check (option (list int))) "root alone" (Some [ 0 ])
    (Quorum.Tree_quorum.read_quorum ~salt:5 tq)

let test_quorum_growth_under_failures () =
  (* The Fig. 10 mechanism: failing inside the read quorum grows it by one. *)
  let tq = Quorum.Tree_quorum.create ~nodes:28 ~read_level:0 () in
  let size () =
    match Quorum.Tree_quorum.read_quorum ~salt:0 tq with
    | Some q -> List.length q
    | None -> -1
  in
  Alcotest.(check int) "initial" 1 (size ());
  Quorum.Tree_quorum.mark_failed tq 0;
  Alcotest.(check int) "after root failure" 2 (size ());
  let next_victim () =
    match Quorum.Tree_quorum.read_quorum ~salt:0 tq with
    | Some (v :: _) -> v
    | Some [] | None -> Alcotest.fail "quorum vanished"
  in
  let v = next_victim () in
  Quorum.Tree_quorum.mark_failed tq v;
  Alcotest.(check int) "after second failure" 3 (size ())

let test_failed_nodes_excluded () =
  let tq = Quorum.Tree_quorum.create ~nodes:13 () in
  Quorum.Tree_quorum.mark_failed tq 1;
  Quorum.Tree_quorum.mark_failed tq 8;
  let check_quorum label = function
    | Some q ->
      Alcotest.(check bool) (label ^ " excludes failed") true
        (Quorum.Check.all_alive ~failed:[ 1; 8 ] q)
    | None -> Alcotest.fail (label ^ " not constructible")
  in
  check_quorum "read" (Quorum.Tree_quorum.read_quorum ~salt:3 tq);
  check_quorum "write" (Quorum.Tree_quorum.write_quorum ~salt:3 tq)

let test_revive () =
  let tq = Quorum.Tree_quorum.create ~nodes:13 ~read_level:0 () in
  Quorum.Tree_quorum.mark_failed tq 0;
  Alcotest.(check (list int)) "failed recorded" [ 0 ] (Quorum.Tree_quorum.failed tq);
  Quorum.Tree_quorum.revive tq 0;
  Alcotest.(check (option (list int))) "root back" (Some [ 0 ])
    (Quorum.Tree_quorum.read_quorum tq)

(* Property: for random sizes, read levels, salts and failure sets, any
   constructible read quorum intersects any constructible write quorum, and
   write quorums pairwise intersect. *)
let intersection_property =
  let gen =
    QCheck.Gen.(
      let* nodes = int_range 1 40 in
      let* read_level = int_range 0 3 in
      let* salts = list_size (int_range 2 5) (int_range 0 1000) in
      let* failures = list_size (int_range 0 5) (int_range 0 (nodes - 1)) in
      return (nodes, read_level, salts, failures))
  in
  QCheck.Test.make ~name:"tree quorums intersect under failures" ~count:500
    (QCheck.make gen) (fun (nodes, read_level, salts, failures) ->
      let tq = Quorum.Tree_quorum.create ~nodes ~read_level () in
      List.iter (Quorum.Tree_quorum.mark_failed tq) failures;
      let reads = List.filter_map (fun salt -> Quorum.Tree_quorum.read_quorum ~salt tq) salts in
      let writes =
        List.filter_map (fun salt -> Quorum.Tree_quorum.write_quorum ~salt tq) salts
      in
      Quorum.Check.read_write_intersection ~reads ~writes
      && Quorum.Check.write_write_intersection ~writes
      && List.for_all (Quorum.Check.all_alive ~failed:failures) (reads @ writes))

let majority_property =
  QCheck.Test.make ~name:"flat majority quorums intersect" ~count:300
    QCheck.(pair (int_range 1 30) (list_of_size (QCheck.Gen.int_range 2 4) (int_range 0 999)))
    (fun (nodes, salts) ->
      let m = Quorum.Majority.create ~nodes in
      let quorums = List.filter_map (fun salt -> Quorum.Majority.quorum ~salt m) salts in
      Quorum.Check.write_write_intersection ~writes:quorums)

let test_majority_unavailable () =
  let m = Quorum.Majority.create ~nodes:4 in
  Quorum.Majority.mark_failed m 0;
  (* Majority of 4 is 3; with 3 alive it is still constructible. *)
  Alcotest.(check (option (list int))) "3 of 4 alive" (Some [ 1; 2; 3 ])
    (Quorum.Majority.quorum m);
  Quorum.Majority.mark_failed m 1;
  Alcotest.(check (option (list int))) "below majority" None (Quorum.Majority.quorum m);
  Quorum.Majority.revive m 0;
  Alcotest.(check bool) "revive restores" true (Quorum.Majority.quorum m <> None)

(* Regression: the Fig. 10 victim set on 28 nodes includes a dead *leaf*
   (node 13) under a chain of dead interior nodes; the write quorum must
   still be constructible (the dead leaf's subtree contributes nothing, and
   no read quorum can be built through it either). *)
let test_write_quorum_survives_dead_leaf () =
  let tq = Quorum.Tree_quorum.create ~nodes:28 ~read_level:0 () in
  List.iter (Quorum.Tree_quorum.mark_failed tq) [ 0; 1; 2; 4; 5; 7; 8; 13 ];
  match (Quorum.Tree_quorum.write_quorum ~salt:0 tq, Quorum.Tree_quorum.read_quorum ~salt:0 tq)
  with
  | Some wq, Some rq ->
    Alcotest.(check bool) "write quorum alive-only" true
      (Quorum.Check.all_alive ~failed:[ 0; 1; 2; 4; 5; 7; 8; 13 ] wq);
    Alcotest.(check bool) "read/write intersect" true (Quorum.Check.intersects rq wq)
  | None, _ -> Alcotest.fail "write quorum not constructible"
  | _, None -> Alcotest.fail "read quorum not constructible"

let test_check_helpers () =
  Alcotest.(check bool) "intersects" true (Quorum.Check.intersects [ 1; 3; 5 ] [ 2; 3 ]);
  Alcotest.(check bool) "disjoint" false (Quorum.Check.intersects [ 1; 2 ] [ 3; 4 ]);
  Alcotest.(check bool) "empty never intersects" false (Quorum.Check.intersects [] [ 1 ])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ intersection_property; majority_property ]

let suite =
  [
    Alcotest.test_case "ternary tree shape (paper Fig. 3)" `Quick test_tree_shape;
    Alcotest.test_case "paper example quorum shapes" `Quick test_paper_example_shapes;
    Alcotest.test_case "read level 0 is the root" `Quick test_read_level_zero_is_root;
    Alcotest.test_case "quorum grows by one per failure" `Quick test_quorum_growth_under_failures;
    Alcotest.test_case "failed nodes excluded" `Quick test_failed_nodes_excluded;
    Alcotest.test_case "revive restores quorums" `Quick test_revive;
    Alcotest.test_case "majority below threshold" `Quick test_majority_unavailable;
    Alcotest.test_case "write quorum survives dead leaf" `Quick
      test_write_quorum_survives_dead_leaf;
    Alcotest.test_case "check helpers" `Quick test_check_helpers;
  ]
  @ qcheck_cases
