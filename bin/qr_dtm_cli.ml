(* qr-dtm: regenerate the paper's figures/tables or run custom experiments.

   Examples:
     qr-dtm figure 5 --bench slist
     qr-dtm figure 10 --scale full
     qr-dtm table
     qr-dtm summary
     qr-dtm run --bench bank --mode closed --reads 0.2 --calls 4
     qr-dtm scenario "crash 11 @500; recover 11 @2500; drop 0.05 @0"
     qr-dtm all --scale quick *)

open Cmdliner

let scale_of_string = function
  | "full" -> Harness.Figures.full
  | "quick" -> Harness.Figures.quick
  | other -> failwith (Printf.sprintf "unknown scale %S (quick|full)" other)

let scale_arg =
  let doc = "Run scale: $(b,quick) (seconds per point) or $(b,full) (paper-like)." in
  Arg.(value & opt string "quick" & info [ "scale" ] ~docv:"SCALE" ~doc)

let jobs_arg =
  let doc =
    "Independent simulation runs executed concurrently (OCaml domains). \
     Defaults to the machine's core count; output is identical at any value."
  in
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let set_jobs jobs = Harness.Pool.set_jobs jobs

let bench_arg =
  let doc = "Benchmark name (bank, hashmap, slist, rbtree, vacation, bst, counter)." in
  Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"BENCH" ~doc)

let lookup_bench name =
  match Benchmarks.Registry.find name with
  | Some b -> b
  | None ->
    failwith
      (Printf.sprintf "unknown benchmark %S (expected one of: %s)" name
         (String.concat ", " (Benchmarks.Registry.names ())))

let selected_benchmarks = function
  | Some name -> [ lookup_bench name ]
  | None -> Benchmarks.Registry.paper_suite

let print_series series = print_string (Harness.Report.render series)

let batch_commit_arg =
  let doc =
    "Speculative batch-commit mode (PROTOCOL.md §9): coordinators queue commit \
     requests and decide each batch with a single quorum round; queued successors \
     read predecessors' uncommitted write images speculatively."
  in
  Arg.(value & flag & info [ "batch-commit" ] ~doc)

let parse_mode = function
  | "flat" -> Core.Config.Flat
  | "closed" -> Core.Config.Closed
  | "checkpoint" -> Core.Config.Checkpoint
  | other -> failwith (Printf.sprintf "unknown mode %S" other)

let shards_arg =
  let doc =
    "Shards the object space is partitioned into (each shard runs its own \
     member view, epoch and tree quorum; needs at least 3 nodes per shard). \
     1 reproduces the unsharded protocol byte-for-byte."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let cross_shard_prob_arg =
  let doc =
    "Fraction of workload operations steered across shard boundaries \
     (bank transfer pairs spanning two shards; hashmap keys homed on a \
     drawn shard).  Requires --shards > 1 to have any effect."
  in
  Arg.(value & opt float 0. & info [ "cross-shard-prob" ] ~docv:"P" ~doc)

let shard_skew_arg =
  let doc = "Zipf skew of the target-shard draw on cross-shard operations (0 = uniform)." in
  Arg.(value & opt float 0. & info [ "shard-skew" ] ~docv:"S" ~doc)

let figure_cmd =
  let number_arg =
    let doc = "Figure number: 5, 6, 7, 9 or 10." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc)
  in
  let run number scale bench jobs =
    set_jobs jobs;
    let scale = scale_of_string scale in
    begin
      match number with
      | 5 ->
        List.iter
          (fun benchmark -> print_series (Harness.Figures.fig5 ~scale ~benchmark ()))
          (selected_benchmarks bench)
      | 6 ->
        List.iter
          (fun benchmark -> print_series (Harness.Figures.fig6 ~scale ~benchmark ()))
          (selected_benchmarks bench)
      | 7 ->
        List.iter
          (fun benchmark -> print_series (Harness.Figures.fig7 ~scale ~benchmark ()))
          (selected_benchmarks bench)
      | 9 -> List.iter print_series (Harness.Figures.fig9 ~scale ())
      | 10 -> print_series (Harness.Figures.fig10 ~scale ())
      | n -> failwith (Printf.sprintf "no figure %d (5, 6, 7, 9, 10)" n)
    end
  in
  let info = Cmd.info "figure" ~doc:"Regenerate one of the paper's figures" in
  Cmd.v info Term.(const run $ number_arg $ scale_arg $ bench_arg $ jobs_arg)

let table_cmd =
  let run scale jobs =
    set_jobs jobs;
    print_series (Harness.Figures.table8 ~scale:(scale_of_string scale) ())
  in
  let info = Cmd.info "table" ~doc:"Regenerate the abort/message table (paper Fig. 8)" in
  Cmd.v info Term.(const run $ scale_arg $ jobs_arg)

let summary_cmd =
  let run scale jobs =
    set_jobs jobs;
    print_series (Harness.Figures.summary ~scale:(scale_of_string scale) ())
  in
  let info = Cmd.info "summary" ~doc:"Headline paper-claim aggregates" in
  Cmd.v info Term.(const run $ scale_arg $ jobs_arg)

let run_cmd =
  let mode_arg =
    let doc = "Execution model: flat, closed or checkpoint." in
    Arg.(value & opt string "closed" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let reads_arg =
    Arg.(value & opt float 0.5 & info [ "reads" ] ~docv:"R" ~doc:"Read ratio in [0,1].")
  in
  let calls_arg =
    Arg.(value & opt int 3 & info [ "calls" ] ~docv:"N" ~doc:"Closed-nested calls per txn.")
  in
  let objects_arg =
    Arg.(value & opt (some int) None & info [ "objects" ] ~docv:"N" ~doc:"Population size.")
  in
  let nodes_arg = Arg.(value & opt int 13 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.") in
  let clients_arg =
    Arg.(value & opt int 26 & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients.")
  in
  let duration_arg =
    Arg.(value & opt float 10_000. & info [ "duration" ] ~docv:"MS" ~doc:"Window, ms.")
  in
  let seed_arg = Arg.(value & opt int 97 & info [ "seed" ] ~docv:"SEED" ~doc:"Run seed.") in
  let skew_arg =
    Arg.(value & opt float 0.5 & info [ "skew" ] ~docv:"S" ~doc:"Zipf key skew.")
  in
  let open_loop_arg =
    let doc =
      "Open-loop mode: Poisson arrivals at $(docv) requests per second of simulated \
       time over a logical client population (--population), instead of closed-loop \
       clients.  Reports p50/p95/p99 service latency and queueing delay separately."
    in
    Arg.(value & opt (some float) None & info [ "open-loop" ] ~docv:"RATE" ~doc)
  in
  let population_arg =
    let doc = "Logical client population for --open-loop (clients are lazy: no per-client state)." in
    Arg.(value & opt int 1_000_000 & info [ "population" ] ~docv:"N" ~doc)
  in
  let max_per_node_arg =
    let doc = "Admission cap per node for --open-loop; arrivals beyond it queue and accrue queueing delay." in
    Arg.(value & opt int 4 & info [ "max-per-node" ] ~docv:"N" ~doc)
  in
  let check_online_arg =
    let doc =
      "Attach the online protocol checker (Obs.Online) to the run via a tracer sink: \
       every rule is checked as events stream, with memory bounded by in-flight \
       transactions; exits 1 on violations.  Immune to ring truncation."
    in
    Arg.(value & flag & info [ "check-online" ] ~doc)
  in
  let run bench mode reads calls objects nodes clients duration seed skew batch_commit
      shards cross_shard_prob shard_skew open_loop population max_per_node check_online =
    let benchmark = lookup_bench (Option.value ~default:"bank" bench) in
    let mode = parse_mode mode in
    let params =
      {
        Benchmarks.Workload.objects =
          Option.value ~default:(Harness.Figures.benchmark_objects benchmark.name) objects;
        calls;
        read_ratio = reads;
        key_skew = skew;
        cross_shard_prob;
        shard_skew;
      }
    in
    let config = Core.Config.default mode in
    (* The online checker rides a tracer sink; the ring itself can stay
       tiny — the sink sees every event before eviction. *)
    let tracer =
      if check_online then Obs.Tracer.create ~capacity:(1 lsl 12) ()
      else Obs.Tracer.null
    in
    let online =
      if not check_online then None
      else begin
        let is_write_quorum =
          (* The structural rule only holds for the static single-shard
             view; sharded runs fall back to pairwise intersection. *)
          if shards = 1 then begin
            let tree = Quorum.Tree.create ~nodes () in
            Some (fun set -> Quorum.Check.covers_write_quorum tree set)
          end
          else None
        in
        let ck = Obs.Online.create ?is_write_quorum () in
        Obs.Online.attach ck tracer;
        Some ck
      end
    in
    (match open_loop with
    | Some rate ->
      let result =
        Harness.Openloop.run ~nodes ~seed ~duration ~batch_commit ~shards ~tracer
          ~population ~max_per_node ~rate ~config ~benchmark ~params ()
      in
      Format.printf "%a@." Harness.Openloop.pp_result result
    | None ->
      let result =
        Harness.Experiment.run ~nodes ~seed ~clients ~duration ~batch_commit ~shards
          ~tracer ~config ~benchmark ~params ()
      in
      Format.printf "%a@." Harness.Experiment.pp_result result);
    match online with
    | None -> ()
    | Some ck -> (
      match Obs.Online.finish ck with
      | [] ->
        Format.eprintf "online checker: ok (%d events, 0 violations)@."
          (Obs.Online.events_seen ck)
      | violations ->
        List.iter (fun v -> prerr_endline (Obs.Online.pp_violation v)) violations;
        Format.eprintf "online checker: %d violation(s)@." (List.length violations);
        exit 1)
  in
  let info = Cmd.info "run" ~doc:"Run one custom experiment point" in
  Cmd.v info
    Term.(
      const run $ bench_arg $ mode_arg $ reads_arg $ calls_arg $ objects_arg $ nodes_arg
      $ clients_arg $ duration_arg $ seed_arg $ skew_arg $ batch_commit_arg $ shards_arg
      $ cross_shard_prob_arg $ shard_skew_arg $ open_loop_arg $ population_arg
      $ max_per_node_arg $ check_online_arg)

let scenario_cmd =
  let spec_arg =
    let doc =
      "Fault scenario, e.g. 'crash 11 @500; recover 11 @2500; drop 0.05 @0'. \
       Events: crash/recover/suspect N @T [for D], partition a,b|c,d @T for D, \
       drop/dup P @T [for D], spike P F @T [for D], flaky A-B P @T [for D], \
       join N @T, leave N @T, replace L J @T, shardmove OID S @T, shardsplit S @T."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)
  in
  let spares_arg =
    let doc = "Stand-by machines outside the initial view (targets for join/replace)." in
    Arg.(value & opt int 0 & info [ "spares" ] ~docv:"N" ~doc)
  in
  let mode_arg =
    let doc = "Execution model: flat, closed or checkpoint." in
    Arg.(value & opt string "closed" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let nodes_arg = Arg.(value & opt int 13 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.") in
  let clients_arg =
    Arg.(value & opt int 16 & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients.")
  in
  let duration_arg =
    Arg.(value & opt float 5_000. & info [ "duration" ] ~docv:"MS" ~doc:"Window, ms.")
  in
  let seed_arg = Arg.(value & opt int 97 & info [ "seed" ] ~docv:"SEED" ~doc:"Run seed.") in
  let run spec bench mode nodes spares clients duration seed shards cross_shard_prob
      shard_skew =
    let benchmark = lookup_bench (Option.value ~default:"bank" bench) in
    let mode = parse_mode mode in
    let events =
      match Harness.Scenario.parse spec with
      | Ok events -> events
      | Error msg -> failwith (Printf.sprintf "bad scenario: %s" msg)
    in
    let crashed = Harness.Scenario.crashed_nodes events in
    let client_nodes =
      List.init nodes Fun.id |> List.filter (fun n -> not (List.mem n crashed))
    in
    let params =
      {
        Benchmarks.Workload.objects = Harness.Figures.benchmark_objects benchmark.name;
        calls = 3;
        read_ratio = 0.5;
        key_skew = 0.5;
        cross_shard_prob;
        shard_skew;
      }
    in
    let tracker = ref None in
    let result =
      Harness.Experiment.run ~nodes ~spares ~seed ~clients ~duration ~client_nodes ~shards
        ~prepare:(fun cluster -> tracker := Some (Harness.Scenario.install cluster events))
        ~config:(Core.Config.default mode) ~benchmark ~params ()
    in
    Format.printf "%a@." Harness.Experiment.pp_result result;
    Option.iter
      (fun t -> Format.printf "%a@." Harness.Scenario.pp_report (Harness.Scenario.report t))
      !tracker
  in
  let info =
    Cmd.info "scenario"
      ~doc:"Run a workload under an injected fault scenario (crashes, partitions, loss, \
            membership changes, shard moves/splits)"
  in
  Cmd.v info
    Term.(
      const run $ spec_arg $ bench_arg $ mode_arg $ nodes_arg $ spares_arg $ clients_arg
      $ duration_arg $ seed_arg $ shards_arg $ cross_shard_prob_arg $ shard_skew_arg)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let warn_dropped tracer =
  let dropped = Obs.Tracer.dropped tracer in
  if dropped > 0 then
    Printf.eprintf
      "warning: trace ring buffer overflowed, %d oldest events dropped (raise \
       --trace-capacity); checker verdicts may be unreliable\n"
      dropped

let trace_cmd =
  let mode_arg =
    let doc = "Execution model: flat, closed or checkpoint." in
    Arg.(value & opt string "closed" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let nodes_arg = Arg.(value & opt int 13 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.") in
  let clients_arg =
    Arg.(value & opt int 26 & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients.")
  in
  let duration_arg =
    Arg.(value & opt float 5_000. & info [ "duration" ] ~docv:"MS" ~doc:"Window, ms.")
  in
  let seed_arg = Arg.(value & opt int 97 & info [ "seed" ] ~docv:"SEED" ~doc:"Run seed.") in
  let txn_arg =
    let doc = "Print the causal history of one transaction id instead of full JSON." in
    Arg.(value & opt (some int) None & info [ "txn" ] ~docv:"TXN" ~doc)
  in
  let out_arg =
    let doc = "Write the Chrome trace_event JSON to $(docv) (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let telemetry_arg =
    let doc = "Also sample windowed telemetry and write it as CSV to $(docv)." in
    Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)
  in
  let window_arg =
    Arg.(value & opt float 250. & info [ "window" ] ~docv:"MS" ~doc:"Telemetry sampling window, ms.")
  in
  let capacity_arg =
    let doc = "Trace ring-buffer capacity (events); oldest events drop past this." in
    Arg.(value & opt int (1 lsl 20) & info [ "trace-capacity" ] ~docv:"N" ~doc)
  in
  let check_arg =
    Arg.(value & flag & info [ "check" ] ~doc:"Run the offline protocol checker over the trace; exit 1 on violations.")
  in
  let run bench mode seed nodes clients duration txn out telemetry window capacity check =
    let benchmark = lookup_bench (Option.value ~default:"bank" bench) in
    let config = Core.Config.default (parse_mode mode) in
    let params =
      {
        Benchmarks.Workload.default_params with
        objects = Harness.Figures.benchmark_objects benchmark.name;
        calls = 3;
        read_ratio = 0.5;
        key_skew = 0.5;
      }
    in
    let tracer = Obs.Tracer.create ~capacity () in
    let tele = Option.map (fun _ -> Obs.Telemetry.create ~window) telemetry in
    let result =
      Harness.Experiment.run ~nodes ~seed ~clients ~duration ~tracer ?telemetry:tele
        ~config ~benchmark ~params ()
    in
    Format.eprintf "%a@." Harness.Experiment.pp_result result;
    Format.eprintf "trace: %d events captured@." (Obs.Tracer.length tracer);
    warn_dropped tracer;
    (match (txn, out) with
    | Some txn, _ ->
      let history = Obs.Export.txn_history tracer ~txn in
      if history = "" then Printf.printf "txn %d does not appear in the trace\n" txn
      else print_string history;
      Option.iter (fun path -> write_file path (Obs.Export.chrome_json tracer)) out
    | None, Some path -> write_file path (Obs.Export.chrome_json tracer)
    | None, None -> print_string (Obs.Export.chrome_json tracer));
    Option.iter
      (fun path -> Option.iter (fun t -> write_file path (Obs.Telemetry.to_csv t)) tele)
      telemetry;
    if check then begin
      let tree = Quorum.Tree.create ~nodes () in
      let violations =
        Obs.Checker.check
          ~is_write_quorum:(fun set -> Quorum.Check.covers_write_quorum tree set)
          (Obs.Tracer.events tracer)
      in
      let dropped = Obs.Tracer.dropped tracer in
      if dropped > 0 then begin
        (* The ring lost the prefix: pass/fail over the remainder would be
           unreliable either way (lost evidence looks like violations,
           lost violations look like passes).  Hard inconclusive. *)
        List.iter (fun v -> prerr_endline (Obs.Checker.pp_violation v)) violations;
        Format.eprintf
          "checker: INCONCLUSIVE — ring dropped %d events (%d violation(s) \
           over the truncated trace are unreliable); raise --trace-capacity \
           or use qr-dtm run --check-online@."
          dropped (List.length violations);
        exit 3
      end
      else
        match violations with
        | [] -> Format.eprintf "checker: ok (%d events, 0 violations)@." (Obs.Tracer.length tracer)
        | violations ->
          List.iter (fun v -> prerr_endline (Obs.Checker.pp_violation v)) violations;
          Format.eprintf "checker: %d violation(s)@." (List.length violations);
          exit 1
    end
  in
  let info =
    Cmd.info "trace"
      ~doc:"Run one traced experiment and export its transaction-lifecycle trace"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Runs a single experiment point with the lifecycle tracer enabled and \
             exports the trace as Chrome trace_event JSON (chrome://tracing or \
             ui.perfetto.dev).  Tracing never perturbs the simulation: results are \
             byte-identical to an untraced run with the same seed.";
        ]
  in
  Cmd.v info
    Term.(
      const run $ bench_arg $ mode_arg $ seed_arg $ nodes_arg $ clients_arg $ duration_arg
      $ txn_arg $ out_arg $ telemetry_arg $ window_arg $ capacity_arg $ check_arg)

let chaos_cmd =
  let runs_arg =
    Arg.(value & opt int 25 & info [ "runs" ] ~docv:"N" ~doc:"Seeded schedules to run.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"First seed; runs use SEED..SEED+N-1.")
  in
  let nodes_arg = Arg.(value & opt int 9 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.") in
  let clients_arg =
    Arg.(value & opt int 18 & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients (all nodes).")
  in
  let horizon_arg =
    Arg.(value & opt float 8_000. & info [ "horizon" ] ~docv:"MS" ~doc:"Fault+load window, ms.")
  in
  let crashes_arg =
    Arg.(value & opt int 2 & info [ "max-crashes" ] ~docv:"N" ~doc:"Crash/recover pairs per schedule: 0..N.")
  in
  let spares_arg =
    let doc = "Stand-by machines outside the initial view (join/replace targets)." in
    Arg.(value & opt int 0 & info [ "spares" ] ~docv:"N" ~doc)
  in
  let reconfigs_arg =
    let doc = "Membership operations (join/leave/replace) drawn per schedule: 0..N." in
    Arg.(value & opt int 0 & info [ "reconfigs" ] ~docv:"N" ~doc)
  in
  let shard_ops_arg =
    let doc =
      "Shard-directory operations (object moves, shard splits) drawn per schedule: \
       0..N.  Requires --shards > 1."
    in
    Arg.(value & opt int 0 & info [ "shard-ops" ] ~docv:"N" ~doc)
  in
  let rolling_arg =
    let doc =
      "Rolling-restart schedules: replace every initial node exactly once under load \
       (implies at least one spare; uses the rolling preset horizon when --horizon is \
       left at its default)."
    in
    Arg.(value & flag & info [ "rolling" ] ~doc)
  in
  let mode_arg =
    let doc = "Execution model: flat, closed or checkpoint." in
    Arg.(value & opt string "closed" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON array of per-seed results.")
  in
  let failures_arg =
    let doc = "Write failing schedules (seed + scenario DSL) to $(docv) for reproduction." in
    Arg.(value & opt (some string) None & info [ "failures-to" ] ~docv:"FILE" ~doc)
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every per-seed result, not just failures.")
  in
  let show_arg =
    Arg.(value & flag & info [ "show" ] ~doc:"Print each seed's generated schedule without running it.")
  in
  let trace_dir_arg =
    let doc =
      "Re-run each failing seed with tracing enabled (deterministic, so the failure \
       reproduces exactly) and dump per-seed artifacts into $(docv): the schedule, the \
       Chrome trace_event JSON, and the offline protocol-checker verdicts."
    in
    Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)
  in
  let trace_all_arg =
    Arg.(value & flag & info [ "trace-all" ] ~doc:"With --trace-dir: dump every seed, not just failures.")
  in
  let check_online_arg =
    let doc =
      "Run each seed with the online protocol checker attached (tracer sink, \
       pairwise-intersection quorum rule): violations are detected as events \
       stream, immune to ring truncation, with memory bounded by in-flight \
       transactions.  Any violation fails the sweep (exit 1)."
    in
    Arg.(value & flag & info [ "check-online" ] ~doc)
  in
  let fail_fast_arg =
    let doc =
      "With --check-online: abort at the first violation, mid-run — the \
       offending seed's schedule is written to --failures-to before exiting."
    in
    Arg.(value & flag & info [ "fail-fast" ] ~doc)
  in
  let run runs seed nodes clients horizon max_crashes spares reconfigs rolling mode
      batch_commit json failures_to verbose show trace_dir trace_all shards shard_ops
      cross_shard_prob check_online fail_fast =
    let mode = parse_mode mode in
    let spares = if rolling && spares = 0 then Harness.Chaos.rolling_knobs.spares else spares in
    let horizon = if rolling && horizon = 8_000. then Harness.Chaos.rolling_knobs.horizon else horizon in
    let max_crashes =
      if rolling then min max_crashes Harness.Chaos.rolling_knobs.max_crashes else max_crashes
    in
    let knobs =
      {
        Harness.Chaos.default_knobs with
        nodes;
        clients;
        horizon;
        max_crashes;
        spares;
        reconfigs;
        shards;
        shard_ops;
        cross_shard_prob;
      }
    in
    let generate = if rolling then Harness.Chaos.generate_rolling else Harness.Chaos.generate in
    if show then begin
      for s = seed to seed + runs - 1 do
        Printf.printf "seed %d: %s\n" s
          (Harness.Chaos.render_schedule (generate knobs ~seed:s))
      done;
      exit 0
    end;
    let checker_failed = ref false in
    let results =
      if not check_online then
        Harness.Chaos.run_many ~config:(Core.Config.default mode) ~batch_commit ~rolling
          knobs ~seed ~runs
      else
        (* Same seeds, same verdicts (tracing never perturbs a run), but
           with the streaming checker riding the tracer sink.  The ring can
           stay tiny: the sink sees every event before eviction. *)
        List.init runs (fun i ->
            let s = seed + i in
            let tracer = Obs.Tracer.create ~capacity:(1 lsl 12) () in
            let ck = Obs.Online.create ~fail_fast () in
            Obs.Online.attach ck tracer;
            match
              Harness.Chaos.run_one ~config:(Core.Config.default mode) ~tracer
                ~batch_commit ~rolling knobs ~seed:s
            with
            | r ->
              (match Obs.Online.finish ck with
              | [] -> ()
              | violations ->
                checker_failed := true;
                List.iter
                  (fun v ->
                    Printf.eprintf "online checker (seed %d): %s\n" s
                      (Obs.Online.pp_violation v))
                  violations);
              r
            | exception Obs.Online.Violation v ->
              (* fail-fast: the checker aborted the run from inside the
                 emission path; dump the schedule for replay and stop. *)
              Printf.eprintf "online checker (seed %d, fail-fast): %s\n" s
                (Obs.Online.pp_violation v);
              Option.iter
                (fun path ->
                  let oc = open_out path in
                  Printf.fprintf oc "# seed %d (online checker fail-fast)\n%s\n" s
                    (Harness.Chaos.render_schedule (generate knobs ~seed:s));
                  close_out oc)
                failures_to;
              exit 1)
    in
    let failed = Harness.Chaos.failures results in
    if json then print_endline (Harness.Chaos.results_to_json results)
    else begin
      List.iter
        (fun r ->
          if verbose || not (Harness.Chaos.passed r) then
            Format.printf "%a@." Harness.Chaos.pp_result r)
        results;
      print_endline (Harness.Chaos.summary results)
    end;
    Option.iter
      (fun path ->
        if failed <> [] then begin
          let oc = open_out path in
          List.iter
            (fun (r : Harness.Chaos.result) ->
              Printf.fprintf oc "# seed %d\n%s\n" r.Harness.Chaos.seed
                (Harness.Chaos.render_schedule r.Harness.Chaos.events))
            failed;
          close_out oc
        end)
      failures_to;
    let checker_inconclusive = ref false in
    Option.iter
      (fun dir ->
        let to_dump = if trace_all then results else failed in
        if to_dump <> [] then begin
          (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
          List.iter
            (fun (r : Harness.Chaos.result) ->
              let seed = r.Harness.Chaos.seed in
              let tracer = Obs.Tracer.create () in
              let replay =
                Harness.Chaos.run_one ~config:(Core.Config.default mode) ~tracer
                  ~batch_commit ~rolling knobs ~seed
              in
              warn_dropped tracer;
              let violations = Harness.Chaos.check_trace knobs tracer in
              let dropped = Obs.Tracer.dropped tracer in
              (* A truncated trace makes the offline verdict unreliable in
                 both directions — report inconclusive (exit 3), never a
                 silent pass or a spurious fail. *)
              if dropped > 0 then checker_inconclusive := true
              else if violations <> [] then checker_failed := true;
              let verdict =
                match (violations, dropped) with
                | [], 0 -> "checker: ok (0 violations)"
                | vs, 0 ->
                  String.concat "\n" (List.map Obs.Checker.pp_violation vs)
                  ^ Printf.sprintf "\nchecker: %d violation(s)" (List.length vs)
                | vs, d ->
                  String.concat "\n" (List.map Obs.Checker.pp_violation vs)
                  ^ Printf.sprintf
                      "\nchecker: INCONCLUSIVE — ring dropped %d events (%d \
                       violation(s) over the truncated trace are unreliable)"
                      d (List.length vs)
              in
              let prefix = Filename.concat dir (Printf.sprintf "seed-%d" seed) in
              write_file (prefix ^ ".trace.json") (Obs.Export.chrome_json tracer);
              write_file (prefix ^ ".txt")
                (Format.asprintf "%a@.%s@." Harness.Chaos.pp_result replay verdict);
              Printf.eprintf "traced seed %d -> %s.{trace.json,txt} (%d events, %d violations%s)\n"
                seed prefix (Obs.Tracer.length tracer) (List.length violations)
                (if dropped > 0 then ", INCONCLUSIVE" else ""))
            to_dump
        end)
      trace_dir;
    if failed <> [] || !checker_failed then exit 1;
    if !checker_inconclusive then exit 3
  in
  let info =
    Cmd.info "chaos"
      ~doc:"Run seeded random fault schedules and check safety + liveness oracles"
  in
  Cmd.v info
    Term.(
      const run $ runs_arg $ seed_arg $ nodes_arg $ clients_arg $ horizon_arg
      $ crashes_arg $ spares_arg $ reconfigs_arg $ rolling_arg $ mode_arg
      $ batch_commit_arg $ json_arg $ failures_arg $ verbose_arg $ show_arg
      $ trace_dir_arg $ trace_all_arg $ shards_arg $ shard_ops_arg
      $ cross_shard_prob_arg $ check_online_arg $ fail_fast_arg)

let all_cmd =
  let run scale jobs =
    set_jobs jobs;
    let scale = scale_of_string scale in
    List.iter print_series (Harness.Figures.everything ~scale ())
  in
  let info = Cmd.info "all" ~doc:"Regenerate every figure and table" in
  Cmd.v info Term.(const run $ scale_arg $ jobs_arg)

let main =
  let info =
    Cmd.info "qr-dtm"
      ~doc:"Quorum-based replicated DTM with closed nesting and checkpointing"
  in
  Cmd.group info
    [ figure_cmd; table_cmd; summary_cmd; run_cmd; scenario_cmd; trace_cmd; chaos_cmd; all_cmd ]

let () = exit (Cmd.eval main)
