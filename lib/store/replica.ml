(* A write lock is a *lease*: it names the owning transaction and carries an
   expiry instant (simulated ms).  [infinity] means "never expires" — the
   pre-lease behaviour, still used by callers that do not run the
   termination protocol (baselines, unit tests). *)
type lease = {
  owner : int;
  mutable expires : float;
  mutable round : int;
  (* The lease this one displaced through an in-batch / decided-owner
     handover (batch commit, PROTOCOL.md §9).  A displaced lease may be the
     only protection for a committed-but-not-yet-applied predecessor write:
     if the successor is released before its own Apply lands (speculation
     abort, requeue), dropping the lease outright would let a reader of the
     stale copy validate cleanly and commit a duplicate version.  [unlock]
     therefore restores [prev] instead of clearing, except on the Apply
     path where the installed write makes predecessor protection moot. *)
  mutable prev : lease option;
}

type copy = {
  mutable version : int;
  mutable value : Value.t;
  mutable protected_by : lease option;
}

(* PR/PW lists are bounded: entries are removed on commit/abort
   notifications, but a lost notification (failed node) must not leak, so we
   cap each list and evict the oldest entry. *)
let pr_pw_cap = 64

(* Recently-applied transaction ids, kept so a status query ("did txn T
   decide commit?") can be answered from local evidence.  Bounded: an entry
   is only needed while some replica may still hold T's lease, i.e. for one
   lease horizon. *)
let applied_cap = 4096

type lists = { mutable readers : int list; mutable writers : int list }

type t = {
  objects : (int, copy) Hashtbl.t;
  lists : (int, lists) Hashtbl.t;
  by_txn : (int, int list ref) Hashtbl.t;  (* txn -> oids it holds leases on *)
  applied : (int, unit) Hashtbl.t;
  applied_order : int Queue.t;
  (* Full write rows of recently-applied transactions, including rows for
     objects this replica does not host.  A cross-shard transaction's Apply
     carries the whole write set to every participant shard: keeping the
     foreign rows lets a status query from another shard's lease holder be
     answered with the very write it must adopt to rescue the commit.
     Evicted in lockstep with [applied] (same FIFO, same horizon). *)
  retained : (int, (int * int * Value.t) list) Hashtbl.t;
  (* Cross-shard termination peers, from Commit_req.peers: the other
     participant shards' quorum members a status round for this txn must
     also ask.  Transient like the leases it serves (cleared on crash wipe);
     entries are added only alongside a granted lease and removed when the
     owner's last lease here goes. *)
  xpeers : (int, int list) Hashtbl.t;
  (* Tracing: the store layer has no engine handle, so the cluster injects
     the tracer plus a clock closure and the hosting node id after
     construction (see [instrument]).  All three stay inert defaults when
     tracing is off. *)
  mutable tracer : Obs.Tracer.t;
  mutable trace_node : int;
  mutable clock : unit -> float;
  (* Fired when [unlock] restores a displaced lease (see [lease.prev]): the
     restored lease may have outlived its original termination watcher, so
     the server re-arms one.  Inert default for callers without the
     termination protocol. *)
  mutable on_restore : oid:int -> owner:int -> expires:float -> unit;
}

let create () =
  {
    objects = Hashtbl.create 256;
    lists = Hashtbl.create 256;
    by_txn = Hashtbl.create 16;
    applied = Hashtbl.create 64;
    applied_order = Queue.create ();
    retained = Hashtbl.create 64;
    xpeers = Hashtbl.create 16;
    tracer = Obs.Tracer.null;
    trace_node = -1;
    clock = (fun () -> 0.);
    on_restore = (fun ~oid:_ ~owner:_ ~expires:_ -> ());
  }

let instrument t ~tracer ~node ~clock =
  t.tracer <- tracer;
  t.trace_node <- node;
  t.clock <- clock

let set_on_restore t f = t.on_restore <- f

let trace_lease t ~ekind ~oid ~txn ?(a = -1) ?(x = 0.) () =
  if Obs.Tracer.enabled t.tracer then
    Obs.Tracer.emit t.tracer ~time:(t.clock ()) ~kind:ekind ~node:t.trace_node
      ~txn ~oid ~a ~x ()

let ensure t ~oid ~init =
  if not (Hashtbl.mem t.objects oid) then
    Hashtbl.replace t.objects oid { version = 0; value = init; protected_by = None }

let install t ~oid ~init =
  Hashtbl.replace t.objects oid { version = 0; value = init; protected_by = None }

let mem t oid = Hashtbl.mem t.objects oid
let find t oid = Hashtbl.find_opt t.objects oid

let get t oid =
  match find t oid with
  | Some copy -> copy
  | None -> invalid_arg (Printf.sprintf "Store.get: unknown object %d" oid)

let version t oid = (get t oid).version

let is_protected t ~oid ~against =
  match (get t oid).protected_by with
  | None -> false
  | Some lease -> lease.owner <> against

let lease_of t oid = (get t oid).protected_by

(* --- lease index -------------------------------------------------------- *)

let index_add t ~oid ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | Some oids -> if not (List.mem oid !oids) then oids := oid :: !oids
  | None -> Hashtbl.replace t.by_txn txn (ref [ oid ])

let index_remove t ~oid ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some oids ->
    oids := List.filter (fun o -> o <> oid) !oids;
    if !oids = [] then Hashtbl.remove t.by_txn txn

let leased_oids t ~txn =
  match Hashtbl.find_opt t.by_txn txn with Some oids -> !oids | None -> []

let try_lock ?(expires = Float.infinity) ?(round = 0) t ~oid ~txn =
  let copy = get t oid in
  match copy.protected_by with
  | None ->
    copy.protected_by <- Some { owner = txn; expires; round; prev = None };
    index_add t ~oid ~txn;
    trace_lease t ~ekind:Obs.Sem.lease_grant ~oid ~txn ~x:expires ();
    true
  | Some lease ->
    if lease.owner = txn then begin
      (* Idempotent re-grant by the owner also renews the lease.  A
         reordered re-grant from an abandoned earlier round must not roll
         the round back, so keep the highest seen. *)
      lease.expires <- Float.max lease.expires expires;
      lease.round <- Stdlib.max lease.round round;
      trace_lease t ~ekind:Obs.Sem.lease_renew ~oid ~txn ~x:lease.expires ();
      true
    end
    else false

(* Transfer the lease on [oid] from [prev_owner] (an in-batch chain
   predecessor or a decided owner whose Apply is in flight) to [txn],
   keeping the displaced lease in [prev] so a later [unlock] of the
   successor restores it.  Falls back to a plain [try_lock] when the lease
   moved under us. *)
let handover ?(expires = Float.infinity) ?(round = 0) t ~oid ~prev_owner ~txn =
  let copy = get t oid in
  match copy.protected_by with
  | Some lease when lease.owner = prev_owner ->
    copy.protected_by <- Some { owner = txn; expires; round; prev = Some lease };
    index_remove t ~oid ~txn:prev_owner;
    index_add t ~oid ~txn;
    trace_lease t ~ekind:Obs.Sem.lease_release ~oid ~txn:prev_owner ~a:3 ();
    trace_lease t ~ekind:Obs.Sem.lease_grant ~oid ~txn ~x:expires ();
    true
  | Some _ | None -> try_lock ~expires ~round t ~oid ~txn

let unlock ?round ?(restore = true) t ~oid ~txn =
  let copy = get t oid in
  match copy.protected_by with
  | Some lease when lease.owner = txn ->
    let stale =
      (* A Release retransmitted from an abandoned commit round can arrive
         after a later round of the same transaction re-acquired the lock;
         freeing it would let a conflicting writer in mid-2PC. *)
      match round with Some r -> r < lease.round | None -> false
    in
    if not stale then begin
      index_remove t ~oid ~txn;
      trace_lease t ~ekind:Obs.Sem.lease_release ~oid ~txn ~a:0 ();
      match (if restore then lease.prev else None) with
      | Some p ->
        copy.protected_by <- Some p;
        index_add t ~oid ~txn:p.owner;
        trace_lease t ~ekind:Obs.Sem.lease_grant ~oid ~txn:p.owner ~x:p.expires ();
        t.on_restore ~oid ~owner:p.owner ~expires:p.expires
      | None -> copy.protected_by <- None
    end
  | Some _ | None -> ()

(* Heartbeat renewal: any traffic from [txn] pushes the expiry of every
   lease it holds here out to [expires] (never shortens). *)
let renew t ~txn ~expires =
  List.iter
    (fun oid ->
      match (get t oid).protected_by with
      | Some lease when lease.owner = txn ->
        lease.expires <- Float.max lease.expires expires;
        trace_lease t ~ekind:Obs.Sem.lease_renew ~oid ~txn ~x:lease.expires ()
      | Some _ | None -> ())
    (leased_oids t ~txn)

let held_leases t =
  Hashtbl.fold
    (fun oid copy acc ->
      match copy.protected_by with
      | Some lease -> (oid, lease.owner, lease.expires) :: acc
      | None -> acc)
    t.objects []

(* --- applied-transaction evidence --------------------------------------- *)

let note_applied t ~txn =
  if not (Hashtbl.mem t.applied txn) then begin
    Hashtbl.replace t.applied txn ();
    Queue.push txn t.applied_order;
    if Queue.length t.applied_order > applied_cap then begin
      let evicted = Queue.pop t.applied_order in
      Hashtbl.remove t.applied evicted;
      Hashtbl.remove t.retained evicted
    end
  end

let was_applied t ~txn = Hashtbl.mem t.applied txn

let retain_writes t ~txn rows =
  if rows <> [] && not (Hashtbl.mem t.retained txn) then
    Hashtbl.replace t.retained txn rows

let retained_writes t ~txn =
  match Hashtbl.find_opt t.retained txn with Some rows -> rows | None -> []

let set_status_peers t ~txn peers =
  if peers <> [] then Hashtbl.replace t.xpeers txn peers

let status_peers_of t ~txn =
  match Hashtbl.find_opt t.xpeers txn with Some peers -> peers | None -> []

let clear_status_peers t ~txn = Hashtbl.remove t.xpeers txn

let apply t ~oid ~version ~value ~txn =
  let copy = get t oid in
  if version > copy.version then begin
    copy.version <- version;
    copy.value <- value
  end;
  note_applied t ~txn;
  (* The installed write supersedes any protection [txn] was providing, so
     drop [txn] from displaced-lease chains (see [lease.prev]) instead of
     letting a later restore resurrect a moot lease, and clear rather than
     restore when [txn] holds the lease itself. *)
  (match copy.protected_by with
  | Some lease ->
    let rec scrub l =
      match l.prev with
      | Some p when p.owner = txn ->
        l.prev <- p.prev;
        scrub l
      | Some p -> scrub p
      | None -> ()
    in
    scrub lease
  | None -> ());
  unlock ~restore:false t ~oid ~txn

let lists_of t oid =
  match Hashtbl.find_opt t.lists oid with
  | Some l -> l
  | None ->
    let l = { readers = []; writers = [] } in
    Hashtbl.replace t.lists oid l;
    l

let bounded_add txn entries =
  if List.mem txn entries then entries
  else begin
    let entries = txn :: entries in
    if List.length entries > pr_pw_cap then
      List.filteri (fun i _ -> i < pr_pw_cap) entries
    else entries
  end

let add_reader t ~oid ~txn =
  let l = lists_of t oid in
  l.readers <- bounded_add txn l.readers

let add_writer t ~oid ~txn =
  let l = lists_of t oid in
  l.writers <- bounded_add txn l.writers

let remove_txn t ~oid ~txn =
  match Hashtbl.find_opt t.lists oid with
  | None -> ()
  | Some l ->
    l.readers <- List.filter (fun id -> id <> txn) l.readers;
    l.writers <- List.filter (fun id -> id <> txn) l.writers

let readers t oid = match Hashtbl.find_opt t.lists oid with None -> [] | Some l -> l.readers
let writers t oid = match Hashtbl.find_opt t.lists oid with None -> [] | Some l -> l.writers
let object_count t = Hashtbl.length t.objects

(* --- crash-recovery state transfer ------------------------------------- *)

(* Committed state only: locks and PR/PW lists are transient and are not
   shipped to a recovering peer. *)
let dump t =
  Hashtbl.fold (fun oid copy acc -> (oid, copy.version, copy.value) :: acc) t.objects []

(* Merge one copy received from a sync quorum: adopt it if strictly newer
   (a newer version also invalidates any stale local lease), install it if
   the object is unknown locally. *)
let sync_copy t ~oid ~version ~value =
  match Hashtbl.find_opt t.objects oid with
  | None -> Hashtbl.replace t.objects oid { version; value; protected_by = None }
  | Some copy ->
    if version > copy.version then begin
      begin
        match copy.protected_by with
        | Some lease ->
          index_remove t ~oid ~txn:lease.owner;
          trace_lease t ~ekind:Obs.Sem.lease_release ~oid ~txn:lease.owner ~a:1 ()
        | None -> ()
      end;
      copy.version <- version;
      copy.value <- value;
      copy.protected_by <- None
    end

(* A crashed process loses its volatile state: leases it granted, PR/PW
   registrations and apply evidence die with it.  Called when the node
   rejoins. *)
let reset_transients t =
  Hashtbl.iter
    (fun oid copy ->
      (match copy.protected_by with
      | Some lease ->
        trace_lease t ~ekind:Obs.Sem.lease_release ~oid ~txn:lease.owner ~a:2 ()
      | None -> ());
      copy.protected_by <- None)
    t.objects;
  Hashtbl.reset t.lists;
  Hashtbl.reset t.by_txn;
  Hashtbl.reset t.applied;
  Hashtbl.reset t.retained;
  Hashtbl.reset t.xpeers;
  Queue.clear t.applied_order
