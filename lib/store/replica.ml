type copy = {
  mutable version : int;
  mutable value : Value.t;
  mutable protected_by : int option;
}

(* PR/PW lists are bounded: entries are removed on commit/abort
   notifications, but a lost notification (failed node) must not leak, so we
   cap each list and evict the oldest entry. *)
let pr_pw_cap = 64

type lists = { mutable readers : int list; mutable writers : int list }

type t = {
  objects : (int, copy) Hashtbl.t;
  lists : (int, lists) Hashtbl.t;
}

let create () = { objects = Hashtbl.create 256; lists = Hashtbl.create 256 }

let ensure t ~oid ~init =
  if not (Hashtbl.mem t.objects oid) then
    Hashtbl.replace t.objects oid { version = 0; value = init; protected_by = None }

let install t ~oid ~init =
  Hashtbl.replace t.objects oid { version = 0; value = init; protected_by = None }

let mem t oid = Hashtbl.mem t.objects oid
let find t oid = Hashtbl.find_opt t.objects oid

let get t oid =
  match find t oid with
  | Some copy -> copy
  | None -> invalid_arg (Printf.sprintf "Store.get: unknown object %d" oid)

let version t oid = (get t oid).version

let is_protected t ~oid ~against =
  match (get t oid).protected_by with
  | None -> false
  | Some owner -> owner <> against

let try_lock t ~oid ~txn =
  let copy = get t oid in
  match copy.protected_by with
  | None ->
    copy.protected_by <- Some txn;
    true
  | Some owner -> owner = txn

let unlock t ~oid ~txn =
  let copy = get t oid in
  match copy.protected_by with
  | Some owner when owner = txn -> copy.protected_by <- None
  | Some _ | None -> ()

let apply t ~oid ~version ~value ~txn =
  let copy = get t oid in
  if version > copy.version then begin
    copy.version <- version;
    copy.value <- value
  end;
  unlock t ~oid ~txn

let lists_of t oid =
  match Hashtbl.find_opt t.lists oid with
  | Some l -> l
  | None ->
    let l = { readers = []; writers = [] } in
    Hashtbl.replace t.lists oid l;
    l

let bounded_add txn entries =
  if List.mem txn entries then entries
  else begin
    let entries = txn :: entries in
    if List.length entries > pr_pw_cap then
      List.filteri (fun i _ -> i < pr_pw_cap) entries
    else entries
  end

let add_reader t ~oid ~txn =
  let l = lists_of t oid in
  l.readers <- bounded_add txn l.readers

let add_writer t ~oid ~txn =
  let l = lists_of t oid in
  l.writers <- bounded_add txn l.writers

let remove_txn t ~oid ~txn =
  match Hashtbl.find_opt t.lists oid with
  | None -> ()
  | Some l ->
    l.readers <- List.filter (fun id -> id <> txn) l.readers;
    l.writers <- List.filter (fun id -> id <> txn) l.writers

let readers t oid = match Hashtbl.find_opt t.lists oid with None -> [] | Some l -> l.readers
let writers t oid = match Hashtbl.find_opt t.lists oid with None -> [] | Some l -> l.writers
let object_count t = Hashtbl.length t.objects

(* --- crash-recovery state transfer ------------------------------------- *)

(* Committed state only: locks and PR/PW lists are transient and are not
   shipped to a recovering peer. *)
let dump t =
  Hashtbl.fold (fun oid copy acc -> (oid, copy.version, copy.value) :: acc) t.objects []

(* Merge one copy received from a sync quorum: adopt it if strictly newer
   (a newer version also invalidates any stale local lock), install it if
   the object is unknown locally. *)
let sync_copy t ~oid ~version ~value =
  match Hashtbl.find_opt t.objects oid with
  | None -> Hashtbl.replace t.objects oid { version; value; protected_by = None }
  | Some copy ->
    if version > copy.version then begin
      copy.version <- version;
      copy.value <- value;
      copy.protected_by <- None
    end

(* A crashed process loses its volatile state: locks it granted and PR/PW
   registrations die with it.  Called when the node rejoins. *)
let reset_transients t =
  Hashtbl.iter (fun _ copy -> copy.protected_by <- None) t.objects;
  Hashtbl.reset t.lists
