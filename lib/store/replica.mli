(** Per-replica versioned object store.

    Every QR node holds a copy of every object (paper §II property 1): a
    value, a monotonically increasing version, a [protected] lock set during
    the vote phase of 2PC, and the potential-readers / potential-writers
    lists (PR/PW) the paper's contention management bookkeeping uses. *)

type lease = {
  owner : int;
  mutable expires : float;
  mutable round : int;
  mutable prev : lease option;
      (** lease displaced by a batch-commit handover; restored on unlock *)
}
(** A write lock with an owner, an expiry instant (simulated ms) and the
    owner's commit-round number that granted (or last re-granted) it;
    [expires = infinity] never expires (callers without the termination
    protocol).  The round lets a replica drop a stale [Release] from an
    abandoned earlier commit round of the same transaction — retransmitted
    at-least-once, it can land after a later round re-acquired the lock.
    [prev] holds the lease a batch-commit handover ({!handover}) displaced:
    it may be the only protection for a committed-but-not-yet-applied
    predecessor write, so {!unlock} restores it rather than clearing —
    except on the Apply path, where the installed write makes it moot. *)

type copy = {
  mutable version : int;
  mutable value : Value.t;
  mutable protected_by : lease option;  (** committing transaction's lease *)
}

type t

val create : unit -> t

val instrument : t -> tracer:Obs.Tracer.t -> node:int -> clock:(unit -> float) -> unit
(** Attach a tracer (with the hosting node id and a simulated-time source)
    so lease transitions emit [lease.grant] / [lease.renew] /
    [lease.release] trace events.  The store layer has no engine handle, so
    the cluster injects these after construction; without instrumentation
    the replica stays silent. *)

val ensure : t -> oid:int -> init:Value.t -> unit
(** Install the object with version 0 if absent; no-op otherwise. *)

val install : t -> oid:int -> init:Value.t -> unit
(** Unconditionally (re)install the object with version 0 and no lock;
    setup-time only — never call once transactions are running. *)

val mem : t -> int -> bool
val find : t -> int -> copy option

val get : t -> int -> copy
(** @raise Invalid_argument if the object was never installed. *)

val version : t -> int -> int
(** Version of the local copy; objects are installed everywhere before any
    transaction runs, so a missing object is a harness bug.
    @raise Invalid_argument on missing object. *)

val is_protected : t -> oid:int -> against:int -> bool
(** Whether [oid] is locked by a transaction other than [against].  Lease
    expiry is *not* consulted: an expired lease still blocks until the
    termination protocol resolves it (presumed abort or rescued commit). *)

val lease_of : t -> int -> lease option
(** The lease currently protecting [oid], if any.
    @raise Invalid_argument on missing object. *)

val try_lock : ?expires:float -> ?round:int -> t -> oid:int -> txn:int -> bool
(** Set the protected lease for the vote phase; idempotent for the same
    transaction (re-granting renews the expiry and keeps the highest round
    seen); [false] if another transaction holds it.  [expires] defaults to
    [infinity], [round] to [0]. *)

val handover :
  ?expires:float -> ?round:int -> t -> oid:int -> prev_owner:int -> txn:int -> bool
(** Transfer the lease on [oid] from [prev_owner] — an in-batch chain
    predecessor, or a decided transaction whose Apply is still in flight —
    to [txn], keeping the displaced lease so {!unlock} can restore it.
    Falls back to {!try_lock} if [prev_owner] no longer holds the lease. *)

val unlock : ?round:int -> ?restore:bool -> t -> oid:int -> txn:int -> unit
(** Clear the protected lease if held by [txn].  With [round], the release
    is ignored when the lease was (re-)granted by a later round than the
    one being released — a stale Release retransmission must not free a
    newer round's lock.  Without [round] the release is unconditional
    (decided-commit cleanup, presumed abort).  If the lease was obtained by
    {!handover}, the displaced lease is restored instead of cleared unless
    [restore] is [false] (Apply-path cleanup). *)

val set_on_restore : t -> (oid:int -> owner:int -> expires:float -> unit) -> unit
(** Hook fired when {!unlock} restores a displaced lease — the restored
    lease may have outlived its original termination watcher, so the server
    re-arms one.  Inert by default. *)

val renew : t -> txn:int -> expires:float -> unit
(** Push the expiry of every lease [txn] holds out to [expires] (never
    shortens) — called on any traffic from the owning coordinator. *)

val leased_oids : t -> txn:int -> int list
(** Objects currently leased by [txn]. *)

val held_leases : t -> (int * int * float) list
(** Every live lease as [(oid, owner txn, expires)] — stall diagnostics. *)

val note_applied : t -> txn:int -> unit
(** Record that [txn]'s 2PC second phase reached this replica (bounded
    memory; automatic from {!apply}). *)

val was_applied : t -> txn:int -> bool
(** Whether this replica observed an Apply from [txn] — the local evidence
    behind a [Status_rep.committed] answer. *)

val retain_writes : t -> txn:int -> (int * int * Value.t) list -> unit
(** Remember [txn]'s full write rows [(oid, version, value)], including rows
    for objects this replica does not host.  A cross-shard Apply carries the
    whole write set to every participant shard; the foreign rows let a
    status query from another shard's lease holder be answered with the
    write it must adopt to rescue the commit.  First writer wins (Apply is
    idempotent); evicted with the {!note_applied} FIFO. *)

val retained_writes : t -> txn:int -> (int * int * Value.t) list
(** The rows saved by {!retain_writes}, or [[]]. *)

val set_status_peers : t -> txn:int -> int list -> unit
(** Remember the cross-shard termination peers a status round for [txn]
    must also query (from [Commit_req.peers]); no-op on [[]].  Transient:
    cleared with the other volatile state on crash wipe. *)

val status_peers_of : t -> txn:int -> int list
val clear_status_peers : t -> txn:int -> unit

val apply : t -> oid:int -> version:int -> value:Value.t -> txn:int -> unit
(** Install a committed write if [version] is newer than the local copy
    (stale applies from lagging quorum members are ignored), releasing the
    lock if [txn] held it, and recording [txn] as applied. *)

val add_reader : t -> oid:int -> txn:int -> unit
val add_writer : t -> oid:int -> txn:int -> unit

val remove_txn : t -> oid:int -> txn:int -> unit
(** Drop [txn] from the PR/PW lists of [oid]. *)

val readers : t -> int -> int list
val writers : t -> int -> int list

val object_count : t -> int

val dump : t -> (int * int * Value.t) list
(** Snapshot of committed state as [(oid, version, value)] triples — the
    payload of a crash-recovery [Sync_rep].  Locks and PR/PW lists are
    transient and not included. *)

val sync_copy : t -> oid:int -> version:int -> value:Value.t -> unit
(** Merge one copy received during catch-up: adopt it if strictly newer
    than the local copy (clearing any stale lock), install it if the object
    is unknown locally, ignore it otherwise. *)

val reset_transients : t -> unit
(** Clear every lock and all PR/PW lists — a crashed process loses its
    volatile state; called when the node rejoins after recovery. *)
