(** Per-replica versioned object store.

    Every QR node holds a copy of every object (paper §II property 1): a
    value, a monotonically increasing version, a [protected] lock set during
    the vote phase of 2PC, and the potential-readers / potential-writers
    lists (PR/PW) the paper's contention management bookkeeping uses. *)

type copy = {
  mutable version : int;
  mutable value : Value.t;
  mutable protected_by : int option;  (** committing transaction id *)
}

type t

val create : unit -> t

val ensure : t -> oid:int -> init:Value.t -> unit
(** Install the object with version 0 if absent; no-op otherwise. *)

val install : t -> oid:int -> init:Value.t -> unit
(** Unconditionally (re)install the object with version 0 and no lock;
    setup-time only — never call once transactions are running. *)

val mem : t -> int -> bool
val find : t -> int -> copy option

val get : t -> int -> copy
(** @raise Invalid_argument if the object was never installed. *)

val version : t -> int -> int
(** Version of the local copy; objects are installed everywhere before any
    transaction runs, so a missing object is a harness bug.
    @raise Invalid_argument on missing object. *)

val is_protected : t -> oid:int -> against:int -> bool
(** Whether [oid] is locked by a transaction other than [against]. *)

val try_lock : t -> oid:int -> txn:int -> bool
(** Set the protected flag for the vote phase; idempotent for the same
    transaction; [false] if another transaction holds it. *)

val unlock : t -> oid:int -> txn:int -> unit
(** Clear the protected flag if held by [txn]. *)

val apply : t -> oid:int -> version:int -> value:Value.t -> txn:int -> unit
(** Install a committed write if [version] is newer than the local copy
    (stale applies from lagging quorum members are ignored), releasing the
    lock if [txn] held it. *)

val add_reader : t -> oid:int -> txn:int -> unit
val add_writer : t -> oid:int -> txn:int -> unit

val remove_txn : t -> oid:int -> txn:int -> unit
(** Drop [txn] from the PR/PW lists of [oid]. *)

val readers : t -> int -> int list
val writers : t -> int -> int list

val object_count : t -> int

val dump : t -> (int * int * Value.t) list
(** Snapshot of committed state as [(oid, version, value)] triples — the
    payload of a crash-recovery [Sync_rep].  Locks and PR/PW lists are
    transient and not included. *)

val sync_copy : t -> oid:int -> version:int -> value:Value.t -> unit
(** Merge one copy received during catch-up: adopt it if strictly newer
    than the local copy (clearing any stale lock), install it if the object
    is unknown locally, ignore it otherwise. *)

val reset_transients : t -> unit
(** Clear every lock and all PR/PW lists — a crashed process loses its
    volatile state; called when the node rejoins after recovery. *)
