(** Online (streaming) protocol-invariant checking with bounded state.

    [Online] hosts the same rule set as the offline {!Checker} — commit-
    quorum, epoch-fencing, cross-shard-atomicity, lease-overlap,
    partial-abort-scope, rescue-evidence, widen-read, batch-order; see
    {!Checker} and OBSERVABILITY.md for the rule semantics — but consumes
    the event stream incrementally, one event per {!feed}/{!feed8} call,
    while the run executes.  Per-transaction rule state retires at
    [txn.end] and [txn.root_abort] (each attempt runs under a fresh txn
    id) and lease entries at [lease.release], so checker memory is
    O(in-flight transactions) plus bounded side tables, not O(trace).

    {!Checker.check} is a thin wrapper over this module (feed the whole
    list, {!finish}), so online and offline verdicts agree by
    construction.

    Subscribe to a live run with {!attach}: the checker becomes the
    tracer's sink and sees {e every} emitted event, including ones the
    ring subsequently evicts — streaming verdicts are immune to ring
    truncation.  Feeding draws no RNG and schedules no simulator events,
    so an attached checker keeps traced runs byte-identical.

    Bounded side tables: commit evidence, cross-shard decisions and batch
    outcomes are consulted only within a bounded horizon of their
    producing transaction (a rescue references a lease-recent txn, a batch
    dependency a queue-recent one), so they live in insertion-order-
    evicting maps of [horizon] entries.  Distinct committed voter sets are
    deduplicated per (shard, epoch) — bounded by the handful of quorums a
    view can produce, not by the number of commits. *)

type violation = {
  rule : string;
  time : float;  (** time of the event that exposed the violation *)
  txn : int;  (** transaction involved, -1 if n/a *)
  detail : string;
}

exception Violation of violation
(** Raised by a [~fail_fast] checker at the first violation, aborting the
    experiment from inside the emission path. *)

type t

val create :
  ?is_write_quorum:(int list -> bool) ->
  ?fail_fast:bool ->
  ?on_violation:(violation -> unit) ->
  ?horizon:int ->
  unit ->
  t
(** [is_write_quorum] enables the structural quorum rule for single-round
    commits (otherwise the pairwise-intersection fallback applies, scoped
    per shard and epoch).  [on_violation] fires at each violation as it is
    detected, with the offending event's simulated time.  [fail_fast]
    additionally raises {!Violation} (after [on_violation]).  [horizon]
    sizes the bounded side tables (default 65536 retained transactions). *)

val feed : t -> Tracer.event -> unit
(** Advance the state machines by one event (record view). *)

val feed8 :
  t ->
  time:float ->
  kind:Kind.t ->
  node:int ->
  txn:int ->
  oid:int ->
  a:int ->
  b:int ->
  x:float ->
  unit
(** Flat-payload feeding — the {!Tracer.sink}-shaped hot path. *)

val attach : t -> Tracer.t -> unit
(** Install the checker as [tracer]'s sink ({!Tracer.set_sink}): every
    subsequent emission is fed to the checker as it happens. *)

val flush : t -> unit
(** End-of-stream: judge any still-open read fan-outs (smallest txn id
    first, matching the offline checker's end-of-trace order).  Call when
    the run has drained; idempotent. *)

val finish : t -> violation list
(** {!flush}, then all violations in stream order. *)

val violations : t -> violation list
(** Violations detected so far, in stream order (without flushing). *)

val n_violations : t -> int

val tracked_txns : t -> int
(** Transactions currently holding rule state — the live-memory gauge;
    returns to (near) zero once a run drains. *)

val peak_tracked : t -> int
(** High-water mark of {!tracked_txns} — bounded by the maximum number of
    in-flight transactions, not by trace length. *)

val events_seen : t -> int

val pp_violation : violation -> string
