(** Ring-buffered structured event log.

    A tracer is either the shared {!null} (disabled — emission is a single
    mutable-field load and branch, no allocation) or an enabled ring buffer
    of fixed capacity holding the most recent events.  Timestamps are
    simulated time, so traces are deterministic per seed: the same seed
    produces a byte-identical event stream, and enabling tracing never
    perturbs the simulation itself (no events scheduled, no RNG draws).

    Event payloads are deliberately flat — one interned kind, a node, a
    transaction id, an object id, two generic integer slots and one float
    slot.  The ring stores them as a structure of arrays (unboxed float
    columns, int columns), so the enabled path of {!emit8} allocates
    nothing at all; the {!event} record below is a read-side view
    materialised only by {!iter}/{!events}.  Per-kind payload meaning is
    documented in {!Sem} and OBSERVABILITY.md. *)

type event = {
  time : float;  (** simulated ms *)
  ekind : Kind.t;  (** event kind, see {!Sem} *)
  node : int;  (** emitting node, -1 if n/a *)
  txn : int;  (** transaction id, -1 if n/a *)
  oid : int;  (** object id, -1 if n/a *)
  a : int;  (** kind-specific, -1 if n/a *)
  b : int;  (** kind-specific, -1 if n/a *)
  x : float;  (** kind-specific, 0. if n/a *)
}

type t

val null : t
(** The shared disabled tracer: {!enabled} is [false], emission is a no-op,
    {!events} is empty.  Every instrumented component defaults to it. *)

val create : ?capacity:int -> unit -> t
(** An enabled tracer retaining the last [capacity] events (default 2^20).
    Older events are dropped oldest-first; {!dropped} counts them. *)

val enabled : t -> bool
(** Guard for call sites that would otherwise compute payloads eagerly. *)

val emit :
  t ->
  time:float ->
  kind:Kind.t ->
  ?node:int ->
  ?txn:int ->
  ?oid:int ->
  ?a:int ->
  ?b:int ->
  ?x:float ->
  unit ->
  unit
(** Append one event (no-op on a disabled tracer).  Optional-argument
    convenience wrapper over {!emit8}; prefer {!emit8} on hot paths — each
    labelled optional argument boxes an option at the call site. *)

val emit8 :
  t ->
  time:float ->
  kind:Kind.t ->
  node:int ->
  txn:int ->
  oid:int ->
  a:int ->
  b:int ->
  x:float ->
  unit
(** Allocation-free emission: every slot explicit ([-1] / [0.] for n/a).
    The hot-path form — a disabled tracer costs one load and branch, an
    enabled one eight array stores. *)

type sink =
  time:float ->
  kind:int ->
  node:int ->
  txn:int ->
  oid:int ->
  a:int ->
  b:int ->
  x:float ->
  unit
(** A streaming consumer of the event firehose, called from inside
    {!emit8} with the same flat payload.  Sinks see {e every} emitted
    event — including ones the ring subsequently evicts — so a streaming
    consumer (the online protocol checker, {!Online}) is immune to ring
    truncation.  A sink must uphold the determinism contract itself:
    schedule no simulator events, draw no RNG. *)

val set_sink : t -> sink -> unit
(** Install the tracer's sink (one at a time; replaces any previous).
    Raises [Invalid_argument] on the shared disabled {!null} tracer, whose
    emission path is a no-op. *)

val clear_sink : t -> unit
(** Remove the sink, restoring the ring-only emission path. *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events evicted by ring overflow — when nonzero, offline analyses (the
    trace checker in particular) may see a truncated history. *)

val events : t -> event list
(** Retained events, oldest first. *)

val iter : t -> (event -> unit) -> unit
(** Iterate retained events oldest first without materialising a list. *)

val clear : t -> unit
(** Drop all retained events and zero {!dropped}; keeps the capacity. *)
