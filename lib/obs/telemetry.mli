(** Windowed time-series telemetry.

    A telemetry sink records periodic samples of running counter totals
    (commits, aborts, in-flight transactions, lease expirations, per-kind
    message counts) taken on simulated-time ticks; the sampling loop is
    driven from outside (the harness advances the engine window-by-window
    and calls {!record}) so enabling telemetry schedules no simulator events
    and preserves run determinism.

    Exports derive per-window rates from consecutive raw totals.  The first
    sample seeds the deltas and yields no row.  Counter totals can step
    backwards across a harness counter reset (end of warm-up); such windows
    are flagged ([reset] column = 1) and excluded from every derived rate
    (NaN, rendered "n/a" downstream) — a reset artifact can never be
    mistaken for a real rate.  Gauge columns (in_flight) are unaffected. *)

type t

val create : window:float -> t
(** [window] is the intended sampling period in simulated ms — used by the
    driving loop as its tick and by exports to convert deltas to rates. *)

val window : t -> float

val record :
  t ->
  time:float ->
  commits:int ->
  aborts:int ->
  in_flight:int ->
  lease_expirations:int ->
  ?speculation_aborts:int ->
  ?batches:int ->
  ?cross_shard_commits:int ->
  ?cross_shard_aborts:int ->
  by_kind:(string * int) list ->
  unit ->
  unit
(** [speculation_aborts] and [batches] (both running totals, default 0)
    feed the batch-commit columns; sequential-mode harnesses may omit
    them.  [cross_shard_commits] / [cross_shard_aborts] (running totals,
    default 0) feed the cross-shard columns, which appear in exports only
    once some sample carries a nonzero value — unsharded exports are
    unchanged. *)

val samples : t -> int
(** Number of raw samples recorded so far. *)

val columns : t -> string list
(** Export header: time_ms, reset (1 when the window spans a counter
    reset and its rate cells are NaN), commits_per_s, aborts_per_s,
    in_flight, lease_expirations, speculation_aborts, batches_per_s, the
    two cross-shard columns when any sample recorded cross-shard traffic,
    then one [msg_<kind>_per_s] column per message kind ever seen (sorted
    by name). *)

val rows : t -> (float * float list) list
(** One row per sample after the first: (sample time, values in {!columns}
    order minus the time column). *)

val to_csv : t -> string
val to_json : t -> string
