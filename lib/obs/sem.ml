(* The event-kind catalogue: every instrumentation point in the stack emits
   one of these tokens.  Payload-slot conventions (what [a]/[b]/[x] mean per
   kind) are documented inline and, for users, in OBSERVABILITY.md.

   Interned at module initialisation so token values are fixed before any
   tracer exists; the trace checker and exporters match on these tokens. *)

(* -- Transaction lifecycle (emitted by Core.Executor; [node] = coordinator,
      [txn] = root transaction id of the current attempt). -- *)

let txn_begin = Kind.intern "txn.begin" (* a = attempt number (1-based) *)
let txn_read = Kind.intern "txn.read" (* oid; a = version; b = 1 if remote *)
let txn_write = Kind.intern "txn.write" (* oid *)
let txn_checkpoint = Kind.intern "txn.checkpoint" (* a = checkpoint id *)
let scope_push = Kind.intern "scope.push" (* a = new nesting depth *)
let scope_pop = Kind.intern "scope.pop" (* a = depth of the popped scope *)
let scope_resume = Kind.intern "scope.resume" (* a = depth/chk restored to *)
let txn_partial_abort = Kind.intern "txn.partial_abort" (* a = target *)
let txn_root_abort = Kind.intern "txn.root_abort" (* a = attempt *)
let txn_commit = Kind.intern "txn.commit" (* b = 1 if read-only; x = latency *)
let txn_end = Kind.intern "txn.end" (* a = 1 committed / 0 aborted *)
let read_send = Kind.intern "read.send" (* oid; a = dst replica; b = oid's shard *)
let widen_add = Kind.intern "widen.add" (* a = witness node; b = its home shard *)
let widen_drop = Kind.intern "widen.drop" (* a = dead witness pruned *)
let commit_send = Kind.intern "commit.send" (* a = #locks; b = quorum size *)
let vote_recv = Kind.intern "vote.recv" (* a = voter; b = bit0 commit, bit1 lock-conflict *)
let deadline_abort = Kind.intern "deadline.abort" (* x = lease deadline *)

(* -- Batch-commit mode (emitted by Core.Executor; PROTOCOL.md §9). -- *)

let spec_read = Kind.intern "spec.read"
(* oid served from a queued write image; a = writer txn, b = 1 if the
   writer is still undecided (a speculative dependency) / 0 committed *)

let batch_entry = Kind.intern "batch.entry"
(* txn cut into a batch; a = batch id, b = queue position *)

let batch_send = Kind.intern "batch.send"
(* node = coordinator the round is sent from; a = batch occupancy,
   b = quorum size; txn = first entry *)

let batch_decide = Kind.intern "batch.decide"
(* per-entry outcome of a batch round, emitted in queue order;
   a = batch id, b = 1 commit / 0 abort *)

let spec_abort = Kind.intern "spec.abort"
(* speculation failed: a predecessor this txn read from did not commit;
   a = the failed predecessor's txn id *)

(* -- Server / replica side (emitted by Core.Server and Store.Replica;
      [node] = the replica). -- *)

let rqv_ok = Kind.intern "rqv.ok" (* oid; read validated against rset *)
let rqv_fail = Kind.intern "rqv.fail" (* oid; a = abort target *)
let vote = Kind.intern "vote" (* a = 1 commit; b = 1 lock conflict *)
let apply = Kind.intern "apply" (* a = #writes installed *)
let release = Kind.intern "release" (* locks released for txn *)
let lease_grant = Kind.intern "lease.grant" (* oid; txn = owner; x = expiry *)
let lease_renew = Kind.intern "lease.renew" (* oid; x = new expiry *)
let lease_release = Kind.intern "lease.release"
(* oid; a = 0 unlock / 1 stale-sync / 2 crash-wipe *)

let lease_expire = Kind.intern "lease.expire" (* oid; x = expiry it blew *)
let status_round = Kind.intern "status.round" (* a = attempt; b = #peers *)
let presumed_abort = Kind.intern "presumed.abort" (* oid of the guarded lease *)
let rescue = Kind.intern "rescue"
(* txn rescued to commit; a = #oids; b = evidence kind: 0 = a peer reported
   the txn applied, 1 = the leased copy's version advanced (possibly another
   transaction's commit across membership views) *)
let sync_start = Kind.intern "sync.start" (* node state-transferring in *)
let sync_done = Kind.intern "sync.done" (* a = #sync replies merged *)

(* -- Membership / reconfiguration (emitted by Core.Cluster; [node] = the
      subject of the operation, or -1 for cluster-wide events). -- *)

let view_wedge = Kind.intern "view.wedge"
(* reconfiguration started; a = op (0 join / 1 leave / 2 replace), b = the
   joining node (or -1) *)

let view_change = Kind.intern "view.change"
(* new view installed; a = new epoch, b = member count *)

let view_done = Kind.intern "view.done" (* reconfiguration complete; a = epoch *)
let epoch_fence = Kind.intern "epoch.fence"
(* stale-epoch message rejected at [node]; a = src, b = message epoch,
   x = the receiver's epoch *)

(* -- Cross-shard 2PC (emitted by Core.Executor; [node] = coordinator). -- *)

let xshard_prepare = Kind.intern "xshard.prepare"
(* one per participant shard's prepare round, ascending shard order;
   a = the shard being prepared, b = total participant count *)

let xshard_decide = Kind.intern "xshard.decide"
(* the coordinator's cross-shard decision, once per transaction;
   a = 1 commit / 0 abort, b = participant count *)

(* -- Network / RPC (emitted by Sim.Network and Sim.Rpc; [b] = the interned
      message kind, resolvable with [Kind.name]). -- *)

let net_send = Kind.intern "net.send" (* node = src; a = dst *)
let net_deliver = Kind.intern "net.deliver" (* node = dst; a = src *)
let net_drop = Kind.intern "net.drop" (* node = src; a = dst *)
let net_dup = Kind.intern "net.dup" (* node = src; a = dst *)
let rpc_timeout = Kind.intern "rpc.timeout" (* node = caller; a = #missing *)
let rpc_giveup = Kind.intern "rpc.giveup" (* node = src; a = dst *)

let is_net k =
  k = net_send || k = net_deliver || k = net_drop || k = net_dup
  || k = rpc_timeout || k = rpc_giveup
