type sample = {
  s_time : float;
  s_commits : int;
  s_aborts : int;
  s_in_flight : int;
  s_lease_exp : int;
  s_spec_aborts : int;
  s_batches : int;
  s_xshard_commits : int;
  s_xshard_aborts : int;
  s_by_kind : (string * int) list;
}

type t = { win : float; mutable samples : sample list (* newest first *) }

let create ~window =
  if window <= 0. then invalid_arg "Telemetry.create: window must be positive";
  { win = window; samples = [] }

let window t = t.win

let record t ~time ~commits ~aborts ~in_flight ~lease_expirations
    ?(speculation_aborts = 0) ?(batches = 0) ?(cross_shard_commits = 0)
    ?(cross_shard_aborts = 0) ~by_kind () =
  t.samples <-
    {
      s_time = time;
      s_commits = commits;
      s_aborts = aborts;
      s_in_flight = in_flight;
      s_lease_exp = lease_expirations;
      s_spec_aborts = speculation_aborts;
      s_batches = batches;
      s_xshard_commits = cross_shard_commits;
      s_xshard_aborts = cross_shard_aborts;
      s_by_kind = by_kind;
    }
    :: t.samples

let samples t = List.length t.samples

let kinds t =
  List.sort_uniq String.compare
    (List.concat_map (fun s -> List.map fst s.s_by_kind) t.samples)

(* Cross-shard columns appear only once a sharded run records nonzero
   cross-shard traffic, keeping unsharded exports unchanged. *)
let has_cross_shard t =
  List.exists (fun s -> s.s_xshard_commits > 0 || s.s_xshard_aborts > 0) t.samples

let columns t =
  [
    "time_ms"; "reset"; "commits_per_s"; "aborts_per_s"; "in_flight";
    "lease_expirations"; "speculation_aborts"; "batches_per_s";
  ]
  @ (if has_cross_shard t then
       [ "cross_shard_commits_per_s"; "cross_shard_aborts_per_s" ]
     else [])
  @ List.map (fun k -> Printf.sprintf "msg_%s_per_s" k) (kinds t)

let rows t =
  let ks = kinds t in
  let xs = has_cross_shard t in
  let ordered = List.rev t.samples in
  match ordered with
  | [] | [ _ ] -> []
  | first :: rest ->
    let count kind s =
      match List.assoc_opt kind s.s_by_kind with Some n -> n | None -> 0
    in
    let rec walk prev = function
      | [] -> []
      | s :: tl ->
        (* A window across which any monotone counter stepped backwards
           spans a counter reset (the end-of-warm-up zeroing): its deltas
           mix pre- and post-reset totals and mean nothing.  Flag the row
           ([reset] = 1) and publish NaN for every derived rate — rendered
           "n/a" downstream — so reset artifacts can never be mistaken for
           real rates.  Gauges (in_flight) are unaffected. *)
        let reset =
          s.s_commits < prev.s_commits
          || s.s_aborts < prev.s_aborts
          || s.s_lease_exp < prev.s_lease_exp
          || s.s_spec_aborts < prev.s_spec_aborts
          || s.s_batches < prev.s_batches
          || s.s_xshard_commits < prev.s_xshard_commits
          || s.s_xshard_aborts < prev.s_xshard_aborts
          || List.exists (fun k -> count k s < count k prev) ks
        in
        let rate prev cur =
          if reset then Float.nan
          else float_of_int (cur - prev) /. t.win *. 1000.
        in
        let delta prev cur = if reset then Float.nan else float_of_int (cur - prev) in
        let row =
          [
            (if reset then 1. else 0.);
            rate prev.s_commits s.s_commits;
            rate prev.s_aborts s.s_aborts;
            float_of_int s.s_in_flight;
            delta prev.s_lease_exp s.s_lease_exp;
            delta prev.s_spec_aborts s.s_spec_aborts;
            rate prev.s_batches s.s_batches;
          ]
          @ (if xs then
               [
                 rate prev.s_xshard_commits s.s_xshard_commits;
                 rate prev.s_xshard_aborts s.s_xshard_aborts;
               ]
             else [])
          @ List.map (fun k -> rate (count k prev) (count k s)) ks
        in
        (s.s_time, row) :: walk s tl
    in
    walk first rest

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (columns t));
  Buffer.add_char buf '\n';
  List.iter
    (fun (time, row) ->
      Buffer.add_string buf (Printf.sprintf "%.3f" time);
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.4f" v)) row;
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"window_ms\":";
  Buffer.add_string buf (Printf.sprintf "%.3f" t.win);
  Buffer.add_string buf ",\"columns\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S" c))
    (columns t);
  Buffer.add_string buf "],\"rows\":[";
  List.iteri
    (fun i (time, row) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%.3f" time);
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.4f" v)) row;
      Buffer.add_char buf ']')
    (rows t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
