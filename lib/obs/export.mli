(** Trace exporters.

    {!chrome_json} renders a trace in Chrome's [trace_event] JSON format
    (load via chrome://tracing or https://ui.perfetto.dev): one thread lane
    per node, every event as an instant marker, and each transaction's
    begin→end as an async span so overlapping transactions stack visually.
    Timestamps convert simulated milliseconds to the format's microseconds.

    {!txn_history} renders the causal history of one transaction id as
    compact text — the [qr-dtm trace --txn] view. *)

val chrome_json : Tracer.t -> string
val chrome_json_of_events : Tracer.event list -> string

val txn_history : Tracer.t -> txn:int -> string
(** All events whose [txn] field matches, oldest first, one line each.
    Empty string when the transaction never appears in the trace. *)

val pp_event : Buffer.t -> Tracer.event -> unit
(** One-line rendering used by {!txn_history} — exposed for checker
    diagnostics. *)
