type t = int

(* The registry is global (not per-tracer) so kinds interned at module
   initialisation time — e.g. [Messages]' request kinds and [Sem]'s event
   catalogue — are valid for every tracer and every network instance.  The
   mutex makes interning safe from harness worker domains; lookups after
   interning are plain array reads. *)
let mutex = Mutex.create ()
let by_name : (string, int) Hashtbl.t = Hashtbl.create 64
let names : string array ref = ref (Array.make 64 "")
let count = ref 0

let intern name_ =
  Mutex.lock mutex;
  let token =
    match Hashtbl.find_opt by_name name_ with
    | Some token -> token
    | None ->
      let token = !count in
      if token >= Array.length !names then begin
        let grown = Array.make (2 * Array.length !names) "" in
        Array.blit !names 0 grown 0 token;
        names := grown
      end;
      !names.(token) <- name_;
      Hashtbl.add by_name name_ token;
      incr count;
      token
  in
  Mutex.unlock mutex;
  token

(* Cold paths (rendering, array sizing): lock so a concurrent intern's
   array swap cannot be observed half-published from another domain. *)
let name token =
  Mutex.lock mutex;
  let n = if token >= 0 && token < !count then !names.(token) else "?" in
  Mutex.unlock mutex;
  n

let registered () =
  Mutex.lock mutex;
  let n = !count in
  Mutex.unlock mutex;
  n
