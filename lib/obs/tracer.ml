type event = {
  time : float;
  ekind : Kind.t;
  node : int;
  txn : int;
  oid : int;
  a : int;
  b : int;
  x : float;
}

type t = {
  enabled : bool;
  buf : event array;
  mutable start : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
}

let dummy =
  { time = 0.; ekind = 0; node = -1; txn = -1; oid = -1; a = -1; b = -1; x = 0. }

let null = { enabled = false; buf = [||]; start = 0; len = 0; dropped = 0 }

let create ?(capacity = 1 lsl 20) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { enabled = true; buf = Array.make capacity dummy; start = 0; len = 0; dropped = 0 }

let enabled t = t.enabled

let emit t ~time ~kind ?(node = -1) ?(txn = -1) ?(oid = -1) ?(a = -1) ?(b = -1)
    ?(x = 0.) () =
  if t.enabled then begin
    let cap = Array.length t.buf in
    let slot = (t.start + t.len) mod cap in
    t.buf.(slot) <- { time; ekind = kind; node; txn; oid; a; b; x };
    if t.len < cap then t.len <- t.len + 1
    else begin
      (* Full: the slot we just wrote was the oldest; advance the window. *)
      t.start <- (t.start + 1) mod cap;
      t.dropped <- t.dropped + 1
    end
  end

let length t = t.len
let dropped t = t.dropped

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod cap)
  done

let events t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
