(* The ring is a structure of arrays, not an array of event records: the
   enabled-path [emit8] writes eight fixed-width slots (two unboxed float
   arrays, six int arrays) and allocates nothing — no event record, no
   boxed floats, no option wrappers.  The record-based [event] view is
   materialised only by the cold read side ([iter]/[events]). *)

type event = {
  time : float;
  ekind : Kind.t;
  node : int;
  txn : int;
  oid : int;
  a : int;
  b : int;
  x : float;
}

type sink =
  time:float ->
  kind:int ->
  node:int ->
  txn:int ->
  oid:int ->
  a:int ->
  b:int ->
  x:float ->
  unit

let no_sink ~time:_ ~kind:_ ~node:_ ~txn:_ ~oid:_ ~a:_ ~b:_ ~x:_ = ()

type t = {
  enabled : bool;
  times : float array;
  xs : float array;
  kinds : int array;
  nodes : int array;
  txns : int array;
  oids : int array;
  slot_a : int array;
  slot_b : int array;
  mutable start : int; (* index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
  mutable has_sink : bool; (* guard so the common no-sink path skips a call *)
  mutable sink : sink;
}

let null =
  {
    enabled = false;
    times = [||];
    xs = [||];
    kinds = [||];
    nodes = [||];
    txns = [||];
    oids = [||];
    slot_a = [||];
    slot_b = [||];
    start = 0;
    len = 0;
    dropped = 0;
    has_sink = false;
    sink = no_sink;
  }

let create ?(capacity = 1 lsl 20) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    enabled = true;
    times = Array.make capacity 0.;
    xs = Array.make capacity 0.;
    kinds = Array.make capacity 0;
    nodes = Array.make capacity (-1);
    txns = Array.make capacity (-1);
    oids = Array.make capacity (-1);
    slot_a = Array.make capacity (-1);
    slot_b = Array.make capacity (-1);
    start = 0;
    len = 0;
    dropped = 0;
    has_sink = false;
    sink = no_sink;
  }

let set_sink t f =
  if not t.enabled then invalid_arg "Tracer.set_sink: disabled tracer";
  t.sink <- f;
  t.has_sink <- true

let clear_sink t =
  t.sink <- no_sink;
  t.has_sink <- false

let enabled t = t.enabled

(* All-arguments-required emission: no option boxing at the call site, no
   allocation in the body.  Hot instrumentation points (network delivery,
   the executor's per-step traces) call this directly with explicit [-1] /
   [0.] placeholders; [emit] below keeps the ergonomic optional-argument
   form for cold sites. *)
let emit8 t ~time ~kind ~node ~txn ~oid ~a ~b ~x =
  if t.enabled then begin
    let cap = Array.length t.kinds in
    let slot =
      let s = t.start + t.len in
      if s >= cap then s - cap else s
    in
    t.times.(slot) <- time;
    t.xs.(slot) <- x;
    t.kinds.(slot) <- kind;
    t.nodes.(slot) <- node;
    t.txns.(slot) <- txn;
    t.oids.(slot) <- oid;
    t.slot_a.(slot) <- a;
    t.slot_b.(slot) <- b;
    if t.len < cap then t.len <- t.len + 1
    else begin
      (* Full: the slot we just wrote was the oldest; advance the window. *)
      let s = t.start + 1 in
      t.start <- (if s >= cap then 0 else s);
      t.dropped <- t.dropped + 1
    end;
    (* The sink sees every event, including ones the ring will evict —
       streaming consumers are immune to ring truncation. *)
    if t.has_sink then t.sink ~time ~kind ~node ~txn ~oid ~a ~b ~x
  end

let emit t ~time ~kind ?(node = -1) ?(txn = -1) ?(oid = -1) ?(a = -1) ?(b = -1)
    ?(x = 0.) () =
  emit8 t ~time ~kind ~node ~txn ~oid ~a ~b ~x

let length t = t.len
let dropped t = t.dropped

let iter t f =
  let cap = Array.length t.kinds in
  for i = 0 to t.len - 1 do
    let slot =
      let s = t.start + i in
      if s >= cap then s - cap else s
    in
    f
      {
        time = t.times.(slot);
        ekind = t.kinds.(slot);
        node = t.nodes.(slot);
        txn = t.txns.(slot);
        oid = t.oids.(slot);
        a = t.slot_a.(slot);
        b = t.slot_b.(slot);
        x = t.xs.(slot);
      }
  done

let events t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
