(* The streaming protocol checker: the offline rules of PR 4, re-hosted as
   per-transaction state machines that consume the event firehose one event
   at a time and retire their state when the transaction ends.  Memory is
   O(in-flight transactions) plus a few bounded side tables, not O(trace) —
   so the checker can ride a {!Tracer} sink through arbitrarily long runs
   while the ring evicts freely behind it.

   The offline [Checker.check] is a thin wrapper over this module (feed the
   whole event list, finish), so online and offline verdicts agree by
   construction; the equivalence tests in test/test_online.ml pin the two
   feeding paths (sink-during-run vs ring-replay) against each other.

   Determinism: feeding draws no RNG and schedules no simulator events, so
   attaching a checker to a traced run keeps the run byte-identical. *)

type violation = { rule : string; time : float; txn : int; detail : string }

let pp_violation v =
  Printf.sprintf "[%s] t=%.3f txn=%d: %s" v.rule v.time v.txn v.detail

exception Violation of violation

(* Voter flag bits, mirroring the executor's [vote.recv] encoding. *)
let commit_bit = 1

let intersects a b = List.exists (fun x -> List.mem x b) a

(* Bounded insertion-order-evicting map: the side tables that outlive a
   transaction (commit evidence, cross-shard decisions, batch outcomes)
   are consulted only within a bounded horizon — a rescue references a
   lease-recent transaction, a batch dependency a queue-recent one — so a
   generous FIFO keeps verdicts exact in practice while pinning memory. *)
type ('k, 'v) bmap = { cap : int; order : 'k Queue.t; tbl : ('k, 'v) Hashtbl.t }

let bmap cap = { cap; order = Queue.create (); tbl = Hashtbl.create 64 }
let bmem m k = Hashtbl.mem m.tbl k
let bfind m k = Hashtbl.find_opt m.tbl k

let bput m k v =
  if not (Hashtbl.mem m.tbl k) then begin
    Queue.push k m.order;
    if Queue.length m.order > m.cap then
      Hashtbl.remove m.tbl (Queue.pop m.order)
  end;
  Hashtbl.replace m.tbl k v

(* Everything the checker tracks about one in-flight transaction; the
   whole record is dropped at [txn.end]. *)
type txn_state = {
  (* commit-quorum: one round per shard — (shard, send epoch, votes as
     (voter, flags, arrival epoch)), most recent round first. *)
  mutable rounds : (int * int * (int * int * int) list ref) list;
  mutable xparts : int list; (* participant shards prepared *)
  mutable batch_entry : (int * int) option; (* (batch id, queue position) *)
  mutable spec_deps : int list; (* undecided predecessors read from *)
  mutable wits : (int * int) list; (* flagged (witness, home shard) *)
  mutable group : (float * int * int list ref * int list) option;
      (* open read fan-out: (time, oid, dsts, flagged-at-open) *)
  mutable unwind : int option; (* pending partial-abort target *)
}

let fresh_txn_state () =
  {
    rounds = [];
    xparts = [];
    batch_entry = None;
    spec_deps = [];
    wits = [];
    group = None;
    unwind = None;
  }

(* Distinct committed voter sets per (shard, epoch) — the pairwise-
   intersection fallback needs every *distinct* quorum that committed in a
   view, not every commit, so identical voter sets collapse to one
   representative (first committing txn) with no loss of verdicts. *)
type quorum_log = { mutable count : int; mutable sets : (int list * int) list }

type t = {
  is_write_quorum : (int list -> bool) option;
  fail_fast : bool;
  on_violation : (violation -> unit) option;
  mutable violations : violation list; (* newest first *)
  mutable n_violations : int;
  mutable events_seen : int;
  (* current view epoch per shard (view.change; x names the shard). *)
  shard_epochs : (int, int) Hashtbl.t;
  txns : (int, txn_state) Hashtbl.t;
  mutable peak_tracked : int;
  (* lease-overlap: (replica, oid) -> owning txn; retired on release. *)
  leases : (int * int, int) Hashtbl.t;
  (* (shard, epoch) -> distinct committed voter sets, newest first. *)
  committed : (int * int, quorum_log) Hashtbl.t;
  quorums_cap : int; (* distinct sets retained per (shard, epoch) *)
  evidence : (int, unit) bmap; (* txns with commit evidence *)
  xcommitted : (int, unit) bmap; (* cross-shard commits decided *)
  batch_outcome : (int, bool) bmap; (* txn -> committed in its batch? *)
  last_decided : (int, int * int) bmap; (* batch -> (position, txn) *)
  (* tombstones: txns already retired at [txn.end].  Stragglers — late
     quorum votes, duplicated messages — would otherwise resurrect a state
     record that nothing ever retires again; a tombstoned txn gets a
     throwaway state instead. *)
  ended : (int, unit) bmap;
}

let create ?is_write_quorum ?(fail_fast = false) ?on_violation
    ?(horizon = 1 lsl 16) () =
  if horizon <= 0 then invalid_arg "Online.create: horizon must be positive";
  {
    is_write_quorum;
    fail_fast;
    on_violation;
    violations = [];
    n_violations = 0;
    events_seen = 0;
    shard_epochs = Hashtbl.create 8;
    txns = Hashtbl.create 64;
    peak_tracked = 0;
    leases = Hashtbl.create 64;
    committed = Hashtbl.create 8;
    quorums_cap = 4096;
    evidence = bmap horizon;
    xcommitted = bmap horizon;
    batch_outcome = bmap horizon;
    last_decided = bmap (max 1 (horizon / 16));
    ended = bmap horizon;
  }

let report t rule time txn detail =
  let v = { rule; time; txn; detail } in
  t.violations <- v :: t.violations;
  t.n_violations <- t.n_violations + 1;
  (match t.on_violation with None -> () | Some f -> f v);
  if t.fail_fast then raise (Violation v)

let cur_epoch_of t shard =
  Option.value ~default:0 (Hashtbl.find_opt t.shard_epochs shard)

let state_of t txn =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> st
  | None ->
    let st = fresh_txn_state () in
    (* A straggler for an ended txn (a late vote after the commit decided)
       gets a throwaway record: re-inserting would leak state that no
       [txn.end] will ever retire again. *)
    if not (bmem t.ended txn) then begin
      Hashtbl.replace t.txns txn st;
      let n = Hashtbl.length t.txns in
      if n > t.peak_tracked then t.peak_tracked <- n
    end;
    st

let close_group t txn =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some st -> (
    match st.group with
    | None -> ()
    | Some (time, oid, dsts, flagged) ->
      st.group <- None;
      let missing = List.filter (fun w -> not (List.mem w !dsts)) flagged in
      if missing <> [] then
        report t "widen-read" time txn
          (Printf.sprintf
             "read of oid %d fanned out to [%s] but misses flagged witness(es) [%s]"
             oid
             (String.concat ";" (List.map string_of_int !dsts))
             (String.concat ";" (List.map string_of_int missing))))

let check_commit t st ~time ~txn =
  let txn_rounds = List.rev st.rounds (* prepare order: ascending shard *) in
  List.iter
    (fun (shard, send_epoch, votes) ->
      let round = List.rev !votes in
      let voters =
        List.sort Int.compare (List.map (fun (v, _, _) -> v) round)
      in
      let dissent =
        List.filter (fun (_, f, _) -> f land commit_bit = 0) round
      in
      if dissent <> [] then
        report t "commit-quorum" time txn
          (Printf.sprintf "committed despite %d non-commit vote(s) from [%s]"
             (List.length dissent)
             (String.concat ";"
                (List.map (fun (v, _, _) -> string_of_int v) dissent)));
      (* epoch-fencing: all the evidence behind a commit must come from one
         membership view per shard — the view that shard's round was sent
         under, still in force when the commit is decided. *)
      let stale = List.filter (fun (_, _, ep) -> ep <> send_epoch) round in
      if stale <> [] then
        report t "epoch-fencing" time txn
          (Printf.sprintf
             "commit uses evidence from two incompatible views: round sent \
              in epoch %d but vote(s) from [%s] arrived in other epochs"
             send_epoch
             (String.concat ";"
                (List.map (fun (v, _, _) -> string_of_int v) stale)))
      else if send_epoch <> cur_epoch_of t shard then
        report t "epoch-fencing" time txn
          (Printf.sprintf
             "commit decided in epoch %d over a round sent in epoch %d"
             (cur_epoch_of t shard) send_epoch);
      (match t.is_write_quorum with
      | Some valid when List.length txn_rounds <= 1 ->
        if not (valid voters) then
          report t "commit-quorum" time txn
            (Printf.sprintf "voter set [%s] is not a valid write quorum"
               (String.concat ";" (List.map string_of_int voters)))
      | Some _ | None ->
        (* Pairwise fallback, scoped to the same shard and view:
           intersection is only guaranteed there. *)
        let log =
          match Hashtbl.find_opt t.committed (shard, send_epoch) with
          | Some log -> log
          | None ->
            let log = { count = 0; sets = [] } in
            Hashtbl.replace t.committed (shard, send_epoch) log;
            log
        in
        List.iter
          (fun (other_set, other_txn) ->
            if not (intersects voters other_set) then
              report t "commit-quorum" time txn
                (Printf.sprintf
                   "voter set [%s] does not intersect txn %d's write quorum"
                   (String.concat ";" (List.map string_of_int voters))
                   other_txn))
          log.sets;
        if not (List.exists (fun (s, _) -> s = voters) log.sets) then begin
          log.sets <- (voters, txn) :: log.sets;
          log.count <- log.count + 1;
          if log.count > t.quorums_cap then begin
            (* Drop the oldest distinct quorum of this view; a view sees
               at most a handful of distinct quorums in practice. *)
            log.sets <- List.filteri (fun i _ -> i < t.quorums_cap) log.sets;
            log.count <- t.quorums_cap
          end
        end))
    txn_rounds

let feed8 t ~time ~kind:k ~node ~txn ~oid ~a ~b ~x =
  t.events_seen <- t.events_seen + 1;
  (* A transaction event other than read.send ends any open fan-out. *)
  if txn >= 0 && k <> Sem.read_send then close_group t txn;

  if k = Sem.view_change then
    Hashtbl.replace t.shard_epochs (int_of_float x) a
  else if k = Sem.commit_send then begin
    let shard = int_of_float x in
    let st = state_of t txn in
    (* A fresh commit.send for a shard supersedes that shard's previous
       round (retries); rounds for other shards accumulate (cross-shard
       2PC prepares each participant shard in turn). *)
    st.rounds <-
      (shard, cur_epoch_of t shard, ref [])
      :: List.filter (fun (s, _, _) -> s <> shard) st.rounds
  end
  else if k = Sem.vote_recv then begin
    let st = state_of t txn in
    match st.rounds with
    | (shard, _, votes) :: _ -> votes := (a, b, cur_epoch_of t shard) :: !votes
    | [] -> st.rounds <- [ (0, 0, ref [ (a, b, cur_epoch_of t 0) ]) ]
  end
  else if k = Sem.txn_commit && b <> 1 then begin
    (match Hashtbl.find_opt t.txns txn with
    | Some st -> check_commit t st ~time ~txn
    | None -> check_commit t (fresh_txn_state ()) ~time ~txn);
    bput t.evidence txn ()
  end
  else if k = Sem.txn_commit then bput t.evidence txn ()
  else if k = Sem.xshard_prepare then begin
    let st = state_of t txn in
    if not (List.mem a st.xparts) then st.xparts <- a :: st.xparts
  end
  else if k = Sem.xshard_decide then begin
    if a = 1 then begin
      bput t.xcommitted txn ();
      (* A committed cross-shard transaction must have run a prepare round
         on every participant shard — a decision taken without some
         participant's vote quorum is exactly the atomicity bug 2PC exists
         to prevent. *)
      let prepared =
        match Hashtbl.find_opt t.txns txn with
        | Some st -> List.length st.xparts
        | None -> 0
      in
      if prepared <> b then
        report t "cross-shard-atomicity" time txn
          (Printf.sprintf
             "committed across %d shards but the trace shows prepare rounds \
              on only %d" b prepared)
    end
  end
  else if k = Sem.presumed_abort then begin
    (* Once the coordinator decided commit, no participant replica may walk
       the decision back: the termination protocol must surface rescue
       evidence before the lease is presumed dead. *)
    if bmem t.xcommitted txn then
      report t "cross-shard-atomicity" time txn
        (Printf.sprintf
           "node %d presumed abort after the cross-shard commit was decided \
            — rescue evidence failed to propagate" node)
  end
  else if k = Sem.lease_grant then begin
    let key = (node, oid) in
    (match Hashtbl.find_opt t.leases key with
    | Some owner when owner <> txn ->
      report t "lease-overlap" time txn
        (Printf.sprintf
           "granted write lease on oid %d at node %d while txn %d still holds it"
           oid node owner)
    | _ -> ());
    Hashtbl.replace t.leases key txn
  end
  else if k = Sem.lease_release then begin
    let key = (node, oid) in
    match Hashtbl.find_opt t.leases key with
    | Some owner when owner = txn || txn < 0 -> Hashtbl.remove t.leases key
    | _ -> ()
  end
  else if k = Sem.batch_entry then (state_of t txn).batch_entry <- Some (a, b)
  else if k = Sem.spec_read then begin
    (* b = 1 marks an undecided predecessor: a true speculative
       dependency.  b = 0 images are already-committed state. *)
    if b = 1 then begin
      let st = state_of t txn in
      if not (List.mem a st.spec_deps) then st.spec_deps <- a :: st.spec_deps
    end
  end
  else if k = Sem.batch_decide then begin
    let st = state_of t txn in
    (* (a) within one batch, entries decide in strictly increasing queue
       order — decide order IS version-install order, so a regression
       would apply versions against queue order. *)
    (match st.batch_entry with
    | Some (batch, pos) when batch = a ->
      (match bfind t.last_decided batch with
      | Some (last, other) when pos <= last ->
        report t "batch-order" time txn
          (Printf.sprintf
             "batch %d decided queue position %d after position %d (txn \
              %d): applied versions would not respect queue order"
             batch pos last other)
      | Some _ | None -> ());
      bput t.last_decided batch (pos, txn)
    | Some (batch, _) ->
      report t "batch-order" time txn
        (Printf.sprintf "decided in batch %d but last cut into batch %d" a
           batch)
    | None ->
      report t "batch-order" time txn
        (Printf.sprintf "decided in batch %d without a batch.entry" a));
    bput t.batch_outcome txn (b = 1);
    (* (b) a speculative txn never commits in a round its predecessor
       aborted in (or before the predecessor is decided at all). *)
    if b = 1 then
      List.iter
        (fun w ->
          match bfind t.batch_outcome w with
          | Some true -> ()
          | Some false ->
            report t "batch-order" time txn
              (Printf.sprintf
                 "speculative txn committed though predecessor %d it read \
                  from aborted" w)
          | None ->
            report t "batch-order" time txn
              (Printf.sprintf
                 "speculative txn committed before predecessor %d it read \
                  from was decided" w))
        st.spec_deps
  end
  else if k = Sem.txn_partial_abort then begin
    let st = state_of t txn in
    (* A partial abort may roll speculative reads back with the scope; the
       surviving dependency set is not reconstructible from the trace, so
       drop the txn's deps (conservative: misses violations, never
       fabricates one — re-executed reads re-record theirs). *)
    st.spec_deps <- [];
    (match st.unwind with
    | Some target ->
      report t "partial-abort-scope" time txn
        (Printf.sprintf "partial abort to %d while unwind to %d never resumed"
           a target)
    | None -> ());
    st.unwind <- Some a
  end
  else if k = Sem.scope_resume then begin
    let st = state_of t txn in
    match st.unwind with
    | Some target ->
      st.unwind <- None;
      if a <> target then
        report t "partial-abort-scope" time txn
          (Printf.sprintf "partial abort targeted %d but resumed at %d" target
             a)
    | None ->
      report t "partial-abort-scope" time txn
        (Printf.sprintf "scope resume at %d without a pending partial abort" a)
  end
  else if k = Sem.txn_root_abort then begin
    (* Root abort is the legal fallback when the unwind target is gone,
       and the end of this attempt's txn id: retries re-run under a fresh
       id ([start_attempt] draws one per attempt), so the whole state
       machine retires here just as at [txn.end] — most chaos-run ids die
       this way and would otherwise accumulate for the rest of the run. *)
    Hashtbl.remove t.txns txn;
    bput t.ended txn ()
  end
  else if k = Sem.txn_end then begin
    (* The transaction is over: retire its whole state machine.  This is
       the bound that keeps checker memory O(in-flight transactions). *)
    Hashtbl.remove t.txns txn;
    bput t.ended txn ()
  end
  else if k = Sem.apply then bput t.evidence txn ()
  else if k = Sem.rescue then begin
    (* b = 1 marks version-advance evidence: the leased copy moved past the
       protected version, which a *different* transaction's commit can
       cause across membership views — no per-txn apply is implied. *)
    if b <> 1 && not (bmem t.evidence txn) then
      report t "rescue-evidence" time txn
        "rescued to commit without prior commit evidence (no apply or \
         coordinator commit in trace)"
  end
  else if k = Sem.widen_add then begin
    let st = state_of t txn in
    if not (List.mem_assoc a st.wits) then st.wits <- (a, b) :: st.wits
  end
  else if k = Sem.widen_drop then begin
    match Hashtbl.find_opt t.txns txn with
    | Some st -> st.wits <- List.filter (fun (w, _) -> w <> a) st.wits
    | None -> ()
  end
  else if k = Sem.read_send then begin
    let st = state_of t txn in
    match st.group with
    | Some (time', oid', dsts, _) when time' = time && oid' = oid ->
      dsts := a :: !dsts
    | _ ->
      close_group t txn;
      (* Witnesses oblige only reads of their own shard (`widen.add`'s [b]
         slot records the witness's shard, `read.send`'s the read's; [-1]
         — traces from before sharding — matches every read). *)
      let flagged =
        List.filter_map
          (fun (w, ws) -> if ws = -1 || b = -1 || ws = b then Some w else None)
          st.wits
      in
      st.group <- Some (time, oid, ref [ a ], flagged)
  end

let feed t (e : Tracer.event) =
  feed8 t ~time:e.time ~kind:e.ekind ~node:e.node ~txn:e.txn ~oid:e.oid ~a:e.a
    ~b:e.b ~x:e.x

let attach t tracer =
  Tracer.set_sink tracer (fun ~time ~kind ~node ~txn ~oid ~a ~b ~x ->
      feed8 t ~time ~kind ~node ~txn ~oid ~a ~b ~x)

let flush t =
  (* End of stream: any still-open read fan-out is judged as-is, smallest
     txn id first (matching the offline checker's end-of-trace order). *)
  Hashtbl.fold
    (fun txn st acc -> if st.group <> None then txn :: acc else acc)
    t.txns []
  |> List.sort Int.compare
  |> List.iter (close_group t)

let violations t = List.rev t.violations
let n_violations t = t.n_violations

let finish t =
  flush t;
  violations t

let tracked_txns t = Hashtbl.length t.txns
let peak_tracked t = t.peak_tracked
let events_seen t = t.events_seen
