(** Offline protocol-invariant checking over a completed trace.

    The checker replays the event stream (oldest first, as {!Tracer.events}
    yields it) through per-rule state machines and reports every violation
    it can localise.  Rules:

    - [commit-quorum]: every replicated commit ([txn.commit] without the
      read-only flag) must be decided by rounds in which {e every} received
      vote said commit, and each round's voter set must form a valid write
      quorum — via [is_write_quorum] when supplied (single-round commits
      only), otherwise by checking pairwise intersection against every
      other committed voter set {e of the same shard and membership epoch}
      in the trace (quorum intersection does not hold across
      reconfigurations or shards).  A cross-shard commit contributes one
      round per participant shard ([commit.send] events whose [x] slot
      names the shard).
    - [epoch-fencing]: no commit may rest on evidence from two incompatible
      views — every vote must arrive in the epoch of its round's shard as
      of [commit.send] (epochs are tracked per shard from [view.change]
      events, whose [x] slot names the shard), and that epoch must still
      be in force when the commit is decided.  Traces with no
      [view.change] events are vacuously clean.
    - [cross-shard-atomicity]: a committed cross-shard transaction
      ([xshard.decide] with [a = 1]) must show an [xshard.prepare] round
      for every participant shard, and once the decision is commit no
      replica may subsequently presume abort for that transaction
      ([presumed.abort]) — the termination protocol must surface rescue
      evidence first.  Unsharded traces are vacuously clean.
    - [lease-overlap]: no [lease.grant] for an (object, replica) pair while
      a different transaction's lease is still held there.
    - [partial-abort-scope]: each [txn.partial_abort] targeting scope/
      checkpoint [t] must resume at exactly [t] ([scope.resume] with
      [a = t]), unless the attempt falls back to a root abort first.
    - [rescue-evidence]: a [rescue] whose status round saw a peer report
      the transaction applied (payload [b = 0]) must be preceded in the
      trace by commit evidence for that transaction — an [apply] at some
      replica or the coordinator's own [txn.commit].  Version-advance
      rescues ([b = 1]) are exempt: another transaction's commit can move a
      leased copy across membership views.
    - [widen-read]: once a stale witness is flagged ([widen.add]), every
      subsequent read fan-out by that transaction must include all
      currently-flagged witnesses (until they are pruned by [widen.drop]).
    - [batch-order]: within one batch round ([batch.decide] events sharing
      a batch id), entries decide in strictly increasing queue position —
      decide order is version-install order, so a regression would apply
      versions against queue order.  And a speculative transaction (one
      with a [spec.read] of an undecided predecessor's image, [b = 1])
      never commits in a round its predecessor aborted in, nor before the
      predecessor is decided at all.  Traces from sequential-commit runs
      have no batch events and are vacuously clean.

    Traces with ring-buffer overflow ({!Tracer.dropped} > 0) have lost
    prefix events and can produce false positives — callers must treat the
    verdict as {e inconclusive} (the CLI exits with a distinct code), or
    check online via {!Online.attach}, which sees every event before
    eviction.

    [check] is a thin wrapper over the streaming engine in {!Online} (feed
    the whole list, finish), so online and offline verdicts agree by
    construction. *)

type violation = Online.violation = {
  rule : string;
  time : float;  (** time of the event that exposed the violation *)
  txn : int;  (** transaction involved, -1 if n/a *)
  detail : string;
}

val check :
  ?is_write_quorum:(int list -> bool) -> Tracer.event list -> violation list
(** Violations in trace order.  [is_write_quorum] receives the sorted voter
    node list of a committed transaction. *)

val pp_violation : violation -> string
