let add_field buf comma name value =
  if !comma then Buffer.add_char buf ',';
  comma := true;
  Buffer.add_string buf (Printf.sprintf "%S:%s" name value)

(* Instant marker on the emitting node's lane.  Payload slots go to [args]
   so they show in the tracing UI's detail pane; message-kind tokens are
   resolved to names for readability. *)
let add_instant buf (e : Tracer.event) =
  Buffer.add_char buf '{';
  let comma = ref false in
  let f = add_field buf comma in
  f "name" (Printf.sprintf "%S" (Kind.name e.ekind));
  f "ph" "\"i\"";
  f "s" "\"t\"";
  f "ts" (Printf.sprintf "%.3f" (e.time *. 1000.));
  f "pid" "0";
  f "tid" (string_of_int (if e.node >= 0 then e.node else 9999));
  Buffer.add_string buf ",\"args\":{";
  let comma = ref false in
  let g = add_field buf comma in
  if e.txn >= 0 then g "txn" (string_of_int e.txn);
  if e.oid >= 0 then g "oid" (string_of_int e.oid);
  if e.a >= 0 then g "a" (string_of_int e.a);
  if e.b >= 0 then
    if Sem.is_net e.ekind then g "kind" (Printf.sprintf "%S" (Kind.name e.b))
    else g "b" (string_of_int e.b);
  if e.x <> 0. then g "x" (Printf.sprintf "%.6g" e.x);
  Buffer.add_string buf "}}"

(* Async span so a transaction's lifetime renders as a bar; Chrome matches
   begin/end on (cat, id, name). *)
let add_span buf (e : Tracer.event) ~phase =
  Buffer.add_char buf '{';
  let comma = ref false in
  let f = add_field buf comma in
  f "name" "\"txn\"";
  f "cat" "\"txn\"";
  f "ph" (Printf.sprintf "%S" phase);
  f "id" (string_of_int e.txn);
  f "ts" (Printf.sprintf "%.3f" (e.time *. 1000.));
  f "pid" "0";
  f "tid" (string_of_int (if e.node >= 0 then e.node else 9999));
  Buffer.add_char buf '}'

let chrome_json_of_events events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n'
  in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun (e : Tracer.event) ->
      if e.node >= 0 then Hashtbl.replace nodes e.node ())
    events;
  Hashtbl.fold (fun node () acc -> node :: acc) nodes []
  |> List.sort Int.compare
  |> List.iter (fun node ->
         sep ();
         Buffer.add_string buf
           (Printf.sprintf
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
               \"args\":{\"name\":\"node %d\"}}"
              node node));
  List.iter
    (fun (e : Tracer.event) ->
      if e.ekind = Sem.txn_begin then begin
        sep ();
        add_span buf e ~phase:"b"
      end
      else if e.ekind = Sem.txn_end then begin
        sep ();
        add_span buf e ~phase:"e"
      end;
      sep ();
      add_instant buf e)
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let chrome_json tracer = chrome_json_of_events (Tracer.events tracer)

let pp_event buf (e : Tracer.event) =
  Buffer.add_string buf (Printf.sprintf "%10.3f  " e.time);
  if e.node >= 0 then Buffer.add_string buf (Printf.sprintf "n%02d  " e.node)
  else Buffer.add_string buf "---  ";
  Buffer.add_string buf (Printf.sprintf "%-18s" (Kind.name e.ekind));
  if e.txn >= 0 then Buffer.add_string buf (Printf.sprintf " txn=%d" e.txn);
  if e.oid >= 0 then Buffer.add_string buf (Printf.sprintf " oid=%d" e.oid);
  if e.a >= 0 then Buffer.add_string buf (Printf.sprintf " a=%d" e.a);
  if e.b >= 0 then
    if Sem.is_net e.ekind then
      Buffer.add_string buf (Printf.sprintf " kind=%s" (Kind.name e.b))
    else Buffer.add_string buf (Printf.sprintf " b=%d" e.b);
  if e.x <> 0. then Buffer.add_string buf (Printf.sprintf " x=%.6g" e.x)

let txn_history tracer ~txn =
  let buf = Buffer.create 1024 in
  Tracer.iter tracer (fun e ->
      if e.txn = txn then begin
        pp_event buf e;
        Buffer.add_char buf '\n'
      end);
  Buffer.contents buf
