(** Globally interned event/message kind labels.

    One process-wide registry maps human-readable names to dense integer
    tokens, so hot paths (tracer emission, per-kind message counting) index
    arrays instead of hashing strings.  [Sim.Network.Kind] re-exports this
    module, which means network message kinds and tracer event kinds live in
    the same id space — a trace event can carry a message-kind token in a
    payload slot and any consumer resolves it with {!name}.

    Interning is mutex-protected (domain-safe: the harness pool interns from
    worker domains); token values depend only on interning order, which is
    fixed by module initialisation order, so they are stable within a build. *)

type t = int
(** Dense token.  Exposed as [int] so instrumentation can stash a kind in an
    integer payload slot without a conversion function. *)

val intern : string -> t
(** Return the token for [name], allocating one on first use.  Idempotent. *)

val name : t -> string
(** Resolve a token back to its name ("?" for an unregistered token). *)

val registered : unit -> int
(** Number of kinds interned so far — an exclusive upper bound on every
    token handed out, suitable for sizing per-kind counter arrays. *)
