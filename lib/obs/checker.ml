type violation = { rule : string; time : float; txn : int; detail : string }

let pp_violation v =
  Printf.sprintf "[%s] t=%.3f txn=%d: %s" v.rule v.time v.txn v.detail

(* Voter flag bits, mirroring the executor's [vote.recv] encoding. *)
let commit_bit = 1

let intersects a b = List.exists (fun x -> List.mem x b) a

let check ?is_write_quorum events =
  let violations = ref [] in
  let report rule time txn detail =
    violations := { rule; time; txn; detail } :: !violations
  in

  (* commit-quorum: one round per (txn, shard) — a fresh commit.send for a
     shard supersedes that shard's previous round (retries), while rounds
     for other shards accumulate (a cross-shard 2PC prepares each
     participant shard in turn).  Votes land in the most recently opened
     round and are tagged with the arrival-time epoch of that round's
     shard.  Committed voter sets remember their (shard, epoch) too:
     quorum intersection only holds within one shard's membership view,
     so the pairwise fallback must not compare commits across a
     reconfiguration or across shards. *)
  let committed_sets : (int * int list * int * int) list ref = ref [] in

  (* epoch-fencing: the current view epoch per shard (from view.change
     events, whose [x] slot names the shard — 0 in unsharded traces). *)
  let shard_epochs : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let cur_epoch_of shard =
    Option.value ~default:0 (Hashtbl.find_opt shard_epochs shard)
  in
  let rounds
      : (int, (int * int * (int * int * int) list ref) list ref) Hashtbl.t =
    (* txn -> (shard, send epoch, votes) — most recent round first *)
    Hashtbl.create 64
  in

  (* cross-shard-atomicity: participant shards prepared per txn, the
     coordinator's decision, and whether any replica later walked the
     decision back by presuming abort. *)
  let xshard_parts : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let xshard_committed : (int, unit) Hashtbl.t = Hashtbl.create 16 in

  (* lease-overlap: (replica, oid) -> owning txn. *)
  let leases : (int * int, int) Hashtbl.t = Hashtbl.create 64 in

  (* partial-abort-scope: txn -> pending unwind target. *)
  let pending_unwind : (int, int) Hashtbl.t = Hashtbl.create 16 in

  (* rescue-evidence: txns with commit evidence seen so far. *)
  let evidence : (int, unit) Hashtbl.t = Hashtbl.create 64 in

  (* batch-order: each txn's (batch id, queue position) from batch.entry;
     the last decided position per batch; per-txn batch outcomes; and the
     still-undecided predecessors each speculative reader depends on. *)
  let batch_entry_of : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let last_decided : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let batch_outcome : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let spec_deps_of : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in

  (* widen-read: txn -> flagged (witness, home shard) set; txn -> open read
     fan-out.  Witnesses are obligations only for reads of their own shard:
     a foreign-shard replica does not host the object being read, so the
     executor rightly filters it out of the fan-out (`widen.add`'s [b] slot
     records the witness's shard, `read.send`'s the read's; [-1] — traces
     from before sharding — matches every read). *)
  let witnesses : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let open_group : (int, float * int * int list ref * int list) Hashtbl.t =
    Hashtbl.create 16
  in
  let close_group txn =
    match Hashtbl.find_opt open_group txn with
    | None -> ()
    | Some (time, oid, dsts, flagged) ->
      Hashtbl.remove open_group txn;
      let missing = List.filter (fun w -> not (List.mem w !dsts)) flagged in
      if missing <> [] then
        report "widen-read" time txn
          (Printf.sprintf
             "read of oid %d fanned out to [%s] but misses flagged witness(es) [%s]"
             oid
             (String.concat ";" (List.map string_of_int !dsts))
             (String.concat ";" (List.map string_of_int missing)))
  in

  List.iter
    (fun (e : Tracer.event) ->
      let k = e.ekind in
      (* A transaction event other than read.send ends any open fan-out. *)
      if e.txn >= 0 && k <> Sem.read_send then close_group e.txn;

      if k = Sem.view_change then
        Hashtbl.replace shard_epochs (int_of_float e.x) e.a
      else if k = Sem.commit_send then begin
        let shard = int_of_float e.x in
        let fresh = (shard, cur_epoch_of shard, ref []) in
        match Hashtbl.find_opt rounds e.txn with
        | Some l -> l := fresh :: List.filter (fun (s, _, _) -> s <> shard) !l
        | None -> Hashtbl.replace rounds e.txn (ref [ fresh ])
      end
      else if k = Sem.vote_recv then begin
        match Hashtbl.find_opt rounds e.txn with
        | Some { contents = (shard, _, votes) :: _ } ->
          votes := (e.a, e.b, cur_epoch_of shard) :: !votes
        | Some _ | None ->
          Hashtbl.replace rounds e.txn
            (ref [ (0, 0, ref [ (e.a, e.b, cur_epoch_of 0) ]) ])
      end
      else if k = Sem.txn_commit && e.b <> 1 then begin
        let txn_rounds =
          match Hashtbl.find_opt rounds e.txn with
          | Some l -> List.rev !l (* prepare order: ascending shard *)
          | None -> []
        in
        List.iter
          (fun (shard, send_epoch, votes) ->
            let round = List.rev !votes in
            let voters =
              List.sort Int.compare (List.map (fun (v, _, _) -> v) round)
            in
            let dissent =
              List.filter (fun (_, f, _) -> f land commit_bit = 0) round
            in
            if dissent <> [] then
              report "commit-quorum" e.time e.txn
                (Printf.sprintf "committed despite %d non-commit vote(s) from [%s]"
                   (List.length dissent)
                   (String.concat ";"
                      (List.map (fun (v, _, _) -> string_of_int v) dissent)));
            (* epoch-fencing: all the evidence behind a commit must come
               from one membership view per shard — the view that shard's
               round was sent under, still in force when the commit is
               decided.  Quorums from different views need not intersect,
               so mixed evidence can commit over a conflicting transaction
               without either seeing the other. *)
            let stale = List.filter (fun (_, _, ep) -> ep <> send_epoch) round in
            if stale <> [] then
              report "epoch-fencing" e.time e.txn
                (Printf.sprintf
                   "commit uses evidence from two incompatible views: round sent \
                    in epoch %d but vote(s) from [%s] arrived in other epochs"
                   send_epoch
                   (String.concat ";"
                      (List.map (fun (v, _, _) -> string_of_int v) stale)))
            else if send_epoch <> cur_epoch_of shard then
              report "epoch-fencing" e.time e.txn
                (Printf.sprintf
                   "commit decided in epoch %d over a round sent in epoch %d"
                   (cur_epoch_of shard) send_epoch);
            (match is_write_quorum with
            | Some valid when List.length txn_rounds <= 1 ->
              if not (valid voters) then
                report "commit-quorum" e.time e.txn
                  (Printf.sprintf "voter set [%s] is not a valid write quorum"
                     (String.concat ";" (List.map string_of_int voters)))
            | Some _ | None ->
              (* Pairwise fallback, scoped to the same shard and view:
                 intersection is only guaranteed there. *)
              List.iter
                (fun (other_txn, other_set, other_epoch, other_shard) ->
                  if
                    other_shard = shard && other_epoch = send_epoch
                    && not (intersects voters other_set)
                  then
                    report "commit-quorum" e.time e.txn
                      (Printf.sprintf
                         "voter set [%s] does not intersect txn %d's write quorum"
                         (String.concat ";" (List.map string_of_int voters))
                         other_txn))
                !committed_sets);
            committed_sets :=
              (e.txn, voters, send_epoch, shard) :: !committed_sets)
          txn_rounds;
        Hashtbl.replace evidence e.txn ()
      end
      else if k = Sem.txn_commit then Hashtbl.replace evidence e.txn ()
      else if k = Sem.xshard_prepare then begin
        match Hashtbl.find_opt xshard_parts e.txn with
        | Some l -> if not (List.mem e.a !l) then l := e.a :: !l
        | None -> Hashtbl.replace xshard_parts e.txn (ref [ e.a ])
      end
      else if k = Sem.xshard_decide then begin
        if e.a = 1 then begin
          Hashtbl.replace xshard_committed e.txn ();
          (* A committed cross-shard transaction must have run a prepare
             round on every participant shard — a decision taken without
             some participant's vote quorum is exactly the atomicity bug
             2PC exists to prevent. *)
          let prepared =
            match Hashtbl.find_opt xshard_parts e.txn with
            | Some l -> List.length !l
            | None -> 0
          in
          if prepared <> e.b then
            report "cross-shard-atomicity" e.time e.txn
              (Printf.sprintf
                 "committed across %d shards but the trace shows prepare rounds \
                  on only %d" e.b prepared)
        end
      end
      else if k = Sem.presumed_abort then begin
        (* Once the coordinator decided commit, no participant replica may
           walk the decision back: the termination protocol must surface
           rescue evidence (an Apply, an advanced version, or a retained
           foreign write on a peer) before the lease is presumed dead. *)
        if Hashtbl.mem xshard_committed e.txn then
          report "cross-shard-atomicity" e.time e.txn
            (Printf.sprintf
               "node %d presumed abort after the cross-shard commit was decided \
                — rescue evidence failed to propagate" e.node)
      end
      else if k = Sem.lease_grant then begin
        let key = (e.node, e.oid) in
        (match Hashtbl.find_opt leases key with
        | Some owner when owner <> e.txn ->
          report "lease-overlap" e.time e.txn
            (Printf.sprintf
               "granted write lease on oid %d at node %d while txn %d still holds it"
               e.oid e.node owner)
        | _ -> ());
        Hashtbl.replace leases key e.txn
      end
      else if k = Sem.lease_release then begin
        let key = (e.node, e.oid) in
        match Hashtbl.find_opt leases key with
        | Some owner when owner = e.txn || e.txn < 0 -> Hashtbl.remove leases key
        | _ -> ()
      end
      else if k = Sem.batch_entry then
        Hashtbl.replace batch_entry_of e.txn (e.a, e.b)
      else if k = Sem.spec_read then begin
        (* b = 1 marks an undecided predecessor: a true speculative
           dependency.  b = 0 images are already-committed state. *)
        if e.b = 1 then begin
          match Hashtbl.find_opt spec_deps_of e.txn with
          | Some l -> if not (List.mem e.a !l) then l := e.a :: !l
          | None -> Hashtbl.replace spec_deps_of e.txn (ref [ e.a ])
        end
      end
      else if k = Sem.batch_decide then begin
        (* (a) within one batch, entries decide in strictly increasing
           queue order — decide order IS version-install order, so a
           regression would apply versions against queue order. *)
        (match Hashtbl.find_opt batch_entry_of e.txn with
        | Some (batch, pos) when batch = e.a ->
          (match Hashtbl.find_opt last_decided batch with
          | Some (last, other) when pos <= last ->
            report "batch-order" e.time e.txn
              (Printf.sprintf
                 "batch %d decided queue position %d after position %d (txn \
                  %d): applied versions would not respect queue order"
                 batch pos last other)
          | Some _ | None -> ());
          Hashtbl.replace last_decided batch (pos, e.txn)
        | Some (batch, _) ->
          report "batch-order" e.time e.txn
            (Printf.sprintf "decided in batch %d but last cut into batch %d"
               e.a batch)
        | None ->
          report "batch-order" e.time e.txn
            (Printf.sprintf "decided in batch %d without a batch.entry" e.a));
        Hashtbl.replace batch_outcome e.txn (e.b = 1);
        (* (b) a speculative txn never commits in a round its predecessor
           aborted in (or before the predecessor is decided at all). *)
        if e.b = 1 then begin
          match Hashtbl.find_opt spec_deps_of e.txn with
          | Some deps ->
            List.iter
              (fun w ->
                match Hashtbl.find_opt batch_outcome w with
                | Some true -> ()
                | Some false ->
                  report "batch-order" e.time e.txn
                    (Printf.sprintf
                       "speculative txn committed though predecessor %d it \
                        read from aborted" w)
                | None ->
                  report "batch-order" e.time e.txn
                    (Printf.sprintf
                       "speculative txn committed before predecessor %d it \
                        read from was decided" w))
              !deps
          | None -> ()
        end
      end
      else if k = Sem.txn_partial_abort then begin
        (* A partial abort may roll speculative reads back with the scope;
           the surviving dependency set is not reconstructible from the
           trace, so drop the txn's deps (conservative: misses violations,
           never fabricates one — re-executed reads re-record theirs). *)
        Hashtbl.remove spec_deps_of e.txn;
        (match Hashtbl.find_opt pending_unwind e.txn with
        | Some target ->
          report "partial-abort-scope" e.time e.txn
            (Printf.sprintf
               "partial abort to %d while unwind to %d never resumed" e.a target)
        | None -> ());
        Hashtbl.replace pending_unwind e.txn e.a
      end
      else if k = Sem.scope_resume then begin
        match Hashtbl.find_opt pending_unwind e.txn with
        | Some target ->
          Hashtbl.remove pending_unwind e.txn;
          if e.a <> target then
            report "partial-abort-scope" e.time e.txn
              (Printf.sprintf "partial abort targeted %d but resumed at %d"
                 target e.a)
        | None ->
          report "partial-abort-scope" e.time e.txn
            (Printf.sprintf "scope resume at %d without a pending partial abort"
               e.a)
      end
      else if k = Sem.txn_root_abort || k = Sem.txn_end then
        (* Root abort is the legal fallback when the unwind target is gone. *)
        Hashtbl.remove pending_unwind e.txn
      else if k = Sem.apply then Hashtbl.replace evidence e.txn ()
      else if k = Sem.rescue then begin
        (* b = 1 marks version-advance evidence: the leased copy moved past
           the protected version, which a *different* transaction's commit
           can cause across membership views — no per-txn apply is implied. *)
        if e.b <> 1 && not (Hashtbl.mem evidence e.txn) then
          report "rescue-evidence" e.time e.txn
            "rescued to commit without prior commit evidence (no apply or \
             coordinator commit in trace)"
      end
      else if k = Sem.widen_add then begin
        match Hashtbl.find_opt witnesses e.txn with
        | Some l ->
          if not (List.mem_assoc e.a !l) then l := (e.a, e.b) :: !l
        | None -> Hashtbl.replace witnesses e.txn (ref [ (e.a, e.b) ])
      end
      else if k = Sem.widen_drop then begin
        match Hashtbl.find_opt witnesses e.txn with
        | Some l -> l := List.filter (fun (w, _) -> w <> e.a) !l
        | None -> ()
      end
      else if k = Sem.read_send then begin
        match Hashtbl.find_opt open_group e.txn with
        | Some (time, oid, dsts, _) when time = e.time && oid = e.oid ->
          dsts := e.a :: !dsts
        | _ ->
          close_group e.txn;
          let flagged =
            match Hashtbl.find_opt witnesses e.txn with
            | Some l ->
              List.filter_map
                (fun (w, ws) ->
                  if ws = -1 || e.b = -1 || ws = e.b then Some w else None)
                !l
            | None -> []
          in
          Hashtbl.replace open_group e.txn (e.time, e.oid, ref [ e.a ], flagged)
      end)
    events;
  Hashtbl.fold (fun txn _ acc -> txn :: acc) open_group []
  |> List.sort Int.compare
  |> List.iter close_group;
  List.rev !violations
