(* The offline checker is a thin wrapper over the streaming rule engine in
   [Online]: feed the completed trace oldest-first, then finish.  One
   engine, two feeding paths — replaying a ring vs riding a tracer sink —
   so online and offline verdicts agree by construction (pinned by
   test/test_online.ml across chaos seeds). *)

type violation = Online.violation = {
  rule : string;
  time : float;
  txn : int;
  detail : string;
}

let pp_violation = Online.pp_violation

let check ?is_write_quorum events =
  let ck = Online.create ?is_write_quorum () in
  List.iter (Online.feed ck) events;
  Online.finish ck
