(* Fault-scenario DSL: a small textual language for composing fault
   injections against a running cluster, with bookkeeping of the degraded
   windows so experiments can report "commits while faults were active".

   Grammar (events separated by [;], times in simulated ms):

     crash <node> @<t>
     recover <node> @<t>
     suspect <node> @<t> for <d>
     partition <a,b|c,d|...> @<t> for <d>
     drop <p> @<t> [for <d>]
     dup <p> @<t> [for <d>]
     spike <p> <factor> @<t> [for <d>]
     flaky <a>-<b> <p> @<t> [for <d>]
     join <node> @<t>
     leave <node> @<t>
     replace <leaving> <joining> @<t>
     shardmove <oid> <to_shard> @<t>
     shardsplit <shard> @<t>

   Example:
     "crash 11 @500; recover 11 @2500; drop 0.05 @0; partition 0,...|11,12 @1000 for 800"

   A partition event also falsely suspects every node outside its largest
   group (cleared at heal): the tree-quorum layer only routes around
   unreachable nodes once the detector excludes them, which models the
   membership-view change a JGroups-style stack would deliver. *)

type event =
  | Crash of { node : int; at : float }
  | Recover of { node : int; at : float }
  | Suspect of { node : int; at : float; duration : float }
  | Partition of { groups : int list list; at : float; duration : float }
  | Drop of { p : float; at : float; duration : float option }
  | Duplicate of { p : float; at : float; duration : float option }
  | Spike of { p : float; factor : float; at : float; duration : float option }
  | Flaky of { a : int; b : int; p : float; at : float; duration : float option }
  | Join of { node : int; at : float }
  | Leave of { node : int; at : float }
  | Replace of { leaving : int; joining : int; at : float }
  | ShardMove of { oid : int; to_shard : int; at : float }
  | ShardSplit of { shard : int; at : float }

let pp_event ppf = function
  | Crash { node; at } -> Format.fprintf ppf "crash %d @%g" node at
  | Recover { node; at } -> Format.fprintf ppf "recover %d @%g" node at
  | Suspect { node; at; duration } ->
    Format.fprintf ppf "suspect %d @%g for %g" node at duration
  | Partition { groups; at; duration } ->
    let group g = String.concat "," (List.map string_of_int g) in
    Format.fprintf ppf "partition %s @%g for %g"
      (String.concat "|" (List.map group groups))
      at duration
  | Drop { p; at; duration } ->
    Format.fprintf ppf "drop %g @%g" p at;
    Option.iter (Format.fprintf ppf " for %g") duration
  | Duplicate { p; at; duration } ->
    Format.fprintf ppf "dup %g @%g" p at;
    Option.iter (Format.fprintf ppf " for %g") duration
  | Spike { p; factor; at; duration } ->
    Format.fprintf ppf "spike %g %g @%g" p factor at;
    Option.iter (Format.fprintf ppf " for %g") duration
  | Flaky { a; b; p; at; duration } ->
    Format.fprintf ppf "flaky %d-%d %g @%g" a b p at;
    Option.iter (Format.fprintf ppf " for %g") duration
  | Join { node; at } -> Format.fprintf ppf "join %d @%g" node at
  | Leave { node; at } -> Format.fprintf ppf "leave %d @%g" node at
  | Replace { leaving; joining; at } ->
    Format.fprintf ppf "replace %d %d @%g" leaving joining at
  | ShardMove { oid; to_shard; at } ->
    Format.fprintf ppf "shardmove %d %d @%g" oid to_shard at
  | ShardSplit { shard; at } -> Format.fprintf ppf "shardsplit %d @%g" shard at

(* {2 Parsing} *)

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let int_of s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> n
  | _ -> fail "expected a node id, got %S" s

let float_of what s =
  match float_of_string_opt (String.trim s) with
  | Some f when f >= 0. -> f
  | _ -> fail "expected a %s, got %S" what s

let prob_of s =
  let p = float_of "probability" s in
  if p > 1. then fail "probability %g out of range" p;
  p

(* Split "... @t [for d]" into the head tokens, the time, and the optional
   duration. *)
let time_and_duration tokens =
  let rec split acc = function
    | [] -> fail "missing @<time>"
    | tok :: rest when String.length tok > 0 && tok.[0] = '@' ->
      let at = float_of "time" (String.sub tok 1 (String.length tok - 1)) in
      let duration =
        match rest with
        | [] -> None
        | [ "for"; d ] -> Some (float_of "duration" d)
        | _ -> fail "trailing tokens after @%g: %s" at (String.concat " " rest)
      in
      (List.rev acc, at, duration)
    | tok :: rest -> split (tok :: acc) rest
  in
  split [] tokens

let require_duration verb = function
  | Some d -> d
  | None -> fail "%s requires 'for <duration>'" verb

let no_duration verb = function
  | None -> ()
  | Some _ -> fail "%s takes no duration" verb

let parse_groups s =
  String.split_on_char '|' s
  |> List.map (fun group ->
         match
           String.split_on_char ',' group |> List.filter (fun x -> String.trim x <> "")
         with
         | [] -> fail "empty partition group in %S" s
         | members -> List.map int_of members)

let parse_event text =
  let tokens =
    String.split_on_char ' ' text |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> None
  | verb :: rest ->
    let args, at, duration = time_and_duration rest in
    let event =
      match (verb, args) with
      | "crash", [ node ] ->
        no_duration verb duration;
        Crash { node = int_of node; at }
      | "recover", [ node ] ->
        no_duration verb duration;
        Recover { node = int_of node; at }
      | "suspect", [ node ] ->
        Suspect { node = int_of node; at; duration = require_duration verb duration }
      | "partition", [ groups ] ->
        Partition
          { groups = parse_groups groups; at; duration = require_duration verb duration }
      | "drop", [ p ] -> Drop { p = prob_of p; at; duration }
      | "dup", [ p ] -> Duplicate { p = prob_of p; at; duration }
      | "spike", [ p; factor ] ->
        Spike { p = prob_of p; factor = float_of "factor" factor; at; duration }
      | "flaky", [ link; p ] ->
        (match String.split_on_char '-' link with
         | [ a; b ] -> Flaky { a = int_of a; b = int_of b; p = prob_of p; at; duration }
         | _ -> fail "flaky link must be <a>-<b>, got %S" link)
      | "join", [ node ] ->
        no_duration verb duration;
        Join { node = int_of node; at }
      | "leave", [ node ] ->
        no_duration verb duration;
        Leave { node = int_of node; at }
      | "replace", [ leaving; joining ] ->
        no_duration verb duration;
        Replace { leaving = int_of leaving; joining = int_of joining; at }
      | "shardmove", [ oid; to_shard ] ->
        no_duration verb duration;
        ShardMove { oid = int_of oid; to_shard = int_of to_shard; at }
      | "shardsplit", [ shard ] ->
        no_duration verb duration;
        ShardSplit { shard = int_of shard; at }
      | _ ->
        fail "cannot parse event %S (verb %S with %d argument(s))" text verb
          (List.length args)
    in
    Some event

let parse spec =
  match
    String.split_on_char ';' spec
    |> List.filter_map (fun chunk -> parse_event (String.trim chunk))
  with
  | events -> Ok events
  | exception Parse_error msg -> Error msg

let crashed_nodes events =
  List.filter_map (function Crash { node; _ } -> Some node | _ -> None) events
  |> List.sort_uniq Int.compare

(* {2 Validation} *)

let min_members = 3

let validate ?members ?(shards = 1) ?shard_members ~nodes events =
  let members =
    match members with Some m -> m | None -> List.init nodes Fun.id
  in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_node what n k =
    if n < 0 || n >= nodes then err "%s names node %d, outside [0, %d)" what n nodes
    else k ()
  in
  let rec check_nodes what ns k =
    match ns with
    | [] -> k ()
    | n :: rest -> check_node what n (fun () -> check_nodes what rest k)
  in
  (* Per-node crash/recover discipline: in time order the events must
     alternate crash, recover, crash, ... — a second crash while one is
     outstanding (or a recover with no crash pending) is a schedule bug
     that would otherwise fail in confusing ways deep in the simulator. *)
  let check_crash_pairing () =
    let per_node = Hashtbl.create 8 in
    List.iter
      (fun event ->
        match event with
        | Crash { node; at } ->
          Hashtbl.replace per_node node ((at, `Crash) :: (Option.value ~default:[] (Hashtbl.find_opt per_node node)))
        | Recover { node; at } ->
          Hashtbl.replace per_node node ((at, `Recover) :: (Option.value ~default:[] (Hashtbl.find_opt per_node node)))
        | Suspect _ | Partition _ | Drop _ | Duplicate _ | Spike _ | Flaky _ | Join _
        | Leave _ | Replace _ | ShardMove _ | ShardSplit _ ->
          ())
      events;
    Hashtbl.fold
      (fun node entries acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let ordered =
            List.sort (fun (a, _) (b, _) -> Float.compare a b) (List.rev entries)
          in
          let rec walk down = function
            | [] -> Ok ()
            | (at, `Crash) :: rest ->
              if down then
                err "node %d crashes again at %g while already crashed" node at
              else walk true rest
            | (at, `Recover) :: rest ->
              if down then walk false rest
              else err "node %d recovers at %g without a preceding crash" node at
          in
          walk false ordered)
      per_node (Ok ())
  in
  (* Membership-op discipline, walked in time order over the {e evolving}
     view: a join must target a non-member (a spare or a departed node), a
     leave/replace must remove a live member and may not shrink the view
     below the quorum-viable minimum, and a crash must hit a node that is
     actually in the view when it fires.  Catching these statically keeps a
     malformed schedule from surfacing as a baffling runtime
     [Invalid_argument] (or a silent no-op) mid-simulation. *)
  let check_membership () =
    let dated =
      List.filter_map
        (fun event ->
          match event with
          | Crash { node; at } -> Some (at, `Crash node)
          | Recover { node; at } -> Some (at, `Recover node)
          | Join { node; at } -> Some (at, `Join node)
          | Leave { node; at } -> Some (at, `Leave node)
          | Replace { leaving; joining; at } -> Some (at, `Replace (leaving, joining))
          | Suspect _ | Partition _ | Drop _ | Duplicate _ | Spike _ | Flaky _
          | ShardMove _ | ShardSplit _ ->
            None)
        events
      |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
    in
    let mem = ref members in
    let down = ref [] in
    let is_member n = List.mem n !mem in
    let check_join what at n k =
      if is_member n then err "%s at %g: node %d is already a member" what at n
      else k ()
    in
    let check_leave what at n k =
      if not (is_member n) then err "%s at %g: node %d is not a member" what at n
      else if List.mem n !down then
        err "%s at %g: node %d is crashed (graceful departure needs a live node)"
          what at n
      else k ()
    in
    let rec walk = function
      | [] -> Ok ()
      | (at, op) :: rest -> (
        match op with
        | `Crash n ->
          if not (is_member n) then
            err "crash at %g: node %d is not a member of the view" at n
          else begin
            down := n :: !down;
            walk rest
          end
        | `Recover n ->
          down := List.filter (fun m -> m <> n) !down;
          walk rest
        | `Join n ->
          check_join "join" at n (fun () ->
              mem := n :: !mem;
              walk rest)
        | `Leave n ->
          check_leave "leave" at n (fun () ->
              if List.length !mem - 1 < min_members then
                err
                  "leave at %g: removing node %d leaves %d members, below the \
                   quorum-viable minimum (%d)"
                  at n
                  (List.length !mem - 1)
                  min_members
              else begin
                mem := List.filter (fun m -> m <> n) !mem;
                walk rest
              end)
        | `Replace (l, j) ->
          check_leave "replace" at l (fun () ->
              check_join "replace" at j (fun () ->
                  mem := j :: List.filter (fun m -> m <> l) !mem;
                  walk rest)))
    in
    walk dated
  in
  (* Shard-directory discipline, walked in time order: a [shardmove] must
     target a shard that exists when it fires (splits grow the count), a
     [shardsplit] must leave both halves quorum-viable, and — when the
     per-shard layout is known — a crash schedule may not take down the
     {e last} live member of any shard, since no surviving replica could
     then serve reads or rescue in-doubt cross-shard decisions for that
     slice of the object space.  The kill check runs against the initial
     layout and is suspended once a split rearranges it. *)
  let check_shards () =
    let dated =
      List.filter_map
        (fun event ->
          match event with
          | ShardMove { oid; to_shard; at } -> Some (at, `Move (oid, to_shard))
          | ShardSplit { shard; at } -> Some (at, `Split shard)
          | Crash { node; at } -> Some (at, `Crash node)
          | Recover { node; at } -> Some (at, `Recover node)
          | Join { node; at } -> Some (at, `Join node)
          | Leave { node; at } -> Some (at, `Leave node)
          | Suspect _ | Partition _ | Drop _ | Duplicate _ | Spike _ | Flaky _
          | Replace _ ->
            None)
        events
      |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
    in
    let cur_shards = ref shards in
    (* Per-shard state while the initial layout still holds (suspended on
       the first split, which rearranges nodes in ways runtime ordering
       decides): [mems] is the membership list, [down] the crashed subset. *)
    let tracking = ref (shard_members <> None) in
    let mems =
      Array.of_list
        (List.map ref (Option.value ~default:[] shard_members))
    in
    let down = Array.map (fun _ -> ref []) mems in
    let shard_of_node n =
      let found = ref None in
      Array.iteri (fun s ms -> if !found = None && List.mem n !ms then found := Some s) mems;
      !found
    in
    let rec walk = function
      | [] -> Ok ()
      | (at, op) :: rest -> (
        match op with
        | `Move (oid, to_shard) ->
          if to_shard >= !cur_shards then
            err
              "shardmove at %g: cannot move object %d to shard %d, no such shard \
               (%d shards)"
              at oid to_shard !cur_shards
          else walk rest
        | `Split shard ->
          if shard >= !cur_shards then
            err "shardsplit at %g: no such shard %d (%d shards)" at shard !cur_shards
          else if
            !tracking && shard < Array.length mems
            && List.length !(mems.(shard)) < 2 * min_members
          then
            err
              "shardsplit at %g: shard %d has %d members, too few to form two \
               quorum-viable shards (minimum %d each)"
              at shard
              (List.length !(mems.(shard)))
              min_members
          else begin
            tracking := false;
            incr cur_shards;
            walk rest
          end
        | `Crash n -> (
          if not !tracking then walk rest
          else
            match shard_of_node n with
            | Some s
              when List.for_all
                     (fun m -> m = n || List.mem m !(down.(s)))
                     !(mems.(s)) ->
              err "crash at %g: node %d is the last live member of shard %d" at n s
            | Some s ->
              down.(s) := n :: !(down.(s));
              walk rest
            | None -> walk rest)
        | `Recover n ->
          if !tracking then
            Array.iter (fun d -> d := List.filter (fun m -> m <> n) !d) down;
          walk rest
        | `Join n ->
          (* Joins land in shard 0 (the scenario DSL carries no shard). *)
          if !tracking && Array.length mems > 0 then mems.(0) := n :: !(mems.(0));
          walk rest
        | `Leave n -> (
          if not !tracking then walk rest
          else
            match shard_of_node n with
            | Some s ->
              mems.(s) := List.filter (fun m -> m <> n) !(mems.(s));
              walk rest
            | None -> walk rest))
    in
    walk dated
  in
  let rec check_events = function
    | [] ->
      (match check_crash_pairing () with
       | Ok () -> (
         match check_membership () with
         | Ok () -> check_shards ()
         | Error _ as e -> e)
       | Error _ as e -> e)
    | event :: rest ->
      let continue () = check_events rest in
      (match event with
       | Crash { node; _ } -> check_node "crash" node continue
       | Recover { node; _ } -> check_node "recover" node continue
       | Suspect { node; _ } -> check_node "suspect" node continue
       | Partition { groups; _ } ->
         check_nodes "partition" (List.concat groups) continue
       | Flaky { a; b; _ } -> check_nodes "flaky" [ a; b ] continue
       | Join { node; _ } -> check_node "join" node continue
       | Leave { node; _ } -> check_node "leave" node continue
       | Replace { leaving; joining; _ } ->
         check_nodes "replace" [ leaving; joining ] continue
       | Drop _ | Duplicate _ | Spike _ | ShardMove _ | ShardSplit _ -> continue ())
  in
  check_events events

(* {2 Installation and degraded-window tracking} *)

type tracker = {
  cluster : Core.Cluster.t;
  events : event list;
  mutable active : int;  (* fault conditions currently in force *)
  mutable window_started : float;
  mutable window_commits : int;
  mutable degraded_time : float;
  mutable degraded_commits : int;
}

let enter t =
  if t.active = 0 then begin
    t.window_started <- Core.Cluster.now t.cluster;
    t.window_commits <- Core.Metrics.commits (Core.Cluster.metrics t.cluster)
  end;
  t.active <- t.active + 1

let leave t =
  t.active <- t.active - 1;
  if t.active = 0 then begin
    t.degraded_time <-
      t.degraded_time +. (Core.Cluster.now t.cluster -. t.window_started);
    t.degraded_commits <-
      t.degraded_commits
      + (Core.Metrics.commits (Core.Cluster.metrics t.cluster) - t.window_commits)
  end

let at_time cluster ~at f =
  Sim.Engine.schedule_at (Core.Cluster.engine cluster) ~time:at f

(* Degraded windows for one-shot fault conditions: a crash ends when the
   matching recovery *fires* (state transfer follows, but its duration is
   already reported separately as recovery time). *)
let install_event t event =
  let cluster = t.cluster in
  let network = Core.Cluster.network cluster in
  let windowed ~at ~duration start stop =
    at_time cluster ~at (fun () ->
        enter t;
        start ());
    Option.iter
      (fun d ->
        at_time cluster ~at:(at +. d) (fun () ->
            stop ();
            leave t))
      duration
  in
  match event with
  | Crash { node; at } ->
    at_time cluster ~at (fun () -> enter t);
    Core.Cluster.fail_node_at cluster ~at ~node
  | Recover { node; at } ->
    Core.Cluster.recover_node_at cluster ~at ~node;
    at_time cluster ~at (fun () -> leave t)
  | Suspect { node; at; duration } ->
    Core.Cluster.suspect_node_at ~clear_after:duration cluster ~at ~node;
    windowed ~at ~duration:(Some duration) (fun () -> ()) (fun () -> ())
  | Partition { groups; at; duration } ->
    (* Suspect everyone outside the largest group so the majority side's
       quorum construction routes around the unreachable minority.  The
       set is computed when the partition fires, against the membership
       view of that moment: suspecting a decommissioned machine would
       revive it onto the network when the suspicion clears. *)
    at_time cluster ~at (fun () ->
        let largest =
          List.fold_left
            (fun best g -> if List.length g > List.length best then g else best)
            [] groups
        in
        let outside =
          Core.Cluster.members cluster
          |> List.filter (fun n -> not (List.mem n largest))
        in
        List.iter
          (fun node ->
            Core.Cluster.suspect_node_at ~clear_after:duration cluster
              ~at:(Core.Cluster.now cluster) ~node)
          outside);
    windowed ~at ~duration:(Some duration)
      (fun () -> Sim.Network.partition network groups)
      (fun () -> Sim.Network.heal network)
  | Drop { p; at; duration } ->
    let set v () =
      Sim.Network.set_faults network
        { (Sim.Network.faults network) with Sim.Network.drop = v }
    in
    windowed ~at ~duration (set p) (set 0.)
  | Duplicate { p; at; duration } ->
    let set v () =
      Sim.Network.set_faults network
        { (Sim.Network.faults network) with Sim.Network.duplicate = v }
    in
    windowed ~at ~duration (set p) (set 0.)
  | Spike { p; factor; at; duration } ->
    let set prob () =
      Sim.Network.set_faults network
        { (Sim.Network.faults network) with
          Sim.Network.spike_prob = prob;
          spike_factor = factor
        }
    in
    windowed ~at ~duration (set p) (set 0.)
  | Flaky { a; b; p; at; duration } ->
    windowed ~at ~duration
      (fun () ->
        Sim.Network.set_link_faults network ~a ~b
          { Sim.Network.no_faults with Sim.Network.drop = p })
      (fun () -> Sim.Network.clear_link_faults network ~a ~b)
  (* Reconfigurations are degraded windows too: quorum construction is
     wedged for part of the state machine, and the window closes only when
     the operation (including any departure drain) completes. *)
  | Join { node; at } ->
    at_time cluster ~at (fun () -> enter t);
    Core.Cluster.join_node_at ~on_done:(fun () -> leave t) cluster ~at ~node
  | Leave { node; at } ->
    at_time cluster ~at (fun () -> enter t);
    (* Departures run on the subject's home shard's reconfiguration
       machine (resolved against the install-time layout; shard 0 — the
       legacy path — on unsharded clusters). *)
    Core.Cluster.leave_node_at
      ~shard:(Core.Cluster.home_shard_of cluster ~node)
      ~on_done:(fun () -> leave t) cluster ~at ~node
  | Replace { leaving; joining; at } ->
    at_time cluster ~at (fun () -> enter t);
    Core.Cluster.replace_node_at
      ~shard:(Core.Cluster.home_shard_of cluster ~node:leaving)
      ~on_done:(fun () -> leave t)
      cluster ~at ~leaving ~joining
  (* Shard-directory operations wedge the involved shards while the handoff
     runs, so they open degraded windows just like reconfigurations. *)
  | ShardMove { oid; to_shard; at } ->
    at_time cluster ~at (fun () -> enter t);
    Core.Cluster.move_object_at ~on_done:(fun () -> leave t) cluster ~at ~oid ~to_shard
  | ShardSplit { shard; at } ->
    at_time cluster ~at (fun () -> enter t);
    Core.Cluster.split_shard_at ~on_done:(fun () -> leave t) cluster ~at ~shard

let install cluster events =
  let shards = Core.Cluster.shard_count cluster in
  (match
     validate
       ~members:(Core.Cluster.members cluster)
       ~shards
       ~shard_members:
         (List.init shards (fun s -> Core.Cluster.shard_members cluster ~shard:s))
       ~nodes:(Core.Cluster.nodes cluster) events
   with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Scenario.install: " ^ msg));
  let t =
    {
      cluster;
      events;
      active = 0;
      window_started = 0.;
      window_commits = 0;
      degraded_time = 0.;
      degraded_commits = 0;
    }
  in
  List.iter (install_event t) events;
  t

type report = {
  events : int;
  degraded_time : float;
  degraded_commits : int;
  total_commits : int;
  syncs : int;
  recoveries : int;
  mean_recovery_time : float;
  false_suspicions : int;
  dropped : int;
  duplicated : int;
  retransmit_exhausted : int;
  lease_expirations : int;
  presumed_aborts : int;
  rescued_commits : int;
  stalls_detected : int;
  view_changes : int;
  fenced_messages : int;
  final_epoch : int;
}

let report t =
  (* Close a still-open degraded window against the current clock. *)
  let open_time, open_commits =
    if t.active > 0 then
      ( Core.Cluster.now t.cluster -. t.window_started,
        Core.Metrics.commits (Core.Cluster.metrics t.cluster) - t.window_commits )
    else (0., 0)
  in
  let metrics = Core.Cluster.metrics t.cluster in
  let recovery_stats = Core.Metrics.recovery_time_stats metrics in
  {
    events = List.length t.events;
    degraded_time = t.degraded_time +. open_time;
    degraded_commits = t.degraded_commits + open_commits;
    total_commits = Core.Metrics.commits metrics;
    syncs = Core.Metrics.syncs metrics;
    recoveries = Core.Metrics.recoveries metrics;
    mean_recovery_time =
      (if Util.Stats.count recovery_stats = 0 then 0.
       else Util.Stats.mean recovery_stats);
    false_suspicions = Sim.Failure.false_suspicions (Core.Cluster.failure t.cluster);
    dropped = Core.Cluster.messages_dropped t.cluster;
    duplicated = Core.Cluster.messages_duplicated t.cluster;
    retransmit_exhausted = Core.Cluster.retransmit_exhausted t.cluster;
    lease_expirations = Core.Metrics.lease_expirations metrics;
    presumed_aborts = Core.Metrics.presumed_aborts metrics;
    rescued_commits = Core.Metrics.status_rescued_commits metrics;
    stalls_detected = Core.Metrics.stalls_detected metrics;
    view_changes = Core.Metrics.view_changes metrics;
    fenced_messages = Core.Cluster.fenced_messages t.cluster;
    final_epoch = Core.Cluster.epoch t.cluster;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fault events        %d@,\
     degraded time       %.1f ms@,\
     degraded commits    %d / %d total@,\
     state syncs         %d@,\
     recoveries          %d (mean %.1f ms)@,\
     false suspicions    %d@,\
     messages dropped    %d@,\
     messages duplicated %d@,\
     retransmit give-ups %d@,\
     lease expirations   %d@,\
     presumed aborts     %d@,\
     rescued commits     %d@,\
     stalls detected     %d@,\
     view changes        %d (final epoch %d)@,\
     fenced messages     %d@]"
    r.events r.degraded_time r.degraded_commits r.total_commits r.syncs r.recoveries
    r.mean_recovery_time r.false_suspicions r.dropped r.duplicated r.retransmit_exhausted
    r.lease_expirations r.presumed_aborts r.rescued_commits r.stalls_detected
    r.view_changes r.final_epoch r.fenced_messages
