(* Domain-parallel work pool for independent simulation runs.

   Design notes:

   - One global pool, sized by [set_jobs].  The library default is 1 —
     fully sequential, no domains spawned — so embedding code (tests,
     examples) sees the historical single-threaded behaviour unless a
     driver (CLI, bench) opts in.

   - [jobs = n] means n concurrent executors: the submitting domain plus
     n-1 worker domains.  The submitter participates through work-helping
     [await]: while its future is pending it pops and runs queued tasks
     instead of blocking.  Helping also makes *nested* parallelism safe —
     a task that fans out sub-tasks and awaits them cannot deadlock the
     fixed-size pool, because every awaiting executor keeps draining the
     queue.

   - Determinism: the pool adds no randomness.  Each submitted thunk must
     be self-contained (own RNG streams, own simulator); [map] collects
     results in submission order, so a parallel map is observationally
     identical to [List.map].  See DESIGN.md "Parallel safety". *)

type 'a state =
  | Pending
  | Value of 'a
  | Raised of exn * Printexc.raw_backtrace

type pool = {
  mutex : Mutex.t;
  work : Condition.t;  (* a task was queued, or the pool is stopping *)
  done_ : Condition.t;  (* some future completed *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

type 'a future = { pool : pool; mutable state : 'a state }

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.work pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stopping *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create_pool ~workers =
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  pool.domains <-
    List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown_pool pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* --- global configuration ---------------------------------------------- *)

let config_mutex = Mutex.create ()
let requested_jobs = ref 1
let the_pool : pool option ref = ref None
let at_exit_registered = ref false

let default_jobs () = Domain.recommended_domain_count ()
let jobs () = !requested_jobs

let shutdown () =
  Mutex.lock config_mutex;
  let pool = !the_pool in
  the_pool := None;
  Mutex.unlock config_mutex;
  Option.iter shutdown_pool pool

let set_jobs n =
  let n = Stdlib.max 1 n in
  if n <> !requested_jobs then begin
    shutdown ();
    Mutex.lock config_mutex;
    requested_jobs := n;
    Mutex.unlock config_mutex
  end

(* Lazily spawn the worker domains (jobs - 1 of them; the caller is the
   remaining executor).  Guarded so a nested [map] racing from a worker
   cannot double-create. *)
let ensure_pool () =
  Mutex.lock config_mutex;
  let pool =
    match !the_pool with
    | Some pool -> pool
    | None ->
      let pool = create_pool ~workers:(!requested_jobs - 1) in
      the_pool := Some pool;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        Stdlib.at_exit shutdown
      end;
      pool
  in
  Mutex.unlock config_mutex;
  pool

(* --- futures ------------------------------------------------------------ *)

let submit_to pool f =
  let fut = { pool; state = Pending } in
  let task () =
    let outcome =
      match f () with
      | v -> Value v
      | exception e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock pool.mutex;
    fut.state <- outcome;
    Condition.broadcast pool.done_;
    Mutex.unlock pool.mutex
  in
  Mutex.lock pool.mutex;
  Queue.push task pool.queue;
  Condition.signal pool.work;
  Mutex.unlock pool.mutex;
  fut

let rec await fut =
  let pool = fut.pool in
  Mutex.lock pool.mutex;
  match fut.state with
  | Value v ->
    Mutex.unlock pool.mutex;
    v
  | Raised (e, bt) ->
    Mutex.unlock pool.mutex;
    Printexc.raise_with_backtrace e bt
  | Pending ->
    if not (Queue.is_empty pool.queue) then begin
      (* Help: run someone's queued task instead of blocking a core. *)
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ()
    end
    else begin
      Condition.wait pool.done_ pool.mutex;
      Mutex.unlock pool.mutex
    end;
    await fut

(* --- high-level API ----------------------------------------------------- *)

let run f = if !requested_jobs <= 1 then f () else await (submit_to (ensure_pool ()) f)

let map f xs =
  if !requested_jobs <= 1 then List.map f xs
  else begin
    let pool = ensure_pool () in
    let futures = List.map (fun x -> submit_to pool (fun () -> f x)) xs in
    List.map await futures
  end

let both f g =
  if !requested_jobs <= 1 then (f (), g ())
  else begin
    let pool = ensure_pool () in
    let fa = submit_to pool f in
    let b = g () in
    (await fa, b)
  end
