(** Figure/table data containers and rendering. *)

type series = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (string * float list) list;
  notes : string list;  (** expected-shape commentary, printed below *)
}

val render : series -> string
(** NaN cells render as ["n/a"]. *)

val render_many : series list -> string

val to_csv : series -> string
(** NaN cells render as ["nan"]. *)

val pct_change : baseline:float -> float -> float
(** [(v - baseline) / baseline * 100].  A zero baseline has no meaningful
    percentage: the result is [nan] (rendered honestly by {!render} /
    {!to_csv}) unless the value is also 0, which is genuinely "no change"
    and yields 0. *)

val of_telemetry : ?title:string -> Obs.Telemetry.t -> series
(** Convert a telemetry time series into a renderable {!series} (the time
    column becomes the x axis). *)
