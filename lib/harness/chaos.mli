(** Chaos testing: seeded random fault schedules with safety and liveness
    oracles.

    [run_one] draws a fault schedule from the seed (crash/recover pairs —
    including nodes hosting active clients — minority partitions, loss,
    duplication, latency spikes, flaky links, false suspicions), runs a
    bank workload with clients on every node, drains to quiescence and
    checks:

    - {b safety}: the 1-copy-serializability oracle and the bank's
      total-balance invariant;
    - {b liveness}: a watchdog samples commit progress on a fixed grid
      sized from the lease-termination pipeline and the schedule's longest
      fault window; a window with in-flight transactions but no new
      commits is reported as a stall, with the held leases and live
      coordinators attached.

    Runs are deterministic per seed: a failing seed reproduces exactly
    (same schedule, same interleaving).  The rendered schedule replays
    under [qr-dtm scenario] for interactive debugging. *)

type knobs = {
  nodes : int;
  clients : int;  (** closed-loop clients, round-robin over {e all} nodes *)
  horizon : float;  (** ms of fault + load window before drain *)
  max_crashes : int;  (** crash/recover pairs drawn per schedule: 0..max *)
  read_level : int;
  accounts : int;  (** bank accounts (contention knob) *)
  calls : int;  (** transfers/audits per transaction *)
  read_ratio : float;
  spares : int;  (** extra machines, dark until a join/replace uses them *)
  reconfigs : int;
      (** membership operations drawn per schedule: 0..max — joins, graceful
          leaves and replaces, interleaved with the classic faults *)
  shards : int;  (** shards the cluster partitions the object space into *)
  shard_ops : int;
      (** shard-directory operations drawn per schedule: 0..max — object
          moves and shard splits, valid against a mirror of the evolving
          directory (requires [shards > 1]) *)
  cross_shard_prob : float;
      (** fraction of bank transfers forced across shard boundaries *)
}

val default_knobs : knobs
(** 9 nodes, 18 clients, 8 s horizon, up to 2 crashes, 24 accounts, no
    spares, no membership churn, unsharded. *)

val rolling_knobs : knobs
(** Preset for {!generate_rolling}: 16 s horizon, 2 spares, at most 1
    crash. *)

val generate : knobs -> seed:int -> Scenario.event list
(** The fault schedule for [seed] — pure, so tooling can show what a seed
    does without running it.  With [reconfigs > 0] the schedule also draws
    membership churn: join/leave/replace operations over nodes not already
    cast as crash, partition or suspicion victims, valid against the
    evolving member set (a [knobs] with [reconfigs = 0] reproduces the
    pre-churn schedule for the same seed byte-for-byte).  With
    [shards > 1] crash draws are post-filtered so no schedule kills an
    entire shard, and [shard_ops > 0] additionally draws object moves and
    shard splits against a mirror of the evolving directory; all the
    shard draws come after the classic ones, so unsharded schedules are
    byte-identical. *)

val generate_rolling : knobs -> seed:int -> Scenario.event list
(** A rolling-restart schedule: every initial node is replaced exactly
    once (spares and departed nodes recycling through a pool), alongside
    an early crash/recover, a minority partition over the last-replaced
    nodes, and optional message loss.  Raises [Invalid_argument] when
    [spares < 1] or [nodes < 5]. *)

val render_schedule : Scenario.event list -> string
(** Scenario-DSL text of a schedule (replayable via [qr-dtm scenario]). *)

type stall = {
  stall_at : float;
  stall_in_flight : (int * Core.Ids.txn_id) list;  (** (node, txn) *)
  stall_leases : (int * Core.Ids.obj_id * int * float) list;
      (** (replica, oid, owner txn, expiry) *)
}

type result = {
  seed : int;
  events : Scenario.event list;
  commits : int;
  root_aborts : int;
  oracle : (unit, string) Stdlib.result;
  invariant : (unit, string) Stdlib.result;
  stalls : stall list;
  report : Scenario.report;
  quiesced_at : float;  (** simulated ms at full quiescence *)
  view_changes : int;  (** reconfigurations completed *)
  fenced : int;  (** stale-epoch envelopes dropped by the fence *)
  final_epoch : int;
  shards : int;  (** shard count at quiescence (splits can grow it) *)
  xshard_commits : int;  (** commits decided through the cross-shard 2PC *)
  xshard_aborts : int;  (** cross-shard 2PC rounds ending in abort *)
}

val passed : result -> bool
(** Oracle ok, invariant ok, no stalls. *)

val run_one :
  ?config:Core.Config.t ->
  ?tracer:Obs.Tracer.t ->
  ?batch_fanout:bool ->
  ?batch_commit:bool ->
  ?rolling:bool ->
  knobs ->
  seed:int ->
  result
(** Default config: [Config.default Closed] (leases enabled).  [tracer]
    threads a lifecycle tracer through the cluster; tracing never perturbs
    the run, so re-running a failing seed with a tracer reproduces it
    exactly.  [batch_fanout] (default on) toggles the network's wave
    batching; verdicts are byte-identical either way.  [batch_commit]
    (default off) runs the cluster in speculative batch-commit mode
    (PROTOCOL.md §9) — the same oracles and watchdog apply.  [rolling]
    swaps the random schedule for {!generate_rolling}'s full rolling
    restart.  Clients are membership-aware: one whose home node was
    decommissioned resubmits through the next member up (a {e crashed}
    home is still a member, so crash-death semantics are unchanged). *)

val run_many :
  ?config:Core.Config.t ->
  ?batch_commit:bool ->
  ?rolling:bool ->
  knobs ->
  seed:int ->
  runs:int ->
  result list
(** Seeds [seed .. seed + runs - 1], sequentially. *)

val check_trace : knobs -> Obs.Tracer.t -> Obs.Checker.violation list
(** Run the offline protocol checker over a traced chaos run.  Voter sets
    are validated by pairwise intersection (the checker's view-independent
    fallback) rather than the structural tree rule: chaos schedules change
    the membership view mid-run and the structural rule only holds within
    one view. *)

val failures : result list -> result list

val pp_stall : Format.formatter -> stall -> unit
val pp_result : Format.formatter -> result -> unit

val result_to_json : result -> string
val results_to_json : result list -> string

val summary : result list -> string
(** One-line aggregate, naming failing seeds if any. *)
