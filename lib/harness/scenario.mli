(** Fault-scenario DSL.

    A scenario is a [;]-separated list of fault events applied to a running
    cluster, with times in simulated milliseconds:

    {v
    crash <node> @<t>              fail-stop <node> at <t>
    recover <node> @<t>            restart it (state-sync + re-admission)
    suspect <node> @<t> for <d>    false suspicion, cleared after <d>
    partition <a,b|c,d> @<t> for <d>   symmetric partition, healed after <d>
    drop <p> @<t> [for <d>]        global message-loss probability
    dup <p> @<t> [for <d>]         global duplication probability
    spike <p> <f> @<t> [for <d>]   latency spikes (multiplier <f>)
    flaky <a>-<b> <p> @<t> [for <d>]   lossy link between <a> and <b>
    join <node> @<t>               bring a spare / departed node into the view
    leave <node> @<t>              graceful decommission (drain + handoff)
    replace <l> <j> @<t>           atomic swap: <l> departs, <j> joins
    shardmove <oid> <s> @<t>       re-home object <oid> onto shard <s>
    shardsplit <s> @<t>            split shard <s> into two quorum-viable halves
    v}

    Example: ["crash 11 @500; recover 11 @2500; drop 0.05 @0"].

    A partition also falsely suspects every node outside its largest group
    (cleared at heal), modelling the membership-view change the paper's
    JGroups-based testbed would deliver — without it the tree-quorum layer
    would keep trying to reach the unreachable side. *)

type event =
  | Crash of { node : int; at : float }
  | Recover of { node : int; at : float }
  | Suspect of { node : int; at : float; duration : float }
  | Partition of { groups : int list list; at : float; duration : float }
  | Drop of { p : float; at : float; duration : float option }
  | Duplicate of { p : float; at : float; duration : float option }
  | Spike of { p : float; factor : float; at : float; duration : float option }
  | Flaky of { a : int; b : int; p : float; at : float; duration : float option }
  | Join of { node : int; at : float }
  | Leave of { node : int; at : float }
  | Replace of { leaving : int; joining : int; at : float }
  | ShardMove of { oid : int; to_shard : int; at : float }
  | ShardSplit of { shard : int; at : float }

val pp_event : Format.formatter -> event -> unit

val parse : string -> (event list, string) result
(** Parse a scenario string.  Empty chunks are skipped, so trailing [;] is
    fine.  Probabilities must lie in [[0;1]]; times must be non-negative. *)

val crashed_nodes : event list -> int list
(** Nodes hit by a [crash] event, ascending and de-duplicated — use to keep
    closed-loop clients off nodes that will die. *)

val validate :
  ?members:int list ->
  ?shards:int ->
  ?shard_members:int list list ->
  nodes:int ->
  event list ->
  (unit, string) result
(** Static checks against a cluster of [nodes] machines (total capacity,
    spares included), of which [members] (default: all) form the initial
    view: every referenced node id must lie in [[0, nodes)]; per node the
    crash/recover events must alternate in time order (no double crash, no
    recover without a pending crash); and membership operations must be
    well-formed against the {e evolving} view in time order — a [join] of
    an existing member, a [leave]/[replace] of a non-member or crashed
    node, and a [leave] shrinking the view below the quorum-viable minimum
    (3 members) are all rejected with a description of the offending
    event.

    Shard-directory operations are checked against [shards] (default 1)
    with the count evolving across splits: a [shardmove] to a shard that
    does not exist when it fires and a [shardsplit] of an unknown shard
    are rejected.  When [shard_members] supplies the initial per-shard
    member lists (index = shard id), a [shardsplit] of a shard with fewer
    than 6 members (two quorum-viable halves) and a crash schedule that
    takes down the {e last} live member of any shard are also rejected;
    these layout-dependent checks are suspended after the first split,
    whose rearrangement is decided at runtime.  [install] runs all of
    this automatically with the cluster's actual layout. *)

type tracker
(** Scheduled scenario plus degraded-window bookkeeping.  A window opens
    when the number of in-force fault conditions rises from zero and closes
    when it returns to zero (a crash closes when its [recover] fires). *)

val install : Core.Cluster.t -> event list -> tracker
(** Schedule every event against the cluster's engine.  Call before running
    the workload (e.g. as [Experiment.run ~prepare]).  Raises
    [Invalid_argument] when {!validate} rejects the events. *)

type report = {
  events : int;
  degraded_time : float;  (** total ms with at least one fault in force *)
  degraded_commits : int;  (** commits landed inside degraded windows *)
  total_commits : int;
  syncs : int;  (** state-transfer rounds started *)
  recoveries : int;  (** completed restart-to-re-admission cycles *)
  mean_recovery_time : float;  (** ms; [0.] when no recoveries *)
  false_suspicions : int;
  dropped : int;  (** messages lost to the fault model *)
  duplicated : int;
  retransmit_exhausted : int;
      (** at-least-once deliveries that ran out of retries unacknowledged *)
  lease_expirations : int;  (** expired lease batches (termination started) *)
  presumed_aborts : int;  (** leases released with no commit evidence *)
  rescued_commits : int;  (** leases resolved by adopting the decided commit *)
  stalls_detected : int;  (** liveness-watchdog no-progress windows *)
  view_changes : int;  (** reconfigurations completed (epoch bumps) *)
  fenced_messages : int;  (** stale-epoch envelopes dropped by the fence *)
  final_epoch : int;  (** the view epoch when the report was taken *)
}

val report : tracker -> report
(** Snapshot the counters; a still-open degraded window is closed against
    the current simulated clock. *)

val pp_report : Format.formatter -> report -> unit
