open Core

type scale = { warmup : float; duration : float; clients : int; trials : int }

let quick = { warmup = 1_000.; duration = 8_000.; clients = 16; trials = 1 }
let full = { warmup = 2_000.; duration = 30_000.; clients = 26; trials = 3 }
let modes = [ Config.Flat; Config.Closed; Config.Checkpoint ]

(* Operating points chosen so the 13-node cluster shows the paper's
   contention regimes: structure benchmarks see long traversals, bank and
   vacation spread load over more independent objects. *)
let benchmark_objects = function
  | "bank" -> 96
  | "hashmap" -> 64
  | "slist" -> 48
  | "rbtree" -> 64
  | "vacation" -> 36
  | "bst" -> 64
  | _ -> 48

let base_params name =
  {
    Benchmarks.Workload.default_params with
    objects = benchmark_objects name;
    calls = 3;
    read_ratio = 0.5;
    key_skew = 0.5;
  }

let run_point ~scale ~config ~benchmark ~params ~seed =
  Experiment.run ~seed ~clients:scale.clients ~warmup:scale.warmup
    ~duration:scale.duration ~config ~benchmark ~params ()

(* Every (x, mode, trial) point is an independent seeded simulation; the
   nested [Pool.map]s fan the whole grid across domains (work-helping makes
   the nesting safe) while preserving row/column order. *)
let mode_sweep ~scale ~benchmark ~params_of ~xs ~x_of =
  Pool.map
    (fun x ->
      let params = params_of x in
      let values =
        Pool.map
          (fun mode ->
            let result =
              Sweep.averaged ~trials:scale.trials (fun ~seed ->
                  run_point ~scale ~config:(Config.default mode) ~benchmark ~params ~seed)
            in
            result.Experiment.throughput)
          modes
      in
      (x_of x, values))
    xs

let mode_columns = List.map Config.mode_name modes

let fig5 ?(scale = quick) ~benchmark () =
  let name = (benchmark : Benchmarks.Workload.benchmark).name in
  let base = base_params name in
  let rows =
    mode_sweep ~scale ~benchmark
      ~params_of:(fun ratio -> { base with read_ratio = ratio })
      ~xs:[ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ]
      ~x_of:(fun r -> Printf.sprintf "%.0f%%" (r *. 100.))
  in
  {
    Report.title = Printf.sprintf "Fig. 5 (%s): throughput vs read workload" name;
    x_label = "reads";
    columns = mode_columns;
    rows;
    notes =
      [ "expected: closed >= flat, gap largest at write-heavy end; checkpoint <= flat" ];
  }

let fig6 ?(scale = quick) ~benchmark () =
  let name = (benchmark : Benchmarks.Workload.benchmark).name in
  let base = { (base_params name) with read_ratio = 0.5 } in
  let rows =
    mode_sweep ~scale ~benchmark
      ~params_of:(fun calls -> { base with calls })
      ~xs:[ 1; 2; 3; 4; 5 ]
      ~x_of:string_of_int
  in
  {
    Report.title = Printf.sprintf "Fig. 6 (%s): throughput vs nested calls" name;
    x_label = "calls";
    columns = mode_columns;
    rows;
    notes = [ "expected: closed-nesting gain grows with transaction length" ];
  }

let fig7 ?(scale = quick) ~benchmark () =
  let name = (benchmark : Benchmarks.Workload.benchmark).name in
  let base = { (base_params name) with read_ratio = 0.2 } in
  let rows =
    mode_sweep ~scale ~benchmark
      ~params_of:(fun objects -> { base with objects })
      ~xs:[ 16; 32; 64; 128 ]
      ~x_of:string_of_int
  in
  {
    Report.title = Printf.sprintf "Fig. 7 (%s): throughput vs number of objects" name;
    x_label = "objects";
    columns = mode_columns;
    rows;
    notes =
      [
        "expected: contention grows with objects for slist/hashmap (longer traversals), \
         shrinks for bank/rbtree/vacation";
      ];
  }

(* The reference operating point for Table 8 and the summary: write-heavy,
   mid-length transactions. *)
let reference_params name = { (base_params name) with read_ratio = 0.2; calls = 3 }

let table8 ?(scale = quick) () =
  let rows =
    Pool.map
      (fun (benchmark : Benchmarks.Workload.benchmark) ->
        let params = reference_params benchmark.name in
        let result_of mode =
          Sweep.averaged ~trials:scale.trials (fun ~seed ->
              run_point ~scale ~config:(Config.default mode) ~benchmark ~params ~seed)
        in
        let flat, closed, chk =
          match Pool.map result_of modes with
          | [ flat; closed; chk ] -> (flat, closed, chk)
          | _ -> assert false
        in
        let aborts (r : Experiment.result) =
          Float.of_int (r.root_aborts + r.partial_aborts)
        in
        let msgs (r : Experiment.result) = Float.of_int r.messages in
        ( benchmark.name,
          [
            Report.pct_change ~baseline:(aborts flat) (aborts closed);
            Report.pct_change ~baseline:(aborts flat) (aborts chk);
            Report.pct_change ~baseline:(msgs flat) (msgs closed);
            Report.pct_change ~baseline:(msgs flat) (msgs chk);
          ] ))
      Benchmarks.Registry.paper_suite
  in
  {
    Report.title = "Table (Fig. 8): % change in aborts and messages vs flat nesting";
    x_label = "benchmark";
    columns = [ "QR-CN abort %"; "QR-CHK abort %"; "QR-CN msg %"; "QR-CHK msg %" ];
    rows;
    notes = [ "expected: negative (fewer) for QR-CN, positive (more) for QR-CHK" ];
  }

(* --- Fig. 9: baseline comparison on Bank ------------------------------ *)

let bank_gen ~accounts ~read_ratio rng =
  let n = Array.length accounts in
  let ops =
    List.init 3 (fun _ ->
        let a = accounts.(Util.Rng.int rng n) in
        let rec pick_other () =
          let b = accounts.(Util.Rng.int rng n) in
          if b = a then pick_other () else b
        in
        let b = pick_other () in
        if Util.Rng.chance rng read_ratio then
          Txn.bind (Txn.read a) (fun _ -> Txn.read b)
        else Benchmarks.Bank.transfer ~from_:a ~to_:b ~amount:(1 + Util.Rng.int rng 10))
  in
  fun () -> Benchmarks.Workload.ops_as_cts ops

let fig9_series ~scale ~read_ratio ~label =
  let node_counts = [ 5; 9; 13; 21 ] in
  let accounts_count = 24 in
  let throughput_of make_system seed_base n =
    let result =
      Sweep.averaged ~trials:scale.trials (fun ~seed ->
          let system : Experiment.system = make_system ~nodes:n ~seed:(seed + seed_base) in
          let accounts =
            Array.init accounts_count (fun _ ->
                system.Experiment.alloc ~init:(Store.Value.Int Benchmarks.Bank.initial_balance))
          in
          Experiment.run_system system ~clients:scale.clients ~warmup:scale.warmup
            ~duration:scale.duration
            ~gen_txn:(bank_gen ~accounts ~read_ratio)
            ~seed ())
    in
    result.Experiment.throughput
  in
  let systems =
    [
      ((fun ~nodes ~seed -> Experiment.qr_system ~nodes ~seed (Config.default Config.Flat)), 0);
      ((fun ~nodes ~seed -> Experiment.tfa_system ~nodes ~seed ()), 1000);
      ((fun ~nodes ~seed -> Experiment.decent_system ~nodes ~seed ()), 2000);
    ]
  in
  let rows =
    Pool.map
      (fun n ->
        ( string_of_int n,
          Pool.map (fun (make, seed_base) -> throughput_of make seed_base n) systems ))
      node_counts
  in
  {
    Report.title = Printf.sprintf "Fig. 9%s: Bank, %s" label
        (if read_ratio > 0.7 then "90% read / 10% write" else "50% read / 50% write");
    x_label = "nodes";
    columns = [ "qr-dtm"; "hyflow-tfa"; "decent-stm" ];
    rows;
    notes = [ "expected: hyflow > qr-dtm > decent-stm (hyflow is not fault-tolerant)" ];
  }

let fig9 ?(scale = quick) () =
  [
    fig9_series ~scale ~read_ratio:0.5 ~label:"a";
    fig9_series ~scale ~read_ratio:0.9 ~label:"b";
  ]

(* --- Fig. 10: throughput under node failures -------------------------- *)

let failure_schedule ~nodes ~read_level ~count =
  let scratch = Quorum.Tree_quorum.create ~read_level ~nodes () in
  let tree = Quorum.Tree_quorum.tree scratch in
  let rec choose chosen remaining =
    if remaining = 0 then List.rev chosen
    else begin
      match Quorum.Tree_quorum.read_quorum ~salt:0 scratch with
      | None -> List.rev chosen
      | Some quorum ->
        (* Prefer a member with children: its substitution grows the quorum. *)
        let victim =
          match List.find_opt (fun n -> not (Quorum.Tree.is_leaf tree n)) quorum with
          | Some n -> Some n
          | None -> List.nth_opt quorum 0
        in
        begin
          match victim with
          | None -> List.rev chosen
          | Some v ->
            Quorum.Tree_quorum.mark_failed scratch v;
            choose (v :: chosen) (remaining - 1)
        end
    end
  in
  choose [] count

let fig10 ?(scale = quick) () =
  (* The paper's initial throughput *rise* under failures requires the
     single-node read quorum (the tree root) to be the capacity bottleneck
     before the first failure: a read-heavy mix, enough clients, and a
     per-message service cost that dominates — hence the overrides below
     rather than the generic scale. *)
  let nodes = 28 and read_level = 0 in
  let clients = Stdlib.max 40 scale.clients and service_time = 2.5 in
  let read_ratio = 0.9 in
  let failure_counts = [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let benchmarks =
    [ Benchmarks.Hashmap.benchmark; Benchmarks.Bst.benchmark; Benchmarks.Vacation.benchmark ]
  in
  let max_failures = List.fold_left Stdlib.max 0 failure_counts in
  let all_victims = failure_schedule ~nodes ~read_level ~count:max_failures in
  let survivors =
    List.filter (fun n -> not (List.mem n all_victims)) (List.init nodes Fun.id)
  in
  let throughput_of benchmark failures =
    let params =
      { (base_params (benchmark : Benchmarks.Workload.benchmark).name) with read_ratio }
    in
    let victims = failure_schedule ~nodes ~read_level ~count:failures in
    let result =
      Sweep.averaged ~trials:scale.trials (fun ~seed ->
          Experiment.run ~nodes ~read_level ~seed ~clients ~service_time
            ~warmup:scale.warmup ~duration:scale.duration ~client_nodes:survivors
            ~prepare:(fun cluster ->
              List.iteri
                (fun i node ->
                  Cluster.fail_node_at cluster ~at:(100. +. (50. *. Float.of_int i)) ~node)
                victims)
            ~config:(Config.default Config.Closed)
            ~benchmark ~params ())
    in
    result.Experiment.throughput
  in
  let rows =
    Pool.map
      (fun failures ->
        ( string_of_int failures,
          Pool.map (fun benchmark -> throughput_of benchmark failures) benchmarks ))
      failure_counts
  in
  {
    Report.title = "Fig. 10: throughput under increasing node failures (28 nodes)";
    x_label = "failed";
    columns = [ "hashmap"; "bst"; "vacation" ];
    rows;
    notes =
      [
        "expected: throughput rises for the first failures (read load spreads off the \
         root), then degrades gracefully as read quorums grow";
      ];
  }

(* --- Headline summary -------------------------------------------------- *)

let summary ?(scale = quick) () =
  let per_benchmark =
    Pool.map
      (fun (benchmark : Benchmarks.Workload.benchmark) ->
        let params = reference_params benchmark.name in
        let result_of mode =
          Sweep.averaged ~trials:scale.trials (fun ~seed ->
              run_point ~scale ~config:(Config.default mode) ~benchmark ~params ~seed)
        in
        match Pool.map result_of modes with
        | [ flat; closed; chk ] -> (benchmark.name, flat, closed, chk)
        | _ -> assert false)
      Benchmarks.Registry.paper_suite
  in
  let speedup flat other =
    Report.pct_change ~baseline:flat.Experiment.throughput other.Experiment.throughput
  in
  let rows =
    List.map
      (fun (name, flat, closed, chk) ->
        ( name,
          [
            speedup flat closed;
            speedup flat chk;
            Report.pct_change
              ~baseline:(Float.of_int (flat.Experiment.root_aborts + flat.partial_aborts))
              (Float.of_int (closed.Experiment.root_aborts + closed.partial_aborts));
            Report.pct_change
              ~baseline:(Float.of_int flat.Experiment.messages)
              (Float.of_int closed.Experiment.messages);
          ] ))
      per_benchmark
  in
  let mean idx =
    let values = List.map (fun (_, vs) -> List.nth vs idx) rows in
    List.fold_left ( +. ) 0. values /. Float.of_int (List.length values)
  in
  let rows = rows @ [ ("AVERAGE", [ mean 0; mean 1; mean 2; mean 3 ]) ] in
  let latency_of pick_mode =
    let avg f =
      let values = List.map (fun entry -> f (pick_mode entry)) per_benchmark in
      List.fold_left ( +. ) 0. values /. Float.of_int (Stdlib.max 1 (List.length values))
    in
    Printf.sprintf "p50=%.1f p95=%.1f p99=%.1f"
      (avg (fun (r : Experiment.result) -> r.p50_latency))
      (avg (fun (r : Experiment.result) -> r.p95_latency))
      (avg (fun (r : Experiment.result) -> r.p99_latency))
  in
  {
    Report.title =
      "Headline summary: closed nesting & checkpointing vs flat (reference point)";
    x_label = "benchmark";
    columns =
      [ "closed speedup %"; "chk speedup %"; "closed abort delta %"; "closed msg delta %" ];
    rows;
    notes =
      [
        "paper: closed avg +53% (max +101%), checkpointing -16%, abort -33%, messages -34%";
        Printf.sprintf "commit latency ms (suite average): flat %s | closed %s | chk %s"
          (latency_of (fun (_, flat, _, _) -> flat))
          (latency_of (fun (_, _, closed, _) -> closed))
          (latency_of (fun (_, _, _, chk) -> chk));
      ];
  }

(* --- whole-evaluation driver ------------------------------------------- *)

(* The full figure/table sweep, in the order `qr-dtm all` prints it.  Each
   group below is independent, so the groups themselves are pool tasks; the
   per-point fan-out inside them supplies the rest of the parallelism. *)
let everything ?(scale = quick) () =
  let groups =
    List.map
      (fun (benchmark : Benchmarks.Workload.benchmark) () ->
        [ fig5 ~scale ~benchmark (); fig6 ~scale ~benchmark (); fig7 ~scale ~benchmark () ])
      Benchmarks.Registry.paper_suite
    @ [
        (fun () -> [ table8 ~scale () ]);
        (fun () -> fig9 ~scale ());
        (fun () -> [ fig10 ~scale () ]);
        (fun () -> [ summary ~scale () ]);
      ]
  in
  List.concat (Pool.map (fun group -> group ()) groups)
