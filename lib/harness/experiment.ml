open Core

type result = {
  label : string;
  duration : float;
  commits : int;
  read_only_commits : int;
  throughput : float;
  root_aborts : int;
  partial_aborts : int;
  abort_rate : float;
  ct_commits : int;
  checkpoints : int;
  messages : int;
  messages_by_kind : (string * int) list;
  remote_reads : int;
  local_reads : int;
  mean_latency : float;
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  speculation_aborts : int;
  batches : int;
  batch_occupancy_p50 : float;
  batch_occupancy_p95 : float;
  cross_shard_commits : int;
  cross_shard_aborts : int;
  cross_shard_share : float;
  invariant : (unit, string) Stdlib.result;
  consistent : (unit, string) Stdlib.result;
}

let pp_result fmt r =
  let status = function Ok () -> "ok" | Error msg -> "FAILED: " ^ msg in
  Format.fprintf fmt
    "%s: %.1f txn/s (%d commits, %d ro) aborts[root=%d partial=%d rate=%.3f] msgs=%d \
     reads[remote=%d local=%d] latency[mean=%.1f p50=%.1f p95=%.1f p99=%.1f] \
     invariant=%s oracle=%s"
    r.label r.throughput r.commits r.read_only_commits r.root_aborts r.partial_aborts
    r.abort_rate r.messages r.remote_reads r.local_reads r.mean_latency r.p50_latency
    r.p95_latency r.p99_latency
    (status r.invariant) (status r.consistent);
  (* Rendered only for runs that saw cross-shard traffic, so unsharded
     output stays byte-stable. *)
  if r.cross_shard_commits > 0 || r.cross_shard_aborts > 0 then
    Format.fprintf fmt " xshard[commits=%d aborts=%d share=%.3f]"
      r.cross_shard_commits r.cross_shard_aborts r.cross_shard_share

(* Snapshot of every counter at the close of the measurement window. *)
type snapshot = {
  s_commits : int;
  s_ro : int;
  s_root_aborts : int;
  s_partial : int;
  s_ct : int;
  s_chk : int;
  s_msgs : int;
  s_by_kind : (string * int) list;
  s_remote : int;
  s_local : int;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_spec_aborts : int;
  s_batches : int;
  s_occ_p50 : float;
  s_occ_p95 : float;
  s_xs_commits : int;
  s_xs_aborts : int;
  s_xs_share : float;
}

let snapshot_of metrics ~messages ~by_kind =
  let latencies = Metrics.latency_stats metrics in
  {
    s_commits = Metrics.commits metrics;
    s_ro = Metrics.read_only_commits metrics;
    s_root_aborts = Metrics.root_aborts metrics;
    s_partial = Metrics.partial_aborts metrics;
    s_ct = Metrics.ct_commits metrics;
    s_chk = Metrics.checkpoints metrics;
    s_msgs = messages;
    s_by_kind = by_kind;
    s_remote = Metrics.remote_reads metrics;
    s_local = Metrics.local_reads metrics;
    s_mean = Util.Stats.mean latencies;
    s_p50 = Metrics.latency_percentile metrics 50.;
    s_p95 = Metrics.latency_percentile metrics 95.;
    s_p99 = Metrics.latency_percentile metrics 99.;
    s_spec_aborts = Metrics.speculation_aborts metrics;
    s_batches = Metrics.batches metrics;
    s_occ_p50 = Metrics.batch_occupancy_percentile metrics 50.;
    s_occ_p95 = Metrics.batch_occupancy_percentile metrics 95.;
    s_xs_commits = Metrics.cross_shard_commits metrics;
    s_xs_aborts = Metrics.cross_shard_aborts metrics;
    s_xs_share = Metrics.cross_shard_share metrics;
  }

let result_of_snapshot ~label ~duration ~invariant ~consistent s =
  let attempts = s.s_commits + s.s_root_aborts + s.s_partial in
  {
    label;
    duration;
    commits = s.s_commits;
    read_only_commits = s.s_ro;
    throughput = (if duration <= 0. then 0. else Float.of_int s.s_commits /. (duration /. 1000.));
    root_aborts = s.s_root_aborts;
    partial_aborts = s.s_partial;
    abort_rate =
      (if attempts = 0 then 0.
       else Float.of_int (s.s_root_aborts + s.s_partial) /. Float.of_int attempts);
    ct_commits = s.s_ct;
    checkpoints = s.s_chk;
    messages = s.s_msgs;
    messages_by_kind = s.s_by_kind;
    remote_reads = s.s_remote;
    local_reads = s.s_local;
    mean_latency = s.s_mean;
    p50_latency = s.s_p50;
    p95_latency = s.s_p95;
    p99_latency = s.s_p99;
    speculation_aborts = s.s_spec_aborts;
    batches = s.s_batches;
    batch_occupancy_p50 = s.s_occ_p50;
    batch_occupancy_p95 = s.s_occ_p95;
    cross_shard_commits = s.s_xs_commits;
    cross_shard_aborts = s.s_xs_aborts;
    cross_shard_share = s.s_xs_share;
    invariant;
    consistent;
  }

let run ?(nodes = 13) ?(spares = 0) ?(seed = 97) ?(read_level = 1) ?(clients = 26)
    ?(warmup = 2_000.) ?(duration = 30_000.) ?(with_oracle = true) ?(service_time = 0.25)
    ?client_nodes ?prepare ?(tracer = Obs.Tracer.null) ?(batch_fanout = true)
    ?(batch_commit = false) ?(shards = 1) ?telemetry ~config ~benchmark ~params () =
  let cluster =
    Cluster.create ~nodes ~spares ~seed ~read_level ~service_time ~with_oracle ~tracer
      ~batch_fanout ~batch_commit ~shards config
  in
  let instance = (benchmark : Benchmarks.Workload.benchmark).setup cluster params in
  Option.iter (fun f -> f cluster) prepare;
  let client_rng = Util.Rng.create (seed * 7919) in
  let stop = ref false in
  let rec client node rng =
    if not !stop then begin
      let program = instance.generate rng in
      Cluster.submit cluster ~node program ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ -> client node rng
          | Executor.Failed _ -> client node rng)
    end
  in
  (* Clients live on [client_nodes] (default: everywhere).  A client whose
     node fail-stops would otherwise spin on dropped requests forever —
     failure experiments place clients on surviving nodes only, matching a
     testbed where a dead machine's threads die with it. *)
  let placements = Array.of_list (Option.value ~default:(List.init nodes Fun.id) client_nodes) in
  for c = 0 to clients - 1 do
    client placements.(c mod Array.length placements) (Util.Rng.split client_rng)
  done;
  (* Warm-up, then zero the counters; snapshot at window close; then stop
     admission and drain so the invariant checks see quiescent replicas. *)
  let snap = ref None in
  Sim.Engine.schedule_at (Cluster.engine cluster) ~time:warmup (fun () ->
      Cluster.reset_counters cluster);
  Sim.Engine.schedule_at (Cluster.engine cluster) ~time:(warmup +. duration) (fun () ->
      stop := true;
      snap :=
        Some
          (snapshot_of (Cluster.metrics cluster)
             ~messages:(Cluster.messages_sent cluster)
             ~by_kind:(Cluster.messages_by_kind cluster)));
  (* Telemetry is pull-model: the harness alternates bounded [run_for]
     windows with counter samples.  No tick event ever enters the engine,
     so the drain still terminates and traced/untraced runs stay
     byte-identical. *)
  (match telemetry with
  | None -> Cluster.drain cluster
  | Some tele ->
    let engine = Cluster.engine cluster in
    let window = Obs.Telemetry.window tele in
    let metrics = Cluster.metrics cluster in
    let sample () =
      Obs.Telemetry.record tele ~time:(Sim.Engine.now engine)
        ~commits:(Metrics.commits metrics)
        ~aborts:(Metrics.total_aborts metrics)
        ~in_flight:(List.length (Cluster.in_flight cluster))
        ~lease_expirations:(Metrics.lease_expirations metrics)
        ~speculation_aborts:(Metrics.speculation_aborts metrics)
        ~batches:(Metrics.batches metrics)
        ~cross_shard_commits:(Metrics.cross_shard_commits metrics)
        ~cross_shard_aborts:(Metrics.cross_shard_aborts metrics)
        ~by_kind:(Cluster.messages_by_kind cluster) ()
    in
    sample ();
    while Sim.Engine.pending engine > 0 do
      Cluster.run_for cluster window;
      sample ()
    done);
  let s =
    match !snap with
    | Some s -> s
    | None -> invalid_arg "Experiment.run: snapshot event never fired"
  in
  let invariant = instance.check () in
  let consistent =
    if with_oracle then Cluster.check_consistency cluster else Ok ()
  in
  let label =
    Printf.sprintf "%s/%s" benchmark.name (Config.mode_name config.Config.mode)
  in
  result_of_snapshot ~label ~duration ~invariant ~consistent s

(* --- generic systems -------------------------------------------------- *)

type system = {
  name : string;
  node_count : int;
  alloc : init:Txn.value -> Ids.obj_id;
  submit : node:int -> (unit -> Txn.t) -> on_done:(Executor.outcome -> unit) -> unit;
  run_for : float -> unit;
  drain : unit -> unit;
  now : unit -> float;
  metrics : Metrics.t;
  messages : unit -> int;
  reset : unit -> unit;
  check : unit -> (unit, string) Stdlib.result;
}

let qr_system ?(nodes = 13) ?(seed = 11) ?(read_level = 1) config =
  let cluster = Cluster.create ~nodes ~seed ~read_level config in
  {
    name = "qr-dtm/" ^ Config.mode_name config.Config.mode;
    node_count = nodes;
    alloc = (fun ~init -> Cluster.alloc_object cluster ~init);
    submit = (fun ~node program ~on_done -> Cluster.submit cluster ~node program ~on_done);
    run_for = (fun d -> Cluster.run_for cluster d);
    drain = (fun () -> Cluster.drain cluster);
    now = (fun () -> Cluster.now cluster);
    metrics = Cluster.metrics cluster;
    messages = (fun () -> Cluster.messages_sent cluster);
    reset = (fun () -> Cluster.reset_counters cluster);
    check = (fun () -> Cluster.check_consistency cluster);
  }

let tfa_system ?(nodes = 13) ?(seed = 13) () =
  let sys = Baselines.Tfa.create ~nodes ~seed () in
  {
    name = "hyflow-tfa";
    node_count = nodes;
    alloc = (fun ~init -> Baselines.Tfa.alloc_object sys ~init);
    submit = (fun ~node program ~on_done -> Baselines.Tfa.submit sys ~node program ~on_done);
    run_for = (fun d -> Baselines.Tfa.run_for sys d);
    drain = (fun () -> Baselines.Tfa.drain sys);
    now = (fun () -> Baselines.Tfa.now sys);
    metrics = Baselines.Tfa.metrics sys;
    messages = (fun () -> Baselines.Tfa.messages_sent sys);
    reset = (fun () -> Baselines.Tfa.reset_counters sys);
    check = (fun () -> Baselines.Tfa.check_consistency sys);
  }

let decent_system ?(nodes = 13) ?(seed = 17) () =
  let sys = Baselines.Decent.create ~nodes ~seed () in
  {
    name = "decent-stm";
    node_count = nodes;
    alloc = (fun ~init -> Baselines.Decent.alloc_object sys ~init);
    submit =
      (fun ~node program ~on_done -> Baselines.Decent.submit sys ~node program ~on_done);
    run_for = (fun d -> Baselines.Decent.run_for sys d);
    drain = (fun () -> Baselines.Decent.drain sys);
    now = (fun () -> Baselines.Decent.now sys);
    metrics = Baselines.Decent.metrics sys;
    messages = (fun () -> Baselines.Decent.messages_sent sys);
    reset = (fun () -> Baselines.Decent.reset_counters sys);
    check = (fun () -> Baselines.Decent.check_consistency sys);
  }

let run_system system ?(clients = 26) ?(warmup = 2_000.) ?(duration = 30_000.) ~gen_txn
    ~seed () =
  let client_rng = Util.Rng.create (seed * 6271) in
  let stop = ref false in
  let rec client node rng =
    if not !stop then begin
      let program = gen_txn rng in
      system.submit ~node program ~on_done:(fun _ -> client node rng)
    end
  in
  for c = 0 to clients - 1 do
    client (c mod system.node_count) (Util.Rng.split client_rng)
  done;
  system.run_for warmup;
  system.reset ();
  system.run_for duration;
  stop := true;
  let s =
    snapshot_of system.metrics ~messages:(system.messages ()) ~by_kind:[]
  in
  system.drain ();
  result_of_snapshot ~label:system.name ~duration ~invariant:(Ok ())
    ~consistent:(system.check ()) s
