type series = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (string * float list) list;
  notes : string list;
}

(* NaN cells (e.g. a percentage change against a zero baseline) render as
   "n/a" rather than masquerading as a real number. *)
let cell fmt v = if Float.is_nan v then "n/a" else Printf.sprintf fmt v

let render s =
  let table = Util.Table.create ~header:(s.x_label :: s.columns) in
  List.iter
    (fun (x, values) ->
      Util.Table.add_row table (x :: List.map (fun v -> cell "%.2f" v) values))
    s.rows;
  let body = Util.Table.render table in
  let notes =
    match s.notes with
    | [] -> ""
    | notes -> String.concat "\n" (List.map (fun n -> "  note: " ^ n) notes) ^ "\n"
  in
  Printf.sprintf "== %s ==\n%s%s" s.title body notes

let render_many series = String.concat "\n" (List.map render series)

let to_csv s =
  let table = Util.Table.create ~header:(s.x_label :: s.columns) in
  List.iter
    (fun (x, values) ->
      Util.Table.add_row table
        (x :: List.map (fun v -> if Float.is_nan v then "nan" else Printf.sprintf "%.4f" v) values))
    s.rows;
  Util.Table.render_csv table

(* A change against a zero baseline has no meaningful percentage: report it
   as [nan] (rendered "n/a") instead of a silent 0 that would read as "no
   change".  Both zero is genuinely no change. *)
let pct_change ~baseline v =
  if baseline = 0. then (if v = 0. then 0. else Float.nan)
  else (v -. baseline) /. baseline *. 100.

let of_telemetry ?(title = "telemetry") tele =
  match Obs.Telemetry.columns tele with
  | [] -> invalid_arg "Report.of_telemetry: no columns"
  | time_col :: columns ->
    {
      title;
      x_label = time_col;
      columns;
      rows =
        List.map
          (fun (time, row) -> (Printf.sprintf "%.0f" time, row))
          (Obs.Telemetry.rows tele);
      notes =
        [
          Printf.sprintf "sampling window %.0f ms; rates are per-window deltas"
            (Obs.Telemetry.window tele);
        ];
    }
