let combine_checks a b =
  match (a, b) with
  | Ok (), Ok () -> Ok ()
  | (Error _ as e), _ | _, (Error _ as e) -> e

let mean_int xs = List.fold_left ( + ) 0 xs / Stdlib.max 1 (List.length xs)

let mean_float xs =
  List.fold_left ( +. ) 0. xs /. Float.of_int (Stdlib.max 1 (List.length xs))

let averaged ~trials run =
  assert (trials >= 1);
  (* Each trial is an independent, self-seeded simulation: fan them across
     the domain pool.  Results come back in trial order, so the averages
     below fold in the same order as the historical sequential code. *)
  let results = Pool.map (fun i -> run ~seed:(101 + (37 * i))) (List.init trials Fun.id) in
  match results with
  | [] -> assert false
  | first :: _ ->
    let pick f = List.map f results in
    {
      first with
      Experiment.commits = mean_int (pick (fun r -> r.Experiment.commits));
      read_only_commits = mean_int (pick (fun r -> r.Experiment.read_only_commits));
      throughput = mean_float (pick (fun r -> r.Experiment.throughput));
      root_aborts = mean_int (pick (fun r -> r.Experiment.root_aborts));
      partial_aborts = mean_int (pick (fun r -> r.Experiment.partial_aborts));
      abort_rate = mean_float (pick (fun r -> r.Experiment.abort_rate));
      ct_commits = mean_int (pick (fun r -> r.Experiment.ct_commits));
      checkpoints = mean_int (pick (fun r -> r.Experiment.checkpoints));
      messages = mean_int (pick (fun r -> r.Experiment.messages));
      remote_reads = mean_int (pick (fun r -> r.Experiment.remote_reads));
      local_reads = mean_int (pick (fun r -> r.Experiment.local_reads));
      mean_latency = mean_float (pick (fun r -> r.Experiment.mean_latency));
      p50_latency = mean_float (pick (fun r -> r.Experiment.p50_latency));
      p95_latency = mean_float (pick (fun r -> r.Experiment.p95_latency));
      p99_latency = mean_float (pick (fun r -> r.Experiment.p99_latency));
      invariant =
        List.fold_left combine_checks (Ok ()) (pick (fun r -> r.Experiment.invariant));
      consistent =
        List.fold_left combine_checks (Ok ()) (pick (fun r -> r.Experiment.consistent));
    }

let throughputs ~trials ~xs run =
  Pool.map (fun x -> (x, averaged ~trials (fun ~seed -> run ~x ~seed))) xs
