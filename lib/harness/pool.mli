(** Domain-parallel execution of independent simulation runs.

    A single global pool fans submitted thunks across OCaml 5 domains.
    With [jobs () = 1] (the library default) everything runs inline on the
    calling domain, byte-identical to the historical sequential harness;
    drivers opt into parallelism with {!set_jobs} (the CLI's [--jobs]
    flag, default {!default_jobs}).

    Thunks must be self-contained: they may not share mutable state with
    each other (each experiment builds its own simulator, RNG streams and
    metrics, so whole experiment runs qualify — see DESIGN.md, "Parallel
    safety").  Results are collected in submission order, so {!map} is
    observationally equivalent to [List.map] regardless of [jobs].

    Awaiting is {e work-helping}: an executor blocked on a pending future
    runs other queued tasks meanwhile, so tasks may themselves call {!map}
    (nested fan-out) without deadlocking the fixed-size pool. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for [--jobs]. *)

val jobs : unit -> int
(** Currently configured parallelism (1 = sequential, no domains). *)

val set_jobs : int -> unit
(** Set the number of concurrent executors (clamped to >= 1).  Shuts down
    any existing worker domains; the pool respawns lazily at the next
    parallel call.  Call from the main domain only, between parallel
    sections. *)

val shutdown : unit -> unit
(** Join all worker domains (also registered via [at_exit]). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], results in submission (list) order.  Exceptions
    raised by [f] are re-raised at the corresponding position. *)

val run : (unit -> 'a) -> 'a
(** Run one thunk through the pool (inline when [jobs () = 1]). *)

val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Evaluate two thunks, potentially concurrently. *)
