open Core

(* Open-loop workload driver: requests arrive by a Poisson process at a
   configured offered load, from a logical client population that can
   number in the millions — no per-client record exists; each arrival
   derives its client's RNG on the fly from (seed, client, arrival index),
   so resident state is O(backlog), not O(population).

   Closed-loop harnesses (Experiment.run) measure the system the clients
   let them measure: when the system slows, the clients slow with it and
   latency percentiles flatten.  Open-loop arrivals do not wait — excess
   offered load piles into per-node admission queues, and the driver
   reports queueing delay (arrival -> admission) separately from service
   latency (admission -> completion).  Under saturation the former grows
   without bound while the latter stays flat; conflating them is the
   classic coordinated-omission mistake.  Percentiles come from the
   constant-memory HDR histograms in Core.Metrics, so p50/p95/p99 survive
   millions of samples without storing them. *)

type result = {
  label : string;
  duration : float;  (** measurement window, simulated ms *)
  offered_load : float;  (** configured arrivals per second *)
  achieved_load : float;  (** completions per second inside the window *)
  population : int;  (** logical clients *)
  arrivals : int;  (** arrivals inside the measurement window *)
  completions : int;
  commits : int;
  aborts : int;
  service_mean : float;
  service_p50 : float;
  service_p95 : float;
  service_p99 : float;
  queue_mean : float;
  queue_p50 : float;
  queue_p95 : float;
  queue_p99 : float;
  peak_backlog : int;  (** high-water mark of queued-but-unadmitted requests *)
  final_backlog : int;  (** backlog at window close — nonzero means saturated *)
  invariant : (unit, string) Stdlib.result;
  consistent : (unit, string) Stdlib.result;
}

let pp_result fmt r =
  let status = function Ok () -> "ok" | Error msg -> "FAILED: " ^ msg in
  Format.fprintf fmt
    "%s: offered=%.1f/s achieved=%.1f/s (pop=%d, %d arrivals, %d done) \
     service[mean=%.2f p50=%.2f p95=%.2f p99=%.2f] queue[mean=%.2f p50=%.2f \
     p95=%.2f p99=%.2f] backlog[peak=%d final=%d] invariant=%s oracle=%s"
    r.label r.offered_load r.achieved_load r.population r.arrivals
    r.completions r.service_mean r.service_p50 r.service_p95 r.service_p99
    r.queue_mean r.queue_p50 r.queue_p95 r.queue_p99 r.peak_backlog
    r.final_backlog (status r.invariant) (status r.consistent)

let to_json r =
  let b = Buffer.create 512 in
  let field ?(last = false) name v =
    Buffer.add_string b (Printf.sprintf "  %S: %s%s\n" name v
                           (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "label" (Printf.sprintf "%S" r.label);
  field "duration_ms" (Printf.sprintf "%.1f" r.duration);
  field "offered_load_per_s" (Printf.sprintf "%.3f" r.offered_load);
  field "achieved_load_per_s" (Printf.sprintf "%.3f" r.achieved_load);
  field "population" (string_of_int r.population);
  field "arrivals" (string_of_int r.arrivals);
  field "completions" (string_of_int r.completions);
  field "commits" (string_of_int r.commits);
  field "aborts" (string_of_int r.aborts);
  field "service_mean_ms" (Printf.sprintf "%.4f" r.service_mean);
  field "service_p50_ms" (Printf.sprintf "%.4f" r.service_p50);
  field "service_p95_ms" (Printf.sprintf "%.4f" r.service_p95);
  field "service_p99_ms" (Printf.sprintf "%.4f" r.service_p99);
  field "queue_mean_ms" (Printf.sprintf "%.4f" r.queue_mean);
  field "queue_p50_ms" (Printf.sprintf "%.4f" r.queue_p50);
  field "queue_p95_ms" (Printf.sprintf "%.4f" r.queue_p95);
  field "queue_p99_ms" (Printf.sprintf "%.4f" r.queue_p99);
  field "peak_backlog" (string_of_int r.peak_backlog);
  field "final_backlog" (string_of_int r.final_backlog);
  field "invariant"
    (match r.invariant with Ok () -> "\"ok\"" | Error m -> Printf.sprintf "%S" m);
  field ~last:true "oracle"
    (match r.consistent with Ok () -> "\"ok\"" | Error m -> Printf.sprintf "%S" m);
  Buffer.add_string b "}";
  Buffer.contents b

(* Deterministic per-arrival RNG: the "lazy client state".  A logical
   client is nothing but a number; each of its requests is a pure function
   of (seed, client, global arrival ordinal), so a million-client
   population costs no resident memory at all. *)
let client_rng ~seed ~client ~nth =
  Util.Rng.create
    ((seed * 0x9e3779b9) lxor (client * 0x85ebca6b) lxor (nth * 0xc2b2ae35))

let run ?(nodes = 13) ?(seed = 97) ?(read_level = 1) ?(warmup = 2_000.)
    ?(duration = 30_000.) ?(with_oracle = true) ?(service_time = 0.25)
    ?(tracer = Obs.Tracer.null) ?(batch_fanout = true) ?(batch_commit = false)
    ?(shards = 1) ?(population = 1_000_000) ?(max_per_node = 4) ~rate ~config
    ~benchmark ~params () =
  if rate <= 0. then invalid_arg "Openloop.run: rate must be positive";
  if population <= 0 then invalid_arg "Openloop.run: population must be positive";
  if max_per_node <= 0 then invalid_arg "Openloop.run: max_per_node must be positive";
  let cluster =
    Cluster.create ~nodes ~seed ~read_level ~service_time ~with_oracle ~tracer
      ~batch_fanout ~batch_commit ~shards config
  in
  let instance = (benchmark : Benchmarks.Workload.benchmark).setup cluster params in
  let engine = Cluster.engine cluster in
  let metrics = Cluster.metrics cluster in
  let arrival_rng = Util.Rng.create (seed * 7919) in
  let mean_gap = 1000. /. rate (* ms between arrivals *) in
  (* Per-node admission: [in_service] below the cap submits immediately;
     beyond it the arrival waits in the node's FIFO and its queueing delay
     is measured arrival -> admission. *)
  let queues = Array.init nodes (fun _ -> Queue.create ()) in
  let in_service = Array.make nodes 0 in
  let backlog = ref 0 in
  let peak_backlog = ref 0 in
  let arrivals = ref 0 in
  let stop = ref false in
  let rec submit ~node ~client ~nth ~arrived =
    in_service.(node) <- in_service.(node) + 1;
    let queue_delay = Sim.Engine.now engine -. arrived in
    let program = instance.generate (client_rng ~seed ~client ~nth) in
    let admitted = Sim.Engine.now engine in
    Cluster.submit cluster ~node program ~on_done:(fun outcome ->
        let now = Sim.Engine.now engine in
        Metrics.note_open_loop_done metrics ~queue_delay ~service:(now -. admitted);
        ignore (outcome : Executor.outcome);
        in_service.(node) <- in_service.(node) - 1;
        match Queue.take_opt queues.(node) with
        | None -> ()
        | Some (client, nth, arrived) ->
          decr backlog;
          submit ~node ~client ~nth ~arrived)
  in
  (* The arrival ordinal doubles as the per-request RNG salt: a client
     firing twice draws two different transactions, and no per-client
     counter (or any per-client state at all) needs to exist. *)
  let total_arrivals = ref 0 in
  let arrive () =
    incr arrivals;
    Metrics.note_open_loop_arrival metrics;
    let client = Util.Rng.int arrival_rng population in
    let nth = !total_arrivals in
    incr total_arrivals;
    let node = client mod nodes in
    if in_service.(node) < max_per_node then
      submit ~node ~client ~nth ~arrived:(Sim.Engine.now engine)
    else begin
      Queue.push (client, nth, Sim.Engine.now engine) queues.(node);
      incr backlog;
      if !backlog > !peak_backlog then peak_backlog := !backlog
    end
  in
  let rec pump () =
    if not !stop then begin
      let gap = Util.Rng.exponential arrival_rng ~mean:mean_gap in
      Sim.Engine.schedule_at engine
        ~time:(Sim.Engine.now engine +. gap)
        (fun () ->
          if not !stop then begin
            arrive ();
            pump ()
          end)
    end
  in
  pump ();
  (* Warm-up, then zero counters (and the warm-up's backlog watermark);
     snapshot raw counts at window close; stop arrivals there and drain the
     backlog so the invariant checks see quiescent replicas. *)
  let snap = ref None in
  Sim.Engine.schedule_at engine ~time:warmup (fun () ->
      Cluster.reset_counters cluster;
      arrivals := 0;
      peak_backlog := !backlog);
  Sim.Engine.schedule_at engine ~time:(warmup +. duration) (fun () ->
      stop := true;
      snap :=
        Some
          ( !arrivals,
            Metrics.open_loop_completions metrics,
            Metrics.commits metrics,
            Metrics.total_aborts metrics,
            !backlog ));
  Cluster.drain cluster;
  let arrived, completed, commits, aborts, final_backlog =
    match !snap with
    | Some s -> s
    | None -> invalid_arg "Openloop.run: snapshot event never fired"
  in
  let qd = Metrics.open_queue_delay metrics in
  let sv = Metrics.open_service metrics in
  let invariant = instance.check () in
  let consistent =
    if with_oracle then Cluster.check_consistency cluster else Ok ()
  in
  {
    label =
      Printf.sprintf "%s/%s/open-loop" benchmark.name
        (Config.mode_name config.Config.mode);
    duration;
    offered_load = rate;
    achieved_load =
      (if duration <= 0. then 0.
       else Float.of_int completed /. (duration /. 1000.));
    population;
    arrivals = arrived;
    completions = completed;
    commits;
    aborts;
    service_mean = Util.Hdr.mean sv;
    service_p50 = Util.Hdr.percentile sv 50.;
    service_p95 = Util.Hdr.percentile sv 95.;
    service_p99 = Util.Hdr.percentile sv 99.;
    queue_mean = Util.Hdr.mean qd;
    queue_p50 = Util.Hdr.percentile qd 50.;
    queue_p95 = Util.Hdr.percentile qd 95.;
    queue_p99 = Util.Hdr.percentile qd 99.;
    peak_backlog = !peak_backlog;
    final_backlog;
    invariant;
    consistent;
  }
