(** Parameter sweeps with trial averaging.

    Both entry points submit their independent, per-seed runs to
    {!Pool}, so they parallelise across domains when the driver has
    called [Pool.set_jobs]; results are folded in deterministic
    (submission) order, making the output identical at any job count. *)

val averaged : trials:int -> (seed:int -> Experiment.result) -> Experiment.result
(** Run the experiment [trials] times with distinct seeds and return the
    first result with its counters and rates replaced by trial means
    (checks are the conjunction over trials). *)

val throughputs :
  trials:int -> xs:'a list -> (x:'a -> seed:int -> Experiment.result) -> ('a * Experiment.result) list
(** One averaged result per x value. *)
