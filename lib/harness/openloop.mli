(** Open-loop workload driver: Poisson arrivals at a configured offered
    load over a logical client population in the millions.

    Closed-loop harnesses ({!Experiment.run}) measure the system the
    clients let them measure: when the system slows, the clients slow with
    it and latency percentiles flatten.  Here arrivals do not wait —
    inter-arrival gaps are exponential with mean [1000/rate] ms, and
    excess offered load piles into per-node admission queues.  The driver
    therefore reports {b queueing delay} (arrival → admission) separately
    from {b service latency} (admission → completion): under saturation
    the former grows without bound while the latter stays flat, and
    conflating them is the classic coordinated-omission mistake.

    {b Lazy client state.}  A logical client is nothing but a number in
    [0, population): its home node is [client mod nodes] and each of its
    requests derives a fresh RNG from (seed, client, arrival ordinal), so
    no per-client record exists — resident memory is O(backlog), not
    O(population), and a ≥1M-client run fits comfortably.  Object and
    shard skew come from the workload's own [params] (Zipf [key_skew] /
    [shard_skew]), exactly as in closed-loop runs.

    {b Percentiles.}  Latency and queue-delay samples land in the
    constant-memory {!Util.Hdr} histograms on {!Core.Metrics}, so
    p50/p95/p99 survive millions of samples without storing them.

    Deterministic per seed, like every other driver in the harness. *)

type result = {
  label : string;
  duration : float;  (** measurement window, simulated ms *)
  offered_load : float;  (** configured arrivals per second *)
  achieved_load : float;  (** completions per second inside the window *)
  population : int;  (** logical clients *)
  arrivals : int;  (** arrivals inside the measurement window *)
  completions : int;
  commits : int;
  aborts : int;
  service_mean : float;
  service_p50 : float;
  service_p95 : float;
  service_p99 : float;
  queue_mean : float;
  queue_p50 : float;
  queue_p95 : float;
  queue_p99 : float;
  peak_backlog : int;
      (** high-water mark of queued-but-unadmitted requests (measurement
          window onwards) *)
  final_backlog : int;
      (** backlog at window close — growing/nonzero means the offered load
          exceeded capacity (saturation) *)
  invariant : (unit, string) Stdlib.result;
  consistent : (unit, string) Stdlib.result;
}

val run :
  ?nodes:int ->
  ?seed:int ->
  ?read_level:int ->
  ?warmup:float ->
  ?duration:float ->
  ?with_oracle:bool ->
  ?service_time:float ->
  ?tracer:Obs.Tracer.t ->
  ?batch_fanout:bool ->
  ?batch_commit:bool ->
  ?shards:int ->
  ?population:int ->
  ?max_per_node:int ->
  rate:float ->
  config:Core.Config.t ->
  benchmark:Benchmarks.Workload.benchmark ->
  params:Benchmarks.Workload.params ->
  unit ->
  result
(** [rate] is the offered load in requests per second of simulated time
    ([Invalid_argument] if nonpositive).  [population] (default 1,000,000)
    sizes the logical client space; [max_per_node] (default 4) caps
    concurrently admitted requests per node — beyond it arrivals queue and
    accrue queueing delay.  Warm-up completions are discarded (counter
    reset), arrivals stop at window close, and the remaining backlog
    drains before the invariant/oracle checks run.  Other parameters match
    {!Experiment.run}. *)

val pp_result : Format.formatter -> result -> unit
val to_json : result -> string
