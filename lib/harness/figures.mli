(** Regeneration of every figure and table in the paper's evaluation.

    Each function runs the corresponding experiment sweep and returns a
    {!Report.series} (the rows the paper plots).  Scales control run length:
    {!quick} keeps the whole suite within a couple of minutes for CI and the
    bench harness; {!full} is closer to the paper's steady-state runs.

    Expected shapes (paper §VI): closed nesting above flat everywhere, gap
    widening with write ratio, transaction length and contention;
    checkpointing slightly below flat; HyFlow > QR-DTM > Decent-STM on
    Bank; Fig. 10's failure curve rises for the first failures then degrades
    gracefully. *)

type scale = {
  warmup : float;
  duration : float;
  clients : int;
  trials : int;
}

val quick : scale
val full : scale

val modes : Core.Config.mode list
(** Flat, Closed, Checkpoint — the column order used everywhere. *)

val benchmark_objects : string -> int
(** Default population per benchmark (the Fig. 5/6 operating point). *)

val fig5 : ?scale:scale -> benchmark:Benchmarks.Workload.benchmark -> unit -> Report.series
(** Throughput vs read ratio (0..100%). *)

val fig6 : ?scale:scale -> benchmark:Benchmarks.Workload.benchmark -> unit -> Report.series
(** Throughput vs closed-nested calls (1..5). *)

val fig7 : ?scale:scale -> benchmark:Benchmarks.Workload.benchmark -> unit -> Report.series
(** Throughput vs number of objects. *)

val table8 : ?scale:scale -> unit -> Report.series
(** Percentage change in abort rate and messages, QR-CN and QR-CHK vs flat,
    per benchmark (the paper's Fig. 8 table). *)

val fig9 : ?scale:scale -> unit -> Report.series list
(** QR-DTM vs HyFlow-TFA vs Decent-STM on Bank: (a) 50% reads, (b) 90%
    reads; throughput vs node count. *)

val fig10 : ?scale:scale -> unit -> Report.series
(** Throughput under 0..8 node failures (28 nodes, single-node read quorum
    initially) for Hashmap, BST and Vacation. *)

val failure_schedule : nodes:int -> read_level:int -> count:int -> int list
(** The nodes Fig. 10 fails, in order: each failure is chosen inside the
    current read quorum so the quorum grows by one (exposed for tests). *)

val summary : ?scale:scale -> unit -> Report.series
(** Headline aggregates over the five benchmarks at the reference point:
    closed-nesting speedup, checkpointing slowdown, abort/message deltas —
    the numbers the paper's abstract reports (53%, 101%, −16%, …). *)

val everything : ?scale:scale -> unit -> Report.series list
(** Every figure and table, in the order [qr-dtm all] prints them: fig 5/6/7
    per benchmark, the Fig. 8 table, fig 9a/9b, fig 10, then the summary.
    All independent points are fanned across {!Pool}; the rendered output
    is identical at any job count. *)
