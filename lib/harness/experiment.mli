(** Single-configuration experiment runner.

    One run = build a cluster, set up a benchmark, drive closed-loop
    clients through warm-up and a measurement window, snapshot the counters
    at the window's close, drain, and verify both the benchmark invariant
    and the 1-copy oracle.  All defaults mirror the paper's testbed scaled
    to the simulator (see DESIGN.md). *)

type result = {
  label : string;
  duration : float;  (** measurement window, ms *)
  commits : int;
  read_only_commits : int;
  throughput : float;  (** committed transactions per second *)
  root_aborts : int;
  partial_aborts : int;
  abort_rate : float;  (** aborts / (commits + aborts) *)
  ct_commits : int;
  checkpoints : int;
  messages : int;
  messages_by_kind : (string * int) list;
  remote_reads : int;
  local_reads : int;
  mean_latency : float;
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  speculation_aborts : int;
      (** batch mode: retries forced by a failed predecessor (0 sequential) *)
  batches : int;  (** batch quorum rounds sent (0 sequential) *)
  batch_occupancy_p50 : float;  (** median transactions per batch round *)
  batch_occupancy_p95 : float;
  cross_shard_commits : int;
      (** commits decided through the cross-shard 2PC (0 unsharded) *)
  cross_shard_aborts : int;  (** cross-shard 2PC rounds ending in abort *)
  cross_shard_share : float;  (** fraction of commits that were cross-shard *)
  invariant : (unit, string) Stdlib.result;
  consistent : (unit, string) Stdlib.result;
}

val pp_result : Format.formatter -> result -> unit

val run :
  ?nodes:int ->
  ?spares:int ->
  ?seed:int ->
  ?read_level:int ->
  ?clients:int ->
  ?warmup:float ->
  ?duration:float ->
  ?with_oracle:bool ->
  ?service_time:float ->
  ?client_nodes:int list ->
  ?prepare:(Core.Cluster.t -> unit) ->
  ?tracer:Obs.Tracer.t ->
  ?batch_fanout:bool ->
  ?batch_commit:bool ->
  ?shards:int ->
  ?telemetry:Obs.Telemetry.t ->
  config:Core.Config.t ->
  benchmark:Benchmarks.Workload.benchmark ->
  params:Benchmarks.Workload.params ->
  unit ->
  result
(** Defaults: 13 nodes, 26 clients (2 per node), 2 s warm-up, 30 s
    measurement, oracle on.  [spares] adds dark stand-by machines outside
    the initial view for scenarios with [join]/[replace] events; clients
    default to the initial members only.  [prepare] runs after setup and
    before the clients start — e.g. to schedule failures (Fig. 10).

    [tracer] threads a lifecycle tracer through the cluster (see
    {!Obs.Tracer}); [telemetry] samples windowed time series while the run
    drains, pull-model, without scheduling any engine events — neither
    perturbs results.  [shards] (default 1) partitions the object space
    (see {!Core.Cluster.create}); benchmarks with a cross-shard knob then
    commit a share of their transactions through the cross-shard 2PC. *)

(** {2 Generic systems (Fig. 9 baselines)}

    A first-class handle over any DTM in the repository so one client loop
    drives QR-DTM, TFA and Decent-STM identically. *)

type system = {
  name : string;
  node_count : int;
  alloc : init:Core.Txn.value -> Core.Ids.obj_id;
  submit :
    node:int -> (unit -> Core.Txn.t) -> on_done:(Core.Executor.outcome -> unit) -> unit;
  run_for : float -> unit;
  drain : unit -> unit;
  now : unit -> float;
  metrics : Core.Metrics.t;
  messages : unit -> int;
  reset : unit -> unit;
  check : unit -> (unit, string) Stdlib.result;
}

val qr_system :
  ?nodes:int -> ?seed:int -> ?read_level:int -> Core.Config.t -> system

val tfa_system : ?nodes:int -> ?seed:int -> unit -> system
val decent_system : ?nodes:int -> ?seed:int -> unit -> system

val run_system :
  system ->
  ?clients:int ->
  ?warmup:float ->
  ?duration:float ->
  gen_txn:(Util.Rng.t -> unit -> Core.Txn.t) ->
  seed:int ->
  unit ->
  result
(** Drive [clients] closed-loop clients of [gen_txn] transactions over the
    given system and report the measurement window. *)
