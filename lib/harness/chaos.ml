(* Chaos testing: seeded random fault schedules against a live workload,
   checked by two oracles after the run drains to quiescence —

   - safety: the 1-copy-serializability oracle plus the bank invariant
     (total balance conserved, robust to clients that die mid-run);
   - liveness: a watchdog that samples commit progress on a fixed grid and
     flags any window with in-flight transactions but zero new commits,
     capturing the held leases and live coordinators for the stall report.

   Every run is a pure function of its seed: the schedule is drawn from a
   dedicated [Util.Rng.t] and the cluster/workload reuse the same seed, so
   a failing seed replays exactly.  Unlike the curated failure experiments
   (which keep clients off crash victims), chaos places clients on every
   node — crashing a node that hosts active coordinators is precisely the
   scenario the lease-termination protocol exists for. *)

open Core

type knobs = {
  nodes : int;
  clients : int;
  horizon : float;
  max_crashes : int;
  read_level : int;
  accounts : int;
  calls : int;
  read_ratio : float;
  spares : int;
  reconfigs : int;
  shards : int;
  shard_ops : int;
  cross_shard_prob : float;
}

let default_knobs =
  {
    nodes = 9;
    clients = 18;
    horizon = 8_000.;
    max_crashes = 2;
    read_level = 1;
    accounts = 24;
    calls = 3;
    read_ratio = 0.3;
    spares = 0;
    reconfigs = 0;
    shards = 1;
    shard_ops = 0;
    cross_shard_prob = 0.;
  }

(* Rolling-restart preset: enough spares to keep a replacement pipeline
   going, a longer horizon so every initial node can be swapped out once,
   and a tame crash budget (the churn itself is the fault load). *)
let rolling_knobs =
  { default_knobs with horizon = 16_000.; spares = 2; max_crashes = 1; reconfigs = 0 }

(* {2 Schedule generation} *)

let distinct_nodes rng ~nodes ~count =
  let all = Array.init nodes Fun.id in
  Util.Rng.shuffle rng all;
  Array.to_list (Array.sub all 0 (Stdlib.min count nodes))

let span rng a b = a +. Util.Rng.float rng (b -. a)

(* Mirror of [Cluster.create]'s contiguous initial partition: which shard
   a node replicates before any split rearranges the layout. *)
let initial_shard_of ~nodes ~shards n =
  let base = nodes / shards and rem = nodes mod shards in
  let rec find s =
    let start = (s * base) + Stdlib.min s rem in
    let size = base + if s < rem then 1 else 0 in
    if n < start + size then s else find (s + 1)
  in
  find 0

let generate knobs ~seed =
  let rng = Util.Rng.create (seed lxor 0x5eed_cafe) in
  let h = knobs.horizon in
  let events = ref [] in
  let add e = events := e :: !events in
  (* Nodes already cast in another fault's role; membership churn below
     steers clear of them so a leave never races its victim's crash. *)
  let busy = ref [] in
  (* Crash/recover pairs on distinct victims; every victim recovers well
     before the horizon so the drain phase always has a full machine
     complement to finish with. *)
  let n_crashes = Util.Rng.int rng (knobs.max_crashes + 1) in
  let crash_victims =
    let drawn = distinct_nodes rng ~nodes:knobs.nodes ~count:n_crashes in
    if knobs.shards <= 1 then drawn
    else begin
      (* Sharded clusters: never schedule the simultaneous death of an
         entire shard — no surviving replica could serve its slice or
         hold rescue evidence, and Scenario.validate rejects exactly
         that.  Post-filtering keeps the draw sequence (and so every
         unsharded schedule) unchanged. *)
      let killed = Array.make knobs.shards 0 in
      let size s =
        let base = knobs.nodes / knobs.shards and rem = knobs.nodes mod knobs.shards in
        base + if s < rem then 1 else 0
      in
      List.filter
        (fun node ->
          let s = initial_shard_of ~nodes:knobs.nodes ~shards:knobs.shards node in
          if killed.(s) + 1 < size s then begin
            killed.(s) <- killed.(s) + 1;
            true
          end
          else false)
        drawn
    end
  in
  List.iter
    (fun node ->
      let at = span rng (0.10 *. h) (0.55 *. h) in
      let outage = span rng (0.05 *. h) (0.25 *. h) in
      busy := node :: !busy;
      add (Scenario.Crash { node; at });
      add (Scenario.Recover { node; at = at +. outage }))
    crash_victims;
  (* A minority partition: both sides are named so the scenario layer
     suspects exactly the minority (the majority side keeps its quorums). *)
  if Util.Rng.chance rng 0.5 && knobs.nodes >= 4 then begin
    let minority_size = 1 + Util.Rng.int rng (knobs.nodes / 3) in
    let minority = distinct_nodes rng ~nodes:knobs.nodes ~count:minority_size in
    let majority =
      (* Spares and later joiners must land in the majority group:
         unnamed nodes fall into the network's implicit extra group and
         would be cut off from {e both} sides. *)
      List.init (knobs.nodes + knobs.spares) Fun.id
      |> List.filter (fun n -> not (List.mem n minority))
    in
    busy := minority @ !busy;
    add
      (Scenario.Partition
         {
           groups = [ minority; majority ];
           at = span rng (0.15 *. h) (0.55 *. h);
           duration = span rng (0.05 *. h) (0.20 *. h);
         })
  end;
  if Util.Rng.chance rng 0.6 then
    add
      (Scenario.Drop
         {
           p = span rng 0.01 0.08;
           at = span rng 0. (0.5 *. h);
           duration = Some (span rng (0.10 *. h) (0.40 *. h));
         });
  if Util.Rng.chance rng 0.4 then
    add
      (Scenario.Duplicate
         {
           p = span rng 0.01 0.10;
           at = span rng 0. (0.5 *. h);
           duration = Some (span rng (0.10 *. h) (0.40 *. h));
         });
  if Util.Rng.chance rng 0.4 then
    add
      (Scenario.Spike
         {
           p = span rng 0.05 0.25;
           factor = span rng 2. 6.;
           at = span rng 0. (0.5 *. h);
           duration = Some (span rng (0.10 *. h) (0.30 *. h));
         });
  if Util.Rng.chance rng 0.4 then begin
    match distinct_nodes rng ~nodes:knobs.nodes ~count:2 with
    | [ a; b ] ->
      add
        (Scenario.Flaky
           {
             a;
             b;
             p = span rng 0.1 0.4;
             at = span rng 0. (0.5 *. h);
             duration = Some (span rng (0.10 *. h) (0.30 *. h));
           })
    | _ -> ()
  end;
  if Util.Rng.chance rng 0.3 then begin
    let node = Util.Rng.int rng knobs.nodes in
    busy := node :: !busy;
    add
      (Scenario.Suspect
         {
           node;
           at = span rng (0.10 *. h) (0.60 *. h);
           duration = span rng (0.05 *. h) (0.15 *. h);
         })
  end;
  (* Membership churn: up to [reconfigs] sequential join/leave/replace
     operations over nodes not already cast as crash / partition / suspect
     victims, tracked against the evolving member set so every drawn
     operation is valid when it fires.  Departed nodes recycle through the
     spare pool, so a schedule can leave a node and join it back later.
     All the churn draws happen after the classic ones: a knobs record with
     [reconfigs = 0] reproduces pre-churn schedules byte-for-byte. *)
  if knobs.reconfigs > 0 then begin
    let members = ref (List.init knobs.nodes Fun.id) in
    let pool = ref (List.init knobs.spares (fun i -> knobs.nodes + i)) in
    let floor = Stdlib.max 3 ((knobs.nodes / 2) + 1) in
    let n_ops = Util.Rng.int rng (knobs.reconfigs + 1) in
    let slot i =
      (0.20 *. h)
      +. (Float.of_int i *. (0.55 *. h /. Float.of_int (Stdlib.max 1 n_ops)))
      +. span rng 0. (0.02 *. h)
    in
    for i = 0 to n_ops - 1 do
      let leavable = List.filter (fun n -> not (List.mem n !busy)) !members in
      let can_shrink = List.length !members > floor && leavable <> [] in
      let can_join = !pool <> [] in
      let pick_leaver () =
        List.nth leavable (Util.Rng.int rng (List.length leavable))
      in
      let take_spare () =
        match !pool with
        | j :: rest ->
          pool := rest;
          j
        | [] -> assert false
      in
      let choices =
        (if can_join then [ `Join ] else [])
        @ (if can_shrink then [ `Leave ] else [])
        @ if can_join && leavable <> [] then [ `Replace ] else []
      in
      match choices with
      | [] -> ()
      | _ -> (
        match List.nth choices (Util.Rng.int rng (List.length choices)) with
        | `Join ->
          let j = take_spare () in
          members := j :: !members;
          add (Scenario.Join { node = j; at = slot i })
        | `Leave ->
          let l = pick_leaver () in
          members := List.filter (fun n -> n <> l) !members;
          pool := !pool @ [ l ];
          add (Scenario.Leave { node = l; at = slot i })
        | `Replace ->
          let l = pick_leaver () in
          let j = take_spare () in
          members := j :: List.filter (fun n -> n <> l) !members;
          pool := !pool @ [ l ];
          add (Scenario.Replace { leaving = l; joining = j; at = slot i }))
    done
  end;
  (* Shard-directory churn: up to [shard_ops] sequential moves/splits,
     tracked against a mirror of the runtime directory (splits re-home the
     odd-indexed objects of the split shard, exactly as the cluster does)
     so every drawn operation is valid when it fires.  These draws come
     after every classic one: [shards = 1] or [shard_ops = 0] reproduces
     the pre-shard schedule byte-for-byte. *)
  if knobs.shards > 1 && knobs.shard_ops > 0 then begin
    let dir = Array.init knobs.accounts (fun oid -> oid mod knobs.shards) in
    let sizes =
      let base = knobs.nodes / knobs.shards and rem = knobs.nodes mod knobs.shards in
      ref (List.init knobs.shards (fun s -> base + if s < rem then 1 else 0))
    in
    let shard_count () = List.length !sizes in
    let n_ops = Util.Rng.int rng (knobs.shard_ops + 1) in
    let slot i =
      (0.20 *. h)
      +. (Float.of_int i *. (0.50 *. h /. Float.of_int (Stdlib.max 1 n_ops)))
      +. span rng 0. (0.02 *. h)
    in
    for i = 0 to n_ops - 1 do
      let splittable =
        List.mapi (fun s n -> (s, n)) !sizes |> List.filter (fun (_, n) -> n >= 6)
      in
      if splittable <> [] && Util.Rng.chance rng 0.3 then begin
        let s, n = List.nth splittable (Util.Rng.int rng (List.length splittable)) in
        (* keep ceil(n/2), the new shard gets the rest; odd-indexed
           objects of [s] (in oid order) re-home onto the new shard *)
        let new_id = shard_count () in
        let idx = ref 0 in
        Array.iteri
          (fun oid owner ->
            if owner = s then begin
              if !idx land 1 = 1 then dir.(oid) <- new_id;
              incr idx
            end)
          dir;
        sizes :=
          List.mapi (fun j m -> if j = s then (n + 1) / 2 else m) !sizes @ [ n / 2 ];
        add (Scenario.ShardSplit { shard = s; at = slot i })
      end
      else begin
        let oid = Util.Rng.int rng knobs.accounts in
        let cur = dir.(oid) in
        let to_shard =
          if shard_count () = 1 then cur
          else begin
            let t = Util.Rng.int rng (shard_count () - 1) in
            if t >= cur then t + 1 else t
          end
        in
        if to_shard <> cur then begin
          dir.(oid) <- to_shard;
          add (Scenario.ShardMove { oid; to_shard; at = slot i })
        end
      end
    done
  end;
  List.rev !events

(* A full rolling restart: every initial node is replaced exactly once by
   a spare (departed nodes recycling into the pool), under a concurrent
   crash/recover early in the run and a minority partition cutting off the
   two nodes whose replacement comes last.  Groups name every machine —
   spares included — because unnamed nodes fall into the network's
   implicit extra group. *)
let generate_rolling knobs ~seed =
  if knobs.spares < 1 then
    invalid_arg "Chaos.generate_rolling: rolling restarts need spares >= 1";
  if knobs.nodes < 5 then invalid_arg "Chaos.generate_rolling: needs nodes >= 5";
  let rng = Util.Rng.create (seed lxor 0x0011_ee77) in
  let h = knobs.horizon in
  let total = knobs.nodes + knobs.spares in
  let events = ref [] in
  let add e = events := e :: !events in
  (* One early crash/recover, fully healed before the churn begins. *)
  if knobs.max_crashes > 0 then begin
    let node = Util.Rng.int rng (knobs.nodes - 2) in
    let at = span rng (0.03 *. h) (0.06 *. h) in
    add (Scenario.Crash { node; at });
    add (Scenario.Recover { node; at = at +. span rng (0.04 *. h) (0.08 *. h) })
  end;
  (* Minority partition over the two nodes replaced last, so the churn and
     the partition overlap without ever wedging a reconfiguration on an
     unreachable subject. *)
  let minority = [ knobs.nodes - 2; knobs.nodes - 1 ] in
  let majority =
    List.init total Fun.id |> List.filter (fun n -> not (List.mem n minority))
  in
  add
    (Scenario.Partition
       {
         groups = [ minority; majority ];
         at = span rng (0.28 *. h) (0.32 *. h);
         duration = span rng (0.08 *. h) (0.12 *. h);
       });
  if Util.Rng.chance rng 0.5 then
    add
      (Scenario.Drop
         { p = span rng 0.01 0.05; at = span rng 0. (0.3 *. h); duration = Some (0.3 *. h) });
  (* Replace node i at its slot, drawing replacements from the spare pool;
     each leaver re-enters the pool, so [spares >= 1] suffices for any
     cluster size. *)
  let pool = Queue.create () in
  for s = 0 to knobs.spares - 1 do
    Queue.add (knobs.nodes + s) pool
  done;
  for i = 0 to knobs.nodes - 1 do
    let joining = Queue.pop pool in
    Queue.add i pool;
    add
      (Scenario.Replace
         {
           leaving = i;
           joining;
           at = (0.22 *. h) +. (Float.of_int i *. (0.68 *. h /. Float.of_int knobs.nodes));
         })
  done;
  List.rev !events

let render_schedule events =
  String.concat "; " (List.map (Format.asprintf "%a" Scenario.pp_event) events)

(* {2 Running one schedule} *)

type stall = {
  stall_at : float;
  stall_in_flight : (int * Core.Ids.txn_id) list;
  stall_leases : (int * Core.Ids.obj_id * int * float) list;
}

type result = {
  seed : int;
  events : Scenario.event list;
  commits : int;
  root_aborts : int;
  oracle : (unit, string) Stdlib.result;
  invariant : (unit, string) Stdlib.result;
  stalls : stall list;
  report : Scenario.report;
  quiesced_at : float;
  view_changes : int;
  fenced : int;
  final_epoch : int;
  shards : int;
  xshard_commits : int;
  xshard_aborts : int;
}

let passed r = r.oracle = Ok () && r.invariant = Ok () && r.stalls = []

(* The watchdog window must dwarf every legitimate no-progress interval:
   the full lease-termination pipeline (lease horizon, grace, the bounded
   status rounds) and the longest contiguous fault window in the schedule
   (plus failure detection), with a 2x safety factor so slow-but-alive
   configurations don't trip it. *)
let stall_window (config : Config.t) events =
  let termination =
    config.lease_duration +. config.status_grace
    +. (Float.of_int config.status_attempts *. config.request_timeout)
  in
  (* A reconfiguration legitimately pauses commits for its wedge (two
     request timeouts), a snapshot/handoff round or two, and — when a node
     departs — a lease drain bounded by the lease horizon; overlapping a
     partition can stretch the snapshot until the heal, which the fault
     window of the partition itself already covers. *)
  let reconfig_span =
    (8. *. config.request_timeout) +. config.lease_duration
  in
  let longest_fault =
    List.fold_left
      (fun acc event ->
        let window =
          match event with
          | Scenario.Crash _ | Scenario.Recover _ -> 0.
          | Scenario.Suspect { duration; _ } | Scenario.Partition { duration; _ } ->
            duration
          | Scenario.Drop { duration; _ }
          | Scenario.Duplicate { duration; _ }
          | Scenario.Spike { duration; _ }
          | Scenario.Flaky { duration; _ } ->
            Option.value ~default:0. duration
          | Scenario.Join _ | Scenario.Leave _ | Scenario.Replace _ -> reconfig_span
          (* Shard ops wedge the involved shards for the same pipeline:
             grace, snapshot, handoff, unwedge. *)
          | Scenario.ShardMove _ | Scenario.ShardSplit _ -> reconfig_span
        in
        Float.max acc window)
      0. events
  in
  let crash_outages =
    (* pair each crash with its node's next recovery *)
    List.fold_left
      (fun acc event ->
        match event with
        | Scenario.Crash { node; at } ->
          let recovery =
            List.fold_left
              (fun best e ->
                match e with
                | Scenario.Recover { node = n; at = r } when n = node && r >= at ->
                  Float.min best r
                | _ -> best)
              Float.infinity events
          in
          if Float.is_finite recovery then Float.max acc (recovery -. at) else acc
        | _ -> acc)
      0. events
  in
  2. *. (termination +. Float.max longest_fault crash_outages) +. 1_000.

let run_one ?config ?(tracer = Obs.Tracer.null) ?(batch_fanout = true)
    ?(batch_commit = false) ?(rolling = false) knobs ~seed =
  let config =
    match config with Some c -> c | None -> Config.default Config.Closed
  in
  let events =
    if rolling then generate_rolling knobs ~seed else generate knobs ~seed
  in
  let cluster =
    Cluster.create ~nodes:knobs.nodes ~spares:knobs.spares ~seed
      ~read_level:knobs.read_level ~tracer ~batch_fanout ~batch_commit
      ~shards:knobs.shards config
  in
  let params =
    {
      Benchmarks.Workload.default_params with
      objects = knobs.accounts;
      calls = knobs.calls;
      read_ratio = knobs.read_ratio;
      key_skew = 0.5;
      cross_shard_prob = knobs.cross_shard_prob;
    }
  in
  let instance = Benchmarks.Bank.benchmark.Benchmarks.Workload.setup cluster params in
  let tracker = Scenario.install cluster events in
  (* Closed-loop clients on EVERY node, crash victims included.  A client
     whose node dies is killed with it (Executor.kill_node): its root never
     reports back and it stops resubmitting — exactly a testbed thread
     dying with its machine. *)
  let client_rng = Util.Rng.create (seed * 7919) in
  let stop = ref false in
  (* Clients are membership-aware: a client whose home node has been
     decommissioned resubmits through the next member up (wrapping), like
     an application reconnecting after its server was rotated out.  A
     {e crashed} home stays a member, so crash-death semantics are
     unchanged — the client dies with its machine. *)
  let route home =
    if Cluster.is_member cluster home then home
    else
      let members = Cluster.members cluster in
      match List.find_opt (fun n -> n > home) members with
      | Some n -> n
      | None -> List.hd members
  in
  let rec client node rng =
    if not !stop then begin
      let program = instance.Benchmarks.Workload.generate rng in
      Cluster.submit cluster ~node:(route node) program ~on_done:(fun _ ->
          client node rng)
    end
  in
  for c = 0 to knobs.clients - 1 do
    client (c mod knobs.nodes) (Util.Rng.split client_rng)
  done;
  Sim.Engine.schedule_at (Cluster.engine cluster) ~time:knobs.horizon (fun () ->
      stop := true);
  (* Liveness watchdog: drive the engine in watchdog-window steps instead of
     draining blindly, so a livelock shows up as a stall report rather than
     a hang.  A window with no new commits but live coordinators (or any
     non-quiescent engine once progress has ceased entirely) is a stall;
     after [max_idle] commit-free windows past the horizon the run is
     abandoned and reported.  Termination is structural: post-horizon
     commits are bounded by the surviving clients, so the loop runs at most
     that many progressing windows plus [max_idle]. *)
  let window = stall_window config events in
  let stalls = ref [] in
  let metrics = Cluster.metrics cluster in
  let engine = Cluster.engine cluster in
  let note_stall () =
    Metrics.note_stall metrics;
    stalls :=
      {
        stall_at = Cluster.now cluster;
        stall_in_flight = Cluster.in_flight cluster;
        stall_leases = Cluster.held_leases cluster;
      }
      :: !stalls
  in
  let max_idle = 3 in
  let rec drive ~last_commits ~idle =
    if Sim.Engine.pending engine > 0 then begin
      Cluster.run_for cluster window;
      let commits = Metrics.commits metrics in
      if Sim.Engine.pending engine > 0 then begin
        let progressed = commits > last_commits in
        if (not progressed) && Cluster.in_flight cluster <> [] then note_stall ();
        let idle =
          if progressed || Cluster.now cluster <= knobs.horizon then 0 else idle + 1
        in
        if idle >= max_idle then begin
          (* Abandoned non-quiescent: events keep firing but nothing
             commits — a liveness failure even with no coordinator alive
             (e.g. a recovery or status loop that never converges). *)
          if !stalls = [] then note_stall ()
        end
        else drive ~last_commits:commits ~idle
      end
    end
  in
  drive ~last_commits:0 ~idle:0;
  {
    seed;
    events;
    commits = Metrics.commits metrics;
    root_aborts = Metrics.root_aborts metrics;
    oracle = Cluster.check_consistency cluster;
    invariant = instance.Benchmarks.Workload.check ();
    stalls = List.rev !stalls;
    report = Scenario.report tracker;
    quiesced_at = Cluster.now cluster;
    view_changes = Metrics.view_changes metrics;
    fenced = Cluster.fenced_messages cluster;
    final_epoch = Cluster.epoch cluster;
    shards = Cluster.shard_count cluster;
    xshard_commits = Metrics.cross_shard_commits metrics;
    xshard_aborts = Metrics.cross_shard_aborts metrics;
  }

let run_many ?config ?batch_commit ?rolling knobs ~seed ~runs =
  List.init runs (fun i ->
      run_one ?config ?batch_commit ?rolling knobs ~seed:(seed + i))

(* Offline protocol-invariant pass over a traced run.  Chaos schedules
   change the membership view mid-run, and the structural write-quorum rule
   is view-dependent (a dead leaf contributes nothing; a dead interior node
   is substituted by all its children), so validating voter sets against
   the static full-liveness tree would flag legitimate fault-window commits.
   The trace does not record the view, so we rely on the checker's
   view-independent fallback: pairwise intersection across committed voter
   sets.  [qr-dtm trace] (no fault injection) does use the structural rule. *)
let check_trace _knobs tracer = Obs.Checker.check (Obs.Tracer.events tracer)

let failures results = List.filter (fun r -> not (passed r)) results

(* {2 Rendering} *)

let pp_stall ppf s =
  let flight =
    String.concat ", "
      (List.map (fun (node, txn) -> Printf.sprintf "txn %d@node %d" txn node) s.stall_in_flight)
  in
  let leases =
    String.concat ", "
      (List.map
         (fun (node, oid, owner, expires) ->
           Printf.sprintf "oid %d@node %d owner %d exp %.0f" oid node owner expires)
         s.stall_leases)
  in
  Format.fprintf ppf "stall @%.0f in-flight [%s] leases [%s]" s.stall_at flight leases

let pp_result ppf r =
  let status = function Ok () -> "ok" | Error msg -> "FAILED: " ^ msg in
  Format.fprintf ppf
    "@[<v>seed %d: %s@,\
     schedule: %s@,\
     commits %d, aborts %d, quiesced @%.0f@,\
     oracle %s; invariant %s@,\
     leases[expired=%d presumed=%d rescued=%d] retransmit give-ups %d@,\
     views[changes=%d epoch=%d fenced=%d]@]"
    r.seed
    (if passed r then "PASS" else "FAIL")
    (render_schedule r.events) r.commits r.root_aborts r.quiesced_at (status r.oracle)
    (status r.invariant) r.report.Scenario.lease_expirations
    r.report.Scenario.presumed_aborts r.report.Scenario.rescued_commits
    r.report.Scenario.retransmit_exhausted r.view_changes r.final_epoch r.fenced;
  if r.shards > 1 then
    Format.fprintf ppf "@,shards[n=%d xshard_commits=%d xshard_aborts=%d]" r.shards
      r.xshard_commits r.xshard_aborts;
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stall s) r.stalls

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let result_to_json r =
  let status = function Ok () -> {|"ok"|} | Error msg -> Printf.sprintf "%S" (json_escape msg) in
  let base =
    Printf.sprintf
      {|{"seed":%d,"pass":%b,"schedule":"%s","commits":%d,"root_aborts":%d,"quiesced_at":%.1f,"oracle":%s,"invariant":%s,"stalls":%d,"lease_expired":%d,"presumed_abort":%d,"status_rescued_commits":%d,"stalls_detected":%d,"retransmit_exhausted":%d,"view_changes":%d,"final_epoch":%d,"fenced":%d|}
      r.seed (passed r)
      (json_escape (render_schedule r.events))
      r.commits r.root_aborts r.quiesced_at (status r.oracle) (status r.invariant)
      (List.length r.stalls) r.report.Scenario.lease_expirations
      r.report.Scenario.presumed_aborts r.report.Scenario.rescued_commits
      r.report.Scenario.stalls_detected r.report.Scenario.retransmit_exhausted
      r.view_changes r.final_epoch r.fenced
  in
  (* Shard fields only on sharded runs, so unsharded JSON is unchanged. *)
  let sharded =
    if r.shards <= 1 then ""
    else
      Printf.sprintf {|,"shards":%d,"cross_shard_commits":%d,"cross_shard_aborts":%d|}
        r.shards r.xshard_commits r.xshard_aborts
  in
  base ^ sharded ^ "}"

let results_to_json results =
  "[" ^ String.concat "," (List.map result_to_json results) ^ "]"

let summary results =
  let failed = failures results in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let xc = total (fun r -> r.xshard_commits) and xa = total (fun r -> r.xshard_aborts) in
  Printf.sprintf
    "chaos: %d/%d schedules passed; commits=%d presumed_aborts=%d rescued=%d \
     lease_expirations=%d stalls=%d retransmit_give_ups=%d view_changes=%d \
     fenced=%d%s%s"
    (List.length results - List.length failed)
    (List.length results)
    (total (fun r -> r.commits))
    (total (fun r -> r.report.Scenario.presumed_aborts))
    (total (fun r -> r.report.Scenario.rescued_commits))
    (total (fun r -> r.report.Scenario.lease_expirations))
    (total (fun r -> List.length r.stalls))
    (total (fun r -> r.report.Scenario.retransmit_exhausted))
    (total (fun r -> r.view_changes))
    (total (fun r -> r.fenced))
    (if xc = 0 && xa = 0 then ""
     else Printf.sprintf " cross_shard[commits=%d aborts=%d]" xc xa)
    (if failed = [] then ""
     else
       "; failing seeds: "
       ^ String.concat ", " (List.map (fun r -> string_of_int r.seed) failed))
