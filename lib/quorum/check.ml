let rec intersects a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | x :: xs, y :: ys ->
    if x = y then true else if x < y then intersects xs b else intersects a ys

let read_write_intersection ~reads ~writes =
  List.for_all (fun r -> List.for_all (fun w -> intersects r w) writes) reads

let write_write_intersection ~writes =
  let rec pairs = function
    | [] -> true
    | w :: rest -> List.for_all (fun w' -> intersects w w') rest && pairs rest
  in
  pairs writes

let all_alive ~failed quorum = List.for_all (fun n -> not (List.mem n failed)) quorum

(* Structural write-quorum rule from the paper: a set covers node [n] when
   it contains [n] and covers a majority of [n]'s children, or — failure
   substitution — covers ALL of [n]'s children.  One visit per tree node. *)
let covers_write_quorum tree set =
  let members = List.sort_uniq Int.compare set in
  let mem n = List.mem n members in
  let rec covers n =
    let children = Tree.children tree n in
    let total = List.length children in
    let covered = List.length (List.filter covers children) in
    (mem n && (total = 0 || covered >= (total / 2) + 1))
    || (total > 0 && covered = total)
  in
  covers (Tree.root tree)
