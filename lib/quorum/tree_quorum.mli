(** Agrawal–El Abbadi tree quorums with failure fallback.

    Write quorums take a node plus a majority of its children recursively at
    every level; read quorums take a majority of children at a configurable
    level ([read_level]), with [read_level = 0] being the root alone — the
    paper's Fig. 10 initial configuration.  A failed node is transparently
    replaced: for reads by a majority of its children (growing the quorum,
    which is exactly the paper's "+1 node per failure" behaviour when
    failures strike the tree top), for writes by *all* of its children
    (preserving pairwise write intersection).

    [salt] rotates which majority subset is chosen, so different client
    nodes can be assigned different-but-intersecting quorums; this is the
    load-balancing effect behind the initial throughput *rise* under
    failures in Fig. 10.

    Every returned quorum contains only alive nodes; [None] means no quorum
    is currently constructible (too many failures).

    Constructions are memoised per salt and keyed on a generation counter
    bumped whenever {!mark_failed}, {!revive} or {!set_members} actually
    changes the alive set or the view, so repeated quorum lookups between
    failure events are O(1); callers need no cache (or invalidation) of
    their own.

    The tree spans logical {e positions}; {!set_members} rebinds which
    physical node occupies each position, rebuilding the tree for the new
    member count.  Quorums always contain physical node ids drawn from the
    current member set; liveness flags and salts stay keyed by physical id
    across view changes. *)

type t

val create : ?arity:int -> ?read_level:int -> ?capacity:int -> nodes:int -> unit -> t
(** Defaults: ternary tree, [read_level = 1] (majority of the root's
    children, matching the paper's example R1 = [{n1, n2}]).  [capacity]
    (default [nodes]) bounds the physical node ids a later view may name —
    size it to the full machine pool when spare nodes can join. *)

val tree : t -> Tree.t
(** The current view's tree (rebuilt by {!set_members}). *)

val read_level : t -> int
val capacity : t -> int

val members : t -> int list
(** Physical nodes of the current view, ascending. *)

val set_members : t -> int list -> unit
(** Install a new view: the quorum tree is rebuilt over the given member
    set (sorted, de-duplicated) and every memoised quorum is invalidated.
    Raises [Invalid_argument] on an empty view or an id outside
    [[0, capacity)]. *)

val mark_failed : t -> int -> unit
(** Record a (detected) fail-stop; subsequent quorum constructions avoid
    the node. *)

val revive : t -> int -> unit
val failed : t -> int list

val read_quorum : ?salt:int -> t -> int list option
(** Sorted, duplicate-free read quorum. *)

val write_quorum : ?salt:int -> t -> int list option
(** Sorted, duplicate-free write quorum. *)
