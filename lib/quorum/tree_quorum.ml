type t = {
  (* The logical quorum tree spans *positions* [0, members); [members] maps
     each position to the physical node currently occupying it.  A view
     change ([set_members]) rebuilds the tree for the new member count and
     rebinds the positions, so quorums are always drawn from the current
     member set; [alive] and the per-salt caches stay keyed by physical
     node id (capacity-sized) because failure detection and callers speak
     physical ids. *)
  mutable tree : Tree.t;
  arity : int option;
  read_level : int;
  capacity : int;
  alive : bool array;
  mutable members : int array; (* position -> physical node *)
  (* Quorum construction is deterministic given [alive], the member map and
     the salt, so results are memoised per salt and invalidated wholesale
     whenever either actually changes ([generation] bump).  Unconstructible
     ([None]) results are cached too: [revive] bumps the generation, so a
     recovery always clears them. *)
  mutable generation : int;
  mutable cache_generation : int;
  read_cache : int list option option array;
  write_cache : int list option option array;
}

let create ?arity ?(read_level = 1) ?capacity ~nodes () =
  let capacity = match capacity with Some c -> Stdlib.max c nodes | None -> nodes in
  {
    tree = Tree.create ?arity ~nodes ();
    arity;
    read_level;
    capacity;
    alive = Array.make capacity true;
    members = Array.init nodes Fun.id;
    generation = 0;
    cache_generation = 0;
    read_cache = Array.make capacity None;
    write_cache = Array.make capacity None;
  }

let tree t = t.tree
let read_level t = t.read_level
let capacity t = t.capacity
let members t = Array.to_list t.members

let set_members t nodes =
  let arr = Array.of_list (List.sort_uniq Int.compare nodes) in
  if Array.length arr = 0 then invalid_arg "Tree_quorum.set_members: empty view";
  Array.iter
    (fun n ->
      if n < 0 || n >= t.capacity then
        invalid_arg
          (Printf.sprintf "Tree_quorum.set_members: node %d outside capacity %d" n
             t.capacity))
    arr;
  t.members <- arr;
  t.tree <- Tree.create ?arity:t.arity ~nodes:(Array.length arr) ();
  t.generation <- t.generation + 1

let mark_failed t node =
  if t.alive.(node) then begin
    t.alive.(node) <- false;
    t.generation <- t.generation + 1
  end

let revive t node =
  if not t.alive.(node) then begin
    t.alive.(node) <- true;
    t.generation <- t.generation + 1
  end

let failed t =
  let acc = ref [] in
  for i = Array.length t.alive - 1 downto 0 do
    if not t.alive.(i) then acc := i :: !acc
  done;
  !acc

let dedup_sorted nodes = List.sort_uniq Int.compare nodes

(* Position-level liveness / identity. *)
let pos_alive t pos = t.alive.(t.members.(pos))
let pos_node t pos = t.members.(pos)

(* Rotate a list left by [salt mod length]; used to spread majority choices
   across clients. *)
let rotate salt xs =
  match xs with
  | [] -> []
  | _ ->
    let n = List.length xs in
    let s = ((salt mod n) + n) mod n in
    let rec split i acc rest =
      if i = 0 then rest @ List.rev acc
      else match rest with [] -> List.rev acc | x :: tl -> split (i - 1) (x :: acc) tl
    in
    split s [] xs

(* Try to build quorums for [needed] children out of [candidates], in order,
   backtracking across candidates whose subtree cannot produce a quorum. *)
let rec take_majority build needed candidates acc =
  if needed = 0 then Some acc
  else
    match candidates with
    | [] -> None
    | c :: rest ->
      begin
        match build c with
        | Some q ->
          begin
            match take_majority build (needed - 1) rest (q :: acc) with
            | Some _ as result -> result
            | None -> take_majority build needed rest acc
          end
        | None -> take_majority build needed rest acc
      end

let majority_of_children t salt node build =
  let children = Tree.children t.tree node in
  match children with
  | [] -> None
  | _ ->
    let needed = (List.length children / 2) + 1 in
    begin
      match take_majority build needed (rotate salt children) [] with
      | Some quorums -> Some (List.concat quorums)
      | None -> None
    end

(* Read quorum rooted at position [node], targeting [level] more descents.
   Above the target level the node itself is not part of the quorum, so its
   liveness is irrelevant; at the target level a failed node is substituted
   by a majority of its children (one level deeper), which is how the quorum
   grows by one per failure in the paper's Fig. 10 scenario. *)
let rec read_at t salt node level =
  if level <= 0 then
    if pos_alive t node then Some [ pos_node t node ]
    else majority_of_children t salt node (fun c -> read_at t salt c 0)
  else if Tree.is_leaf t.tree node then
    if pos_alive t node then Some [ pos_node t node ] else None
  else majority_of_children t salt node (fun c -> read_at t salt c (level - 1))

let cached cache t salt build =
  if salt < 0 || salt >= Array.length cache then build ()
  else begin
    if t.cache_generation <> t.generation then begin
      Array.fill t.read_cache 0 (Array.length t.read_cache) None;
      Array.fill t.write_cache 0 (Array.length t.write_cache) None;
      t.cache_generation <- t.generation
    end;
    match cache.(salt) with
    | Some result -> result
    | None ->
      let result = build () in
      cache.(salt) <- Some result;
      result
  end

let read_quorum ?(salt = 0) t =
  cached t.read_cache t salt (fun () ->
      Option.map dedup_sorted (read_at t salt (Tree.root t.tree) t.read_level))

(* Write quorum: node + majority of children recursively; a failed node is
   replaced by the write quorums of *all* its children.

   The recursion is three-valued.  A subtree with no alive write spine at
   all — a dead leaf, or a dead node whose subtrees are all in that state —
   contributes [Empty]: no read quorum can be built through it either, so
   omitting it cannot break read/write intersection.  An *alive* node that
   cannot assemble a majority of child quorums [Poisons] the whole
   construction: a read quorum consisting of just that node exists, so a
   write quorum must not silently skip its subtree. *)
type write_result = Poisoned | Built of int list

let rec write_at t salt node =
  if Tree.is_leaf t.tree node then
    if pos_alive t node then Built [ pos_node t node ] else Built []
  else if pos_alive t node then begin
    let build c = match write_at t salt c with Poisoned -> None | Built q -> Some q in
    match majority_of_children t salt node build with
    | Some q -> Built (pos_node t node :: q)
    | None -> Poisoned
  end
  else begin
    (* Dead interior node: take every child's write quorum. *)
    let rec union acc = function
      | [] -> Built acc
      | c :: rest ->
        begin
          match write_at t salt c with
          | Poisoned -> Poisoned
          | Built q -> union (q @ acc) rest
        end
    in
    union [] (Tree.children t.tree node)
  end

let write_quorum ?(salt = 0) t =
  cached t.write_cache t salt (fun () ->
      match write_at t salt (Tree.root t.tree) with
      | Poisoned -> None
      | Built [] -> None (* nothing alive at all *)
      | Built quorum -> Some (dedup_sorted quorum))
