(** Quorum-property verifiers used by tests and property-based checks.

    The QR protocol's 1-copy equivalence rests on two structural facts:
    every read quorum intersects every write quorum, and write quorums
    pairwise intersect.  These checkers verify them empirically over sets
    of constructed quorums. *)

val intersects : int list -> int list -> bool
(** Whether two sorted node lists share an element. *)

val read_write_intersection : reads:int list list -> writes:int list list -> bool
(** Every read quorum meets every write quorum. *)

val write_write_intersection : writes:int list list -> bool
(** Write quorums pairwise intersect. *)

val all_alive : failed:int list -> int list -> bool
(** No quorum member is in the failed set. *)

val covers_write_quorum : Tree.t -> int list -> bool
(** Structural validity of a node set as a write quorum under the paper's
    recursive rule: the set covers node [n] when it contains [n] and covers
    a majority of [n]'s children, or (failure substitution) covers {e all}
    of [n]'s children; the set is a write quorum iff it covers the root.
    Used by the trace checker to validate the vote set behind each commit. *)
