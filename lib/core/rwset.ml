module Int_map = Map.Make (Int)

type entry = { oid : Ids.obj_id; version : int; value : Txn.value; owner : int }
type t = entry Int_map.t

let empty = Int_map.empty
let is_empty = Int_map.is_empty
let size = Int_map.cardinal
let add t e = Int_map.add e.oid e t
let find t oid = Int_map.find_opt oid t
let mem t oid = Int_map.mem oid t
let remove t oid = Int_map.remove oid t

let merge_into ~child ~parent =
  Int_map.union (fun _oid child_entry _parent_entry -> Some child_entry) child parent

let retag t ~owner = Int_map.map (fun e -> { e with owner }) t
let iter t f = Int_map.iter (fun _oid e -> f e) t
let entries t = List.map snd (Int_map.bindings t)
let oids t = List.map fst (Int_map.bindings t)

let union_oids a b =
  Int_map.union (fun _ x _ -> Some x) a b |> Int_map.bindings |> List.map fst
