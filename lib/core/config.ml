type mode = Flat | Closed | Checkpoint

let mode_name = function
  | Flat -> "flat"
  | Closed -> "closed"
  | Checkpoint -> "checkpoint"

type t = {
  mode : mode;
  rqv_for_flat : bool;
  checkpoint_threshold : int;
  checkpoint_overhead : float;
  local_op_cost : float;
  request_timeout : float;
  backoff_base : float;
  backoff_max : float;
  ct_retry_delay : float;
  commit_lock_retries : int;
  max_attempts : int;
  max_steps_per_attempt : int;
  lease_duration : float;
  lease_safety_margin : float;
  status_grace : float;
  status_attempts : int;
  retransmit_backoff_base : float;
  retransmit_backoff_max : float;
  batch_size : int;
  batch_delay : float;
}

let make ?(rqv_for_flat = false) ?(checkpoint_threshold = 1) ?(checkpoint_overhead = 2.0)
    ?(local_op_cost = 0.02) ?(request_timeout = 400.) ?(backoff_base = 4.)
    ?(backoff_max = 250.) ?(ct_retry_delay = 1.) ?(commit_lock_retries = 0)
    ?(max_attempts = 0) ?(max_steps_per_attempt = 20_000) ?(lease_duration = 800.)
    ?(lease_safety_margin = 100.) ?(status_grace = 200.) ?(status_attempts = 3)
    ?(retransmit_backoff_base = 8.) ?(retransmit_backoff_max = 200.)
    ?(batch_size = 8) ?(batch_delay = 5.) mode =
  assert (checkpoint_threshold >= 1);
  assert (lease_duration = 0. || lease_duration > lease_safety_margin);
  assert (batch_size >= 1);
  assert (batch_delay >= 0.);
  {
    mode;
    rqv_for_flat;
    checkpoint_threshold;
    checkpoint_overhead;
    local_op_cost;
    request_timeout;
    backoff_base;
    backoff_max;
    ct_retry_delay;
    commit_lock_retries;
    max_attempts;
    max_steps_per_attempt;
    lease_duration;
    lease_safety_margin;
    status_grace;
    status_attempts;
    retransmit_backoff_base;
    retransmit_backoff_max;
    batch_size;
    batch_delay;
  }

let default mode = make mode
