(** Transaction-level metrics.

    One accumulator per experiment run.  Message counts live in
    {!Sim.Network}; this module tracks the executor-side events the paper
    reports: commits, root aborts, partial aborts (closed-nested aborts /
    checkpoint rollbacks), local vs remote reads, checkpoints created, and
    commit latencies. *)

type t

val create : unit -> t

val reset : t -> unit
(** Zero every counter (used to exclude warm-up from measurements). *)

val note_commit : t -> latency:float -> unit
val note_read_only_commit : t -> latency:float -> unit
val note_root_abort : t -> unit
val note_partial_abort : t -> unit
val note_ct_commit : t -> unit
val note_checkpoint : t -> unit
val note_local_read : t -> unit
val note_remote_read : t -> unit
val note_quorum_retry : t -> unit

val note_open_commit : t -> unit
(** An open-nested sub-transaction committed (extension). *)

val note_compensation : t -> unit
(** A compensation transaction ran after a root abort (extension). *)

val note_sync : t -> unit
(** A recovering node started a state-transfer round. *)

val note_recovery : t -> duration:float -> unit
(** A node completed recovery (state-synced and re-admitted to quorums);
    [duration] is restart-to-re-admission in simulated ms. *)

val note_lease_expired : t -> unit
(** A replica found a write-lock lease past its horizon and started the
    termination protocol (one event per expired lease batch). *)

val note_presumed_abort : t -> unit
(** A status query found no commit evidence; the expired lease was released
    under presumed abort. *)

val note_status_rescue : t -> unit
(** A status query found the owning transaction had decided commit; the
    replica adopted the committed write instead of aborting it. *)

val note_commit_deadline_abort : t -> unit
(** A coordinator refused to commit because its own lease horizon had
    passed by the time the votes arrived. *)

val note_read_widening : t -> unit
(** A commit was vetoed as stale with no lock conflict: the coordinator's
    read quorum missed a committed version (possible across membership
    views), and subsequent reads were widened to the vetoing replicas. *)

val note_stall : t -> unit
(** The liveness watchdog saw no commit progress for a full stall window
    while transactions were in flight. *)

val note_view_change : t -> unit
(** A reconfiguration installed a new membership view (epoch bump). *)

val note_speculative_read : t -> unit
(** Batch mode: a read was served from a queued transaction's write image
    instead of a remote quorum round. *)

val note_speculation_abort : t -> unit
(** Batch mode: a speculative transaction aborted because a predecessor it
    read from failed to commit.  Distinct from plain conflict aborts so
    speculation retries are not misread as contention; the retry's root
    abort is counted separately by {!note_root_abort}. *)

val note_batch : t -> occupancy:int -> unit
(** Batch mode: one batch quorum round was sent carrying [occupancy]
    queued transactions. *)

val note_cross_shard_commit : t -> unit
(** A transaction spanning several shards committed through the cross-shard
    2PC (counted on top of {!note_commit}). *)

val note_cross_shard_abort : t -> unit
(** A cross-shard 2PC ended in abort (veto, missed quorum member past the
    retry budget, or the lease deadline) — distinct from single-shard
    conflict aborts; the accompanying root abort is still counted by
    {!note_root_abort}. *)

val note_open_loop_arrival : t -> unit
(** Open-loop driver ({!Harness.Openloop}-style): one logical-client
    request arrived (Poisson process), whether or not it was admitted yet. *)

val note_open_loop_done : t -> queue_delay:float -> service:float -> unit
(** An open-loop request completed: [queue_delay] is arrival-to-admission
    (time spent waiting behind the concurrency cap), [service] is
    admission-to-completion.  Both land in constant-memory {!Util.Hdr}
    histograms so SLO percentiles survive millions of samples. *)

val commits : t -> int
(** All commits, including read-only. *)

val read_only_commits : t -> int
val root_aborts : t -> int
val partial_aborts : t -> int

val total_aborts : t -> int
(** Root plus partial aborts — the paper's "total number of aborts". *)

val ct_commits : t -> int
val checkpoints : t -> int
val local_reads : t -> int
val remote_reads : t -> int
val quorum_retries : t -> int
val open_commits : t -> int
val compensations : t -> int
val syncs : t -> int
val recoveries : t -> int
val lease_expirations : t -> int
val presumed_aborts : t -> int
val status_rescued_commits : t -> int
val commit_deadline_aborts : t -> int
val read_widenings : t -> int
val stalls_detected : t -> int
val view_changes : t -> int
val speculative_reads : t -> int
val speculation_aborts : t -> int

val batches : t -> int
(** Batch quorum rounds sent. *)

val batch_occupancy_stats : t -> Util.Stats.t
(** Transactions carried per batch round. *)

val batch_occupancy_percentile : t -> float -> float
(** Batch-occupancy percentile (e.g. [50.], [95.]); 0 when no batches have
    been sent. *)

val cross_shard_commits : t -> int
val cross_shard_aborts : t -> int

val cross_shard_share : t -> float
(** Fraction of commits that were cross-shard ([0.] with no commits). *)

val recovery_time_stats : t -> Util.Stats.t
(** Restart-to-re-admission durations of completed recoveries. *)

val latency_stats : t -> Util.Stats.t

val open_loop_arrivals : t -> int
val open_loop_completions : t -> int

val open_queue_delay : t -> Util.Hdr.t
(** Arrival-to-admission delay histogram (open-loop runs only). *)

val open_service : t -> Util.Hdr.t
(** Admission-to-completion latency histogram (open-loop runs only). *)

val latency_percentile : t -> float -> float
(** Commit-latency percentile (e.g. [50.], [95.], [99.]); 0 when no commits
    have been recorded. *)

val throughput : t -> duration_ms:float -> float
(** Committed transactions per second of simulated time. *)

val abort_rate : t -> float
(** Aborts per commit attempt: [total_aborts / (commits + total_aborts)]. *)

val summary : t -> duration_ms:float -> string
