type t = {
  engine : Sim.Engine.t;
  network : (Messages.request, Messages.reply) Sim.Rpc.envelope Sim.Network.t;
  rpc : (Messages.request, Messages.reply) Sim.Rpc.t;
  servers : Server.t array;
  tree_quorum : Quorum.Tree_quorum.t;
  failure : Sim.Failure.t;
  executor : Executor.t;
  metrics : Metrics.t;
  oracle : Oracle.t option;
  config : Config.t;
  ids : Ids.gen;
  rng : Util.Rng.t;
}

(* Memoisation lives in [Tree_quorum] (generation-keyed, per salt), so these
   are plain delegations; an unconstructible quorum degrades to [[]]. *)
let read_quorum_of t ~node =
  Option.value ~default:[] (Quorum.Tree_quorum.read_quorum ~salt:node t.tree_quorum)

let write_quorum_of t ~node =
  Option.value ~default:[] (Quorum.Tree_quorum.write_quorum ~salt:node t.tree_quorum)

let nodes t = Array.length t.servers

(* Re-admit a node to quorum construction.  This runs only after state
   transfer completed — for recovered crashes AND cleared false
   suspicions alike (see [resync]). *)
let readmit t node =
  Quorum.Tree_quorum.revive t.tree_quorum node;
  Sim.Failure.clear_suspicion t.failure node

(* Catch-up protocol for a node rejoining the membership view: refresh the
   stale replica from a full read quorum (which intersects every write
   quorum {e of the current view}, so the per-object maximum version over
   the replies covers every committed write), then rejoin.  The node
   itself is still marked failed in the quorum layer, so the sync quorum
   never includes it.

   Crucially this runs for cleared false suspicions too, not just crash
   recoveries: while a node is suspected, quorum construction routes
   around it, so commits during that window may touch {e no} member of a
   quorum the rejoining node later serves in.  Tree-quorum intersection
   only holds between quorums built under the same view — a node that was
   out of the view must state-transfer before serving again, or a
   post-heal read quorum made of bypassed members can miss a
   during-partition commit entirely (observed as a stale-read livelock:
   deterministic quorums re-serve the same stale version every retry,
   and write-quorum members that are ahead vote the commit down
   forever). *)
let rec resync t ~node ~started ~was_killed =
  (* Read ∪ write quorum, like the status peer set: commits decided just
     before this sync may still have Applies in flight, and the wider set
     maximises the chance of hitting a member that already installed
     them. *)
  let quorum =
    let of_opt q = Option.value ~default:[] q in
    List.sort_uniq Int.compare
      (of_opt (Quorum.Tree_quorum.read_quorum ~salt:node t.tree_quorum)
      @ of_opt (Quorum.Tree_quorum.write_quorum ~salt:node t.tree_quorum))
  in
  let retry () =
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        resync t ~node ~started ~was_killed)
  in
  match quorum with
  | [] -> retry ()
  | dsts ->
    Metrics.note_sync t.metrics;
    let tracer = Sim.Engine.tracer t.engine in
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer ~time:(Sim.Engine.now t.engine)
        ~kind:Obs.Sem.sync_start ~node ~a:(List.length dsts) ();
    Sim.Rpc.multicall t.rpc ~kind:Messages.sync_req_kind ~src:node ~dsts
      ~timeout:t.config.Config.request_timeout Messages.Sync_req
      ~on_done:(fun ~replies ~missing ->
        if missing <> [] then retry ()
        else begin
          let store = Server.store t.servers.(node) in
          Store.Replica.reset_transients store;
          List.iter
            (fun (_, reply) ->
              match reply with
              | Messages.Sync_rep { objects } ->
                List.iter
                  (fun (oid, version, value) ->
                    Store.Replica.sync_copy store ~oid ~version ~value)
                  objects
              | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
              | Messages.Status_rep _ | Messages.Ack ->
                ())
            replies;
          if Obs.Tracer.enabled tracer then
            Obs.Tracer.emit tracer ~time:(Sim.Engine.now t.engine)
              ~kind:Obs.Sem.sync_done ~node ~a:(List.length replies) ();
          readmit t node;
          if was_killed then
            Metrics.note_recovery t.metrics
              ~duration:(Sim.Engine.now t.engine -. started)
        end)

let create ?(nodes = 13) ?(seed = 1) ?topology ?(service_time = 0.25) ?(read_level = 1)
    ?(detection_delay = 50.) ?(detection_jitter = 0.) ?(with_oracle = true)
    ?(tracer = Obs.Tracer.null) ?(batch_fanout = true) config =
  let engine = Sim.Engine.create ~tracer () in
  let topology =
    match topology with
    | Some t -> t
    | None -> Sim.Topology.create ~seed:(seed + 1) ~nodes ()
  in
  assert (Sim.Topology.nodes topology = nodes);
  let network =
    Sim.Network.create ~engine ~topology ~service_time ~seed:(seed + 2)
      ~batch_fanout ()
  in
  let rpc = Sim.Rpc.create ~network () in
  let servers =
    Array.init nodes (fun node ->
        Server.create ~node ~store:(Store.Replica.create ()))
  in
  let clock () = Sim.Engine.now engine in
  Array.iter
    (fun server ->
      Server.instrument server ~tracer ~clock;
      Store.Replica.instrument (Server.store server) ~tracer
        ~node:(Server.node server) ~clock;
      Sim.Rpc.serve rpc ~node:(Server.node server) (fun ~src request ->
          Server.handle server ~src request))
    servers;
  let tree_quorum = Quorum.Tree_quorum.create ~read_level ~nodes () in
  let metrics = Metrics.create () in
  let oracle = if with_oracle then Some (Oracle.create ()) else None in
  let ids = Ids.gen () in
  let quorums =
    {
      Executor.read_quorum =
        (fun ~node ->
          Option.value ~default:[]
            (Quorum.Tree_quorum.read_quorum ~salt:node tree_quorum));
      write_quorum =
        (fun ~node ->
          Option.value ~default:[]
            (Quorum.Tree_quorum.write_quorum ~salt:node tree_quorum));
      node_alive = (fun node -> not (Sim.Network.is_failed network node));
    }
  in
  let executor =
    Executor.create ~engine ~rpc ~quorums ~config ~metrics ?oracle ~ids ~seed:(seed + 3) ()
  in
  (* Arm the lease-termination machinery on every replica.  The peer set —
     read quorum extended with the write quorum, both salted by the asking
     node — is consulted lazily at status time so node failures are
     respected.  The union intersects the lease owner's write quorum in
     several members (every write quorum shares the root and overlapping
     child majorities), so a decided commit stays visible even when a
     lossy link starved one intersection node of its Apply. *)
  Array.iter
    (fun server ->
      Server.enable_termination server ~engine ~rpc
        ~status_peers:(fun () ->
          let salt = Server.node server in
          let of_opt q = Option.value ~default:[] q in
          List.sort_uniq Int.compare
            (of_opt (Quorum.Tree_quorum.read_quorum ~salt tree_quorum)
            @ of_opt (Quorum.Tree_quorum.write_quorum ~salt tree_quorum)))
        ~metrics ~config)
    servers;
  let failure =
    Sim.Failure.create ~engine ~detection_delay ~detection_jitter ~seed:(seed + 5)
      ~kill:(fun node ->
        Sim.Network.fail network node;
        (* Fail-stop loses volatile state: locks, leases and the applied
           set die with the node (durable copies survive until the
           recovery resync refreshes them).  This also silences the dead
           node's lease watchdogs — behind a failed NIC their status
           rounds could never complete and would retry forever. *)
        Store.Replica.reset_transients (Server.store servers.(node));
        (* Coordinators hosted on the node die with it (fail-stop). *)
        Executor.kill_node executor ~node)
      ()
  in
  Sim.Failure.on_detect failure (fun node ->
      Quorum.Tree_quorum.mark_failed tree_quorum node);
  let t =
    {
      engine;
      network;
      rpc;
      servers;
      tree_quorum;
      failure;
      executor;
      metrics;
      oracle;
      config;
      ids;
      rng = Util.Rng.create (seed + 4);
    }
  in
  Sim.Failure.on_recover failure (fun ~node ~was_killed ->
      Sim.Network.revive t.network node;
      (* Both paths state-transfer before rejoining: a falsely suspected
         node kept its disk but was bypassed by quorums, so it may have
         missed commits just like a crashed one. *)
      resync t ~node ~started:(Sim.Engine.now t.engine) ~was_killed);
  t

let engine t = t.engine
let tracer t = Sim.Engine.tracer t.engine
let network t = t.network
let executor t = t.executor
let metrics t = t.metrics
let oracle t = t.oracle
let config t = t.config
let failure t = t.failure
let ids t = t.ids
let rng t = t.rng
let now t = Sim.Engine.now t.engine

let install_object t ~oid ~init =
  Array.iter (fun server -> Store.Replica.install (Server.store server) ~oid ~init) t.servers

let alloc_object t ~init =
  let oid = Ids.fresh_obj t.ids in
  install_object t ~oid ~init;
  oid

let store_of t ~node = Server.store t.servers.(node)
let server_of t ~node = t.servers.(node)

let submit t ~node program ~on_done = Executor.run_root t.executor ~node ~program ~on_done

let run_program t ~node program =
  let result = ref None in
  submit t ~node program ~on_done:(fun outcome -> result := Some outcome);
  let rec drive () =
    match !result with
    | Some outcome -> outcome
    | None ->
      if Sim.Engine.step t.engine then drive ()
      else invalid_arg "Cluster.run_program: engine drained without completion"
  in
  drive ()

let fail_node_at t ~at ~node = Sim.Failure.schedule t.failure ~at ~node
let recover_node_at t ~at ~node = Sim.Failure.schedule_recovery t.failure ~at ~node

let suspect_node_at ?clear_after t ~at ~node =
  Sim.Failure.schedule_false_suspicion ?clear_after t.failure ~at ~node

let run_for t duration =
  Sim.Engine.run ~until:(Sim.Engine.now t.engine +. duration) t.engine

let drain t = Sim.Engine.run t.engine

let check_consistency t =
  match t.oracle with
  | Some oracle -> Oracle.check oracle
  | None -> Error "oracle disabled for this cluster"

let reset_counters t =
  Metrics.reset t.metrics;
  Sim.Network.reset_counters t.network;
  Sim.Rpc.reset_give_ups t.rpc

let messages_sent t = Sim.Network.messages_sent t.network
let messages_by_kind t = Sim.Network.messages_by_kind t.network
let messages_dropped t = Sim.Network.messages_dropped t.network
let messages_duplicated t = Sim.Network.messages_duplicated t.network
let retransmit_exhausted t = Sim.Rpc.give_ups t.rpc
let in_flight t = Executor.in_flight t.executor

let held_leases t =
  let acc = ref [] in
  Array.iteri
    (fun node server ->
      List.iter
        (fun (oid, owner, expires) -> acc := (node, oid, owner, expires) :: !acc)
        (Store.Replica.held_leases (Server.store server)))
    t.servers;
  List.rev !acc
