type t = {
  engine : Sim.Engine.t;
  network : (Messages.request, Messages.reply) Sim.Rpc.envelope Sim.Network.t;
  rpc : (Messages.request, Messages.reply) Sim.Rpc.t;
  servers : Server.t array;
  tree_quorum : Quorum.Tree_quorum.t;
  failure : Sim.Failure.t;
  executor : Executor.t;
  metrics : Metrics.t;
  oracle : Oracle.t option;
  config : Config.t;
  ids : Ids.gen;
  rng : Util.Rng.t;
}

(* Memoisation lives in [Tree_quorum] (generation-keyed, per salt), so these
   are plain delegations; an unconstructible quorum degrades to [[]]. *)
let read_quorum_of t ~node =
  Option.value ~default:[] (Quorum.Tree_quorum.read_quorum ~salt:node t.tree_quorum)

let write_quorum_of t ~node =
  Option.value ~default:[] (Quorum.Tree_quorum.write_quorum ~salt:node t.tree_quorum)

let nodes t = Array.length t.servers

(* Re-admit a node to quorum construction.  For a recovered crash this runs
   only after state transfer completed; for a cleared false suspicion the
   node never lost state and rejoins immediately. *)
let readmit t node =
  Quorum.Tree_quorum.revive t.tree_quorum node;
  Sim.Failure.clear_suspicion t.failure node

(* Catch-up protocol for a recovering node: refresh the stale replica from
   a full read quorum (which intersects every write quorum, so the
   per-object maximum version over the replies covers every committed
   write), then rejoin.  The node itself is still marked failed in the
   quorum layer, so the sync quorum never includes it. *)
let rec resync t ~node ~started =
  let quorum =
    Option.value ~default:[]
      (Quorum.Tree_quorum.read_quorum ~salt:node t.tree_quorum)
  in
  let retry () =
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        resync t ~node ~started)
  in
  match quorum with
  | [] -> retry ()
  | dsts ->
    Metrics.note_sync t.metrics;
    Sim.Rpc.multicall t.rpc ~kind:Messages.sync_req_kind ~src:node ~dsts
      ~timeout:t.config.Config.request_timeout Messages.Sync_req
      ~on_done:(fun ~replies ~missing ->
        if missing <> [] then retry ()
        else begin
          let store = Server.store t.servers.(node) in
          Store.Replica.reset_transients store;
          List.iter
            (fun (_, reply) ->
              match reply with
              | Messages.Sync_rep { objects } ->
                List.iter
                  (fun (oid, version, value) ->
                    Store.Replica.sync_copy store ~oid ~version ~value)
                  objects
              | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
              | Messages.Ack ->
                ())
            replies;
          readmit t node;
          Metrics.note_recovery t.metrics
            ~duration:(Sim.Engine.now t.engine -. started)
        end)

let create ?(nodes = 13) ?(seed = 1) ?topology ?(service_time = 0.25) ?(read_level = 1)
    ?(detection_delay = 50.) ?(detection_jitter = 0.) ?(with_oracle = true) config =
  let engine = Sim.Engine.create () in
  let topology =
    match topology with
    | Some t -> t
    | None -> Sim.Topology.create ~seed:(seed + 1) ~nodes ()
  in
  assert (Sim.Topology.nodes topology = nodes);
  let network =
    Sim.Network.create ~engine ~topology ~service_time ~seed:(seed + 2) ()
  in
  let rpc = Sim.Rpc.create ~network () in
  let servers =
    Array.init nodes (fun node ->
        Server.create ~node ~store:(Store.Replica.create ()))
  in
  Array.iter
    (fun server ->
      Sim.Rpc.serve rpc ~node:(Server.node server) (fun ~src request ->
          Server.handle server ~src request))
    servers;
  let tree_quorum = Quorum.Tree_quorum.create ~read_level ~nodes () in
  let metrics = Metrics.create () in
  let oracle = if with_oracle then Some (Oracle.create ()) else None in
  let ids = Ids.gen () in
  let quorums =
    {
      Executor.read_quorum =
        (fun ~node ->
          Option.value ~default:[]
            (Quorum.Tree_quorum.read_quorum ~salt:node tree_quorum));
      write_quorum =
        (fun ~node ->
          Option.value ~default:[]
            (Quorum.Tree_quorum.write_quorum ~salt:node tree_quorum));
    }
  in
  let executor =
    Executor.create ~engine ~rpc ~quorums ~config ~metrics ?oracle ~ids ~seed:(seed + 3) ()
  in
  let failure =
    Sim.Failure.create ~engine ~detection_delay ~detection_jitter ~seed:(seed + 5)
      ~kill:(fun node -> Sim.Network.fail network node)
      ()
  in
  Sim.Failure.on_detect failure (fun node ->
      Quorum.Tree_quorum.mark_failed tree_quorum node);
  let t =
    {
      engine;
      network;
      rpc;
      servers;
      tree_quorum;
      failure;
      executor;
      metrics;
      oracle;
      config;
      ids;
      rng = Util.Rng.create (seed + 4);
    }
  in
  Sim.Failure.on_recover failure (fun ~node ~was_killed ->
      Sim.Network.revive t.network node;
      if was_killed then resync t ~node ~started:(Sim.Engine.now t.engine)
      else readmit t node);
  t

let engine t = t.engine
let network t = t.network
let executor t = t.executor
let metrics t = t.metrics
let oracle t = t.oracle
let config t = t.config
let failure t = t.failure
let ids t = t.ids
let rng t = t.rng
let now t = Sim.Engine.now t.engine

let install_object t ~oid ~init =
  Array.iter (fun server -> Store.Replica.install (Server.store server) ~oid ~init) t.servers

let alloc_object t ~init =
  let oid = Ids.fresh_obj t.ids in
  install_object t ~oid ~init;
  oid

let store_of t ~node = Server.store t.servers.(node)

let submit t ~node program ~on_done = Executor.run_root t.executor ~node ~program ~on_done

let run_program t ~node program =
  let result = ref None in
  submit t ~node program ~on_done:(fun outcome -> result := Some outcome);
  let rec drive () =
    match !result with
    | Some outcome -> outcome
    | None ->
      if Sim.Engine.step t.engine then drive ()
      else invalid_arg "Cluster.run_program: engine drained without completion"
  in
  drive ()

let fail_node_at t ~at ~node = Sim.Failure.schedule t.failure ~at ~node
let recover_node_at t ~at ~node = Sim.Failure.schedule_recovery t.failure ~at ~node

let suspect_node_at ?clear_after t ~at ~node =
  Sim.Failure.schedule_false_suspicion ?clear_after t.failure ~at ~node

let run_for t duration =
  Sim.Engine.run ~until:(Sim.Engine.now t.engine +. duration) t.engine

let drain t = Sim.Engine.run t.engine

let check_consistency t =
  match t.oracle with
  | Some oracle -> Oracle.check oracle
  | None -> Error "oracle disabled for this cluster"

let reset_counters t =
  Metrics.reset t.metrics;
  Sim.Network.reset_counters t.network

let messages_sent t = Sim.Network.messages_sent t.network
let messages_by_kind t = Sim.Network.messages_by_kind t.network
let messages_dropped t = Sim.Network.messages_dropped t.network
let messages_duplicated t = Sim.Network.messages_duplicated t.network
