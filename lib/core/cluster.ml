type reconfig =
  | Join of int
  | Leave of int
  | Replace of { leaving : int; joining : int }

(* Shard-directory operations: relocate one object or split a shard's
   member set (and object population) in two.  Like membership
   reconfigurations they run wedged and epoch-fenced, but they operate on
   the {e object -> shard} mapping rather than a shard's member list. *)
type shard_op =
  | Move_object of { oid : int; to_shard : int }
  | Split_shard of int

(* One shard: an independent membership view over a disjoint slice of the
   machines, with its own quorum tree, epoch, wedge flag and
   reconfiguration queue.  The epoch and wedge are refs so the executor's
   quorum closures and the RPC fencing hook — built before the cluster
   record — share them. *)
type shard_state = {
  sh_id : int;
  sh_tq : Quorum.Tree_quorum.t;
  sh_epoch : int ref;
  sh_wedged : bool ref;
  mutable sh_reconfig_active : bool;
  (* Reconfigurations waiting behind the active one, in submission order.
     FIFO matters: a replace may legitimately re-use a machine an earlier
     queued operation decommissions, so reordering would make a valid
     schedule fail validation. *)
  sh_pending : (reconfig * (unit -> unit) option) Queue.t;
}

(* The shard directory and per-shard state.  [states] and [dir] are
   mutable fields (not just mutable contents) because a split appends a
   shard and the directory grows with the object space; every closure
   capturing this record sees the updates. *)
type sharding = {
  mutable states : shard_state array;
  mutable dir : int array; (* oid -> owning shard, for allocated oids *)
  mutable dir_len : int;
  dir_default : int;
      (* the initial shard count: an oid without a directory entry maps to
         [oid mod dir_default].  Deliberately frozen at creation — shards
         minted by splits receive objects only through explicit moves, so
         the default mapping stays stable across the run. *)
  home : int array; (* node -> the shard it replicates *)
  read_level : int; (* for quorum trees minted by splits *)
  mutable shard_op_active : bool;
  shard_pending : (shard_op * (unit -> unit) option) Queue.t;
}

type t = {
  engine : Sim.Engine.t;
  network : (Messages.request, Messages.reply) Sim.Rpc.envelope Sim.Network.t;
  rpc : (Messages.request, Messages.reply) Sim.Rpc.t;
  servers : Server.t array;
  sharding : sharding;
  failure : Sim.Failure.t;
  executor : Executor.t;
  metrics : Metrics.t;
  oracle : Oracle.t option;
  config : Config.t;
  ids : Ids.gen;
  rng : Util.Rng.t;
}

let min_members = 3

let shard_of_oid_s sharding oid =
  if oid >= 0 && oid < sharding.dir_len then sharding.dir.(oid)
  else oid mod sharding.dir_default

(* Record [oid]'s directory entry (default placement) if it has none. *)
let ensure_dir sharding ~oid =
  if oid >= Array.length sharding.dir then begin
    let cap = Stdlib.max (oid + 1) (2 * (Array.length sharding.dir + 1)) in
    let grown = Array.make cap 0 in
    Array.blit sharding.dir 0 grown 0 sharding.dir_len;
    sharding.dir <- grown
  end;
  if oid >= sharding.dir_len then begin
    for i = sharding.dir_len to oid do
      sharding.dir.(i) <- i mod sharding.dir_default
    done;
    sharding.dir_len <- oid + 1
  end

(* The shard whose epoch fences a request, keyed on the payload: the owner
   of the first object the message names.  Keyed on the payload — not the
   receiving node — so sender stamp and receiver fence always evaluate the
   same epoch, even for cross-shard traffic (a Status_req from shard A's
   termination protocol delivered to a shard-B peer is fenced by A's
   epoch, the view its lease evidence belongs to). *)
let request_shard sharding = function
  | Messages.Read_req { oid; _ } -> shard_of_oid_s sharding oid
  | Messages.Commit_req { locks = oid :: _; _ } -> shard_of_oid_s sharding oid
  | Messages.Commit_req { dataset; _ } | Messages.Batch_commit_req { dataset; _ }
    ->
    if Array.length dataset.Messages.ds_oids > 0 then
      shard_of_oid_s sharding dataset.Messages.ds_oids.(0)
    else 0
  | Messages.Apply { writes; _ } ->
    if Array.length writes.Messages.wr_oids > 0 then
      shard_of_oid_s sharding writes.Messages.wr_oids.(0)
    else 0
  | Messages.Release { oids = oid :: _; _ } -> shard_of_oid_s sharding oid
  | Messages.Release _ -> 0
  | Messages.Status_req { oids = oid :: _; _ } -> shard_of_oid_s sharding oid
  | Messages.Status_req _ -> 0
  | Messages.Handoff { objects = (oid, _, _) :: _ } -> shard_of_oid_s sharding oid
  | Messages.Handoff _ -> 0
  | Messages.Sync_req -> 0

let shard_count t = Array.length t.sharding.states
let shard_of_oid t oid = shard_of_oid_s t.sharding oid

let shard_members t ~shard =
  Quorum.Tree_quorum.members t.sharding.states.(shard).sh_tq

let shard_epoch t ~shard = !(t.sharding.states.(shard).sh_epoch)
let home_shard_of t ~node = t.sharding.home.(node)

(* Memoisation lives in [Tree_quorum] (generation-keyed, per salt), so these
   are plain delegations; an unconstructible quorum degrades to [[]], as do
   all quorums while a reconfiguration has the shard wedged — callers
   treat an empty quorum as "retry politely".  The per-node accessors serve
   the node's {e home} shard (the objects it replicates). *)
let read_quorum_of t ~node =
  let st = t.sharding.states.(t.sharding.home.(node)) in
  if !(st.sh_wedged) then []
  else Option.value ~default:[] (Quorum.Tree_quorum.read_quorum ~salt:node st.sh_tq)

let write_quorum_of t ~node =
  let st = t.sharding.states.(t.sharding.home.(node)) in
  if !(st.sh_wedged) then []
  else Option.value ~default:[] (Quorum.Tree_quorum.write_quorum ~salt:node st.sh_tq)

let nodes t = Array.length t.servers

let members t =
  List.sort_uniq Int.compare
    (Array.fold_left
       (fun acc st -> Quorum.Tree_quorum.members st.sh_tq @ acc)
       [] t.sharding.states)

let is_member t node = List.mem node (members t)

(* The cluster-wide epoch: the sum of the shard epochs, i.e. the number of
   completed view changes across the whole deployment (identical to the
   single epoch when there is one shard). *)
let epoch t =
  Array.fold_left (fun acc st -> acc + !(st.sh_epoch)) 0 t.sharding.states

(* Re-admit a node to quorum construction.  This runs only after state
   transfer completed — for recovered crashes AND cleared false
   suspicions alike (see [resync]).  Liveness flags are keyed by physical
   id in every quorum tree, so reviving across all shards is exact. *)
let readmit t node =
  Array.iter
    (fun st -> Quorum.Tree_quorum.revive st.sh_tq node)
    t.sharding.states;
  Sim.Failure.clear_suspicion t.failure node

(* Catch-up protocol for a node rejoining the membership view: refresh the
   stale replica from a full read quorum of its home shard (which
   intersects every write quorum {e of the current view}, so the
   per-object maximum version over the replies covers every committed
   write), then rejoin.  The node itself is still marked failed in the
   quorum layer, so the sync quorum never includes it.

   Crucially this runs for cleared false suspicions too, not just crash
   recoveries: while a node is suspected, quorum construction routes
   around it, so commits during that window may touch {e no} member of a
   quorum the rejoining node later serves in.  Tree-quorum intersection
   only holds between quorums built under the same view — a node that was
   out of the view must state-transfer before serving again, or a
   post-heal read quorum made of bypassed members can miss a
   during-partition commit entirely (observed as a stale-read livelock:
   deterministic quorums re-serve the same stale version every retry,
   and write-quorum members that are ahead vote the commit down
   forever). *)
let rec resync t ~node ~started ~was_killed =
  (* Read ∪ write quorum, like the status peer set: commits decided just
     before this sync may still have Applies in flight, and the wider set
     maximises the chance of hitting a member that already installed
     them. *)
  let tq = t.sharding.states.(t.sharding.home.(node)).sh_tq in
  let quorum =
    let of_opt q = Option.value ~default:[] q in
    List.sort_uniq Int.compare
      (of_opt (Quorum.Tree_quorum.read_quorum ~salt:node tq)
      @ of_opt (Quorum.Tree_quorum.write_quorum ~salt:node tq))
  in
  let retry () =
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        resync t ~node ~started ~was_killed)
  in
  (* Mutual-rescue deadlock breaker: if {e every} member of the home shard
     is out of the view at once (e.g. one member crashed while the rest sat
     in a suspected partition minority — impossible unsharded, where the
     sync quorum comes from the whole cluster, but routine with 3-member
     shards), no member can ever build the sync quorum the others are
     waiting on, and the shard wedges forever.  The safe escape is a
     full-membership round: every committed write reached a write quorum of
     the members under some view, so the per-object maximum version over
     {e all} members' durable stores (the node's own retained copies
     included — [reset_transients] keeps them) covers every commit.  Hard
     requirement: all other members must reply, so the round keeps
     retrying until crashed members come back — exactly the durability
     assumption the unsharded recovery already makes. *)
  let quorum =
    match quorum with
    | [] ->
      let failed = Quorum.Tree_quorum.failed tq in
      let others =
        List.filter (fun m -> m <> node) (Quorum.Tree_quorum.members tq)
      in
      if others <> [] && List.for_all (fun m -> List.mem m failed) others then
        others
      else []
    | q -> q
  in
  match quorum with
  | [] -> retry ()
  | dsts ->
    Metrics.note_sync t.metrics;
    let tracer = Sim.Engine.tracer t.engine in
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer ~time:(Sim.Engine.now t.engine)
        ~kind:Obs.Sem.sync_start ~node ~a:(List.length dsts) ();
    Sim.Rpc.multicall t.rpc ~kind:Messages.sync_req_kind ~src:node ~dsts
      ~timeout:t.config.Config.request_timeout Messages.Sync_req
      ~on_done:(fun ~replies ~missing ->
        if missing <> [] then retry ()
        else begin
          let store = Server.store t.servers.(node) in
          Store.Replica.reset_transients store;
          List.iter
            (fun (_, reply) ->
              match reply with
              | Messages.Sync_rep { objects } ->
                List.iter
                  (fun (oid, version, value) ->
                    Store.Replica.sync_copy store ~oid ~version ~value)
                  objects
              | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
              | Messages.Status_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
                ())
            replies;
          if Obs.Tracer.enabled tracer then
            Obs.Tracer.emit tracer ~time:(Sim.Engine.now t.engine)
              ~kind:Obs.Sem.sync_done ~node ~a:(List.length replies) ();
          readmit t node;
          if was_killed then
            Metrics.note_recovery t.metrics
              ~duration:(Sim.Engine.now t.engine -. started)
        end)

let create ?(nodes = 13) ?(spares = 0) ?(seed = 1) ?topology ?(service_time = 0.25)
    ?(read_level = 1) ?(detection_delay = 50.) ?(detection_jitter = 0.)
    ?(with_oracle = true) ?(tracer = Obs.Tracer.null) ?(batch_fanout = true)
    ?(batch_commit = false) ?(shards = 1) config =
  if shards < 1 then invalid_arg "Cluster: shards must be >= 1";
  if nodes < shards * min_members then
    invalid_arg
      (Printf.sprintf
         "Cluster: %d initial members cannot populate %d shards (minimum %d each)"
         nodes shards min_members);
  let total = nodes + spares in
  let engine = Sim.Engine.create ~tracer () in
  let topology =
    match topology with
    | Some t -> t
    | None -> Sim.Topology.create ~seed:(seed + 1) ~nodes:total ()
  in
  assert (Sim.Topology.nodes topology = total);
  let network =
    Sim.Network.create ~engine ~topology ~service_time ~seed:(seed + 2)
      ~batch_fanout ()
  in
  let rpc =
    Sim.Rpc.create ~seed:(seed + 6)
      ~retry_base:config.Config.retransmit_backoff_base
      ~retry_max:config.Config.retransmit_backoff_max ~network ()
  in
  let servers =
    Array.init total (fun node ->
        Server.create ~node ~store:(Store.Replica.create ()))
  in
  let clock () = Sim.Engine.now engine in
  Array.iter
    (fun server ->
      Server.instrument server ~tracer ~clock;
      Store.Replica.instrument (Server.store server) ~tracer
        ~node:(Server.node server) ~clock;
      Sim.Rpc.serve rpc ~node:(Server.node server) (fun ~src request ->
          Server.handle server ~src request))
    servers;
  (* Each shard's quorum tree spans its slice of the initial members —
     contiguous, near-equal partitions of 0..nodes-1 — with capacity sized
     to the full machine pool so spares can join any shard.  Spare machines
     exist only as capacity (dark until a join maps a position onto
     them). *)
  let states =
    Array.init shards (fun s ->
        let base = nodes / shards and rem = nodes mod shards in
        let size = base + if s < rem then 1 else 0 in
        let start = (s * base) + Stdlib.min s rem in
        let tq =
          Quorum.Tree_quorum.create ~read_level ~capacity:total ~nodes:size ()
        in
        if start > 0 then
          Quorum.Tree_quorum.set_members tq (List.init size (fun i -> start + i));
        {
          sh_id = s;
          sh_tq = tq;
          sh_epoch = ref 0;
          sh_wedged = ref false;
          sh_reconfig_active = false;
          sh_pending = Queue.create ();
        })
  in
  let home = Array.make total 0 in
  Array.iter
    (fun st ->
      List.iter (fun n -> home.(n) <- st.sh_id) (Quorum.Tree_quorum.members st.sh_tq))
    states;
  let sharding =
    {
      states;
      dir = [||];
      dir_len = 0;
      dir_default = shards;
      home;
      read_level;
      shard_op_active = false;
      shard_pending = Queue.create ();
    }
  in
  (* Membership fence: every envelope is stamped with its shard's epoch at
     send time (see [request_shard]); requests carrying quorum evidence
     from a superseded view are dropped on arrival.  Apply/Release stay
     unfenced — they are idempotent version-guarded installers of
     *decided* commits, and fencing a retransmission would risk losing
     one.  Sync_req is catch-up traffic from nodes that are stale by
     definition. *)
  Sim.Rpc.set_fencing rpc
    ~epoch_of:(fun req -> !(sharding.states.(request_shard sharding req).sh_epoch))
    ~fenceable:(function
      | Messages.Read_req _ | Messages.Commit_req _ | Messages.Batch_commit_req _
      | Messages.Status_req _ | Messages.Handoff _ ->
        true
      | Messages.Apply _ | Messages.Release _ | Messages.Sync_req -> false);
  let metrics = Metrics.create () in
  let oracle = if with_oracle then Some (Oracle.create ()) else None in
  let ids = Ids.gen () in
  let quorums =
    {
      Executor.read_quorum =
        (fun ~shard ~node ->
          let st = sharding.states.(shard) in
          if !(st.sh_wedged) then []
          else
            Option.value ~default:[]
              (Quorum.Tree_quorum.read_quorum ~salt:node st.sh_tq));
      write_quorum =
        (fun ~shard ~node ->
          let st = sharding.states.(shard) in
          if !(st.sh_wedged) then []
          else
            Option.value ~default:[]
              (Quorum.Tree_quorum.write_quorum ~salt:node st.sh_tq));
      node_alive = (fun node -> not (Sim.Network.is_failed network node));
      epoch = (fun ~shard -> !(sharding.states.(shard).sh_epoch));
      shard_of = (fun oid -> shard_of_oid_s sharding oid);
      home_shard = (fun node -> sharding.home.(node));
    }
  in
  let executor =
    Executor.create ~engine ~rpc ~quorums ~config ~metrics ?oracle ~batch_commit
      ~ids ~seed:(seed + 3) ()
  in
  (* Arm the lease-termination machinery on every replica.  The peer set —
     read quorum extended with the write quorum of the replica's home
     shard, both salted by the asking node — is consulted lazily at status
     time so node failures and membership changes are respected.  The
     union intersects the lease owner's write quorum in several members
     (every write quorum shares the root and overlapping child
     majorities), so a decided commit stays visible even when a lossy
     link starved one intersection node of its Apply.  [node_alive] gates
     the cross-shard peers a Commit_req pinned (they cannot be recomputed
     from this shard's trees). *)
  Array.iter
    (fun server ->
      Server.enable_termination server
        ~node_alive:(fun n -> not (Sim.Network.is_failed network n))
        ~engine ~rpc
        ~status_peers:(fun () ->
          let node = Server.node server in
          let st = sharding.states.(sharding.home.(node)) in
          if !(st.sh_wedged) then []
          else
            let of_opt q = Option.value ~default:[] q in
            List.sort_uniq Int.compare
              (of_opt (Quorum.Tree_quorum.read_quorum ~salt:node st.sh_tq)
              @ of_opt (Quorum.Tree_quorum.write_quorum ~salt:node st.sh_tq)))
        ~metrics ~config)
    servers;
  let failure =
    Sim.Failure.create ~engine ~detection_delay ~detection_jitter ~seed:(seed + 5)
      ~kill:(fun node ->
        Sim.Network.fail network node;
        (* Fail-stop loses volatile state: locks, leases and the applied
           set die with the node (durable copies survive until the
           recovery resync refreshes them).  This also silences the dead
           node's lease watchdogs — behind a failed NIC their status
           rounds could never complete and would retry forever. *)
        Store.Replica.reset_transients (Server.store servers.(node));
        (* Coordinators hosted on the node die with it (fail-stop). *)
        Executor.kill_node executor ~node)
      ()
  in
  Sim.Failure.on_detect failure (fun node ->
      Array.iter
        (fun st -> Quorum.Tree_quorum.mark_failed st.sh_tq node)
        sharding.states);
  let t =
    {
      engine;
      network;
      rpc;
      servers;
      sharding;
      failure;
      executor;
      metrics;
      oracle;
      config;
      ids;
      rng = Util.Rng.create (seed + 4);
    }
  in
  Sim.Failure.on_recover failure (fun ~node ~was_killed ->
      Sim.Network.revive t.network node;
      (* Both paths state-transfer before rejoining: a falsely suspected
         node kept its disk but was bypassed by quorums, so it may have
         missed commits just like a crashed one. *)
      resync t ~node ~started:(Sim.Engine.now t.engine) ~was_killed);
  (* Spares start decommissioned: powered machines outside the view, dark
     on the network until a join (or replace) maps a tree position onto
     them and re-replicates state. *)
  for node = nodes to total - 1 do
    Sim.Network.fail t.network node
  done;
  t

let engine t = t.engine
let tracer t = Sim.Engine.tracer t.engine
let network t = t.network
let executor t = t.executor
let metrics t = t.metrics
let oracle t = t.oracle
let config t = t.config
let failure t = t.failure
let ids t = t.ids
let rng t = t.rng
let now t = Sim.Engine.now t.engine

(* Objects live on their owning shard's members only; the directory entry
   is recorded at install time, so later splits relocate exactly the oids
   that exist. *)
let install_object t ~oid ~init =
  ensure_dir t.sharding ~oid;
  List.iter
    (fun node -> Store.Replica.install (Server.store t.servers.(node)) ~oid ~init)
    (shard_members t ~shard:(shard_of_oid t oid))

let alloc_object t ~init =
  let oid = Ids.fresh_obj t.ids in
  install_object t ~oid ~init;
  oid

let store_of t ~node = Server.store t.servers.(node)
let server_of t ~node = t.servers.(node)

let submit t ~node program ~on_done = Executor.run_root t.executor ~node ~program ~on_done

let run_program t ~node program =
  let result = ref None in
  submit t ~node program ~on_done:(fun outcome -> result := Some outcome);
  let rec drive () =
    match !result with
    | Some outcome -> outcome
    | None ->
      if Sim.Engine.step t.engine then drive ()
      else invalid_arg "Cluster.run_program: engine drained without completion"
  in
  drive ()

let fail_node_at t ~at ~node = Sim.Failure.schedule t.failure ~at ~node
let recover_node_at t ~at ~node = Sim.Failure.schedule_recovery t.failure ~at ~node

let suspect_node_at ?clear_after t ~at ~node =
  Sim.Failure.schedule_false_suspicion ?clear_after t.failure ~at ~node

(* ------------------------------------------------------------------ *)
(* Epoch-based reconfiguration: join / graceful leave / replace — now
   per shard.

   Every operation runs the same fenced state machine on one shard:

   1. {b wedge} — the shard's quorum construction is suspended (every
      quorum closure returns [[]], so executors and lease watchdogs retry
      politely), and the machine waits two request timeouts for in-flight
      quorum rounds to land or expire.  A joining node is revived on the
      network now so it can serve the state transfer.  Other shards run
      undisturbed.
   2. {b snapshot} — the subject node pulls a read ∪ write quorum of the
      shard's {e outgoing} view ([Sync_req], the same path crash recovery
      uses) and keeps the per-object maximum version: quorum intersection
      in the old view guarantees this covers every committed write.
   3. {b install} — the new member list is installed ([set_members]
      rebuilds the quorum tree), the shard epoch is bumped, and — for
      joins and replaces — the joiner adopts the snapshot locally.
   4. {b handoff} — the snapshot is pushed ([Handoff], version-guarded
      and idempotent) to every reachable member of the incoming view, so
      new-view quorums intersect the committed prefix even where old- and
      new-view quorums do not intersect each other.
   5. {b unwedge} — quorums resume under the new epoch.  Envelopes
      stamped with the old epoch are now fenced.
   6. {b departure} (leave/replace) — the leaver drains: once it holds no
      leases and hosts no live coordinators it is failed off the network
      and its volatile state cleared.  Departed nodes return to the spare
      pool and may be re-joined later (rolling restarts). *)

let reconfig_code = function Join _ -> 0 | Leave _ -> 1 | Replace _ -> 2

(* The node that sources the snapshot and handoff: the joiner where there
   is one (it must state-sync anyway), else the leaver. *)
let reconfig_subject = function
  | Join node -> node
  | Leave node -> node
  | Replace { joining; _ } -> joining

let reconfig_joining = function
  | Join node -> Some node
  | Leave _ -> None
  | Replace { joining; _ } -> Some joining

let reconfig_leaving = function
  | Join _ -> None
  | Leave node -> Some node
  | Replace { leaving; _ } -> Some leaving

let validate_reconfig t st op =
  let total = nodes t in
  (* A machine serves at most one shard, so joining is checked against the
     union view; leaving against the shard's own members. *)
  let mem = members t in
  let shard_mem = Quorum.Tree_quorum.members st.sh_tq in
  let check_joining node =
    if node < 0 || node >= total then
      invalid_arg
        (Printf.sprintf "Cluster: cannot join node %d: no such machine (capacity %d)"
           node total);
    if List.mem node mem then
      invalid_arg
        (Printf.sprintf
           "Cluster: cannot join node %d: already a member (t=%.1f epoch=%d view=[%s])"
           node (Sim.Engine.now t.engine) !(st.sh_epoch)
           (String.concat ";" (List.map string_of_int mem)))
  in
  let check_leaving node =
    if not (List.mem node shard_mem) then
      invalid_arg (Printf.sprintf "Cluster: cannot remove node %d: not a member" node)
  in
  match op with
  | Join node -> check_joining node
  | Leave node ->
    check_leaving node;
    if List.length shard_mem - 1 < min_members then
      invalid_arg
        (Printf.sprintf
           "Cluster: cannot remove node %d: %d members is below the quorum-viable \
            minimum (%d)"
           node (List.length shard_mem) min_members)
  | Replace { leaving; joining } ->
    check_leaving leaving;
    check_joining joining

let trace_view t ~kind ~node ~a ~b ~shard =
  let tracer = Sim.Engine.tracer t.engine in
  if Obs.Tracer.enabled tracer then
    Obs.Tracer.emit8 tracer ~time:(Sim.Engine.now t.engine) ~kind ~node ~txn:(-1)
      ~oid:(-1) ~a ~b ~x:(Float.of_int shard)

let rec start_reconfig t st op ~on_done =
  if st.sh_reconfig_active || not (Queue.is_empty st.sh_pending) then
    (* One view change at a time per shard: queue behind the active one,
       FIFO, and validate only when actually starting — a queued replace
       may re-use a machine an earlier operation is still decommissioning.
       The queue check matters even when nothing is active:
       [finish_reconfig] drains the queue after a grace delay, and an
       operation arriving inside that gap must not jump ahead of the ones
       already waiting. *)
    Queue.add (op, on_done) st.sh_pending
  else launch_reconfig t st op ~on_done

and launch_reconfig t st op ~on_done =
  begin
    validate_reconfig t st op;
    st.sh_reconfig_active <- true;
    st.sh_wedged := true;
    trace_view t ~kind:Obs.Sem.view_wedge
      ~node:(reconfig_subject op)
      ~a:(reconfig_code op)
      ~b:(match reconfig_joining op with Some j -> j | None -> -1)
      ~shard:st.sh_id;
    (* A joiner comes back on the network now — still outside the view —
       so it can pull the snapshot and receive the handoff. *)
    (match reconfig_joining op with
    | Some j ->
      Sim.Network.revive t.network j;
      Array.iter (fun s -> Quorum.Tree_quorum.revive s.sh_tq j) t.sharding.states;
      Sim.Failure.clear_suspicion t.failure j
    | None -> ());
    (* Let in-flight quorum rounds land or time out before snapshotting:
       the wedge stops new rounds, and two request timeouts bound the
       stragglers (a round started just before the wedge plus its reply). *)
    Sim.Engine.schedule t.engine ~delay:(2. *. t.config.Config.request_timeout)
      (fun () -> snapshot_phase t st op ~on_done)
  end

(* Pull the committed state through the outgoing view's quorums.  The
   union read ∪ write quorum mirrors [resync]: commits decided just before
   the wedge may still have Applies in flight, and the wider set maximises
   the chance of including a member that already installed them. *)
and snapshot_phase t st op ~on_done =
  let src = reconfig_subject op in
  let quorum =
    let of_opt q = Option.value ~default:[] q in
    List.sort_uniq Int.compare
      (of_opt (Quorum.Tree_quorum.read_quorum ~salt:src st.sh_tq)
      @ of_opt (Quorum.Tree_quorum.write_quorum ~salt:src st.sh_tq))
  in
  let retry () =
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        snapshot_phase t st op ~on_done)
  in
  match quorum with
  | [] -> retry ()
  | dsts ->
    Sim.Rpc.multicall t.rpc ~kind:Messages.sync_req_kind ~src ~dsts
      ~timeout:t.config.Config.request_timeout Messages.Sync_req
      ~on_done:(fun ~replies ~missing ->
        if missing <> [] then retry ()
        else begin
          (* Per-object maximum over the quorum's replies = the committed
             frontier of the outgoing view. *)
          let best = Hashtbl.create 256 in
          List.iter
            (fun (_, reply) ->
              match reply with
              | Messages.Sync_rep { objects } ->
                List.iter
                  (fun (oid, version, value) ->
                    match Hashtbl.find_opt best oid with
                    | Some (v, _) when v >= version -> ()
                    | _ -> Hashtbl.replace best oid (version, value))
                  objects
              | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
              | Messages.Status_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
                ())
            replies;
          let snapshot =
            Hashtbl.fold (fun oid (version, value) acc -> (oid, version, value) :: acc)
              best []
            |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
          in
          install_phase t st op ~snapshot ~on_done
        end)

and install_phase t st op ~snapshot ~on_done =
  let old_members = Quorum.Tree_quorum.members st.sh_tq in
  let new_members =
    match op with
    | Join node -> node :: old_members
    | Leave node -> List.filter (fun n -> n <> node) old_members
    | Replace { leaving; joining } ->
      joining :: List.filter (fun n -> n <> leaving) old_members
  in
  Quorum.Tree_quorum.set_members st.sh_tq new_members;
  incr st.sh_epoch;
  Metrics.note_view_change t.metrics;
  trace_view t ~kind:Obs.Sem.view_change
    ~node:(reconfig_subject op)
    ~a:!(st.sh_epoch)
    ~b:(List.length new_members)
    ~shard:st.sh_id;
  (* The joiner adopts the snapshot directly — this is the Sync_req /
     Sync_rep catch-up path, applied locally instead of over the wire —
     and becomes one of this shard's replicas. *)
  (match reconfig_joining op with
  | Some j ->
    t.sharding.home.(j) <- st.sh_id;
    let store = Server.store t.servers.(j) in
    Store.Replica.reset_transients store;
    List.iter
      (fun (oid, version, value) -> Store.Replica.sync_copy store ~oid ~version ~value)
      snapshot
  | None -> ());
  handoff_phase t st op ~snapshot ~tries:0 ~on_done

(* Re-replicate the committed frontier to every reachable member of the
   incoming view.  Old- and new-view quorums need not intersect, so
   without this push a new-view read quorum could miss a write committed
   under the old view.  [sync_copy] is version-guarded and idempotent, so
   duplicates and stale rows are harmless.  Members that are down right
   now are skipped — their recovery resync refreshes them from the
   (post-handoff) current view. *)
and handoff_phase t st op ~snapshot ~tries ~on_done =
  let src = reconfig_subject op in
  let dsts =
    List.filter
      (fun n -> n <> src && not (Sim.Network.is_failed t.network n))
      (Quorum.Tree_quorum.members st.sh_tq)
  in
  if dsts = [] then unwedge_phase t st op ~on_done
  else
    Sim.Rpc.multicall t.rpc ~kind:Messages.handoff_kind ~src ~dsts
      ~timeout:t.config.Config.request_timeout
      (Messages.Handoff { objects = snapshot })
      ~on_done:(fun ~replies:_ ~missing ->
        let missing_alive =
          List.filter (fun n -> not (Sim.Network.is_failed t.network n)) missing
        in
        if missing_alive <> [] && tries < 10 then
          Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout
            (fun () -> handoff_phase t st op ~snapshot ~tries:(tries + 1) ~on_done)
        else unwedge_phase t st op ~on_done)

and unwedge_phase t st op ~on_done =
  st.sh_wedged := false;
  match reconfig_leaving op with
  | None -> finish_reconfig t st op ~on_done
  | Some node -> drain_departure t st op ~node ~polls:0 ~on_done

(* Graceful departure: wait until the leaver neither holds write-lock
   leases nor hosts a live coordinator, then take it off the network and
   clear its volatile state — exactly what a crash would do, except
   nothing of value is lost.  The poll count is bounded: a coordinator
   wedged behind a partition would otherwise hold the machine hostage,
   and killing it after the grace window is the fail-stop the protocol
   already tolerates. *)
and drain_departure t st op ~node ~polls ~on_done =
  let holds_leases = Store.Replica.held_leases (Server.store t.servers.(node)) <> [] in
  let hosts_roots =
    List.exists (fun (n, _) -> n = node) (Executor.in_flight t.executor)
  in
  if (holds_leases || hosts_roots) && polls < 20 then
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        drain_departure t st op ~node ~polls:(polls + 1) ~on_done)
  else begin
    Sim.Network.fail t.network node;
    Store.Replica.reset_transients (Server.store t.servers.(node));
    Executor.kill_node t.executor ~node;
    finish_reconfig t st op ~on_done
  end

and finish_reconfig t st op ~on_done =
  trace_view t ~kind:Obs.Sem.view_done ~node:(reconfig_subject op) ~a:!(st.sh_epoch)
    ~b:(reconfig_code op) ~shard:st.sh_id;
  st.sh_reconfig_active <- false;
  (match on_done with Some f -> f () | None -> ());
  kick_pending t st

(* Drain one queued reconfiguration after a quiet timeout, so retried
   transactions see the new quorums before the next wedge.  The head
   stays queued until the drain fires: [start_reconfig]'s queue check
   keeps later arrivals behind it.  If a shard-directory operation
   grabbed the shard meanwhile, poll again — its own finish also kicks,
   and a drained queue makes the extra poll a no-op. *)
and kick_pending t st =
  if not (Queue.is_empty st.sh_pending) then
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        if st.sh_reconfig_active then kick_pending t st
        else
          match Queue.take_opt st.sh_pending with
          | None -> ()
          | Some (next, next_done) -> launch_reconfig t st next ~on_done:next_done)

let schedule_reconfig ?on_done ?(shard = 0) t ~at op =
  Sim.Engine.schedule t.engine
    ~delay:(Float.max 0. (at -. now t))
    (fun () ->
      if shard < 0 || shard >= shard_count t then
        invalid_arg
          (Printf.sprintf "Cluster: no such shard %d (%d shards)" shard
             (shard_count t));
      start_reconfig t t.sharding.states.(shard) op ~on_done)

let join_node_at ?on_done ?shard t ~at ~node =
  schedule_reconfig ?on_done ?shard t ~at (Join node)

let leave_node_at ?on_done ?shard t ~at ~node =
  schedule_reconfig ?on_done ?shard t ~at (Leave node)

let replace_node_at ?on_done ?shard t ~at ~leaving ~joining =
  schedule_reconfig ?on_done ?shard t ~at (Replace { leaving; joining })

(* ------------------------------------------------------------------ *)
(* Shard-directory operations: move one object between shards, or split a
   shard in two.  Same wedge / snapshot / install / handoff / unwedge
   discipline as membership reconfiguration, but the involved shards are
   wedged together and both epochs bump — commit rounds in flight against
   either view must re-fetch quorums, and stale envelopes fence. *)

let shard_op_code = function Move_object _ -> 3 | Split_shard _ -> 4

let validate_shard_op t op =
  let nsh = shard_count t in
  match op with
  | Move_object { oid; to_shard } ->
    if to_shard < 0 || to_shard >= nsh then
      invalid_arg
        (Printf.sprintf "Cluster: cannot move object %d: no such shard %d (%d shards)"
           oid to_shard nsh);
    if oid < 0 || oid >= t.sharding.dir_len then
      invalid_arg
        (Printf.sprintf "Cluster: cannot move object %d: not an allocated object" oid);
    if t.sharding.dir.(oid) = to_shard then
      invalid_arg
        (Printf.sprintf "Cluster: cannot move object %d: already on shard %d" oid
           to_shard)
  | Split_shard shard ->
    if shard < 0 || shard >= nsh then
      invalid_arg
        (Printf.sprintf "Cluster: cannot split shard %d: no such shard (%d shards)"
           shard nsh);
    let m = List.length (shard_members t ~shard) in
    if m < 2 * min_members then
      invalid_arg
        (Printf.sprintf
           "Cluster: cannot split shard %d: %d members cannot form two quorum-viable \
            shards (minimum %d each)"
           shard m min_members)

let shard_op_source t = function
  | Move_object { oid; _ } -> t.sharding.dir.(oid)
  | Split_shard shard -> shard

let involved_shards t = function
  | Move_object { oid; to_shard } -> [ t.sharding.dir.(oid); to_shard ]
  | Split_shard shard -> [ shard ]

let rec start_shard_op t op ~on_done =
  if t.sharding.shard_op_active || not (Queue.is_empty t.sharding.shard_pending)
  then Queue.add (op, on_done) t.sharding.shard_pending
  else launch_shard_op t op ~on_done

and launch_shard_op t op ~on_done =
  validate_shard_op t op;
  let involved = involved_shards t op in
  if
    List.exists (fun s -> t.sharding.states.(s).sh_reconfig_active) involved
  then
    (* a membership reconfiguration owns one of the shards: poll until
       it finishes (its queue drain cannot start us — shard ops live in
       their own queue) *)
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        launch_shard_op t op ~on_done)
  else begin
    t.sharding.shard_op_active <- true;
    List.iter
      (fun s ->
        let st = t.sharding.states.(s) in
        st.sh_reconfig_active <- true;
        st.sh_wedged := true)
      involved;
    trace_view t ~kind:Obs.Sem.view_wedge ~node:(-1) ~a:(shard_op_code op)
      ~b:(match op with Move_object { oid; _ } -> oid | Split_shard _ -> -1)
      ~shard:(shard_op_source t op);
    (* Same grace window as membership ops: let in-flight quorum rounds
       land or expire under the wedge before touching the directory. *)
    Sim.Engine.schedule t.engine ~delay:(2. *. t.config.Config.request_timeout)
      (fun () -> shard_snapshot_phase t op ~involved ~on_done)
  end

(* Pull the source shard's committed frontier through its (outgoing-view)
   read ∪ write quorum union, exactly like the membership snapshot — the
   data a move or split redistributes must cover every committed write. *)
and shard_snapshot_phase t op ~involved ~on_done =
  let src_shard = shard_op_source t op in
  let st = t.sharding.states.(src_shard) in
  let salt = List.hd (Quorum.Tree_quorum.members st.sh_tq) in
  let quorum =
    let of_opt q = Option.value ~default:[] q in
    List.sort_uniq Int.compare
      (of_opt (Quorum.Tree_quorum.read_quorum ~salt st.sh_tq)
      @ of_opt (Quorum.Tree_quorum.write_quorum ~salt st.sh_tq))
  in
  let retry () =
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        shard_snapshot_phase t op ~involved ~on_done)
  in
  match quorum with
  | [] -> retry ()
  | dsts ->
    Sim.Rpc.multicall t.rpc ~kind:Messages.sync_req_kind ~src:salt ~dsts
      ~timeout:t.config.Config.request_timeout Messages.Sync_req
      ~on_done:(fun ~replies ~missing ->
        if missing <> [] then retry ()
        else begin
          let best = Hashtbl.create 256 in
          List.iter
            (fun (_, reply) ->
              match reply with
              | Messages.Sync_rep { objects } ->
                List.iter
                  (fun (oid, version, value) ->
                    match Hashtbl.find_opt best oid with
                    | Some (v, _) when v >= version -> ()
                    | _ -> Hashtbl.replace best oid (version, value))
                  objects
              | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
              | Messages.Status_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
                ())
            replies;
          let snapshot =
            Hashtbl.fold (fun oid (version, value) acc -> (oid, version, value) :: acc)
              best []
            |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
          in
          match op with
          | Move_object { oid; to_shard } ->
            shard_move_install t ~oid ~to_shard ~src_shard ~snapshot ~involved
              ~on_done
          | Split_shard shard ->
            shard_split_install t ~shard ~snapshot ~involved ~on_done
        end)

(* Move: push the object's committed row to the destination shard's
   members, then flip the directory entry and bump both epochs. *)
and shard_move_install t ~oid ~to_shard ~src_shard ~snapshot ~involved ~on_done =
  let row =
    List.filter (fun (o, _, _) -> o = oid) snapshot
  in
  let push ~tries ~k =
    let dst = t.sharding.states.(to_shard) in
    let dsts =
      List.filter
        (fun n -> not (Sim.Network.is_failed t.network n))
        (Quorum.Tree_quorum.members dst.sh_tq)
    in
    if row = [] || dsts = [] then k ()
    else
      let rec attempt tries =
        Sim.Rpc.multicall t.rpc ~kind:Messages.handoff_kind
          ~src:(List.hd (Quorum.Tree_quorum.members t.sharding.states.(src_shard).sh_tq))
          ~dsts ~timeout:t.config.Config.request_timeout
          (Messages.Handoff { objects = row })
          ~on_done:(fun ~replies:_ ~missing ->
            let missing_alive =
              List.filter (fun n -> not (Sim.Network.is_failed t.network n)) missing
            in
            if missing_alive <> [] && tries < 10 then
              Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout
                (fun () -> attempt (tries + 1))
            else k ())
      in
      attempt tries
  in
  push ~tries:0 ~k:(fun () ->
      t.sharding.dir.(oid) <- to_shard;
      List.iter
        (fun s ->
          let st = t.sharding.states.(s) in
          incr st.sh_epoch;
          Metrics.note_view_change t.metrics;
          trace_view t ~kind:Obs.Sem.view_change ~node:(-1) ~a:!(st.sh_epoch)
            ~b:(List.length (Quorum.Tree_quorum.members st.sh_tq))
            ~shard:s)
        involved;
      finish_shard_op t ~involved ~on_done)

(* Split: the first half of the member list keeps the shard, the second
   half becomes a brand-new shard; the shard's objects alternate between
   the halves (even directory positions stay, odd ones move).  Both halves
   get the full committed frontier pushed — their new, smaller quorums
   need not intersect the old shard's write quorums. *)
and shard_split_install t ~shard ~snapshot ~involved ~on_done =
  let st = t.sharding.states.(shard) in
  let old_members = Quorum.Tree_quorum.members st.sh_tq in
  let n = List.length old_members in
  let keep_n = (n + 1) / 2 in
  let keep = List.filteri (fun i _ -> i < keep_n) old_members in
  let moved = List.filteri (fun i _ -> i >= keep_n) old_members in
  let new_id = Array.length t.sharding.states in
  let ntq =
    Quorum.Tree_quorum.create ~read_level:t.sharding.read_level
      ~capacity:(nodes t) ~nodes:(List.length moved) ()
  in
  Quorum.Tree_quorum.set_members ntq moved;
  (* Carry the failure knowledge over: liveness flags are keyed by
     physical id, and a crashed member must not appear in the new shard's
     quorums before its recovery resync. *)
  List.iter (Quorum.Tree_quorum.mark_failed ntq) (Quorum.Tree_quorum.failed st.sh_tq);
  Quorum.Tree_quorum.set_members st.sh_tq keep;
  (* Odd-indexed objects of the shard move to the new half. *)
  let idx = ref 0 in
  for oid = 0 to t.sharding.dir_len - 1 do
    if t.sharding.dir.(oid) = shard then begin
      if !idx land 1 = 1 then t.sharding.dir.(oid) <- new_id;
      incr idx
    end
  done;
  List.iter (fun nd -> t.sharding.home.(nd) <- new_id) moved;
  incr st.sh_epoch;
  Metrics.note_view_change t.metrics;
  trace_view t ~kind:Obs.Sem.view_change ~node:(-1) ~a:!(st.sh_epoch)
    ~b:(List.length keep) ~shard;
  let nst =
    {
      sh_id = new_id;
      sh_tq = ntq;
      sh_epoch = ref !(st.sh_epoch);
      sh_wedged = ref true;
      sh_reconfig_active = true;
      sh_pending = Queue.create ();
    }
  in
  t.sharding.states <-
    Array.init (new_id + 1) (fun i ->
        if i < new_id then t.sharding.states.(i) else nst);
  Metrics.note_view_change t.metrics;
  trace_view t ~kind:Obs.Sem.view_change ~node:(-1) ~a:!(nst.sh_epoch)
    ~b:(List.length moved) ~shard:new_id;
  (* Level every member of both halves to the committed frontier. *)
  let src = List.hd keep in
  let rec push tries =
    let dsts =
      List.filter
        (fun nd -> nd <> src && not (Sim.Network.is_failed t.network nd))
        old_members
    in
    if snapshot = [] || dsts = [] then
      finish_shard_op t ~involved:(new_id :: involved) ~on_done
    else
      Sim.Rpc.multicall t.rpc ~kind:Messages.handoff_kind ~src ~dsts
        ~timeout:t.config.Config.request_timeout
        (Messages.Handoff { objects = snapshot })
        ~on_done:(fun ~replies:_ ~missing ->
          let missing_alive =
            List.filter (fun nd -> not (Sim.Network.is_failed t.network nd)) missing
          in
          if missing_alive <> [] && tries < 10 then
            Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout
              (fun () -> push (tries + 1))
          else finish_shard_op t ~involved:(new_id :: involved) ~on_done)
  in
  push 0

and finish_shard_op t ~involved ~on_done =
  List.iter
    (fun s ->
      let st = t.sharding.states.(s) in
      st.sh_wedged := false;
      st.sh_reconfig_active <- false;
      trace_view t ~kind:Obs.Sem.view_done ~node:(-1) ~a:!(st.sh_epoch) ~b:(-1)
        ~shard:s)
    (List.sort_uniq Int.compare involved);
  t.sharding.shard_op_active <- false;
  (match on_done with Some f -> f () | None -> ());
  (* Membership reconfigurations queued while we held these shards. *)
  List.iter
    (fun s -> kick_pending t t.sharding.states.(s))
    (List.sort_uniq Int.compare involved);
  if not (Queue.is_empty t.sharding.shard_pending) then
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        if not t.sharding.shard_op_active then
          match Queue.take_opt t.sharding.shard_pending with
          | None -> ()
          | Some (next, next_done) -> launch_shard_op t next ~on_done:next_done)

let schedule_shard_op ?on_done t ~at op =
  Sim.Engine.schedule t.engine
    ~delay:(Float.max 0. (at -. now t))
    (fun () -> start_shard_op t op ~on_done)

let move_object_at ?on_done t ~at ~oid ~to_shard =
  schedule_shard_op ?on_done t ~at (Move_object { oid; to_shard })

let split_shard_at ?on_done t ~at ~shard =
  schedule_shard_op ?on_done t ~at (Split_shard shard)

let run_for t duration =
  Sim.Engine.run ~until:(Sim.Engine.now t.engine +. duration) t.engine

let drain t = Sim.Engine.run t.engine

let check_consistency t =
  match t.oracle with
  | Some oracle -> Oracle.check oracle
  | None -> Error "oracle disabled for this cluster"

let reset_counters t =
  Metrics.reset t.metrics;
  Sim.Network.reset_counters t.network;
  Sim.Rpc.reset_give_ups t.rpc;
  Sim.Rpc.reset_fenced t.rpc

let messages_sent t = Sim.Network.messages_sent t.network
let messages_by_kind t = Sim.Network.messages_by_kind t.network
let messages_dropped t = Sim.Network.messages_dropped t.network
let messages_duplicated t = Sim.Network.messages_duplicated t.network
let retransmit_exhausted t = Sim.Rpc.give_ups t.rpc
let fenced_messages t = Sim.Rpc.fenced t.rpc
let in_flight t = Executor.in_flight t.executor

let held_leases t =
  let acc = ref [] in
  Array.iteri
    (fun node server ->
      List.iter
        (fun (oid, owner, expires) -> acc := (node, oid, owner, expires) :: !acc)
        (Store.Replica.held_leases (Server.store server)))
    t.servers;
  List.rev !acc
