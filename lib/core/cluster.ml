type reconfig =
  | Join of int
  | Leave of int
  | Replace of { leaving : int; joining : int }

type t = {
  engine : Sim.Engine.t;
  network : (Messages.request, Messages.reply) Sim.Rpc.envelope Sim.Network.t;
  rpc : (Messages.request, Messages.reply) Sim.Rpc.t;
  servers : Server.t array;
  tree_quorum : Quorum.Tree_quorum.t;
  failure : Sim.Failure.t;
  executor : Executor.t;
  metrics : Metrics.t;
  oracle : Oracle.t option;
  config : Config.t;
  ids : Ids.gen;
  rng : Util.Rng.t;
  (* Membership view: the current epoch (bumped by every reconfiguration)
     and a wedge flag raised while one is in progress.  Both are refs so
     the executor's quorum closures and the RPC fencing hook — built
     before the record — share them. *)
  epoch : int ref;
  wedged : bool ref;
  mutable reconfig_active : bool;
  (* Reconfigurations waiting behind the active one, in submission order.
     FIFO matters: a replace may legitimately re-use a machine an earlier
     queued operation decommissions, so reordering would make a valid
     schedule fail validation. *)
  pending_reconfigs : (reconfig * (unit -> unit) option) Queue.t;
}

(* Memoisation lives in [Tree_quorum] (generation-keyed, per salt), so these
   are plain delegations; an unconstructible quorum degrades to [[]], as do
   all quorums while a reconfiguration has the cluster wedged — callers
   treat an empty quorum as "retry politely". *)
let read_quorum_of t ~node =
  if !(t.wedged) then []
  else Option.value ~default:[] (Quorum.Tree_quorum.read_quorum ~salt:node t.tree_quorum)

let write_quorum_of t ~node =
  if !(t.wedged) then []
  else Option.value ~default:[] (Quorum.Tree_quorum.write_quorum ~salt:node t.tree_quorum)

let nodes t = Array.length t.servers
let members t = Quorum.Tree_quorum.members t.tree_quorum
let is_member t node = List.mem node (members t)
let epoch t = !(t.epoch)

(* Re-admit a node to quorum construction.  This runs only after state
   transfer completed — for recovered crashes AND cleared false
   suspicions alike (see [resync]). *)
let readmit t node =
  Quorum.Tree_quorum.revive t.tree_quorum node;
  Sim.Failure.clear_suspicion t.failure node

(* Catch-up protocol for a node rejoining the membership view: refresh the
   stale replica from a full read quorum (which intersects every write
   quorum {e of the current view}, so the per-object maximum version over
   the replies covers every committed write), then rejoin.  The node
   itself is still marked failed in the quorum layer, so the sync quorum
   never includes it.

   Crucially this runs for cleared false suspicions too, not just crash
   recoveries: while a node is suspected, quorum construction routes
   around it, so commits during that window may touch {e no} member of a
   quorum the rejoining node later serves in.  Tree-quorum intersection
   only holds between quorums built under the same view — a node that was
   out of the view must state-transfer before serving again, or a
   post-heal read quorum made of bypassed members can miss a
   during-partition commit entirely (observed as a stale-read livelock:
   deterministic quorums re-serve the same stale version every retry,
   and write-quorum members that are ahead vote the commit down
   forever). *)
let rec resync t ~node ~started ~was_killed =
  (* Read ∪ write quorum, like the status peer set: commits decided just
     before this sync may still have Applies in flight, and the wider set
     maximises the chance of hitting a member that already installed
     them. *)
  let quorum =
    let of_opt q = Option.value ~default:[] q in
    List.sort_uniq Int.compare
      (of_opt (Quorum.Tree_quorum.read_quorum ~salt:node t.tree_quorum)
      @ of_opt (Quorum.Tree_quorum.write_quorum ~salt:node t.tree_quorum))
  in
  let retry () =
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        resync t ~node ~started ~was_killed)
  in
  match quorum with
  | [] -> retry ()
  | dsts ->
    Metrics.note_sync t.metrics;
    let tracer = Sim.Engine.tracer t.engine in
    if Obs.Tracer.enabled tracer then
      Obs.Tracer.emit tracer ~time:(Sim.Engine.now t.engine)
        ~kind:Obs.Sem.sync_start ~node ~a:(List.length dsts) ();
    Sim.Rpc.multicall t.rpc ~kind:Messages.sync_req_kind ~src:node ~dsts
      ~timeout:t.config.Config.request_timeout Messages.Sync_req
      ~on_done:(fun ~replies ~missing ->
        if missing <> [] then retry ()
        else begin
          let store = Server.store t.servers.(node) in
          Store.Replica.reset_transients store;
          List.iter
            (fun (_, reply) ->
              match reply with
              | Messages.Sync_rep { objects } ->
                List.iter
                  (fun (oid, version, value) ->
                    Store.Replica.sync_copy store ~oid ~version ~value)
                  objects
              | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
              | Messages.Status_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
                ())
            replies;
          if Obs.Tracer.enabled tracer then
            Obs.Tracer.emit tracer ~time:(Sim.Engine.now t.engine)
              ~kind:Obs.Sem.sync_done ~node ~a:(List.length replies) ();
          readmit t node;
          if was_killed then
            Metrics.note_recovery t.metrics
              ~duration:(Sim.Engine.now t.engine -. started)
        end)

let create ?(nodes = 13) ?(spares = 0) ?(seed = 1) ?topology ?(service_time = 0.25)
    ?(read_level = 1) ?(detection_delay = 50.) ?(detection_jitter = 0.)
    ?(with_oracle = true) ?(tracer = Obs.Tracer.null) ?(batch_fanout = true)
    ?(batch_commit = false) config =
  let total = nodes + spares in
  let engine = Sim.Engine.create ~tracer () in
  let topology =
    match topology with
    | Some t -> t
    | None -> Sim.Topology.create ~seed:(seed + 1) ~nodes:total ()
  in
  assert (Sim.Topology.nodes topology = total);
  let network =
    Sim.Network.create ~engine ~topology ~service_time ~seed:(seed + 2)
      ~batch_fanout ()
  in
  let rpc =
    Sim.Rpc.create ~seed:(seed + 6)
      ~retry_base:config.Config.retransmit_backoff_base
      ~retry_max:config.Config.retransmit_backoff_max ~network ()
  in
  let epoch = ref 0 in
  let wedged = ref false in
  (* Membership fence: every envelope is stamped with the cluster epoch at
     send time; requests carrying quorum evidence from a superseded view
     are dropped on arrival.  Apply/Release stay unfenced — they are
     idempotent version-guarded installers of *decided* commits, and
     fencing a retransmission would risk losing one.  Sync_req is catch-up
     traffic from nodes that are stale by definition. *)
  Sim.Rpc.set_fencing rpc
    ~epoch_of:(fun _ -> !epoch)
    ~fenceable:(function
      | Messages.Read_req _ | Messages.Commit_req _ | Messages.Batch_commit_req _
      | Messages.Status_req _ | Messages.Handoff _ ->
        true
      | Messages.Apply _ | Messages.Release _ | Messages.Sync_req -> false);
  let servers =
    Array.init total (fun node ->
        Server.create ~node ~store:(Store.Replica.create ()))
  in
  let clock () = Sim.Engine.now engine in
  Array.iter
    (fun server ->
      Server.instrument server ~tracer ~clock;
      Store.Replica.instrument (Server.store server) ~tracer
        ~node:(Server.node server) ~clock;
      Sim.Rpc.serve rpc ~node:(Server.node server) (fun ~src request ->
          Server.handle server ~src request))
    servers;
  (* The quorum tree spans [nodes] logical positions mapped onto the
     initial members 0..nodes-1; spare machines exist only as capacity
     (dark until a join maps a position onto them). *)
  let tree_quorum = Quorum.Tree_quorum.create ~read_level ~capacity:total ~nodes () in
  let metrics = Metrics.create () in
  let oracle = if with_oracle then Some (Oracle.create ()) else None in
  let ids = Ids.gen () in
  let quorums =
    {
      Executor.read_quorum =
        (fun ~node ->
          if !wedged then []
          else
            Option.value ~default:[]
              (Quorum.Tree_quorum.read_quorum ~salt:node tree_quorum));
      write_quorum =
        (fun ~node ->
          if !wedged then []
          else
            Option.value ~default:[]
              (Quorum.Tree_quorum.write_quorum ~salt:node tree_quorum));
      node_alive = (fun node -> not (Sim.Network.is_failed network node));
      epoch = (fun () -> !epoch);
    }
  in
  let executor =
    Executor.create ~engine ~rpc ~quorums ~config ~metrics ?oracle ~batch_commit
      ~ids ~seed:(seed + 3) ()
  in
  (* Arm the lease-termination machinery on every replica.  The peer set —
     read quorum extended with the write quorum, both salted by the asking
     node — is consulted lazily at status time so node failures and
     membership changes are respected.  The union intersects the lease
     owner's write quorum in several members (every write quorum shares
     the root and overlapping child majorities), so a decided commit stays
     visible even when a lossy link starved one intersection node of its
     Apply. *)
  Array.iter
    (fun server ->
      Server.enable_termination server ~engine ~rpc
        ~status_peers:(fun () ->
          if !wedged then []
          else
            let salt = Server.node server in
            let of_opt q = Option.value ~default:[] q in
            List.sort_uniq Int.compare
              (of_opt (Quorum.Tree_quorum.read_quorum ~salt tree_quorum)
              @ of_opt (Quorum.Tree_quorum.write_quorum ~salt tree_quorum)))
        ~metrics ~config)
    servers;
  let failure =
    Sim.Failure.create ~engine ~detection_delay ~detection_jitter ~seed:(seed + 5)
      ~kill:(fun node ->
        Sim.Network.fail network node;
        (* Fail-stop loses volatile state: locks, leases and the applied
           set die with the node (durable copies survive until the
           recovery resync refreshes them).  This also silences the dead
           node's lease watchdogs — behind a failed NIC their status
           rounds could never complete and would retry forever. *)
        Store.Replica.reset_transients (Server.store servers.(node));
        (* Coordinators hosted on the node die with it (fail-stop). *)
        Executor.kill_node executor ~node)
      ()
  in
  Sim.Failure.on_detect failure (fun node ->
      Quorum.Tree_quorum.mark_failed tree_quorum node);
  let t =
    {
      engine;
      network;
      rpc;
      servers;
      tree_quorum;
      failure;
      executor;
      metrics;
      oracle;
      config;
      ids;
      rng = Util.Rng.create (seed + 4);
      epoch;
      wedged;
      reconfig_active = false;
      pending_reconfigs = Queue.create ();
    }
  in
  Sim.Failure.on_recover failure (fun ~node ~was_killed ->
      Sim.Network.revive t.network node;
      (* Both paths state-transfer before rejoining: a falsely suspected
         node kept its disk but was bypassed by quorums, so it may have
         missed commits just like a crashed one. *)
      resync t ~node ~started:(Sim.Engine.now t.engine) ~was_killed);
  (* Spares start decommissioned: powered machines outside the view, dark
     on the network until a join (or replace) maps a tree position onto
     them and re-replicates state. *)
  for node = nodes to total - 1 do
    Sim.Network.fail t.network node
  done;
  t

let engine t = t.engine
let tracer t = Sim.Engine.tracer t.engine
let network t = t.network
let executor t = t.executor
let metrics t = t.metrics
let oracle t = t.oracle
let config t = t.config
let failure t = t.failure
let ids t = t.ids
let rng t = t.rng
let now t = Sim.Engine.now t.engine

let install_object t ~oid ~init =
  List.iter
    (fun node -> Store.Replica.install (Server.store t.servers.(node)) ~oid ~init)
    (members t)

let alloc_object t ~init =
  let oid = Ids.fresh_obj t.ids in
  install_object t ~oid ~init;
  oid

let store_of t ~node = Server.store t.servers.(node)
let server_of t ~node = t.servers.(node)

let submit t ~node program ~on_done = Executor.run_root t.executor ~node ~program ~on_done

let run_program t ~node program =
  let result = ref None in
  submit t ~node program ~on_done:(fun outcome -> result := Some outcome);
  let rec drive () =
    match !result with
    | Some outcome -> outcome
    | None ->
      if Sim.Engine.step t.engine then drive ()
      else invalid_arg "Cluster.run_program: engine drained without completion"
  in
  drive ()

let fail_node_at t ~at ~node = Sim.Failure.schedule t.failure ~at ~node
let recover_node_at t ~at ~node = Sim.Failure.schedule_recovery t.failure ~at ~node

let suspect_node_at ?clear_after t ~at ~node =
  Sim.Failure.schedule_false_suspicion ?clear_after t.failure ~at ~node

(* ------------------------------------------------------------------ *)
(* Epoch-based reconfiguration: join / graceful leave / replace.

   Every operation runs the same fenced state machine:

   1. {b wedge} — quorum construction is suspended (every quorum closure
      returns [[]], so executors and lease watchdogs retry politely), and
      the machine waits two request timeouts for in-flight quorum rounds
      to land or expire.  A joining node is revived on the network now so
      it can serve the state transfer.
   2. {b snapshot} — the subject node pulls a read ∪ write quorum of the
      {e outgoing} view ([Sync_req], the same path crash recovery uses)
      and keeps the per-object maximum version: quorum intersection in
      the old view guarantees this covers every committed write.
   3. {b install} — the new member list is installed ([set_members]
      rebuilds the quorum tree), the epoch is bumped, and — for joins and
      replaces — the joiner adopts the snapshot locally.
   4. {b handoff} — the snapshot is pushed ([Handoff], version-guarded
      and idempotent) to every reachable member of the incoming view, so
      new-view quorums intersect the committed prefix even where old- and
      new-view quorums do not intersect each other.
   5. {b unwedge} — quorums resume under the new epoch.  Envelopes
      stamped with the old epoch are now fenced.
   6. {b departure} (leave/replace) — the leaver drains: once it holds no
      leases and hosts no live coordinators it is failed off the network
      and its volatile state cleared.  Departed nodes return to the spare
      pool and may be re-joined later (rolling restarts). *)


let reconfig_code = function Join _ -> 0 | Leave _ -> 1 | Replace _ -> 2

(* The node that sources the snapshot and handoff: the joiner where there
   is one (it must state-sync anyway), else the leaver. *)
let reconfig_subject = function
  | Join node -> node
  | Leave node -> node
  | Replace { joining; _ } -> joining

let reconfig_joining = function
  | Join node -> Some node
  | Leave _ -> None
  | Replace { joining; _ } -> Some joining

let reconfig_leaving = function
  | Join _ -> None
  | Leave node -> Some node
  | Replace { leaving; _ } -> Some leaving

let min_members = 3

let validate_reconfig t op =
  let total = nodes t in
  let mem = members t in
  let check_joining node =
    if node < 0 || node >= total then
      invalid_arg
        (Printf.sprintf "Cluster: cannot join node %d: no such machine (capacity %d)"
           node total);
    if List.mem node mem then
      invalid_arg
        (Printf.sprintf
           "Cluster: cannot join node %d: already a member (t=%.1f epoch=%d view=[%s])"
           node (Sim.Engine.now t.engine) !(t.epoch)
           (String.concat ";" (List.map string_of_int mem)))
  in
  let check_leaving node =
    if not (List.mem node mem) then
      invalid_arg (Printf.sprintf "Cluster: cannot remove node %d: not a member" node)
  in
  match op with
  | Join node -> check_joining node
  | Leave node ->
    check_leaving node;
    if List.length mem - 1 < min_members then
      invalid_arg
        (Printf.sprintf
           "Cluster: cannot remove node %d: %d members is below the quorum-viable \
            minimum (%d)"
           node (List.length mem) min_members)
  | Replace { leaving; joining } ->
    check_leaving leaving;
    check_joining joining

let trace_view t ~kind ~node ~a ~b =
  let tracer = Sim.Engine.tracer t.engine in
  if Obs.Tracer.enabled tracer then
    Obs.Tracer.emit tracer ~time:(Sim.Engine.now t.engine) ~kind ~node ~a ~b ()

let rec start_reconfig t op ~on_done =
  if t.reconfig_active || not (Queue.is_empty t.pending_reconfigs) then
    (* One view change at a time: queue behind the active one, FIFO, and
       validate only when actually starting — a queued replace may re-use
       a machine an earlier operation is still decommissioning.  The queue
       check matters even when nothing is active: [finish_reconfig] drains
       the queue after a grace delay, and an operation arriving inside
       that gap must not jump ahead of the ones already waiting. *)
    Queue.add (op, on_done) t.pending_reconfigs
  else launch_reconfig t op ~on_done

and launch_reconfig t op ~on_done =
  begin
    validate_reconfig t op;
    t.reconfig_active <- true;
    t.wedged := true;
    trace_view t ~kind:Obs.Sem.view_wedge
      ~node:(reconfig_subject op)
      ~a:(reconfig_code op)
      ~b:(match reconfig_joining op with Some j -> j | None -> -1);
    (* A joiner comes back on the network now — still outside the view —
       so it can pull the snapshot and receive the handoff. *)
    (match reconfig_joining op with
    | Some j ->
      Sim.Network.revive t.network j;
      Quorum.Tree_quorum.revive t.tree_quorum j;
      Sim.Failure.clear_suspicion t.failure j
    | None -> ());
    (* Let in-flight quorum rounds land or time out before snapshotting:
       the wedge stops new rounds, and two request timeouts bound the
       stragglers (a round started just before the wedge plus its reply). *)
    Sim.Engine.schedule t.engine ~delay:(2. *. t.config.Config.request_timeout)
      (fun () -> snapshot_phase t op ~on_done)
  end

(* Pull the committed state through the outgoing view's quorums.  The
   union read ∪ write quorum mirrors [resync]: commits decided just before
   the wedge may still have Applies in flight, and the wider set maximises
   the chance of including a member that already installed them. *)
and snapshot_phase t op ~on_done =
  let src = reconfig_subject op in
  let quorum =
    let of_opt q = Option.value ~default:[] q in
    List.sort_uniq Int.compare
      (of_opt (Quorum.Tree_quorum.read_quorum ~salt:src t.tree_quorum)
      @ of_opt (Quorum.Tree_quorum.write_quorum ~salt:src t.tree_quorum))
  in
  let retry () =
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        snapshot_phase t op ~on_done)
  in
  match quorum with
  | [] -> retry ()
  | dsts ->
    Sim.Rpc.multicall t.rpc ~kind:Messages.sync_req_kind ~src ~dsts
      ~timeout:t.config.Config.request_timeout Messages.Sync_req
      ~on_done:(fun ~replies ~missing ->
        if missing <> [] then retry ()
        else begin
          (* Per-object maximum over the quorum's replies = the committed
             frontier of the outgoing view. *)
          let best = Hashtbl.create 256 in
          List.iter
            (fun (_, reply) ->
              match reply with
              | Messages.Sync_rep { objects } ->
                List.iter
                  (fun (oid, version, value) ->
                    match Hashtbl.find_opt best oid with
                    | Some (v, _) when v >= version -> ()
                    | _ -> Hashtbl.replace best oid (version, value))
                  objects
              | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
              | Messages.Status_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
                ())
            replies;
          let snapshot =
            Hashtbl.fold (fun oid (version, value) acc -> (oid, version, value) :: acc)
              best []
            |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
          in
          install_phase t op ~snapshot ~on_done
        end)

and install_phase t op ~snapshot ~on_done =
  let old_members = members t in
  let new_members =
    match op with
    | Join node -> node :: old_members
    | Leave node -> List.filter (fun n -> n <> node) old_members
    | Replace { leaving; joining } ->
      joining :: List.filter (fun n -> n <> leaving) old_members
  in
  Quorum.Tree_quorum.set_members t.tree_quorum new_members;
  incr t.epoch;
  Metrics.note_view_change t.metrics;
  trace_view t ~kind:Obs.Sem.view_change
    ~node:(reconfig_subject op)
    ~a:!(t.epoch) ~b:(List.length new_members);
  (* The joiner adopts the snapshot directly — this is the Sync_req /
     Sync_rep catch-up path, applied locally instead of over the wire. *)
  (match reconfig_joining op with
  | Some j ->
    let store = Server.store t.servers.(j) in
    Store.Replica.reset_transients store;
    List.iter
      (fun (oid, version, value) -> Store.Replica.sync_copy store ~oid ~version ~value)
      snapshot
  | None -> ());
  handoff_phase t op ~snapshot ~tries:0 ~on_done

(* Re-replicate the committed frontier to every reachable member of the
   incoming view.  Old- and new-view quorums need not intersect, so
   without this push a new-view read quorum could miss a write committed
   under the old view.  [sync_copy] is version-guarded and idempotent, so
   duplicates and stale rows are harmless.  Members that are down right
   now are skipped — their recovery resync refreshes them from the
   (post-handoff) current view. *)
and handoff_phase t op ~snapshot ~tries ~on_done =
  let src = reconfig_subject op in
  let dsts =
    List.filter
      (fun n -> n <> src && not (Sim.Network.is_failed t.network n))
      (members t)
  in
  if dsts = [] then unwedge_phase t op ~on_done
  else
    Sim.Rpc.multicall t.rpc ~kind:Messages.handoff_kind ~src ~dsts
      ~timeout:t.config.Config.request_timeout
      (Messages.Handoff { objects = snapshot })
      ~on_done:(fun ~replies:_ ~missing ->
        let missing_alive =
          List.filter (fun n -> not (Sim.Network.is_failed t.network n)) missing
        in
        if missing_alive <> [] && tries < 10 then
          Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout
            (fun () -> handoff_phase t op ~snapshot ~tries:(tries + 1) ~on_done)
        else unwedge_phase t op ~on_done)

and unwedge_phase t op ~on_done =
  t.wedged := false;
  match reconfig_leaving op with
  | None -> finish_reconfig t op ~on_done
  | Some node -> drain_departure t op ~node ~polls:0 ~on_done

(* Graceful departure: wait until the leaver neither holds write-lock
   leases nor hosts a live coordinator, then take it off the network and
   clear its volatile state — exactly what a crash would do, except
   nothing of value is lost.  The poll count is bounded: a coordinator
   wedged behind a partition would otherwise hold the machine hostage,
   and killing it after the grace window is the fail-stop the protocol
   already tolerates. *)
and drain_departure t op ~node ~polls ~on_done =
  let holds_leases = Store.Replica.held_leases (Server.store t.servers.(node)) <> [] in
  let hosts_roots =
    List.exists (fun (n, _) -> n = node) (Executor.in_flight t.executor)
  in
  if (holds_leases || hosts_roots) && polls < 20 then
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        drain_departure t op ~node ~polls:(polls + 1) ~on_done)
  else begin
    Sim.Network.fail t.network node;
    Store.Replica.reset_transients (Server.store t.servers.(node));
    Executor.kill_node t.executor ~node;
    finish_reconfig t op ~on_done
  end

and finish_reconfig t op ~on_done =
  trace_view t ~kind:Obs.Sem.view_done ~node:(reconfig_subject op) ~a:!(t.epoch)
    ~b:(reconfig_code op);
  t.reconfig_active <- false;
  (match on_done with Some f -> f () | None -> ());
  if not (Queue.is_empty t.pending_reconfigs) then
    (* Give the cluster one quiet timeout between view changes so retried
       transactions see the new quorums before the next wedge.  The head
       stays queued until the drain fires: [start_reconfig]'s queue check
       keeps later arrivals behind it, so only this callback launches. *)
    Sim.Engine.schedule t.engine ~delay:t.config.Config.request_timeout (fun () ->
        match Queue.take_opt t.pending_reconfigs with
        | None -> ()
        | Some (next, next_done) -> launch_reconfig t next ~on_done:next_done)

let schedule_reconfig ?on_done t ~at op =
  Sim.Engine.schedule t.engine
    ~delay:(Float.max 0. (at -. now t))
    (fun () -> start_reconfig t op ~on_done)

let join_node_at ?on_done t ~at ~node = schedule_reconfig ?on_done t ~at (Join node)
let leave_node_at ?on_done t ~at ~node = schedule_reconfig ?on_done t ~at (Leave node)

let replace_node_at ?on_done t ~at ~leaving ~joining =
  schedule_reconfig ?on_done t ~at (Replace { leaving; joining })

let run_for t duration =
  Sim.Engine.run ~until:(Sim.Engine.now t.engine +. duration) t.engine

let drain t = Sim.Engine.run t.engine

let check_consistency t =
  match t.oracle with
  | Some oracle -> Oracle.check oracle
  | None -> Error "oracle disabled for this cluster"

let reset_counters t =
  Metrics.reset t.metrics;
  Sim.Network.reset_counters t.network;
  Sim.Rpc.reset_give_ups t.rpc;
  Sim.Rpc.reset_fenced t.rpc

let messages_sent t = Sim.Network.messages_sent t.network
let messages_by_kind t = Sim.Network.messages_by_kind t.network
let messages_dropped t = Sim.Network.messages_dropped t.network
let messages_duplicated t = Sim.Network.messages_duplicated t.network
let retransmit_exhausted t = Sim.Rpc.give_ups t.rpc
let fenced_messages t = Sim.Rpc.fenced t.rpc
let in_flight t = Executor.in_flight t.executor

let held_leases t =
  let acc = ref [] in
  Array.iteri
    (fun node server ->
      List.iter
        (fun (oid, owner, expires) -> acc := (node, oid, owner, expires) :: !acc)
        (Store.Replica.held_leases (Server.store server)))
    t.servers;
  List.rev !acc
