type commit = {
  txn : Ids.txn_id;
  decision : float;
  window_start : float;
  reads : (Ids.obj_id * int) list;
  writes : (Ids.obj_id * int) list;
}

type t = { mutable commits : commit list; mutable count : int }

let create () = { commits = []; count = 0 }

let note_commit t ~txn ~decision ~window_start ~reads ~writes =
  t.commits <- { txn; decision; window_start; reads; writes } :: t.commits;
  t.count <- t.count + 1

let commits_recorded t = t.count

let ( let* ) r f = Result.bind r f

(* Per object, the decision time at which each version was installed.
   Version 0 exists from time 0 (initialisation). *)
let version_times commits =
  let table : (Ids.obj_id * int, float * Ids.txn_id) Hashtbl.t = Hashtbl.create 256 in
  let rec record = function
    | [] -> Ok table
    | c :: rest ->
      let rec record_writes = function
        | [] -> Ok ()
        | (oid, version) :: more ->
          begin
            match Hashtbl.find_opt table (oid, version) with
            | Some (_, other) ->
              Error
                (Printf.sprintf
                   "object %d version %d written by both txn %d and txn %d" oid
                   version other c.txn)
            | None ->
              Hashtbl.replace table (oid, version) (c.decision, c.txn);
              record_writes more
          end
      in
      let* () = record_writes c.writes in
      record rest
  in
  record commits

let check_version_sequences commits table =
  (* For each object, installed versions sorted by decision time must be
     consecutive starting at 1. *)
  let by_object : (Ids.obj_id, (int * float) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun (oid, version) ->
          let (time, _) = Hashtbl.find table (oid, version) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_object oid) in
          Hashtbl.replace by_object oid ((version, time) :: prev))
        c.writes)
    commits;
  Hashtbl.fold
    (fun oid versions acc ->
      let* () = acc in
      let ordered =
        (* Equal decision times tie-break by version: a batch round decides
           a chain of consecutive versions at one instant (its multi-version
           install is atomic), and version order IS its commit order.
           Duplicate installs of one version are still caught above by the
           [version_times] uniqueness check. *)
        List.sort
          (fun (v1, t1) (v2, t2) ->
            match Float.compare t1 t2 with 0 -> compare v1 v2 | c -> c)
          versions
      in
      let rec consecutive expected = function
        | [] -> Ok ()
        | (v, _) :: rest ->
          if v = expected then consecutive (expected + 1) rest
          else
            Error
              (Printf.sprintf
                 "object %d: expected version %d next in commit order, got %d" oid
                 expected v)
      in
      consecutive 1 ordered)
    by_object (Ok ())

let check_reads commits table =
  (* Update transactions serialize at their commit decision: each read of
     (oid, v) must have been installed before the decision and still be
     current when the validation window opened (2PC re-validates every
     entry, so anything staler is a protocol bug).

     Read-only transactions serialize wherever their snapshot was current:
     1-copy serializability only requires that all their read versions were
     current *simultaneously* at some instant no later than the decision —
     a first read may legitimately return a version that a concurrent
     commit (whose apply is still propagating) has already superseded in
     real time. *)
  let tolerance = 1e-6 in
  let installed oid v =
    if v = 0 then Some 0. else Option.map fst (Hashtbl.find_opt table (oid, v))
  in
  let check_installed c (oid, v) =
    match installed oid v with
    | None ->
      Error
        (Printf.sprintf "txn %d read object %d version %d which was never committed"
           c.txn oid v)
    | Some t_installed ->
      if t_installed > c.decision +. tolerance then
        Error
          (Printf.sprintf
             "txn %d (decision %.3f) read object %d version %d installed later (%.3f)"
             c.txn c.decision oid v t_installed)
      else Ok t_installed
  in
  let check_update_entry c (oid, v) =
    let* _ = check_installed c (oid, v) in
    match installed oid (v + 1) with
    | Some t_next when t_next < c.window_start -. tolerance ->
      Error
        (Printf.sprintf
           "txn %d committed a stale read: object %d version %d was overwritten at \
            %.3f, before its validation window (%.3f)"
           c.txn oid v t_next c.window_start)
    | Some _ | None -> Ok ()
  in
  let check_snapshot c =
    (* Latest installation among the reads must precede the earliest
       overwrite: then all read versions coexisted in that interval. *)
    let rec bounds lo hi = function
      | [] -> Ok (lo, hi)
      | (oid, v) :: more ->
        let* t_installed = check_installed c (oid, v) in
        let t_next =
          match installed oid (v + 1) with Some t -> t | None -> Float.infinity
        in
        bounds (Float.max lo t_installed) (Float.min hi t_next) more
    in
    let* lo, hi = bounds 0. Float.infinity c.reads in
    if lo <= hi +. tolerance then Ok ()
    else
      Error
        (Printf.sprintf
           "txn %d (read-only) observed an inconsistent snapshot: versions current \
            only in disjoint intervals (%.3f > %.3f)"
           c.txn lo hi)
  in
  let rec check_all = function
    | [] -> Ok ()
    | c :: rest ->
      let* () =
        if c.writes = [] then check_snapshot c
        else
          List.fold_left
            (fun acc entry ->
              let* () = acc in
              check_update_entry c entry)
            (Ok ()) c.reads
      in
      check_all rest
  in
  check_all commits

let check t =
  let commits = List.rev t.commits in
  let* table = version_times commits in
  let* () = check_version_sequences commits table in
  check_reads commits table
