(** QR replica: the node-side protocol handler.

    Each simulated node runs one server over its local {!Store.Replica.t}.  The
    handler is synchronous (replies are computed within the node's service
    slot, see {!Sim.Network}):

    - [Read_req]: run Rqv over the carried data-set (if any), then serve the
      local copy of the requested object; register root transactions in the
      PR/PW lists.
    - [Commit_req]: 2PC vote — validate the full data-set, lock the
      write-set objects on success.
    - [Apply]: 2PC second phase — install writes that are newer than the
      local copy, release locks, clear PR/PW entries; acked so the
      coordinator can retransmit over lossy links.
    - [Release]: abort path — drop locks held by the transaction (acked,
      idempotent).
    - [Sync_req]: crash-recovery catch-up — reply with a snapshot of the
      committed local state. *)

type t

val create : node:int -> store:Store.Replica.t -> t
val node : t -> int
val store : t -> Store.Replica.t

val handle : t -> src:int -> Messages.request -> Messages.reply option
(** Every request currently yields a reply ([Ack] for Apply / Release);
    whether it is sent back depends on the RPC layer's [wants_reply]. *)

val validations_run : t -> int
val validations_failed : t -> int
