(** QR replica: the node-side protocol handler.

    Each simulated node runs one server over its local {!Store.Replica.t}.  The
    handler is synchronous (replies are computed within the node's service
    slot, see {!Sim.Network}):

    - [Read_req]: run Rqv over the carried data-set (if any), then serve the
      local copy of the requested object; register root transactions in the
      PR/PW lists.
    - [Commit_req]: 2PC vote — validate the full data-set, lock the
      write-set objects on success.
    - [Apply]: 2PC second phase — install writes that are newer than the
      local copy, release locks, clear PR/PW entries; acked so the
      coordinator can retransmit over lossy links.
    - [Release]: abort path — drop locks held by the transaction (acked,
      idempotent).
    - [Sync_req]: crash-recovery catch-up — reply with a snapshot of the
      committed local state.
    - [Status_req]: lease-termination protocol — reply whether this replica
      observed the transaction's Apply, plus its current copies of the
      queried objects.
    - [Handoff]: reconfiguration re-replication — merge the pushed snapshot
      version-guarded (acked, idempotent).

    With {!enable_termination}, write locks become {e leases}: they carry an
    expiry stamped at grant time and renewed by any traffic from the owning
    transaction (a heartbeat).  A lease found expired (plus a grace period)
    triggers presumed-abort termination: the replica asks a read quorum for
    commit evidence ([Status_req]); evidence rescues the commit (the replica
    adopts the newer copies), no evidence across a full quorum releases the
    lease under presumed abort.  Without [enable_termination] leases are
    granted with an infinite horizon and behaviour is unchanged. *)

type t

val create : node:int -> store:Store.Replica.t -> t

val instrument : t -> tracer:Obs.Tracer.t -> clock:(unit -> float) -> unit
(** Attach a tracer (and a simulated-time source) so protocol handling
    emits server-side trace events: Rqv verdicts, votes, applies, releases,
    lease expiry, status rounds, presumed aborts and rescues.  The cluster
    wires this automatically; without it the server stays silent. *)

val enable_termination :
  ?node_alive:(int -> bool) ->
  t ->
  engine:Sim.Engine.t ->
  rpc:(Messages.request, Messages.reply) Sim.Rpc.t ->
  status_peers:(unit -> int list) ->
  metrics:Metrics.t ->
  config:Config.t ->
  unit
(** Arm the lease/termination machinery.  [status_peers] is the set queried
    for commit evidence; it must intersect every write quorum (a read
    quorum is the minimum — extending it with the replica's write quorum
    makes the intersection multi-member, so one lossy link cannot hide a
    decided commit).  Consulted lazily at status time so membership changes
    are respected; it may return [[]] when no quorum is reachable, in which
    case the status round retries and eventually presumes abort.  A status
    round for a cross-shard transaction additionally queries the peers its
    [Commit_req.peers] pinned — commit evidence may live exclusively on
    another participant shard — filtered through [node_alive] (default:
    everyone), because unlike [status_peers] that frozen set cannot route
    around permanent crashes by recomputation.  A [config] with
    [lease_duration = 0.] disables leases even when termination is
    enabled. *)

val node : t -> int
val store : t -> Store.Replica.t

val handle : t -> src:int -> Messages.request -> Messages.reply option
(** Every request currently yields a reply ([Ack] for Apply / Release);
    whether it is sent back depends on the RPC layer's [wants_reply]. *)

val validations_run : t -> int
val validations_failed : t -> int
