(** Wire protocol between transaction executors and QR replicas.

    A read request carries the requesting transaction's accumulated
    data-set (object id, base version, owner tag) so the replica can run
    read-quorum validation (Rqv) before serving the object — this inlines
    the paper's per-copy [ownerTxn]/[ownerChk] bookkeeping into the request
    (see DESIGN.md, semantics notes).

    Commit requests implement the vote phase of 2PC: the replica validates
    the full data-set and, on success, locks the write-set objects.  Apply
    and Release are the one-way second phase.

    The bulk payloads ({!dataset}, {!writes}) are structures of flat [int]
    arrays rather than lists of records: a steady-state commit wave builds
    each payload as three array allocations instead of a cons cell and a
    record per entry, and replicas validate by indexed loops without
    chasing pointers.  Payloads are frozen at construction and shared by
    reference across deliveries (fan-out, retransmission) — never mutated
    after sending. *)

type dataset_entry = { oid : Ids.obj_id; version : int; owner : int }
(** Convenience view of one data-set row (construction and tests; the wire
    form is the flat {!dataset}). *)

type dataset = {
  ds_oids : int array;
  ds_versions : int array;  (** base version per oid *)
  ds_owners : int array;  (** owner tag per oid (scope depth / checkpoint id) *)
}
(** Parallel arrays, one row per data-set entry. *)

val empty_dataset : dataset
(** The shared zero-length data-set ([dataset_len] 0 skips Rqv). *)

val dataset_len : dataset -> int
val dataset_of_list : dataset_entry list -> dataset
val dataset_entries : dataset -> dataset_entry list
(** Row-record view, same order as the arrays. *)

val dataset_of_rwset : Rwset.t -> dataset

type writes = {
  wr_oids : int array;
  wr_versions : int array;  (** new version to install per oid *)
  wr_values : Txn.value array;
}
(** Parallel arrays, one row per written object. *)

val empty_writes : writes
val writes_len : writes -> int
val writes_of_list : (Ids.obj_id * int * Txn.value) list -> writes
val writes_entries : writes -> (Ids.obj_id * int * Txn.value) list

type request =
  | Read_req of {
      txn : Ids.txn_id;  (** root transaction id *)
      oid : Ids.obj_id;
      dataset : dataset;  (** entries to validate; empty skips Rqv *)
      write_intent : bool;  (** register in PW instead of PR *)
      record : bool;  (** root transactions only: track in PR/PW *)
    }
  | Commit_req of {
      txn : Ids.txn_id;
      dataset : dataset;  (** full read+write set *)
      locks : Ids.obj_id list;  (** write-set objects to protect *)
      round : int;
          (** the coordinator's commit-round number; replicas pin granted
              locks to it so a stale [Release] from an abandoned earlier
              round cannot free a later round's lock *)
      peers : int list;
          (** cross-shard 2PC only ([] for single-shard commits): the other
              participant shards' read∪write quorum members, to be included
              in any termination-protocol [Status_req] round for [txn] —
              commit evidence for a cross-shard transaction may live
              exclusively on another shard's replicas *)
    }
  | Apply of {
      txn : Ids.txn_id;
      writes : writes;  (** (oid, new version, value) rows *)
      reads : Ids.obj_id array;  (** for PR cleanup *)
    }
  | Release of { txn : Ids.txn_id; oids : Ids.obj_id list; round : int }
      (** walk away from [round]'s locks; replicas ignore it if a later
          round of [txn] has re-locked (at-least-once delivery can reorder
          a retransmitted Release past the next round's Commit_req) *)
  | Sync_req
      (** crash-recovery catch-up: a recovering node asks a read quorum for
          snapshots of their committed state *)
  | Status_req of { txn : Ids.txn_id; oids : Ids.obj_id list }
      (** termination protocol: a replica holding an expired lease of [txn]
          over [oids] asks a read quorum whether the transaction decided
          commit before releasing (presumed abort) or adopting its write
          (rescued commit) *)
  | Handoff of { objects : (Ids.obj_id * int * Txn.value) list }
      (** reconfiguration re-replication: a per-object maximum snapshot of
          the outgoing view, pushed to every member of the incoming view and
          merged version-guarded ([sync_copy]) — idempotent, so at-least-once
          delivery and stale rows are harmless *)
  | Batch_commit_req of {
      txns : Ids.txn_id array;  (** one entry per queued transaction, queue order *)
      rounds : int array;  (** per-entry commit round (lease pinning, as [Commit_req]) *)
      ds_offsets : int array;
          (** length n+1: entry i's data-set rows are
              [[ds_offsets.(i), ds_offsets.(i+1))] of [dataset] *)
      dataset : dataset;  (** all entries' data-sets, concatenated *)
      wr_offsets : int array;  (** length n+1, segments of [writes] as above *)
      writes : writes;
          (** all entries' write-sets, concatenated; an entry's lock set is
              its segment's oids (the write set IS what [Commit_req] locks) *)
      decided : Ids.txn_id array;
          (** transactions committed in recent batch rounds whose Applies
              may still be in flight: a lease they hold is moribund (their
              Apply will release it version-guarded), so a batch entry that
              read {e past} their write may take the lease over instead of
              conflicting on it *)
    }
      (** batch-commit mode: one quorum round for a whole commit queue.
          Replicas validate and lock the entries in queue order, each
          against the overlay of its locally-valid predecessors, handing
          in-batch leases from predecessor to successor, so a chain of
          speculative transactions votes in a single round trip
          (PROTOCOL.md §9) *)

type reply =
  | Read_ok of { oid : Ids.obj_id; version : int; value : Txn.value }
  | Read_abort of { target : int }
      (** validation failed; [target] is [abortClosed] (a scope depth) or
          [abortChk] (a checkpoint id) depending on the executor's mode *)
  | Vote of { commit : bool; lock_conflict : bool }
      (** [lock_conflict] distinguishes protected-object conflicts (the
          holder may release soon) from version staleness (hopeless) *)
  | Sync_rep of { objects : (Ids.obj_id * int * Txn.value) list }
      (** committed state snapshot: (oid, version, value); locks and PR/PW
          lists are transient and not transferred *)
  | Status_rep of { committed : bool; objects : (Ids.obj_id * int * Txn.value) list }
      (** [committed]: this replica observed the transaction's Apply;
          [objects]: its current copies of the queried oids — a newer
          version among them is equally valid commit evidence, and carries
          the value the asking replica must adopt *)
  | Ack
      (** acknowledges the idempotent one-way messages (Apply / Release) so
          they can be retransmitted over lossy links *)
  | Batch_commit_rep of { commits : bool array; conflicts : bool array }
      (** per-entry votes, indexed like the request's [txns]; [conflicts]
          mirrors [Vote.lock_conflict] (the entry failed on a foreign
          lease, not hopeless staleness) *)

(** {2 Message-accounting labels}

    Pre-interned {!Sim.Network.Kind} tokens, one per request constructor;
    senders pass these so per-kind accounting never touches a string on the
    hot path.  The rendered names ("read_req", "commit_req", "commit_apply",
    "release", "sync_req") are unchanged from the string-labelled protocol. *)

val read_req_kind : Sim.Network.Kind.t
val commit_req_kind : Sim.Network.Kind.t
val apply_kind : Sim.Network.Kind.t
val release_kind : Sim.Network.Kind.t
val sync_req_kind : Sim.Network.Kind.t
val status_req_kind : Sim.Network.Kind.t
val handoff_kind : Sim.Network.Kind.t
val batch_commit_req_kind : Sim.Network.Kind.t

val kind_token_of_request : request -> Sim.Network.Kind.t
(** The interned accounting label of a request. *)

val kind_of_request : request -> string
(** Message-accounting label ("read_req", "commit_req", ...). *)
