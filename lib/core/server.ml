(* Termination context: everything a replica needs to resolve an expired
   lease on its own — a clock to notice expiry, an RPC handle plus a peer
   set to ask whether the owner decided commit, and metrics to report the
   outcome.  [status_peers] must intersect every write quorum (a read
   quorum suffices); in practice the cluster passes the read quorum
   extended with the replica's write quorum, so the intersection with the
   coordinator's write quorum holds several members and a lossy link to
   one of them cannot hide a decided commit.  Absent (plain [create]),
   leases are granted with an infinite horizon and the pre-lease behaviour
   is preserved. *)
type termination = {
  engine : Sim.Engine.t;
  rpc : (Messages.request, Messages.reply) Sim.Rpc.t;
  status_peers : unit -> int list;
  node_alive : int -> bool;
      (* Cross-shard termination peers arrive frozen in [Commit_req.peers];
         unlike [status_peers] they cannot be recomputed each round, so
         permanently crashed members must be pruned here or a status round
         would wait on the dead forever. *)
  metrics : Metrics.t;
  config : Config.t;
}

type t = {
  node : int;
  store : Store.Replica.t;
  mutable termination : termination option;
  mutable validations_run : int;
  mutable validations_failed : int;
  (* Tracing: injected after construction (see [instrument]); the clock
     closure decouples the server from needing an engine when termination
     is off.  Inert defaults when tracing is disabled. *)
  mutable tracer : Obs.Tracer.t;
  mutable clock : unit -> float;
}

let create ~node ~store =
  {
    node;
    store;
    termination = None;
    validations_run = 0;
    validations_failed = 0;
    tracer = Obs.Tracer.null;
    clock = (fun () -> 0.);
  }

let instrument t ~tracer ~clock =
  t.tracer <- tracer;
  t.clock <- clock

(* All slots required ([-1] / [0.] for n/a): labelled optional arguments
   would box an option per supplied label at every call site, even with the
   tracer disabled. *)
let trace t ~kind ~txn ~oid ~a ~b ~x =
  if Obs.Tracer.enabled t.tracer then
    Obs.Tracer.emit8 t.tracer ~time:(t.clock ()) ~kind ~node:t.node ~txn ~oid ~a
      ~b ~x

let node t = t.node
let store t = t.store
let validations_run t = t.validations_run
let validations_failed t = t.validations_failed

let handle_read t ~txn ~oid ~dataset ~write_intent ~record =
  let validated = Messages.dataset_len dataset > 0 in
  let verdict =
    if not validated then None
    else begin
      t.validations_run <- t.validations_run + 1;
      Rqv.validate t.store ~txn ~dataset
    end
  in
  match verdict with
  | Some target ->
    t.validations_failed <- t.validations_failed + 1;
    trace t ~kind:Obs.Sem.rqv_fail ~txn ~oid ~a:target ~b:(-1) ~x:0.;
    Some (Messages.Read_abort { target })
  | None ->
    if validated then trace t ~kind:Obs.Sem.rqv_ok ~txn ~oid ~a:(-1) ~b:(-1) ~x:0.;
    begin
      match Store.Replica.find t.store oid with
      | None -> Some (Messages.Read_abort { target = 0 })
      | Some copy ->
        if record then
          if write_intent then Store.Replica.add_writer t.store ~oid ~txn
          else Store.Replica.add_reader t.store ~oid ~txn;
        Some (Messages.Read_ok { oid; version = copy.version; value = copy.value })
    end

(* --- lease termination -------------------------------------------------- *)

let leases_on t = match t.termination with Some term -> term.config.Config.lease_duration > 0. | None -> false

let lease_expiry t =
  match t.termination with
  | Some term when term.config.Config.lease_duration > 0. ->
    Sim.Engine.now term.engine +. term.config.Config.lease_duration
  | Some _ | None -> Float.infinity

let still_held t ~txn oids =
  List.filter
    (fun oid ->
      Store.Replica.mem t.store oid
      && match Store.Replica.lease_of t.store oid with
         | Some lease -> lease.Store.Replica.owner = txn
         | None -> false)
    oids

let release_lease t ~txn ~oids =
  List.iter
    (fun oid ->
      Store.Replica.unlock t.store ~oid ~txn;
      Store.Replica.remove_txn t.store ~oid ~txn)
    oids

(* Cross-shard termination peers live exactly as long as the leases whose
   status rounds need them. *)
let drop_xpeers_if_done t ~txn =
  if Store.Replica.leased_oids t.store ~txn = [] then
    Store.Replica.clear_status_peers t.store ~txn

(* Commit evidence in a status round: either a peer saw the transaction's
   Apply ([`Applied]), or a peer's copy of a leased object moved past the
   version the lease was protecting ([`Version_advance]).  Only a commit
   can advance a locked copy, but across membership views it may have been
   a *different* transaction's commit through a quorum that bypassed this
   replica — the two kinds are distinguished in the trace so the offline
   checker only demands per-transaction evidence for the first. *)
let commit_evidence t ~held ~replies =
  let status_rep f (_, reply) =
    match reply with
    | Messages.Status_rep { committed; objects } -> f ~committed ~objects
    | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
    | Messages.Sync_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
      false
  in
  if List.exists (status_rep (fun ~committed ~objects:_ -> committed)) replies then
    Some `Applied
  else if
    List.exists
      (status_rep (fun ~committed:_ ~objects ->
           List.exists
             (fun (oid, version, _) ->
               List.mem oid held && version > Store.Replica.version t.store oid)
             objects))
      replies
  then Some `Version_advance
  else None

let rescue_commit t term ~txn ~oids ~replies ~evidence =
  Metrics.note_status_rescue term.metrics;
  trace t ~kind:Obs.Sem.rescue ~txn ~oid:(-1) ~a:(List.length oids)
    ~b:(match evidence with `Applied -> 0 | `Version_advance -> 1)
    ~x:0.;
  (* Adopt the freshest copies carried by the replies (version-guarded, so
     older copies are ignored); sync clears the adopted objects' leases,
     and any leftover lease (reply lacking that oid) is presumed released
     by the same decision. *)
  List.iter
    (fun (_, reply) ->
      match reply with
      | Messages.Status_rep { objects; _ } ->
        List.iter
          (fun (oid, version, value) ->
            if Store.Replica.mem t.store oid then
              Store.Replica.sync_copy t.store ~oid ~version ~value)
          objects
      | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
      | Messages.Sync_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
        ())
    replies;
  release_lease t ~txn ~oids:(still_held t ~txn oids);
  drop_xpeers_if_done t ~txn

(* Presumed abort is only sound after a FULLY answered, evidence-less
   round: the peer set intersects every write quorum, so "every peer
   replied and none saw the commit" rules a commit decision out (the
   coordinator's deadline forbids deciding one this late).  A partial or
   empty round proves nothing — an isolated replica (partition, quorum
   churn) must keep its lock and keep asking; the peer set is recomputed
   each round, so permanent crashes are routed around once detected and a
   healed partition lets the next round complete.  [attempts] counts the
   fully-answered evidence-less rounds required before presuming, spaced a
   timeout apart — enough slack for an Apply that was still in
   retransmission when the first round was answered. *)
let rec status_round t term ~txn ~oids ~attempts =
  let held = still_held t ~txn oids in
  if held <> [] then begin
    let retry attempts =
      Sim.Engine.schedule term.engine ~delay:term.config.Config.request_timeout
        (fun () -> status_round t term ~txn ~oids:held ~attempts)
    in
    (* A cross-shard transaction's commit evidence may live exclusively on
       another participant shard's replicas (the coordinator may have died
       after applying there and before applying here), so the round must
       also ask the peers pinned by its Commit_req.  An own-shard wedge
       ([status_peers () = []]) still retries: presumed abort needs a fully
       answered round through this shard's quorum too. *)
    match term.status_peers () with
    | [] -> retry attempts
    | shard_peers ->
      let dsts =
        match
          List.filter
            (fun n -> n <> t.node && term.node_alive n)
            (Store.Replica.status_peers_of t.store ~txn)
        with
        | [] -> shard_peers
        | xtra -> List.sort_uniq compare (List.rev_append xtra shard_peers)
      in
      trace t ~kind:Obs.Sem.status_round ~txn ~oid:(-1) ~a:attempts
        ~b:(List.length dsts) ~x:0.;
      Sim.Rpc.multicall term.rpc ~kind:Messages.status_req_kind ~src:t.node ~dsts
        ~timeout:term.config.Config.request_timeout
        (Messages.Status_req { txn; oids = held })
        ~on_done:(fun ~replies ~missing ->
          let held = still_held t ~txn held in
          if held <> [] then
            match commit_evidence t ~held ~replies with
            | Some evidence -> rescue_commit t term ~txn ~oids:held ~replies ~evidence
            | None ->
            if missing <> [] then retry attempts
            else if attempts > 1 then retry (attempts - 1)
            else begin
              Metrics.note_presumed_abort term.metrics;
              trace t ~kind:Obs.Sem.presumed_abort ~txn ~oid:(-1)
                ~a:(List.length held) ~b:(-1) ~x:0.;
              release_lease t ~txn ~oids:held;
              drop_xpeers_if_done t ~txn
            end)
  end

(* Watch a granted lease batch: fire at expiry + grace; if renewals pushed
   the horizon out, chase it; once genuinely expired, run the status
   protocol. *)
let rec watch_lease t term ~txn ~oids () =
  let held = still_held t ~txn oids in
  if held <> [] then begin
    let latest =
      List.fold_left
        (fun acc oid ->
          match Store.Replica.lease_of t.store oid with
          | Some lease -> Float.max acc lease.Store.Replica.expires
          | None -> acc)
        0. held
    in
    let deadline = latest +. term.config.Config.status_grace in
    if Sim.Engine.now term.engine +. 1e-9 < deadline then
      Sim.Engine.schedule_at term.engine ~time:deadline (watch_lease t term ~txn ~oids:held)
    else begin
      Metrics.note_lease_expired term.metrics;
      (match held with
      | oid :: _ ->
        trace t ~kind:Obs.Sem.lease_expire ~txn ~oid ~a:(-1) ~b:(-1) ~x:latest
      | [] -> ());
      status_round t term ~txn ~oids:held ~attempts:term.config.Config.status_attempts
    end
  end

let watch_granted t ~txn ~oids ~expires =
  match t.termination with
  | Some term when leases_on t ->
    Sim.Engine.schedule_at term.engine
      ~time:(expires +. term.config.Config.status_grace)
      (watch_lease t term ~txn ~oids)
  | Some _ | None -> ()

let enable_termination ?(node_alive = fun _ -> true) t ~engine ~rpc
    ~status_peers ~metrics ~config =
  t.termination <-
    Some { engine; rpc; status_peers; node_alive; metrics; config };
  (* A lease restored from a batch handover may have outlived the watcher
     armed at its original grant (the watcher dies when [still_held] sees
     the successor as owner), so re-arm one: left unwatched, a restored
     lease would block readers forever — expiry is only enforced by the
     status protocol. *)
  Store.Replica.set_on_restore t.store (fun ~oid ~owner ~expires ->
      watch_granted t ~txn:owner ~oids:[ oid ] ~expires)

(* --- request handlers --------------------------------------------------- *)

let handle_commit t ~txn ~(dataset : Messages.dataset) ~locks ~round ~peers =
  let n = Messages.dataset_len dataset in
  let valid = ref true in
  let i = ref 0 in
  while !valid && !i < n do
    if
      not
        (Rqv.oid_valid t.store ~txn ~oid:dataset.ds_oids.(!i)
           ~version:dataset.ds_versions.(!i))
    then valid := false
    else incr i
  done;
  if not !valid then begin
    let lock_conflict = ref false in
    let j = ref 0 in
    while (not !lock_conflict) && !j < n do
      let oid = dataset.ds_oids.(!j) in
      if
        Store.Replica.mem t.store oid
        && Store.Replica.is_protected t.store ~oid ~against:txn
        && Store.Replica.version t.store oid <= dataset.ds_versions.(!j)
      then lock_conflict := true
      else incr j
    done;
    Some (Messages.Vote { commit = false; lock_conflict = !lock_conflict })
  end
  else begin
    (* Lock the write set.  All-or-nothing: locking can only fail if another
       transaction protected an object between the validation above and now,
       which cannot happen within one synchronous handler — but we stay
       defensive and roll back partial locks. *)
    let expires = lease_expiry t in
    let rec lock_all acquired = function
      | [] -> true
      | oid :: rest ->
        if Store.Replica.try_lock ~expires ~round t.store ~oid ~txn then
          lock_all (oid :: acquired) rest
        else begin
          (* Round-guarded: this roll-back may be running for a reordered
             stale Commit_req whose re-grants renewed a newer round's
             locks — those must survive. *)
          List.iter
            (fun o -> Store.Replica.unlock ~round t.store ~oid:o ~txn)
            acquired;
          false
        end
    in
    if lock_all [] locks then begin
      if locks <> [] then begin
        (* Cross-shard 2PC: pin the other participant shards' quorum
           members so a termination round for these leases also asks them
           (the commit decision may only be evidenced over there). *)
        if peers <> [] then Store.Replica.set_status_peers t.store ~txn peers;
        watch_granted t ~txn ~oids:locks ~expires
      end;
      Some (Messages.Vote { commit = true; lock_conflict = false })
    end
    else Some (Messages.Vote { commit = false; lock_conflict = true })
  end

(* --- batch commit (PROTOCOL.md §9) -------------------------------------- *)

(* Validate and lock a whole commit queue in one quorum round.  Entries are
   processed in queue order; each validates against an overlay of the
   versions its locally-valid predecessors will install, so a chain of
   speculative transactions (each having read the previous one's
   uncommitted write image) votes commit in a single round trip.  Leases
   move down the chain: when a locally-valid predecessor holds the
   in-batch lease on an object a later entry also writes, the grant is
   handed over to the successor (the predecessor's second phase stays
   safe — Apply installs version-guarded and its Release is round-guarded,
   so out-of-order arrivals compose).  Invalid entries leave no trace:
   they touch neither overlay nor locks, so their successors validate
   against the store exactly as if the entry had never been queued —
   mirroring the coordinator, which aborts them without applying. *)
let handle_batch_commit t ~(txns : Ids.txn_id array) ~(rounds : int array)
    ~(ds_offsets : int array) ~(dataset : Messages.dataset)
    ~(wr_offsets : int array) ~(writes : Messages.writes)
    ~(decided : Ids.txn_id array) =
  let n = Array.length txns in
  let commits = Array.make n false in
  let conflicts = Array.make n false in
  (* oid -> version the latest locally-valid predecessor installs *)
  let overlay : (Ids.obj_id, int) Hashtbl.t = Hashtbl.create 16 in
  (* oid -> batch entry currently holding the in-batch lease *)
  let chain : (Ids.obj_id, Ids.txn_id) Hashtbl.t = Hashtbl.create 16 in
  let decided_owner o = Array.exists (fun d -> d = o) decided in
  let expires = lease_expiry t in
  for i = 0 to n - 1 do
    let txn = txns.(i) in
    (* the batch is heartbeat traffic for every queued transaction *)
    if leases_on t then Store.Replica.renew t.store ~txn ~expires;
    t.validations_run <- t.validations_run + 1;
    (* In-batch leases are not conflicts: predecessors hand them over.
       Neither is a moribund lease of a [decided] transaction — but only
       when the reader's base version is strictly ahead of the version
       visible here ([row > visible]), i.e. it read past the decided write.
       At [row = visible] the reader saw the pre-commit value, and the
       lease must veto it exactly as in the vote-to-apply window of the
       sequential protocol. *)
    let lease_blocks oid ~row ~visible =
      match Store.Replica.lease_of t.store oid with
      | Some lease ->
        let owner = lease.Store.Replica.owner in
        owner <> txn
        && (match Hashtbl.find_opt chain oid with
           | Some holder -> owner <> holder
           | None -> true)
        && not (decided_owner owner && row > visible)
      | None -> false
    in
    let visible oid =
      match Hashtbl.find_opt overlay oid with
      | Some v -> Some v
      | None ->
        if Store.Replica.mem t.store oid then
          Some (Store.Replica.version t.store oid)
        else None
    in
    let valid = ref true in
    let lo = ds_offsets.(i) and hi = ds_offsets.(i + 1) in
    let r = ref lo in
    while !valid && !r < hi do
      let oid = dataset.ds_oids.(!r) in
      let row = dataset.ds_versions.(!r) in
      (match visible oid with
      | None -> valid := false
      | Some v -> if row < v || lease_blocks oid ~row ~visible:v then valid := false);
      if !valid then incr r
    done;
    if not !valid then begin
      t.validations_failed <- t.validations_failed + 1;
      (* Mirror handle_commit's conflict probe: a foreign lease on a
         not-yet-superseded read is retryable; staleness is hopeless. *)
      let j = ref lo in
      while (not conflicts.(i)) && !j < hi do
        let oid = dataset.ds_oids.(!j) in
        let row = dataset.ds_versions.(!j) in
        (match visible oid with
        | Some v when v <= row && lease_blocks oid ~row ~visible:v ->
          conflicts.(i) <- true
        | Some _ | None -> ());
        incr j
      done
    end
    else begin
      let wlo = wr_offsets.(i) and whi = wr_offsets.(i + 1) in
      let rec lock_all acquired r =
        if r >= whi then true
        else begin
          let oid = writes.wr_oids.(r) in
          if not (Store.Replica.mem t.store oid) then lock_all acquired (r + 1)
          else begin
            (* Hand the lease down the chain — from the in-batch
               predecessor, or from a [decided] owner whose Apply (which
               would release it) is still in flight.  The write base was
               validated above, and a base read past a decided write has
               [row > visible], so the override already vetted this.  The
               displaced lease is kept ([Replica.handover]): it may be the
               only protection for a committed write whose Apply was lost,
               and releasing the successor (speculation abort, requeue)
               must restore it, not strand the object unleased. *)
            let prev_owner =
              match Store.Replica.lease_of t.store oid with
              | Some lease ->
                let owner = lease.Store.Replica.owner in
                if
                  owner <> txn
                  && ((match Hashtbl.find_opt chain oid with
                      | Some holder -> owner = holder
                      | None -> false)
                     || decided_owner owner)
                then Some owner
                else None
              | None -> None
            in
            let locked =
              match prev_owner with
              | Some prev_owner ->
                Store.Replica.handover ~expires ~round:rounds.(i) t.store ~oid
                  ~prev_owner ~txn
              | None ->
                Store.Replica.try_lock ~expires ~round:rounds.(i) t.store ~oid ~txn
            in
            if locked then lock_all (oid :: acquired) (r + 1)
            else begin
              (* Unreachable in a synchronous handler (validation already
                 rejected foreign leases); stay defensive like
                 handle_commit and roll back round-guarded. *)
              List.iter
                (fun o -> Store.Replica.unlock ~round:rounds.(i) t.store ~oid:o ~txn)
                acquired;
              false
            end
          end
        end
      in
      if lock_all [] wlo then begin
        let locked = ref [] in
        for r = whi - 1 downto wlo do
          let oid = writes.wr_oids.(r) in
          if Store.Replica.mem t.store oid then begin
            Hashtbl.replace chain oid txn;
            Hashtbl.replace overlay oid writes.wr_versions.(r);
            locked := oid :: !locked
          end
        done;
        if !locked <> [] then watch_granted t ~txn ~oids:!locked ~expires;
        commits.(i) <- true
      end
      else conflicts.(i) <- true
    end;
    trace t ~kind:Obs.Sem.vote ~txn ~oid:(-1)
      ~a:(if commits.(i) then 1 else 0)
      ~b:(if conflicts.(i) then 1 else 0)
      ~x:0.
  done;
  Messages.Batch_commit_rep { commits; conflicts }

let trace_vote t ~txn reply =
  (match reply with
  | Some (Messages.Vote { commit; lock_conflict }) ->
    trace t ~kind:Obs.Sem.vote ~txn ~oid:(-1)
      ~a:(if commit then 1 else 0)
      ~b:(if lock_conflict then 1 else 0)
      ~x:0.
  | _ -> ());
  reply

let handle_apply t ~txn ~(writes : Messages.writes) ~reads =
  let foreign = ref false in
  for i = 0 to Messages.writes_len writes - 1 do
    let oid = writes.wr_oids.(i) in
    if Store.Replica.mem t.store oid then begin
      Store.Replica.apply t.store ~oid ~version:writes.wr_versions.(i)
        ~value:writes.wr_values.(i) ~txn;
      Store.Replica.remove_txn t.store ~oid ~txn
    end
    else foreign := true
  done;
  (* A row for an object not hosted here means this is a cross-shard
     Apply carrying the full write set: keep the rows so a status query
     from another participant shard's lease holder gets the foreign write
     it must adopt to rescue the commit. *)
  if !foreign then
    Store.Replica.retain_writes t.store ~txn (Messages.writes_entries writes);
  (* Even a write-free Apply (all writes unknown here) is commit evidence. *)
  Store.Replica.note_applied t.store ~txn;
  Array.iter
    (fun oid -> if Store.Replica.mem t.store oid then Store.Replica.remove_txn t.store ~oid ~txn)
    reads;
  drop_xpeers_if_done t ~txn

let handle_release t ~txn ~oids ~round =
  List.iter
    (fun oid ->
      if Store.Replica.mem t.store oid then begin
        let stale =
          (* A retransmitted Release from an abandoned commit round,
             arriving after a later round of [txn] re-locked here: the
             newer round's lock (and its PR/PW bookkeeping) must survive. *)
          match Store.Replica.lease_of t.store oid with
          | Some lease ->
            lease.Store.Replica.owner = txn && round < lease.Store.Replica.round
          | None -> false
        in
        if not stale then begin
          Store.Replica.unlock ~round t.store ~oid ~txn;
          Store.Replica.remove_txn t.store ~oid ~txn
        end
      end)
    oids;
  drop_xpeers_if_done t ~txn

let handle_status t ~txn ~oids =
  Messages.Status_rep
    {
      committed = Store.Replica.was_applied t.store ~txn;
      objects =
        List.filter_map
          (fun oid ->
            match Store.Replica.find t.store oid with
            | Some copy -> Some (oid, copy.Store.Replica.version, copy.Store.Replica.value)
            | None ->
              (* Cross-shard status query: not hosted here, but a retained
                 cross-shard Apply may carry the row the asker must adopt. *)
              List.find_opt
                (fun (o, _, _) -> o = oid)
                (Store.Replica.retained_writes t.store ~txn))
          oids;
    }

(* Reconfiguration re-replication: merge the pushed snapshot version-guarded
   ([sync_copy] installs unknown objects and adopts strictly newer copies),
   so duplicates from at-least-once delivery are harmless. *)
let handle_handoff t ~objects =
  List.iter
    (fun (oid, version, value) -> Store.Replica.sync_copy t.store ~oid ~version ~value)
    objects

let request_txn = function
  | Messages.Read_req { txn; _ } -> Some txn
  | Messages.Commit_req { txn; _ } -> Some txn
  | Messages.Apply { txn; _ } -> Some txn
  | Messages.Release { txn; _ } -> Some txn
  | Messages.Sync_req | Messages.Status_req _ | Messages.Handoff _ -> None
  (* per-entry renewal happens inside handle_batch_commit *)
  | Messages.Batch_commit_req _ -> None

let handle t ~src:_ request =
  (* Any traffic from a transaction is a heartbeat for the leases it holds
     here: a slow-but-alive coordinator keeps its locks. *)
  if leases_on t then
    Option.iter
      (fun txn -> Store.Replica.renew t.store ~txn ~expires:(lease_expiry t))
      (request_txn request);
  match request with
  | Messages.Read_req { txn; oid; dataset; write_intent; record } ->
    handle_read t ~txn ~oid ~dataset ~write_intent ~record
  | Messages.Commit_req { txn; dataset; locks; round; peers } ->
    trace_vote t ~txn (handle_commit t ~txn ~dataset ~locks ~round ~peers)
  | Messages.Apply { txn; writes; reads } ->
    trace t ~kind:Obs.Sem.apply ~txn ~oid:(-1) ~a:(Messages.writes_len writes)
      ~b:(-1) ~x:0.;
    handle_apply t ~txn ~writes ~reads;
    (* Acked so the coordinator can retransmit over lossy links; Apply is
       idempotent (version-guarded), so duplicates are harmless. *)
    Some Messages.Ack
  | Messages.Release { txn; oids; round } ->
    trace t ~kind:Obs.Sem.release ~txn ~oid:(-1) ~a:(List.length oids) ~b:round
      ~x:0.;
    handle_release t ~txn ~oids ~round;
    Some Messages.Ack
  | Messages.Sync_req -> Some (Messages.Sync_rep { objects = Store.Replica.dump t.store })
  | Messages.Status_req { txn; oids } -> Some (handle_status t ~txn ~oids)
  | Messages.Handoff { objects } ->
    handle_handoff t ~objects;
    (* Acked so the reconfiguration orchestrator can retransmit over lossy
       links; the merge is idempotent. *)
    Some Messages.Ack
  | Messages.Batch_commit_req
      { txns; rounds; ds_offsets; dataset; wr_offsets; writes; decided } ->
    Some
      (handle_batch_commit t ~txns ~rounds ~ds_offsets ~dataset ~wr_offsets
         ~writes ~decided)
