type t = {
  node : int;
  store : Store.Replica.t;
  mutable validations_run : int;
  mutable validations_failed : int;
}

let create ~node ~store = { node; store; validations_run = 0; validations_failed = 0 }
let node t = t.node
let store t = t.store
let validations_run t = t.validations_run
let validations_failed t = t.validations_failed

let handle_read t ~txn ~oid ~dataset ~write_intent ~record =
  let verdict =
    match dataset with
    | [] -> None
    | _ ->
      t.validations_run <- t.validations_run + 1;
      Rqv.validate t.store ~txn ~dataset
  in
  match verdict with
  | Some target ->
    t.validations_failed <- t.validations_failed + 1;
    Some (Messages.Read_abort { target })
  | None ->
    begin
      match Store.Replica.find t.store oid with
      | None -> Some (Messages.Read_abort { target = 0 })
      | Some copy ->
        if record then
          if write_intent then Store.Replica.add_writer t.store ~oid ~txn
          else Store.Replica.add_reader t.store ~oid ~txn;
        Some (Messages.Read_ok { oid; version = copy.version; value = copy.value })
    end

let handle_commit t ~txn ~dataset ~locks =
  let valid =
    List.for_all (fun entry -> Rqv.entry_valid t.store ~txn entry) dataset
  in
  if not valid then begin
    let lock_conflict =
      List.exists
        (fun (entry : Messages.dataset_entry) ->
          Store.Replica.mem t.store entry.oid
          && Store.Replica.is_protected t.store ~oid:entry.oid ~against:txn
          && Store.Replica.version t.store entry.oid <= entry.version)
        dataset
    in
    Some (Messages.Vote { commit = false; lock_conflict })
  end
  else begin
    (* Lock the write set.  All-or-nothing: locking can only fail if another
       transaction protected an object between the validation above and now,
       which cannot happen within one synchronous handler — but we stay
       defensive and roll back partial locks. *)
    let rec lock_all acquired = function
      | [] -> true
      | oid :: rest ->
        if Store.Replica.try_lock t.store ~oid ~txn then lock_all (oid :: acquired) rest
        else begin
          List.iter (fun o -> Store.Replica.unlock t.store ~oid:o ~txn) acquired;
          false
        end
    in
    if lock_all [] locks then Some (Messages.Vote { commit = true; lock_conflict = false })
    else Some (Messages.Vote { commit = false; lock_conflict = true })
  end

let handle_apply t ~txn ~writes ~reads =
  List.iter
    (fun (oid, version, value) ->
      if Store.Replica.mem t.store oid then begin
        Store.Replica.apply t.store ~oid ~version ~value ~txn;
        Store.Replica.remove_txn t.store ~oid ~txn
      end)
    writes;
  List.iter
    (fun oid -> if Store.Replica.mem t.store oid then Store.Replica.remove_txn t.store ~oid ~txn)
    reads

let handle_release t ~txn ~oids =
  List.iter
    (fun oid ->
      if Store.Replica.mem t.store oid then begin
        Store.Replica.unlock t.store ~oid ~txn;
        Store.Replica.remove_txn t.store ~oid ~txn
      end)
    oids

let handle t ~src:_ request =
  match request with
  | Messages.Read_req { txn; oid; dataset; write_intent; record } ->
    handle_read t ~txn ~oid ~dataset ~write_intent ~record
  | Messages.Commit_req { txn; dataset; locks } -> handle_commit t ~txn ~dataset ~locks
  | Messages.Apply { txn; writes; reads } ->
    handle_apply t ~txn ~writes ~reads;
    (* Acked so the coordinator can retransmit over lossy links; Apply is
       idempotent (version-guarded), so duplicates are harmless. *)
    Some Messages.Ack
  | Messages.Release { txn; oids } ->
    handle_release t ~txn ~oids;
    Some Messages.Ack
  | Messages.Sync_req -> Some (Messages.Sync_rep { objects = Store.Replica.dump t.store })
