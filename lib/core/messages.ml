type dataset_entry = { oid : Ids.obj_id; version : int; owner : int }

let dataset_of_rwset set =
  List.map
    (fun (e : Rwset.entry) -> { oid = e.oid; version = e.version; owner = e.owner })
    (Rwset.entries set)

type request =
  | Read_req of {
      txn : Ids.txn_id;
      oid : Ids.obj_id;
      dataset : dataset_entry list;
      write_intent : bool;
      record : bool;
    }
  | Commit_req of {
      txn : Ids.txn_id;
      dataset : dataset_entry list;
      locks : Ids.obj_id list;
    }
  | Apply of {
      txn : Ids.txn_id;
      writes : (Ids.obj_id * int * Txn.value) list;
      reads : Ids.obj_id list;
    }
  | Release of { txn : Ids.txn_id; oids : Ids.obj_id list }
  | Sync_req
      (* catch-up request from a recovering node: the receiver answers with
         a snapshot of its committed state *)

type reply =
  | Read_ok of { oid : Ids.obj_id; version : int; value : Txn.value }
  | Read_abort of { target : int }
  | Vote of { commit : bool; lock_conflict : bool }
  | Sync_rep of { objects : (Ids.obj_id * int * Txn.value) list }
  | Ack  (* acknowledges idempotent one-way messages (Apply, Release) *)

let kind_of_request = function
  | Read_req _ -> "read_req"
  | Commit_req _ -> "commit_req"
  | Apply _ -> "commit_apply"
  | Release _ -> "release"
  | Sync_req -> "sync_req"
