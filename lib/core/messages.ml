type dataset_entry = { oid : Ids.obj_id; version : int; owner : int }

(* The flat payloads below are frozen at construction and shared by
   reference across every delivery of the message (fan-out waves,
   at-least-once retransmissions) — never mutate one after sending. *)

type dataset = {
  ds_oids : int array;
  ds_versions : int array;
  ds_owners : int array;
}

let empty_dataset = { ds_oids = [||]; ds_versions = [||]; ds_owners = [||] }
let dataset_len d = Array.length d.ds_oids

let dataset_of_list entries =
  match entries with
  | [] -> empty_dataset
  | _ ->
    let n = List.length entries in
    let d =
      {
        ds_oids = Array.make n 0;
        ds_versions = Array.make n 0;
        ds_owners = Array.make n 0;
      }
    in
    List.iteri
      (fun i e ->
        d.ds_oids.(i) <- e.oid;
        d.ds_versions.(i) <- e.version;
        d.ds_owners.(i) <- e.owner)
      entries;
    d

let dataset_entries d =
  List.init (dataset_len d) (fun i ->
      { oid = d.ds_oids.(i); version = d.ds_versions.(i); owner = d.ds_owners.(i) })

let dataset_of_rwset set =
  let n = Rwset.size set in
  if n = 0 then empty_dataset
  else begin
    let d =
      {
        ds_oids = Array.make n 0;
        ds_versions = Array.make n 0;
        ds_owners = Array.make n 0;
      }
    in
    let i = ref 0 in
    Rwset.iter set (fun (e : Rwset.entry) ->
        d.ds_oids.(!i) <- e.oid;
        d.ds_versions.(!i) <- e.version;
        d.ds_owners.(!i) <- e.owner;
        incr i);
    d
  end

type writes = {
  wr_oids : int array;
  wr_versions : int array;
  wr_values : Txn.value array;
}

let empty_writes = { wr_oids = [||]; wr_versions = [||]; wr_values = [||] }
let writes_len w = Array.length w.wr_oids

let writes_of_list entries =
  match entries with
  | [] -> empty_writes
  | _ ->
    let n = List.length entries in
    let w =
      {
        wr_oids = Array.make n 0;
        wr_versions = Array.make n 0;
        wr_values = Array.make n Store.Value.Unit;
      }
    in
    List.iteri
      (fun i (oid, version, value) ->
        w.wr_oids.(i) <- oid;
        w.wr_versions.(i) <- version;
        w.wr_values.(i) <- value)
      entries;
    w

let writes_entries w =
  List.init (writes_len w) (fun i -> (w.wr_oids.(i), w.wr_versions.(i), w.wr_values.(i)))

type request =
  | Read_req of {
      txn : Ids.txn_id;
      oid : Ids.obj_id;
      dataset : dataset;
      write_intent : bool;
      record : bool;
    }
  | Commit_req of {
      txn : Ids.txn_id;
      dataset : dataset;
      locks : Ids.obj_id list;
      round : int;
          (* the coordinator's commit-round number for this transaction:
             quorum retries re-send with a higher round, and a replica pins
             granted locks to it so a stale Release (below) cannot free a
             later round's lock *)
      peers : int list;
          (* cross-shard 2PC only ([] for single-shard commits): the other
             participant shards' read∪write quorum members.  A replica whose
             lease of [txn] expires must include them in its Status_req
             round — commit evidence for a cross-shard transaction may live
             exclusively on another shard's replicas *)
    }
  | Apply of {
      txn : Ids.txn_id;
      writes : writes;
      reads : Ids.obj_id array;
    }
  | Release of { txn : Ids.txn_id; oids : Ids.obj_id list; round : int }
      (* [round] is the commit round whose locks are being walked away
         from; at-least-once retransmission can deliver it after a later
         round of the same transaction re-locked, and the replica must
         ignore it then *)
  | Sync_req
      (* catch-up request from a recovering node: the receiver answers with
         a snapshot of its committed state *)
  | Status_req of { txn : Ids.txn_id; oids : Ids.obj_id list }
      (* termination protocol: a replica holding an expired lease of [txn]
         over [oids] asks a read quorum whether the transaction decided
         commit (presumed abort otherwise) *)
  | Handoff of { objects : (Ids.obj_id * int * Txn.value) list }
      (* reconfiguration re-replication: the orchestrator pushes the
         per-object maximum of the outgoing view's committed state to every
         member of the incoming view; merged version-guarded (sync_copy),
         so duplicates and stale rows are harmless *)
  | Batch_commit_req of {
      txns : Ids.txn_id array;  (* one entry per queued transaction, queue order *)
      rounds : int array;  (* per-entry commit round (lease pinning, as Commit_req) *)
      ds_offsets : int array;
          (* length n+1: entry i's data-set rows are [ds_offsets.(i),
             ds_offsets.(i+1)) of [dataset] *)
      dataset : dataset;  (* all entries' data-sets, concatenated *)
      wr_offsets : int array;  (* length n+1, segments of [writes] as above *)
      writes : writes;
          (* all entries' write-sets, concatenated; an entry's lock set is
             its segment's oids (the write set IS what Commit_req locks) *)
      decided : Ids.txn_id array;
          (* transactions committed in recent batch rounds whose Applies may
             still be in flight: a lease they hold here is moribund (their
             Apply will release it version-guarded), so a batch entry that
             read PAST their write may take the lease over instead of
             conflicting on it *)
    }
      (* one quorum round for a whole commit queue: replicas validate and
         lock the entries in order, each against the overlay of its
         locally-valid predecessors, so a batch of chained speculative
         transactions votes in a single round trip *)

type reply =
  | Read_ok of { oid : Ids.obj_id; version : int; value : Txn.value }
  | Read_abort of { target : int }
  | Vote of { commit : bool; lock_conflict : bool }
  | Sync_rep of { objects : (Ids.obj_id * int * Txn.value) list }
  | Status_rep of { committed : bool; objects : (Ids.obj_id * int * Txn.value) list }
      (* [committed]: this replica observed the transaction's Apply;
         [objects]: its current copies of the queried oids, so a decided
         commit's write can be adopted by the asking replica *)
  | Ack  (* acknowledges idempotent one-way messages (Apply, Release) *)
  | Batch_commit_rep of { commits : bool array; conflicts : bool array }
      (* per-entry votes, indexed like the request's [txns]; [conflicts]
         mirrors Vote.lock_conflict (the entry failed on a foreign lease,
         not hopeless staleness) *)

(* Accounting labels, interned once at module load so the network layer
   counts messages with an array increment rather than a string lookup. *)
let read_req_kind = Sim.Network.Kind.intern "read_req"
let commit_req_kind = Sim.Network.Kind.intern "commit_req"
let apply_kind = Sim.Network.Kind.intern "commit_apply"
let release_kind = Sim.Network.Kind.intern "release"
let sync_req_kind = Sim.Network.Kind.intern "sync_req"
let status_req_kind = Sim.Network.Kind.intern "status_req"
let handoff_kind = Sim.Network.Kind.intern "handoff"
let batch_commit_req_kind = Sim.Network.Kind.intern "batch_commit_req"

let kind_token_of_request = function
  | Read_req _ -> read_req_kind
  | Commit_req _ -> commit_req_kind
  | Apply _ -> apply_kind
  | Release _ -> release_kind
  | Sync_req -> sync_req_kind
  | Status_req _ -> status_req_kind
  | Handoff _ -> handoff_kind
  | Batch_commit_req _ -> batch_commit_req_kind

let kind_of_request request = Sim.Network.Kind.name (kind_token_of_request request)
