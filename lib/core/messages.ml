type dataset_entry = { oid : Ids.obj_id; version : int; owner : int }

let dataset_of_rwset set =
  List.map
    (fun (e : Rwset.entry) -> { oid = e.oid; version = e.version; owner = e.owner })
    (Rwset.entries set)

type request =
  | Read_req of {
      txn : Ids.txn_id;
      oid : Ids.obj_id;
      dataset : dataset_entry list;
      write_intent : bool;
      record : bool;
    }
  | Commit_req of {
      txn : Ids.txn_id;
      dataset : dataset_entry list;
      locks : Ids.obj_id list;
    }
  | Apply of {
      txn : Ids.txn_id;
      writes : (Ids.obj_id * int * Txn.value) list;
      reads : Ids.obj_id list;
    }
  | Release of { txn : Ids.txn_id; oids : Ids.obj_id list }
  | Sync_req
      (* catch-up request from a recovering node: the receiver answers with
         a snapshot of its committed state *)
  | Status_req of { txn : Ids.txn_id; oids : Ids.obj_id list }
      (* termination protocol: a replica holding an expired lease of [txn]
         over [oids] asks a read quorum whether the transaction decided
         commit (presumed abort otherwise) *)

type reply =
  | Read_ok of { oid : Ids.obj_id; version : int; value : Txn.value }
  | Read_abort of { target : int }
  | Vote of { commit : bool; lock_conflict : bool }
  | Sync_rep of { objects : (Ids.obj_id * int * Txn.value) list }
  | Status_rep of { committed : bool; objects : (Ids.obj_id * int * Txn.value) list }
      (* [committed]: this replica observed the transaction's Apply;
         [objects]: its current copies of the queried oids, so a decided
         commit's write can be adopted by the asking replica *)
  | Ack  (* acknowledges idempotent one-way messages (Apply, Release) *)

(* Accounting labels, interned once at module load so the network layer
   counts messages with an array increment rather than a string lookup. *)
let read_req_kind = Sim.Network.Kind.intern "read_req"
let commit_req_kind = Sim.Network.Kind.intern "commit_req"
let apply_kind = Sim.Network.Kind.intern "commit_apply"
let release_kind = Sim.Network.Kind.intern "release"
let sync_req_kind = Sim.Network.Kind.intern "sync_req"
let status_req_kind = Sim.Network.Kind.intern "status_req"

let kind_token_of_request = function
  | Read_req _ -> read_req_kind
  | Commit_req _ -> commit_req_kind
  | Apply _ -> apply_kind
  | Release _ -> release_kind
  | Sync_req -> sync_req_kind
  | Status_req _ -> status_req_kind

let kind_of_request request = Sim.Network.Kind.name (kind_token_of_request request)
