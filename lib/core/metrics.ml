type t = {
  mutable latencies : Util.Stats.t;
  mutable commits : int;
  mutable read_only_commits : int;
  mutable root_aborts : int;
  mutable partial_aborts : int;
  mutable ct_commits : int;
  mutable checkpoints : int;
  mutable local_reads : int;
  mutable remote_reads : int;
  mutable quorum_retries : int;
  mutable open_commits : int;
  mutable compensations : int;
  mutable syncs : int;
  mutable recoveries : int;
  mutable recovery_times : Util.Stats.t;
  mutable lease_expirations : int;
  mutable presumed_aborts : int;
  mutable status_rescued_commits : int;
  mutable commit_deadline_aborts : int;
  mutable read_widenings : int;
  mutable stalls_detected : int;
  mutable view_changes : int;
  mutable speculative_reads : int;
  mutable speculation_aborts : int;
  mutable batches : int;
  mutable batch_occupancy : Util.Stats.t;
  mutable cross_shard_commits : int;
  mutable cross_shard_aborts : int;
  (* Open-loop driver channel (Harness.Openloop): constant-memory HDR
     histograms so SLO percentiles survive millions of samples.  Queueing
     delay (arrival -> admission) is kept apart from service latency
     (admission -> completion): under saturation the former grows without
     bound while the latter stays flat — conflating them is the classic
     closed-loop reporting mistake. *)
  mutable open_arrivals : int;
  mutable open_completions : int;
  open_queue_delay : Util.Hdr.t;
  open_service : Util.Hdr.t;
}

let create () =
  {
    commits = 0;
    read_only_commits = 0;
    root_aborts = 0;
    partial_aborts = 0;
    ct_commits = 0;
    checkpoints = 0;
    local_reads = 0;
    remote_reads = 0;
    quorum_retries = 0;
    open_commits = 0;
    compensations = 0;
    syncs = 0;
    recoveries = 0;
    recovery_times = Util.Stats.create ();
    latencies = Util.Stats.create ();
    lease_expirations = 0;
    presumed_aborts = 0;
    status_rescued_commits = 0;
    read_widenings = 0;
    commit_deadline_aborts = 0;
    stalls_detected = 0;
    view_changes = 0;
    speculative_reads = 0;
    speculation_aborts = 0;
    batches = 0;
    batch_occupancy = Util.Stats.create ();
    cross_shard_commits = 0;
    cross_shard_aborts = 0;
    open_arrivals = 0;
    open_completions = 0;
    open_queue_delay = Util.Hdr.create ();
    open_service = Util.Hdr.create ();
  }

let reset t =
  t.commits <- 0;
  t.read_only_commits <- 0;
  t.root_aborts <- 0;
  t.partial_aborts <- 0;
  t.ct_commits <- 0;
  t.checkpoints <- 0;
  t.local_reads <- 0;
  t.remote_reads <- 0;
  t.quorum_retries <- 0;
  t.open_commits <- 0;
  t.compensations <- 0;
  t.syncs <- 0;
  t.recoveries <- 0;
  t.recovery_times <- Util.Stats.create ();
  t.latencies <- Util.Stats.create ();
  t.lease_expirations <- 0;
  t.presumed_aborts <- 0;
  t.status_rescued_commits <- 0;
  t.read_widenings <- 0;
  t.commit_deadline_aborts <- 0;
  t.stalls_detected <- 0;
  t.view_changes <- 0;
  t.speculative_reads <- 0;
  t.speculation_aborts <- 0;
  t.batches <- 0;
  t.batch_occupancy <- Util.Stats.create ();
  t.cross_shard_commits <- 0;
  t.cross_shard_aborts <- 0;
  t.open_arrivals <- 0;
  t.open_completions <- 0;
  Util.Hdr.reset t.open_queue_delay;
  Util.Hdr.reset t.open_service

let note_commit t ~latency =
  t.commits <- t.commits + 1;
  Util.Stats.add t.latencies latency

let note_read_only_commit t ~latency =
  t.commits <- t.commits + 1;
  t.read_only_commits <- t.read_only_commits + 1;
  Util.Stats.add t.latencies latency

let note_root_abort t = t.root_aborts <- t.root_aborts + 1
let note_partial_abort t = t.partial_aborts <- t.partial_aborts + 1
let note_ct_commit t = t.ct_commits <- t.ct_commits + 1
let note_checkpoint t = t.checkpoints <- t.checkpoints + 1
let note_local_read t = t.local_reads <- t.local_reads + 1
let note_remote_read t = t.remote_reads <- t.remote_reads + 1
let note_quorum_retry t = t.quorum_retries <- t.quorum_retries + 1
let note_open_commit t = t.open_commits <- t.open_commits + 1
let note_compensation t = t.compensations <- t.compensations + 1
let note_sync t = t.syncs <- t.syncs + 1

let note_recovery t ~duration =
  t.recoveries <- t.recoveries + 1;
  Util.Stats.add t.recovery_times duration

let note_lease_expired t = t.lease_expirations <- t.lease_expirations + 1
let note_presumed_abort t = t.presumed_aborts <- t.presumed_aborts + 1
let note_status_rescue t = t.status_rescued_commits <- t.status_rescued_commits + 1
let note_read_widening t = t.read_widenings <- t.read_widenings + 1

let note_commit_deadline_abort t =
  t.commit_deadline_aborts <- t.commit_deadline_aborts + 1

let note_stall t = t.stalls_detected <- t.stalls_detected + 1
let note_speculative_read t = t.speculative_reads <- t.speculative_reads + 1

let note_speculation_abort t =
  (* a speculation abort is also a root abort (the attempt retries) *)
  t.speculation_aborts <- t.speculation_aborts + 1

let note_batch t ~occupancy =
  t.batches <- t.batches + 1;
  Util.Stats.add t.batch_occupancy (Float.of_int occupancy)
let note_view_change t = t.view_changes <- t.view_changes + 1
let note_cross_shard_commit t = t.cross_shard_commits <- t.cross_shard_commits + 1

let note_cross_shard_abort t =
  (* counted alongside the root abort the 2PC failure also records *)
  t.cross_shard_aborts <- t.cross_shard_aborts + 1

let note_open_loop_arrival t = t.open_arrivals <- t.open_arrivals + 1

let note_open_loop_done t ~queue_delay ~service =
  t.open_completions <- t.open_completions + 1;
  Util.Hdr.add t.open_queue_delay queue_delay;
  Util.Hdr.add t.open_service service

let commits t = t.commits
let read_only_commits t = t.read_only_commits
let root_aborts t = t.root_aborts
let partial_aborts t = t.partial_aborts
let total_aborts t = t.root_aborts + t.partial_aborts
let ct_commits t = t.ct_commits
let checkpoints t = t.checkpoints
let local_reads t = t.local_reads
let remote_reads t = t.remote_reads
let quorum_retries t = t.quorum_retries
let open_commits t = t.open_commits
let compensations t = t.compensations
let syncs t = t.syncs
let recoveries t = t.recoveries
let lease_expirations t = t.lease_expirations
let presumed_aborts t = t.presumed_aborts
let status_rescued_commits t = t.status_rescued_commits
let read_widenings t = t.read_widenings
let commit_deadline_aborts t = t.commit_deadline_aborts
let stalls_detected t = t.stalls_detected
let view_changes t = t.view_changes
let speculative_reads t = t.speculative_reads
let speculation_aborts t = t.speculation_aborts
let batches t = t.batches
let batch_occupancy_stats t = t.batch_occupancy
let cross_shard_commits t = t.cross_shard_commits
let cross_shard_aborts t = t.cross_shard_aborts

let cross_shard_share t =
  if t.commits = 0 then 0.
  else Float.of_int t.cross_shard_commits /. Float.of_int t.commits

let batch_occupancy_percentile t p =
  if Util.Stats.count t.batch_occupancy = 0 then 0.
  else Util.Stats.percentile t.batch_occupancy p

let recovery_time_stats t = t.recovery_times
let latency_stats t = t.latencies
let open_loop_arrivals t = t.open_arrivals
let open_loop_completions t = t.open_completions
let open_queue_delay t = t.open_queue_delay
let open_service t = t.open_service

let throughput t ~duration_ms =
  if duration_ms <= 0. then 0. else Float.of_int t.commits /. (duration_ms /. 1000.)

let abort_rate t =
  let attempts = t.commits + total_aborts t in
  if attempts = 0 then 0. else Float.of_int (total_aborts t) /. Float.of_int attempts

let latency_percentile t p =
  if Util.Stats.count t.latencies = 0 then 0. else Util.Stats.percentile t.latencies p

let summary t ~duration_ms =
  Printf.sprintf
    "commits=%d (ro=%d) throughput=%.1f/s aborts[root=%d partial=%d] ct_commits=%d \
     checkpoints=%d reads[local=%d remote=%d] latency{%s p50=%.1f p95=%.1f p99=%.1f}"
    t.commits t.read_only_commits
    (throughput t ~duration_ms)
    t.root_aborts t.partial_aborts t.ct_commits t.checkpoints t.local_reads
    t.remote_reads
    (Util.Stats.summary t.latencies)
    (latency_percentile t 50.) (latency_percentile t 95.) (latency_percentile t 99.)
