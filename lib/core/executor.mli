(** Client-side transaction executor for QR, QR-CN and QR-CHK.

    The executor interprets {!Txn.t} programs over the simulated network,
    implementing the three execution models of the paper:

    - {b Flat} (QR): nesting boundaries are flattened; conflicts are
      detected by the write quorum during the 2PC vote; any abort retries
      the whole transaction.
    - {b Closed} (QR-CN): each [Nested] boundary pushes a scope with its own
      read/write sets and retry thunk.  Reads carry the accumulated
      data-set for read-quorum validation (Rqv); a validation failure
      aborts exactly the scope named by [abortClosed] (the minimum owner
      depth over invalid entries).  A closed-nested commit merges its sets
      into the parent locally, with no remote communication; read-only
      roots also commit locally.
    - {b Checkpoint} (QR-CHK): the transaction runs flat but snapshots its
      continuation and sets every [checkpoint_threshold] fetched objects.
      A validation failure rolls back to [abortChk] (the oldest checkpoint
      among invalid entries); a 2PC failure retries the whole transaction,
      exactly as the paper specifies.

    Latency accounting: a transaction's latency runs from its first attempt
    to its final commit, across aborts. *)

type quorums = {
  read_quorum : shard:int -> node:int -> int list;
  write_quorum : shard:int -> node:int -> int list;
  node_alive : int -> bool;
      (** Ground-truth fail-stop state (not detector suspicion) — gates the
          pruning of widened-read witnesses that stop answering. *)
  epoch : shard:int -> int;
      (** Current membership-view epoch of one shard.  A commit round whose
          votes were solicited under an older epoch is released and retried:
          the write quorum that answered need not intersect current-view
          quorums. *)
  shard_of : int -> int;
      (** Object id -> owning shard (the shard directory).  Determines which
          shard's quorums serve a read and which shards participate in a
          commit; a transaction touching several shards commits through the
          cross-shard 2PC. *)
  home_shard : int -> int;
      (** Node -> the shard it replicates.  Gates widened-read witnesses:
          a witness from another shard cannot serve this shard's objects. *)
}

type t

val create :
  engine:Sim.Engine.t ->
  rpc:(Messages.request, Messages.reply) Sim.Rpc.t ->
  quorums:quorums ->
  config:Config.t ->
  metrics:Metrics.t ->
  ?oracle:Oracle.t ->
  ?batch_commit:bool ->
  ids:Ids.gen ->
  seed:int ->
  unit ->
  t
(** [batch_commit] (default [false]) turns on queue-oriented speculative
    batch commit (PROTOCOL.md §9): roots reaching their commit point are
    enqueued, cut into batches of up to {!Config.batch_size} (or after
    {!Config.batch_delay} ms), and decided by one quorum round per batch;
    queued successors read predecessors' uncommitted write images and abort
    speculatively if a predecessor fails.  Off, the executor behaves
    byte-identically to the sequential per-transaction 2PC. *)

type outcome =
  | Committed of Txn.value
  | Failed of string
      (** a [Txn.Fail] program step, or [max_attempts] exceeded *)

val run_root : t -> node:int -> program:(unit -> Txn.t) -> on_done:(outcome -> unit) -> unit
(** Start a root transaction on [node].  [program] must be re-runnable: it
    is re-invoked from scratch on every root retry.  [on_done] fires exactly
    once, when the transaction finally commits or fails permanently. *)

val kill_node : t -> node:int -> unit
(** Fail-stop every root whose coordinator runs on [node]: their threads die
    with the machine.  No outcome is delivered (in particular [on_done]
    never fires), so a closed-loop client hosted there stops resubmitting —
    matching the simulator's crash model, where a node loses its volatile
    state.  Replies in flight to a killed root are dropped. *)

val in_flight : t -> (int * Ids.txn_id) list
(** The live roots as [(node, current txn id)] pairs — diagnostic input for
    stall reports. *)

val config : t -> Config.t
val metrics : t -> Metrics.t
