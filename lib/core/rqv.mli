(** Read-quorum validation (paper §III-B, Algorithms 1 and 4).

    A replica validates a transaction's accumulated data-set against its
    local copies: an entry is invalid if the local copy has a newer version
    or is protected (locked by a committing transaction).  The returned
    abort target is the minimum owner tag over the invalid entries — which
    is simultaneously Algorithm 1's [abortClosed] (the scope *highest* in
    the nesting hierarchy, since depth decreases towards the root) and
    Algorithm 4's [abortChk] (the oldest checkpoint among the invalid
    objects, whose snapshot excludes all of them). *)

val validate :
  Store.Replica.t -> txn:Ids.txn_id -> dataset:Messages.dataset -> int option
(** [None] when every entry is valid; [Some target] otherwise.  Invalid
    entries' owners are dropped from the replica's PR/PW lists, as in
    Algorithm 1 line 8.  An indexed loop over the flat data-set: no
    allocation until the final [Some]. *)

val oid_valid : Store.Replica.t -> txn:Ids.txn_id -> oid:Ids.obj_id -> version:int -> bool
(** Single-row check against the local copy (the 2PC vote path loops this
    over the flat data-set). *)

val entry_valid : Store.Replica.t -> txn:Ids.txn_id -> Messages.dataset_entry -> bool
(** {!oid_valid} over the row-record view (tests). *)
