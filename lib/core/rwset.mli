(** Read/write sets.

    An entry records the object copy a transaction is working with: the
    base version it was fetched at, the current (possibly locally written)
    value, and its *owner* tag — the nesting depth of the scope that fetched
    it (closed nesting) or the checkpoint id in effect when it was fetched
    (checkpointing).  Owner tags are what the read-quorum validation returns
    as the abort target ([abortClosed] / [abortChk]).

    Sets are persistent maps so that checkpoint snapshots are O(1). *)

type entry = {
  oid : Ids.obj_id;
  version : int;  (** base version the copy was fetched at *)
  value : Txn.value;
  owner : int;  (** scope depth (QR-CN) or checkpoint id (QR-CHK); 0 for flat *)
}

type t

val empty : t
val is_empty : t -> bool
val size : t -> int
val add : t -> entry -> t
(** Insert or replace by [oid]. *)

val find : t -> Ids.obj_id -> entry option
val mem : t -> Ids.obj_id -> bool
val remove : t -> Ids.obj_id -> t

val merge_into : child:t -> parent:t -> t
(** QR-CN commit of a closed-nested transaction (Algorithm 3): the child's
    entries replace the parent's on collision (the child worked on the
    fresher copy). *)

val retag : t -> owner:int -> t
(** Set every entry's owner (used when merging a child scope into its
    parent, whose depth the surviving entries now belong to). *)

val iter : t -> (entry -> unit) -> unit
(** Ascending by object id, allocating nothing (unlike {!entries}). *)

val entries : t -> entry list
(** Ascending by object id. *)

val oids : t -> Ids.obj_id list
val union_oids : t -> t -> Ids.obj_id list
