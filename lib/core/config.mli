(** Protocol configuration.

    One record selects the execution model and tunables; the defaults
    reproduce the paper's setup (ternary tree quorums, ~30 ms round trips
    supplied by the topology, fine-grained checkpoints). *)

type mode =
  | Flat  (** QR: the original quorum-based replication protocol *)
  | Closed  (** QR-CN: closed nesting with read-quorum validation *)
  | Checkpoint  (** QR-CHK: automatic checkpoints with partial rollback *)

val mode_name : mode -> string

type t = {
  mode : mode;
  rqv_for_flat : bool;
      (** validate incrementally on reads even for flat transactions
          (ablation; the paper's flat baseline detects conflicts at commit) *)
  checkpoint_threshold : int;
      (** objects read/written between automatic checkpoints (QR-CHK);
          the paper's implementation is fine-grained — default 1 *)
  checkpoint_overhead : float;
      (** local cost of saving a continuation, ms; calibrated to the
          paper's measured ~6% checkpoint-creation overhead *)
  local_op_cost : float;  (** CPU cost of one local DSL step, ms *)
  request_timeout : float;  (** RPC timeout used to detect dead quorum members, ms *)
  backoff_base : float;  (** root-abort retry backoff base, ms *)
  backoff_max : float;
  ct_retry_delay : float;  (** delay before retrying an aborted closed-nested txn, ms *)
  commit_lock_retries : int;
      (** how many times a commit request that failed purely on a lock
          (protected object) is retried before aborting the root (ablation;
          0 = the paper's behaviour: abort immediately) *)
  max_attempts : int;  (** safety valve for tests; 0 = unbounded *)
  max_steps_per_attempt : int;
      (** zombie-transaction guard: flat transactions (which validate only
          at commit) can observe an inconsistent snapshot across a
          concurrent structural update and chase a pointer cycle forever;
          an attempt exceeding this many DSL steps is aborted and retried.
          Closed nesting / checkpointing validate on remote reads but can
          still cycle through locally cached entries, so the guard applies
          to every mode. *)
  lease_duration : float;
      (** write-lock lease horizon, ms: locks granted during the 2PC vote
          expire this long after the grant (renewed by any further traffic
          from the owning transaction).  [0.] disables lease-based
          termination entirely — locks then only fall with an explicit
          Release, as in the paper. *)
  lease_safety_margin : float;
      (** the coordinator refuses to commit within this many ms of its own
          lease expiry (the decision would race the replicas' presumed
          abort); must be < [lease_duration] when leases are on *)
  status_grace : float;
      (** how long past expiry a replica waits before starting the status
          query, covering in-flight Apply messages sent just before the
          coordinator's commit deadline *)
  status_attempts : int;
      (** status-query rounds against an unreachable read quorum before the
          replica falls back to presumed abort (bounded so a partitioned
          replica terminates) *)
  retransmit_backoff_base : float;
      (** Apply/Release retransmission backoff: re-send k of an unacked
          one-way message waits [min (retransmit_backoff_max,
          retransmit_backoff_base * 2^k)] ms with seeded jitter before going
          out, so lossy-link bursts are not hammered in lock-step.  [0.]
          restores the historical fixed-interval retransmission. *)
  retransmit_backoff_max : float;
  batch_size : int;
      (** batch-commit mode: cut the commit queue as soon as this many
          transactions are waiting (and no batch round is in flight).
          Ignored when the executor runs with [batch_commit] off. *)
  batch_delay : float;
      (** batch-commit mode: maximum ms an enqueued transaction waits for
          the queue to fill before a deadline cut ships a partial batch *)
}

val make : ?rqv_for_flat:bool -> ?checkpoint_threshold:int -> ?checkpoint_overhead:float ->
  ?local_op_cost:float -> ?request_timeout:float -> ?backoff_base:float ->
  ?backoff_max:float -> ?ct_retry_delay:float -> ?commit_lock_retries:int ->
  ?max_attempts:int -> ?max_steps_per_attempt:int -> ?lease_duration:float ->
  ?lease_safety_margin:float -> ?status_grace:float -> ?status_attempts:int ->
  ?retransmit_backoff_base:float -> ?retransmit_backoff_max:float ->
  ?batch_size:int -> ?batch_delay:float -> mode -> t

val default : mode -> t
