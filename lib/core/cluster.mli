(** A complete QR-DTM deployment: simulated nodes, replicated store, tree
    quorums, failure detection, and a transaction executor.

    This is the top of the core library's public API — the examples, the
    experiment harness, and most tests build a cluster, install objects,
    submit transaction programs, and read the metrics back.

    Quorum assignment follows the paper: each node is designated a read and
    a write quorum, derived from the ternary tree with the node id as the
    rotation salt so load spreads over equivalent majorities.  Assignments
    are cached and recomputed when a failure is detected.

    {b Membership is a first-class mutable view}: the cluster tracks an
    epoch number and the current member set, and supports three
    reconfiguration operations runnable mid-experiment — {!join_node_at}
    (a spare machine state-syncs and enters the next view),
    {!leave_node_at} (graceful decommission with lease drain and state
    handoff), and {!replace_node_at} (atomic swap, for rolling restarts).
    Every protocol envelope carries the sender's epoch; traffic from a
    superseded view is fenced (see {!Sim.Rpc.set_fencing}).  Departed
    nodes return to the spare pool and may be joined again later.

    {b The object space can be sharded}: with [~shards:k], the machines are
    partitioned into [k] disjoint shards, each with its own member view,
    epoch, quorum tree and reconfiguration queue; a shard directory maps
    every object to its owning shard.  Transactions touching one shard run
    today's one-round commit; transactions spanning shards commit through
    a presumed-abort two-phase protocol across the participant shards'
    write quorums (PROTOCOL.md §10).  {!move_object_at} and
    {!split_shard_at} reshape the directory mid-run.  With the default
    [~shards:1] everything below behaves — byte-identically — as the
    unsharded cluster. *)

type t

val create :
  ?nodes:int ->
  ?spares:int ->
  ?seed:int ->
  ?topology:Sim.Topology.t ->
  ?service_time:float ->
  ?read_level:int ->
  ?detection_delay:float ->
  ?detection_jitter:float ->
  ?with_oracle:bool ->
  ?tracer:Obs.Tracer.t ->
  ?batch_fanout:bool ->
  ?batch_commit:bool ->
  ?shards:int ->
  Config.t ->
  t
(** Defaults: 13 nodes (the paper's Fig. 3 tree), metric-space topology with
    ~15 ms mean one-way latency, 0.25 ms per-message service time,
    [read_level = 1], oracle enabled, tracing disabled.  Passing an enabled
    [tracer] threads it through every layer (engine, network, RPC, servers,
    replicas, executor); tracing draws no randomness and schedules no
    events, so results stay byte-identical to an untraced run.
    [batch_fanout] (default on) lets the network coalesce quorum
    multicasts into one pooled engine event per wave; switching it off
    schedules per-destination events eagerly and is likewise
    byte-identical — the determinism suite locks this equivalence in.

    [batch_commit] (default off) turns on queue-oriented speculative batch
    commit (PROTOCOL.md §9): commit requests are queued and decided one
    quorum round per batch, with queued successors executing speculatively
    against predecessors' write images.  Off, behavior is byte-identical
    to the sequential per-transaction protocol.

    [spares] (default 0) provisions that many extra machines beyond
    [nodes]: they exist on the topology but start decommissioned (network
    down, outside the view) until a {!join_node_at} or {!replace_node_at}
    brings them in.  {!nodes} reports total capacity ([nodes + spares]);
    {!members} is the current view.

    [shards] (default 1) partitions the initial members into that many
    contiguous, near-equal shards; objects map to shard [oid mod shards]
    until moved.  Raises [Invalid_argument] unless every shard gets at
    least 3 members. *)

val engine : t -> Sim.Engine.t

(** The tracer the cluster was built with ({!Obs.Tracer.null} when off). *)
val tracer : t -> Obs.Tracer.t
val network : t -> (Messages.request, Messages.reply) Sim.Rpc.envelope Sim.Network.t
val executor : t -> Executor.t
val metrics : t -> Metrics.t
val oracle : t -> Oracle.t option
val config : t -> Config.t
val failure : t -> Sim.Failure.t

val nodes : t -> int
(** Total machine capacity, including spares and departed nodes — the
    valid range of node ids.  See {!members} for the current view. *)

val members : t -> int list
(** The current membership view — the union of every shard's members —
    sorted ascending. *)

val is_member : t -> int -> bool

val epoch : t -> int
(** The cluster-wide view epoch: 0 at creation, bumped by every completed
    view change on any shard (with one shard, exactly that shard's
    epoch). *)

(** {2 Shards} *)

val shard_count : t -> int
(** Number of shards (1 unless created with [~shards] or grown by
    {!split_shard_at}). *)

val shard_of_oid : t -> Ids.obj_id -> int
(** The shard directory: which shard owns this object right now. *)

val shard_members : t -> shard:int -> int list
(** One shard's current member view, sorted ascending. *)

val shard_epoch : t -> shard:int -> int
(** One shard's view epoch (each shard fences its own traffic). *)

val home_shard_of : t -> node:int -> int
(** The shard a node replicates (spares report the shard they last
    served, 0 before any join). *)

val ids : t -> Ids.gen
val rng : t -> Util.Rng.t
val now : t -> float

val alloc_object : t -> init:Txn.value -> Ids.obj_id
(** Allocate a fresh object id and install it (version 0) on every member
    replica. *)

val install_object : t -> oid:Ids.obj_id -> init:Txn.value -> unit
(** (Re)install an object at version 0 on every member of its owning
    shard — setup-time only.  Nodes joining later receive state through
    the reconfiguration handoff instead. *)

val store_of : t -> node:int -> Store.Replica.t
(** Direct replica access, for tests and white-box assertions. *)

val server_of : t -> node:int -> Server.t
(** Direct protocol-handler access, for tests that hand-deliver requests
    (e.g. staging a decided-but-partially-applied commit). *)

val read_quorum_of : t -> node:int -> int list
(** The node's designated read quorum over its {e home} shard (empty while
    that shard is wedged or quorum-starved). *)

val write_quorum_of : t -> node:int -> int list

val submit :
  t -> node:int -> (unit -> Txn.t) -> on_done:(Executor.outcome -> unit) -> unit
(** Run a root transaction on [node] (see {!Executor.run_root}). *)

val run_program : t -> node:int -> (unit -> Txn.t) -> Executor.outcome
(** Convenience for tests and examples: submit, then drive the engine until
    the transaction finishes.  Other concurrently submitted work also runs. *)

val fail_node_at : t -> at:float -> node:int -> unit
(** Schedule a fail-stop.  Quorum caches refresh when detection fires. *)

val recover_node_at : t -> at:float -> node:int -> unit
(** Schedule a crashed node to restart at [at]: its network presence is
    revived, it state-syncs from a read quorum ([Sync_req]), and only then
    rejoins quorum construction (caches refresh again). *)

val suspect_node_at : ?clear_after:float -> t -> at:float -> node:int -> unit
(** Inject a false suspicion: the live node is excluded from new quorums at
    [at] and (if [clear_after] is given) re-admitted that much later. *)

(** {2 Reconfiguration}

    All three operations run the same fenced state machine: wedge (quorum
    construction pauses; in-flight rounds land or expire), snapshot (the
    committed frontier is pulled through an outgoing-view read ∪ write
    quorum, the crash-recovery [Sync_req] path), install (the member list
    and quorum tree are replaced, the epoch is bumped), handoff (the
    frontier is re-replicated to every reachable incoming-view member),
    unwedge, and — when a node departs — a graceful drain (the leaver
    sheds its leases and live coordinators before going dark).

    Operations are validated when they fire, against the membership at
    that moment: joining an existing member (of any shard), removing a
    non-member, or shrinking a shard below the quorum-viable minimum (3)
    raises [Invalid_argument].  Concurrent operations on one shard queue
    behind the active one; different shards reconfigure independently.
    [on_done] fires when the state machine completes.  [shard] (default
    0) selects the shard the operation applies to. *)

val join_node_at :
  ?on_done:(unit -> unit) -> ?shard:int -> t -> at:float -> node:int -> unit
(** Bring a non-member machine (a spare, or a previously departed node)
    into [shard]'s view at simulated time [at]. *)

val leave_node_at :
  ?on_done:(unit -> unit) -> ?shard:int -> t -> at:float -> node:int -> unit
(** Gracefully decommission a member: state is handed off and leases
    drained before the node leaves the network. *)

val replace_node_at :
  ?on_done:(unit -> unit) ->
  ?shard:int ->
  t ->
  at:float ->
  leaving:int ->
  joining:int ->
  unit
(** Atomic swap — one epoch bump covers both the departure and the
    arrival (rolling-restart building block). *)

(** {2 Shard-directory operations}

    Both run the same wedge / snapshot / install / handoff / unwedge
    machine as membership reconfiguration, wedging every involved shard
    together and bumping each involved shard's epoch (stale commit rounds
    fence).  Validation happens when the operation fires: a malformed
    request — moving to a nonexistent shard, moving an unallocated or
    already-resident object, splitting a shard that cannot yield two
    quorum-viable halves (< 6 members) — raises [Invalid_argument].
    Shard-directory operations run one at a time, queued FIFO, and wait
    politely for any membership reconfiguration holding an involved
    shard. *)

val move_object_at :
  ?on_done:(unit -> unit) -> t -> at:float -> oid:Ids.obj_id -> to_shard:int -> unit
(** Relocate one object: its committed row is pushed to the destination
    shard's members before the directory entry flips. *)

val split_shard_at : ?on_done:(unit -> unit) -> t -> at:float -> shard:int -> unit
(** Split a shard in two: the first half of the member list keeps the
    shard id, the second half becomes a brand-new shard (id
    {!shard_count}), and the shard's objects alternate between the
    halves. *)

val run_for : t -> float -> unit
(** Advance simulated time by the given number of milliseconds. *)

val drain : t -> unit
(** Run the engine until the event queue is empty — e.g. to let in-flight
    commit-apply messages land before inspecting replicas.  Only terminates
    once no client keeps resubmitting work. *)

val check_consistency : t -> (unit, string) result
(** Run the 1-copy-serializability oracle (error if the oracle is off). *)

val reset_counters : t -> unit
(** Zero the metrics and network counters — call at the end of warm-up so
    only the measurement window is reported. *)

val messages_sent : t -> int
val messages_by_kind : t -> (string * int) list
val messages_dropped : t -> int
val messages_duplicated : t -> int

val retransmit_exhausted : t -> int
(** At-least-once deliveries (Apply / Release) that ran out of
    retransmission attempts without an acknowledgement — previously silent;
    see {!Sim.Rpc.give_ups}. *)

val fenced_messages : t -> int
(** Stale-epoch envelopes dropped by the membership fence (see
    {!Sim.Rpc.fenced}). *)

val in_flight : t -> (int * Ids.txn_id) list
(** Live root transactions as [(coordinator node, txn id)] — stall-report
    diagnostics. *)

val held_leases : t -> (int * Ids.obj_id * int * float) list
(** Every write-lock lease currently held across the cluster, as
    [(replica node, oid, owner txn, expiry)] — stall-report diagnostics. *)
