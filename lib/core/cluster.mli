(** A complete QR-DTM deployment: simulated nodes, replicated store, tree
    quorums, failure detection, and a transaction executor.

    This is the top of the core library's public API — the examples, the
    experiment harness, and most tests build a cluster, install objects,
    submit transaction programs, and read the metrics back.

    Quorum assignment follows the paper: each node is designated a read and
    a write quorum, derived from the ternary tree with the node id as the
    rotation salt so load spreads over equivalent majorities.  Assignments
    are cached and recomputed when a failure is detected. *)

type t

val create :
  ?nodes:int ->
  ?seed:int ->
  ?topology:Sim.Topology.t ->
  ?service_time:float ->
  ?read_level:int ->
  ?detection_delay:float ->
  ?detection_jitter:float ->
  ?with_oracle:bool ->
  ?tracer:Obs.Tracer.t ->
  ?batch_fanout:bool ->
  Config.t ->
  t
(** Defaults: 13 nodes (the paper's Fig. 3 tree), metric-space topology with
    ~15 ms mean one-way latency, 0.25 ms per-message service time,
    [read_level = 1], oracle enabled, tracing disabled.  Passing an enabled
    [tracer] threads it through every layer (engine, network, RPC, servers,
    replicas, executor); tracing draws no randomness and schedules no
    events, so results stay byte-identical to an untraced run.
    [batch_fanout] (default on) lets the network coalesce quorum
    multicasts into one pooled engine event per wave; switching it off
    schedules per-destination events eagerly and is likewise
    byte-identical — the determinism suite locks this equivalence in. *)

val engine : t -> Sim.Engine.t

(** The tracer the cluster was built with ({!Obs.Tracer.null} when off). *)
val tracer : t -> Obs.Tracer.t
val network : t -> (Messages.request, Messages.reply) Sim.Rpc.envelope Sim.Network.t
val executor : t -> Executor.t
val metrics : t -> Metrics.t
val oracle : t -> Oracle.t option
val config : t -> Config.t
val failure : t -> Sim.Failure.t
val nodes : t -> int
val ids : t -> Ids.gen
val rng : t -> Util.Rng.t
val now : t -> float

val alloc_object : t -> init:Txn.value -> Ids.obj_id
(** Allocate a fresh object id and install it (version 0) on every replica. *)

val install_object : t -> oid:Ids.obj_id -> init:Txn.value -> unit
(** (Re)install an object at version 0 on every replica — setup-time only. *)

val store_of : t -> node:int -> Store.Replica.t
(** Direct replica access, for tests and white-box assertions. *)

val server_of : t -> node:int -> Server.t
(** Direct protocol-handler access, for tests that hand-deliver requests
    (e.g. staging a decided-but-partially-applied commit). *)

val read_quorum_of : t -> node:int -> int list
val write_quorum_of : t -> node:int -> int list

val submit :
  t -> node:int -> (unit -> Txn.t) -> on_done:(Executor.outcome -> unit) -> unit
(** Run a root transaction on [node] (see {!Executor.run_root}). *)

val run_program : t -> node:int -> (unit -> Txn.t) -> Executor.outcome
(** Convenience for tests and examples: submit, then drive the engine until
    the transaction finishes.  Other concurrently submitted work also runs. *)

val fail_node_at : t -> at:float -> node:int -> unit
(** Schedule a fail-stop.  Quorum caches refresh when detection fires. *)

val recover_node_at : t -> at:float -> node:int -> unit
(** Schedule a crashed node to restart at [at]: its network presence is
    revived, it state-syncs from a read quorum ([Sync_req]), and only then
    rejoins quorum construction (caches refresh again). *)

val suspect_node_at : ?clear_after:float -> t -> at:float -> node:int -> unit
(** Inject a false suspicion: the live node is excluded from new quorums at
    [at] and (if [clear_after] is given) re-admitted that much later. *)

val run_for : t -> float -> unit
(** Advance simulated time by the given number of milliseconds. *)

val drain : t -> unit
(** Run the engine until the event queue is empty — e.g. to let in-flight
    commit-apply messages land before inspecting replicas.  Only terminates
    once no client keeps resubmitting work. *)

val check_consistency : t -> (unit, string) result
(** Run the 1-copy-serializability oracle (error if the oracle is off). *)

val reset_counters : t -> unit
(** Zero the metrics and network counters — call at the end of warm-up so
    only the measurement window is reported. *)

val messages_sent : t -> int
val messages_by_kind : t -> (string * int) list
val messages_dropped : t -> int
val messages_duplicated : t -> int

val retransmit_exhausted : t -> int
(** At-least-once deliveries (Apply / Release) that ran out of
    retransmission attempts without an acknowledgement — previously silent;
    see {!Sim.Rpc.give_ups}. *)

val in_flight : t -> (int * Ids.txn_id) list
(** Live root transactions as [(coordinator node, txn id)] — stall-report
    diagnostics. *)

val held_leases : t -> (int * Ids.obj_id * int * float) list
(** Every write-lock lease currently held across the cluster, as
    [(replica node, oid, owner txn, expiry)] — stall-report diagnostics. *)
