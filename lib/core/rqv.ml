let entry_valid store ~txn (entry : Messages.dataset_entry) =
  match Store.Replica.find store entry.oid with
  | None -> false
  | Some copy ->
    let stale = entry.version < copy.version in
    let locked =
      match copy.protected_by with
      | None -> false
      | Some lease -> lease.Store.Replica.owner <> txn
    in
    (not stale) && not locked

let validate store ~txn ~dataset =
  let worst = ref None in
  List.iter
    (fun (entry : Messages.dataset_entry) ->
      if not (entry_valid store ~txn entry) then begin
        Store.Replica.remove_txn store ~oid:entry.oid ~txn;
        match !worst with
        | None -> worst := Some entry.owner
        | Some target -> if entry.owner < target then worst := Some entry.owner
      end)
    dataset;
  !worst
