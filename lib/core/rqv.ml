let oid_valid store ~txn ~oid ~version =
  match Store.Replica.find store oid with
  | None -> false
  | Some copy ->
    let stale = version < copy.version in
    let locked =
      match copy.protected_by with
      | None -> false
      | Some lease -> lease.Store.Replica.owner <> txn
    in
    (not stale) && not locked

let entry_valid store ~txn (entry : Messages.dataset_entry) =
  oid_valid store ~txn ~oid:entry.oid ~version:entry.version

(* [max_int] as the "no invalid entry yet" sentinel keeps the loop free of
   option allocation; owner tags are small non-negative ints. *)
let validate store ~txn ~(dataset : Messages.dataset) =
  let worst = ref max_int in
  let n = Messages.dataset_len dataset in
  for i = 0 to n - 1 do
    let oid = Array.unsafe_get dataset.ds_oids i in
    if not (oid_valid store ~txn ~oid ~version:(Array.unsafe_get dataset.ds_versions i))
    then begin
      Store.Replica.remove_txn store ~oid ~txn;
      let owner = Array.unsafe_get dataset.ds_owners i in
      if owner < !worst then worst := owner
    end
  done;
  if !worst = max_int then None else Some !worst
