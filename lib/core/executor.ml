type quorums = {
  read_quorum : shard:int -> node:int -> int list;
  write_quorum : shard:int -> node:int -> int list;
  node_alive : int -> bool;
  epoch : shard:int -> int;
  shard_of : int -> int;
  home_shard : int -> int;
}

(* Handle on a live root, kept in a per-executor registry so a fail-stop of
   the hosting node can kill its coordinators (their threads die with the
   machine) and so diagnostics can list in-flight transactions. *)
type active = { a_id : int; a_node : int; a_txn : unit -> int; a_kill : unit -> unit }

type outcome = Committed of Txn.value | Failed of string

(* One closed-nesting scope.  The root transaction is the depth-0 scope;
   [cont] is the parent's continuation, absent for the root.

   The group below is mutually recursive because batch-commit mode hangs a
   commit queue off the executor itself: a [pending] queue entry references
   the [root] (and its final [scope]) it will decide, while every root
   points back at its executor. *)
type scope = {
  depth : int;
  thunk : unit -> Txn.t;
  cont : (Txn.value -> Txn.t) option;
  mutable rset : Rwset.t;
  mutable wset : Rwset.t;
}

and checkpoint = {
  chk_id : int;
  resume : unit -> Txn.t;
  saved_rset : Rwset.t;
  saved_wset : Rwset.t;
}

and root = {
  exec : t;
  node : int;
  program : unit -> Txn.t;
  on_done : outcome -> unit;
  mutable txn_id : Ids.txn_id;
  mutable attempt : int;
  born : float;
  mutable scopes : scope list; (* innermost first; never empty while running *)
  mutable checkpoints : checkpoint list; (* newest first *)
  mutable next_chk : int;
  mutable since_chk : int;
  mutable last_validation_sent : float;
  mutable lock_deadline : float;
      (* the coordinator's own view of its lease horizon: past it, replicas
         may presume-abort its locks, so a commit decision is forbidden *)
  mutable extra_read_peers : int list;
      (* commit-time read repair: write-quorum members that vetoed a commit
         as stale (no lock conflict) hold newer versions than this root's
         read quorum served.  After a partition heal the read quorum can be
         consistently stale — quorums built under different membership
         views need not intersect — so re-reading the same quorum would
         veto forever.  Widening subsequent reads to include the witnesses
         adopts the newer version; the retried commit's Apply then repairs
         the stale members for every later transaction. *)
  mutable commit_lock_budget : int;
  mutable commit_round : int;
      (* monotone commit-round counter, stamped into Commit_req/Release so
         replicas can drop a stale Release retransmitted from an abandoned
         round after a later round re-locked (never reset: replicas compare
         rounds per transaction id, which is fresh per attempt) *)
  mutable compensations : (unit -> Txn.t) list; (* open nesting; newest first *)
  mutable steps : int; (* DSL steps this attempt; zombie guard *)
  mutable generation : int;
  mutable finished : bool;
  mutable spec_deps : Ids.txn_id list;
      (* batch mode: queued predecessors whose uncommitted write images this
         attempt read.  Deps accumulate for the whole attempt and reset only
         in [start_attempt]: narrowing them on a partial abort is unsound,
         because a closed-nested commit merges (and retags) the child's
         read entries into the parent, so the entry backing a dep can
         outlive a later rollback of the depth it was read at — the value
         then survives in the working set while the filtered dep would be
         forgotten.  The root must not commit unless every dependency
         decided commit first; dropping a dep late costs at worst a
         spurious speculation abort, never safety. *)
}

(* One enqueued commit: the root went through [root_commit] and waits for a
   batch round to decide it.  [p_generation] is captured at enqueue so a
   fail-stop of the hosting node (the only generation bump a quiescent
   queued root can suffer) is detected at cut/decision time. *)
and pending = {
  p_root : root;
  p_scope : scope;
  p_value : Txn.value;
  p_txn : Ids.txn_id;
  p_generation : int;
}

(* The newest write image per object across the commit queue: queued
   successors read it instead of paying a read-quorum round.  [img_committed]
   flips when the writer's batch round decides commit — the image then acts
   as a committed-value cache (every write flows through the queue, so it is
   always the newest committed version); while false, readers record a
   speculative dependency on [img_txn]. *)
and image = {
  mutable img_txn : Ids.txn_id;
  mutable img_version : int;
  mutable img_value : Txn.value;
  mutable img_committed : bool;
}

and t = {
  engine : Sim.Engine.t;
  rpc : (Messages.request, Messages.reply) Sim.Rpc.t;
  quorums : quorums;
  config : Config.t;
  metrics : Metrics.t;
  oracle : Oracle.t option;
  ids : Ids.gen;
  rng : Util.Rng.t;
  tracer : Obs.Tracer.t; (* cached from the engine; Tracer.null when off *)
  (* Scratch data-set builder, reused by [full_dataset] / [commit_dataset]:
     rows are staged in the growable parallel arrays and frozen into a
     [Messages.dataset] (three [Array.sub]s) only when a request is built.
     An executor runs inside one simulation (one domain) and never builds
     two data-sets at once, so sharing the scratch across roots is safe. *)
  ds_slots : (int, int) Hashtbl.t; (* oid -> staged row; [full_dataset] dedup *)
  mutable ds_oids : int array;
  mutable ds_versions : int array;
  mutable ds_owners : int array;
  mutable ds_len : int;
  mutable actives : active list;
  mutable next_active : int;
  (* Batch-commit mode (PROTOCOL.md §9).  All of it is inert when
     [batch_commit] is false: no field is touched, no event scheduled. *)
  batch_commit : bool;
  mutable batch_queues : batchq array;
      (* one commit queue per shard, grown on demand ([batchq]); a batch
         round is a single-shard quorum round, so entries never mix shards *)
  mutable batch_seq : int; (* batch id for traces; unique across shards *)
  images : (Ids.obj_id, image) Hashtbl.t;
  (* Decisions of recent batch entries, consulted to resolve speculative
     dependencies.  Bounded FIFO: a dependency is always decided by the
     time its reader decides (one batch in flight, decided in order), so
     eviction of old entries is safe; an evicted/unknown dependency reads
     as "not committed", which only ever aborts conservatively. *)
  spec_outcomes : (Ids.txn_id, bool) Hashtbl.t;
  spec_outcome_order : Ids.txn_id Queue.t;
}

(* Per-shard batch-commit queue.  Queue order is commit order {e within a
   shard}; rounds on different shards are independent (disjoint member
   sets), so each shard pipelines its own cuts. *)
and batchq = {
  bq_shard : int;
  mutable bq_queue : pending list; (* newest first; reversed at cut *)
  mutable bq_len : int;
  mutable bq_inflight : bool; (* at most one batch round in flight per shard *)
  mutable bq_cut_scheduled : bool; (* a deadline cut is pending *)
  (* Transactions committed in this shard's last two batch rounds, shipped
     with the next Batch_commit_req: their Applies may still be in flight,
     and a replica may hand their moribund leases to a successor that read
     past them (PROTOCOL.md §9). *)
  mutable bq_last_commits : Ids.txn_id list;
  mutable bq_prev_commits : Ids.txn_id list;
}

let create ~engine ~rpc ~quorums ~config ~metrics ?oracle ?(batch_commit = false)
    ~ids ~seed () =
  {
    engine;
    rpc;
    quorums;
    config;
    metrics;
    oracle;
    ids;
    rng = Util.Rng.create seed;
    tracer = Sim.Engine.tracer engine;
    ds_slots = Hashtbl.create 64;
    ds_oids = Array.make 64 0;
    ds_versions = Array.make 64 0;
    ds_owners = Array.make 64 0;
    ds_len = 0;
    actives = [];
    next_active = 0;
    batch_commit;
    batch_queues = [||];
    batch_seq = 0;
    images = Hashtbl.create 64;
    spec_outcomes = Hashtbl.create 256;
    spec_outcome_order = Queue.create ();
  }

(* The shard's batch queue, materialised on first use (shards can appear
   mid-run: a split mints a new shard id). *)
let batchq exec ~shard =
  let n = Array.length exec.batch_queues in
  if shard >= n then
    exec.batch_queues <-
      Array.init (shard + 1) (fun i ->
          if i < n then exec.batch_queues.(i)
          else
            {
              bq_shard = i;
              bq_queue = [];
              bq_len = 0;
              bq_inflight = false;
              bq_cut_scheduled = false;
              bq_last_commits = [];
              bq_prev_commits = [];
            });
  exec.batch_queues.(shard)

let config t = t.config
let metrics t = t.metrics

let now root = Sim.Engine.now root.exec.engine

(* Transaction-lifecycle tracing.  Emission is attributed to the current
   attempt's transaction id (fresh per attempt); it draws no randomness and
   schedules nothing, so tracing never perturbs the run.  All slots are
   required ([-1] / [0.] for n/a): labelled optional arguments would box an
   option per supplied label even with the tracer disabled. *)
let trace root ~kind ~oid ~a ~b ~x =
  let tracer = root.exec.tracer in
  if Obs.Tracer.enabled tracer then
    Obs.Tracer.emit8 tracer ~time:(now root) ~kind ~node:root.node
      ~txn:root.txn_id ~oid ~a ~b ~x

let rqv_active exec =
  match exec.config.mode with
  | Config.Closed | Config.Checkpoint -> true
  | Config.Flat -> exec.config.rqv_for_flat

let current_scope root =
  match root.scopes with
  | scope :: _ -> scope
  | [] -> invalid_arg "Executor: no active scope"

(* The checkpoint id in effect: new entries are tagged with it. *)
let current_chk root =
  match root.checkpoints with [] -> 0 | chk :: _ -> chk.chk_id

let owner_tag root =
  match root.exec.config.mode with
  | Config.Flat -> 0
  | Config.Closed -> (current_scope root).depth
  | Config.Checkpoint -> current_chk root

(* Scratch data-set staging: append one row, growing the parallel arrays
   geometrically (they only ever grow; an executor outlives its roots). *)
let ds_push exec ~oid ~version ~owner =
  let i = exec.ds_len in
  if i = Array.length exec.ds_oids then begin
    let cap' = 2 * Array.length exec.ds_oids in
    let grow a =
      let b = Array.make cap' 0 in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    exec.ds_oids <- grow exec.ds_oids;
    exec.ds_versions <- grow exec.ds_versions;
    exec.ds_owners <- grow exec.ds_owners
  end;
  exec.ds_oids.(i) <- oid;
  exec.ds_versions.(i) <- version;
  exec.ds_owners.(i) <- owner;
  exec.ds_len <- i + 1;
  i

(* Freeze the staged rows into an immutable wire payload.  The copy is
   mandatory: the message is shared by reference with every delivery
   (including retransmissions), so the scratch cannot travel. *)
let ds_freeze exec =
  if exec.ds_len = 0 then Messages.empty_dataset
  else
    {
      Messages.ds_oids = Array.sub exec.ds_oids 0 exec.ds_len;
      ds_versions = Array.sub exec.ds_versions 0 exec.ds_len;
      ds_owners = Array.sub exec.ds_owners 0 exec.ds_len;
    }

(* Accumulated data-set across the scope chain, outermost owners winning on
   duplicate object ids (validation must name the ancestor-most owner). *)
(* Validation is order-independent ([Rqv.validate] minimises the owner tag
   over the whole set), so the staging order never shows through; reusing
   the scratch avoids the per-request table and per-entry allocations. *)
let full_dataset root =
  let exec = root.exec in
  Hashtbl.clear exec.ds_slots;
  exec.ds_len <- 0;
  let note (e : Rwset.entry) =
    match Hashtbl.find exec.ds_slots e.oid with
    | i ->
      if e.owner < exec.ds_owners.(i) then begin
        exec.ds_versions.(i) <- e.version;
        exec.ds_owners.(i) <- e.owner
      end
    | exception Not_found ->
      Hashtbl.add exec.ds_slots e.oid
        (ds_push exec ~oid:e.oid ~version:e.version ~owner:e.owner)
  in
  List.iter
    (fun scope ->
      Rwset.iter scope.rset note;
      Rwset.iter scope.wset note)
    root.scopes;
  ds_freeze exec

(* Commit-request data-set: the flat union of the final scope's sets with
   the write set winning on collision — what [Rwset.merge_into ~child:wset
   ~parent:rset] used to build, without materialising the merged map. *)
let commit_dataset exec ~(scope_rset : Rwset.t) ~(scope_wset : Rwset.t) =
  exec.ds_len <- 0;
  Rwset.iter scope_wset (fun (e : Rwset.entry) ->
      ignore (ds_push exec ~oid:e.oid ~version:e.version ~owner:e.owner));
  Rwset.iter scope_rset (fun (e : Rwset.entry) ->
      if not (Rwset.mem scope_wset e.oid) then
        ignore (ds_push exec ~oid:e.oid ~version:e.version ~owner:e.owner));
  ds_freeze exec

(* The participant shards of a commit: every shard owning an object in the
   final scope's sets, ascending.  A transaction that touched nothing still
   names shard 0 so the (empty) commit round has a home. *)
let commit_shards exec ~(scope_rset : Rwset.t) ~(scope_wset : Rwset.t) =
  let acc = ref [] in
  let note (e : Rwset.entry) =
    let s = exec.quorums.shard_of e.oid in
    if not (List.mem s !acc) then acc := s :: !acc
  in
  Rwset.iter scope_wset note;
  Rwset.iter scope_rset note;
  match List.sort Int.compare !acc with [] -> [ 0 ] | shards -> shards

(* Per-shard slice of a frozen commit data-set: only the rows a shard hosts
   are sent to (and validated by) its quorum.  Returns the original array
   set when every row already belongs to [shard]. *)
let dataset_slice exec (full : Messages.dataset) ~shard =
  let n = Array.length full.Messages.ds_oids in
  let keep = ref 0 in
  for i = 0 to n - 1 do
    if exec.quorums.shard_of full.Messages.ds_oids.(i) = shard then incr keep
  done;
  if !keep = n then full
  else if !keep = 0 then Messages.empty_dataset
  else begin
    let d =
      {
        Messages.ds_oids = Array.make !keep 0;
        ds_versions = Array.make !keep 0;
        ds_owners = Array.make !keep 0;
      }
    in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if exec.quorums.shard_of full.Messages.ds_oids.(i) = shard then begin
        d.Messages.ds_oids.(!j) <- full.Messages.ds_oids.(i);
        d.Messages.ds_versions.(!j) <- full.Messages.ds_versions.(i);
        d.Messages.ds_owners.(!j) <- full.Messages.ds_owners.(i);
        incr j
      end
    done;
    d
  end

(* checkParent (Algorithm 2, line 2): wset shadows rset, inner scopes shadow
   outer ones. *)
let lookup_local root oid =
  let rec search = function
    | [] -> None
    | scope :: rest ->
      begin
        match Rwset.find scope.wset oid with
        | Some e -> Some e
        | None ->
          begin
            match Rwset.find scope.rset oid with
            | Some e -> Some e
            | None -> search rest
          end
      end
  in
  search root.scopes

let schedule root ~delay f =
  Sim.Engine.schedule root.exec.engine ~delay (fun () -> if not root.finished then f ())

(* A reply that raced with an abort (or with transaction completion) must be
   dropped: callers capture the generation at request time and test it. *)
let still_current root generation =
  (not root.finished) && root.generation = generation

let jittered rng base = base *. (0.5 +. Util.Rng.float rng 1.0)

let backoff_delay root =
  let cfg = root.exec.config in
  let exp = Stdlib.min root.attempt 8 in
  let base = cfg.backoff_base *. Float.of_int (1 lsl exp) in
  jittered root.exec.rng (Stdlib.min cfg.backoff_max base)

(* Commit-time read repair (see [extra_read_peers]): remember write-quorum
   members that vetoed as stale with no lock conflict, so subsequent reads
   include them. *)
let widen_to_witnesses root stale_witnesses =
  if stale_witnesses <> [] then begin
    Metrics.note_read_widening root.exec.metrics;
    List.iter
      (fun witness ->
        if not (List.mem witness root.extra_read_peers) then
          trace root ~kind:Obs.Sem.widen_add ~oid:(-1) ~a:witness
            ~b:(root.exec.quorums.home_shard witness) ~x:0.)
      (List.sort_uniq Int.compare stale_witnesses);
    root.extra_read_peers <-
      List.sort_uniq Int.compare (stale_witnesses @ root.extra_read_peers)
  end

(* Apply payload of a committing scope: each written object advances one
   version past the base the transaction read. *)
let writes_of_wset (wset : Rwset.t) =
  let n = Rwset.size wset in
  if n = 0 then Messages.empty_writes
  else begin
    let w =
      {
        Messages.wr_oids = Array.make n 0;
        wr_versions = Array.make n 0;
        wr_values = Array.make n Store.Value.Unit;
      }
    in
    let i = ref 0 in
    Rwset.iter wset (fun (e : Rwset.entry) ->
        w.Messages.wr_oids.(!i) <- e.oid;
        w.Messages.wr_versions.(!i) <- e.version + 1;
        w.Messages.wr_values.(!i) <- e.value;
        incr i);
    w
  end

let reads_of_rset (rset : Rwset.t) =
  let n = Rwset.size rset in
  let a = Array.make n 0 in
  let i = ref 0 in
  Rwset.iter rset (fun (e : Rwset.entry) ->
      a.(!i) <- e.oid;
      incr i);
  a

(* --- batch-commit state helpers (inert when batch_commit is off) -------- *)

(* Publish/overwrite the write image of [oid]: last enqueued writer wins,
   and queued successors read this instead of the store. *)
let set_image exec ~oid ~txn ~version ~value =
  match Hashtbl.find_opt exec.images oid with
  | Some img ->
    img.img_txn <- txn;
    img.img_version <- version;
    img.img_value <- value;
    img.img_committed <- false
  | None ->
    Hashtbl.add exec.images oid
      { img_txn = txn; img_version = version; img_value = value; img_committed = false }

(* Drop [txn]'s still-owned images on abort (a later writer's image
   survives — it never read this one, or it carries its own dependency). *)
let drop_images exec ~txn ~wset =
  Rwset.iter wset (fun (e : Rwset.entry) ->
      match Hashtbl.find_opt exec.images e.oid with
      | Some img when img.img_txn = txn -> Hashtbl.remove exec.images e.oid
      | Some _ | None -> ())

let commit_images exec ~txn ~wset =
  Rwset.iter wset (fun (e : Rwset.entry) ->
      match Hashtbl.find_opt exec.images e.oid with
      | Some img when img.img_txn = txn -> img.img_committed <- true
      | Some _ | None -> ())

(* A cross-shard commit bypasses the batch queue, so its writes never become
   queued images — but a {e committed} image it overtook would now be stale
   and poison every later speculative read of the object (a guaranteed veto).
   Refresh such images in place; an uncommitted image (a queued writer racing
   us) is left alone — its own batch round vetoes it against the installed
   version, and the early doomed-check fails fast its readers. *)
let refresh_committed_images exec ~txn ~wset =
  Rwset.iter wset (fun (e : Rwset.entry) ->
      match Hashtbl.find_opt exec.images e.oid with
      | Some img when img.img_committed && img.img_version <= e.version + 1 ->
        img.img_txn <- txn;
        img.img_version <- e.version + 1;
        img.img_value <- e.value;
        img.img_committed <- true
      | Some _ | None -> ())

let spec_outcome_cap = 16_384

let record_spec_outcome exec ~txn ~committed =
  Hashtbl.replace exec.spec_outcomes txn committed;
  Queue.push txn exec.spec_outcome_order;
  if Queue.length exec.spec_outcome_order > spec_outcome_cap then
    Hashtbl.remove exec.spec_outcomes (Queue.pop exec.spec_outcome_order)

(* Resolve a root's speculative dependencies.  [`Undecided] covers both a
   predecessor still waiting on a batch round (an order violation if we are
   deciding right now — it was re-queued past us) and one evicted from the
   bounded outcome table; both read conservatively as "cannot commit". *)
let dep_status exec deps =
  let rec go undecided = function
    | [] -> (match undecided with Some txn -> `Undecided txn | None -> `Ok)
    | txn :: rest ->
      (match Hashtbl.find_opt exec.spec_outcomes txn with
      | Some true -> go undecided rest
      | Some false -> `Failed txn
      | None -> go (Some txn) rest)
  in
  go None deps

let fresh_scope ~depth ~thunk ~cont =
  { depth; thunk; cont; rset = Rwset.empty; wset = Rwset.empty }

let rec start_attempt root =
  root.txn_id <- Ids.fresh_txn root.exec.ids;
  root.scopes <- [ fresh_scope ~depth:0 ~thunk:root.program ~cont:None ];
  root.checkpoints <- [];
  root.next_chk <- 1;
  root.since_chk <- 0;
  root.last_validation_sent <- now root;
  root.lock_deadline <- Float.infinity;
  root.commit_lock_budget <- root.exec.config.commit_lock_retries;
  root.steps <- 0;
  root.spec_deps <- [];
  root.generation <- root.generation + 1;
  trace root ~kind:Obs.Sem.txn_begin ~oid:(-1) ~a:(root.attempt + 1) ~b:(-1) ~x:0.;
  (* Widened-read witnesses survive across attempts, but each attempt runs
     under a fresh transaction id — re-announce them so per-transaction
     trace analyses (the widen-read checker rule) see the carried-over
     obligation. *)
  List.iter
    (fun witness ->
      trace root ~kind:Obs.Sem.widen_add ~oid:(-1) ~a:witness
        ~b:(root.exec.quorums.home_shard witness) ~x:0.)
    root.extra_read_peers;
  step root (root.program ())

and step root prog =
  schedule root ~delay:root.exec.config.local_op_cost (fun () -> interpret root prog)

and interpret root prog =
  (* Zombie guard: a transaction that observed an inconsistent snapshot
     (possible under flat QR, which validates only at commit) may chase a
     pointer cycle through locally cached entries forever; cap the attempt
     and retry it against fresh state. *)
  root.steps <- root.steps + 1;
  if root.steps > root.exec.config.max_steps_per_attempt then root_abort root
  else interpret_op root prog

and interpret_op root prog =
  match prog with
  | Txn.Return v -> finish_scope root v
  | Txn.Fail msg -> finish root (Failed msg)
  | Txn.Read (oid, k) -> access root ~oid ~write:None ~k
  | Txn.Write (oid, v, k) -> access root ~oid ~write:(Some v) ~k:(fun _ -> k ())
  | Txn.Nested (body, cont) ->
    begin
      match root.exec.config.mode with
      | Config.Closed ->
        let parent = current_scope root in
        trace root ~kind:Obs.Sem.scope_push ~oid:(-1) ~a:(parent.depth + 1)
          ~b:(-1) ~x:0.;
        root.scopes <-
          fresh_scope ~depth:(parent.depth + 1) ~thunk:body ~cont:(Some cont)
          :: root.scopes;
        step root (body ())
      | Config.Flat | Config.Checkpoint -> step root (Txn.bind (body ()) cont)
    end
  | Txn.Checkpoint k ->
    begin
      match root.exec.config.mode with
      | Config.Checkpoint -> create_checkpoint root ~resume:k ~continue:(fun () -> step root (k ()))
      | Config.Flat | Config.Closed -> step root (k ())
    end
  | Txn.Open { body; compensate; k } ->
    (* Open nesting: run [body] as an independent transaction (fresh id,
       fresh sets, its own 2PC).  The parent is quiescent meanwhile — it
       has no requests in flight — so no generation guard is needed.  On
       commit, the compensation is registered for the parent's abort path
       and the parent resumes. *)
    let generation = root.generation in
    spawn_root root.exec ~node:root.node ~program:body ~on_done:(fun outcome ->
        if still_current root generation then begin
          match outcome with
          | Committed v ->
            Metrics.note_open_commit root.exec.metrics;
            root.compensations <- (fun () -> compensate v) :: root.compensations;
            step root (k v)
          | Failed msg -> finish root (Failed msg)
        end)

and access root ~oid ~write ~k =
  match lookup_local root oid with
  | Some entry ->
    Metrics.note_local_read root.exec.metrics;
    install_entry root ~oid ~base_version:entry.version
      ~read_value:entry.value ~write ~remote:false ~k
  | None ->
    let exec = root.exec in
    if exec.batch_commit then begin
      (* Speculative read-from-queue: serve the newest queued (or committed)
         write image before paying a remote round.  The entry is installed
         [~remote:true] — it must be re-validated at commit exactly like a
         quorum-served read. *)
      match Hashtbl.find_opt exec.images oid with
      | Some img ->
        Metrics.note_speculative_read exec.metrics;
        let pending_dep = not img.img_committed in
        if pending_dep && not (List.mem img.img_txn root.spec_deps) then
          root.spec_deps <- img.img_txn :: root.spec_deps;
        trace root ~kind:Obs.Sem.spec_read ~oid ~a:img.img_txn
          ~b:(if pending_dep then 1 else 0)
          ~x:0.;
        install_entry root ~oid ~base_version:img.img_version
          ~read_value:img.img_value ~write ~remote:true ~k
      | None -> remote_fetch root ~oid ~write ~k
    end
    else remote_fetch root ~oid ~write ~k

and remote_fetch root ~oid ~write ~k =
  let exec = root.exec in
  let shard = exec.quorums.shard_of oid in
  let quorum = exec.quorums.read_quorum ~shard ~node:root.node in
  match quorum with
  | [] ->
    (* No read quorum constructible right now (too many failures); retry
       after a delay, by which time detection may have recovered one. *)
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.request_timeout) (fun () ->
        remote_fetch root ~oid ~write ~k)
  | _ ->
    let dataset =
      (* Only the rows this shard hosts: its replicas cannot attest to
         foreign copies, and an unsliced set would read as permanently
         stale there.  Single-shard slices are the full set unchanged. *)
      if rqv_active exec then dataset_slice exec (full_dataset root) ~shard
      else Messages.empty_dataset
    in
    let record = (current_scope root).depth = 0 in
    let request =
      Messages.Read_req
        { txn = root.txn_id; oid; dataset; write_intent = Option.is_some write; record }
    in
    let dsts =
      (* Widened-read witnesses from another shard cannot serve this
         object — only this shard's members host it. *)
      match
        List.filter (fun n -> exec.quorums.home_shard n = shard) root.extra_read_peers
      with
      | [] -> quorum
      | extra -> List.sort_uniq Int.compare (extra @ quorum)
    in
    if Obs.Tracer.enabled exec.tracer then
      List.iter
        (fun dst -> trace root ~kind:Obs.Sem.read_send ~oid ~a:dst ~b:shard ~x:0.)
        dsts;
    root.last_validation_sent <- now root;
    let generation = root.generation in
    Sim.Rpc.multicall exec.rpc ~kind:Messages.read_req_kind ~src:root.node ~dsts
      ~timeout:exec.config.request_timeout request
      ~on_done:(fun ~replies ~missing ->
        if still_current root generation then
          handle_read_replies root ~oid ~write ~k ~replies ~missing)

and handle_read_replies root ~oid ~write ~k ~replies ~missing =
  let exec = root.exec in
  if missing <> [] then begin
    (* A quorum member failed mid-request: retry with refreshed quorums.
       Drop widened-read witnesses that are missing AND dead — a dead
       witness can no longer veto a commit, and keeping it would leave
       every retry incomplete forever.  A witness that is merely
       unreachable (partition, flaky link) is kept: its newer version is
       exactly what the widening exists to fetch, so the read must keep
       trying until the fault clears. *)
    if root.extra_read_peers <> [] then begin
      let kept, pruned =
        List.partition
          (fun n -> (not (List.mem n missing)) || exec.quorums.node_alive n)
          root.extra_read_peers
      in
      List.iter
        (fun witness ->
          trace root ~kind:Obs.Sem.widen_drop ~oid:(-1) ~a:witness ~b:(-1) ~x:0.)
        pruned;
      root.extra_read_peers <- kept
    end;
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay) (fun () ->
        remote_fetch root ~oid ~write ~k)
  end
  else begin
    let abort_target =
      List.fold_left
        (fun acc (_, reply) ->
          match reply with
          | Messages.Read_abort { target } ->
            Some (match acc with None -> target | Some t -> Stdlib.min t target)
          | Messages.Read_ok _ | Messages.Vote _ | Messages.Sync_rep _ | Messages.Status_rep _
          | Messages.Ack | Messages.Batch_commit_rep _ ->
            acc)
        None replies
    in
    match abort_target with
    | Some target -> partial_abort root ~target
    | None ->
      begin
        let best =
          List.fold_left
            (fun acc (_, reply) ->
              match reply with
              | Messages.Read_ok { version; value; _ } ->
                begin
                  match acc with
                  | Some (v, _) when v >= version -> acc
                  | Some _ | None -> Some (version, value)
                end
              | Messages.Read_abort _ | Messages.Vote _ | Messages.Sync_rep _ | Messages.Status_rep _
              | Messages.Ack | Messages.Batch_commit_rep _ ->
                acc)
            None replies
        in
        match best with
        | None ->
          (* Only malformed replies; treat as a failed quorum round. *)
          Metrics.note_quorum_retry exec.metrics;
          schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay)
            (fun () -> remote_fetch root ~oid ~write ~k)
        | Some (version, value) ->
          Metrics.note_remote_read exec.metrics;
          install_entry root ~oid ~base_version:version ~read_value:value ~write
            ~remote:true ~k
      end
  end

and install_entry root ~oid ~base_version ~read_value ~write ~remote ~k =
  let scope = current_scope root in
  let owner = owner_tag root in
  begin
    match write with
    | Some value ->
      trace root ~kind:Obs.Sem.txn_write ~oid ~a:(-1) ~b:(-1) ~x:0.;
      scope.wset <- Rwset.add scope.wset { oid; version = base_version; value; owner }
    | None ->
      trace root ~kind:Obs.Sem.txn_read ~oid ~a:base_version
        ~b:(if remote then 1 else 0)
        ~x:0.;
      (* A locally visible object is not re-added: its entry (and owner)
         stays with the scope that fetched it. *)
      if remote then
        scope.rset <-
          Rwset.add scope.rset { oid; version = base_version; value = read_value; owner }
  end;
  let continue () = step root (k read_value) in
  if remote && root.exec.config.mode = Config.Checkpoint then begin
    root.since_chk <- root.since_chk + 1;
    if root.since_chk >= root.exec.config.checkpoint_threshold then
      create_checkpoint root ~resume:(fun () -> k read_value) ~continue
    else continue ()
  end
  else continue ()

and create_checkpoint root ~resume ~continue =
  let scope = current_scope root in
  trace root ~kind:Obs.Sem.txn_checkpoint ~oid:(-1) ~a:root.next_chk ~b:(-1)
    ~x:0.;
  root.checkpoints <-
    {
      chk_id = root.next_chk;
      resume;
      saved_rset = scope.rset;
      saved_wset = scope.wset;
    }
    :: root.checkpoints;
  root.next_chk <- root.next_chk + 1;
  root.since_chk <- 0;
  Metrics.note_checkpoint root.exec.metrics;
  (* Saving the continuation costs local time (the paper measured ~6%). *)
  schedule root ~delay:root.exec.config.checkpoint_overhead continue

and partial_abort root ~target =
  root.generation <- root.generation + 1;
  trace root ~kind:Obs.Sem.txn_partial_abort ~oid:(-1) ~a:target ~b:(-1) ~x:0.;
  match root.exec.config.mode with
  | Config.Flat -> root_abort root
  | Config.Closed ->
    if target <= 0 then root_abort root
    else begin
      (* Unwind to the scope named by abortClosed and retry it. *)
      let rec unwind = function
        | scope :: rest when scope.depth > target -> unwind rest
        | scopes -> scopes
      in
      begin
        match unwind root.scopes with
        | scope :: _ as scopes when scope.depth = target ->
          scope.rset <- Rwset.empty;
          scope.wset <- Rwset.empty;
          root.scopes <- scopes;
          (* [spec_deps] is deliberately left alone: a merged-and-retagged
             entry from a committed child can survive this rollback, so the
             dep behind it must too (see the field's comment). *)
          Metrics.note_partial_abort root.exec.metrics;
          (* [a] reports the depth actually restored, not the requested
             target — the checker verifies they coincide. *)
          trace root ~kind:Obs.Sem.scope_resume ~oid:(-1) ~a:scope.depth ~b:(-1)
            ~x:0.;
          schedule root
            ~delay:(jittered root.exec.rng root.exec.config.ct_retry_delay)
            (fun () -> step root (scope.thunk ()))
        | _ ->
          (* The scope no longer exists (stale abort target): safe fallback. *)
          root_abort root
      end
    end
  | Config.Checkpoint ->
    if target <= 0 then root_abort root
    else begin
      let rec find_chk = function
        | [] -> None
        | chk :: rest ->
          if chk.chk_id = target then Some (chk, chk :: rest)
          else if chk.chk_id < target then None
          else find_chk rest
      in
      match find_chk root.checkpoints with
      | None -> root_abort root
      | Some (chk, kept) ->
        let scope = current_scope root in
        scope.rset <- chk.saved_rset;
        scope.wset <- chk.saved_wset;
        root.checkpoints <- kept;
        root.since_chk <- 0;
        (* [spec_deps] is deliberately left alone — see the field's
           comment; deps persist for the attempt. *)
        Metrics.note_partial_abort root.exec.metrics;
        trace root ~kind:Obs.Sem.scope_resume ~oid:(-1) ~a:chk.chk_id ~b:(-1) ~x:0.;
        schedule root
          ~delay:(jittered root.exec.rng root.exec.config.ct_retry_delay)
          (fun () -> step root (chk.resume ()))
    end

and root_abort root =
  root.generation <- root.generation + 1;
  Metrics.note_root_abort root.exec.metrics;
  trace root ~kind:Obs.Sem.txn_root_abort ~oid:(-1) ~a:(root.attempt + 1)
    ~b:(-1) ~x:0.;
  root.attempt <- root.attempt + 1;
  let cfg = root.exec.config in
  if cfg.max_attempts > 0 && root.attempt >= cfg.max_attempts then
    finish root (Failed "max attempts exceeded")
  else begin
    (* Open nesting: semantically undo globally visible sub-commits
       (newest first) before re-running the root from scratch. *)
    let compensations = root.compensations in
    root.compensations <- [];
    run_compensations root compensations (fun () ->
        schedule root ~delay:(backoff_delay root) (fun () -> start_attempt root))
  end

and run_compensations root compensations k =
  match compensations with
  | [] -> k ()
  | compensate :: rest ->
    Metrics.note_compensation root.exec.metrics;
    spawn_root root.exec ~node:root.node ~program:compensate ~on_done:(fun outcome ->
        match outcome with
        | Committed _ -> run_compensations root rest k
        | Failed msg -> finish root (Failed ("compensation failed: " ^ msg)))

and finish_scope root value =
  match root.scopes with
  | [] -> invalid_arg "Executor: Return with no scope"
  | [ scope ] -> root_commit root ~scope ~value
  | child :: (parent :: _ as rest) ->
    trace root ~kind:Obs.Sem.scope_pop ~oid:(-1) ~a:child.depth ~b:(-1) ~x:0.;
    (* commitCT (Algorithm 3): merge into the parent, locally.  Merged
       entries are retagged with the parent's depth: a later invalidation
       must abort the parent, the child's commit having been absorbed. *)
    parent.rset <-
      Rwset.merge_into ~child:(Rwset.retag child.rset ~owner:parent.depth)
        ~parent:parent.rset;
    parent.wset <-
      Rwset.merge_into ~child:(Rwset.retag child.wset ~owner:parent.depth)
        ~parent:parent.wset;
    root.scopes <- rest;
    Metrics.note_ct_commit root.exec.metrics;
    begin
      match child.cont with
      | Some cont -> step root (cont value)
      | None -> invalid_arg "Executor: child scope without continuation"
    end

and root_commit root ~scope ~value =
  let exec = root.exec in
  let read_only = Rwset.is_empty scope.wset in
  (* Only QR-CN commits read-only roots locally (paper §III-A); QR-CHK's
     request-commit is "exactly the same as flat" (§IV-A), so it pays the
     full 2PC round even when read-only. *)
  let local_ro_commit =
    match exec.config.mode with
    | Config.Closed -> true
    | Config.Flat -> exec.config.rqv_for_flat
    | Config.Checkpoint -> false
  in
  if not exec.batch_commit then begin
    if read_only && local_ro_commit then commit_read_only root ~scope ~value
    else send_commit_request root ~scope ~value
  end
  else begin
    (* Batch mode: updates enqueue for the next batch round.  A read-only
       root keeps the local commit only if it owes nothing to undecided
       predecessors — a speculative read of an image whose writer later
       aborts must never commit, even locally. *)
    match dep_status exec root.spec_deps with
    | `Failed dep -> speculation_abort root ~dep
    | `Ok when read_only && local_ro_commit -> commit_read_only root ~scope ~value
    | (`Ok | `Undecided _) as status -> (
      match commit_shards exec ~scope_rset:scope.rset ~scope_wset:scope.wset with
      | [ shard ] -> enqueue_commit root ~scope ~value ~shard
      | shards -> (
        (* A cross-shard commit bypasses the (single-shard) batch queues
           and runs the sharded 2PC directly; speculative dependencies
           still queued must decide before it can — wait them out. *)
        match status with
        | `Undecided _ ->
          schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay)
            (fun () -> root_commit root ~scope ~value)
        | `Ok -> send_commit_sharded root ~scope ~value ~shards))
  end

and commit_read_only root ~scope ~value =
  (* Rqv keeps the read-set continuously validated: read-only roots (and
     all closed-nested transactions) commit without remote messages. *)
  let exec = root.exec in
  record_commit root ~scope ~window_start:root.last_validation_sent;
  Metrics.note_read_only_commit exec.metrics ~latency:(now root -. root.born);
  trace root ~kind:Obs.Sem.txn_commit ~oid:(-1) ~a:(-1) ~b:1
    ~x:(now root -. root.born);
  finish root (Committed value)

and speculation_abort root ~dep =
  Metrics.note_speculation_abort root.exec.metrics;
  trace root ~kind:Obs.Sem.spec_abort ~oid:(-1) ~a:dep ~b:(-1) ~x:0.;
  root_abort root

and send_commit_request root ~scope ~value =
  match commit_shards root.exec ~scope_rset:scope.rset ~scope_wset:scope.wset with
  | [ shard ] -> send_commit_single root ~scope ~value ~shard
  | shards -> send_commit_sharded root ~scope ~value ~shards

and send_commit_single root ~scope ~value ~shard =
  let exec = root.exec in
  let quorum = exec.quorums.write_quorum ~shard ~node:root.node in
  match quorum with
  | [] ->
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.request_timeout) (fun () ->
        send_commit_request root ~scope ~value)
  | _ ->
    let dataset =
      commit_dataset exec ~scope_rset:scope.rset ~scope_wset:scope.wset
    in
    let locks = Rwset.oids scope.wset in
    trace root ~kind:Obs.Sem.commit_send ~oid:(-1) ~a:(List.length locks)
      ~b:(List.length quorum) ~x:(Float.of_int shard);
    let window_start = now root in
    (* Conservative lease horizon: leases are stamped at replica receipt
       (later than this send), so deciding commit before [lock_deadline]
       guarantees no replica has presumed-abort'd the locks yet. *)
    root.lock_deadline <-
      (if exec.config.lease_duration > 0. && locks <> [] then
         window_start +. exec.config.lease_duration -. exec.config.lease_safety_margin
       else Float.infinity);
    let generation = root.generation in
    let send_epoch = exec.quorums.epoch ~shard in
    root.commit_round <- root.commit_round + 1;
    Sim.Rpc.multicall exec.rpc ~kind:Messages.commit_req_kind ~src:root.node ~dsts:quorum
      ~timeout:exec.config.request_timeout
      (Messages.Commit_req
         { txn = root.txn_id; dataset; locks; round = root.commit_round; peers = [] })
      ~on_done:(fun ~replies ~missing ->
        if still_current root generation then
          handle_votes root ~scope ~value ~shard ~quorum ~window_start ~send_epoch
            ~replies ~missing)

(* Cross-shard presumed-abort 2PC (PROTOCOL.md §10).  Participant shards
   are prepared sequentially in ascending shard order, each round locking
   and validating only the rows that shard hosts; a veto, a missing voter
   or an epoch change on any shard releases every contacted shard and
   retries (or aborts) the whole transaction — no shard applies until all
   have voted commit.  Each shard's Commit_req pins [peers], the other
   participants' quorum members, so replica-side lease termination can pull
   commit evidence across shards before presuming abort. *)
and send_commit_sharded root ~scope ~value ~shards =
  let exec = root.exec in
  let quorums =
    List.map (fun s -> (s, exec.quorums.write_quorum ~shard:s ~node:root.node)) shards
  in
  if List.exists (fun (_, q) -> q = []) quorums then begin
    (* some participant shard has no constructible write quorum right now
       (wedged mid-reconfiguration / too many failures) *)
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.request_timeout) (fun () ->
        send_commit_request root ~scope ~value)
  end
  else begin
    let full = commit_dataset exec ~scope_rset:scope.rset ~scope_wset:scope.wset in
    let locks = Rwset.oids scope.wset in
    let nshards = List.length shards in
    let parts =
      List.map
        (fun (s, quorum) ->
          ( s,
            quorum,
            dataset_slice exec full ~shard:s,
            List.filter (fun oid -> exec.quorums.shard_of oid = s) locks ))
        quorums
    in
    let window_start = now root in
    (* One lease horizon for the whole 2PC, anchored at the first send:
       every shard's leases are stamped at replica receipt, later than
       this, so a decision before the horizon beats every presumed abort. *)
    root.lock_deadline <-
      (if exec.config.lease_duration > 0. && locks <> [] then
         window_start +. exec.config.lease_duration -. exec.config.lease_safety_margin
       else Float.infinity);
    root.commit_round <- root.commit_round + 1;
    let generation = root.generation in
    let release_parts ps =
      List.iter
        (fun (_, quorum, _, lslice) -> release_locks root ~quorum ~locks:lslice)
        ps
    in
    let retry () =
      Metrics.note_quorum_retry exec.metrics;
      schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay) (fun () ->
          send_commit_request root ~scope ~value)
    in
    let abort_2pc () =
      Metrics.note_cross_shard_abort exec.metrics;
      trace root ~kind:Obs.Sem.xshard_decide ~oid:(-1) ~a:0 ~b:nshards ~x:0.;
      root_abort root
    in
    let rec prepare prepared todo =
      match todo with
      | [] -> decide (List.rev prepared)
      | ((s, quorum, slice, lslice) as part) :: rest ->
        let peers =
          List.sort_uniq Int.compare
            (List.concat_map (fun (s', q, _, _) -> if s' = s then [] else q) parts)
        in
        trace root ~kind:Obs.Sem.xshard_prepare ~oid:(-1) ~a:s ~b:nshards ~x:0.;
        trace root ~kind:Obs.Sem.commit_send ~oid:(-1) ~a:(List.length lslice)
          ~b:(List.length quorum) ~x:(Float.of_int s);
        let send_epoch = exec.quorums.epoch ~shard:s in
        Sim.Rpc.multicall exec.rpc ~kind:Messages.commit_req_kind ~src:root.node
          ~dsts:quorum ~timeout:exec.config.request_timeout
          (Messages.Commit_req
             {
               txn = root.txn_id;
               dataset = slice;
               locks = lslice;
               round = root.commit_round;
               peers;
             })
          ~on_done:(fun ~replies ~missing ->
            if still_current root generation then begin
              if Obs.Tracer.enabled exec.tracer then
                List.iter
                  (fun (voter, reply) ->
                    match reply with
                    | Messages.Vote { commit; lock_conflict } ->
                      trace root ~kind:Obs.Sem.vote_recv ~oid:(-1) ~a:voter
                        ~b:
                          ((if commit then 1 else 0)
                          lor if lock_conflict then 2 else 0)
                        ~x:0.
                    | Messages.Read_ok _ | Messages.Read_abort _
                    | Messages.Sync_rep _ | Messages.Status_rep _ | Messages.Ack
                    | Messages.Batch_commit_rep _ ->
                      ())
                  replies;
              let contacted = part :: List.map fst prepared in
              if missing <> [] || exec.quorums.epoch ~shard:s <> send_epoch then begin
                release_parts contacted;
                retry ()
              end
              else begin
                let all_commit, any_lock_conflict =
                  List.fold_left
                    (fun (all, lock) (_, reply) ->
                      match reply with
                      | Messages.Vote { commit; lock_conflict } ->
                        (all && commit, lock || lock_conflict)
                      | Messages.Read_ok _ | Messages.Read_abort _
                      | Messages.Sync_rep _ | Messages.Status_rep _
                      | Messages.Ack | Messages.Batch_commit_rep _ ->
                        (false, lock))
                    (true, false) replies
                in
                if all_commit then prepare ((part, send_epoch) :: prepared) rest
                else begin
                  release_parts contacted;
                  let stale_witnesses =
                    List.filter_map
                      (fun (n, reply) ->
                        match reply with
                        | Messages.Vote { commit = false; lock_conflict = false }
                          ->
                          Some n
                        | Messages.Vote _ | Messages.Read_ok _
                        | Messages.Read_abort _ | Messages.Sync_rep _
                        | Messages.Status_rep _ | Messages.Ack
                        | Messages.Batch_commit_rep _ ->
                          None)
                      replies
                  in
                  widen_to_witnesses root stale_witnesses;
                  if any_lock_conflict && root.commit_lock_budget > 0 then begin
                    root.commit_lock_budget <- root.commit_lock_budget - 1;
                    schedule root
                      ~delay:(jittered exec.rng exec.config.ct_retry_delay)
                      (fun () -> send_commit_request root ~scope ~value)
                  end
                  else abort_2pc ()
                end
              end
            end)
    and decide prepared =
      if
        List.exists
          (fun ((s, _, _, _), e) -> exec.quorums.epoch ~shard:s <> e)
          prepared
      then begin
        (* A shard reconfigured after voting: its locked quorum need not
           intersect the new view's quorums — walk away and retry. *)
        release_parts (List.map fst prepared);
        retry ()
      end
      else if now root > root.lock_deadline then begin
        (* Votes complete but past the coordinator's lease horizon: some
           participant may already be presuming abort. *)
        Metrics.note_commit_deadline_abort exec.metrics;
        trace root ~kind:Obs.Sem.deadline_abort ~oid:(-1) ~a:(-1) ~b:(-1)
          ~x:root.lock_deadline;
        release_parts (List.map fst prepared);
        abort_2pc ()
      end
      else begin
        let writes = writes_of_wset scope.wset in
        let reads = reads_of_rset scope.rset in
        record_commit root ~scope ~window_start;
        (* The FULL write set goes to every participant quorum: each shard
           installs its own rows and retains the foreign ones as commit
           evidence, so cross-shard lease termination can rescue the
           decision from any surviving participant. *)
        let dsts =
          List.sort_uniq Int.compare
            (List.concat_map (fun ((_, quorum, _, _), _) -> quorum) prepared)
        in
        Sim.Rpc.acked_multicast exec.rpc ~kind:Messages.apply_kind ~src:root.node
          ~dsts ~timeout:exec.config.request_timeout
          (Messages.Apply { txn = root.txn_id; writes; reads });
        if exec.batch_commit then begin
          (* Keep the speculation machinery coherent: successors may have
             read this root's inputs from committed images. *)
          record_spec_outcome exec ~txn:root.txn_id ~committed:true;
          refresh_committed_images exec ~txn:root.txn_id ~wset:scope.wset
        end;
        Metrics.note_commit exec.metrics ~latency:(now root -. root.born);
        Metrics.note_cross_shard_commit exec.metrics;
        trace root ~kind:Obs.Sem.xshard_decide ~oid:(-1) ~a:1 ~b:nshards ~x:0.;
        trace root ~kind:Obs.Sem.txn_commit ~oid:(-1) ~a:(-1) ~b:0
          ~x:(now root -. root.born);
        finish root (Committed value)
      end
    in
    prepare [] parts
  end

and release_locks root ~quorum ~locks =
  (* At-least-once: a dropped Release would leave objects locked by a dead
     transaction forever.  The round stamp makes retransmission safe even
     when a quorum retry races it: a later round's Commit_req re-locks with
     a higher round, and replicas drop the then-stale Release (the root of
     a two-writers-one-version violation otherwise). *)
  if locks <> [] then
    Sim.Rpc.acked_multicast root.exec.rpc ~kind:Messages.release_kind ~src:root.node ~dsts:quorum
      ~timeout:root.exec.config.request_timeout
      (Messages.Release { txn = root.txn_id; oids = locks; round = root.commit_round })

and handle_votes root ~scope ~value ~shard ~quorum ~window_start ~send_epoch
    ~replies ~missing =
  let exec = root.exec in
  let locks = Rwset.oids scope.wset in
  if Obs.Tracer.enabled exec.tracer then
    List.iter
      (fun (voter, reply) ->
        match reply with
        | Messages.Vote { commit; lock_conflict } ->
          trace root ~kind:Obs.Sem.vote_recv ~oid:(-1) ~a:voter
            ~b:((if commit then 1 else 0) lor if lock_conflict then 2 else 0)
            ~x:0.
        | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Sync_rep _
        | Messages.Status_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
          ())
      replies;
  if missing <> [] || exec.quorums.epoch ~shard <> send_epoch then begin
    (* A write-quorum member failed mid-2PC, or a reconfiguration installed
       a new view while the votes were in flight (the answering quorum need
       not intersect current-view quorums): release whatever was locked and
       retry against refreshed quorums. *)
    release_locks root ~quorum ~locks;
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay) (fun () ->
        send_commit_request root ~scope ~value)
  end
  else begin
    let all_commit, any_lock_conflict =
      List.fold_left
        (fun (all, lock) (_, reply) ->
          match reply with
          | Messages.Vote { commit; lock_conflict } ->
            (all && commit, lock || lock_conflict)
          | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Sync_rep _ | Messages.Status_rep _
          | Messages.Ack | Messages.Batch_commit_rep _ ->
            (false, lock))
        (true, false) replies
    in
    if all_commit && now root > root.lock_deadline then begin
      (* The votes arrived past the coordinator's lease horizon: replicas
         may already be presuming abort, so committing now could race a
         conflicting writer.  Walk away — Release is harmless whether or
         not the leases already fell. *)
      Metrics.note_commit_deadline_abort exec.metrics;
      trace root ~kind:Obs.Sem.deadline_abort ~oid:(-1) ~a:(-1) ~b:(-1)
        ~x:root.lock_deadline;
      release_locks root ~quorum ~locks;
      root_abort root
    end
    else if all_commit then begin
      let writes = writes_of_wset scope.wset in
      let reads = reads_of_rset scope.rset in
      record_commit root ~scope ~window_start;
      (* At-least-once: losing an Apply at the read/write-quorum
         intersection node would let later reads miss this commit; Apply is
         version-guarded (idempotent), so retransmission is safe. *)
      Sim.Rpc.acked_multicast exec.rpc ~kind:Messages.apply_kind ~src:root.node ~dsts:quorum
        ~timeout:exec.config.request_timeout
        (Messages.Apply { txn = root.txn_id; writes; reads });
      Metrics.note_commit exec.metrics ~latency:(now root -. root.born);
      trace root ~kind:Obs.Sem.txn_commit ~oid:(-1) ~a:(-1) ~b:0
        ~x:(now root -. root.born);
      finish root (Committed value)
    end
    else begin
      release_locks root ~quorum ~locks;
      (* Stale vetoes (no lock conflict) witness versions the read quorum
         missed — see [extra_read_peers]. *)
      let stale_witnesses =
        List.filter_map
          (fun (n, reply) ->
            match reply with
            | Messages.Vote { commit = false; lock_conflict = false } -> Some n
            | Messages.Vote _ | Messages.Read_ok _ | Messages.Read_abort _
            | Messages.Sync_rep _ | Messages.Status_rep _ | Messages.Ack | Messages.Batch_commit_rep _ ->
              None)
          replies
      in
      widen_to_witnesses root stale_witnesses;
      if any_lock_conflict && root.commit_lock_budget > 0 then begin
        (* Ablation knob: a lock conflict may resolve as soon as the holder
           finishes its 2PC; optionally retry the commit before aborting. *)
        root.commit_lock_budget <- root.commit_lock_budget - 1;
        schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay) (fun () ->
            send_commit_request root ~scope ~value)
      end
      else root_abort root
    end
  end

and record_commit root ~scope ~window_start =
  match root.exec.oracle with
  | None -> ()
  | Some oracle ->
    let reads =
      List.map (fun (e : Rwset.entry) -> (e.oid, e.version)) (Rwset.entries scope.rset)
    in
    let read_bases_of_writes =
      List.filter_map
        (fun (e : Rwset.entry) ->
          if Rwset.mem scope.rset e.oid then None else Some (e.oid, e.version))
        (Rwset.entries scope.wset)
    in
    let writes =
      List.map (fun (e : Rwset.entry) -> (e.oid, e.version + 1)) (Rwset.entries scope.wset)
    in
    Oracle.note_commit oracle ~txn:root.txn_id ~decision:(now root) ~window_start
      ~reads:(reads @ read_bases_of_writes) ~writes

(* --- batch-commit mode (PROTOCOL.md §9) --------------------------------- *)

(* Queue the root for the next batch round.  Its write images are published
   immediately: queue order is commit order, so successors reading them
   speculate on exactly the state this entry will install if it commits. *)
and enqueue_commit root ~scope ~value ~shard =
  let exec = root.exec in
  (* Early queue validation: if the local image table already holds a newer
     version than an entry's base, a predecessor in queue order has
     overwritten this snapshot and the batch round is guaranteed to veto
     it.  Abort here — at memory speed, before taking a queue slot — so
     the doomed write images are never published for successors to read
     (one organic stale entry otherwise seeds a whole cascade of
     speculation aborts).  Racing siblings of a hot object thus resolve
     locally: one enqueues, the rest retry against its fresh image. *)
  let doomed = ref false in
  let check (e : Rwset.entry) =
    match Hashtbl.find_opt exec.images e.oid with
    | Some img when img.img_version > e.version && img.img_txn <> root.txn_id
      ->
      doomed := true
    | Some _ | None -> ()
  in
  Rwset.iter scope.rset check;
  Rwset.iter scope.wset check;
  if !doomed then root_abort root
  else begin
  let bq = batchq exec ~shard in
  Rwset.iter scope.wset (fun (e : Rwset.entry) ->
      set_image exec ~oid:e.oid ~txn:root.txn_id ~version:(e.version + 1)
        ~value:e.value);
  bq.bq_queue <-
    {
      p_root = root;
      p_scope = scope;
      p_value = value;
      p_txn = root.txn_id;
      p_generation = root.generation;
    }
    :: bq.bq_queue;
  bq.bq_len <- bq.bq_len + 1;
  if not bq.bq_inflight then begin
    if bq.bq_len >= exec.config.batch_size then cut_batch exec ~bq
    else schedule_cut exec ~bq ~delay:exec.config.batch_delay
  end
  end

(* Re-admit a live entry whose round failed to decide it (lock conflict).
   It must go to the queue's {e oldest} side, not the newest: readers of its
   images enqueued while the round was in flight are already in the queue,
   and batch order must decide the writer before its readers — prepending
   would invert that and spec-abort every dependent. *)
and requeue_commit root ~scope ~value ~bq =
  let exec = root.exec in
  Rwset.iter scope.wset (fun (e : Rwset.entry) ->
      set_image exec ~oid:e.oid ~txn:root.txn_id ~version:(e.version + 1)
        ~value:e.value);
  bq.bq_queue <-
    bq.bq_queue
    @ [
        {
          p_root = root;
          p_scope = scope;
          p_value = value;
          p_txn = root.txn_id;
          p_generation = root.generation;
        };
      ];
  bq.bq_len <- bq.bq_len + 1

and schedule_cut exec ~bq ~delay =
  if not bq.bq_cut_scheduled then begin
    bq.bq_cut_scheduled <- true;
    Sim.Engine.schedule exec.engine ~delay (fun () ->
        bq.bq_cut_scheduled <- false;
        if (not bq.bq_inflight) && bq.bq_queue <> [] then cut_batch exec ~bq)
  end

(* Cut the whole queue into one batch round.  Dead entries (their root was
   fail-stopped while queued) are dropped here, with their outcome recorded
   as aborted so speculative readers of their images fail fast. *)
and cut_batch exec ~bq =
  let entries =
    List.filter
      (fun p ->
        if still_current p.p_root p.p_generation then true
        else begin
          record_spec_outcome exec ~txn:p.p_txn ~committed:false;
          drop_images exec ~txn:p.p_txn ~wset:p.p_scope.wset;
          false
        end)
      (List.rev bq.bq_queue) (* oldest first = commit order *)
  in
  bq.bq_queue <- [];
  bq.bq_len <- 0;
  match entries with
  | [] -> ()
  | first :: _ -> begin
    (* The round is sent from the oldest entry's node: any member's quorum
       works (every entry is validated by the same voter set), and the
       multicall timeout is an engine event, so even that node's death
       cannot stall the decision. *)
    let src = first.p_root.node in
    match exec.quorums.write_quorum ~shard:bq.bq_shard ~node:src with
    | [] ->
      (* no write quorum constructible right now (wedged / too many
         failures): requeue everything and retry after a delay *)
      Metrics.note_quorum_retry exec.metrics;
      bq.bq_queue <- List.rev entries;
      bq.bq_len <- List.length entries;
      schedule_cut exec ~bq ~delay:(jittered exec.rng exec.config.request_timeout)
    | quorum ->
      let ea = Array.of_list entries in
      let n = Array.length ea in
      let quorum_size = List.length quorum in
      let batch_id = exec.batch_seq in
      exec.batch_seq <- batch_id + 1;
      let sent_at = Sim.Engine.now exec.engine in
      let txns = Array.make n 0 in
      let rounds = Array.make n 0 in
      let datasets = Array.make n Messages.empty_dataset in
      let writes_by_entry = Array.make n Messages.empty_writes in
      let reads_by_entry = Array.make n [||] in
      let locks_by_entry = Array.make n [] in
      for i = 0 to n - 1 do
        let p = ea.(i) in
        let root = p.p_root in
        let scope = p.p_scope in
        (* Per-entry commit-round stamping, as in send_commit_request: the
           replica pins granted leases to it, so a stale Release from an
           abandoned earlier round cannot free a later round's lock. *)
        root.commit_round <- root.commit_round + 1;
        txns.(i) <- root.txn_id;
        rounds.(i) <- root.commit_round;
        datasets.(i) <-
          commit_dataset exec ~scope_rset:scope.rset ~scope_wset:scope.wset;
        let locks = Rwset.oids scope.wset in
        locks_by_entry.(i) <- locks;
        root.lock_deadline <-
          (if exec.config.lease_duration > 0. && locks <> [] then
             sent_at +. exec.config.lease_duration -. exec.config.lease_safety_margin
           else Float.infinity);
        writes_by_entry.(i) <- writes_of_wset scope.wset;
        reads_by_entry.(i) <- reads_of_rset scope.rset;
        trace root ~kind:Obs.Sem.batch_entry ~oid:(-1) ~a:batch_id ~b:i ~x:0.;
        trace root ~kind:Obs.Sem.commit_send ~oid:(-1) ~a:(List.length locks)
          ~b:quorum_size ~x:(Float.of_int bq.bq_shard)
      done;
      let ds_offsets = Array.make (n + 1) 0 in
      let wr_offsets = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        ds_offsets.(i + 1) <- ds_offsets.(i) + Messages.dataset_len datasets.(i);
        wr_offsets.(i + 1) <- wr_offsets.(i) + Messages.writes_len writes_by_entry.(i)
      done;
      let dataset =
        if ds_offsets.(n) = 0 then Messages.empty_dataset
        else begin
          let d =
            {
              Messages.ds_oids = Array.make ds_offsets.(n) 0;
              ds_versions = Array.make ds_offsets.(n) 0;
              ds_owners = Array.make ds_offsets.(n) 0;
            }
          in
          for i = 0 to n - 1 do
            let s = datasets.(i) in
            let len = Messages.dataset_len s in
            Array.blit s.Messages.ds_oids 0 d.Messages.ds_oids ds_offsets.(i) len;
            Array.blit s.Messages.ds_versions 0 d.Messages.ds_versions
              ds_offsets.(i) len;
            Array.blit s.Messages.ds_owners 0 d.Messages.ds_owners ds_offsets.(i)
              len
          done;
          d
        end
      in
      let writes =
        if wr_offsets.(n) = 0 then Messages.empty_writes
        else begin
          let w =
            {
              Messages.wr_oids = Array.make wr_offsets.(n) 0;
              wr_versions = Array.make wr_offsets.(n) 0;
              wr_values = Array.make wr_offsets.(n) Store.Value.Unit;
            }
          in
          for i = 0 to n - 1 do
            let s = writes_by_entry.(i) in
            let len = Messages.writes_len s in
            Array.blit s.Messages.wr_oids 0 w.Messages.wr_oids wr_offsets.(i) len;
            Array.blit s.Messages.wr_versions 0 w.Messages.wr_versions
              wr_offsets.(i) len;
            Array.blit s.Messages.wr_values 0 w.Messages.wr_values wr_offsets.(i)
              len
          done;
          w
        end
      in
      let decided =
        match (bq.bq_last_commits, bq.bq_prev_commits) with
        | [], [] -> [||]
        | last, prev -> Array.of_list (last @ prev)
      in
      Metrics.note_batch exec.metrics ~occupancy:n;
      trace first.p_root ~kind:Obs.Sem.batch_send ~oid:(-1) ~a:n ~b:quorum_size
        ~x:(Float.of_int bq.bq_shard);
      let send_epoch = exec.quorums.epoch ~shard:bq.bq_shard in
      bq.bq_inflight <- true;
      Sim.Rpc.multicall exec.rpc ~kind:Messages.batch_commit_req_kind ~src
        ~dsts:quorum ~timeout:exec.config.request_timeout
        (Messages.Batch_commit_req
           { txns; rounds; ds_offsets; dataset; wr_offsets; writes; decided })
        ~on_done:(fun ~replies ~missing ->
          decide_batch exec ~bq ~entries:ea ~writes_by_entry ~reads_by_entry
            ~locks_by_entry ~quorum ~batch_id ~send_epoch ~sent_at ~replies
            ~missing)
  end

(* Decide every entry of a batch round, in queue order.  The multicall
   timeout is an engine event, so this runs even if the sending node died
   mid-round — each entry's own liveness is checked individually. *)
and decide_batch exec ~bq ~entries ~writes_by_entry ~reads_by_entry
    ~locks_by_entry ~quorum ~batch_id ~send_epoch ~sent_at ~replies ~missing =
  let n = Array.length entries in
  if missing <> [] || exec.quorums.epoch ~shard:bq.bq_shard <> send_epoch then begin
    (* A quorum member failed mid-round, or a reconfiguration installed a
       new view while the votes were in flight: nothing decided.  This is
       the epoch fence's "uncut tail" — the round is walked away from
       (Release per entry) and every live entry requeued in order for a
       fresh cut against refreshed quorums; batches decided earlier stand
       untouched. *)
    Metrics.note_quorum_retry exec.metrics;
    let requeued = ref [] in
    for i = 0 to n - 1 do
      let p = entries.(i) in
      if still_current p.p_root p.p_generation then begin
        release_locks p.p_root ~quorum ~locks:locks_by_entry.(i);
        requeued := p :: !requeued
      end
      else begin
        record_spec_outcome exec ~txn:p.p_txn ~committed:false;
        drop_images exec ~txn:p.p_txn ~wset:p.p_scope.wset
      end
    done;
    (* These entries are older than anything enqueued while the round was
       in flight: append them at the queue's tail (its oldest side). *)
    bq.bq_queue <- bq.bq_queue @ !requeued;
    bq.bq_len <- bq.bq_len + List.length !requeued;
    bq.bq_inflight <- false;
    if bq.bq_queue <> [] then
      schedule_cut exec ~bq ~delay:(jittered exec.rng exec.config.ct_retry_delay)
  end
  else begin
    let now_ = Sim.Engine.now exec.engine in
    let committed_now = ref [] in
    for i = 0 to n - 1 do
      let p = entries.(i) in
      let root = p.p_root in
      if not (still_current root p.p_generation) then begin
        (* The root was fail-stopped while the round was in flight.  No
           Release is sent on its behalf (a dead coordinator cannot speak);
           its leases expire and replica-side termination resolves them. *)
        record_spec_outcome exec ~txn:p.p_txn ~committed:false;
        drop_images exec ~txn:p.p_txn ~wset:p.p_scope.wset
      end
      else begin
        let scope = p.p_scope in
        let all_commit = ref true in
        let lock_conflict = ref false in
        List.iter
          (fun (voter, reply) ->
            match reply with
            | Messages.Batch_commit_rep { commits; conflicts } ->
              if not commits.(i) then all_commit := false;
              if conflicts.(i) then lock_conflict := true;
              if Obs.Tracer.enabled exec.tracer then
                trace root ~kind:Obs.Sem.vote_recv ~oid:(-1) ~a:voter
                  ~b:
                    ((if commits.(i) then 1 else 0)
                    lor if conflicts.(i) then 2 else 0)
                  ~x:0.
            | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
            | Messages.Sync_rep _ | Messages.Status_rep _ | Messages.Ack ->
              all_commit := false)
          replies;
        match dep_status exec root.spec_deps with
        | `Failed dep | `Undecided dep ->
          (* A predecessor this entry read from aborted (or was requeued
             past it — a batch-order violation): the entry read state that
             never committed and must retry, whatever the replicas voted. *)
          release_locks root ~quorum ~locks:locks_by_entry.(i);
          record_spec_outcome exec ~txn:root.txn_id ~committed:false;
          drop_images exec ~txn:root.txn_id ~wset:scope.wset;
          trace root ~kind:Obs.Sem.batch_decide ~oid:(-1) ~a:batch_id ~b:0 ~x:0.;
          speculation_abort root ~dep
        | `Ok ->
          if !all_commit && now_ <= root.lock_deadline then begin
            record_commit root ~scope ~window_start:sent_at;
            Sim.Rpc.acked_multicast exec.rpc ~kind:Messages.apply_kind
              ~src:root.node ~dsts:quorum ~timeout:exec.config.request_timeout
              (Messages.Apply
                 { txn = root.txn_id; writes = writes_by_entry.(i);
                   reads = reads_by_entry.(i) });
            Metrics.note_commit exec.metrics ~latency:(now_ -. root.born);
            trace root ~kind:Obs.Sem.txn_commit ~oid:(-1) ~a:(-1) ~b:0
              ~x:(now_ -. root.born);
            trace root ~kind:Obs.Sem.batch_decide ~oid:(-1) ~a:batch_id ~b:1
              ~x:0.;
            record_spec_outcome exec ~txn:root.txn_id ~committed:true;
            commit_images exec ~txn:root.txn_id ~wset:scope.wset;
            if locks_by_entry.(i) <> [] then
              committed_now := root.txn_id :: !committed_now;
            finish root (Committed p.p_value)
          end
          else if !all_commit then begin
            (* votes arrived past the coordinator's lease horizon *)
            Metrics.note_commit_deadline_abort exec.metrics;
            trace root ~kind:Obs.Sem.deadline_abort ~oid:(-1) ~a:(-1) ~b:(-1)
              ~x:root.lock_deadline;
            release_locks root ~quorum ~locks:locks_by_entry.(i);
            record_spec_outcome exec ~txn:root.txn_id ~committed:false;
            drop_images exec ~txn:root.txn_id ~wset:scope.wset;
            trace root ~kind:Obs.Sem.batch_decide ~oid:(-1) ~a:batch_id ~b:0
              ~x:0.;
            root_abort root
          end
          else begin
            release_locks root ~quorum ~locks:locks_by_entry.(i);
            let stale_witnesses =
              List.filter_map
                (fun (voter, reply) ->
                  match reply with
                  | Messages.Batch_commit_rep { commits; conflicts } ->
                    if (not commits.(i)) && not conflicts.(i) then Some voter
                    else None
                  | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Vote _
                  | Messages.Sync_rep _ | Messages.Status_rep _ | Messages.Ack ->
                    None)
                replies
            in
            widen_to_witnesses root stale_witnesses;
            if !lock_conflict && root.commit_lock_budget > 0 then begin
              (* The conflict may clear by the next round (e.g. a foreign
                 Apply still in flight): straight back into the queue, on
                 its oldest side so the entry still decides before any
                 reader of its images.  No outcome is recorded and the
                 images are republished — readers still legitimately
                 depend on this entry. *)
              root.commit_lock_budget <- root.commit_lock_budget - 1;
              requeue_commit root ~scope ~value:p.p_value ~bq
            end
            else begin
              record_spec_outcome exec ~txn:root.txn_id ~committed:false;
              drop_images exec ~txn:root.txn_id ~wset:scope.wset;
              trace root ~kind:Obs.Sem.batch_decide ~oid:(-1) ~a:batch_id ~b:0
                ~x:0.;
              root_abort root
            end
          end
      end
    done;
    bq.bq_prev_commits <- bq.bq_last_commits;
    bq.bq_last_commits <- !committed_now;
    bq.bq_inflight <- false;
    (* keep the pipeline full: anything queued while this round was in
       flight (or requeued on a lock conflict above) cuts immediately *)
    if bq.bq_queue <> [] then cut_batch exec ~bq
  end

and finish root outcome =
  if not root.finished then begin
    trace root ~kind:Obs.Sem.txn_end ~oid:(-1)
      ~a:(match outcome with Committed _ -> 1 | Failed _ -> 0)
      ~b:(-1) ~x:0.;
    root.finished <- true;
    root.generation <- root.generation + 1;
    root.on_done outcome
  end

and spawn_root t ~node ~program ~on_done =
  let id = t.next_active in
  t.next_active <- id + 1;
  (* The registry entry is dropped exactly when the root finishes
     normally; a kill drops it from the [kill_node] side instead. *)
  let on_done outcome =
    t.actives <- List.filter (fun a -> a.a_id <> id) t.actives;
    on_done outcome
  in
  let root =
    {
      exec = t;
      node;
      program;
      on_done;
      txn_id = 0;
      attempt = 0;
      born = Sim.Engine.now t.engine;
      scopes = [];
      checkpoints = [];
      next_chk = 1;
      since_chk = 0;
      last_validation_sent = Sim.Engine.now t.engine;
      lock_deadline = Float.infinity;
      extra_read_peers = [];
      spec_deps = [];
      commit_lock_budget = t.config.commit_lock_retries;
      commit_round = 0;
      compensations = [];
      steps = 0;
      generation = 0;
      finished = false;
    }
  in
  let handle =
    {
      a_id = id;
      a_node = node;
      a_txn = (fun () -> root.txn_id);
      a_kill =
        (fun () ->
          (* Fail-stop semantics: the coordinator's thread dies with its
             machine.  No outcome is delivered — in particular the root's
             client never resubmits — and any in-flight reply is dropped by
             the generation check. *)
          root.finished <- true;
          root.generation <- root.generation + 1);
    }
  in
  t.actives <- handle :: t.actives;
  start_attempt root

let kill_node t ~node =
  let mine, rest = List.partition (fun a -> a.a_node = node) t.actives in
  t.actives <- rest;
  List.iter (fun a -> a.a_kill ()) mine

let in_flight t = List.map (fun a -> (a.a_node, a.a_txn ())) t.actives

let run_root = spawn_root
