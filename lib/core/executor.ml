type quorums = {
  read_quorum : node:int -> int list;
  write_quorum : node:int -> int list;
  node_alive : int -> bool;
  epoch : unit -> int;
}

(* Handle on a live root, kept in a per-executor registry so a fail-stop of
   the hosting node can kill its coordinators (their threads die with the
   machine) and so diagnostics can list in-flight transactions. *)
type active = { a_id : int; a_node : int; a_txn : unit -> int; a_kill : unit -> unit }

type t = {
  engine : Sim.Engine.t;
  rpc : (Messages.request, Messages.reply) Sim.Rpc.t;
  quorums : quorums;
  config : Config.t;
  metrics : Metrics.t;
  oracle : Oracle.t option;
  ids : Ids.gen;
  rng : Util.Rng.t;
  tracer : Obs.Tracer.t; (* cached from the engine; Tracer.null when off *)
  (* Scratch data-set builder, reused by [full_dataset] / [commit_dataset]:
     rows are staged in the growable parallel arrays and frozen into a
     [Messages.dataset] (three [Array.sub]s) only when a request is built.
     An executor runs inside one simulation (one domain) and never builds
     two data-sets at once, so sharing the scratch across roots is safe. *)
  ds_slots : (int, int) Hashtbl.t; (* oid -> staged row; [full_dataset] dedup *)
  mutable ds_oids : int array;
  mutable ds_versions : int array;
  mutable ds_owners : int array;
  mutable ds_len : int;
  mutable actives : active list;
  mutable next_active : int;
}

let create ~engine ~rpc ~quorums ~config ~metrics ?oracle ~ids ~seed () =
  {
    engine;
    rpc;
    quorums;
    config;
    metrics;
    oracle;
    ids;
    rng = Util.Rng.create seed;
    tracer = Sim.Engine.tracer engine;
    ds_slots = Hashtbl.create 64;
    ds_oids = Array.make 64 0;
    ds_versions = Array.make 64 0;
    ds_owners = Array.make 64 0;
    ds_len = 0;
    actives = [];
    next_active = 0;
  }

let config t = t.config
let metrics t = t.metrics

type outcome = Committed of Txn.value | Failed of string

(* One closed-nesting scope.  The root transaction is the depth-0 scope;
   [cont] is the parent's continuation, absent for the root. *)
type scope = {
  depth : int;
  thunk : unit -> Txn.t;
  cont : (Txn.value -> Txn.t) option;
  mutable rset : Rwset.t;
  mutable wset : Rwset.t;
}

type checkpoint = {
  chk_id : int;
  resume : unit -> Txn.t;
  saved_rset : Rwset.t;
  saved_wset : Rwset.t;
}

type root = {
  exec : t;
  node : int;
  program : unit -> Txn.t;
  on_done : outcome -> unit;
  mutable txn_id : Ids.txn_id;
  mutable attempt : int;
  born : float;
  mutable scopes : scope list; (* innermost first; never empty while running *)
  mutable checkpoints : checkpoint list; (* newest first *)
  mutable next_chk : int;
  mutable since_chk : int;
  mutable last_validation_sent : float;
  mutable lock_deadline : float;
      (* the coordinator's own view of its lease horizon: past it, replicas
         may presume-abort its locks, so a commit decision is forbidden *)
  mutable extra_read_peers : int list;
      (* commit-time read repair: write-quorum members that vetoed a commit
         as stale (no lock conflict) hold newer versions than this root's
         read quorum served.  After a partition heal the read quorum can be
         consistently stale — quorums built under different membership
         views need not intersect — so re-reading the same quorum would
         veto forever.  Widening subsequent reads to include the witnesses
         adopts the newer version; the retried commit's Apply then repairs
         the stale members for every later transaction. *)
  mutable commit_lock_budget : int;
  mutable commit_round : int;
      (* monotone commit-round counter, stamped into Commit_req/Release so
         replicas can drop a stale Release retransmitted from an abandoned
         round after a later round re-locked (never reset: replicas compare
         rounds per transaction id, which is fresh per attempt) *)
  mutable compensations : (unit -> Txn.t) list; (* open nesting; newest first *)
  mutable steps : int; (* DSL steps this attempt; zombie guard *)
  mutable generation : int;
  mutable finished : bool;
}

let now root = Sim.Engine.now root.exec.engine

(* Transaction-lifecycle tracing.  Emission is attributed to the current
   attempt's transaction id (fresh per attempt); it draws no randomness and
   schedules nothing, so tracing never perturbs the run.  All slots are
   required ([-1] / [0.] for n/a): labelled optional arguments would box an
   option per supplied label even with the tracer disabled. *)
let trace root ~kind ~oid ~a ~b ~x =
  let tracer = root.exec.tracer in
  if Obs.Tracer.enabled tracer then
    Obs.Tracer.emit8 tracer ~time:(now root) ~kind ~node:root.node
      ~txn:root.txn_id ~oid ~a ~b ~x

let rqv_active exec =
  match exec.config.mode with
  | Config.Closed | Config.Checkpoint -> true
  | Config.Flat -> exec.config.rqv_for_flat

let current_scope root =
  match root.scopes with
  | scope :: _ -> scope
  | [] -> invalid_arg "Executor: no active scope"

(* The checkpoint id in effect: new entries are tagged with it. *)
let current_chk root =
  match root.checkpoints with [] -> 0 | chk :: _ -> chk.chk_id

let owner_tag root =
  match root.exec.config.mode with
  | Config.Flat -> 0
  | Config.Closed -> (current_scope root).depth
  | Config.Checkpoint -> current_chk root

(* Scratch data-set staging: append one row, growing the parallel arrays
   geometrically (they only ever grow; an executor outlives its roots). *)
let ds_push exec ~oid ~version ~owner =
  let i = exec.ds_len in
  if i = Array.length exec.ds_oids then begin
    let cap' = 2 * Array.length exec.ds_oids in
    let grow a =
      let b = Array.make cap' 0 in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    exec.ds_oids <- grow exec.ds_oids;
    exec.ds_versions <- grow exec.ds_versions;
    exec.ds_owners <- grow exec.ds_owners
  end;
  exec.ds_oids.(i) <- oid;
  exec.ds_versions.(i) <- version;
  exec.ds_owners.(i) <- owner;
  exec.ds_len <- i + 1;
  i

(* Freeze the staged rows into an immutable wire payload.  The copy is
   mandatory: the message is shared by reference with every delivery
   (including retransmissions), so the scratch cannot travel. *)
let ds_freeze exec =
  if exec.ds_len = 0 then Messages.empty_dataset
  else
    {
      Messages.ds_oids = Array.sub exec.ds_oids 0 exec.ds_len;
      ds_versions = Array.sub exec.ds_versions 0 exec.ds_len;
      ds_owners = Array.sub exec.ds_owners 0 exec.ds_len;
    }

(* Accumulated data-set across the scope chain, outermost owners winning on
   duplicate object ids (validation must name the ancestor-most owner). *)
(* Validation is order-independent ([Rqv.validate] minimises the owner tag
   over the whole set), so the staging order never shows through; reusing
   the scratch avoids the per-request table and per-entry allocations. *)
let full_dataset root =
  let exec = root.exec in
  Hashtbl.clear exec.ds_slots;
  exec.ds_len <- 0;
  let note (e : Rwset.entry) =
    match Hashtbl.find exec.ds_slots e.oid with
    | i ->
      if e.owner < exec.ds_owners.(i) then begin
        exec.ds_versions.(i) <- e.version;
        exec.ds_owners.(i) <- e.owner
      end
    | exception Not_found ->
      Hashtbl.add exec.ds_slots e.oid
        (ds_push exec ~oid:e.oid ~version:e.version ~owner:e.owner)
  in
  List.iter
    (fun scope ->
      Rwset.iter scope.rset note;
      Rwset.iter scope.wset note)
    root.scopes;
  ds_freeze exec

(* Commit-request data-set: the flat union of the final scope's sets with
   the write set winning on collision — what [Rwset.merge_into ~child:wset
   ~parent:rset] used to build, without materialising the merged map. *)
let commit_dataset exec ~(scope_rset : Rwset.t) ~(scope_wset : Rwset.t) =
  exec.ds_len <- 0;
  Rwset.iter scope_wset (fun (e : Rwset.entry) ->
      ignore (ds_push exec ~oid:e.oid ~version:e.version ~owner:e.owner));
  Rwset.iter scope_rset (fun (e : Rwset.entry) ->
      if not (Rwset.mem scope_wset e.oid) then
        ignore (ds_push exec ~oid:e.oid ~version:e.version ~owner:e.owner));
  ds_freeze exec

(* checkParent (Algorithm 2, line 2): wset shadows rset, inner scopes shadow
   outer ones. *)
let lookup_local root oid =
  let rec search = function
    | [] -> None
    | scope :: rest ->
      begin
        match Rwset.find scope.wset oid with
        | Some e -> Some e
        | None ->
          begin
            match Rwset.find scope.rset oid with
            | Some e -> Some e
            | None -> search rest
          end
      end
  in
  search root.scopes

let schedule root ~delay f =
  Sim.Engine.schedule root.exec.engine ~delay (fun () -> if not root.finished then f ())

(* A reply that raced with an abort (or with transaction completion) must be
   dropped: callers capture the generation at request time and test it. *)
let still_current root generation =
  (not root.finished) && root.generation = generation

let jittered rng base = base *. (0.5 +. Util.Rng.float rng 1.0)

let backoff_delay root =
  let cfg = root.exec.config in
  let exp = Stdlib.min root.attempt 8 in
  let base = cfg.backoff_base *. Float.of_int (1 lsl exp) in
  jittered root.exec.rng (Stdlib.min cfg.backoff_max base)

let fresh_scope ~depth ~thunk ~cont =
  { depth; thunk; cont; rset = Rwset.empty; wset = Rwset.empty }

let rec start_attempt root =
  root.txn_id <- Ids.fresh_txn root.exec.ids;
  root.scopes <- [ fresh_scope ~depth:0 ~thunk:root.program ~cont:None ];
  root.checkpoints <- [];
  root.next_chk <- 1;
  root.since_chk <- 0;
  root.last_validation_sent <- now root;
  root.lock_deadline <- Float.infinity;
  root.commit_lock_budget <- root.exec.config.commit_lock_retries;
  root.steps <- 0;
  root.generation <- root.generation + 1;
  trace root ~kind:Obs.Sem.txn_begin ~oid:(-1) ~a:(root.attempt + 1) ~b:(-1) ~x:0.;
  (* Widened-read witnesses survive across attempts, but each attempt runs
     under a fresh transaction id — re-announce them so per-transaction
     trace analyses (the widen-read checker rule) see the carried-over
     obligation. *)
  List.iter
    (fun witness ->
      trace root ~kind:Obs.Sem.widen_add ~oid:(-1) ~a:witness ~b:(-1) ~x:0.)
    root.extra_read_peers;
  step root (root.program ())

and step root prog =
  schedule root ~delay:root.exec.config.local_op_cost (fun () -> interpret root prog)

and interpret root prog =
  (* Zombie guard: a transaction that observed an inconsistent snapshot
     (possible under flat QR, which validates only at commit) may chase a
     pointer cycle through locally cached entries forever; cap the attempt
     and retry it against fresh state. *)
  root.steps <- root.steps + 1;
  if root.steps > root.exec.config.max_steps_per_attempt then root_abort root
  else interpret_op root prog

and interpret_op root prog =
  match prog with
  | Txn.Return v -> finish_scope root v
  | Txn.Fail msg -> finish root (Failed msg)
  | Txn.Read (oid, k) -> access root ~oid ~write:None ~k
  | Txn.Write (oid, v, k) -> access root ~oid ~write:(Some v) ~k:(fun _ -> k ())
  | Txn.Nested (body, cont) ->
    begin
      match root.exec.config.mode with
      | Config.Closed ->
        let parent = current_scope root in
        trace root ~kind:Obs.Sem.scope_push ~oid:(-1) ~a:(parent.depth + 1)
          ~b:(-1) ~x:0.;
        root.scopes <-
          fresh_scope ~depth:(parent.depth + 1) ~thunk:body ~cont:(Some cont)
          :: root.scopes;
        step root (body ())
      | Config.Flat | Config.Checkpoint -> step root (Txn.bind (body ()) cont)
    end
  | Txn.Checkpoint k ->
    begin
      match root.exec.config.mode with
      | Config.Checkpoint -> create_checkpoint root ~resume:k ~continue:(fun () -> step root (k ()))
      | Config.Flat | Config.Closed -> step root (k ())
    end
  | Txn.Open { body; compensate; k } ->
    (* Open nesting: run [body] as an independent transaction (fresh id,
       fresh sets, its own 2PC).  The parent is quiescent meanwhile — it
       has no requests in flight — so no generation guard is needed.  On
       commit, the compensation is registered for the parent's abort path
       and the parent resumes. *)
    let generation = root.generation in
    spawn_root root.exec ~node:root.node ~program:body ~on_done:(fun outcome ->
        if still_current root generation then begin
          match outcome with
          | Committed v ->
            Metrics.note_open_commit root.exec.metrics;
            root.compensations <- (fun () -> compensate v) :: root.compensations;
            step root (k v)
          | Failed msg -> finish root (Failed msg)
        end)

and access root ~oid ~write ~k =
  match lookup_local root oid with
  | Some entry ->
    Metrics.note_local_read root.exec.metrics;
    install_entry root ~oid ~base_version:entry.version
      ~read_value:entry.value ~write ~remote:false ~k
  | None -> remote_fetch root ~oid ~write ~k

and remote_fetch root ~oid ~write ~k =
  let exec = root.exec in
  let quorum = exec.quorums.read_quorum ~node:root.node in
  match quorum with
  | [] ->
    (* No read quorum constructible right now (too many failures); retry
       after a delay, by which time detection may have recovered one. *)
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.request_timeout) (fun () ->
        remote_fetch root ~oid ~write ~k)
  | _ ->
    let dataset =
      if rqv_active exec then full_dataset root else Messages.empty_dataset
    in
    let record = (current_scope root).depth = 0 in
    let request =
      Messages.Read_req
        { txn = root.txn_id; oid; dataset; write_intent = Option.is_some write; record }
    in
    let dsts =
      match root.extra_read_peers with
      | [] -> quorum
      | extra -> List.sort_uniq Int.compare (extra @ quorum)
    in
    if Obs.Tracer.enabled exec.tracer then
      List.iter
        (fun dst -> trace root ~kind:Obs.Sem.read_send ~oid ~a:dst ~b:(-1) ~x:0.)
        dsts;
    root.last_validation_sent <- now root;
    let generation = root.generation in
    Sim.Rpc.multicall exec.rpc ~kind:Messages.read_req_kind ~src:root.node ~dsts
      ~timeout:exec.config.request_timeout request
      ~on_done:(fun ~replies ~missing ->
        if still_current root generation then
          handle_read_replies root ~oid ~write ~k ~replies ~missing)

and handle_read_replies root ~oid ~write ~k ~replies ~missing =
  let exec = root.exec in
  if missing <> [] then begin
    (* A quorum member failed mid-request: retry with refreshed quorums.
       Drop widened-read witnesses that are missing AND dead — a dead
       witness can no longer veto a commit, and keeping it would leave
       every retry incomplete forever.  A witness that is merely
       unreachable (partition, flaky link) is kept: its newer version is
       exactly what the widening exists to fetch, so the read must keep
       trying until the fault clears. *)
    if root.extra_read_peers <> [] then begin
      let kept, pruned =
        List.partition
          (fun n -> (not (List.mem n missing)) || exec.quorums.node_alive n)
          root.extra_read_peers
      in
      List.iter
        (fun witness ->
          trace root ~kind:Obs.Sem.widen_drop ~oid:(-1) ~a:witness ~b:(-1) ~x:0.)
        pruned;
      root.extra_read_peers <- kept
    end;
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay) (fun () ->
        remote_fetch root ~oid ~write ~k)
  end
  else begin
    let abort_target =
      List.fold_left
        (fun acc (_, reply) ->
          match reply with
          | Messages.Read_abort { target } ->
            Some (match acc with None -> target | Some t -> Stdlib.min t target)
          | Messages.Read_ok _ | Messages.Vote _ | Messages.Sync_rep _ | Messages.Status_rep _
          | Messages.Ack ->
            acc)
        None replies
    in
    match abort_target with
    | Some target -> partial_abort root ~target
    | None ->
      begin
        let best =
          List.fold_left
            (fun acc (_, reply) ->
              match reply with
              | Messages.Read_ok { version; value; _ } ->
                begin
                  match acc with
                  | Some (v, _) when v >= version -> acc
                  | Some _ | None -> Some (version, value)
                end
              | Messages.Read_abort _ | Messages.Vote _ | Messages.Sync_rep _ | Messages.Status_rep _
              | Messages.Ack ->
                acc)
            None replies
        in
        match best with
        | None ->
          (* Only malformed replies; treat as a failed quorum round. *)
          Metrics.note_quorum_retry exec.metrics;
          schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay)
            (fun () -> remote_fetch root ~oid ~write ~k)
        | Some (version, value) ->
          Metrics.note_remote_read exec.metrics;
          install_entry root ~oid ~base_version:version ~read_value:value ~write
            ~remote:true ~k
      end
  end

and install_entry root ~oid ~base_version ~read_value ~write ~remote ~k =
  let scope = current_scope root in
  let owner = owner_tag root in
  begin
    match write with
    | Some value ->
      trace root ~kind:Obs.Sem.txn_write ~oid ~a:(-1) ~b:(-1) ~x:0.;
      scope.wset <- Rwset.add scope.wset { oid; version = base_version; value; owner }
    | None ->
      trace root ~kind:Obs.Sem.txn_read ~oid ~a:base_version
        ~b:(if remote then 1 else 0)
        ~x:0.;
      (* A locally visible object is not re-added: its entry (and owner)
         stays with the scope that fetched it. *)
      if remote then
        scope.rset <-
          Rwset.add scope.rset { oid; version = base_version; value = read_value; owner }
  end;
  let continue () = step root (k read_value) in
  if remote && root.exec.config.mode = Config.Checkpoint then begin
    root.since_chk <- root.since_chk + 1;
    if root.since_chk >= root.exec.config.checkpoint_threshold then
      create_checkpoint root ~resume:(fun () -> k read_value) ~continue
    else continue ()
  end
  else continue ()

and create_checkpoint root ~resume ~continue =
  let scope = current_scope root in
  trace root ~kind:Obs.Sem.txn_checkpoint ~oid:(-1) ~a:root.next_chk ~b:(-1)
    ~x:0.;
  root.checkpoints <-
    {
      chk_id = root.next_chk;
      resume;
      saved_rset = scope.rset;
      saved_wset = scope.wset;
    }
    :: root.checkpoints;
  root.next_chk <- root.next_chk + 1;
  root.since_chk <- 0;
  Metrics.note_checkpoint root.exec.metrics;
  (* Saving the continuation costs local time (the paper measured ~6%). *)
  schedule root ~delay:root.exec.config.checkpoint_overhead continue

and partial_abort root ~target =
  root.generation <- root.generation + 1;
  trace root ~kind:Obs.Sem.txn_partial_abort ~oid:(-1) ~a:target ~b:(-1) ~x:0.;
  match root.exec.config.mode with
  | Config.Flat -> root_abort root
  | Config.Closed ->
    if target <= 0 then root_abort root
    else begin
      (* Unwind to the scope named by abortClosed and retry it. *)
      let rec unwind = function
        | scope :: rest when scope.depth > target -> unwind rest
        | scopes -> scopes
      in
      begin
        match unwind root.scopes with
        | scope :: _ as scopes when scope.depth = target ->
          scope.rset <- Rwset.empty;
          scope.wset <- Rwset.empty;
          root.scopes <- scopes;
          Metrics.note_partial_abort root.exec.metrics;
          (* [a] reports the depth actually restored, not the requested
             target — the checker verifies they coincide. *)
          trace root ~kind:Obs.Sem.scope_resume ~oid:(-1) ~a:scope.depth ~b:(-1)
            ~x:0.;
          schedule root
            ~delay:(jittered root.exec.rng root.exec.config.ct_retry_delay)
            (fun () -> step root (scope.thunk ()))
        | _ ->
          (* The scope no longer exists (stale abort target): safe fallback. *)
          root_abort root
      end
    end
  | Config.Checkpoint ->
    if target <= 0 then root_abort root
    else begin
      let rec find_chk = function
        | [] -> None
        | chk :: rest ->
          if chk.chk_id = target then Some (chk, chk :: rest)
          else if chk.chk_id < target then None
          else find_chk rest
      in
      match find_chk root.checkpoints with
      | None -> root_abort root
      | Some (chk, kept) ->
        let scope = current_scope root in
        scope.rset <- chk.saved_rset;
        scope.wset <- chk.saved_wset;
        root.checkpoints <- kept;
        root.since_chk <- 0;
        Metrics.note_partial_abort root.exec.metrics;
        trace root ~kind:Obs.Sem.scope_resume ~oid:(-1) ~a:chk.chk_id ~b:(-1) ~x:0.;
        schedule root
          ~delay:(jittered root.exec.rng root.exec.config.ct_retry_delay)
          (fun () -> step root (chk.resume ()))
    end

and root_abort root =
  root.generation <- root.generation + 1;
  Metrics.note_root_abort root.exec.metrics;
  trace root ~kind:Obs.Sem.txn_root_abort ~oid:(-1) ~a:(root.attempt + 1)
    ~b:(-1) ~x:0.;
  root.attempt <- root.attempt + 1;
  let cfg = root.exec.config in
  if cfg.max_attempts > 0 && root.attempt >= cfg.max_attempts then
    finish root (Failed "max attempts exceeded")
  else begin
    (* Open nesting: semantically undo globally visible sub-commits
       (newest first) before re-running the root from scratch. *)
    let compensations = root.compensations in
    root.compensations <- [];
    run_compensations root compensations (fun () ->
        schedule root ~delay:(backoff_delay root) (fun () -> start_attempt root))
  end

and run_compensations root compensations k =
  match compensations with
  | [] -> k ()
  | compensate :: rest ->
    Metrics.note_compensation root.exec.metrics;
    spawn_root root.exec ~node:root.node ~program:compensate ~on_done:(fun outcome ->
        match outcome with
        | Committed _ -> run_compensations root rest k
        | Failed msg -> finish root (Failed ("compensation failed: " ^ msg)))

and finish_scope root value =
  match root.scopes with
  | [] -> invalid_arg "Executor: Return with no scope"
  | [ scope ] -> root_commit root ~scope ~value
  | child :: (parent :: _ as rest) ->
    trace root ~kind:Obs.Sem.scope_pop ~oid:(-1) ~a:child.depth ~b:(-1) ~x:0.;
    (* commitCT (Algorithm 3): merge into the parent, locally.  Merged
       entries are retagged with the parent's depth: a later invalidation
       must abort the parent, the child's commit having been absorbed. *)
    parent.rset <-
      Rwset.merge_into ~child:(Rwset.retag child.rset ~owner:parent.depth)
        ~parent:parent.rset;
    parent.wset <-
      Rwset.merge_into ~child:(Rwset.retag child.wset ~owner:parent.depth)
        ~parent:parent.wset;
    root.scopes <- rest;
    Metrics.note_ct_commit root.exec.metrics;
    begin
      match child.cont with
      | Some cont -> step root (cont value)
      | None -> invalid_arg "Executor: child scope without continuation"
    end

and root_commit root ~scope ~value =
  let exec = root.exec in
  let read_only = Rwset.is_empty scope.wset in
  (* Only QR-CN commits read-only roots locally (paper §III-A); QR-CHK's
     request-commit is "exactly the same as flat" (§IV-A), so it pays the
     full 2PC round even when read-only. *)
  let local_ro_commit =
    match exec.config.mode with
    | Config.Closed -> true
    | Config.Flat -> exec.config.rqv_for_flat
    | Config.Checkpoint -> false
  in
  if read_only && local_ro_commit then begin
    (* Rqv keeps the read-set continuously validated: read-only roots (and
       all closed-nested transactions) commit without remote messages. *)
    record_commit root ~scope ~window_start:root.last_validation_sent;
    Metrics.note_read_only_commit exec.metrics ~latency:(now root -. root.born);
    trace root ~kind:Obs.Sem.txn_commit ~oid:(-1) ~a:(-1) ~b:1
      ~x:(now root -. root.born);
    finish root (Committed value)
  end
  else send_commit_request root ~scope ~value

and send_commit_request root ~scope ~value =
  let exec = root.exec in
  let quorum = exec.quorums.write_quorum ~node:root.node in
  match quorum with
  | [] ->
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.request_timeout) (fun () ->
        send_commit_request root ~scope ~value)
  | _ ->
    let dataset =
      commit_dataset exec ~scope_rset:scope.rset ~scope_wset:scope.wset
    in
    let locks = Rwset.oids scope.wset in
    trace root ~kind:Obs.Sem.commit_send ~oid:(-1) ~a:(List.length locks)
      ~b:(List.length quorum) ~x:0.;
    let window_start = now root in
    (* Conservative lease horizon: leases are stamped at replica receipt
       (later than this send), so deciding commit before [lock_deadline]
       guarantees no replica has presumed-abort'd the locks yet. *)
    root.lock_deadline <-
      (if exec.config.lease_duration > 0. && locks <> [] then
         window_start +. exec.config.lease_duration -. exec.config.lease_safety_margin
       else Float.infinity);
    let generation = root.generation in
    let send_epoch = exec.quorums.epoch () in
    root.commit_round <- root.commit_round + 1;
    Sim.Rpc.multicall exec.rpc ~kind:Messages.commit_req_kind ~src:root.node ~dsts:quorum
      ~timeout:exec.config.request_timeout
      (Messages.Commit_req { txn = root.txn_id; dataset; locks; round = root.commit_round })
      ~on_done:(fun ~replies ~missing ->
        if still_current root generation then
          handle_votes root ~scope ~value ~quorum ~window_start ~send_epoch ~replies
            ~missing)

and release_locks root ~quorum ~locks =
  (* At-least-once: a dropped Release would leave objects locked by a dead
     transaction forever.  The round stamp makes retransmission safe even
     when a quorum retry races it: a later round's Commit_req re-locks with
     a higher round, and replicas drop the then-stale Release (the root of
     a two-writers-one-version violation otherwise). *)
  if locks <> [] then
    Sim.Rpc.acked_multicast root.exec.rpc ~kind:Messages.release_kind ~src:root.node ~dsts:quorum
      ~timeout:root.exec.config.request_timeout
      (Messages.Release { txn = root.txn_id; oids = locks; round = root.commit_round })

and handle_votes root ~scope ~value ~quorum ~window_start ~send_epoch ~replies ~missing
    =
  let exec = root.exec in
  let locks = Rwset.oids scope.wset in
  if Obs.Tracer.enabled exec.tracer then
    List.iter
      (fun (voter, reply) ->
        match reply with
        | Messages.Vote { commit; lock_conflict } ->
          trace root ~kind:Obs.Sem.vote_recv ~oid:(-1) ~a:voter
            ~b:((if commit then 1 else 0) lor if lock_conflict then 2 else 0)
            ~x:0.
        | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Sync_rep _
        | Messages.Status_rep _ | Messages.Ack ->
          ())
      replies;
  if missing <> [] || exec.quorums.epoch () <> send_epoch then begin
    (* A write-quorum member failed mid-2PC, or a reconfiguration installed
       a new view while the votes were in flight (the answering quorum need
       not intersect current-view quorums): release whatever was locked and
       retry against refreshed quorums. *)
    release_locks root ~quorum ~locks;
    Metrics.note_quorum_retry exec.metrics;
    schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay) (fun () ->
        send_commit_request root ~scope ~value)
  end
  else begin
    let all_commit, any_lock_conflict =
      List.fold_left
        (fun (all, lock) (_, reply) ->
          match reply with
          | Messages.Vote { commit; lock_conflict } ->
            (all && commit, lock || lock_conflict)
          | Messages.Read_ok _ | Messages.Read_abort _ | Messages.Sync_rep _ | Messages.Status_rep _
          | Messages.Ack ->
            (false, lock))
        (true, false) replies
    in
    if all_commit && now root > root.lock_deadline then begin
      (* The votes arrived past the coordinator's lease horizon: replicas
         may already be presuming abort, so committing now could race a
         conflicting writer.  Walk away — Release is harmless whether or
         not the leases already fell. *)
      Metrics.note_commit_deadline_abort exec.metrics;
      trace root ~kind:Obs.Sem.deadline_abort ~oid:(-1) ~a:(-1) ~b:(-1)
        ~x:root.lock_deadline;
      release_locks root ~quorum ~locks;
      root_abort root
    end
    else if all_commit then begin
      let writes =
        let n = Rwset.size scope.wset in
        if n = 0 then Messages.empty_writes
        else begin
          let w =
            {
              Messages.wr_oids = Array.make n 0;
              wr_versions = Array.make n 0;
              wr_values = Array.make n Store.Value.Unit;
            }
          in
          let i = ref 0 in
          Rwset.iter scope.wset (fun (e : Rwset.entry) ->
              w.Messages.wr_oids.(!i) <- e.oid;
              w.Messages.wr_versions.(!i) <- e.version + 1;
              w.Messages.wr_values.(!i) <- e.value;
              incr i);
          w
        end
      in
      let reads =
        let n = Rwset.size scope.rset in
        let a = Array.make n 0 in
        let i = ref 0 in
        Rwset.iter scope.rset (fun (e : Rwset.entry) ->
            a.(!i) <- e.oid;
            incr i);
        a
      in
      record_commit root ~scope ~window_start;
      (* At-least-once: losing an Apply at the read/write-quorum
         intersection node would let later reads miss this commit; Apply is
         version-guarded (idempotent), so retransmission is safe. *)
      Sim.Rpc.acked_multicast exec.rpc ~kind:Messages.apply_kind ~src:root.node ~dsts:quorum
        ~timeout:exec.config.request_timeout
        (Messages.Apply { txn = root.txn_id; writes; reads });
      Metrics.note_commit exec.metrics ~latency:(now root -. root.born);
      trace root ~kind:Obs.Sem.txn_commit ~oid:(-1) ~a:(-1) ~b:0
        ~x:(now root -. root.born);
      finish root (Committed value)
    end
    else begin
      release_locks root ~quorum ~locks;
      (* Stale vetoes (no lock conflict) witness versions the read quorum
         missed — see [extra_read_peers]. *)
      let stale_witnesses =
        List.filter_map
          (fun (n, reply) ->
            match reply with
            | Messages.Vote { commit = false; lock_conflict = false } -> Some n
            | Messages.Vote _ | Messages.Read_ok _ | Messages.Read_abort _
            | Messages.Sync_rep _ | Messages.Status_rep _ | Messages.Ack ->
              None)
          replies
      in
      if stale_witnesses <> [] then begin
        Metrics.note_read_widening exec.metrics;
        List.iter
          (fun witness ->
            if not (List.mem witness root.extra_read_peers) then
              trace root ~kind:Obs.Sem.widen_add ~oid:(-1) ~a:witness ~b:(-1) ~x:0.)
          (List.sort_uniq Int.compare stale_witnesses);
        root.extra_read_peers <-
          List.sort_uniq Int.compare (stale_witnesses @ root.extra_read_peers)
      end;
      if any_lock_conflict && root.commit_lock_budget > 0 then begin
        (* Ablation knob: a lock conflict may resolve as soon as the holder
           finishes its 2PC; optionally retry the commit before aborting. *)
        root.commit_lock_budget <- root.commit_lock_budget - 1;
        schedule root ~delay:(jittered exec.rng exec.config.ct_retry_delay) (fun () ->
            send_commit_request root ~scope ~value)
      end
      else root_abort root
    end
  end

and record_commit root ~scope ~window_start =
  match root.exec.oracle with
  | None -> ()
  | Some oracle ->
    let reads =
      List.map (fun (e : Rwset.entry) -> (e.oid, e.version)) (Rwset.entries scope.rset)
    in
    let read_bases_of_writes =
      List.filter_map
        (fun (e : Rwset.entry) ->
          if Rwset.mem scope.rset e.oid then None else Some (e.oid, e.version))
        (Rwset.entries scope.wset)
    in
    let writes =
      List.map (fun (e : Rwset.entry) -> (e.oid, e.version + 1)) (Rwset.entries scope.wset)
    in
    Oracle.note_commit oracle ~txn:root.txn_id ~decision:(now root) ~window_start
      ~reads:(reads @ read_bases_of_writes) ~writes

and finish root outcome =
  if not root.finished then begin
    trace root ~kind:Obs.Sem.txn_end ~oid:(-1)
      ~a:(match outcome with Committed _ -> 1 | Failed _ -> 0)
      ~b:(-1) ~x:0.;
    root.finished <- true;
    root.generation <- root.generation + 1;
    root.on_done outcome
  end

and spawn_root t ~node ~program ~on_done =
  let id = t.next_active in
  t.next_active <- id + 1;
  (* The registry entry is dropped exactly when the root finishes
     normally; a kill drops it from the [kill_node] side instead. *)
  let on_done outcome =
    t.actives <- List.filter (fun a -> a.a_id <> id) t.actives;
    on_done outcome
  in
  let root =
    {
      exec = t;
      node;
      program;
      on_done;
      txn_id = 0;
      attempt = 0;
      born = Sim.Engine.now t.engine;
      scopes = [];
      checkpoints = [];
      next_chk = 1;
      since_chk = 0;
      last_validation_sent = Sim.Engine.now t.engine;
      lock_deadline = Float.infinity;
      extra_read_peers = [];
      commit_lock_budget = t.config.commit_lock_retries;
      commit_round = 0;
      compensations = [];
      steps = 0;
      generation = 0;
      finished = false;
    }
  in
  let handle =
    {
      a_id = id;
      a_node = node;
      a_txn = (fun () -> root.txn_id);
      a_kill =
        (fun () ->
          (* Fail-stop semantics: the coordinator's thread dies with its
             machine.  No outcome is delivered — in particular the root's
             client never resubmits — and any in-flight reply is dropped by
             the generation check. *)
          root.finished <- true;
          root.generation <- root.generation + 1);
    }
  in
  t.actives <- handle :: t.actives;
  start_attempt root

let kill_node t ~node =
  let mine, rest = List.partition (fun a -> a.a_node = node) t.actives in
  t.actives <- rest;
  List.iter (fun a -> a.a_kill ()) mine

let in_flight t = List.map (fun a -> (a.a_node, a.a_txn ())) t.actives

let run_root = spawn_root
