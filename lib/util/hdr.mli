(** HDR-style log-bucketed histogram: percentiles in constant memory.

    {!Stats} keeps every sample to answer percentile queries exactly; at
    open-loop scale (millions of latency samples) that is O(n) memory.
    [Hdr] trades exactness for a fixed relative error: values land in
    geometric buckets sized so any quoted quantile is within [rel_error]
    of the true sample value, using one bounded int array regardless of
    sample count.  Recording allocates nothing.

    Deterministic: same sample sequence, same answers — queries return
    bucket midpoints (clamped to the observed min/max), not interpolations
    over stored samples. *)

type t

val create : ?lo:float -> ?hi:float -> ?rel_error:float -> unit -> t
(** Buckets cover [[lo], [hi]] geometrically (defaults 1e-3..1e9, i.e.
    microsecond-to-11-days in ms units) at relative error [rel_error]
    (default 1%, ≈ 1160 buckets).  Values outside clamp to the edge
    buckets; exact min/max are tracked separately.  Raises
    [Invalid_argument] on a degenerate range or error bound. *)

val add : t -> float -> unit
(** Record one sample (NaN/negative clamp to 0). Allocation-free. *)

val count : t -> int
val total : t -> float
val mean : t -> float

val min_value : t -> float
(** Exact smallest recorded sample (0. when empty). *)

val max_value : t -> float
(** Exact largest recorded sample (0. when empty). *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100]: the representative value of the
    bucket holding the rank-⌈p/100·n⌉ sample, clamped to the observed
    extremes; [p <= 0] answers the exact min, [p >= 100] the exact max.
    0. when empty. *)

val reset : t -> unit
(** Zero every bucket and the aggregates; keeps the layout. *)

val merge : into:t -> t -> unit
(** Accumulate [src]'s buckets into [into].  Raises [Invalid_argument]
    when the layouts (range, error bound) differ. *)
