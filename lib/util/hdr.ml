(* HDR-style log-bucketed histogram: geometric buckets at a fixed relative
   error, so p50/p95/p99 over millions of samples cost one bounded int
   array instead of the sample list [Stats] keeps.  Recording is two array
   reads, a log, and an increment — no allocation — and queries walk the
   (small, fixed) bucket array. *)

type t = {
  lo : float; (* lower edge of bucket 0; values below clamp into it *)
  inv_log_base : float; (* 1 / log base, hoisted out of the hot path *)
  log_lo : float;
  base : float;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(lo = 1e-3) ?(hi = 1e9) ?(rel_error = 0.01) () =
  if not (lo > 0. && hi > lo) then invalid_arg "Hdr.create: need 0 < lo < hi";
  if not (rel_error > 0. && rel_error < 1.) then
    invalid_arg "Hdr.create: rel_error in (0,1)";
  (* A bucket spanning [v, v*base] quoted at its geometric midpoint is off
     by at most sqrt(base) - 1 ≈ rel_error when base = (1 + rel_error)^2. *)
  let base = (1. +. rel_error) ** 2. in
  let n = 1 + int_of_float (ceil (log (hi /. lo) /. log base)) in
  {
    lo;
    base;
    inv_log_base = 1. /. log base;
    log_lo = log lo;
    buckets = Array.make n 0;
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let bucket_of t v =
  if v <= t.lo then 0
  else
    let i = int_of_float ((log v -. t.log_lo) *. t.inv_log_base) in
    if i >= Array.length t.buckets then Array.length t.buckets - 1 else i

(* Geometric midpoint — the representative value a bucket answers with. *)
let value_of t i = t.lo *. (t.base ** (float_of_int i +. 0.5))

let add t v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  t.buckets.(bucket_of t v) <- t.buckets.(bucket_of t v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let total t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0. else t.vmin
let max_value t = if t.count = 0 then 0. else t.vmax

let percentile t p =
  if t.count = 0 then 0.
  else if p <= 0. then t.vmin
  else if p >= 100. then t.vmax
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let acc = ref 0 and i = ref 0 and res = ref t.vmax in
    (try
       while !i < Array.length t.buckets do
         acc := !acc + t.buckets.(!i);
         if !acc >= rank then begin
           (* Clamp the bucket midpoint to the observed extremes so sparse
              histograms never answer outside [min, max]. *)
           res := Float.min t.vmax (Float.max t.vmin (value_of t !i));
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    !res
  end

let reset t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.count <- 0;
  t.sum <- 0.;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

let merge ~into src =
  if
    into.lo <> src.lo || into.base <> src.base
    || Array.length into.buckets <> Array.length src.buckets
  then invalid_arg "Hdr.merge: incompatible layouts";
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax
