module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  type t = { mutable data : Elt.t array; mutable size : int }

  let create () = { data = [||]; size = 0 }
  let length h = h.size
  let is_empty h = h.size = 0

  let grow h x =
    let capacity = Array.length h.data in
    if h.size = capacity then begin
      let capacity' = if capacity = 0 then 16 else capacity * 2 in
      let data' = Array.make capacity' x in
      Array.blit h.data 0 data' 0 h.size;
      h.data <- data'
    end

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if Elt.compare h.data.(i) h.data.(parent) < 0 then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < h.size && Elt.compare h.data.(left) h.data.(!smallest) < 0 then
      smallest := left;
    if right < h.size && Elt.compare h.data.(right) h.data.(!smallest) < 0 then
      smallest := right;
    if !smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(!smallest);
      h.data.(!smallest) <- tmp;
      sift_down h !smallest
    end

  let add h x =
    grow h x;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let min_elt h = if h.size = 0 then None else Some h.data.(0)

  let unsafe_top h = h.data.(0)

  let unsafe_pop h =
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    top

  let pop h = if h.size = 0 then None else Some (unsafe_pop h)

  let clear h =
    h.data <- [||];
    h.size <- 0

  let to_sorted_list h =
    let copy = { data = Array.sub h.data 0 h.size; size = h.size } in
    let rec drain acc =
      match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
    in
    drain []
end
