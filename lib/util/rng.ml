type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 mixing function (Steele, Lea, Flood; JDK SplittableRandom). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 rng =
  rng.state <- Int64.add rng.state golden_gamma;
  mix64 rng.state

let split rng = { state = int64 rng }

let int rng bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (int64 rng) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float rng bound =
  let raw = Int64.to_float (Int64.shift_right_logical (int64 rng) 11) in
  bound *. (raw /. 9007199254740992.0)

let bool rng = Int64.logand (int64 rng) 1L = 1L

let chance rng p =
  if p <= 0. then false else if p >= 1. then true else float rng 1.0 < p

let exponential rng ~mean =
  let u = Stdlib.max 1e-12 (float rng 1.0) in
  -.mean *. log u

let pick rng arr =
  assert (Array.length arr > 0);
  arr.(int rng (Array.length arr))

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Inverse-CDF Zipf by bisection over the cumulative weights.  n is small in
   our workloads (<= tens of thousands) so we precompute lazily per call
   bound; callers that care cache the result via partial application is not
   possible with mutable rng, so we memoise on (n, skew).

   The memo table is the one piece of module-level mutable state in the
   whole library, so it lives in domain-local storage: each domain of the
   parallel harness keeps its own table and there is no cross-domain
   sharing (and no locking on this per-draw path).  The cached array is a
   pure function of (n, skew), so every domain computes identical values —
   determinism is unaffected. *)
let zipf_tables : (int * float, float array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 7)

let zipf_cdf n skew =
  let tables = Domain.DLS.get zipf_tables in
  match Hashtbl.find_opt tables (n, skew) with
  | Some cdf -> cdf
  | None ->
    let weights = Array.init n (fun i -> 1.0 /. ((Float.of_int (i + 1)) ** skew)) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let acc = ref 0.0 in
    let cdf =
      Array.map
        (fun w ->
          acc := !acc +. (w /. total);
          !acc)
        weights
    in
    Hashtbl.replace tables (n, skew) cdf;
    cdf

let zipf rng ~n ~skew =
  assert (n > 0);
  if skew <= 0. then int rng n
  else begin
    let cdf = zipf_cdf n skew in
    let u = float rng 1.0 in
    let rec bisect lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
      end
    in
    bisect 0 (n - 1)
  end
