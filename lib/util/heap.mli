(** Binary min-heaps.

    A functorial, array-based binary min-heap used as the event queue of the
    discrete-event simulator and as a utility container elsewhere.  All
    operations are purely sequential; the simulator owns a single heap. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t
  (** Mutable min-heap of [Elt.t] values. *)

  val create : unit -> t
  (** [create ()] is a fresh empty heap. *)

  val length : t -> int
  (** Number of elements currently stored. *)

  val is_empty : t -> bool

  val add : t -> Elt.t -> unit
  (** [add h x] inserts [x]. Amortised O(log n). *)

  val min_elt : t -> Elt.t option
  (** Smallest element, without removing it. *)

  val pop : t -> Elt.t option
  (** Remove and return the smallest element. O(log n). *)

  val unsafe_top : t -> Elt.t
  (** Smallest element without an option allocation.  The heap must be
      non-empty (guard with {!is_empty}); undefined otherwise. *)

  val unsafe_pop : t -> Elt.t
  (** Remove and return the smallest element without an option allocation.
      The heap must be non-empty (guard with {!is_empty}). *)

  val clear : t -> unit
  (** Remove every element. *)

  val to_sorted_list : t -> Elt.t list
  (** Non-destructive ascending enumeration (O(n log n), for tests). *)
end
