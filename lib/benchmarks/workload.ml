type params = {
  objects : int;
  calls : int;
  read_ratio : float;
  key_skew : float;
  cross_shard_prob : float;
  shard_skew : float;
}

let default_params =
  {
    objects = 64;
    calls = 3;
    read_ratio = 0.5;
    key_skew = 0.6;
    cross_shard_prob = 0.;
    shard_skew = 0.;
  }

type instance = {
  generate : Util.Rng.t -> unit -> Core.Txn.t;
  check : unit -> (unit, string) result;
}

type benchmark = { name : string; setup : Core.Cluster.t -> params -> instance }

let pick_key rng params = Util.Rng.zipf rng ~n:params.objects ~skew:params.key_skew

(* Benchmarks draw from this ONLY on the cross-shard branch (guarded by
   [cross_shard_prob > 0.] and a passed [chance] draw), so unsharded runs
   consume the exact same random sequence as before the knob existed. *)
let pick_shard rng params ~shards = Util.Rng.zipf rng ~n:shards ~skew:params.shard_skew

(* Invariants are evaluated over the membership view at verdict time:
   a decommissioned node's copies are no longer part of the replicated
   object (and may be arbitrarily stale), so counting them — or treating
   their absence as missing copies — would misjudge a cluster that
   reconfigured mid-run. *)
let latest_value cluster ~oid =
  let best = ref (-1, Store.Value.Unit) in
  List.iter
    (fun node ->
      let store = Core.Cluster.store_of cluster ~node in
      match Store.Replica.find store oid with
      | Some copy -> if copy.version > fst !best then best := (copy.version, copy.value)
      | None -> ())
    (Core.Cluster.members cluster);
  snd !best

let seq programs =
  List.fold_left
    (fun acc program -> Core.Txn.bind acc (fun _ -> program))
    (Core.Txn.return Store.Value.Unit)
    programs

let ops_as_cts programs =
  seq (List.map (fun program -> Core.Txn.nested (fun () -> program)) programs)
