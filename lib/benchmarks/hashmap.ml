open Core
open Txn.Syntax

let bucket_count = 8
let nil = -1

(* Node encoding: List [Int key; Int data; Int next]. Bucket head: Int. *)
let node_value ~key ~data ~next = Store.Value.(List [ Int key; Int data; Int next ])
let node_key v = Store.Value.(to_int (field v 0))
let node_data v = Store.Value.(to_int (field v 1))
let node_next v = Store.Value.(to_int (field v 2))

type handle = {
  heads : Core.Ids.obj_id array; (* one per bucket *)
  pool : Core.Ids.obj_id array; (* one node object per key *)
  keys : int;
}

let bucket_of key = key mod bucket_count

(* Every other key of each chain is pre-populated, installed as the
   objects' initial values so every replica starts with identical chains. *)
let preloaded key = key / bucket_count mod 2 = 0

let create cluster ~keys =
  (* Keys of bucket [b] are b, b+B, b+2B, ... — chains are kept sorted. *)
  let rec next_loaded k = if k >= keys then nil else if preloaded k then k else next_loaded (k + bucket_count) in
  (* Allocate placeholder objects first (oids are assigned sequentially),
     then install the linked initial values. *)
  let pool =
    Array.init keys (fun _ -> Cluster.alloc_object cluster ~init:Store.Value.Unit)
  in
  Array.iteri
    (fun key oid ->
      let next_key = if preloaded key then next_loaded (key + bucket_count) else nil in
      let next_oid = if next_key = nil then nil else pool.(next_key) in
      Cluster.install_object cluster ~oid ~init:(node_value ~key ~data:key ~next:next_oid))
    pool;
  let heads =
    Array.init bucket_count (fun b ->
        let k = next_loaded b in
        let target = if k = nil then nil else pool.(k) in
        Cluster.alloc_object cluster ~init:(Store.Value.Int target))
  in
  { heads; pool; keys }

(* Traverse the sorted chain of [key]'s bucket.  Continues with
   [k ~prev ~found ~succ]: [prev = None] means the head pointer is the
   predecessor; [found] carries the node oid + value when present; [succ]
   is the first oid with a larger key (the insertion point's successor). *)
let search h ~key ~k =
  let head = h.heads.(bucket_of key) in
  let rec walk ~prev oid =
    if oid = nil then k ~prev ~found:None ~succ:nil
    else
      let* v = Txn.read oid in
      let nk = node_key v in
      if nk = key then k ~prev ~found:(Some (oid, v)) ~succ:(node_next v)
      else if nk > key then k ~prev ~found:None ~succ:oid
      else walk ~prev:(Some (oid, v)) (node_next v)
  in
  let* head_v = Txn.read head in
  walk ~prev:None (Store.Value.to_int head_v)

let write_pred h ~key ~prev ~target =
  match prev with
  | None -> Txn.write h.heads.(bucket_of key) (Store.Value.Int target)
  | Some (oid, v) -> Txn.write oid (Store.Value.with_field v 2 (Store.Value.Int target))

let put h ~key ~data =
  search h ~key ~k:(fun ~prev ~found ~succ ->
      match found with
      | Some (oid, v) ->
        if node_data v = data then Txn.return Store.Value.Unit
        else Txn.write oid (Store.Value.with_field v 1 (Store.Value.Int data))
      | None ->
        let node = h.pool.(key) in
        let* _ = Txn.write node (node_value ~key ~data ~next:succ) in
        write_pred h ~key ~prev ~target:node)

let remove h ~key =
  search h ~key ~k:(fun ~prev ~found ~succ:_ ->
      match found with
      | None -> Txn.return Store.Value.Unit
      | Some (_, v) -> write_pred h ~key ~prev ~target:(node_next v))

let get h ~key =
  search h ~key ~k:(fun ~prev:_ ~found ~succ:_ ->
      match found with
      | None -> Txn.return Store.Value.Unit
      | Some (_, v) -> Txn.return (Store.Value.Int (node_data v)))

let committed_bindings cluster h =
  let bindings = ref [] in
  Array.iter
    (fun head ->
      let rec walk oid steps =
        if oid <> nil && steps < h.keys + 1 then begin
          let v = Workload.latest_value cluster ~oid in
          bindings := (node_key v, node_data v) :: !bindings;
          walk (node_next v) (steps + 1)
        end
      in
      walk (Store.Value.to_int (Workload.latest_value cluster ~oid:head)) 0)
    h.heads;
  List.sort compare !bindings

let check_chains cluster h =
  let rec check_bucket b =
    if b >= bucket_count then Ok ()
    else begin
      let head = h.heads.(b) in
      let rec walk oid last steps =
        if steps > h.keys then Error (Printf.sprintf "bucket %d: cycle detected" b)
        else if oid = nil then Ok ()
        else begin
          let v = Workload.latest_value cluster ~oid in
          let key = node_key v in
          if bucket_of key <> b then
            Error (Printf.sprintf "bucket %d: key %d misplaced" b key)
          else if key <= last then
            Error (Printf.sprintf "bucket %d: keys not strictly increasing at %d" b key)
          else walk (node_next v) key (steps + 1)
        end
      in
      match
        walk (Store.Value.to_int (Workload.latest_value cluster ~oid:head)) min_int 0
      with
      | Ok () -> check_bucket (b + 1)
      | Error _ as e -> e
    end
  in
  check_bucket 0

let setup cluster (params : Workload.params) =
  let h = create cluster ~keys:(Stdlib.max params.objects bucket_count) in
  (* Cross-shard steering: a [cross_shard_prob] fraction of operations
     targets a key whose node object is homed on a Zipf-drawn shard, so
     the chain walk (bucket head on its own shard, nodes on the target's)
     spans shard boundaries.  Gated so shard-local runs consume the exact
     pre-knob random sequence. *)
  let shards = Cluster.shard_count cluster in
  let keys_by_shard =
    if params.cross_shard_prob <= 0. || shards <= 1 then [||]
    else begin
      let buckets = Array.make shards [] in
      Array.iteri
        (fun key oid ->
          let s = Cluster.shard_of_oid cluster oid in
          buckets.(s) <- key :: buckets.(s))
        h.pool;
      Array.map (fun l -> Array.of_list (List.rev l)) buckets
    end
  in
  let populated =
    Array.fold_left
      (fun n b -> if Array.length b > 0 then n + 1 else n)
      0 keys_by_shard
  in
  let xshard = populated > 1 in
  let pick_sharded rng =
    let rec target () =
      let s = Workload.pick_shard rng params ~shards in
      if Array.length keys_by_shard.(s) = 0 then target () else s
    in
    let s = target () in
    keys_by_shard.(s).(Util.Rng.int rng (Array.length keys_by_shard.(s)))
  in
  let generate rng =
    let ops =
      List.init params.calls (fun _ ->
          let key =
            if xshard && Util.Rng.chance rng params.cross_shard_prob then
              pick_sharded rng
            else Workload.pick_key rng { params with objects = h.keys }
          in
          if Util.Rng.chance rng params.read_ratio then get h ~key
          else if Util.Rng.bool rng then put h ~key ~data:(Util.Rng.int rng 1000)
          else remove h ~key)
    in
    fun () -> Workload.ops_as_cts ops
  in
  let check () = check_chains cluster h in
  { Workload.generate; check }

let benchmark = { Workload.name = "hashmap"; setup }
