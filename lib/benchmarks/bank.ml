open Core
open Txn.Syntax

let initial_balance = 1_000

let transfer ~from_ ~to_ ~amount =
  let* src = Txn.read from_ in
  let* dst = Txn.read to_ in
  let* _ = Txn.write from_ (Store.Value.Int (Store.Value.to_int src - amount)) in
  Txn.write to_ (Store.Value.Int (Store.Value.to_int dst + amount))

let audit a b =
  let* va = Txn.read a in
  let* vb = Txn.read b in
  Txn.return (Store.Value.Int (Store.Value.to_int va + Store.Value.to_int vb))

let total_balance cluster ~accounts =
  Array.fold_left
    (fun acc oid -> acc + Store.Value.to_int (Workload.latest_value cluster ~oid))
    0 accounts

let setup cluster (params : Workload.params) =
  let accounts =
    Array.init params.objects (fun _ ->
        Cluster.alloc_object cluster ~init:(Store.Value.Int initial_balance))
  in
  (* Cross-shard transfers: a [cross_shard_prob] fraction of pairs is
     forced to span two shards — the second account is drawn from a
     Zipf-chosen target shard other than the first account's.  All of
     this (including the bucket index) is gated so that shard-local runs
     consume the exact pre-knob random sequence. *)
  let shards = Cluster.shard_count cluster in
  let by_shard =
    if params.cross_shard_prob <= 0. || shards <= 1 then [||]
    else begin
      let buckets = Array.make shards [] in
      Array.iteri
        (fun i oid ->
          let s = Cluster.shard_of_oid cluster oid in
          buckets.(s) <- i :: buckets.(s))
        accounts;
      Array.map (fun l -> Array.of_list (List.rev l)) buckets
    end
  in
  let populated =
    Array.fold_left (fun n b -> if Array.length b > 0 then n + 1 else n) 0 by_shard
  in
  let xshard = populated > 1 in
  let pick_cross rng a =
    let home = Cluster.shard_of_oid cluster accounts.(a) in
    let rec target () =
      let s = Workload.pick_shard rng params ~shards in
      if s = home || Array.length by_shard.(s) = 0 then target () else s
    in
    let s = target () in
    by_shard.(s).(Util.Rng.int rng (Array.length by_shard.(s)))
  in
  let pick_two rng =
    let a = Workload.pick_key rng params in
    if xshard && Util.Rng.chance rng params.cross_shard_prob then
      (accounts.(a), accounts.(pick_cross rng a))
    else
      let rec other () =
        let b = Workload.pick_key rng params in
        if b = a then other () else b
      in
      (accounts.(a), accounts.(other ()))
  in
  let generate rng =
    let ops =
      List.init params.calls (fun _ ->
          let a, b = pick_two rng in
          if Util.Rng.chance rng params.read_ratio then audit a b
          else transfer ~from_:a ~to_:b ~amount:(1 + Util.Rng.int rng 10))
    in
    fun () -> Workload.ops_as_cts ops
  in
  let check () =
    let expected = params.objects * initial_balance in
    let actual = total_balance cluster ~accounts in
    if actual = expected then Ok ()
    else Error (Printf.sprintf "bank: total balance %d, expected %d" actual expected)
  in
  { Workload.generate; check }

let benchmark = { Workload.name = "bank"; setup }
