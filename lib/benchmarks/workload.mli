(** Benchmark workload interface.

    Every benchmark in the paper's evaluation is packaged as a {!benchmark}:
    setup installs the shared objects on a cluster and returns an
    {!instance} that generates root-transaction programs and can check the
    benchmark's structural invariants after a run.

    Generated programs are {b re-runnable}: all random choices (keys,
    amounts, operation types) are fixed at generation time, so a retry
    replays the same logical transaction — the requirement the executor
    places on programs.

    Parameter semantics follow the paper's three sweeps:
    - [read_ratio]: fraction of data-structure operations that are
      read-only (Fig. 5);
    - [calls]: closed-nested calls (operations) per root transaction,
      controlling transaction length (Fig. 6);
    - [objects]: benchmark-specific population size (Fig. 7) — accounts for
      Bank, keys for Hashmap/SList/RBTree/BST, offers for Vacation. *)

type params = {
  objects : int;
  calls : int;
  read_ratio : float;
  key_skew : float;  (** Zipf skew of key selection; 0. = uniform *)
  cross_shard_prob : float;
      (** fraction of operations steered across shard boundaries (Bank:
          transfer pairs spanning two shards; Hashmap: keys homed on a
          drawn target shard); 0. = shard-local, and the workload draws
          no extra randomness, so unsharded runs are byte-identical *)
  shard_skew : float;
      (** Zipf skew of the target-shard draw on cross-shard operations;
          0. = uniform over shards *)
}

val default_params : params
(** 64 objects, 3 calls, 50% reads, skew 0.6, no cross-shard traffic. *)

type instance = {
  generate : Util.Rng.t -> unit -> Core.Txn.t;
      (** A fresh root-transaction program; the [unit -> _] thunk is
          re-runnable. *)
  check : unit -> (unit, string) result;
      (** Post-run structural invariant check against the replicas. *)
}

type benchmark = {
  name : string;
  setup : Core.Cluster.t -> params -> instance;
}

(** {2 Helpers shared by benchmark implementations} *)

val pick_key : Util.Rng.t -> params -> int
(** Zipf-distributed key in [\[0, params.objects)]. *)

val pick_shard : Util.Rng.t -> params -> shards:int -> int
(** Zipf-distributed target shard in [\[0, shards)] using [shard_skew].
    Call only on the cross-shard branch — see the determinism note on
    {!type-params}. *)

val latest_value : Core.Cluster.t -> oid:Core.Ids.obj_id -> Core.Txn.value
(** The highest-versioned copy across all replicas — the committed state an
    omniscient observer sees; used by invariant checks. *)

val seq : Core.Txn.t list -> Core.Txn.t
(** Run programs in sequence, returning the last result ([Return Unit] when
    empty). *)

val ops_as_cts : Core.Txn.t list -> Core.Txn.t
(** Wrap each program as a closed-nested call and run them in sequence —
    the paper's transaction shape (a root enclosing one CT per operation). *)
