open Core

type request =
  | Read_req of { oid : Ids.obj_id }
  | Validate of { entries : (Ids.obj_id * int) list }
  | Lock of { txn : Ids.txn_id; entries : (Ids.obj_id * int) list; locks : Ids.obj_id list }
  | Apply of { txn : Ids.txn_id; writes : (Ids.obj_id * int * Txn.value) list; clock : int }
  | Release of { txn : Ids.txn_id; oids : Ids.obj_id list }

type reply =
  | Read_ok of { version : int; value : Txn.value; clock : int }
  | Validate_ok of bool
  | Lock_ok of bool

(* Interned accounting labels; names shared with the QR protocol reuse the
   same registry entries, so cross-system message tables stay comparable. *)
let read_req_kind = Sim.Network.Kind.intern "read_req"
let validate_kind = Sim.Network.Kind.intern "validate"
let commit_req_kind = Sim.Network.Kind.intern "commit_req"
let apply_kind = Sim.Network.Kind.intern "commit_apply"
let release_kind = Sim.Network.Kind.intern "release"

type t = {
  engine : Sim.Engine.t;
  network : (request, reply) Sim.Rpc.envelope Sim.Network.t;
  rpc : (request, reply) Sim.Rpc.t;
  stores : Store.Replica.t array;
  clocks : int array;
  metrics : Metrics.t;
  oracle : Oracle.t option;
  ids : Ids.gen;
  rng : Util.Rng.t;
  node_count : int;
}

let home t oid = oid mod t.node_count

let serve t node ~src:_ request =
  let store = t.stores.(node) in
  match request with
  | Read_req { oid } ->
    let copy = Store.Replica.get store oid in
    Some (Read_ok { version = copy.version; value = copy.value; clock = t.clocks.(node) })
  | Validate { entries } ->
    let ok =
      List.for_all
        (fun (oid, version) -> (Store.Replica.get store oid).version = version)
        entries
    in
    Some (Validate_ok ok)
  | Lock { txn; entries; locks } ->
    let valid =
      List.for_all
        (fun (oid, version) ->
          let copy = Store.Replica.get store oid in
          copy.version = version
          && match copy.protected_by with
             | None -> true
             | Some lease -> lease.Store.Replica.owner = txn)
        entries
    in
    if not valid then Some (Lock_ok false)
    else begin
      List.iter (fun oid -> ignore (Store.Replica.try_lock store ~oid ~txn)) locks;
      Some (Lock_ok true)
    end
  | Apply { txn; writes; clock } ->
    List.iter
      (fun (oid, version, value) -> Store.Replica.apply store ~oid ~version ~value ~txn)
      writes;
    t.clocks.(node) <- Stdlib.max t.clocks.(node) clock;
    None
  | Release { txn; oids } ->
    List.iter (fun oid -> Store.Replica.unlock store ~oid ~txn) oids;
    None

let create ?(nodes = 13) ?(seed = 3) ?(latency = 5.0) ?(service_time = 0.25)
    ?(with_oracle = true) () =
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~latency ~nodes () in
  let network = Sim.Network.create ~engine ~topology ~service_time ~seed:(seed + 1) () in
  let rpc = Sim.Rpc.create ~network () in
  let t =
    {
      engine;
      network;
      rpc;
      stores = Array.init nodes (fun _ -> Store.Replica.create ());
      clocks = Array.make nodes 0;
      metrics = Metrics.create ();
      oracle = (if with_oracle then Some (Oracle.create ()) else None);
      ids = Ids.gen ();
      rng = Util.Rng.create (seed + 2);
      node_count = nodes;
    }
  in
  for node = 0 to nodes - 1 do
    Sim.Rpc.serve rpc ~node (serve t node)
  done;
  t

let nodes t = t.node_count
let now t = Sim.Engine.now t.engine
let metrics t = t.metrics
let messages_sent t = Sim.Network.messages_sent t.network

let alloc_object t ~init =
  let oid = Ids.fresh_obj t.ids in
  Store.Replica.install t.stores.(home t oid) ~oid ~init;
  oid

let latest_value t ~oid = (Store.Replica.get t.stores.(home t oid) oid).value
let run_for t duration = Sim.Engine.run ~until:(now t +. duration) t.engine
let drain t = Sim.Engine.run t.engine

let reset_counters t =
  Metrics.reset t.metrics;
  Sim.Network.reset_counters t.network

let check_consistency t =
  match t.oracle with
  | Some oracle -> Oracle.check oracle
  | None -> Error "oracle disabled"

(* --- client-side transaction execution ------------------------------- *)

type txn_state = {
  sys : t;
  node : int;
  program : unit -> Txn.t;
  on_done : Executor.outcome -> unit;
  mutable txn_id : Ids.txn_id;
  mutable rv : int;
  mutable rset : Rwset.t;
  mutable wset : Rwset.t;
  mutable attempt : int;
  born : float;
  mutable window_start : float;
  mutable steps : int;
  mutable generation : int;
  mutable finished : bool;
}

let timeout = 2_000. (* no failures in TFA runs; generous *)

let jittered t base = base *. (0.5 +. Util.Rng.float t.rng 1.0)

(* Replies racing with an abort/retry must be dropped. *)
let live st generation = (not st.finished) && st.generation = generation

let rec start_attempt st =
  st.generation <- st.generation + 1;
  st.txn_id <- Ids.fresh_txn st.sys.ids;
  st.rv <- 0;
  st.rset <- Rwset.empty;
  st.wset <- Rwset.empty;
  st.steps <- 0;
  st.window_start <- now st.sys;
  step st (st.program ())

and step st prog =
  Sim.Engine.schedule st.sys.engine ~delay:0.02 (fun () ->
      if not st.finished then begin
        st.steps <- st.steps + 1;
        if st.steps > 20_000 then abort_retry st else interpret st prog
      end)

and interpret st prog =
  match prog with
  | Txn.Return v -> commit st v
  | Txn.Fail msg -> finish st (Executor.Failed msg)
  | Txn.Nested (body, k) -> step st (Txn.bind (body ()) k)
  | Txn.Open { body; compensate = _; k } ->
    (* Baselines flatten open nesting into the parent: strictly more
       atomic, so the compensation can never be needed. *)
    step st (Txn.bind (body ()) k)
  | Txn.Checkpoint k -> step st (k ())
  | Txn.Read (oid, k) -> access st ~oid ~write:None ~k
  | Txn.Write (oid, v, k) -> access st ~oid ~write:(Some v) ~k:(fun _ -> k ())

and access st ~oid ~write ~k =
  let local =
    match Rwset.find st.wset oid with
    | Some e -> Some e
    | None -> Rwset.find st.rset oid
  in
  match local with
  | Some entry ->
    Metrics.note_local_read st.sys.metrics;
    record st ~oid ~version:entry.version ~value:entry.value ~write;
    step st (k entry.value)
  | None ->
    st.window_start <- now st.sys;
    let generation = st.generation in
    Sim.Rpc.call st.sys.rpc ~kind:read_req_kind ~src:st.node ~dst:(home st.sys oid)
      ~timeout (Read_req { oid })
      ~on_reply:(fun reply ->
        if live st generation then
          match reply with
          | Read_ok { version; value; clock } ->
            Metrics.note_remote_read st.sys.metrics;
            if clock > st.rv then forward st ~oid ~version ~value ~write ~clock ~k
            else begin
              record st ~oid ~version ~value ~write;
              step st (k value)
            end
          | Validate_ok _ | Lock_ok _ -> ())
      ~on_timeout:(fun () -> if live st generation then abort_retry st)

(* Transaction forwarding: the remote clock ran ahead of rv — revalidate the
   read-set at the owning homes before advancing rv. *)
and forward st ~oid ~version ~value ~write ~clock ~k =
  let by_home = Hashtbl.create 7 in
  List.iter
    (fun (e : Rwset.entry) ->
      let h = home st.sys e.oid in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_home h) in
      Hashtbl.replace by_home h ((e.oid, e.version) :: prev))
    (Rwset.entries st.rset @ Rwset.entries st.wset);
  let homes = Hashtbl.fold (fun h entries acc -> (h, entries) :: acc) by_home [] in
  let pending = ref (List.length homes) in
  let valid = ref true in
  if homes = [] then begin
    st.rv <- clock;
    record st ~oid ~version ~value ~write;
    step st (k value)
  end
  else begin
    let generation = st.generation in
    List.iter
      (fun (h, entries) ->
        Sim.Rpc.call st.sys.rpc ~kind:validate_kind ~src:st.node ~dst:h ~timeout
          (Validate { entries })
          ~on_reply:(fun reply ->
            if live st generation then begin
              begin
                match reply with
                | Validate_ok ok -> if not ok then valid := false
                | Read_ok _ | Lock_ok _ -> valid := false
              end;
              decr pending;
              if !pending = 0 then
                if !valid then begin
                  st.rv <- clock;
                  record st ~oid ~version ~value ~write;
                  step st (k value)
                end
                else abort_retry st
            end)
          ~on_timeout:(fun () -> if live st generation then abort_retry st))
      homes
  end

and record st ~oid ~version ~value ~write =
  match write with
  | Some w -> st.wset <- Rwset.add st.wset { oid; version; value = w; owner = 0 }
  | None ->
    if not (Rwset.mem st.rset oid) then
      st.rset <- Rwset.add st.rset { oid; version; value; owner = 0 }

and commit st result =
  if Rwset.is_empty st.wset then begin
    (* Read-only: every read was forwarded/validated; commit locally. *)
    record_oracle st;
    Metrics.note_read_only_commit st.sys.metrics ~latency:(now st.sys -. st.born);
    finish st (Executor.Committed result)
  end
  else begin
    st.window_start <- now st.sys;
    let by_home = Hashtbl.create 7 in
    let note oid payload =
      let h = home st.sys oid in
      let locks, entries =
        Option.value ~default:([], []) (Hashtbl.find_opt by_home h)
      in
      match payload with
      | `Lock (v) -> Hashtbl.replace by_home h (oid :: locks, (oid, v) :: entries)
      | `Check (v) -> Hashtbl.replace by_home h (locks, (oid, v) :: entries)
    in
    List.iter (fun (e : Rwset.entry) -> note e.oid (`Lock e.version)) (Rwset.entries st.wset);
    List.iter
      (fun (e : Rwset.entry) ->
        if not (Rwset.mem st.wset e.oid) then note e.oid (`Check e.version))
      (Rwset.entries st.rset);
    let homes = Hashtbl.fold (fun h (locks, entries) acc -> (h, locks, entries) :: acc) by_home [] in
    let pending = ref (List.length homes) in
    let ok = ref true in
    let generation = st.generation in
    List.iter
      (fun (h, locks, entries) ->
        Sim.Rpc.call st.sys.rpc ~kind:commit_req_kind ~src:st.node ~dst:h ~timeout
          (Lock { txn = st.txn_id; entries; locks })
          ~on_reply:(fun reply ->
            if live st generation then begin
              begin
                match reply with
                | Lock_ok success -> if not success then ok := false
                | Read_ok _ | Validate_ok _ -> ok := false
              end;
              decr pending;
              if !pending = 0 then
                if !ok then apply_commit st result homes
                else begin
                  release st homes;
                  abort_retry st
                end
            end)
          ~on_timeout:(fun () ->
            if live st generation then begin
              release st homes;
              abort_retry st
            end))
      homes
  end

and apply_commit st result homes =
  let clock = st.rv + 1 in
  record_oracle st;
  List.iter
    (fun (h, _, _) ->
      let writes =
        List.filter_map
          (fun (e : Rwset.entry) ->
            if home st.sys e.oid = h then Some (e.oid, e.version + 1, e.value) else None)
          (Rwset.entries st.wset)
      in
      Sim.Rpc.cast st.sys.rpc ~kind:apply_kind ~src:st.node ~dst:h
        (Apply { txn = st.txn_id; writes; clock }))
    homes;
  Metrics.note_commit st.sys.metrics ~latency:(now st.sys -. st.born);
  finish st (Executor.Committed result)

and release st homes =
  List.iter
    (fun (h, locks, _) ->
      if locks <> [] then
        Sim.Rpc.cast st.sys.rpc ~kind:release_kind ~src:st.node ~dst:h
          (Release { txn = st.txn_id; oids = locks }))
    homes

and record_oracle st =
  match st.sys.oracle with
  | None -> ()
  | Some oracle ->
    let reads =
      List.map (fun (e : Rwset.entry) -> (e.oid, e.version)) (Rwset.entries st.rset)
    in
    let write_bases =
      List.filter_map
        (fun (e : Rwset.entry) ->
          if Rwset.mem st.rset e.oid then None else Some (e.oid, e.version))
        (Rwset.entries st.wset)
    in
    let writes =
      List.map (fun (e : Rwset.entry) -> (e.oid, e.version + 1)) (Rwset.entries st.wset)
    in
    Oracle.note_commit oracle ~txn:st.txn_id ~decision:(now st.sys)
      ~window_start:st.window_start ~reads:(reads @ write_bases) ~writes

and abort_retry st =
  st.generation <- st.generation + 1;
  Metrics.note_root_abort st.sys.metrics;
  st.attempt <- st.attempt + 1;
  let backoff = Stdlib.min 250. (4. *. Float.of_int (1 lsl Stdlib.min st.attempt 8)) in
  Sim.Engine.schedule st.sys.engine ~delay:(jittered st.sys backoff) (fun () ->
      if not st.finished then start_attempt st)

and finish st outcome =
  if not st.finished then begin
    st.finished <- true;
    st.on_done outcome
  end

let submit t ~node program ~on_done =
  let st =
    {
      sys = t;
      node;
      program;
      on_done;
      txn_id = 0;
      rv = 0;
      rset = Rwset.empty;
      wset = Rwset.empty;
      attempt = 0;
      born = now t;
      window_start = now t;
      steps = 0;
      generation = 0;
      finished = false;
    }
  in
  start_attempt st
