open Core

type request =
  | Locate of { oid : Ids.obj_id }
      (* fetch the object's commit record (which version chain to read) —
         Decent-STM's snapshot algorithm needs this indirection before the
         version data itself, doubling the read-path round trips *)
  | Snapshot_read of { oid : Ids.obj_id; snapshot : float }
  | Commit_vote of {
      txn : Ids.txn_id;
      reads : (Ids.obj_id * int) list;
      writes : (Ids.obj_id * int) list; (* (oid, base version) *)
    }
  | Broadcast_apply of {
      txn : Ids.txn_id;
      writes : (Ids.obj_id * int * Txn.value) list;
      time : float;
    }
  | Unlock of { txn : Ids.txn_id; oids : Ids.obj_id list }

type read_result = Got of { version : int; value : Txn.value } | Trimmed
type reply = Version of read_result | Vote of bool | Record

(* Interned accounting labels; shared names reuse the same registry entries
   as the QR protocol, keeping cross-system message tables comparable. *)
let locate_kind = Sim.Network.Kind.intern "locate"
let read_req_kind = Sim.Network.Kind.intern "read_req"
let commit_req_kind = Sim.Network.Kind.intern "commit_req"
let apply_kind = Sim.Network.Kind.intern "commit_apply"
let release_kind = Sim.Network.Kind.intern "release"

type t = {
  engine : Sim.Engine.t;
  network : (request, reply) Sim.Rpc.envelope Sim.Network.t;
  rpc : (request, reply) Sim.Rpc.t;
  histories : Store.Multiversion.t array;
  locks : (Ids.obj_id, Ids.txn_id) Hashtbl.t array;
  metrics : Metrics.t;
  oracle : Oracle.t option;
  ids : Ids.gen;
  rng : Util.Rng.t;
  node_count : int;
}

let responsible t oid = oid mod t.node_count

let serve t node ~src:_ request =
  let history = t.histories.(node) in
  let locks = t.locks.(node) in
  match request with
  | Locate _ -> Some Record
  | Snapshot_read { oid; snapshot } ->
    begin
      match Store.Multiversion.at_or_before history ~oid ~time:snapshot with
      | Some (version, value) -> Some (Version (Got { version; value }))
      | None -> Some (Version Trimmed)
    end
  | Commit_vote { txn; reads; writes } ->
    let fresh (oid, version) = Store.Multiversion.version history ~oid = version in
    let unlocked (oid, _) =
      match Hashtbl.find_opt locks oid with None -> true | Some owner -> owner = txn
    in
    if List.for_all fresh reads && List.for_all fresh writes
       && List.for_all unlocked writes
    then begin
      List.iter (fun (oid, _) -> Hashtbl.replace locks oid txn) writes;
      Some (Vote true)
    end
    else Some (Vote false)
  | Broadcast_apply { txn; writes; time } ->
    List.iter
      (fun (oid, version, value) ->
        Store.Multiversion.commit history ~oid ~version ~value ~time;
        match Hashtbl.find_opt locks oid with
        | Some owner when owner = txn -> Hashtbl.remove locks oid
        | Some _ | None -> ())
      writes;
    None
  | Unlock { txn; oids } ->
    List.iter
      (fun oid ->
        match Hashtbl.find_opt locks oid with
        | Some owner when owner = txn -> Hashtbl.remove locks oid
        | Some _ | None -> ())
      oids;
    None

let create ?(nodes = 13) ?(seed = 5) ?(service_time = 0.5) ?(history_limit = 16)
    ?(with_oracle = true) () =
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.create ~seed:(seed + 1) ~nodes () in
  let network = Sim.Network.create ~engine ~topology ~service_time ~seed:(seed + 2) () in
  let rpc = Sim.Rpc.create ~network () in
  let t =
    {
      engine;
      network;
      rpc;
      histories = Array.init nodes (fun _ -> Store.Multiversion.create ~history_limit ());
      locks = Array.init nodes (fun _ -> Hashtbl.create 64);
      metrics = Metrics.create ();
      oracle = (if with_oracle then Some (Oracle.create ()) else None);
      ids = Ids.gen ();
      rng = Util.Rng.create (seed + 3);
      node_count = nodes;
    }
  in
  for node = 0 to nodes - 1 do
    Sim.Rpc.serve rpc ~node (serve t node)
  done;
  t

let nodes t = t.node_count
let now t = Sim.Engine.now t.engine
let metrics t = t.metrics
let messages_sent t = Sim.Network.messages_sent t.network

let alloc_object t ~init =
  let oid = Ids.fresh_obj t.ids in
  Array.iter (fun history -> Store.Multiversion.ensure history ~oid ~init) t.histories;
  oid

let latest_value t ~oid = snd (Store.Multiversion.latest t.histories.(responsible t oid) ~oid)
let run_for t duration = Sim.Engine.run ~until:(now t +. duration) t.engine
let drain t = Sim.Engine.run t.engine

let reset_counters t =
  Metrics.reset t.metrics;
  Sim.Network.reset_counters t.network

let check_consistency t =
  match t.oracle with
  | Some oracle -> Oracle.check oracle
  | None -> Error "oracle disabled"

(* --- client-side execution ------------------------------------------- *)

type txn_state = {
  sys : t;
  node : int;
  program : unit -> Txn.t;
  on_done : Executor.outcome -> unit;
  mutable txn_id : Ids.txn_id;
  mutable snapshot : float;
  mutable rset : Rwset.t;
  mutable wset : Rwset.t;
  mutable attempt : int;
  born : float;
  mutable steps : int;
  mutable generation : int;
  mutable finished : bool;
}

let timeout = 2_000.
let jittered t base = base *. (0.5 +. Util.Rng.float t.rng 1.0)
let live st generation = (not st.finished) && st.generation = generation

let rec start_attempt st =
  st.generation <- st.generation + 1;
  st.txn_id <- Ids.fresh_txn st.sys.ids;
  st.snapshot <- now st.sys;
  st.rset <- Rwset.empty;
  st.wset <- Rwset.empty;
  st.steps <- 0;
  step st (st.program ())

and step st prog =
  Sim.Engine.schedule st.sys.engine ~delay:0.02 (fun () ->
      if not st.finished then begin
        st.steps <- st.steps + 1;
        if st.steps > 20_000 then abort_retry st else interpret st prog
      end)

and interpret st prog =
  match prog with
  | Txn.Return v -> commit st v
  | Txn.Fail msg -> finish st (Executor.Failed msg)
  | Txn.Nested (body, k) -> step st (Txn.bind (body ()) k)
  | Txn.Open { body; compensate = _; k } ->
    (* Baselines flatten open nesting into the parent: strictly more
       atomic, so the compensation can never be needed. *)
    step st (Txn.bind (body ()) k)
  | Txn.Checkpoint k -> step st (k ())
  | Txn.Read (oid, k) -> access st ~oid ~write:None ~k
  | Txn.Write (oid, v, k) -> access st ~oid ~write:(Some v) ~k:(fun _ -> k ())

and access st ~oid ~write ~k =
  let local =
    match Rwset.find st.wset oid with
    | Some e -> Some e
    | None -> Rwset.find st.rset oid
  in
  match local with
  | Some entry ->
    Metrics.note_local_read st.sys.metrics;
    record st ~oid ~version:entry.version ~value:entry.value ~write;
    step st (k entry.value)
  | None ->
    let generation = st.generation in
    let dst = responsible st.sys oid in
    (* Round 1: locate the commit record; round 2: fetch the snapshot
       version.  The two-step read path is Decent-STM's principal overhead
       versus QR's single quorum round. *)
    Sim.Rpc.call st.sys.rpc ~kind:locate_kind ~src:st.node ~dst ~timeout (Locate { oid })
      ~on_reply:(fun reply ->
        if live st generation then
          match reply with
          | Record | Version _ | Vote _ ->
            Sim.Rpc.call st.sys.rpc ~kind:read_req_kind ~src:st.node ~dst ~timeout
              (Snapshot_read { oid; snapshot = st.snapshot })
              ~on_reply:(fun reply ->
                if live st generation then
                  match reply with
                  | Version (Got { version; value }) ->
                    Metrics.note_remote_read st.sys.metrics;
                    record st ~oid ~version ~value ~write;
                    step st (k value)
                  | Version Trimmed ->
                    (* Snapshot too old for the retained history: restart
                       with a fresh snapshot. *)
                    abort_retry st
                  | Record | Vote _ -> ())
              ~on_timeout:(fun () -> if live st generation then abort_retry st))
      ~on_timeout:(fun () -> if live st generation then abort_retry st)

and record st ~oid ~version ~value ~write =
  match write with
  | Some w -> st.wset <- Rwset.add st.wset { oid; version; value = w; owner = 0 }
  | None ->
    if not (Rwset.mem st.rset oid) then
      st.rset <- Rwset.add st.rset { oid; version; value; owner = 0 }

and commit st result =
  if Rwset.is_empty st.wset then begin
    (* Readers never abort: the snapshot is consistent by construction. *)
    record_oracle st ~window_start:st.snapshot;
    Metrics.note_read_only_commit st.sys.metrics ~latency:(now st.sys -. st.born);
    finish st (Executor.Committed result)
  end
  else begin
    let window_start = now st.sys in
    let reads =
      List.filter_map
        (fun (e : Rwset.entry) ->
          if Rwset.mem st.wset e.oid then None else Some (e.oid, e.version))
        (Rwset.entries st.rset)
    in
    let writes = List.map (fun (e : Rwset.entry) -> (e.oid, e.version)) (Rwset.entries st.wset) in
    (* Phase 1: first-committer-wins votes at the responsible nodes. *)
    let by_node = Hashtbl.create 7 in
    let note node (kind : [ `R | `W ]) entry =
      let r, w = Option.value ~default:([], []) (Hashtbl.find_opt by_node node) in
      match kind with
      | `R -> Hashtbl.replace by_node node (entry :: r, w)
      | `W -> Hashtbl.replace by_node node (r, entry :: w)
    in
    List.iter (fun (oid, v) -> note (responsible st.sys oid) `R (oid, v)) reads;
    List.iter (fun (oid, v) -> note (responsible st.sys oid) `W (oid, v)) writes;
    let targets = Hashtbl.fold (fun node rw acc -> (node, rw) :: acc) by_node [] in
    let pending = ref (List.length targets) in
    let ok = ref true in
    let generation = st.generation in
    List.iter
      (fun (node, (r, w)) ->
        Sim.Rpc.call st.sys.rpc ~kind:commit_req_kind ~src:st.node ~dst:node ~timeout
          (Commit_vote { txn = st.txn_id; reads = r; writes = w })
          ~on_reply:(fun reply ->
            if live st generation then begin
              begin
                match reply with
                | Vote success -> if not success then ok := false
                | Version _ | Record -> ok := false
              end;
              decr pending;
              if !pending = 0 then
                if !ok then broadcast_commit st result ~window_start
                else begin
                  unlock st targets;
                  abort_retry st
                end
            end)
          ~on_timeout:(fun () ->
            if live st generation then begin
              unlock st targets;
              abort_retry st
            end))
      targets
  end

and unlock st targets =
  List.iter
    (fun (node, (_, w)) ->
      if w <> [] then
        Sim.Rpc.cast st.sys.rpc ~kind:release_kind ~src:st.node ~dst:node
          (Unlock { txn = st.txn_id; oids = List.map fst w }))
    targets

(* Phase 2: apply by atomic broadcast to every replica. *)
and broadcast_commit st result ~window_start =
  let time = now st.sys in
  let writes =
    List.map
      (fun (e : Rwset.entry) -> (e.oid, e.version + 1, e.value))
      (Rwset.entries st.wset)
  in
  record_oracle st ~window_start;
  for node = 0 to st.sys.node_count - 1 do
    Sim.Rpc.cast st.sys.rpc ~kind:apply_kind ~src:st.node ~dst:node
      (Broadcast_apply { txn = st.txn_id; writes; time })
  done;
  Metrics.note_commit st.sys.metrics ~latency:(now st.sys -. st.born);
  finish st (Executor.Committed result)

and record_oracle st ~window_start =
  match st.sys.oracle with
  | None -> ()
  | Some oracle ->
    let reads =
      List.map (fun (e : Rwset.entry) -> (e.oid, e.version)) (Rwset.entries st.rset)
    in
    let write_bases =
      List.filter_map
        (fun (e : Rwset.entry) ->
          if Rwset.mem st.rset e.oid then None else Some (e.oid, e.version))
        (Rwset.entries st.wset)
    in
    let writes =
      List.map (fun (e : Rwset.entry) -> (e.oid, e.version + 1)) (Rwset.entries st.wset)
    in
    Oracle.note_commit oracle ~txn:st.txn_id ~decision:(now st.sys) ~window_start
      ~reads:(reads @ write_bases) ~writes

and abort_retry st =
  st.generation <- st.generation + 1;
  Metrics.note_root_abort st.sys.metrics;
  st.attempt <- st.attempt + 1;
  let backoff = Stdlib.min 250. (4. *. Float.of_int (1 lsl Stdlib.min st.attempt 8)) in
  Sim.Engine.schedule st.sys.engine ~delay:(jittered st.sys backoff) (fun () ->
      if not st.finished then start_attempt st)

and finish st outcome =
  if not st.finished then begin
    st.finished <- true;
    st.on_done outcome
  end

let submit t ~node program ~on_done =
  let st =
    {
      sys = t;
      node;
      program;
      on_done;
      txn_id = 0;
      snapshot = now t;
      rset = Rwset.empty;
      wset = Rwset.empty;
      attempt = 0;
      born = now t;
      steps = 0;
      generation = 0;
      finished = false;
    }
  in
  start_attempt st
