(* Crash scheduling, detection, and recovery.

   Two distinct node states are tracked:

   - *killed*   — the node is actually down (its process is gone);
   - *suspected* — the failure detector believes it is down.

   With a perfect detector the second lags the first by a fixed
   [detection_delay].  The detector here may also be imperfect: detection
   jitter spreads the lag, and false suspicions mark a perfectly live node
   as suspected for a while.  Consumers that need ground truth (the
   network, scenario bookkeeping) must use [is_killed]; consumers modelling
   the membership view (quorum construction) must use [is_suspected]. *)

type t = {
  engine : Engine.t;
  detection_delay : float;
  detection_jitter : float;
  rng : Util.Rng.t;
  kill : int -> unit;
  mutable detect_subscribers : (int -> unit) list;
  mutable recover_subscribers : (node:int -> was_killed:bool -> unit) list;
  killed : (int, unit) Hashtbl.t;
  suspected : (int, unit) Hashtbl.t;
  mutable false_suspicions : int;
}

let create ~engine ?(detection_delay = 50.) ?(detection_jitter = 0.) ?(seed = 29) ~kill
    () =
  {
    engine;
    detection_delay;
    detection_jitter;
    rng = Util.Rng.create seed;
    kill;
    detect_subscribers = [];
    recover_subscribers = [];
    killed = Hashtbl.create 7;
    suspected = Hashtbl.create 7;
    false_suspicions = 0;
  }

let on_detect t f = t.detect_subscribers <- f :: t.detect_subscribers
let on_recover t f = t.recover_subscribers <- f :: t.recover_subscribers

let is_killed t node = Hashtbl.mem t.killed node
let is_suspected t node = Hashtbl.mem t.suspected node

let sorted_keys table =
  Hashtbl.fold (fun node () acc -> node :: acc) table [] |> List.sort Int.compare

let killed_nodes t = sorted_keys t.killed
let suspected_nodes t = sorted_keys t.suspected
let false_suspicions t = t.false_suspicions

let detection_lag t =
  if t.detection_jitter <= 0. then t.detection_delay
  else t.detection_delay +. Util.Rng.float t.rng t.detection_jitter

let suspect_now t node =
  if not (Hashtbl.mem t.suspected node) then begin
    Hashtbl.replace t.suspected node ();
    List.iter (fun f -> f node) (List.rev t.detect_subscribers)
  end

let clear_suspicion t node = Hashtbl.remove t.suspected node

let schedule t ~at ~node =
  Engine.schedule_at t.engine ~time:at (fun () ->
      if not (Hashtbl.mem t.killed node) then begin
        Hashtbl.replace t.killed node ();
        t.kill node
      end);
  Engine.schedule_at t.engine ~time:(at +. detection_lag t) (fun () ->
      (* A node that already came back is no longer suspected. *)
      if Hashtbl.mem t.killed node then suspect_now t node)

let fire_recover t ~node ~was_killed =
  List.iter (fun f -> f ~node ~was_killed) (List.rev t.recover_subscribers)

let schedule_recovery t ~at ~node =
  Engine.schedule_at t.engine ~time:at (fun () ->
      if Hashtbl.mem t.killed node then begin
        Hashtbl.remove t.killed node;
        fire_recover t ~node ~was_killed:true
      end)

(* A false suspicion: the detector wrongly declares a live node failed; the
   mistake is noticed [clear_after] later (if given), at which point
   recovery subscribers run with [was_killed = false] so the node can be
   re-admitted without state transfer. *)
let schedule_false_suspicion ?clear_after t ~at ~node =
  Engine.schedule_at t.engine ~time:at (fun () ->
      if (not (Hashtbl.mem t.killed node)) && not (Hashtbl.mem t.suspected node)
      then begin
        t.false_suspicions <- t.false_suspicions + 1;
        suspect_now t node;
        Option.iter
          (fun after ->
            Engine.schedule_at t.engine ~time:(at +. after) (fun () ->
                if Hashtbl.mem t.suspected node && not (Hashtbl.mem t.killed node)
                then fire_recover t ~node ~was_killed:false))
          clear_after
      end)
