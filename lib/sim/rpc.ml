(* Every envelope carries a view epoch, stamped at send time from the
   [epoch_of] hook.  The epoch is keyed by the *request payload*, not the
   node: with a sharded object space each shard runs its own view epoch, and
   a message is fenced against the epoch of the shard its objects live on
   (with one shard this degenerates to the single cluster-wide epoch).  With
   fencing installed (see [set_fencing]) a node drops requests stamped with
   an older epoch than the current one — the membership fence that keeps
   evidence gathered under a superseded view from feeding quorum decisions
   in the current one.  Stale replies are dropped unconditionally: the
   caller's round times out and its retry re-stamps the current epoch.
   A reply inherits its request's epoch context via [epoch_now] (the reply
   payload alone cannot name a shard).  Without [set_fencing] every epoch
   is 0 and the layer behaves exactly as before. *)
type ('req, 'rep) envelope =
  | Request of { rid : int; payload : 'req; wants_reply : bool; epoch : int }
  | Reply of { rid : int; payload : 'rep; epoch : int; epoch_now : unit -> int }

type ('req, 'rep) pending = {
  mutable awaiting : int list;
  mutable replies : (int * 'rep) list;
  mutable finished : bool;
  complete : replies:(int * 'rep) list -> missing:int list -> unit;
}

type ('req, 'rep) t = {
  network : ('req, 'rep) envelope Network.t;
  servers : (src:int -> 'req -> 'rep option) option array;
  pending : (int, ('req, 'rep) pending) Hashtbl.t;
  mutable next_rid : int;
  mutable give_ups : int;
  mutable fenced : int;
  (* Membership fencing, installed by the cluster: [epoch_of req] is the
     current view epoch of the shard [req]'s objects live on (one shard:
     the cluster-wide epoch) and [fenceable req] says whether a stale
     [req] must be rejected (quorum-evidence traffic) or served anyway
     (idempotent catch-up/installer traffic such as Sync_req).  Inert
     defaults: epoch 0 everywhere, nothing fenced. *)
  mutable epoch_of : 'req -> int;
  mutable fenceable : 'req -> bool;
  (* Retransmission backoff ([acked_send]): attempt k waits
     min(max, base * 2^k) with seeded jitter before re-sending.  A base of
     0 retries immediately (the historical fixed-interval behaviour). *)
  retry_base : float;
  retry_max : float;
  rng : Util.Rng.t;
  tracer : Obs.Tracer.t; (* cached from the engine; Tracer.null when off *)
}

let trace_fence t ~node ~src ~msg_epoch ~cur_epoch =
  if Obs.Tracer.enabled t.tracer then
    Obs.Tracer.emit8 t.tracer
      ~time:(Engine.now (Network.engine t.network))
      ~kind:Obs.Sem.epoch_fence ~node ~txn:(-1) ~oid:(-1) ~a:src ~b:msg_epoch
      ~x:(Float.of_int cur_epoch)

let handle_envelope t ~node ~src env =
  match env with
  | Request { rid; payload; wants_reply; epoch } ->
    let cur = t.epoch_of payload in
    if epoch < cur && t.fenceable payload then begin
      t.fenced <- t.fenced + 1;
      trace_fence t ~node ~src ~msg_epoch:epoch ~cur_epoch:cur
    end
    else begin
      match t.servers.(node) with
      | None -> ()
      | Some server ->
        begin
          match server ~src payload with
          | Some rep when wants_reply ->
            let epoch_now () = t.epoch_of payload in
            Network.send t.network ~kind:Network.Kind.reply ~src:node ~dst:src
              (Reply { rid; payload = rep; epoch = epoch_now (); epoch_now })
          | Some _ | None -> ()
        end
    end
  | Reply { rid; payload; epoch; epoch_now } ->
    let cur = epoch_now () in
    if epoch < cur then begin
      (* Evidence from a superseded view: the pending round will time out
         and the caller's retry carries the current epoch. *)
      t.fenced <- t.fenced + 1;
      trace_fence t ~node ~src ~msg_epoch:epoch ~cur_epoch:cur
    end
    else begin
      match Hashtbl.find_opt t.pending rid with
      | None -> () (* request already completed or timed out *)
      | Some p ->
        if List.mem src p.awaiting then begin
          p.awaiting <- List.filter (fun n -> n <> src) p.awaiting;
          p.replies <- (src, payload) :: p.replies;
          if p.awaiting = [] then begin
            p.finished <- true;
            Hashtbl.remove t.pending rid;
            p.complete ~replies:(List.rev p.replies) ~missing:[]
          end
        end
    end

let create ?(seed = 0) ?(retry_base = 0.) ?(retry_max = 0.) ~network () =
  let t =
    {
      network;
      servers = Array.make (Network.nodes network) None;
      pending = Hashtbl.create 64;
      next_rid = 0;
      give_ups = 0;
      fenced = 0;
      epoch_of = (fun _ -> 0);
      fenceable = (fun _ -> false);
      retry_base;
      retry_max;
      rng = Util.Rng.create seed;
      tracer = Engine.tracer (Network.engine network);
    }
  in
  for node = 0 to Network.nodes network - 1 do
    Network.set_handler network ~node (fun ~src env -> handle_envelope t ~node ~src env)
  done;
  t

let serve t ~node handler = t.servers.(node) <- Some handler

let set_fencing t ~epoch_of ~fenceable =
  t.epoch_of <- epoch_of;
  t.fenceable <- fenceable

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

let multicall t ?kind ~src ~dsts ~timeout req ~on_done =
  let rid = fresh_rid t in
  let p = { awaiting = dsts; replies = []; finished = false; complete = on_done } in
  if dsts = [] then on_done ~replies:[] ~missing:[]
  else begin
    Hashtbl.replace t.pending rid p;
    Network.multicast_batch t.network ?kind ~src ~dsts
      (Request { rid; payload = req; wants_reply = true; epoch = t.epoch_of req });
    let engine = Network.engine t.network in
    Engine.schedule engine ~delay:timeout (fun () ->
        if not p.finished then begin
          p.finished <- true;
          Hashtbl.remove t.pending rid;
          if Obs.Tracer.enabled t.tracer then
            Obs.Tracer.emit8 t.tracer ~time:(Engine.now engine)
              ~kind:Obs.Sem.rpc_timeout ~node:src ~txn:(-1) ~oid:(-1)
              ~a:(List.length p.awaiting)
              ~b:(match kind with Some k -> k | None -> Network.Kind.other)
              ~x:0.;
          p.complete ~replies:(List.rev p.replies) ~missing:p.awaiting
        end)
  end

let call t ?kind ~src ~dst ~timeout req ~on_reply ~on_timeout =
  multicall t ?kind ~src ~dsts:[ dst ] ~timeout req ~on_done:(fun ~replies ~missing ->
      match (replies, missing) with
      | [ (_, rep) ], _ -> on_reply rep
      | _, _ -> on_timeout ())

let cast t ?kind ~src ~dst req =
  let rid = fresh_rid t in
  Network.send t.network ?kind ~src ~dst
    (Request { rid; payload = req; wants_reply = false; epoch = t.epoch_of req })

(* One rid and one shared [Request] for the whole wave: fire-and-forget
   requests never enter the pending table, so per-destination rids bought
   nothing but allocations. *)
let multicast t ?kind ~src ~dsts req =
  let rid = fresh_rid t in
  Network.multicast_batch t.network ?kind ~src ~dsts
    (Request { rid; payload = req; wants_reply = false; epoch = t.epoch_of req })

(* At-least-once delivery for idempotent one-way messages: the request is
   re-sent until the server acknowledges it or [attempts] are exhausted
   (the destination may be genuinely dead).  Re-sends back off
   exponentially with seeded jitter (see [retry_base]) so a burst of
   losses does not hammer a congested link in lock-step; each re-send
   re-stamps the sender's current epoch.  The ack payload is ignored. *)
let acked_send t ?kind ?(attempts = 6) ~src ~dst ~timeout req =
  let give_up () =
    t.give_ups <- t.give_ups + 1;
    if Obs.Tracer.enabled t.tracer then
      Obs.Tracer.emit8 t.tracer
        ~time:(Engine.now (Network.engine t.network))
        ~kind:Obs.Sem.rpc_giveup ~node:src ~txn:(-1) ~oid:(-1) ~a:dst
        ~b:(match kind with Some k -> k | None -> Network.Kind.other)
        ~x:0.
  in
  let rec go ~left ~used =
    call t ?kind ~src ~dst ~timeout req
      ~on_reply:(fun _ -> ())
      ~on_timeout:(fun () ->
        if left <= 1 then give_up ()
        else if t.retry_base <= 0. then go ~left:(left - 1) ~used:(used + 1)
        else begin
          let capped =
            Float.min t.retry_max
              (t.retry_base *. Float.of_int (1 lsl Stdlib.min used 8))
          in
          let delay = capped *. (0.5 +. Util.Rng.float t.rng 1.0) in
          Engine.schedule (Network.engine t.network) ~delay (fun () ->
              go ~left:(left - 1) ~used:(used + 1))
        end)
  in
  go ~left:attempts ~used:0

let acked_multicast t ?kind ?attempts ~src ~dsts ~timeout req =
  List.iter (fun dst -> acked_send t ?kind ?attempts ~src ~dst ~timeout req) dsts

let give_ups t = t.give_ups
let reset_give_ups t = t.give_ups <- 0
let fenced t = t.fenced
let reset_fenced t = t.fenced <- 0
