type ('req, 'rep) envelope =
  | Request of { rid : int; payload : 'req; wants_reply : bool }
  | Reply of { rid : int; payload : 'rep }

type ('req, 'rep) pending = {
  mutable awaiting : int list;
  mutable replies : (int * 'rep) list;
  mutable finished : bool;
  complete : replies:(int * 'rep) list -> missing:int list -> unit;
}

type ('req, 'rep) t = {
  network : ('req, 'rep) envelope Network.t;
  servers : (src:int -> 'req -> 'rep option) option array;
  pending : (int, ('req, 'rep) pending) Hashtbl.t;
  mutable next_rid : int;
  mutable give_ups : int;
  tracer : Obs.Tracer.t; (* cached from the engine; Tracer.null when off *)
}

let handle_envelope t ~node ~src env =
  match env with
  | Request { rid; payload; wants_reply } ->
    begin
      match t.servers.(node) with
      | None -> ()
      | Some server ->
        begin
          match server ~src payload with
          | Some rep when wants_reply ->
            Network.send t.network ~kind:Network.Kind.reply ~src:node ~dst:src
              (Reply { rid; payload = rep })
          | Some _ | None -> ()
        end
    end
  | Reply { rid; payload } ->
    begin
      match Hashtbl.find_opt t.pending rid with
      | None -> () (* request already completed or timed out *)
      | Some p ->
        if List.mem src p.awaiting then begin
          p.awaiting <- List.filter (fun n -> n <> src) p.awaiting;
          p.replies <- (src, payload) :: p.replies;
          if p.awaiting = [] then begin
            p.finished <- true;
            Hashtbl.remove t.pending rid;
            p.complete ~replies:(List.rev p.replies) ~missing:[]
          end
        end
    end

let create ~network () =
  let t =
    {
      network;
      servers = Array.make (Network.nodes network) None;
      pending = Hashtbl.create 64;
      next_rid = 0;
      give_ups = 0;
      tracer = Engine.tracer (Network.engine network);
    }
  in
  for node = 0 to Network.nodes network - 1 do
    Network.set_handler network ~node (fun ~src env -> handle_envelope t ~node ~src env)
  done;
  t

let serve t ~node handler = t.servers.(node) <- Some handler

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

let multicall t ?kind ~src ~dsts ~timeout req ~on_done =
  let rid = fresh_rid t in
  let p = { awaiting = dsts; replies = []; finished = false; complete = on_done } in
  if dsts = [] then on_done ~replies:[] ~missing:[]
  else begin
    Hashtbl.replace t.pending rid p;
    Network.multicast_batch t.network ?kind ~src ~dsts
      (Request { rid; payload = req; wants_reply = true });
    let engine = Network.engine t.network in
    Engine.schedule engine ~delay:timeout (fun () ->
        if not p.finished then begin
          p.finished <- true;
          Hashtbl.remove t.pending rid;
          if Obs.Tracer.enabled t.tracer then
            Obs.Tracer.emit8 t.tracer ~time:(Engine.now engine)
              ~kind:Obs.Sem.rpc_timeout ~node:src ~txn:(-1) ~oid:(-1)
              ~a:(List.length p.awaiting)
              ~b:(match kind with Some k -> k | None -> Network.Kind.other)
              ~x:0.;
          p.complete ~replies:(List.rev p.replies) ~missing:p.awaiting
        end)
  end

let call t ?kind ~src ~dst ~timeout req ~on_reply ~on_timeout =
  multicall t ?kind ~src ~dsts:[ dst ] ~timeout req ~on_done:(fun ~replies ~missing ->
      match (replies, missing) with
      | [ (_, rep) ], _ -> on_reply rep
      | _, _ -> on_timeout ())

let cast t ?kind ~src ~dst req =
  let rid = fresh_rid t in
  Network.send t.network ?kind ~src ~dst (Request { rid; payload = req; wants_reply = false })

(* One rid and one shared [Request] for the whole wave: fire-and-forget
   requests never enter the pending table, so per-destination rids bought
   nothing but allocations. *)
let multicast t ?kind ~src ~dsts req =
  let rid = fresh_rid t in
  Network.multicast_batch t.network ?kind ~src ~dsts
    (Request { rid; payload = req; wants_reply = false })

(* At-least-once delivery for idempotent one-way messages: the request is
   re-sent until the server acknowledges it or [attempts] are exhausted
   (the destination may be genuinely dead).  The ack payload is ignored. *)
let rec acked_send t ?kind ?(attempts = 6) ~src ~dst ~timeout req =
  call t ?kind ~src ~dst ~timeout req
    ~on_reply:(fun _ -> ())
    ~on_timeout:(fun () ->
      if attempts > 1 then
        acked_send t ?kind ~attempts:(attempts - 1) ~src ~dst ~timeout req
      else begin
        t.give_ups <- t.give_ups + 1;
        if Obs.Tracer.enabled t.tracer then
          Obs.Tracer.emit8 t.tracer
            ~time:(Engine.now (Network.engine t.network))
            ~kind:Obs.Sem.rpc_giveup ~node:src ~txn:(-1) ~oid:(-1) ~a:dst
            ~b:(match kind with Some k -> k | None -> Network.Kind.other)
            ~x:0.
      end)

let acked_multicast t ?kind ?attempts ~src ~dsts ~timeout req =
  List.iter (fun dst -> acked_send t ?kind ?attempts ~src ~dst ~timeout req) dsts

let give_ups t = t.give_ups
let reset_give_ups t = t.give_ups <- 0
