type event = { time : float; seq : int; action : unit -> unit }

module Event_order = struct
  type t = event

  let compare a b =
    let c = Float.compare a.time b.time in
    if c <> 0 then c else Int.compare a.seq b.seq
end

module Queue = Util.Heap.Make (Event_order)

type t = {
  queue : Queue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  tracer : Obs.Tracer.t;
}

let create ?(tracer = Obs.Tracer.null) () =
  { queue = Queue.create (); clock = 0.; next_seq = 0; processed = 0; tracer }

let now t = t.clock
let tracer t = t.tracer

let schedule_at t ~time action =
  let time = Stdlib.max time t.clock in
  Queue.add t.queue { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay action = schedule_at t ~time:(t.clock +. Stdlib.max 0. delay) action

(* The dispatch loop is the simulator's innermost hot path: one call per
   event, millions per run.  [unsafe_pop]/[unsafe_top] keep it free of
   option allocations (the [is_empty] guard restores safety). *)
let exec_next t =
  let ev = Queue.unsafe_pop t.queue in
  t.clock <- ev.time;
  t.processed <- t.processed + 1;
  ev.action ()

let step t =
  if Queue.is_empty t.queue then false
  else begin
    exec_next t;
    true
  end

let run ?until t =
  match until with
  | None -> while not (Queue.is_empty t.queue) do exec_next t done
  | Some limit ->
    while
      (not (Queue.is_empty t.queue)) && (Queue.unsafe_top t.queue).time <= limit
    do
      exec_next t
    done;
    if t.clock < limit then t.clock <- limit

let pending t = Queue.length t.queue
let events_processed t = t.processed
