(* Events are pooled mutable records: the heap holds references, and a
   record popped by the dispatch loop goes onto a free stack to be reused
   by the next [schedule].  Steady-state scheduling therefore allocates
   nothing — the closure (when the caller passes a fresh one) is the only
   per-event allocation left, and the network layer avoids even that with
   its reusable delivery envelopes. *)
type event = {
  mutable time : float;
  mutable seq : int;
  mutable action : unit -> unit;
}

module Event_order = struct
  type t = event

  let compare a b =
    let c = Float.compare a.time b.time in
    if c <> 0 then c else Int.compare a.seq b.seq
end

module Queue = Util.Heap.Make (Event_order)

let nop () = ()

type t = {
  queue : Queue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  tracer : Obs.Tracer.t;
  mutable free : event array; (* stack of recycled event records *)
  mutable free_len : int;
}

let create ?(tracer = Obs.Tracer.null) () =
  {
    queue = Queue.create ();
    clock = 0.;
    next_seq = 0;
    processed = 0;
    tracer;
    free = [||];
    free_len = 0;
  }

let now t = t.clock
let tracer t = t.tracer

let acquire t ~time ~seq ~action =
  if t.free_len > 0 then begin
    let n = t.free_len - 1 in
    t.free_len <- n;
    let ev = t.free.(n) in
    ev.time <- time;
    ev.seq <- seq;
    ev.action <- action;
    ev
  end
  else { time; seq; action }

let release t ev =
  ev.action <- nop;
  (* don't retain the closure through the pool *)
  let cap = Array.length t.free in
  if t.free_len = cap then begin
    let cap' = if cap = 0 then 64 else 2 * cap in
    let grown = Array.make cap' ev in
    Array.blit t.free 0 grown 0 cap;
    t.free <- grown
  end;
  t.free.(t.free_len) <- ev;
  t.free_len <- t.free_len + 1

let reserve_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let schedule_at_seq t ~time ~seq action =
  let time = Stdlib.max time t.clock in
  Queue.add t.queue (acquire t ~time ~seq ~action)

let schedule_at t ~time action = schedule_at_seq t ~time ~seq:(reserve_seq t) action
let schedule t ~delay action = schedule_at t ~time:(t.clock +. Stdlib.max 0. delay) action

(* The dispatch loop is the simulator's innermost hot path: one call per
   event, millions per run.  [unsafe_pop]/[unsafe_top] keep it free of
   option allocations (the [is_empty] guard restores safety).  The record
   is released to the pool before the action runs, so an action that
   schedules immediately reuses it — fields are read out first. *)
let exec_next t =
  let ev = Queue.unsafe_pop t.queue in
  let action = ev.action in
  t.clock <- ev.time;
  t.processed <- t.processed + 1;
  release t ev;
  action ()

let step t =
  if Queue.is_empty t.queue then false
  else begin
    exec_next t;
    true
  end

let run ?until t =
  match until with
  | None -> while not (Queue.is_empty t.queue) do exec_next t done
  | Some limit ->
    while
      (not (Queue.is_empty t.queue)) && (Queue.unsafe_top t.queue).time <= limit
    do
      exec_next t
    done;
    if t.clock < limit then t.clock <- limit

let pending t = Queue.length t.queue
let events_processed t = t.processed
