(** Discrete-event simulation engine.

    The engine owns virtual time (in milliseconds) and a priority queue of
    events.  Everything in the reproduction — network delivery, node
    processing, client think time, failure injection — is an event.  Events
    scheduled for the same instant fire in scheduling order, which together
    with the seeded {!Util.Rng} makes every experiment fully deterministic. *)

type t

val create : ?tracer:Obs.Tracer.t -> unit -> t
(** [tracer] (default {!Obs.Tracer.null}, i.e. disabled) is the structured
    event log every component built on this engine reports into.  The engine
    itself only carries it — components cache it at construction — so
    tracing adds no events, no RNG draws and no time perturbation: runs are
    byte-identical with tracing on or off. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val tracer : t -> Obs.Tracer.t
(** The tracer supplied at {!create} — the engine is the single place the
    whole component stack fetches it from. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. max 0. delay]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past fire immediately (at [now]). *)

val reserve_seq : t -> int
(** Claim the next tie-break sequence number without scheduling anything.
    Events at equal times fire in ascending [seq] order, so a component
    that wants to materialise events lazily (the network's fan-out
    batching) can reserve the seqs its expansion will use up front and
    keep the firing order byte-identical to eager scheduling. *)

val schedule_at_seq : t -> time:float -> seq:int -> (unit -> unit) -> unit
(** [schedule_at] with an explicit tie-break seq, previously claimed via
    {!reserve_seq}.  Reusing a seq already in the queue is not checked —
    callers own the discipline. *)

val run : ?until:float -> t -> unit
(** Drain the event queue, advancing virtual time.  With [until], stops once
    the next event lies strictly beyond that time (the clock is then set to
    [until]). *)

val step : t -> bool
(** Execute exactly one event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events executed since creation. *)
