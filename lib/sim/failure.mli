(** Crash, recovery, and (imperfect) failure-detection injection.

    Two node states are tracked separately:

    - {e killed}: the node is actually down — the network drops its traffic;
    - {e suspected}: the failure detector believes it is down — quorum
      construction avoids it.

    A failure scheduled at time [t] kills the node at [t] and raises the
    suspicion at [t + detection_delay (+ jitter)], modelling a
    group-membership service such as the JGroups view changes the paper's
    testbed relied on.  The detector may also be {e wrong}: a false
    suspicion marks a live node suspected for a while, and recovery events
    let killed nodes come back (higher layers then run state transfer
    before re-admitting them).

    Use [is_killed] for ground truth and [is_suspected] for the membership
    view; conflating the two is exactly the bug class this split exists to
    prevent. *)

type t

val create :
  engine:Engine.t ->
  ?detection_delay:float ->
  ?detection_jitter:float ->
  ?seed:int ->
  kill:(int -> unit) ->
  unit ->
  t
(** [kill] is invoked at the instant of failure (harness wires it to
    {!Network.fail}).  [detection_delay] defaults to 50 ms; each detection
    additionally lags by a uniform draw from [[0, detection_jitter)]. *)

val on_detect : t -> (int -> unit) -> unit
(** Register a subscriber called (with the suspected node) once a failure
    is detected — or falsely suspected.  Subscribers registered after
    detection are not back-filled. *)

val on_recover : t -> (node:int -> was_killed:bool -> unit) -> unit
(** Register a subscriber called when a node comes back: after a scheduled
    recovery ([was_killed = true] — run state transfer before re-admission)
    or when a false suspicion clears ([was_killed = false] — the node never
    lost state). *)

val schedule : t -> at:float -> node:int -> unit
(** Schedule a fail-stop of [node] at absolute time [at]. *)

val schedule_recovery : t -> at:float -> node:int -> unit
(** Schedule [node] to restart at [at].  No-op if it is not killed then.
    Recovery subscribers are responsible for network revival, catch-up and
    quorum re-admission. *)

val schedule_false_suspicion : ?clear_after:float -> t -> at:float -> node:int -> unit
(** At [at], wrongly suspect the (live) [node]; detection subscribers fire
    as for a real failure.  If [clear_after] is given, the mistake is
    noticed that much later and recovery subscribers fire with
    [was_killed = false].  No-op if the node is already killed or
    suspected at [at]. *)

val clear_suspicion : t -> int -> unit
(** Forget a suspicion — called by the layer that re-admits the node once
    it is known good (e.g. after state transfer). *)

val is_killed : t -> int -> bool
(** Ground truth: the node is actually down. *)

val is_suspected : t -> int -> bool
(** Detector view: the node is believed down (possibly wrongly). *)

val killed_nodes : t -> int list
(** Actually-down nodes, ascending. *)

val suspected_nodes : t -> int list
(** Suspected nodes, ascending. *)

val false_suspicions : t -> int
(** How many false suspicions fired so far. *)
