(** Simulated message-passing network with per-node service queues.

    Delivery of a message costs the topology's one-way latency plus jitter;
    the receiving node then *processes* messages one at a time, each taking
    [service_time] — so a node flooded with requests becomes a genuine
    bottleneck.  That queueing effect is what produces the paper's Fig. 10
    shape (throughput first rises as failures spread the read load, then
    degrades as quorums grow).

    Messages to failed nodes are silently dropped, as are messages sent by
    failed nodes; higher layers recover through RPC timeouts.

    An injectable fault model (global, or per-link overrides) adds
    probabilistic loss, duplication and latency spikes, plus symmetric
    partitions with explicit heal.  Fault draws come from a dedicated RNG
    stream, so enabling the model does not perturb the delivery-jitter
    stream: runs with the model off are bit-identical to the pre-fault
    simulator. *)

type 'msg t

(** Interned message-kind labels for per-kind accounting.  Interning costs
    a (mutex-protected) hashtable lookup; per-message counting is then a
    plain array increment.  Intern once at module initialisation or setup
    time and reuse the token — never per message.

    The registry is shared with the tracer's event kinds ({!Obs.Kind}), so
    a message-kind token stored in a trace event payload resolves with the
    same [name] function. *)
module Kind : sig
  type t = Obs.Kind.t

  val intern : string -> t
  (** Thread-safe and idempotent: the same name always yields the same
      token. *)

  val name : t -> string

  val registered : unit -> int
  (** Kinds interned so far — sizes per-kind counter arrays. *)

  val other : t
  (** The default label of unlabelled messages. *)

  val reply : t
  (** The label RPC replies are accounted under. *)
end

type fault_plan = {
  drop : float;  (** per-message loss probability *)
  duplicate : float;  (** probability a message is delivered twice *)
  spike_prob : float;  (** probability of a latency spike *)
  spike_factor : float;  (** latency multiplier during a spike *)
}

val no_faults : fault_plan
(** Zero probabilities (spike factor 10, inert while [spike_prob = 0]). *)

val create :
  engine:Engine.t ->
  topology:Topology.t ->
  ?service_time:float ->
  ?jitter:float ->
  ?seed:int ->
  ?batch_fanout:bool ->
  unit ->
  'msg t
(** [service_time] (default 0.25 ms) is the per-message processing cost at
    the receiver; [jitter] (default 0.1) is the relative uniform jitter
    applied to each delivery latency (0.1 = up to ±10%).  [batch_fanout]
    (default [true]) lets {!multicast_batch} coalesce a fan-out wave into
    one engine event; [false] expands it eagerly through {!send} — the two
    are byte-identical per seed (the determinism suite pins this), the
    toggle exists for that test and for A/B measurements. *)

val engine : 'msg t -> Engine.t
val topology : 'msg t -> Topology.t
val nodes : 'msg t -> int

val set_handler : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Install the message handler of [node].  At most one handler per node;
    re-installation replaces. *)

val send : 'msg t -> ?kind:Kind.t -> src:int -> dst:int -> 'msg -> unit
(** Enqueue one message.  [kind] labels the message for accounting
    (e.g. the interned ["read_req"]); unlabeled messages count as
    {!Kind.other}. *)

val multicast : 'msg t -> ?kind:Kind.t -> src:int -> dsts:int list -> 'msg -> unit
(** [send] to every destination (self included if listed). *)

val multicast_batch :
  'msg t -> ?kind:Kind.t -> src:int -> dsts:int list -> 'msg -> unit
(** Like {!multicast}, but the whole fan-out wave costs one resident
    engine event (plus one per actual handler invocation) instead of one
    per destination: per-destination delivery times, fault draws,
    accounting and traces are all fixed eagerly at multicast time — in
    [dsts] order, exactly as the [send] loop would have — and only the
    engine events are materialised lazily, each firing with the (time,
    seq) the eager loop would have used.  Byte-identical to {!multicast}
    per seed; see {!create}'s [batch_fanout] to fall back to the eager
    expansion. *)

val set_batch_fanout : 'msg t -> bool -> unit
(** Flip the {!multicast_batch} strategy mid-run (testing hook). *)

val batch_fanout : 'msg t -> bool

val fail : 'msg t -> int -> unit
(** Mark a node fail-stop: it stops sending, receiving, and processing. *)

val revive : 'msg t -> int -> unit
val is_failed : 'msg t -> int -> bool
val alive_nodes : 'msg t -> int list

val set_faults : 'msg t -> fault_plan -> unit
(** Install the global fault plan (applies to every remote link without a
    per-link override).  Self-sends are never subjected to faults. *)

val faults : 'msg t -> fault_plan

val set_link_faults : 'msg t -> a:int -> b:int -> fault_plan -> unit
(** Override the plan for the (symmetric) link between [a] and [b]. *)

val clear_link_faults : 'msg t -> a:int -> b:int -> unit

val partition : 'msg t -> int list list -> unit
(** Partition the network into the given groups; nodes not named in any
    group form one implicit extra group.  Messages crossing a boundary are
    dropped (and counted) in both directions until {!heal}.  A new call
    replaces the previous partition. *)

val heal : 'msg t -> unit
val partitioned : 'msg t -> bool

val reachable : 'msg t -> src:int -> dst:int -> bool
(** Whether the current partition (if any) lets [src] reach [dst]. *)

val messages_sent : 'msg t -> int
(** Total *remote* messages sent (self-sends are not counted, matching the
    paper's accounting of network messages). *)

val messages_by_kind : 'msg t -> (string * int) list
(** Remote message counts grouped by [kind], sorted by kind. *)

val messages_dropped : 'msg t -> int
(** Messages lost to the fault model (probabilistic loss or partitions);
    fail-stop drops are not counted here. *)

val messages_duplicated : 'msg t -> int

val reset_counters : 'msg t -> unit
(** Zero the message counters (used to exclude warm-up from measurements). *)
