(** Request/reply and quorum-collect messaging on top of {!Network}.

    The DTM protocols are built from three communication patterns:
    - [call]: unicast request, one reply (TFA-style);
    - [multicall]: multicast to a quorum, collect *all* replies or time out
      with the missing members identified (QR read and commit requests);
    - [cast]: one-way message (commit apply / release).

    Servers are synchronous: a handler maps a request to an optional reply,
    computed during the node's service slot.  Replies travel back over the
    same network (and therefore pay latency, jitter and queueing again). *)

type ('req, 'rep) envelope
(** The wire type: build a {!Network.t} carrying [('req,'rep) envelope]
    messages and hand it to {!create}. *)

type ('req, 'rep) t

val create : network:('req, 'rep) envelope Network.t -> unit -> ('req, 'rep) t

val serve : ('req, 'rep) t -> node:int -> (src:int -> 'req -> 'rep option) -> unit
(** Install the request handler of [node]; [None] sends no reply. *)

val call :
  ('req, 'rep) t ->
  ?kind:Network.Kind.t ->
  src:int ->
  dst:int ->
  timeout:float ->
  'req ->
  on_reply:('rep -> unit) ->
  on_timeout:(unit -> unit) ->
  unit

val multicall :
  ('req, 'rep) t ->
  ?kind:Network.Kind.t ->
  src:int ->
  dsts:int list ->
  timeout:float ->
  'req ->
  on_done:(replies:(int * 'rep) list -> missing:int list -> unit) ->
  unit
(** Fire [on_done] as soon as every destination replied ([missing = []]),
    or at [timeout] with whatever arrived.  [on_done] is called exactly
    once.  Replies arriving after the timeout are discarded. *)

val cast : ('req, 'rep) t -> ?kind:Network.Kind.t -> src:int -> dst:int -> 'req -> unit
(** One-way request; any reply the server produces is dropped. *)

val multicast :
  ('req, 'rep) t -> ?kind:Network.Kind.t -> src:int -> dsts:int list -> 'req -> unit

val acked_send :
  ('req, 'rep) t ->
  ?kind:Network.Kind.t ->
  ?attempts:int ->
  src:int ->
  dst:int ->
  timeout:float ->
  'req ->
  unit
(** At-least-once delivery for idempotent one-way messages: re-send until
    the server acknowledges (any reply counts) or [attempts] (default 6)
    are exhausted — the destination may be genuinely dead.  Duplicates are
    possible by construction; the request must tolerate them. *)

val acked_multicast :
  ('req, 'rep) t ->
  ?kind:Network.Kind.t ->
  ?attempts:int ->
  src:int ->
  dsts:int list ->
  timeout:float ->
  'req ->
  unit

val give_ups : ('req, 'rep) t -> int
(** How many {!acked_send} deliveries exhausted their retransmission budget
    without an acknowledgement.  Each is a one-way message that may never
    have reached its (possibly dead) destination — visible here instead of
    failing silently. *)

val reset_give_ups : ('req, 'rep) t -> unit
