(** Request/reply and quorum-collect messaging on top of {!Network}.

    The DTM protocols are built from three communication patterns:
    - [call]: unicast request, one reply (TFA-style);
    - [multicall]: multicast to a quorum, collect *all* replies or time out
      with the missing members identified (QR read and commit requests);
    - [cast]: one-way message (commit apply / release).

    Servers are synchronous: a handler maps a request to an optional reply,
    computed during the node's service slot.  Replies travel back over the
    same network (and therefore pay latency, jitter and queueing again).

    Every envelope carries a view epoch stamped at send time — the epoch of
    the shard the request's objects live on (one shard: the cluster-wide
    epoch); with {!set_fencing} installed, stale-epoch requests and replies
    are dropped — the membership fence for epoch-based reconfiguration.
    Without it all epochs are 0 and behaviour is unchanged. *)

type ('req, 'rep) envelope
(** The wire type: build a {!Network.t} carrying [('req,'rep) envelope]
    messages and hand it to {!create}. *)

type ('req, 'rep) t

val create :
  ?seed:int ->
  ?retry_base:float ->
  ?retry_max:float ->
  network:('req, 'rep) envelope Network.t ->
  unit ->
  ('req, 'rep) t
(** [retry_base] / [retry_max] shape {!acked_send}'s retransmission
    backoff: re-send k waits [min (retry_max, retry_base * 2^k)] ms with
    seeded jitter drawn from [seed].  The default [retry_base = 0.] retries
    immediately (the historical fixed-interval behaviour), drawing no
    randomness. *)

val serve : ('req, 'rep) t -> node:int -> (src:int -> 'req -> 'rep option) -> unit
(** Install the request handler of [node]; [None] sends no reply. *)

val set_fencing :
  ('req, 'rep) t -> epoch_of:('req -> int) -> fenceable:('req -> bool) -> unit
(** Arm epoch fencing: outgoing requests are stamped with
    [epoch_of payload] — the current view epoch of the shard the request's
    objects live on (a single shard degenerates to the cluster-wide
    epoch).  An incoming request whose stamp is older than the current
    [epoch_of payload] is dropped when [fenceable] accepts it
    (quorum-evidence traffic — catch-up messages like [Sync_req] should
    answer regardless of the asker's view).  Replies inherit their
    request's epoch context and stale replies are always dropped: the
    caller's round times out and its retry re-stamps the current epoch. *)

val call :
  ('req, 'rep) t ->
  ?kind:Network.Kind.t ->
  src:int ->
  dst:int ->
  timeout:float ->
  'req ->
  on_reply:('rep -> unit) ->
  on_timeout:(unit -> unit) ->
  unit

val multicall :
  ('req, 'rep) t ->
  ?kind:Network.Kind.t ->
  src:int ->
  dsts:int list ->
  timeout:float ->
  'req ->
  on_done:(replies:(int * 'rep) list -> missing:int list -> unit) ->
  unit
(** Fire [on_done] as soon as every destination replied ([missing = []]),
    or at [timeout] with whatever arrived.  [on_done] is called exactly
    once.  Replies arriving after the timeout are discarded. *)

val cast : ('req, 'rep) t -> ?kind:Network.Kind.t -> src:int -> dst:int -> 'req -> unit
(** One-way request; any reply the server produces is dropped. *)

val multicast :
  ('req, 'rep) t -> ?kind:Network.Kind.t -> src:int -> dsts:int list -> 'req -> unit

val acked_send :
  ('req, 'rep) t ->
  ?kind:Network.Kind.t ->
  ?attempts:int ->
  src:int ->
  dst:int ->
  timeout:float ->
  'req ->
  unit
(** At-least-once delivery for idempotent one-way messages: re-send until
    the server acknowledges (any reply counts) or [attempts] (default 6)
    are exhausted — the destination may be genuinely dead.  Re-sends back
    off exponentially with seeded jitter (see {!create}'s [retry_base]).
    Duplicates are possible by construction; the request must tolerate
    them. *)

val acked_multicast :
  ('req, 'rep) t ->
  ?kind:Network.Kind.t ->
  ?attempts:int ->
  src:int ->
  dsts:int list ->
  timeout:float ->
  'req ->
  unit

val give_ups : ('req, 'rep) t -> int
(** How many {!acked_send} deliveries exhausted their retransmission budget
    without an acknowledgement.  Each is a one-way message that may never
    have reached its (possibly dead) destination — visible here instead of
    failing silently. *)

val reset_give_ups : ('req, 'rep) t -> unit

val fenced : ('req, 'rep) t -> int
(** Stale-epoch envelopes dropped by the membership fence since creation
    (or the last {!reset_fenced}). *)

val reset_fenced : ('req, 'rep) t -> unit
