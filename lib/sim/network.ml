(* Simulated message-passing network with an injectable fault model.

   Faults are drawn from a dedicated RNG stream ([fault_rng]) so that runs
   with the fault model disabled consume exactly the same random numbers as
   before the model existed — seeds stay comparable across experiments. *)

(* Interned message-kind labels.  Message accounting runs once per remote
   send — the hottest counter in the simulator — so kinds are interned to
   dense integer ids at module-load / setup time and counted with an array
   increment instead of a per-message string-hashtable lookup.

   The registry itself now lives in [Obs.Kind] (global: kinds are protocol
   vocabulary, not per-network state; mutex-protected so parallel harness
   domains can intern concurrently).  Sharing the registry with the tracer
   means network events can stash a message-kind token in a trace payload
   slot and any consumer resolves it with the same [name]. *)
module Kind = struct
  include Obs.Kind

  let other = intern "other"
  let reply = intern "reply"
end

type fault_plan = {
  drop : float;  (* per-message loss probability *)
  duplicate : float;  (* probability a message is delivered twice *)
  spike_prob : float;  (* probability of a latency spike *)
  spike_factor : float;  (* latency multiplier during a spike *)
}

let no_faults = { drop = 0.; duplicate = 0.; spike_prob = 0.; spike_factor = 10. }

let faulty plan =
  plan.drop > 0. || plan.duplicate > 0. || plan.spike_prob > 0.

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  service_time : float;
  jitter : float;
  rng : Util.Rng.t;
  fault_rng : Util.Rng.t;
  handlers : (src:int -> 'msg -> unit) option array;
  busy_until : float array;
  failed : bool array;
  mutable faults : fault_plan;
  link_faults : (int * int, fault_plan) Hashtbl.t;
  mutable groups : int array option; (* partition: group id per node *)
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable kind_counts : int array; (* indexed by Kind.t; grown on demand *)
  tracer : Obs.Tracer.t; (* cached from the engine; Tracer.null when off *)
}

let create ~engine ~topology ?(service_time = 0.25) ?(jitter = 0.1) ?(seed = 7) () =
  let n = Topology.nodes topology in
  {
    engine;
    tracer = Engine.tracer engine;
    topology;
    service_time;
    jitter;
    rng = Util.Rng.create seed;
    fault_rng = Util.Rng.create (seed * 31 + 11);
    handlers = Array.make n None;
    busy_until = Array.make n 0.;
    failed = Array.make n false;
    faults = no_faults;
    link_faults = Hashtbl.create 8;
    groups = None;
    sent = 0;
    dropped = 0;
    duplicated = 0;
    kind_counts = Array.make (Kind.registered ()) 0;
  }

let engine t = t.engine
let topology t = t.topology
let nodes t = Topology.nodes t.topology
let set_handler t ~node handler = t.handlers.(node) <- Some handler
let fail t node = t.failed.(node) <- true
let revive t node = t.failed.(node) <- false
let is_failed t node = t.failed.(node)

let alive_nodes t =
  let acc = ref [] in
  for i = nodes t - 1 downto 0 do
    if not t.failed.(i) then acc := i :: !acc
  done;
  !acc

(* --- fault configuration ----------------------------------------------- *)

let set_faults t plan = t.faults <- plan
let faults t = t.faults

let link_key a b = (Stdlib.min a b, Stdlib.max a b)
let set_link_faults t ~a ~b plan = Hashtbl.replace t.link_faults (link_key a b) plan
let clear_link_faults t ~a ~b = Hashtbl.remove t.link_faults (link_key a b)

(* Symmetric partition into [groups]; nodes not named in any group form one
   implicit extra group (so [partition t [[0;1]]] cuts {0,1} off from the
   rest).  Messages crossing a group boundary are dropped in both
   directions until [heal]. *)
let partition t groups =
  let assignment = Array.make (nodes t) (-1) in
  List.iteri
    (fun gid members ->
      List.iter
        (fun node ->
          if node >= 0 && node < nodes t then assignment.(node) <- gid)
        members)
    groups;
  let implicit = List.length groups in
  Array.iteri (fun node gid -> if gid < 0 then assignment.(node) <- implicit) assignment;
  t.groups <- Some assignment

let heal t = t.groups <- None
let partitioned t = Option.is_some t.groups

let reachable t ~src ~dst =
  match t.groups with
  | None -> true
  | Some assignment -> src = dst || assignment.(src) = assignment.(dst)

let plan_for t ~src ~dst =
  match Hashtbl.find_opt t.link_faults (link_key src dst) with
  | Some plan -> plan
  | None -> t.faults

(* --- accounting --------------------------------------------------------- *)

let count_kind t kind =
  if kind >= Array.length t.kind_counts then begin
    (* A kind interned after this network was created (rare): grow once. *)
    let bigger = Array.make (Kind.registered ()) 0 in
    Array.blit t.kind_counts 0 bigger 0 (Array.length t.kind_counts);
    t.kind_counts <- bigger
  end;
  t.kind_counts.(kind) <- t.kind_counts.(kind) + 1

let messages_sent t = t.sent
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated

let messages_by_kind t =
  let acc = ref [] in
  Array.iteri
    (fun kind n -> if n > 0 then acc := (Kind.name kind, n) :: !acc)
    t.kind_counts;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let reset_counters t =
  t.sent <- 0;
  t.dropped <- 0;
  t.duplicated <- 0;
  Array.fill t.kind_counts 0 (Array.length t.kind_counts) 0

(* --- delivery ----------------------------------------------------------- *)

(* Tracing emits from the fault/jitter decision points but never draws from
   an RNG stream or schedules an event, so enabling it cannot perturb the
   simulation — traces are byte-identical per seed and runs byte-identical
   with tracing on or off. *)
let trace_net t ~kind ~ekind ~src ~dst =
  if Obs.Tracer.enabled t.tracer then
    Obs.Tracer.emit t.tracer ~time:(Engine.now t.engine) ~kind:ekind ~node:src
      ~a:dst ~b:kind ()

let deliver t ~kind ~src ~dst msg =
  if not t.failed.(dst) then begin
    (* FIFO service queue: processing begins when the node is free. *)
    let now = Engine.now t.engine in
    let start = Stdlib.max now t.busy_until.(dst) in
    let finish = start +. t.service_time in
    t.busy_until.(dst) <- finish;
    Engine.schedule_at t.engine ~time:finish (fun () ->
        if not t.failed.(dst) then
          match t.handlers.(dst) with
          | Some handler ->
            if src <> dst && Obs.Tracer.enabled t.tracer then
              Obs.Tracer.emit t.tracer ~time:(Engine.now t.engine)
                ~kind:Obs.Sem.net_deliver ~node:dst ~a:src ~b:kind ();
            handler ~src msg
          | None -> ())
  end

let send t ?(kind = Kind.other) ~src ~dst msg =
  if not t.failed.(src) then begin
    if src <> dst then begin
      t.sent <- t.sent + 1;
      count_kind t kind;
      trace_net t ~kind ~ekind:Obs.Sem.net_send ~src ~dst
    end;
    let base = Topology.latency t.topology ~src ~dst in
    let jitter = base *. t.jitter *. Util.Rng.float t.rng 1.0 in
    let delay = base +. jitter in
    if src = dst then
      Engine.schedule t.engine ~delay (fun () -> deliver t ~kind ~src ~dst msg)
    else if not (reachable t ~src ~dst) then begin
      t.dropped <- t.dropped + 1;
      trace_net t ~kind ~ekind:Obs.Sem.net_drop ~src ~dst
    end
    else begin
      let plan = plan_for t ~src ~dst in
      if not (faulty plan) then
        Engine.schedule t.engine ~delay (fun () -> deliver t ~kind ~src ~dst msg)
      else if plan.drop > 0. && Util.Rng.chance t.fault_rng plan.drop then begin
        t.dropped <- t.dropped + 1;
        trace_net t ~kind ~ekind:Obs.Sem.net_drop ~src ~dst
      end
      else begin
        let delay =
          if plan.spike_prob > 0. && Util.Rng.chance t.fault_rng plan.spike_prob then
            delay *. plan.spike_factor
          else delay
        in
        Engine.schedule t.engine ~delay (fun () -> deliver t ~kind ~src ~dst msg);
        if plan.duplicate > 0. && Util.Rng.chance t.fault_rng plan.duplicate then begin
          t.duplicated <- t.duplicated + 1;
          trace_net t ~kind ~ekind:Obs.Sem.net_dup ~src ~dst;
          let extra = base *. (0.5 +. Util.Rng.float t.fault_rng 1.0) in
          Engine.schedule t.engine ~delay:(delay +. extra) (fun () ->
              deliver t ~kind ~src ~dst msg)
        end
      end
    end
  end

let multicast t ?kind ~src ~dsts msg =
  List.iter (fun dst -> send t ?kind ~src ~dst msg) dsts
