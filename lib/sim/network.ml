(* Simulated message-passing network with an injectable fault model.

   Faults are drawn from a dedicated RNG stream ([fault_rng]) so that runs
   with the fault model disabled consume exactly the same random numbers as
   before the model existed — seeds stay comparable across experiments. *)

(* Interned message-kind labels.  Message accounting runs once per remote
   send — the hottest counter in the simulator — so kinds are interned to
   dense integer ids at module-load / setup time and counted with an array
   increment instead of a per-message string-hashtable lookup.

   The registry itself now lives in [Obs.Kind] (global: kinds are protocol
   vocabulary, not per-network state; mutex-protected so parallel harness
   domains can intern concurrently).  Sharing the registry with the tracer
   means network events can stash a message-kind token in a trace payload
   slot and any consumer resolves it with the same [name]. *)
module Kind = struct
  include Obs.Kind

  let other = intern "other"
  let reply = intern "reply"
end

type fault_plan = {
  drop : float;  (* per-message loss probability *)
  duplicate : float;  (* probability a message is delivered twice *)
  spike_prob : float;  (* probability of a latency spike *)
  spike_factor : float;  (* latency multiplier during a spike *)
}

let no_faults = { drop = 0.; duplicate = 0.; spike_prob = 0.; spike_factor = 10. }

let faulty plan =
  plan.drop > 0. || plan.duplicate > 0. || plan.spike_prob > 0.

(* Pooled delivery envelope: one per in-flight message, reused through a
   free stack.  An envelope carries its own [e_fire] closure (allocated
   once, when the record is first created), so steady-state sends schedule
   pooled engine events pointing at pooled envelopes — no per-message
   closure.  [e_phase] defunctionalizes the two hops of a delivery:
   [`Arrive`] (the message reaches [e_dst] and queues for service) and
   [`Handle`] (service completes and the handler runs). *)
type 'msg envelope = {
  mutable e_kind : int;
  mutable e_src : int;
  mutable e_dst : int;
  mutable e_msg : 'msg option;
  mutable e_phase : int; (* 0 = arrive at dst; 1 = invoke handler *)
  mutable e_fire : unit -> unit; (* set at creation, references this record *)
}

(* Pooled fan-out wave (see [multicast_batch]): the per-destination
   delivery times, engine seqs and destinations of one multicast, sorted
   by firing order.  Exactly one engine event per wave is resident at a
   time; firing entry [w_pos] re-arms the wave for entry [w_pos + 1]. *)
type 'msg wave = {
  mutable w_kind : int;
  mutable w_src : int;
  mutable w_msg : 'msg option;
  mutable w_times : float array;
  mutable w_seqs : int array;
  mutable w_dsts : int array;
  mutable w_len : int;
  mutable w_pos : int;
  mutable w_fire : unit -> unit;
}

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  service_time : float;
  jitter : float;
  rng : Util.Rng.t;
  fault_rng : Util.Rng.t;
  handlers : (src:int -> 'msg -> unit) option array;
  busy_until : float array;
  failed : bool array;
  mutable faults : fault_plan;
  link_faults : (int * int, fault_plan) Hashtbl.t;
  mutable groups : int array option; (* partition: group id per node *)
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable kind_counts : int array;
      (* indexed by Kind.t; pre-sized to [Kind.registered ()] at creation,
         grown (rarely) if a kind is interned after that *)
  tracer : Obs.Tracer.t; (* cached from the engine; Tracer.null when off *)
  mutable batching : bool; (* [multicast_batch] expands eagerly when false *)
  plan_delays : float array;
      (* [plan_send] scratch: delays of the deliveries (0..2) staged by the
         last call.  A buffer instead of a callback so the per-message fast
         path allocates no closure. *)
  mutable env_free : 'msg envelope array; (* envelope free stack *)
  mutable env_free_len : int;
  mutable wave_free : 'msg wave array; (* wave free stack *)
  mutable wave_free_len : int;
}

let create ~engine ~topology ?(service_time = 0.25) ?(jitter = 0.1) ?(seed = 7)
    ?(batch_fanout = true) () =
  let n = Topology.nodes topology in
  {
    engine;
    tracer = Engine.tracer engine;
    topology;
    service_time;
    jitter;
    rng = Util.Rng.create seed;
    fault_rng = Util.Rng.create (seed * 31 + 11);
    handlers = Array.make n None;
    busy_until = Array.make n 0.;
    failed = Array.make n false;
    faults = no_faults;
    link_faults = Hashtbl.create 8;
    groups = None;
    sent = 0;
    dropped = 0;
    duplicated = 0;
    kind_counts = Array.make (Kind.registered ()) 0;
    batching = batch_fanout;
    plan_delays = Array.make 2 0.;
    env_free = [||];
    env_free_len = 0;
    wave_free = [||];
    wave_free_len = 0;
  }

let set_batch_fanout t b = t.batching <- b
let batch_fanout t = t.batching

let engine t = t.engine
let topology t = t.topology
let nodes t = Topology.nodes t.topology
let set_handler t ~node handler = t.handlers.(node) <- Some handler
let fail t node = t.failed.(node) <- true
let revive t node = t.failed.(node) <- false
let is_failed t node = t.failed.(node)

let alive_nodes t =
  let acc = ref [] in
  for i = nodes t - 1 downto 0 do
    if not t.failed.(i) then acc := i :: !acc
  done;
  !acc

(* --- fault configuration ----------------------------------------------- *)

let set_faults t plan = t.faults <- plan
let faults t = t.faults

let link_key a b = (Stdlib.min a b, Stdlib.max a b)
let set_link_faults t ~a ~b plan = Hashtbl.replace t.link_faults (link_key a b) plan
let clear_link_faults t ~a ~b = Hashtbl.remove t.link_faults (link_key a b)

(* Symmetric partition into [groups]; nodes not named in any group form one
   implicit extra group (so [partition t [[0;1]]] cuts {0,1} off from the
   rest).  Messages crossing a group boundary are dropped in both
   directions until [heal]. *)
let partition t groups =
  let assignment = Array.make (nodes t) (-1) in
  List.iteri
    (fun gid members ->
      List.iter
        (fun node ->
          if node >= 0 && node < nodes t then assignment.(node) <- gid)
        members)
    groups;
  let implicit = List.length groups in
  Array.iteri (fun node gid -> if gid < 0 then assignment.(node) <- implicit) assignment;
  t.groups <- Some assignment

let heal t = t.groups <- None
let partitioned t = Option.is_some t.groups

let reachable t ~src ~dst =
  match t.groups with
  | None -> true
  | Some assignment -> src = dst || assignment.(src) = assignment.(dst)

let plan_for t ~src ~dst =
  match Hashtbl.find_opt t.link_faults (link_key src dst) with
  | Some plan -> plan
  | None -> t.faults

(* --- accounting --------------------------------------------------------- *)

let count_kind t kind =
  if kind >= Array.length t.kind_counts then begin
    (* A kind interned after this network was created (rare): grow once. *)
    let bigger = Array.make (Kind.registered ()) 0 in
    Array.blit t.kind_counts 0 bigger 0 (Array.length t.kind_counts);
    t.kind_counts <- bigger
  end;
  t.kind_counts.(kind) <- t.kind_counts.(kind) + 1

let messages_sent t = t.sent
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated

let messages_by_kind t =
  let acc = ref [] in
  Array.iteri
    (fun kind n -> if n > 0 then acc := (Kind.name kind, n) :: !acc)
    t.kind_counts;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let reset_counters t =
  t.sent <- 0;
  t.dropped <- 0;
  t.duplicated <- 0;
  Array.fill t.kind_counts 0 (Array.length t.kind_counts) 0

(* --- delivery ----------------------------------------------------------- *)

(* Tracing emits from the fault/jitter decision points but never draws from
   an RNG stream or schedules an event, so enabling it cannot perturb the
   simulation — traces are byte-identical per seed and runs byte-identical
   with tracing on or off. *)
let trace_net t ~kind ~ekind ~src ~dst =
  if Obs.Tracer.enabled t.tracer then
    Obs.Tracer.emit8 t.tracer ~time:(Engine.now t.engine) ~kind:ekind ~node:src
      ~txn:(-1) ~oid:(-1) ~a:dst ~b:kind ~x:0.

(* --- envelope pool ------------------------------------------------------ *)

let release_envelope t e =
  e.e_msg <- None;
  (* never retain a payload through the pool *)
  let cap = Array.length t.env_free in
  if t.env_free_len = cap then begin
    let cap' = if cap = 0 then 32 else 2 * cap in
    let grown = Array.make cap' e in
    Array.blit t.env_free 0 grown 0 cap;
    t.env_free <- grown
  end;
  t.env_free.(t.env_free_len) <- e;
  t.env_free_len <- t.env_free_len + 1

(* FIFO service queue: processing begins when the node is free.  Returns
   the instant the handler should run and pushes the node's horizon. *)
let service_finish t dst =
  let now = Engine.now t.engine in
  let start = Stdlib.max now t.busy_until.(dst) in
  let finish = start +. t.service_time in
  t.busy_until.(dst) <- finish;
  finish

let fire_envelope t e =
  if e.e_phase = 0 then begin
    (* Arrival at [e_dst] at delivery time. *)
    if t.failed.(e.e_dst) then release_envelope t e
    else begin
      e.e_phase <- 1;
      Engine.schedule_at t.engine ~time:(service_finish t e.e_dst) e.e_fire
    end
  end
  else begin
    let kind = e.e_kind and src = e.e_src and dst = e.e_dst and msg = e.e_msg in
    release_envelope t e;
    (* released first: the handler may send, reusing this record *)
    if not t.failed.(dst) then
      match (t.handlers.(dst), msg) with
      | Some handler, Some msg ->
        if src <> dst && Obs.Tracer.enabled t.tracer then
          Obs.Tracer.emit8 t.tracer ~time:(Engine.now t.engine)
            ~kind:Obs.Sem.net_deliver ~node:dst ~txn:(-1) ~oid:(-1) ~a:src
            ~b:kind ~x:0.;
        handler ~src msg
      | (Some _ | None), _ -> ()
  end

let acquire_envelope t ~kind ~src ~dst ~phase msg =
  let e =
    if t.env_free_len > 0 then begin
      let n = t.env_free_len - 1 in
      t.env_free_len <- n;
      t.env_free.(n)
    end
    else begin
      let rec e =
        {
          e_kind = 0;
          e_src = 0;
          e_dst = 0;
          e_msg = None;
          e_phase = 0;
          e_fire = (fun () -> fire_envelope t e);
        }
      in
      e
    end
  in
  e.e_kind <- kind;
  e.e_src <- src;
  e.e_dst <- dst;
  e.e_msg <- Some msg;
  e.e_phase <- phase;
  e

(* --- wave pool ---------------------------------------------------------- *)

let release_wave t w =
  w.w_msg <- None;
  w.w_len <- 0;
  w.w_pos <- 0;
  let cap = Array.length t.wave_free in
  if t.wave_free_len = cap then begin
    let cap' = if cap = 0 then 8 else 2 * cap in
    let grown = Array.make cap' w in
    Array.blit t.wave_free 0 grown 0 cap;
    t.wave_free <- grown
  end;
  t.wave_free.(t.wave_free_len) <- w;
  t.wave_free_len <- t.wave_free_len + 1

(* Fire wave entry [w_pos]: re-arm the engine event for the next entry
   (its (time, seq) was fixed at multicast time, so heap order is exactly
   that of eagerly scheduled per-destination events), then run the arrival
   for this destination. *)
let fire_wave t w =
  let i = w.w_pos in
  let dst = w.w_dsts.(i) in
  let next = i + 1 in
  w.w_pos <- next;
  if next < w.w_len then
    Engine.schedule_at_seq t.engine ~time:w.w_times.(next) ~seq:w.w_seqs.(next)
      w.w_fire;
  let last = next >= w.w_len in
  if not t.failed.(dst) then begin
    match w.w_msg with
    | Some msg ->
      let e = acquire_envelope t ~kind:w.w_kind ~src:w.w_src ~dst ~phase:1 msg in
      Engine.schedule_at t.engine ~time:(service_finish t dst) e.e_fire
    | None -> ()
  end;
  if last then release_wave t w

let acquire_wave t ~kind ~src msg =
  let w =
    if t.wave_free_len > 0 then begin
      let n = t.wave_free_len - 1 in
      t.wave_free_len <- n;
      t.wave_free.(n)
    end
    else begin
      let rec w =
        {
          w_kind = 0;
          w_src = 0;
          w_msg = None;
          w_times = [||];
          w_seqs = [||];
          w_dsts = [||];
          w_len = 0;
          w_pos = 0;
          w_fire = (fun () -> fire_wave t w);
        }
      in
      w
    end
  in
  w.w_kind <- kind;
  w.w_src <- src;
  w.w_msg <- Some msg;
  w.w_len <- 0;
  w.w_pos <- 0;
  w

let wave_push t w ~time ~dst =
  let cap = Array.length w.w_times in
  if w.w_len = cap then begin
    let cap' = if cap = 0 then 8 else 2 * cap in
    let times = Array.make cap' 0. in
    let seqs = Array.make cap' 0 in
    let dsts = Array.make cap' 0 in
    Array.blit w.w_times 0 times 0 cap;
    Array.blit w.w_seqs 0 seqs 0 cap;
    Array.blit w.w_dsts 0 dsts 0 cap;
    w.w_times <- times;
    w.w_seqs <- seqs;
    w.w_dsts <- dsts
  end;
  w.w_times.(w.w_len) <- time;
  w.w_seqs.(w.w_len) <- Engine.reserve_seq t.engine;
  w.w_dsts.(w.w_len) <- dst;
  w.w_len <- w.w_len + 1

(* --- send --------------------------------------------------------------- *)

(* The shared front half of a send: per-message accounting, the jitter
   draw, and the fault-model draws, in exactly the order the pre-batching
   [send] performed them (the delivery-jitter draw always happens, fault
   draws only under a faulty plan, each short-circuiting as before), so
   seeds, [sent], [dropped], [duplicated] and [kind_counts] are
   byte-identical whether the message is scheduled eagerly or planned into
   a wave.  Stages the delivery delays (0, 1, or 2 with a duplicate) into
   [t.plan_delays] and returns how many, so callers schedule without a
   per-message closure — [send] makes an envelope per staged delay,
   [multicast_batch] a wave entry.  All RNG draws for one message complete
   before the caller consumes the buffer, so the draw order and the seq
   order both match the eager per-destination loop exactly. *)
let plan_send t ~kind ~src ~dst =
  if src <> dst then begin
    t.sent <- t.sent + 1;
    count_kind t kind;
    trace_net t ~kind ~ekind:Obs.Sem.net_send ~src ~dst
  end;
  let base = Topology.latency t.topology ~src ~dst in
  let jitter = base *. t.jitter *. Util.Rng.float t.rng 1.0 in
  let delay = base +. jitter in
  if src = dst then begin
    t.plan_delays.(0) <- delay;
    1
  end
  else if not (reachable t ~src ~dst) then begin
    t.dropped <- t.dropped + 1;
    trace_net t ~kind ~ekind:Obs.Sem.net_drop ~src ~dst;
    0
  end
  else begin
    let plan = plan_for t ~src ~dst in
    if not (faulty plan) then begin
      t.plan_delays.(0) <- delay;
      1
    end
    else if plan.drop > 0. && Util.Rng.chance t.fault_rng plan.drop then begin
      t.dropped <- t.dropped + 1;
      trace_net t ~kind ~ekind:Obs.Sem.net_drop ~src ~dst;
      0
    end
    else begin
      let delay =
        if plan.spike_prob > 0. && Util.Rng.chance t.fault_rng plan.spike_prob then
          delay *. plan.spike_factor
        else delay
      in
      t.plan_delays.(0) <- delay;
      if plan.duplicate > 0. && Util.Rng.chance t.fault_rng plan.duplicate then begin
        t.duplicated <- t.duplicated + 1;
        trace_net t ~kind ~ekind:Obs.Sem.net_dup ~src ~dst;
        let extra = base *. (0.5 +. Util.Rng.float t.fault_rng 1.0) in
        t.plan_delays.(1) <- delay +. extra;
        2
      end
      else 1
    end
  end

let send t ?(kind = Kind.other) ~src ~dst msg =
  if not t.failed.(src) then begin
    let staged = plan_send t ~kind ~src ~dst in
    for k = 0 to staged - 1 do
      let e = acquire_envelope t ~kind ~src ~dst ~phase:0 msg in
      Engine.schedule t.engine ~delay:t.plan_delays.(k) e.e_fire
    done
  end

let multicast t ?kind ~src ~dsts msg =
  List.iter (fun dst -> send t ?kind ~src ~dst msg) dsts

(* Insertion sort by (time, seq) — wave entries are near-sorted already
   (same base topology row) and tiny, so this beats a polymorphic sort
   without allocating. *)
let sort_wave w =
  for i = 1 to w.w_len - 1 do
    let time = w.w_times.(i) and seq = w.w_seqs.(i) and dst = w.w_dsts.(i) in
    let j = ref (i - 1) in
    while
      !j >= 0
      && (w.w_times.(!j) > time || (w.w_times.(!j) = time && w.w_seqs.(!j) > seq))
    do
      w.w_times.(!j + 1) <- w.w_times.(!j);
      w.w_seqs.(!j + 1) <- w.w_seqs.(!j);
      w.w_dsts.(!j + 1) <- w.w_dsts.(!j);
      decr j
    done;
    w.w_times.(!j + 1) <- time;
    w.w_seqs.(!j + 1) <- seq;
    w.w_dsts.(!j + 1) <- dst
  done

(* One engine event per fan-out wave instead of one per destination: the
   accounting, traces and RNG draws all happen here (multicast time),
   exactly as the per-destination [send] loop would have performed them;
   only the engine events are materialised lazily, each with the (time,
   seq) the eager loop would have used.  Observationally invisible —
   counters, traces and the event interleaving are byte-identical to
   [multicast] — but a 5-node quorum wave costs one resident heap entry
   and zero closures instead of five of each. *)
let multicast_batch t ?(kind = Kind.other) ~src ~dsts msg =
  match dsts with
  | [] -> ()
  | [ dst ] -> send t ~kind ~src ~dst msg
  | dsts ->
    if not t.batching then List.iter (fun dst -> send t ~kind ~src ~dst msg) dsts
    else if not t.failed.(src) then begin
      let w = acquire_wave t ~kind ~src msg in
      let now = Engine.now t.engine in
      List.iter
        (fun dst ->
          let staged = plan_send t ~kind ~src ~dst in
          for k = 0 to staged - 1 do
            wave_push t w ~time:(now +. Stdlib.max 0. t.plan_delays.(k)) ~dst
          done)
        dsts;
      if w.w_len = 0 then release_wave t w
      else begin
        sort_wave w;
        Engine.schedule_at_seq t.engine ~time:w.w_times.(0) ~seq:w.w_seqs.(0)
          w.w_fire
      end
    end
