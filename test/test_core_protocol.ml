(* Core protocol unit tests: the Txn DSL monad laws, read/write-set
   algebra, read-quorum validation (including the paper's running example),
   the server handlers, and the 1-copy oracle. *)

open Core

let value_testable = Alcotest.testable Store.Value.pp Store.Value.equal

(* --- Txn DSL ----------------------------------------------------------- *)

(* Interpret a program against a plain in-memory table: enough to check the
   monad's sequencing without any distribution. *)
let rec eval table = function
  | Txn.Return v -> v
  | Txn.Fail msg -> Alcotest.failf "eval hit Fail %s" msg
  | Txn.Read (oid, k) -> eval table (k (Hashtbl.find table oid))
  | Txn.Write (oid, v, k) ->
    Hashtbl.replace table oid v;
    eval table (k ())
  | Txn.Nested (body, k) -> eval table (k (eval table (body ())))
  | Txn.Open { body; compensate = _; k } -> eval table (k (eval table (body ())))
  | Txn.Checkpoint k -> eval table (k ())

let test_dsl_sequencing () =
  let table = Hashtbl.create 4 in
  Hashtbl.replace table 1 (Store.Value.Int 10);
  let open Txn.Syntax in
  let program =
    let* v = Txn.read 1 in
    let* _ = Txn.write 2 (Store.Value.Int (Store.Value.to_int v * 2)) in
    let* doubled = Txn.read 2 in
    Txn.return doubled
  in
  Alcotest.check value_testable "read-write-read" (Store.Value.Int 20) (eval table program)

let test_monad_laws () =
  let table () =
    let t = Hashtbl.create 4 in
    Hashtbl.replace t 1 (Store.Value.Int 7);
    t
  in
  let f v = Txn.write 2 v in
  (* Left identity: bind (return v) f = f v. *)
  Alcotest.check value_testable "left identity"
    (eval (table ()) (Txn.bind (Txn.return (Store.Value.Int 1)) f))
    (eval (table ()) (f (Store.Value.Int 1)));
  (* Right identity: bind m return = m. *)
  Alcotest.check value_testable "right identity"
    (eval (table ()) (Txn.bind (Txn.read 1) Txn.return))
    (eval (table ()) (Txn.read 1));
  (* Associativity. *)
  let g _ = Txn.read 1 in
  Alcotest.check value_testable "associativity"
    (eval (table ()) (Txn.bind (Txn.bind (Txn.read 1) f) g))
    (eval (table ()) (Txn.bind (Txn.read 1) (fun v -> Txn.bind (f v) g)))

let test_ops_count () =
  let open Txn.Syntax in
  let program =
    let* _ = Txn.read 1 in
    let* _ = Txn.write 2 Store.Value.Unit in
    Txn.return Store.Value.Unit
  in
  Alcotest.(check int) "two operations" 2 (Txn.ops program)

(* --- Rwset ------------------------------------------------------------- *)

let entry ?(owner = 0) ?(version = 0) oid : Rwset.entry =
  { oid; version; value = Store.Value.Int oid; owner }

let test_rwset_merge () =
  let child = Rwset.add (Rwset.add Rwset.empty (entry ~owner:1 ~version:5 1)) (entry ~owner:1 2) in
  let parent = Rwset.add (Rwset.add Rwset.empty (entry ~version:2 1)) (entry 3) in
  let merged = Rwset.merge_into ~child ~parent in
  Alcotest.(check int) "merged size" 3 (Rwset.size merged);
  (* The child's copy wins on collision (it is fresher). *)
  begin
    match Rwset.find merged 1 with
    | Some e -> Alcotest.(check int) "child version wins" 5 e.version
    | None -> Alcotest.fail "entry 1 lost"
  end;
  let retagged = Rwset.retag merged ~owner:0 in
  Alcotest.(check bool) "all retagged" true
    (List.for_all (fun (e : Rwset.entry) -> e.owner = 0) (Rwset.entries retagged))

let rwset_add_find =
  QCheck.Test.make ~name:"rwset add/find/remove" ~count:200
    QCheck.(small_list small_nat)
    (fun oids ->
      let set = List.fold_left (fun s oid -> Rwset.add s (entry oid)) Rwset.empty oids in
      List.for_all (fun oid -> Rwset.mem set oid) oids
      && List.for_all (fun oid -> not (Rwset.mem (Rwset.remove set oid) oid)) oids
      && Rwset.size set = List.length (List.sort_uniq Int.compare oids))

(* --- Rqv: the paper's running example (§III-B) ------------------------- *)

(* T1 has read {o1, o2, o3}; T2 commits a new version of o2; when T1
   requests o4, validation must fail and name the right abort target. *)
let test_rqv_paper_example () =
  let store = Store.Replica.create () in
  List.iter (fun oid -> Store.Replica.ensure store ~oid ~init:Store.Value.Unit) [ 1; 2; 3; 4 ];
  (* T2's commit bumped o2. *)
  Store.Replica.apply store ~oid:2 ~version:1 ~value:(Store.Value.Int 9) ~txn:99;
  let dataset =
    Messages.dataset_of_list
      [
        { Messages.oid = 1; version = 0; owner = 0 };
        { Messages.oid = 2; version = 0; owner = 1 };
        { Messages.oid = 3; version = 0; owner = 2 };
      ]
  in
  Alcotest.(check (option int)) "abort target is o2's owner" (Some 1)
    (Rqv.validate store ~txn:1 ~dataset)

let test_rqv_valid_dataset () =
  let store = Store.Replica.create () in
  List.iter (fun oid -> Store.Replica.ensure store ~oid ~init:Store.Value.Unit) [ 1; 2 ];
  let dataset =
    Messages.dataset_of_list
      [ { Messages.oid = 1; version = 0; owner = 0 }; { Messages.oid = 2; version = 0; owner = 1 } ]
  in
  Alcotest.(check (option int)) "valid" None (Rqv.validate store ~txn:1 ~dataset)

let test_rqv_min_owner_wins () =
  let store = Store.Replica.create () in
  List.iter (fun oid -> Store.Replica.ensure store ~oid ~init:Store.Value.Unit) [ 1; 2 ];
  Store.Replica.apply store ~oid:1 ~version:1 ~value:Store.Value.Unit ~txn:50;
  Store.Replica.apply store ~oid:2 ~version:1 ~value:Store.Value.Unit ~txn:51;
  let dataset =
    Messages.dataset_of_list
      [ { Messages.oid = 1; version = 0; owner = 3 }; { Messages.oid = 2; version = 0; owner = 1 } ]
  in
  (* Both invalid: the ancestor-most (minimum) owner is the target. *)
  Alcotest.(check (option int)) "min owner" (Some 1) (Rqv.validate store ~txn:1 ~dataset)

let test_rqv_protected_fails () =
  let store = Store.Replica.create () in
  Store.Replica.ensure store ~oid:1 ~init:Store.Value.Unit;
  ignore (Store.Replica.try_lock store ~oid:1 ~txn:77);
  let dataset = Messages.dataset_of_list [ { Messages.oid = 1; version = 0; owner = 2 } ] in
  Alcotest.(check (option int)) "protected object invalidates" (Some 2)
    (Rqv.validate store ~txn:1 ~dataset);
  (* ... but not against the lock holder itself. *)
  Alcotest.(check (option int)) "owner sees through its own lock" None
    (Rqv.validate store ~txn:77 ~dataset)

(* --- Server ------------------------------------------------------------- *)

let server_with_objects oids =
  let store = Store.Replica.create () in
  List.iter (fun oid -> Store.Replica.ensure store ~oid ~init:(Store.Value.Int 0)) oids;
  Server.create ~node:0 ~store

let test_server_read () =
  let server = server_with_objects [ 1 ] in
  match
    Server.handle server ~src:5
      (Messages.Read_req
         { txn = 1; oid = 1; dataset = Messages.empty_dataset; write_intent = false; record = true })
  with
  | Some (Messages.Read_ok { oid; version; value }) ->
    Alcotest.(check int) "oid" 1 oid;
    Alcotest.(check int) "version" 0 version;
    Alcotest.check value_testable "value" (Store.Value.Int 0) value;
    Alcotest.(check (list int)) "PR updated" [ 1 ] (Store.Replica.readers (Server.store server) 1)
  | Some _ | None -> Alcotest.fail "expected Read_ok"

let test_server_commit_vote_and_apply () =
  let server = server_with_objects [ 1; 2 ] in
  let dataset =
    Messages.dataset_of_list
      [ { Messages.oid = 1; version = 0; owner = 0 }; { Messages.oid = 2; version = 0; owner = 0 } ]
  in
  begin
    match
      Server.handle server ~src:5
        (Messages.Commit_req { txn = 9; dataset; locks = [ 2 ]; round = 1; peers = [] })
    with
    | Some (Messages.Vote { commit = true; _ }) -> ()
    | Some _ | None -> Alcotest.fail "expected commit vote"
  end;
  Alcotest.(check bool) "lock taken" true
    (Store.Replica.is_protected (Server.store server) ~oid:2 ~against:999);
  (* A competing committer must be denied with lock_conflict. *)
  begin
    match
      Server.handle server ~src:6
        (Messages.Commit_req { txn = 10; dataset; locks = [ 2 ]; round = 1; peers = [] })
    with
    | Some (Messages.Vote { commit = false; lock_conflict = true }) -> ()
    | Some _ | None -> Alcotest.fail "expected lock-conflict denial"
  end;
  (* Apply installs the write and releases the lock. *)
  ignore
    (Server.handle server ~src:5
       (Messages.Apply
          {
            txn = 9;
            writes = Messages.writes_of_list [ (2, 1, Store.Value.Int 5) ];
            reads = [| 1 |];
          }));
  Alcotest.(check int) "version bumped" 1 (Store.Replica.version (Server.store server) 2);
  Alcotest.(check bool) "lock released" false
    (Store.Replica.is_protected (Server.store server) ~oid:2 ~against:999)

let test_server_stale_commit_denied () =
  let server = server_with_objects [ 1 ] in
  Store.Replica.apply (Server.store server) ~oid:1 ~version:2 ~value:Store.Value.Unit ~txn:1;
  match
    Server.handle server ~src:5
      (Messages.Commit_req
         {
           txn = 9;
           dataset = Messages.dataset_of_list [ { Messages.oid = 1; version = 1; owner = 0 } ];
           locks = [ 1 ];
           round = 1;
           peers = [];
         })
  with
  | Some (Messages.Vote { commit = false; lock_conflict }) ->
    Alcotest.(check bool) "version conflict, not lock" false lock_conflict
  | Some _ | None -> Alcotest.fail "expected denial"

let test_server_release () =
  let server = server_with_objects [ 1 ] in
  ignore
    (Server.handle server ~src:5
       (Messages.Commit_req
          {
            txn = 9;
            dataset = Messages.dataset_of_list [ { Messages.oid = 1; version = 0; owner = 0 } ];
            locks = [ 1 ];
            round = 1;
            peers = [];
          }));
  ignore (Server.handle server ~src:5 (Messages.Release { txn = 9; oids = [ 1 ]; round = 1 }));
  Alcotest.(check bool) "released" false
    (Store.Replica.is_protected (Server.store server) ~oid:1 ~against:999)

(* A Release is retransmitted at-least-once, so one from an abandoned
   commit round can land after a later round of the same transaction
   re-acquired the lock.  Freeing it then would let a competing writer
   commit the same version (seen in the wild as chaos seed 35's
   two-writers-one-version oracle violation). *)
let test_server_stale_release_ignored () =
  let server = server_with_objects [ 1 ] in
  let dataset = Messages.dataset_of_list [ { Messages.oid = 1; version = 0; owner = 0 } ] in
  ignore
    (Server.handle server ~src:5
       (Messages.Commit_req { txn = 9; dataset; locks = [ 1 ]; round = 1; peers = [] }));
  (* The coordinator timed out on round 1, released, and retried: round 2
     re-locks here... *)
  ignore
    (Server.handle server ~src:5
       (Messages.Commit_req { txn = 9; dataset; locks = [ 1 ]; round = 2; peers = [] }));
  (* ...then round 1's Release retransmission finally arrives. *)
  ignore (Server.handle server ~src:5 (Messages.Release { txn = 9; oids = [ 1 ]; round = 1 }));
  Alcotest.(check bool) "stale release ignored" true
    (Store.Replica.is_protected (Server.store server) ~oid:1 ~against:999);
  Alcotest.(check bool) "still blocks competing committer" false
    (Store.Replica.try_lock (Server.store server) ~oid:1 ~txn:10);
  (* The current round's Release does free the lock. *)
  ignore (Server.handle server ~src:5 (Messages.Release { txn = 9; oids = [ 1 ]; round = 2 }));
  Alcotest.(check bool) "current-round release frees" false
    (Store.Replica.is_protected (Server.store server) ~oid:1 ~against:999)

(* --- Oracle ------------------------------------------------------------- *)

let test_oracle_accepts_serial () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:5. ~reads:[ (1, 0) ]
    ~writes:[ (1, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:20. ~window_start:15. ~reads:[ (1, 1) ]
    ~writes:[ (1, 2) ];
  Alcotest.(check bool) "serial history ok" true (Result.is_ok (Oracle.check oracle))

let test_oracle_rejects_stale_read () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:5. ~reads:[]
    ~writes:[ (1, 1) ];
  (* An *update* txn read version 0 but validated long after version 1. *)
  Oracle.note_commit oracle ~txn:2 ~decision:30. ~window_start:25. ~reads:[ (1, 0) ]
    ~writes:[ (2, 1) ];
  Alcotest.(check bool) "stale update read rejected" true
    (Result.is_error (Oracle.check oracle))

let test_oracle_read_only_snapshot_semantics () =
  (* A read-only txn may read versions that are stale in real time, as long
     as they form a consistent snapshot... *)
  let consistent = Oracle.create () in
  Oracle.note_commit consistent ~txn:1 ~decision:10. ~window_start:5. ~reads:[]
    ~writes:[ (1, 1) ];
  Oracle.note_commit consistent ~txn:2 ~decision:30. ~window_start:25.
    ~reads:[ (1, 0); (2, 0) ] ~writes:[];
  Alcotest.(check bool) "consistent stale snapshot accepted" true
    (Result.is_ok (Oracle.check consistent));
  (* ... but versions that never coexisted are rejected. *)
  let skewed = Oracle.create () in
  Oracle.note_commit skewed ~txn:1 ~decision:10. ~window_start:5. ~reads:[]
    ~writes:[ (1, 1) ];
  Oracle.note_commit skewed ~txn:2 ~decision:20. ~window_start:15. ~reads:[]
    ~writes:[ (2, 1) ];
  (* o1 still at version 0 (current only before t=10) together with o2 at
     version 1 (current only after t=20): impossible snapshot. *)
  Oracle.note_commit skewed ~txn:3 ~decision:30. ~window_start:25.
    ~reads:[ (1, 0); (2, 1) ] ~writes:[];
  Alcotest.(check bool) "inconsistent snapshot rejected" true
    (Result.is_error (Oracle.check skewed))

let test_oracle_rejects_version_gap () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:5. ~reads:[]
    ~writes:[ (1, 2) ];
  Alcotest.(check bool) "gap rejected" true (Result.is_error (Oracle.check oracle))

let test_oracle_rejects_double_write () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:5. ~reads:[] ~writes:[ (1, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:12. ~window_start:6. ~reads:[] ~writes:[ (1, 1) ];
  Alcotest.(check bool) "double write rejected" true (Result.is_error (Oracle.check oracle))

let test_oracle_window_tolerance () =
  let oracle = Oracle.create () in
  (* Reader validated before the writer committed, decided after: legal. *)
  Oracle.note_commit oracle ~txn:1 ~decision:12. ~window_start:8. ~reads:[] ~writes:[ (1, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:14. ~window_start:7. ~reads:[ (1, 0) ] ~writes:[];
  Alcotest.(check bool) "overlapping window ok" true (Result.is_ok (Oracle.check oracle))

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ rwset_add_find ]

let suite =
  [
    Alcotest.test_case "dsl sequencing" `Quick test_dsl_sequencing;
    Alcotest.test_case "monad laws" `Quick test_monad_laws;
    Alcotest.test_case "ops count" `Quick test_ops_count;
    Alcotest.test_case "rwset merge/retag" `Quick test_rwset_merge;
    Alcotest.test_case "rqv paper example" `Quick test_rqv_paper_example;
    Alcotest.test_case "rqv valid dataset" `Quick test_rqv_valid_dataset;
    Alcotest.test_case "rqv min owner wins" `Quick test_rqv_min_owner_wins;
    Alcotest.test_case "rqv protected objects" `Quick test_rqv_protected_fails;
    Alcotest.test_case "server read + PR" `Quick test_server_read;
    Alcotest.test_case "server 2PC vote/lock/apply" `Quick test_server_commit_vote_and_apply;
    Alcotest.test_case "server stale commit denied" `Quick test_server_stale_commit_denied;
    Alcotest.test_case "server release" `Quick test_server_release;
    Alcotest.test_case "server stale-round release ignored" `Quick
      test_server_stale_release_ignored;
    Alcotest.test_case "oracle accepts serial" `Quick test_oracle_accepts_serial;
    Alcotest.test_case "oracle rejects stale read" `Quick test_oracle_rejects_stale_read;
    Alcotest.test_case "oracle read-only snapshot semantics" `Quick
      test_oracle_read_only_snapshot_semantics;
    Alcotest.test_case "oracle rejects version gap" `Quick test_oracle_rejects_version_gap;
    Alcotest.test_case "oracle rejects double write" `Quick test_oracle_rejects_double_write;
    Alcotest.test_case "oracle window tolerance" `Quick test_oracle_window_tolerance;
  ]
  @ qcheck_cases
