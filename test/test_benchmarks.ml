(* Benchmark-library unit tests: workload helpers, program re-runnability,
   bank/vacation invariants, registry lookups. *)

open Core

let test_registry () =
  Alcotest.(check int) "five paper benchmarks" 5
    (List.length Benchmarks.Registry.paper_suite);
  Alcotest.(check (list string)) "names"
    [ "bank"; "hashmap"; "slist"; "rbtree"; "vacation"; "bst"; "counter" ]
    (Benchmarks.Registry.names ());
  Alcotest.(check bool) "find hit" true (Benchmarks.Registry.find "slist" <> None);
  Alcotest.(check bool) "find miss" true (Benchmarks.Registry.find "nope" = None)

let test_workload_helpers () =
  let rng = Util.Rng.create 4 in
  let params = { Benchmarks.Workload.default_params with objects = 10; key_skew = 0.9 } in
  for _ = 1 to 100 do
    let k = Benchmarks.Workload.pick_key rng params in
    Alcotest.(check bool) "key in range" true (k >= 0 && k < 10)
  done;
  (* seq returns the last program's value. *)
  let table = Hashtbl.create 4 in
  Hashtbl.replace table 0 (Store.Value.Int 1);
  Hashtbl.replace table 1 (Store.Value.Int 2);
  let rec eval = function
    | Txn.Return v -> v
    | Txn.Read (oid, k) -> eval (k (Hashtbl.find table oid))
    | Txn.Write (oid, v, k) ->
      Hashtbl.replace table oid v;
      eval (k ())
    | Txn.Nested (body, k) -> eval (k (eval (body ())))
    | Txn.Open { body; k; _ } -> eval (k (eval (body ())))
    | Txn.Checkpoint k -> eval (k ())
    | Txn.Fail msg -> Alcotest.failf "eval hit %s" msg
  in
  Alcotest.(check bool) "seq returns last" true
    (Store.Value.equal (Store.Value.Int 2)
       (eval (Benchmarks.Workload.seq [ Txn.read 0; Txn.read 1 ])));
  Alcotest.(check bool) "empty seq returns unit" true
    (Store.Value.equal Store.Value.Unit (eval (Benchmarks.Workload.seq [])))

(* Generated programs must be re-runnable: the executor re-invokes the same
   thunk on every retry, so invoking it twice must target the same first
   object and both executions must commit. *)
let rec first_oid = function
  | Txn.Read (oid, _) | Txn.Write (oid, _, _) -> Some oid
  | Txn.Nested (body, _) | Txn.Open { body; _ } -> first_oid (body ())
  | Txn.Checkpoint k -> first_oid (k ())
  | Txn.Return _ | Txn.Fail _ -> None

let test_generated_programs_rerunnable () =
  List.iter
    (fun (benchmark : Benchmarks.Workload.benchmark) ->
      let cluster =
        Cluster.create ~nodes:13 ~seed:51 ~with_oracle:false (Config.default Config.Flat)
      in
      let instance =
        benchmark.setup cluster
          { Benchmarks.Workload.default_params with objects = 16; calls = 2; read_ratio = 0.5; key_skew = 0.3 }
      in
      let program = instance.generate (Util.Rng.create 9) in
      Alcotest.(check (option int))
        (benchmark.name ^ " same first object across invocations")
        (first_oid (program ())) (first_oid (program ()));
      for run = 1 to 2 do
        match Cluster.run_program cluster ~node:3 program with
        | Executor.Committed _ -> ()
        | Executor.Failed msg -> Alcotest.failf "%s run %d failed: %s" benchmark.name run msg
      done)
    Benchmarks.Registry.all

let test_vacation_reserve_decrements () =
  let cluster = Cluster.create ~nodes:13 ~seed:52 (Config.default Config.Closed) in
  let handle = Benchmarks.Vacation.create cluster ~offers_per_category:3 in
  let rng = Util.Rng.create 3 in
  let price =
    match
      Cluster.run_program cluster ~node:1 (fun () ->
          Benchmarks.Vacation.reserve handle rng ~category:0)
    with
    | Executor.Committed (Store.Value.Int price) -> price
    | Executor.Committed v -> Alcotest.failf "unexpected %s" (Store.Value.to_string v)
    | Executor.Failed msg -> Alcotest.failf "reserve failed: %s" msg
  in
  Cluster.drain cluster;
  Alcotest.(check bool) "positive price" true (price > 0);
  Alcotest.(check int) "one seat reserved" 1
    (Benchmarks.Vacation.total_reserved cluster handle);
  match Benchmarks.Vacation.check_offers cluster handle with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_vacation_never_oversells () =
  (* 20 seats per offer, 3 offers in category 0; hammer it with far more
     reservation attempts than stock from many nodes. *)
  let cluster = Cluster.create ~nodes:13 ~seed:53 (Config.default Config.Flat) in
  let handle = Benchmarks.Vacation.create cluster ~offers_per_category:1 in
  let rng = Util.Rng.create 5 in
  let finished = ref 0 in
  let rec client node remaining rng =
    if remaining > 0 then
      Cluster.submit cluster ~node (fun () ->
          Benchmarks.Vacation.reserve handle rng ~category:0)
        ~on_done:(fun _ -> client node (remaining - 1) rng)
    else incr finished
  in
  for c = 0 to 7 do
    client (c mod 13) 5 (Util.Rng.split rng)
  done;
  Cluster.drain cluster;
  Alcotest.(check int) "clients done" 8 !finished;
  begin
    match Benchmarks.Vacation.check_offers cluster handle with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  end;
  (* 40 attempts against 20 seats: exactly the stock is reserved. *)
  Alcotest.(check int) "sold out exactly" 20
    (Benchmarks.Vacation.total_reserved cluster handle)

let test_bank_transfer_conserves () =
  let cluster = Cluster.create ~nodes:13 ~seed:54 (Config.default Config.Closed) in
  let accounts =
    Array.init 4 (fun _ ->
        Cluster.alloc_object cluster ~init:(Store.Value.Int Benchmarks.Bank.initial_balance))
  in
  begin
    match
      Cluster.run_program cluster ~node:2 (fun () ->
          Benchmarks.Bank.transfer ~from_:accounts.(0) ~to_:accounts.(3) ~amount:250)
    with
    | Executor.Committed _ -> ()
    | Executor.Failed msg -> Alcotest.failf "transfer failed: %s" msg
  end;
  Cluster.drain cluster;
  Alcotest.(check int) "conserved" (4 * Benchmarks.Bank.initial_balance)
    (Benchmarks.Bank.total_balance cluster ~accounts);
  Alcotest.(check bool) "moved" true
    (Store.Value.to_int (Benchmarks.Workload.latest_value cluster ~oid:accounts.(3))
    = Benchmarks.Bank.initial_balance + 250)

let test_skiplist_height_deterministic () =
  for key = 0 to 200 do
    let h = Benchmarks.Skiplist.height_of key in
    Alcotest.(check bool) "height in range" true (h >= 1 && h <= Benchmarks.Skiplist.max_level);
    Alcotest.(check int) "deterministic" h (Benchmarks.Skiplist.height_of key)
  done

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "workload helpers" `Quick test_workload_helpers;
    Alcotest.test_case "generated programs re-runnable" `Quick
      test_generated_programs_rerunnable;
    Alcotest.test_case "vacation reserve decrements" `Quick test_vacation_reserve_decrements;
    Alcotest.test_case "vacation never oversells" `Quick test_vacation_never_oversells;
    Alcotest.test_case "bank transfer conserves" `Quick test_bank_transfer_conserves;
    Alcotest.test_case "skiplist height deterministic" `Quick
      test_skiplist_height_deterministic;
  ]
