(* Sharded object space: cross-shard 2PC commit/abort atomicity,
   coordinator-failure termination (presumed abort and cross-shard rescue),
   shard-aware scenario validation, and seeded shard-chaos determinism.

   Layout used throughout: 9 nodes / 3 shards — nodes 0-2 serve shard 0,
   3-5 shard 1, 6-8 shard 2; oids place round-robin (oid mod 3), so the
   first two allocations land on shards 0 and 1. *)

open Core

let config () = Config.default Config.Closed

let sharded_cluster ?(nodes = 9) ?(shards = 3) ?(seed = 11) () =
  Cluster.create ~nodes ~shards ~seed (config ())

let step_until cluster ~what p =
  let engine = Cluster.engine cluster in
  let rec go () =
    if p () then ()
    else if Sim.Engine.step engine then go ()
    else Alcotest.failf "engine drained before %s" what
  in
  go ()

let expect_consistent cluster =
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

let read_int cluster ~node oid =
  match Cluster.run_program cluster ~node (fun () -> Txn.read oid) with
  | Executor.Committed v -> Store.Value.to_int v
  | Executor.Failed msg -> Alcotest.failf "read back failed: %s" msg

(* {2 Commit paths} *)

let test_single_cross_shard_commit () =
  let cluster = sharded_cluster () in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let b = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  Alcotest.(check bool) "accounts on different shards" true
    (Cluster.shard_of_oid cluster a <> Cluster.shard_of_oid cluster b);
  let outcome = ref None in
  Cluster.submit cluster ~node:0
    (fun () -> Benchmarks.Bank.transfer ~from_:a ~to_:b ~amount:10)
    ~on_done:(fun o -> outcome := Some o);
  Cluster.run_for cluster 5_000.;
  (match !outcome with
  | Some (Executor.Committed _) -> ()
  | Some (Executor.Failed msg) -> Alcotest.failf "cross-shard commit failed: %s" msg
  | None -> Alcotest.fail "cross-shard commit did not finish within 5 s");
  Alcotest.(check int) "debit applied" 90 (read_int cluster ~node:4 a);
  Alcotest.(check int) "credit applied" 110 (read_int cluster ~node:7 b);
  Alcotest.(check int) "counted as cross-shard" 1
    (Metrics.cross_shard_commits (Cluster.metrics cluster));
  expect_consistent cluster

(* A transaction confined to one shard must keep the one-round fast path:
   no 2PC, no cross-shard metrics, even on a sharded cluster. *)
let test_same_shard_fast_path () =
  let cluster = sharded_cluster () in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let _b = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let _c = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let d = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  Alcotest.(check int) "a and d share shard 0" (Cluster.shard_of_oid cluster a)
    (Cluster.shard_of_oid cluster d);
  (match
     Cluster.run_program cluster ~node:1 (fun () ->
         Benchmarks.Bank.transfer ~from_:a ~to_:d ~amount:25)
   with
  | Executor.Committed _ -> ()
  | Executor.Failed msg -> Alcotest.failf "same-shard transfer failed: %s" msg);
  Cluster.drain cluster;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check int) "no cross-shard commit counted" 0
    (Metrics.cross_shard_commits metrics);
  Alcotest.(check int) "no cross-shard abort counted" 0
    (Metrics.cross_shard_aborts metrics);
  Alcotest.(check int) "debit applied" 75 (read_int cluster ~node:2 a);
  Alcotest.(check int) "credit applied" 125 (read_int cluster ~node:2 d);
  expect_consistent cluster

(* A participant-shard lock conflict must veto the whole 2PC: the
   transaction aborts atomically (the already-prepared shard releases, no
   shard applies) and the abort lands in the cross-shard counter.  The
   conflicting lock is staged by hand and never decided, so it falls under
   presumed abort, after which the client's retry commits — final state
   must show exactly one transfer. *)
let test_cross_shard_conflict_aborts_atomically () =
  let cluster = sharded_cluster ~seed:13 () in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let b = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let blocker = Ids.fresh_txn (Cluster.ids cluster) in
  let shard1_wq = Cluster.write_quorum_of cluster ~node:4 in
  Alcotest.(check bool) "shard 1 write quorum constructible" true (shard1_wq <> []);
  List.iter
    (fun node ->
      match
        Server.handle (Cluster.server_of cluster ~node) ~src:4
          (Messages.Commit_req
             {
               txn = blocker;
               dataset =
                 Messages.dataset_of_list [ { Messages.oid = b; version = 0; owner = 0 } ];
               locks = [ b ];
               round = 1;
               peers = [];
             })
      with
      | Some (Messages.Vote { commit = true; _ }) -> ()
      | _ -> Alcotest.failf "staged lock refused at node %d" node)
    shard1_wq;
  let outcome = ref None in
  Cluster.submit cluster ~node:0
    (fun () -> Benchmarks.Bank.transfer ~from_:a ~to_:b ~amount:10)
    ~on_done:(fun o -> outcome := Some o);
  Cluster.run_for cluster 10_000.;
  Cluster.drain cluster;
  (match !outcome with
  | Some (Executor.Committed _) -> ()
  | Some (Executor.Failed msg) -> Alcotest.failf "transfer never recovered: %s" msg
  | None -> Alcotest.fail "transfer still in flight after the blocker fell");
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "the vetoed 2PC round counted as a cross-shard abort" true
    (Metrics.cross_shard_aborts metrics >= 1);
  Alcotest.(check int) "exactly one transfer applied (debit)" 90
    (read_int cluster ~node:1 a);
  Alcotest.(check int) "exactly one transfer applied (credit)" 110
    (read_int cluster ~node:4 b);
  expect_consistent cluster

(* {2 Coordinator failure} *)

(* The coordinator dies after shard 0 granted its locks (votes in flight)
   but before shard 1 was ever contacted: prepares run sequentially in
   ascending shard order, so at the instant shard 0's first lease appears
   no Commit_req has left for shard 1.  Every contacted replica must
   presume abort — there is no commit evidence anywhere — and both
   balances must stand. *)
let test_coordinator_crash_before_second_prepare () =
  let cluster = sharded_cluster ~seed:17 () in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let b = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let outcome_delivered = ref false in
  Cluster.submit cluster ~node:0
    (fun () -> Benchmarks.Bank.transfer ~from_:a ~to_:b ~amount:10)
    ~on_done:(fun _ -> outcome_delivered := true);
  step_until cluster ~what:"shard 0 granted a lock" (fun () ->
      Cluster.held_leases cluster <> []);
  (* Sequential prepares: shard 1 untouched while shard 0's votes are
     still out. *)
  List.iter
    (fun (replica, oid, _, _) ->
      Alcotest.(check int) "lease is on shard 0's object" a oid;
      Alcotest.(check int) "lease holder serves shard 0" 0
        (Cluster.home_shard_of cluster ~node:replica))
    (Cluster.held_leases cluster);
  Cluster.fail_node_at cluster ~at:(Cluster.now cluster) ~node:0;
  step_until cluster ~what:"the leases fell" (fun () ->
      Cluster.held_leases cluster = []);
  Cluster.drain cluster;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "fail-stop: no outcome delivered" false !outcome_delivered;
  Alcotest.(check bool) "locks fell by presumed abort" true
    (Metrics.presumed_aborts metrics >= 1);
  Alcotest.(check int) "nothing was rescued" 0 (Metrics.status_rescued_commits metrics);
  Alcotest.(check int) "no cross-shard commit decided" 0
    (Metrics.cross_shard_commits metrics);
  Alcotest.(check int) "debit never applied" 100 (read_int cluster ~node:1 a);
  Alcotest.(check int) "credit never applied" 100 (read_int cluster ~node:4 b);
  (* Both shards take writes again. *)
  (match
     Cluster.run_program cluster ~node:1 (fun () ->
         Benchmarks.Bank.transfer ~from_:a ~to_:b ~amount:5)
   with
  | Executor.Committed _ -> ()
  | Executor.Failed msg -> Alcotest.failf "post-crash transfer failed: %s" msg);
  Cluster.drain cluster;
  Alcotest.(check int) "post-crash debit" 95 (read_int cluster ~node:2 a);
  Alcotest.(check int) "post-crash credit" 105 (read_int cluster ~node:5 b);
  expect_consistent cluster

(* The other half: both shards voted, the decision was applied on shard 0,
   and the coordinator died with shard 1's Applies undelivered.  Presuming
   abort on shard 1 would un-commit a decided cross-shard transaction; its
   lease holders' status rounds — widened to the peers pinned in the
   Commit_req — must find the commit evidence on shard 0 (which retained
   the foreign rows of the full write set) and adopt shard 1's new copy. *)
let test_rescue_from_other_shard () =
  let cluster = sharded_cluster ~seed:19 () in
  let a = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let b = Cluster.alloc_object cluster ~init:(Store.Value.Int 100) in
  let txn = Ids.fresh_txn (Cluster.ids cluster) in
  let shard0_wq = Cluster.write_quorum_of cluster ~node:0 in
  let shard1_wq = Cluster.write_quorum_of cluster ~node:4 in
  (* Shard 1's prepare round: every quorum member locks b and votes, with
     shard 0's quorum pinned as cross-shard termination peers. *)
  List.iter
    (fun node ->
      match
        Server.handle (Cluster.server_of cluster ~node) ~src:0
          (Messages.Commit_req
             {
               txn;
               dataset =
                 Messages.dataset_of_list [ { Messages.oid = b; version = 0; owner = 0 } ];
               locks = [ b ];
               round = 1;
               peers = shard0_wq;
             })
      with
      | Some (Messages.Vote { commit = true; _ }) -> ()
      | _ -> Alcotest.failf "shard 1 node %d refused the vote" node)
    shard1_wq;
  Alcotest.(check bool) "shard 1 holds the locks" true
    (Cluster.held_leases cluster <> []);
  (* The decision lands on shard 0 only (full write set: a's row installs,
     b's row is retained as evidence); shard 1's Applies die with the
     coordinator. *)
  let writes =
    Messages.writes_of_list [ (a, 1, Store.Value.Int 90); (b, 1, Store.Value.Int 110) ]
  in
  List.iter
    (fun node ->
      ignore
        (Server.handle (Cluster.server_of cluster ~node) ~src:0
           (Messages.Apply { txn; writes; reads = [||] })))
    shard0_wq;
  (match Cluster.oracle cluster with
  | Some oracle ->
    Core.Oracle.note_commit oracle ~txn ~decision:(Cluster.now cluster)
      ~window_start:(Cluster.now cluster)
      ~reads:[ (a, 0); (b, 0) ]
      ~writes:[ (a, 1); (b, 1) ]
  | None -> ());
  Cluster.drain cluster;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "shard 1 rescued the decision" true
    (Metrics.status_rescued_commits metrics >= 1);
  Alcotest.(check int) "nothing presumed aborted" 0 (Metrics.presumed_aborts metrics);
  Alcotest.(check bool) "all leases released" true (Cluster.held_leases cluster = []);
  List.iter
    (fun node ->
      let copy = Store.Replica.get (Cluster.store_of cluster ~node) b in
      Alcotest.(check int)
        (Printf.sprintf "shard 1 node %d adopted the committed version" node)
        1 copy.Store.Replica.version)
    shard1_wq;
  Alcotest.(check int) "debit visible" 90 (read_int cluster ~node:1 a);
  Alcotest.(check int) "credit visible" 110 (read_int cluster ~node:4 b);
  expect_consistent cluster

(* {2 Scenario validation} *)

let shard_layout = [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7; 8 ] ]

let validate_sharded events =
  Harness.Scenario.validate ~shards:3 ~shard_members:shard_layout ~nodes:9 events

let expect_invalid ~why events =
  match validate_sharded events with
  | Ok () -> Alcotest.failf "expected validation failure (%s)" why
  | Error _ -> ()

let test_validate_rejects_bad_shard_ops () =
  expect_invalid ~why:"move to nonexistent shard"
    [ Harness.Scenario.ShardMove { oid = 4; to_shard = 3; at = 100. } ];
  expect_invalid ~why:"split below two quorum-viable halves"
    [ Harness.Scenario.ShardSplit { shard = 1; at = 100. } ];
  expect_invalid ~why:"split of nonexistent shard"
    [ Harness.Scenario.ShardSplit { shard = 7; at = 100. } ];
  expect_invalid ~why:"killing a shard's last live member"
    [
      Harness.Scenario.Crash { node = 3; at = 10. };
      Harness.Scenario.Crash { node = 4; at = 20. };
      Harness.Scenario.Crash { node = 5; at = 30. };
    ];
  (* Sane ops pass, including a move whose target only exists after a
     split of a 6-member shard. *)
  (match
     Harness.Scenario.validate ~shards:2
       ~shard_members:[ [ 0; 1; 2; 3; 4; 5 ]; [ 6; 7; 8 ] ]
       ~nodes:9
       [
         Harness.Scenario.ShardSplit { shard = 0; at = 50. };
         Harness.Scenario.ShardMove { oid = 9; to_shard = 2; at = 100. };
       ]
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid split+move rejected: %s" msg);
  (* Two of a 3-member shard may die — the kill-gate only rejects the
     last one. *)
  match
    validate_sharded
      [
        Harness.Scenario.Crash { node = 3; at = 10. };
        Harness.Scenario.Crash { node = 4; at = 20. };
      ]
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "two-of-three kill rejected: %s" msg

let test_shard_ops_parse_roundtrip () =
  let spec = "shardmove 5 2 @100; shardsplit 1 @200" in
  let events =
    match Harness.Scenario.parse spec with
    | Ok events -> events
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  (match events with
  | [
   Harness.Scenario.ShardMove { oid = 5; to_shard = 2; at = 100. };
   Harness.Scenario.ShardSplit { shard = 1; at = 200. };
  ] ->
    ()
  | _ -> Alcotest.fail "unexpected parse");
  let rendered =
    String.concat "; "
      (List.map
         (fun e -> Format.asprintf "%a" Harness.Scenario.pp_event e)
         events)
  in
  match Harness.Scenario.parse rendered with
  | Ok reparsed -> Alcotest.(check bool) "round-trip" true (reparsed = events)
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

(* {2 Shard chaos} *)

let shard_knobs =
  {
    Harness.Chaos.default_knobs with
    shards = 3;
    shard_ops = 2;
    cross_shard_prob = 0.3;
  }

(* Same seed, same knobs, run twice: byte-identical result (schedule,
   counters, quiescence time), exercising moves/splits and cross-shard
   traffic under chaos. *)
let test_shard_chaos_deterministic () =
  let one () = Harness.Chaos.run_one shard_knobs ~seed:5 in
  let r1 = one () and r2 = one () in
  Alcotest.(check string) "byte-identical verdict"
    (Harness.Chaos.result_to_json r1)
    (Harness.Chaos.result_to_json r2);
  Alcotest.(check bool) "seed 5 passes" true (Harness.Chaos.passed r1);
  Alcotest.(check bool) "cross-shard traffic exercised" true
    (r1.Harness.Chaos.xshard_commits > 0)

let test_shard_chaos_seeds_pass () =
  List.iter
    (fun seed ->
      let r = Harness.Chaos.run_one shard_knobs ~seed in
      if not (Harness.Chaos.passed r) then
        Alcotest.failf "shard chaos seed %d failed: %s" seed
          (Format.asprintf "%a" Harness.Chaos.pp_result r))
    [ 1; 2 ]

let suite =
  [
    Alcotest.test_case "single cross-shard commit" `Quick test_single_cross_shard_commit;
    Alcotest.test_case "same-shard fast path" `Quick test_same_shard_fast_path;
    Alcotest.test_case "conflict aborts atomically" `Quick
      test_cross_shard_conflict_aborts_atomically;
    Alcotest.test_case "coordinator crash presumes abort" `Quick
      test_coordinator_crash_before_second_prepare;
    Alcotest.test_case "rescue evidence crosses shards" `Quick
      test_rescue_from_other_shard;
    Alcotest.test_case "validate rejects bad shard ops" `Quick
      test_validate_rejects_bad_shard_ops;
    Alcotest.test_case "shard op parse round-trip" `Quick test_shard_ops_parse_roundtrip;
    Alcotest.test_case "shard chaos deterministic" `Quick test_shard_chaos_deterministic;
    Alcotest.test_case "shard chaos seeds pass" `Quick test_shard_chaos_seeds_pass;
  ]
