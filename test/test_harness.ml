(* Harness tests: experiment runner plumbing, sweep averaging, figure data
   generation at tiny scale, report rendering, and the Fig. 10 failure
   schedule. *)

let tiny = { Harness.Figures.warmup = 200.; duration = 1_200.; clients = 8; trials = 1 }

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_experiment_smoke () =
  let result =
    Harness.Experiment.run ~seed:5 ~clients:8 ~warmup:200. ~duration:1_500.
      ~config:(Core.Config.default Core.Config.Closed)
      ~benchmark:Benchmarks.Bank.benchmark
      ~params:{ Benchmarks.Workload.default_params with objects = 64; calls = 2; read_ratio = 0.5; key_skew = 0.3 }
      ()
  in
  Alcotest.(check bool) "some commits" true (result.Harness.Experiment.commits > 0);
  Alcotest.(check bool) "throughput positive" true (result.throughput > 0.);
  Alcotest.(check bool) "messages counted" true (result.messages > 0);
  begin
    match result.invariant with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "invariant: %s" msg
  end;
  match result.consistent with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

let test_sweep_averaging () =
  let calls = ref 0 in
  let fake ~seed =
    incr calls;
    let base =
      Harness.Experiment.run ~seed ~clients:4 ~warmup:100. ~duration:500.
        ~config:(Core.Config.default Core.Config.Flat)
        ~benchmark:Benchmarks.Counter.benchmark
        ~params:Benchmarks.Workload.default_params ()
    in
    base
  in
  let averaged = Harness.Sweep.averaged ~trials:3 fake in
  Alcotest.(check int) "three trials ran" 3 !calls;
  Alcotest.(check bool) "result sane" true (averaged.Harness.Experiment.commits >= 0)

let test_failure_schedule_grows_quorum () =
  let nodes = 28 in
  let victims = Harness.Figures.failure_schedule ~nodes ~read_level:0 ~count:6 in
  Alcotest.(check int) "six victims" 6 (List.length victims);
  Alcotest.(check bool) "root dies first" true (List.hd victims = 0);
  (* Replaying the schedule grows the read quorum by one per failure (until
     leaves are reached). *)
  let tq = Quorum.Tree_quorum.create ~read_level:0 ~nodes () in
  let sizes =
    List.map
      (fun v ->
        Quorum.Tree_quorum.mark_failed tq v;
        match Quorum.Tree_quorum.read_quorum ~salt:0 tq with
        | Some q -> List.length q
        | None -> -1)
      victims
  in
  Alcotest.(check (list int)) "quorum growth" [ 2; 3; 4; 5; 6; 7 ] sizes

let test_fig5_tiny () =
  let series =
    Harness.Figures.fig5 ~scale:tiny ~benchmark:Benchmarks.Counter.benchmark ()
  in
  Alcotest.(check int) "six read ratios" 6 (List.length series.Harness.Report.rows);
  Alcotest.(check (list string)) "mode columns" [ "flat"; "closed"; "checkpoint" ]
    series.columns;
  List.iter
    (fun (_, values) ->
      Alcotest.(check int) "three values per row" 3 (List.length values);
      List.iter
        (fun v -> Alcotest.(check bool) "non-negative throughput" true (v >= 0.))
        values)
    series.rows

let test_report_rendering () =
  let series =
    {
      Harness.Report.title = "Test series";
      x_label = "x";
      columns = [ "a"; "b" ];
      rows = [ ("1", [ 1.5; 2.5 ]); ("2", [ 3.; 4. ]) ];
      notes = [ "a note" ];
    }
  in
  let text = Harness.Report.render series in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains text fragment))
    [ "Test series"; "1.50"; "note: a note" ];
  let csv = Harness.Report.to_csv series in
  Alcotest.(check bool) "csv row" true (contains csv "1,1.5000,2.5000")

let test_pct_change () =
  Alcotest.(check (float 1e-9)) "increase" 50. (Harness.Report.pct_change ~baseline:10. 15.);
  Alcotest.(check (float 1e-9)) "decrease" (-25.) (Harness.Report.pct_change ~baseline:4. 3.);
  Alcotest.(check bool) "zero baseline, nonzero value" true
    (Float.is_nan (Harness.Report.pct_change ~baseline:0. 9.));
  Alcotest.(check (float 1e-9)) "zero baseline, zero value" 0.
    (Harness.Report.pct_change ~baseline:0. 0.)

let test_run_system_qr_and_baselines () =
  List.iter
    (fun make_system ->
      let system : Harness.Experiment.system = make_system () in
      let oid = system.alloc ~init:(Store.Value.Int 0) in
      let gen _rng () = Benchmarks.Counter.increment oid in
      let result =
        Harness.Experiment.run_system system ~clients:4 ~warmup:100. ~duration:800.
          ~gen_txn:gen ~seed:3 ()
      in
      Alcotest.(check bool)
        (system.name ^ " commits")
        true
        (result.Harness.Experiment.commits > 0);
      match result.consistent with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s oracle: %s" system.name msg)
    [
      (fun () ->
        Harness.Experiment.qr_system ~nodes:7 ~seed:21
          (Core.Config.default Core.Config.Closed));
      (fun () -> Harness.Experiment.tfa_system ~nodes:7 ~seed:22 ());
      (fun () -> Harness.Experiment.decent_system ~nodes:7 ~seed:23 ());
    ]

let suite =
  [
    Alcotest.test_case "experiment smoke" `Quick test_experiment_smoke;
    Alcotest.test_case "sweep averaging" `Quick test_sweep_averaging;
    Alcotest.test_case "failure schedule grows quorum" `Quick
      test_failure_schedule_grows_quorum;
    Alcotest.test_case "fig5 tiny series" `Quick test_fig5_tiny;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "pct change" `Quick test_pct_change;
    Alcotest.test_case "run_system over all DTMs" `Quick test_run_system_qr_and_baselines;
  ]
