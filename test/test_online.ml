(* Online (streaming) protocol checker: equivalence with the offline
   checker across chaos seeds, immunity to ring truncation, and bounded
   memory.  Plus the open-loop driver's basic contract. *)

let violation =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Obs.Online.pp_violation v))
    (fun a b -> a = b)

(* Run one chaos seed with a big ring (no truncation) and a streaming
   checker attached as the tracer's sink; return both verdicts. *)
let both_verdicts ?(batch_commit = false) ?(rolling = false) knobs ~seed =
  let tracer = Obs.Tracer.create () in
  let online = Obs.Online.create () in
  Obs.Online.attach online tracer;
  let result = Harness.Chaos.run_one ~tracer ~batch_commit ~rolling knobs ~seed in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: untruncated trace" seed)
    0
    (Obs.Tracer.dropped tracer);
  let online_v = Obs.Online.finish online in
  let offline_v = Obs.Checker.check (Obs.Tracer.events tracer) in
  (result, online, online_v, offline_v)

let check_seeds ?batch_commit ?rolling knobs seeds =
  List.iter
    (fun seed ->
      let _, _, online_v, offline_v =
        both_verdicts ?batch_commit ?rolling knobs ~seed
      in
      Alcotest.(check (list violation))
        (Printf.sprintf "seed %d: online verdict = offline verdict" seed)
        offline_v online_v;
      Alcotest.(check (list violation))
        (Printf.sprintf "seed %d: healthy chaos run is clean" seed)
        [] online_v)
    seeds

(* 20+ seeds across schedule families (classic faults, membership churn,
   rolling restart, batch commit, sharded): the streaming checker must
   agree with the offline replay on every one. *)

let test_equivalence_classic () =
  check_seeds Harness.Chaos.default_knobs [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_equivalence_churn () =
  let knobs =
    { Harness.Chaos.default_knobs with spares = 2; reconfigs = 2 }
  in
  check_seeds knobs [ 11; 12; 13; 14 ]

let test_equivalence_rolling () =
  check_seeds ~rolling:true Harness.Chaos.rolling_knobs [ 21; 22 ]

let test_equivalence_batch () =
  check_seeds ~batch_commit:true Harness.Chaos.default_knobs [ 31; 32; 33 ]

let test_equivalence_shard () =
  let knobs =
    {
      Harness.Chaos.default_knobs with
      shards = 2;
      shard_ops = 2;
      cross_shard_prob = 0.3;
    }
  in
  check_seeds knobs [ 41; 42; 43 ]

(* The sink sees every emission before ring eviction: a checker attached
   to a tiny ring reaches the same verdict as one attached to an
   unbounded ring, even though the offline replay of the tiny ring is
   truncated (and would be reported inconclusive). *)
let test_truncation_immunity () =
  let seed = 7 in
  let knobs = Harness.Chaos.default_knobs in
  let _, _, online_full, _ = both_verdicts knobs ~seed in
  let tiny = Obs.Tracer.create ~capacity:256 () in
  let online = Obs.Online.create () in
  Obs.Online.attach online tiny;
  let _ = Harness.Chaos.run_one ~tracer:tiny knobs ~seed in
  Alcotest.(check bool) "tiny ring truncated" true (Obs.Tracer.dropped tiny > 0);
  Alcotest.(check bool) "sink saw more than the ring holds" true
    (Obs.Online.events_seen online > Obs.Tracer.length tiny);
  Alcotest.(check (list violation)) "verdict unaffected by ring size"
    online_full (Obs.Online.finish online)

(* Checker memory is O(in-flight transactions): per-txn rule state
   retires at txn.end, so the high-water mark tracks the client count,
   not the trace length, and a drained run leaves (almost) nothing. *)
let test_bounded_memory () =
  let knobs = Harness.Chaos.default_knobs in
  let _, online, _, _ = both_verdicts knobs ~seed:3 in
  let tracer = Obs.Tracer.create () in
  let distinct = Hashtbl.create 1024 in
  ignore (Harness.Chaos.run_one ~tracer knobs ~seed:3);
  Obs.Tracer.iter tracer (fun e ->
      if e.Obs.Tracer.txn >= 0 then Hashtbl.replace distinct e.txn ());
  let txns = Hashtbl.length distinct in
  let peak = Obs.Online.peak_tracked online in
  Alcotest.(check bool)
    (Printf.sprintf "trace exercises many txns (%d)" txns)
    true (txns > 200);
  Alcotest.(check bool)
    (Printf.sprintf "peak tracked (%d) bounded by in-flight, not trace (%d)"
       peak txns)
    true
    (peak <= (4 * knobs.Harness.Chaos.clients) + knobs.Harness.Chaos.nodes);
  Alcotest.(check bool)
    (Printf.sprintf "retired state freed (still tracking %d)"
       (Obs.Online.tracked_txns online))
    true
    (Obs.Online.tracked_txns online <= 2)

(* fail_fast raises from inside the emission path at the first violation,
   after on_violation fires. *)
let test_fail_fast () =
  let seen = ref [] in
  let ck =
    Obs.Online.create ~fail_fast:true
      ~on_violation:(fun v -> seen := v :: !seen)
      ()
  in
  let feed kind ~txn ~a ~b =
    Obs.Online.feed8 ck ~time:1. ~kind ~node:0 ~txn ~oid:(-1) ~a ~b ~x:0.
  in
  feed Obs.Sem.lease_grant ~txn:7 ~a:42 ~b:(-1);
  (match feed Obs.Sem.lease_grant ~txn:8 ~a:42 ~b:(-1) with
  | () -> Alcotest.fail "expected Violation"
  | exception Obs.Online.Violation v ->
    Alcotest.(check string) "rule" "lease-overlap" v.Obs.Online.rule);
  Alcotest.(check int) "on_violation fired once" 1 (List.length !seen)

(* {2 Open-loop driver} *)

let open_loop ?(rate = 200.) ?(population = 1_000_000) ?(duration = 5_000.) ()
    =
  Harness.Openloop.run ~nodes:5 ~seed:19 ~warmup:500. ~duration ~rate
    ~population
    ~config:(Core.Config.default Core.Config.Closed)
    ~benchmark:Benchmarks.Counter.benchmark
    ~params:
      {
        Benchmarks.Workload.default_params with
        objects = 512;
        calls = 1;
        read_ratio = 0.5;
      }
    ()

let test_open_loop_underload () =
  let r = open_loop () in
  Alcotest.(check bool) "invariant holds" true (r.Harness.Openloop.invariant = Ok ());
  Alcotest.(check bool) "oracle holds" true (r.consistent = Ok ());
  Alcotest.(check bool) "million-client population" true
    (r.population = 1_000_000);
  Alcotest.(check bool)
    (Printf.sprintf "achieved (%.1f/s) tracks offered (%.1f/s)"
       r.achieved_load r.offered_load)
    true
    (r.achieved_load > 0.8 *. r.offered_load
    && r.achieved_load < 1.2 *. r.offered_load);
  Alcotest.(check bool)
    (Printf.sprintf "underloaded queueing is small (p99=%.2fms)" r.queue_p99)
    true
    (r.queue_p99 < r.service_p99 *. 10.);
  Alcotest.(check bool) "percentiles ordered" true
    (r.service_p50 <= r.service_p95 && r.service_p95 <= r.service_p99);
  (* A transient handful can be queued at the window-close instant; a
     saturated run would close with hundreds. *)
  Alcotest.(check bool)
    (Printf.sprintf "no saturated backlog (final=%d)" r.final_backlog)
    true (r.final_backlog < 50)

let test_open_loop_deterministic () =
  let r1 = open_loop ~duration:2_000. () in
  let r2 = open_loop ~duration:2_000. () in
  Alcotest.(check bool) "same seed, same result" true (r1 = r2)

(* Saturation: offered load far beyond capacity.  Queueing delay blows
   past service latency while service latency itself stays bounded —
   the separation that closed-loop drivers cannot show. *)
let test_open_loop_saturation () =
  let r = open_loop ~rate:5_000. ~duration:2_000. () in
  Alcotest.(check bool)
    (Printf.sprintf "achieved (%.1f/s) saturates below offered (%.1f/s)"
       r.achieved_load r.offered_load)
    true
    (r.achieved_load < 0.8 *. r.offered_load);
  Alcotest.(check bool)
    (Printf.sprintf "queueing (p50=%.1fms) dominates service (p99=%.2fms)"
       r.queue_p50 r.service_p99)
    true
    (r.queue_p50 > r.service_p99);
  Alcotest.(check bool) "backlog at close" true (r.final_backlog > 0)

let suite =
  [
    Alcotest.test_case "equivalence: classic chaos" `Slow
      test_equivalence_classic;
    Alcotest.test_case "equivalence: membership churn" `Slow
      test_equivalence_churn;
    Alcotest.test_case "equivalence: rolling restart" `Slow
      test_equivalence_rolling;
    Alcotest.test_case "equivalence: batch commit" `Slow test_equivalence_batch;
    Alcotest.test_case "equivalence: sharded" `Slow test_equivalence_shard;
    Alcotest.test_case "truncation immunity" `Slow test_truncation_immunity;
    Alcotest.test_case "bounded memory" `Slow test_bounded_memory;
    Alcotest.test_case "fail fast" `Quick test_fail_fast;
    Alcotest.test_case "open loop: underload" `Slow test_open_loop_underload;
    Alcotest.test_case "open loop: deterministic" `Slow
      test_open_loop_deterministic;
    Alcotest.test_case "open loop: saturation" `Slow test_open_loop_saturation;
  ]
