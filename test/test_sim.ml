(* Tests for the discrete-event simulation substrate: engine ordering,
   topology metrics, network delivery/queueing/failures, RPC collection and
   timeouts, failure detection. *)

let test_engine_ordering () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  Sim.Engine.schedule engine ~delay:5. (note "c");
  Sim.Engine.schedule engine ~delay:1. (note "a");
  Sim.Engine.schedule engine ~delay:1. (note "b"); (* FIFO at equal time *)
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "time then FIFO order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 5. (Sim.Engine.now engine);
  Alcotest.(check int) "events processed" 3 (Sim.Engine.events_processed engine)

let test_engine_until () =
  let engine = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule engine ~delay:10. (fun () -> incr fired);
  Sim.Engine.schedule engine ~delay:30. (fun () -> incr fired);
  Sim.Engine.run ~until:20. engine;
  Alcotest.(check int) "only the early event" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock set to limit" 20. (Sim.Engine.now engine);
  Alcotest.(check int) "one pending" 1 (Sim.Engine.pending engine);
  Sim.Engine.run engine;
  Alcotest.(check int) "rest drained" 2 !fired

let test_engine_nested_schedule () =
  let engine = Sim.Engine.create () in
  let hits = ref [] in
  Sim.Engine.schedule engine ~delay:1. (fun () ->
      hits := Sim.Engine.now engine :: !hits;
      Sim.Engine.schedule engine ~delay:2. (fun () ->
          hits := Sim.Engine.now engine :: !hits));
  Sim.Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "nested times" [ 1.; 3. ] (List.rev !hits)

let test_topology_mean_latency () =
  let topology = Sim.Topology.create ~seed:1 ~mean_latency:15. ~nodes:20 () in
  let mean = Sim.Topology.mean_remote_latency topology in
  Alcotest.(check bool) "mean close to target" true (Float.abs (mean -. 15.) < 0.5);
  Alcotest.(check (float 1e-9)) "self latency small" 0.05
    (Sim.Topology.latency topology ~src:3 ~dst:3);
  (* Symmetry. *)
  Alcotest.(check (float 1e-9)) "symmetric"
    (Sim.Topology.latency topology ~src:2 ~dst:7)
    (Sim.Topology.latency topology ~src:7 ~dst:2)

let test_uniform_topology () =
  let topology = Sim.Topology.uniform ~latency:5. ~nodes:4 () in
  Alcotest.(check (float 1e-9)) "uniform" 5. (Sim.Topology.latency topology ~src:0 ~dst:3)

let make_network ?(nodes = 4) ?(service_time = 1.) () =
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~latency:10. ~nodes () in
  let network = Sim.Network.create ~engine ~topology ~service_time ~jitter:0. () in
  (engine, network)

let test_network_delivery_and_counting () =
  let engine, network = make_network () in
  let received = ref [] in
  Sim.Network.set_handler network ~node:1 (fun ~src msg -> received := (src, msg) :: !received);
  let ping = Sim.Network.Kind.intern "ping" in
  Sim.Network.send network ~kind:ping ~src:0 ~dst:1 "hello";
  Sim.Network.send network ~kind:ping ~src:2 ~dst:1 "world";
  Sim.Network.send network ~src:1 ~dst:1 "self";
  Sim.Engine.run engine;
  Alcotest.(check int) "two handled remotely, one locally" 3 (List.length !received);
  Alcotest.(check int) "self-sends not counted" 2 (Sim.Network.messages_sent network);
  Alcotest.(check (list (pair string int))) "kind accounting" [ ("ping", 2) ]
    (Sim.Network.messages_by_kind network)

let test_network_service_queueing () =
  (* Two messages arriving together at one node must be processed serially:
     second handler fires one service_time later. *)
  let engine, network = make_network ~service_time:2. () in
  let times = ref [] in
  Sim.Network.set_handler network ~node:1 (fun ~src:_ _ ->
      times := Sim.Engine.now engine :: !times);
  Sim.Network.send network ~src:0 ~dst:1 "a";
  Sim.Network.send network ~src:2 ~dst:1 "b";
  Sim.Engine.run engine;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-6)) "first at latency+service" 12. t1;
    Alcotest.(check (float 1e-6)) "second queued behind" 14. t2
  | other -> Alcotest.failf "expected 2 deliveries, got %d" (List.length other)

let test_network_failure_drops () =
  let engine, network = make_network () in
  let received = ref 0 in
  Sim.Network.set_handler network ~node:1 (fun ~src:_ _ -> incr received);
  Sim.Network.fail network 1;
  Sim.Network.send network ~src:0 ~dst:1 "lost";
  Sim.Engine.run engine;
  Alcotest.(check int) "failed node receives nothing" 0 !received;
  Alcotest.(check bool) "marked failed" true (Sim.Network.is_failed network 1);
  Alcotest.(check (list int)) "alive nodes" [ 0; 2; 3 ] (Sim.Network.alive_nodes network);
  Sim.Network.revive network 1;
  Sim.Network.send network ~src:0 ~dst:1 "back";
  Sim.Engine.run engine;
  Alcotest.(check int) "revived node receives" 1 !received

let test_network_drop_all () =
  let engine, network = make_network () in
  let received = ref 0 in
  Sim.Network.set_handler network ~node:1 (fun ~src:_ _ -> incr received);
  Sim.Network.set_faults network { Sim.Network.no_faults with drop = 1.0 };
  Sim.Network.send network ~src:0 ~dst:1 "lost";
  Sim.Network.send network ~src:1 ~dst:1 "self"; (* self-sends are exempt *)
  Sim.Engine.run engine;
  Alcotest.(check int) "only the self-send arrives" 1 !received;
  Alcotest.(check int) "drop counted" 1 (Sim.Network.messages_dropped network);
  Sim.Network.set_faults network Sim.Network.no_faults;
  Sim.Network.send network ~src:0 ~dst:1 "back";
  Sim.Engine.run engine;
  Alcotest.(check int) "faults cleared" 2 !received

let test_network_duplication () =
  let engine, network = make_network () in
  let received = ref 0 in
  Sim.Network.set_handler network ~node:1 (fun ~src:_ _ -> incr received);
  Sim.Network.set_faults network { Sim.Network.no_faults with duplicate = 1.0 };
  Sim.Network.send network ~src:0 ~dst:1 "twice";
  Sim.Engine.run engine;
  Alcotest.(check int) "delivered twice" 2 !received;
  Alcotest.(check int) "duplication counted" 1 (Sim.Network.messages_duplicated network);
  Alcotest.(check int) "sent counted once" 1 (Sim.Network.messages_sent network)

let test_network_latency_spike () =
  let engine, network = make_network ~service_time:0. () in
  let at = ref None in
  Sim.Network.set_handler network ~node:1 (fun ~src:_ _ ->
      at := Some (Sim.Engine.now engine));
  Sim.Network.set_faults network
    { Sim.Network.no_faults with spike_prob = 1.0; spike_factor = 10. };
  Sim.Network.send network ~src:0 ~dst:1 "slow";
  Sim.Engine.run engine;
  Alcotest.(check (option (float 1e-6))) "latency multiplied" (Some 100.) !at

let test_network_link_faults () =
  let engine, network = make_network () in
  let got1 = ref 0 and got2 = ref 0 in
  Sim.Network.set_handler network ~node:1 (fun ~src:_ _ -> incr got1);
  Sim.Network.set_handler network ~node:2 (fun ~src:_ _ -> incr got2);
  Sim.Network.set_link_faults network ~a:0 ~b:1
    { Sim.Network.no_faults with drop = 1.0 };
  Sim.Network.send network ~src:0 ~dst:1 "flaky";
  Sim.Network.send network ~src:1 ~dst:0 "flaky-reverse"; (* link is symmetric *)
  Sim.Network.send network ~src:0 ~dst:2 "clean";
  Sim.Engine.run engine;
  Alcotest.(check int) "flaky link drops both directions" 0 !got1;
  Alcotest.(check int) "other link unaffected" 1 !got2;
  Alcotest.(check int) "two drops" 2 (Sim.Network.messages_dropped network);
  Sim.Network.clear_link_faults network ~a:0 ~b:1;
  Sim.Network.send network ~src:0 ~dst:1 "healed";
  Sim.Engine.run engine;
  Alcotest.(check int) "link healed" 1 !got1

let test_network_partition_and_heal () =
  let engine, network = make_network ~nodes:5 () in
  let received = Array.make 5 0 in
  for node = 0 to 4 do
    Sim.Network.set_handler network ~node (fun ~src:_ _ ->
        received.(node) <- received.(node) + 1)
  done;
  (* Node 4 is named in no group: it forms the implicit extra group. *)
  Sim.Network.partition network [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "partitioned" true (Sim.Network.partitioned network);
  Alcotest.(check bool) "same side reachable" true
    (Sim.Network.reachable network ~src:0 ~dst:1);
  Alcotest.(check bool) "cross side unreachable" false
    (Sim.Network.reachable network ~src:0 ~dst:2);
  Alcotest.(check bool) "implicit group isolated" false
    (Sim.Network.reachable network ~src:4 ~dst:0);
  Sim.Network.send network ~src:0 ~dst:1 "same";
  Sim.Network.send network ~src:0 ~dst:2 "cross";
  Sim.Network.send network ~src:2 ~dst:0 "cross-back";
  Sim.Network.send network ~src:4 ~dst:3 "orphan";
  Sim.Engine.run engine;
  Alcotest.(check int) "same-side delivered" 1 received.(1);
  Alcotest.(check int) "cross dropped" 0 received.(2);
  Alcotest.(check int) "cross-back dropped" 0 received.(0);
  Alcotest.(check int) "orphan dropped" 0 received.(3);
  Alcotest.(check int) "three boundary drops" 3 (Sim.Network.messages_dropped network);
  Sim.Network.heal network;
  Alcotest.(check bool) "healed" false (Sim.Network.partitioned network);
  Sim.Network.send network ~src:0 ~dst:2 "after-heal";
  Sim.Engine.run engine;
  Alcotest.(check int) "delivered after heal" 1 received.(2)

let make_rpc ?(nodes = 4) () =
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~latency:10. ~nodes () in
  let network = Sim.Network.create ~engine ~topology ~service_time:0.5 ~jitter:0. () in
  let rpc = Sim.Rpc.create ~network () in
  (engine, network, rpc)

let test_rpc_call_roundtrip () =
  let engine, _network, rpc = make_rpc () in
  Sim.Rpc.serve rpc ~node:1 (fun ~src:_ req -> Some (req * 2));
  let answer = ref None in
  Sim.Rpc.call rpc ~src:0 ~dst:1 ~timeout:1000. 21
    ~on_reply:(fun rep -> answer := Some rep)
    ~on_timeout:(fun () -> Alcotest.fail "unexpected timeout");
  Sim.Engine.run engine;
  Alcotest.(check (option int)) "doubled" (Some 42) !answer

let test_rpc_multicall_collects_all () =
  let engine, _network, rpc = make_rpc () in
  for node = 0 to 3 do
    Sim.Rpc.serve rpc ~node (fun ~src:_ req -> Some (req + node))
  done;
  let result = ref None in
  Sim.Rpc.multicall rpc ~src:0 ~dsts:[ 1; 2; 3 ] ~timeout:1000. 100
    ~on_done:(fun ~replies ~missing -> result := Some (replies, missing));
  Sim.Engine.run engine;
  match !result with
  | Some (replies, []) ->
    Alcotest.(check (list (pair int int)))
      "all replied" [ (1, 101); (2, 102); (3, 103) ]
      (List.sort compare replies)
  | Some (_, missing) -> Alcotest.failf "unexpected missing: %d" (List.length missing)
  | None -> Alcotest.fail "multicall never completed"

let test_rpc_multicall_timeout_reports_missing () =
  let engine, network, rpc = make_rpc () in
  for node = 0 to 3 do
    Sim.Rpc.serve rpc ~node (fun ~src:_ req -> Some req)
  done;
  Sim.Network.fail network 2;
  let result = ref None in
  Sim.Rpc.multicall rpc ~src:0 ~dsts:[ 1; 2; 3 ] ~timeout:200. 7
    ~on_done:(fun ~replies ~missing -> result := Some (List.map fst replies, missing));
  Sim.Engine.run engine;
  Alcotest.(check (option (pair (list int) (list int))))
    "dead member reported missing"
    (Some ([ 1; 3 ], [ 2 ]))
    (Option.map (fun (r, m) -> (List.sort compare r, m)) !result)

let test_rpc_multicall_late_reply_discarded () =
  (* Node 2's link is spiked so its reply lands well after the multicall
     timeout: [on_done] must fire exactly once, report 2 as missing, and the
     late reply must be silently discarded (no crash, no second callback). *)
  let engine, network, rpc = make_rpc () in
  let served = ref [] in
  for node = 0 to 3 do
    Sim.Rpc.serve rpc ~node (fun ~src:_ req ->
        served := node :: !served;
        Some req)
  done;
  Sim.Network.set_link_faults network ~a:0 ~b:2
    { Sim.Network.no_faults with spike_prob = 1.0; spike_factor = 20. };
  let done_count = ref 0 in
  let result = ref None in
  Sim.Rpc.multicall rpc ~src:0 ~dsts:[ 1; 2; 3 ] ~timeout:50. 7
    ~on_done:(fun ~replies ~missing ->
      incr done_count;
      result := Some (List.sort compare (List.map fst replies), missing));
  Sim.Engine.run engine;
  Alcotest.(check int) "on_done exactly once" 1 !done_count;
  Alcotest.(check (option (pair (list int) (list int))))
    "slow node missing, fast nodes in"
    (Some ([ 1; 3 ], [ 2 ]))
    !result;
  (* The request did reach node 2 (only late); its reply was dropped on the
     floor by the pending-table check, not delivered to the callback. *)
  Alcotest.(check bool) "slow node still served the request" true
    (List.mem 2 !served)

let test_rpc_multicall_missing_is_exact () =
  let engine, network, rpc = make_rpc ~nodes:6 () in
  for node = 0 to 5 do
    Sim.Rpc.serve rpc ~node (fun ~src:_ req -> Some req)
  done;
  Sim.Network.fail network 2;
  Sim.Network.fail network 4;
  let result = ref None in
  Sim.Rpc.multicall rpc ~src:0 ~dsts:[ 1; 2; 3; 4; 5 ] ~timeout:200. 9
    ~on_done:(fun ~replies ~missing ->
      result := Some (List.sort compare (List.map fst replies), List.sort compare missing));
  Sim.Engine.run engine;
  Alcotest.(check (option (pair (list int) (list int))))
    "missing names exactly the non-repliers"
    (Some ([ 1; 3; 5 ], [ 2; 4 ]))
    !result

let test_rpc_acked_send_retransmits () =
  (* The link starts fully lossy, then heals at t=70; acked_send keeps
     retransmitting on timeout until one attempt gets through. *)
  let engine, network, rpc = make_rpc () in
  let handled = ref 0 in
  Sim.Rpc.serve rpc ~node:1 (fun ~src:_ _ ->
      incr handled;
      Some 0);
  Sim.Network.set_link_faults network ~a:0 ~b:1
    { Sim.Network.no_faults with drop = 1.0 };
  Sim.Engine.schedule engine ~delay:70. (fun () ->
      Sim.Network.clear_link_faults network ~a:0 ~b:1);
  Sim.Rpc.acked_send rpc ~src:0 ~dst:1 ~timeout:25. 42;
  Sim.Engine.run engine;
  Alcotest.(check bool) "delivered after retransmission" true (!handled >= 1);
  Alcotest.(check bool) "early attempts were dropped" true
    (Sim.Network.messages_dropped network >= 2)

let test_rpc_no_reply_handler () =
  let engine, _network, rpc = make_rpc () in
  let casts = ref 0 in
  Sim.Rpc.serve rpc ~node:1 (fun ~src:_ _ ->
      incr casts;
      None);
  Sim.Rpc.cast rpc ~src:0 ~dst:1 99;
  Sim.Engine.run engine;
  Alcotest.(check int) "cast handled" 1 !casts

let test_failure_detection () =
  let engine = Sim.Engine.create () in
  let killed = ref [] and detected = ref [] in
  let failure =
    Sim.Failure.create ~engine ~detection_delay:25. ~kill:(fun n -> killed := n :: !killed) ()
  in
  Sim.Failure.on_detect failure (fun n -> detected := (n, Sim.Engine.now engine) :: !detected);
  Sim.Failure.schedule failure ~at:100. ~node:3;
  Sim.Engine.run ~until:110. engine;
  Alcotest.(check (list int)) "killed at failure time" [ 3 ] !killed;
  Alcotest.(check bool) "killed before detection" true (Sim.Failure.is_killed failure 3);
  Alcotest.(check bool) "not yet suspected" false (Sim.Failure.is_suspected failure 3);
  Alcotest.(check (list (pair int (float 1e-9)))) "not yet detected" [] !detected;
  Sim.Engine.run engine;
  Alcotest.(check (list (pair int (float 1e-9)))) "detected after delay" [ (3, 125.) ]
    !detected;
  Alcotest.(check bool) "suspected after detection" true (Sim.Failure.is_suspected failure 3);
  Alcotest.(check (list int)) "killed list" [ 3 ] (Sim.Failure.killed_nodes failure);
  Alcotest.(check (list int)) "suspected list" [ 3 ] (Sim.Failure.suspected_nodes failure)

let test_failure_recovery_cycle () =
  let engine = Sim.Engine.create () in
  let failure =
    Sim.Failure.create ~engine ~detection_delay:25. ~kill:(fun _ -> ()) ()
  in
  let recovered = ref [] in
  Sim.Failure.on_recover failure (fun ~node ~was_killed ->
      recovered := (node, was_killed, Sim.Engine.now engine) :: !recovered);
  Sim.Failure.schedule failure ~at:100. ~node:2;
  Sim.Failure.schedule_recovery failure ~at:300. ~node:2;
  Sim.Engine.run engine;
  Alcotest.(check bool) "no longer killed" false (Sim.Failure.is_killed failure 2);
  (* Suspicion persists until the re-admission layer clears it. *)
  Alcotest.(check bool) "still suspected" true (Sim.Failure.is_suspected failure 2);
  Alcotest.(check (list (triple int bool (float 1e-9))))
    "recovery callback with was_killed" [ (2, true, 300.) ] !recovered;
  Sim.Failure.clear_suspicion failure 2;
  Alcotest.(check bool) "suspicion cleared" false (Sim.Failure.is_suspected failure 2)

let test_failure_recovery_before_detection () =
  (* A node that restarts faster than the detector notices is never
     suspected at all. *)
  let engine = Sim.Engine.create () in
  let failure =
    Sim.Failure.create ~engine ~detection_delay:50. ~kill:(fun _ -> ()) ()
  in
  let detections = ref 0 in
  Sim.Failure.on_detect failure (fun _ -> incr detections);
  Sim.Failure.schedule failure ~at:100. ~node:1;
  Sim.Failure.schedule_recovery failure ~at:120. ~node:1;
  Sim.Engine.run engine;
  Alcotest.(check int) "no detection" 0 !detections;
  Alcotest.(check bool) "not suspected" false (Sim.Failure.is_suspected failure 1)

let test_false_suspicion () =
  let engine = Sim.Engine.create () in
  let failure = Sim.Failure.create ~engine ~kill:(fun _ -> Alcotest.fail "kill on suspicion") () in
  let detected = ref [] and recovered = ref [] in
  Sim.Failure.on_detect failure (fun n -> detected := n :: !detected);
  Sim.Failure.on_recover failure (fun ~node ~was_killed ->
      recovered := (node, was_killed) :: !recovered;
      Sim.Failure.clear_suspicion failure node);
  Sim.Failure.schedule_false_suspicion failure ~at:50. ~clear_after:100. ~node:4;
  Sim.Engine.run ~until:60. engine;
  Alcotest.(check (list int)) "suspected" [ 4 ] !detected;
  Alcotest.(check bool) "but not killed" false (Sim.Failure.is_killed failure 4);
  Sim.Engine.run engine;
  Alcotest.(check (list (pair int bool))) "cleared as live" [ (4, false) ] !recovered;
  Alcotest.(check bool) "no longer suspected" false (Sim.Failure.is_suspected failure 4);
  Alcotest.(check int) "counted" 1 (Sim.Failure.false_suspicions failure)

let test_detection_jitter () =
  let engine = Sim.Engine.create () in
  let failure =
    Sim.Failure.create ~engine ~detection_delay:20. ~detection_jitter:30. ~seed:5
      ~kill:(fun _ -> ())
      ()
  in
  let at = ref None in
  Sim.Failure.on_detect failure (fun _ -> at := Some (Sim.Engine.now engine));
  Sim.Failure.schedule failure ~at:100. ~node:0;
  Sim.Engine.run engine;
  match !at with
  | None -> Alcotest.fail "never detected"
  | Some t ->
    Alcotest.(check bool) "at least base delay" true (t >= 120.);
    Alcotest.(check bool) "within jitter bound" true (t < 150.)

let suite =
  [
    Alcotest.test_case "engine event ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine run ~until" `Quick test_engine_until;
    Alcotest.test_case "engine nested scheduling" `Quick test_engine_nested_schedule;
    Alcotest.test_case "topology mean latency" `Quick test_topology_mean_latency;
    Alcotest.test_case "topology uniform" `Quick test_uniform_topology;
    Alcotest.test_case "network delivery and counting" `Quick test_network_delivery_and_counting;
    Alcotest.test_case "network service queueing" `Quick test_network_service_queueing;
    Alcotest.test_case "network failure drops" `Quick test_network_failure_drops;
    Alcotest.test_case "network drop-all fault plan" `Quick test_network_drop_all;
    Alcotest.test_case "network duplication" `Quick test_network_duplication;
    Alcotest.test_case "network latency spike" `Quick test_network_latency_spike;
    Alcotest.test_case "network per-link faults" `Quick test_network_link_faults;
    Alcotest.test_case "network partition and heal" `Quick test_network_partition_and_heal;
    Alcotest.test_case "rpc call roundtrip" `Quick test_rpc_call_roundtrip;
    Alcotest.test_case "rpc multicall collects all" `Quick test_rpc_multicall_collects_all;
    Alcotest.test_case "rpc multicall timeout" `Quick test_rpc_multicall_timeout_reports_missing;
    Alcotest.test_case "rpc multicall late reply discarded" `Quick
      test_rpc_multicall_late_reply_discarded;
    Alcotest.test_case "rpc multicall missing exact" `Quick
      test_rpc_multicall_missing_is_exact;
    Alcotest.test_case "rpc acked send retransmits" `Quick test_rpc_acked_send_retransmits;
    Alcotest.test_case "rpc one-way cast" `Quick test_rpc_no_reply_handler;
    Alcotest.test_case "failure detection" `Quick test_failure_detection;
    Alcotest.test_case "failure recovery cycle" `Quick test_failure_recovery_cycle;
    Alcotest.test_case "failure fast restart undetected" `Quick
      test_failure_recovery_before_detection;
    Alcotest.test_case "false suspicion" `Quick test_false_suspicion;
    Alcotest.test_case "detection jitter" `Quick test_detection_jitter;
  ]
