(* Queue-oriented speculative batch commit (PROTOCOL.md §9).

   The batch path shares every safety oracle with the sequential protocol
   (1-copy serializability, bank conservation, the trace checker), plus a
   rule of its own: within a batch, decisions respect queue order, and a
   speculative transaction never commits over an aborted predecessor. *)

open Core

let contended_params =
  (* few hot accounts, write-heavy: commit queues actually fill *)
  { Benchmarks.Workload.default_params with objects = 4; calls = 2; read_ratio = 0.1; key_skew = 0.5 }

let rules violations =
  List.sort_uniq String.compare
    (List.map (fun v -> v.Obs.Checker.rule) violations)

(* Contended bank under batch commit: commits flow, batches carry more
   than one transaction, both safety oracles hold, and the traced run
   passes every checker rule — batch-order included. *)
let test_batch_bank_smoke () =
  let tracer = Obs.Tracer.create ~capacity:(1 lsl 18) () in
  let r =
    Harness.Experiment.run ~nodes:9 ~clients:24 ~seed:71 ~warmup:500.
      ~duration:3_000. ~tracer ~batch_commit:true
      ~config:(Config.default Config.Flat)
      ~benchmark:Benchmarks.Bank.benchmark ~params:contended_params ()
  in
  Alcotest.(check bool) "commits" true (r.Harness.Experiment.commits > 0);
  Alcotest.(check bool) "batch rounds sent" true (r.Harness.Experiment.batches > 0);
  Alcotest.(check bool) "batches amortize (p95 occupancy > 1)" true
    (r.Harness.Experiment.batch_occupancy_p95 > 1.);
  (match r.Harness.Experiment.invariant with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bank invariant: %s" msg);
  (match r.Harness.Experiment.consistent with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg);
  Alcotest.(check int) "trace did not overflow" 0 (Obs.Tracer.dropped tracer);
  Alcotest.(check (list string)) "checker rules all pass" []
    (rules (Obs.Checker.check (Obs.Tracer.events tracer)))

(* Speculation aborts on order violation: A enqueues a write of X and B
   speculatively reads A's image; A's validation is then invalidated
   (every replica's copy of X is bumped past A's base), so the batch
   round aborts A — and B, whose read was of state that never committed,
   must speculation-abort rather than commit. *)
let test_speculation_abort_on_failed_predecessor () =
  let config =
    Config.make ~max_attempts:1 ~batch_size:64 ~batch_delay:500. Config.Flat
  in
  let cluster = Cluster.create ~nodes:5 ~seed:23 ~batch_commit:true config in
  let x = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let y = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let outcomes = ref [] in
  let record label outcome = outcomes := (label, outcome) :: !outcomes in
  Cluster.submit cluster ~node:1
    (fun () -> Benchmarks.Counter.increment x)
    ~on_done:(record "A");
  (* let A reach its commit point and publish its write image *)
  Cluster.run_for cluster 150.;
  Cluster.submit cluster ~node:2
    (fun () -> Txn.bind (Txn.read x) (fun v -> Txn.write y v))
    ~on_done:(record "B");
  Cluster.run_for cluster 150.;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "B read speculatively" true
    (Metrics.speculative_reads metrics >= 1);
  (* invalidate A before the batch cuts: every replica's copy of X jumps
     past A's base version, so the round votes A stale *)
  for node = 0 to 4 do
    Store.Replica.sync_copy
      (Cluster.store_of cluster ~node)
      ~oid:x ~version:10 ~value:(Store.Value.Int 999)
  done;
  Cluster.drain cluster;
  Alcotest.(check bool) "speculation abort counted" true
    (Metrics.speculation_aborts metrics >= 1);
  List.iter
    (fun (label, outcome) ->
      match outcome with
      | Executor.Failed _ -> ()
      | Executor.Committed v ->
        Alcotest.failf "%s committed %s over an invalidated base" label
          (Store.Value.to_string v))
    !outcomes

(* A membership change mid-batch: the uncut tail is requeued under the new
   epoch, never decided by the stale round.  A counter under continuous
   batch-mode increments across a join must lose no update. *)
let test_mid_batch_epoch_bump () =
  let config = Config.make ~batch_size:4 ~batch_delay:2. Config.Flat in
  let cluster =
    Cluster.create ~nodes:7 ~spares:1 ~seed:31 ~batch_commit:true config
  in
  let counter = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let committed = ref 0 in
  let rec client node remaining =
    if remaining > 0 then
      Cluster.submit cluster ~node
        (fun () -> Benchmarks.Counter.increment counter)
        ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ ->
            incr committed;
            client node (remaining - 1)
          | Executor.Failed msg -> Alcotest.failf "client failed: %s" msg)
  in
  List.iter (fun node -> client node 8) [ 0; 1; 2; 3; 4; 5 ];
  (* the join wedges admission and bumps the epoch while batches are in
     flight; in-flight rounds must walk away and requeue, not decide *)
  Cluster.join_node_at cluster ~at:40. ~node:7;
  Cluster.drain cluster;
  Alcotest.(check int) "all increments committed" 48 !committed;
  Alcotest.(check bool) "epoch bumped" true (Cluster.epoch cluster > 0);
  (match
     Cluster.run_program cluster ~node:2 (fun () -> Txn.read counter)
   with
  | Executor.Committed (Store.Value.Int 48) -> ()
  | Executor.Committed v ->
    Alcotest.failf "lost updates: %s" (Store.Value.to_string v)
  | Executor.Failed msg -> Alcotest.failf "final read failed: %s" msg);
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

(* Batch mode under the chaos harness: same verdict machinery as the
   sequential protocol (1-copy oracle, bank invariant, stall watchdog). *)
let test_batch_chaos () =
  let knobs =
    {
      Harness.Chaos.default_knobs with
      nodes = 7;
      clients = 8;
      horizon = 3_000.;
      max_crashes = 1;
    }
  in
  List.iter
    (fun seed ->
      let r = Harness.Chaos.run_one ~batch_commit:true knobs ~seed in
      if not (Harness.Chaos.passed r) then
        Alcotest.failf "batch chaos seed %d failed:@.%a" seed
          Harness.Chaos.pp_result r)
    [ 301; 302; 303 ]

let suite =
  [
    Alcotest.test_case "contended bank smoke" `Quick test_batch_bank_smoke;
    Alcotest.test_case "speculation abort on failed predecessor" `Quick
      test_speculation_abort_on_failed_predecessor;
    Alcotest.test_case "mid-batch epoch bump loses nothing" `Quick
      test_mid_batch_epoch_bump;
    Alcotest.test_case "chaos verdicts under batch mode" `Quick test_batch_chaos;
  ]
