(* Determinism regression tests for the domain-parallel harness.

   The harness's contract (DESIGN.md, "Parallel safety") is that every
   experiment run is a self-contained simulation — own engine, RNG streams,
   metrics — so (a) a run is a pure function of its configuration and seed,
   and (b) fanning independent runs across domains cannot change any
   result.  Both halves are pinned here: re-running one configuration must
   reproduce the result record exactly, and a sweep must render identically
   at jobs=1 and jobs=4. *)

let params =
  { Benchmarks.Workload.default_params with objects = 48; calls = 2; read_ratio = 0.5; key_skew = 0.5 }

let run_once ~seed =
  Harness.Experiment.run ~nodes:7 ~seed ~clients:6 ~warmup:200. ~duration:1_000.
    ~config:(Core.Config.default Core.Config.Closed)
    ~benchmark:Benchmarks.Bank.benchmark ~params ()

(* Every counter of the result record, not just throughput: a single stray
   source of nondeterminism (iteration order, shared RNG, clock) shows up in
   at least one of these. *)
let check_results_equal label (a : Harness.Experiment.result) (b : Harness.Experiment.result)
    =
  Alcotest.(check string) (label ^ ": label") a.label b.label;
  Alcotest.(check int) (label ^ ": commits") a.commits b.commits;
  Alcotest.(check int) (label ^ ": ro commits") a.read_only_commits b.read_only_commits;
  Alcotest.(check (float 0.)) (label ^ ": throughput") a.throughput b.throughput;
  Alcotest.(check int) (label ^ ": root aborts") a.root_aborts b.root_aborts;
  Alcotest.(check int) (label ^ ": partial aborts") a.partial_aborts b.partial_aborts;
  Alcotest.(check int) (label ^ ": messages") a.messages b.messages;
  Alcotest.(check (list (pair string int)))
    (label ^ ": messages by kind")
    a.messages_by_kind b.messages_by_kind;
  Alcotest.(check int) (label ^ ": remote reads") a.remote_reads b.remote_reads;
  Alcotest.(check int) (label ^ ": local reads") a.local_reads b.local_reads;
  Alcotest.(check (float 0.)) (label ^ ": mean latency") a.mean_latency b.mean_latency;
  Alcotest.(check (float 0.)) (label ^ ": p95 latency") a.p95_latency b.p95_latency

let test_same_seed_same_result () =
  let a = run_once ~seed:5 and b = run_once ~seed:5 in
  check_results_equal "rerun" a b;
  let c = run_once ~seed:6 in
  Alcotest.(check bool)
    "different seed differs somewhere" true
    (a.commits <> c.commits || a.messages <> c.messages
   || not (Float.equal a.throughput c.throughput))

let render_sweep () =
  let series =
    Harness.Sweep.throughputs ~trials:2 ~xs:[ 0; 1; 2; 3 ] (fun ~x ~seed ->
        run_once ~seed:(seed + x))
  in
  String.concat ";"
    (List.map
       (fun (x, r) -> Format.asprintf "%d={%a}" x Harness.Experiment.pp_result r)
       series)

let with_jobs jobs f =
  let before = Harness.Pool.jobs () in
  Harness.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Harness.Pool.set_jobs before) f

let test_sweep_jobs_invariant () =
  let sequential = with_jobs 1 render_sweep in
  let parallel = with_jobs 4 render_sweep in
  Alcotest.(check string) "jobs=1 and jobs=4 render identically" sequential parallel

let test_pool_map_order_and_exceptions () =
  with_jobs 4 (fun () ->
      let xs = List.init 64 Fun.id in
      Alcotest.(check (list int))
        "map preserves order"
        (List.map (fun x -> x * x) xs)
        (Harness.Pool.map (fun x -> x * x) xs);
      (* Nested fan-out exercises work-helping: must complete, in order. *)
      let nested =
        Harness.Pool.map
          (fun x -> List.fold_left ( + ) 0 (Harness.Pool.map (fun y -> x + y) xs))
          xs
      in
      Alcotest.(check int) "nested maps complete" (List.length xs) (List.length nested);
      Alcotest.check_raises "exceptions propagate" (Failure "boom") (fun () ->
          ignore (Harness.Pool.map (fun x -> if x = 3 then failwith "boom" else x) xs)))

let suite =
  [
    Alcotest.test_case "same config+seed reproduces result record" `Quick
      test_same_seed_same_result;
    Alcotest.test_case "sweep identical at jobs=1 and jobs=4" `Slow
      test_sweep_jobs_invariant;
    Alcotest.test_case "pool map order, nesting, exceptions" `Quick
      test_pool_map_order_and_exceptions;
  ]
