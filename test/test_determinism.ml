(* Batched-fan-out byte-identity, kind-counter pre-sizing, and the GC
   allocation budget.

   The network's [multicast_batch] claims to be observationally invisible:
   one pooled engine event per quorum wave instead of one per destination,
   with identical accounting, RNG draw order, and heap (time, seq)
   positions.  These tests lock that equivalence in across the whole stack
   — experiment metrics, message counters, full trace streams, and chaos
   oracle verdicts — over many seeds, including seeds that exercise the
   fault model's drop/duplicate/spike draws (the paths where a perturbed
   draw order would first show up). *)

open Core

(* --- batched vs unbatched: experiment results --------------------------- *)

let bank_params =
  { Benchmarks.Workload.default_params with objects = 48; calls = 2; read_ratio = 0.5; key_skew = 0.4 }

(* A lossy-but-live fault plan: every [plan_send] branch (drop, spike,
   duplicate) draws on some message, so the batched path must interleave
   its fault-RNG consumption exactly as the eager path does. *)
let lossy =
  { Sim.Network.drop = 0.03; duplicate = 0.03; spike_prob = 0.02; spike_factor = 6. }

let run_bank ~seed ~batch_fanout ~faulty =
  let prepare cluster =
    if faulty then Sim.Network.set_faults (Cluster.network cluster) lossy
  in
  Harness.Experiment.run ~seed ~clients:8 ~warmup:200. ~duration:1_000.
    ~batch_fanout ~prepare
    ~config:(Config.default Config.Closed)
    ~benchmark:Benchmarks.Bank.benchmark ~params:bank_params ()

(* Polymorphic equality is exactly what we want here: the result record is
   ints, float aggregates computed from identical event sequences (bitwise
   equal when the runs are), strings and result values — no closures. *)
let check_result_identical ~seed ~faulty =
  let a = run_bank ~seed ~batch_fanout:true ~faulty in
  let b = run_bank ~seed ~batch_fanout:false ~faulty in
  Alcotest.(check bool) "batched run commits" true (a.Harness.Experiment.commits > 0);
  if a <> b then
    Alcotest.failf "seed %d (faulty=%b): batched and unbatched results differ:@.%a@.vs@.%a"
      seed faulty Harness.Experiment.pp_result a Harness.Experiment.pp_result b

let test_experiment_identity () =
  (* 5 fault-free seeds: the pure jitter/accounting path. *)
  List.iter (fun seed -> check_result_identical ~seed ~faulty:false) [ 100; 101; 102; 103; 104 ]

let test_experiment_identity_faulty () =
  (* 5 fault-model seeds: drop/duplicate/spike draws interleaved with the
     wave planning. *)
  List.iter (fun seed -> check_result_identical ~seed ~faulty:true) [ 200; 201; 202; 203; 204 ]

(* --- batched vs unbatched: full trace streams --------------------------- *)

(* Bitwise float identity (covers NaN and -0. too) — a tolerance would
   defeat the point of a byte-identity oracle. *)
let float_bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let event_eq (a : Obs.Tracer.event) (b : Obs.Tracer.event) =
  float_bits_eq a.time b.time
  && a.ekind = b.ekind && a.node = b.node && a.txn = b.txn && a.oid = b.oid
  && a.a = b.a && a.b = b.b
  && float_bits_eq a.x b.x

let traced_run ~seed ~batch_fanout ~faulty =
  let tracer = Obs.Tracer.create ~capacity:(1 lsl 18) () in
  let cluster =
    Cluster.create ~nodes:13 ~seed ~tracer ~batch_fanout (Config.default Config.Closed)
  in
  if faulty then Sim.Network.set_faults (Cluster.network cluster) lossy;
  let accounts =
    Array.init 24 (fun _ ->
        Cluster.alloc_object cluster
          ~init:(Store.Value.Int Benchmarks.Bank.initial_balance))
  in
  let rng = Util.Rng.create (seed * 13 + 5) in
  for k = 0 to 39 do
    let i = Util.Rng.int rng 24 in
    let j = (i + 1 + Util.Rng.int rng 23) mod 24 in
    Cluster.submit cluster ~node:(k mod 13)
      (fun () ->
        Benchmarks.Bank.transfer ~from_:accounts.(i) ~to_:accounts.(j) ~amount:1)
      ~on_done:(fun _ -> ())
  done;
  Cluster.drain cluster;
  (cluster, tracer)

let check_traces_identical ~seed ~faulty =
  let ca, ta = traced_run ~seed ~batch_fanout:true ~faulty in
  let cb, tb = traced_run ~seed ~batch_fanout:false ~faulty in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: messages sent" seed)
    (Cluster.messages_sent cb) (Cluster.messages_sent ca);
  Alcotest.(check int)
    (Printf.sprintf "seed %d: messages dropped" seed)
    (Cluster.messages_dropped cb) (Cluster.messages_dropped ca);
  Alcotest.(check int)
    (Printf.sprintf "seed %d: messages duplicated" seed)
    (Cluster.messages_duplicated cb) (Cluster.messages_duplicated ca);
  Alcotest.(check (list (pair string int)))
    (Printf.sprintf "seed %d: per-kind counters" seed)
    (Cluster.messages_by_kind cb) (Cluster.messages_by_kind ca);
  Alcotest.(check int)
    (Printf.sprintf "seed %d: trace length" seed)
    (Obs.Tracer.length tb) (Obs.Tracer.length ta);
  Alcotest.(check int)
    (Printf.sprintf "seed %d: no ring overflow" seed)
    0 (Obs.Tracer.dropped ta);
  let ea = Obs.Tracer.events ta and eb = Obs.Tracer.events tb in
  List.iteri
    (fun i (a, b) ->
      if not (event_eq a b) then
        Alcotest.failf "seed %d: trace event %d differs (batched kind=%s vs eager kind=%s)"
          seed i (Obs.Kind.name a.Obs.Tracer.ekind) (Obs.Kind.name b.Obs.Tracer.ekind))
    (List.combine ea eb)

let test_trace_identity () = check_traces_identical ~seed:31 ~faulty:false
let test_trace_identity_faulty () =
  List.iter (fun seed -> check_traces_identical ~seed ~faulty:true) [ 41; 42; 43 ]

(* --- batched vs unbatched: chaos verdicts ------------------------------- *)

let chaos_knobs =
  { Harness.Chaos.default_knobs with clients = 8; horizon = 3_000.; max_crashes = 1 }

let test_chaos_identity () =
  (* Chaos seeds are fault seeds by construction: crash/recover pairs,
     partitions, flaky links and suspicions drawn from the seed. *)
  List.iter
    (fun seed ->
      let a = Harness.Chaos.run_one chaos_knobs ~batch_fanout:true ~seed in
      let b = Harness.Chaos.run_one chaos_knobs ~batch_fanout:false ~seed in
      if a <> b then
        Alcotest.failf
          "seed %d: chaos verdicts differ: %d/%d commits, %d/%d aborts, %d/%d stalls"
          seed a.Harness.Chaos.commits b.Harness.Chaos.commits a.root_aborts
          b.root_aborts (List.length a.stalls) (List.length b.stalls))
    [ 7; 8; 9; 10; 11; 12 ]

(* --- batch commit on/off ------------------------------------------------ *)

(* Batch-commit mode changes the protocol (one quorum round per batch), so
   runs are NOT byte-identical to sequential ones — but the {e verdicts}
   must agree: over many chaos seeds, both modes pass the 1-copy oracle,
   conserve the bank balance, and stall nowhere.  22 seeds cover schedules
   with crashes, partitions, lossy links and suspicions. *)
let test_batch_mode_verdict_equivalence () =
  List.iter
    (fun seed ->
      let on = Harness.Chaos.run_one chaos_knobs ~batch_commit:true ~seed in
      let off = Harness.Chaos.run_one chaos_knobs ~batch_commit:false ~seed in
      let verdict (r : Harness.Chaos.result) =
        (Harness.Chaos.passed r, r.oracle, r.invariant)
      in
      if not (Harness.Chaos.passed on) then
        Alcotest.failf "seed %d: batch-mode chaos failed:@.%a" seed
          Harness.Chaos.pp_result on;
      if verdict on <> verdict off then
        Alcotest.failf "seed %d: batch on/off verdicts differ" seed)
    (List.init 22 (fun i -> 500 + i))

(* Same seed, batch mode on, run twice: the batch scheduler (cut timers,
   speculation, requeues) must be a pure function of the seed — the full
   result records compare equal, floats bitwise included. *)
let test_batch_mode_self_identity () =
  List.iter
    (fun seed ->
      let a =
        Harness.Experiment.run ~seed ~clients:8 ~warmup:200. ~duration:1_000.
          ~batch_commit:true
          ~config:(Config.default Config.Flat)
          ~benchmark:Benchmarks.Bank.benchmark ~params:bank_params ()
      in
      let b =
        Harness.Experiment.run ~seed ~clients:8 ~warmup:200. ~duration:1_000.
          ~batch_commit:true
          ~config:(Config.default Config.Flat)
          ~benchmark:Benchmarks.Bank.benchmark ~params:bank_params ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: batch run commits" seed)
        true
        (a.Harness.Experiment.commits > 0);
      if a <> b then
        Alcotest.failf "seed %d: two batch-mode runs differ:@.%a@.vs@.%a" seed
          Harness.Experiment.pp_result a Harness.Experiment.pp_result b)
    [ 601; 602; 603 ]

(* --- kind-counter pre-sizing -------------------------------------------- *)

(* [Network.create] pre-sizes the per-kind counter array from the global
   [Obs.Kind] registry; a kind interned {e after} the network exists must
   grow the array on first use instead of faulting past its end. *)
let test_kind_interned_after_create () =
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.create ~seed:3 ~nodes:3 () in
  let network = Sim.Network.create ~engine ~topology () in
  let got = ref [] in
  for node = 0 to 2 do
    Sim.Network.set_handler network ~node (fun ~src:_ msg -> got := msg :: !got)
  done;
  let late = Sim.Network.Kind.intern "late-interned-kind" in
  Sim.Network.send network ~kind:late ~src:0 ~dst:1 "hello";
  Sim.Network.multicast_batch network ~kind:late ~src:0 ~dsts:[ 1; 2 ] "wave";
  Sim.Engine.run engine;
  Alcotest.(check int) "all delivered" 3 (List.length !got);
  let count =
    match List.assoc_opt "late-interned-kind" (Sim.Network.messages_by_kind network) with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check int) "late kind counted" 3 count

(* --- allocation budget -------------------------------------------------- *)

(* Steady-state commit cost in minor-heap words, measured exactly as
   [bench alloc] measures it (same 13-node closed-loop bank workload).
   The pooled-envelope + flat-payload hot path measures ~7_100 minor
   words per committed transaction; the budget is that figure plus the
   >20%-regression allowance from the benchmark gate, rounded up for
   cross-machine slack.  If this trips, something reintroduced per-event
   or per-message allocation — run [bench alloc] to bisect. *)
let minor_words_budget = 9_500.

let test_allocation_budget () =
  let cluster =
    Cluster.create ~nodes:13 ~seed:11 ~with_oracle:false (Config.default Config.Closed)
  in
  let accounts =
    Array.init 64 (fun _ ->
        Cluster.alloc_object cluster
          ~init:(Store.Value.Int Benchmarks.Bank.initial_balance))
  in
  let rng = Util.Rng.create 23 in
  let stop = ref false in
  let rec client node r =
    if not !stop then begin
      let i = Util.Rng.int r 64 in
      let j = (i + 1 + Util.Rng.int r 63) mod 64 in
      Cluster.submit cluster ~node
        (fun () ->
          Benchmarks.Bank.transfer ~from_:accounts.(i) ~to_:accounts.(j) ~amount:1)
        ~on_done:(fun _ -> client node r)
    end
  in
  for c = 0 to 25 do
    client (c mod 13) (Util.Rng.split rng)
  done;
  (* Warm the pools first so the budget reflects steady state, not the
     free-list and scratch-buffer growth of the first few waves. *)
  Cluster.run_for cluster 1_000.;
  let commits0 = Metrics.commits (Cluster.metrics cluster) in
  let minor0 = Gc.minor_words () in
  Cluster.run_for cluster 3_000.;
  let minor1 = Gc.minor_words () in
  stop := true;
  Cluster.drain cluster;
  let commits = Metrics.commits (Cluster.metrics cluster) - commits0 in
  Alcotest.(check bool) "measured some commits" true (commits > 50);
  let per_commit = (minor1 -. minor0) /. Float.of_int commits in
  if per_commit > minor_words_budget then
    Alcotest.failf "allocation regression: %.0f minor words/commit (budget %.0f)"
      per_commit minor_words_budget

let suite =
  [
    Alcotest.test_case "experiment: batched = unbatched (clean)" `Quick
      test_experiment_identity;
    Alcotest.test_case "experiment: batched = unbatched (faulty)" `Quick
      test_experiment_identity_faulty;
    Alcotest.test_case "traces: batched = unbatched (clean)" `Quick test_trace_identity;
    Alcotest.test_case "traces: batched = unbatched (faulty)" `Quick
      test_trace_identity_faulty;
    Alcotest.test_case "chaos: batched = unbatched verdicts" `Quick test_chaos_identity;
    Alcotest.test_case "chaos: batch-commit on/off verdicts agree" `Quick
      test_batch_mode_verdict_equivalence;
    Alcotest.test_case "batch-commit runs are self-identical" `Quick
      test_batch_mode_self_identity;
    Alcotest.test_case "kind interned after network create" `Quick
      test_kind_interned_after_create;
    Alcotest.test_case "minor words per commit within budget" `Quick
      test_allocation_budget;
  ]
